// Command privtest stress-tests transparent privatization safety with the
// paper's Figure 1 scenario: a privatizer transactionally truncates a
// shared list and processes the nodes without instrumentation while other
// threads transactionally search and modify the same list.
//
// Safe algorithms must report zero violations; the TL2 baseline
// demonstrates the delayed-cleanup and doomed-transaction problems.
//
// Examples:
//
//	privtest                       # all algorithms, default load
//	privtest -algo TL2 -iters 2000 # hammer the unsafe baseline
package main

import (
	"flag"
	"fmt"
	"os"

	stm "privstm"
	"privstm/internal/priv"
)

func main() {
	var (
		algo    = flag.String("algo", "all", "algorithm (figure label, e.g. pvrStore) or 'all'")
		nodes   = flag.Int("nodes", 32, "list length")
		readers = flag.Int("readers", 3, "non-privatizer threads")
		iters   = flag.Int("iters", 500, "privatization cycles")
		torn    = flag.Bool("torn", true, "widen race windows (yield between mirror accesses)")
	)
	flag.Parse()

	algos := append([]stm.Algorithm{stm.OrdQueue}, stm.Algorithms...)
	if *algo != "all" {
		a, err := stm.ParseAlgorithm(*algo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "privtest:", err)
			os.Exit(2)
		}
		algos = []stm.Algorithm{a}
	}

	exit := 0
	for _, a := range algos {
		res, err := priv.Run(priv.Config{
			Algorithm:  a,
			Nodes:      *nodes,
			Readers:    *readers,
			Iterations: *iters,
			TornWindow: *torn,
			// Plain private access only where the algorithm's fences make
			// it genuinely race-free; see internal/priv for the rationale.
			AtomicPrivate: a == stm.TL2 || a == stm.Ord || a == stm.OrdQueue ||
				a == stm.PVRWriterOnly || a == stm.PVRHybrid,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "privtest: %v: %v\n", a, err)
			os.Exit(1)
		}
		verdict := "SAFE"
		if !res.Clean() {
			if a.Safe() {
				verdict = "VIOLATION (BUG!)"
				exit = 1
			} else {
				verdict = "UNSAFE (expected: privatization-unsafe baseline)"
			}
		} else if !a.Safe() {
			verdict = "no violation observed this run (baseline is still unsafe by design)"
		}
		fmt.Printf("%-14s %v  -> %s\n", a, res, verdict)
	}
	os.Exit(exit)
}
