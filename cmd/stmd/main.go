// stmd serves the transactional KV store over TCP (see internal/server for
// the wire protocol). It runs until SIGTERM/SIGINT, then drains gracefully:
// in-flight transactions finish, the worker pool's STM threads are closed
// (flushing reclaim fronts), and the final reclaim drain is asserted empty.
//
//	stmd -addr :7077 -alg pvrStore -workers 8 -maxconns 4096 \
//	     -writesetcap 0 -tenant 'noisy:ws=8,deadline=50ms'
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	stm "privstm"
	"privstm/internal/server"
)

// tenantFlags accumulates repeated -tenant specs of the form
// "name:rs=N,ws=N,deadline=DUR" (any subset of the limits).
type tenantFlags struct {
	names  []string
	quotas []server.Quota
}

func (t *tenantFlags) String() string { return strings.Join(t.names, ",") }

func (t *tenantFlags) Set(s string) error {
	name, spec, ok := strings.Cut(s, ":")
	if !ok || name == "" {
		return fmt.Errorf("want name:rs=N,ws=N,deadline=DUR, got %q", s)
	}
	var q server.Quota
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("bad quota field %q", part)
		}
		switch k {
		case "rs":
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("bad rs=%q: %v", v, err)
			}
			q.ReadSetCap = n
		case "ws":
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("bad ws=%q: %v", v, err)
			}
			q.WriteSetCap = n
		case "deadline":
			d, err := time.ParseDuration(v)
			if err != nil {
				return fmt.Errorf("bad deadline=%q: %v", v, err)
			}
			q.TxnDeadline = d
		default:
			return fmt.Errorf("unknown quota field %q (want rs, ws, deadline)", k)
		}
	}
	t.names = append(t.names, name)
	t.quotas = append(t.quotas, q)
	return nil
}

func main() {
	var (
		addr        = flag.String("addr", ":7077", "listen address")
		algName     = flag.String("alg", "pvrStore", "STM algorithm (must be privatization-safe)")
		workers     = flag.Int("workers", 8, "worker-pool size = STM thread count")
		maxConns    = flag.Int("maxconns", 4096, "maximum concurrent connections")
		deadline    = flag.Duration("deadline", 0, "default per-transaction deadline (0 = none)")
		readSetCap  = flag.Int("readsetcap", 0, "default read-set cap per transaction (0 = none)")
		writeSetCap = flag.Int("writesetcap", 0, "default write-set cap per transaction (0 = none)")
		buckets     = flag.Int("buckets", 1024, "hash-map buckets")
		stripes     = flag.Int("stripes", 256, "abstract-lock key stripes")
		clockName   = flag.String("clock", "gv1", "version-clock scheme: gv1, gv5, local")
		cmName      = flag.String("cm", "backoff", "contention manager: backoff, karma, serialize")
		maxAttempts = flag.Int("maxattempts", 0, "abort budget before serialized escalation (0 = default)")
		heapWords   = flag.Int("heapwords", 1<<22, "transactional heap capacity in words")
		drainWait   = flag.Duration("drainwait", 30*time.Second, "graceful-drain budget on SIGTERM")
	)
	var tenants tenantFlags
	flag.Var(&tenants, "tenant", "per-tenant quota name:rs=N,ws=N,deadline=DUR (repeatable)")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "stmd: "+format+"\n", args...)
		os.Exit(2)
	}
	alg, err := stm.ParseAlgorithm(*algName)
	if err != nil {
		fail("%v", err)
	}
	clockMode, err := stm.ParseClockMode(*clockName)
	if err != nil {
		fail("%v", err)
	}
	cmPolicy, err := stm.ParseCMPolicy(*cmName)
	if err != nil {
		fail("%v", err)
	}

	opts := []server.Option{
		server.WithAlgorithm(alg),
		server.WithWorkers(*workers),
		server.WithMaxConns(*maxConns),
		server.WithTxnDeadline(*deadline),
		server.WithReadSetCap(*readSetCap),
		server.WithWriteSetCap(*writeSetCap),
		server.WithBuckets(*buckets, *stripes),
		server.WithSTMConfig(stm.Config{
			HeapWords:         *heapWords,
			Clock:             clockMode,
			ContentionManager: cmPolicy,
			MaxAttempts:       *maxAttempts,
		}),
	}
	for i, name := range tenants.names {
		opts = append(opts, server.WithTenantQuota(name, tenants.quotas[i]))
	}
	srv, err := server.New(opts...)
	if err != nil {
		fail("%v", err)
	}

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*addr) }()
	// Give the listener a beat to bind so the startup line reports reality.
	time.Sleep(50 * time.Millisecond)
	select {
	case err := <-done:
		fail("%v", err)
	default:
	}
	fmt.Fprintf(os.Stderr, "stmd: serving %s on %s (%d workers, %d max conns)\n",
		srv.Algorithm(), srv.Addr(), srv.Workers(), *maxConns)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "stmd: %v — draining\n", s)
	case err := <-done:
		fail("%v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "stmd: shutdown: %v\n", err)
		os.Exit(1)
	}
	if err := <-done; err != nil {
		fmt.Fprintf(os.Stderr, "stmd: serve: %v\n", err)
		os.Exit(1)
	}
	final := struct {
		Server  server.StatsSnapshot `json:"server"`
		Reclaim any                  `json:"reclaim"`
	}{srv.Stats(), srv.ReclaimStats()}
	out, _ := json.MarshalIndent(final, "", "  ")
	fmt.Println(string(out))
	if rs := srv.ReclaimStats(); rs.Limbo != 0 {
		fmt.Fprintf(os.Stderr, "stmd: %d extents still quarantined\n", rs.Limbo)
		os.Exit(1)
	}
}
