// Flag cross-validation: stmbench grew many mode and modifier flags, and
// inconsistent combinations used to be silently ignored or half-applied
// (e.g. -orderbatch with a filter that excludes Ord, -zipf with the -aa
// noise control, -remote with a local sweep). crossValidate rejects them
// uniformly: exit 2 with a usage message on stderr, like the long-standing
// -zipf range check.
package main

import (
	"fmt"
	"strings"
)

// flagValues carries the parsed values crossValidate needs beyond
// mere is-this-flag-set membership.
type flagValues struct {
	remote     string // -remote addr ("" = off)
	fig        string
	compare    bool
	tdscheck   bool
	list       bool
	clocksweep bool
	reclaim    bool
	tdssweep   bool
	micro      bool
	aa         bool
	algos      string // -algos curve filter
	orderBatch int
	zipf       float64
}

// modeNames maps each exclusive top-level mode to the flag that selects it.
func (v *flagValues) modes(set map[string]bool) []string {
	var ms []string
	if v.remote != "" {
		ms = append(ms, "-remote")
	}
	if v.compare {
		ms = append(ms, "-compare")
	}
	if v.tdscheck {
		ms = append(ms, "-tdscheck")
	}
	if v.list {
		ms = append(ms, "-list")
	}
	if v.clocksweep {
		ms = append(ms, "-clocksweep")
	}
	if v.reclaim {
		ms = append(ms, "-reclaimsweep")
	}
	if v.tdssweep {
		ms = append(ms, "-tdssweep")
	}
	if set["fig"] && v.fig != "" {
		ms = append(ms, "-fig")
	}
	return ms
}

// localOnlyWithRemote lists flags that configure the in-process harness or
// engines and therefore cannot apply to a -remote run (the server was
// configured when stmd started).
var localOnlyWithRemote = []string{
	"fig", "threads", "txns", "scale", "reps", "algos", "mix", "tracker",
	"noextend", "cm", "oreclayout", "nohintcache", "clock", "orderbatch",
	"tdsthreads", "tdsgain", "noreclaim", "nosandbox", "pairs", "aa",
	"basejson", "maxattempts", "micro", "tolerance", "csv",
}

// remoteOnly lists flags meaningful only with -remote.
var remoteOnly = []string{"conns", "remotemix", "tenants", "keys", "batch"}

// ordLabels are the -algos labels whose engines consult -orderbatch.
func hasOrdAlgo(algos string) bool {
	for _, name := range strings.Split(algos, ",") {
		switch strings.TrimSpace(name) {
		case "Ord", "OrdQueue":
			return true
		}
	}
	return false
}

// crossValidate checks flag *combinations* (each flag's own value range is
// validated at its point of use). set holds the names explicitly passed on
// the command line (flag.Visit).
func crossValidate(set map[string]bool, v flagValues) error {
	if ms := v.modes(set); len(ms) > 1 {
		return fmt.Errorf("%s select conflicting modes; pick one", strings.Join(ms, " and "))
	}

	if v.remote != "" {
		for _, name := range localOnlyWithRemote {
			if set[name] {
				return fmt.Errorf("-%s configures the local harness and cannot combine with -remote (server-side knobs are stmd flags)", name)
			}
		}
	} else {
		for _, name := range remoteOnly {
			if set[name] {
				return fmt.Errorf("-%s only applies to -remote runs", name)
			}
		}
	}

	anySweep := v.clocksweep || v.reclaim || v.tdssweep
	if set["pairs"] && !anySweep {
		return fmt.Errorf("-pairs only applies to the paired sweeps (-clocksweep, -reclaimsweep, -tdssweep)")
	}
	if set["basejson"] && !anySweep {
		return fmt.Errorf("-basejson only applies to the paired sweeps (-clocksweep, -reclaimsweep, -tdssweep)")
	}
	if v.aa && !v.clocksweep {
		return fmt.Errorf("-aa is the -clocksweep A/A noise control; it needs -clocksweep")
	}
	if v.aa && set["zipf"] {
		return fmt.Errorf("-zipf cannot combine with -aa: the A/A control must run the baseline's exact configuration")
	}
	if set["mix"] && anySweep {
		return fmt.Errorf("-mix only applies to figure runs, not the paired sweeps")
	}
	if (set["tdsthreads"] || set["tdsgain"]) && !v.tdscheck {
		return fmt.Errorf("-tdsthreads/-tdsgain only apply to -tdscheck")
	}
	if set["tolerance"] && !v.compare {
		return fmt.Errorf("-tolerance only applies to -compare")
	}
	if v.orderBatch > 0 && set["algos"] && !hasOrdAlgo(v.algos) {
		return fmt.Errorf("-orderbatch %d has no effect: the -algos filter %q excludes Ord and OrdQueue", v.orderBatch, v.algos)
	}
	if set["algos"] && v.clocksweep {
		return fmt.Errorf("-algos does not filter -clocksweep (the sweep fixes its own engine matrix)")
	}
	if v.micro && set["fig"] && v.fig == "" {
		return fmt.Errorf("-fig \"\" with -micro: drop the empty -fig")
	}
	return nil
}
