// Command stmbench regenerates the paper's evaluation figures: every panel
// of Figure 3 (throughput vs. thread count for eight STM systems) and
// Figure 4 (privatization-fence and visible-read statistics for pvrBase vs.
// pvrCAS), plus the single-thread overhead comparison quoted in §V's text.
//
// Examples:
//
//	stmbench -fig 3a                 # one panel at CI scale
//	stmbench -fig all -scale 1       # the full evaluation at paper scale
//	stmbench -fig 3e,3g,t1 -json out.json
//	stmbench -fig 3c -threads 1,2,4,8,16,32 -txns 100000
//	stmbench -fig 3e -tracker list -noextend   # pre-optimization ablation
//	stmbench -compare old.json new.json        # per-cell throughput deltas
//	stmbench -remote :7077 -conns 1000 -dur 5s # drive a running stmd
//	stmbench -list                   # show the experiment index
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	stm "privstm"
	"privstm/internal/bench"
)

func main() {
	var (
		figID    = flag.String("fig", "", "comma-separated figures to regenerate (3a..3h, 4a/4c/4e/4g, t1, or 'all')")
		threads  = flag.String("threads", "1,2,4,8,16,32", "comma-separated thread sweep")
		txns     = flag.Int("txns", 0, "transactions per thread (0 = duration mode; paper used 100000)")
		dur      = flag.Duration("dur", 300*time.Millisecond, "per-cell duration in duration mode")
		scale    = flag.Int("scale", 8, "structure-size divisor (1 = paper scale)")
		reps     = flag.Int("reps", 1, "runs averaged per cell (paper used 3)")
		seed     = flag.Uint64("seed", 0, "workload RNG seed (0 = default)")
		list     = flag.Bool("list", false, "list the experiment index and exit")
		csvPath  = flag.String("csv", "", "also write raw measurements to this CSV file")
		jsonPath = flag.String("json", "", "also write raw measurements to this JSON file (for -compare)")
		algos    = flag.String("algos", "", "comma-separated curve filter (figure labels, e.g. TL2,pvrStore)")
		mix      = flag.String("mix", "", "override op mix as insert/delete/lookup (e.g. 20/20/60)")
		tracker  = flag.String("tracker", "slot", "incomplete-transaction tracker: slot, list, or scan")
		noextend = flag.Bool("noextend", false, "disable snapshot extension (pre-optimization ablation)")
		cmName   = flag.String("cm", "backoff", "contention manager: backoff, karma, or serialize")
		layout   = flag.String("oreclayout", "aos", "orec-table memory layout: aos or soa")
		nocache  = flag.Bool("nohintcache", false, "disable the thread-local orec hint cache (ablation)")
		clockStr = flag.String("clock", "gv1", "version-clock scheme: gv1, gv5, or local")
		obatch   = flag.Int("orderbatch", 0, "Ord flat-combining commit batch bound (0 = off)")
		csweep   = flag.Bool("clocksweep", false, "run the paired clock-scalability sweep (fig clk); writes candidates to -json, gv1 baselines to -basejson")
		rsweep   = flag.Bool("reclaimsweep", false, "run the paired reclamation-overhead sweep (fig rcl); writes reclaim cells to -json, pool baselines to -basejson")
		tsweep   = flag.Bool("tdssweep", false, "run the paired semantic-structure sweep (fig tds); writes tds cells to -json, tlib baselines to -basejson")
		tcheck   = flag.Bool("tdscheck", false, "check tds acceptance: stmbench -tdscheck [-tdsthreads N] [-tdsgain X] tds.json tds_baseline.json")
		tdsThrd  = flag.Int("tdsthreads", 8, "with -tdscheck: thread count of the acceptance cell")
		tdsGain  = flag.Float64("tdsgain", 1.15, "with -tdscheck: required tds/tlib throughput ratio")
		zipf     = flag.Float64("zipf", 0, "key-distribution skew for every cell: 0 = uniform, (0,1) = YCSB Zipf theta")
		noRecl   = flag.Bool("noreclaim", false, "recycle nodes through the legacy per-thread pool instead of the epoch reclaimer")
		noSandbx = flag.Bool("nosandbox", false, "disable validate-before-dangerous-use sandbox checkpoints (ablation)")
		pairs    = flag.Int("pairs", 3, "with -clocksweep: interleaved A/B pairs per cell")
		aa       = flag.Bool("aa", false, "with -clocksweep: A/A noise control (candidate = baseline config)")
		baseJSON = flag.String("basejson", "", "with -clocksweep: write the gv1 baseline cells to this JSON file")
		maxAtt   = flag.Int("maxattempts", 0, "abort budget before serialized-irrevocable escalation (0 = default, negative disables)")
		micro    = flag.Bool("micro", false, "also run the read-path microbenchmarks (embedded in -json output)")
		tol      = flag.Float64("tolerance", 0, "with -compare: exit nonzero if the worst delta is below -tolerance percent (0 = report only)")
		compare  = flag.Bool("compare", false, "compare two -json files: stmbench -compare old.json new.json")
		remote   = flag.String("remote", "", "drive a running stmd at this address instead of the in-process harness")
		conns    = flag.Int("conns", 200, "with -remote: concurrent client connections")
		keys     = flag.Int("keys", 1<<16, "with -remote: key-space size")
		batch    = flag.Int("batch", 4, "with -remote: keys per multi-key request")
		rmix     = flag.String("remotemix", "", "with -remote: get/put/cas/delete/privatize mix (e.g. 70/20/5/4/1)")
		tenants  = flag.String("tenants", "", "with -remote: weighted tenant list name:weight[,name:weight...]")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile to this file at exit")
		mutexPrf = flag.String("mutexprofile", "", "write a mutex-contention profile to this file at exit")
	)
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if err := crossValidate(explicit, flagValues{
		remote:     *remote,
		fig:        *figID,
		compare:    *compare,
		tdscheck:   *tcheck,
		list:       *list,
		clocksweep: *csweep,
		reclaim:    *rsweep,
		tdssweep:   *tsweep,
		micro:      *micro,
		aa:         *aa,
		algos:      *algos,
		orderBatch: *obatch,
		zipf:       *zipf,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "stmbench: %v\nstmbench: run with -h for flag usage\n", err)
		os.Exit(2)
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "stmbench: -compare needs exactly two JSON files: old new")
			os.Exit(2)
		}
		worst, err := bench.Compare(os.Stdout, flag.Arg(0), flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		if *tol > 0 && worst < -*tol {
			fmt.Fprintf(os.Stderr, "stmbench: worst delta %+.1f%% exceeds tolerance -%.1f%%\n", worst, *tol)
			os.Exit(1)
		}
		return
	}

	if *tcheck {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "stmbench: -tdscheck needs exactly two JSON files: candidate baseline")
			os.Exit(2)
		}
		err := bench.CheckTdsAcceptance(flag.Arg(0), flag.Arg(1), *tdsThrd, *tdsGain, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		fmt.Printf("tds acceptance OK: map abort rate improved and throughput >= %.2fx at %d threads\n",
			*tdsGain, *tdsThrd)
		return
	}

	if *list {
		fmt.Println("Experiment index (paper figure -> harness id):")
		for _, f := range bench.Figures {
			fmt.Printf("  %-3s  %-12s  %s\n", f.ID, f.Kind, f.Title)
		}
		return
	}
	if *figID == "" && !*micro && !*csweep && !*rsweep && !*tsweep && *remote == "" {
		fmt.Fprintln(os.Stderr, "stmbench: -fig is required (try -list, -micro, -remote, -clocksweep, -reclaimsweep, or -tdssweep)")
		os.Exit(2)
	}
	if *zipf < 0 || *zipf >= 1 {
		fmt.Fprintf(os.Stderr, "stmbench: bad -zipf %v (want 0 for uniform or theta in (0,1))\n", *zipf)
		os.Exit(2)
	}

	if *remote != "" {
		runRemote(*remote, *conns, *keys, *batch, *dur, *zipf, *seed, *rmix, *tenants, *jsonPath)
		return
	}

	var trackerKind stm.TrackerKind
	switch *tracker {
	case "slot", "":
		trackerKind = stm.TrackerSlot
	case "list":
		trackerKind = stm.TrackerList
	case "scan":
		trackerKind = stm.TrackerScan
	default:
		fmt.Fprintf(os.Stderr, "stmbench: bad -tracker %q (want slot, list, or scan)\n", *tracker)
		os.Exit(2)
	}

	cmPolicy, err := stm.ParseCMPolicy(*cmName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stmbench: bad -cm %q (want backoff, karma, or serialize)\n", *cmName)
		os.Exit(2)
	}

	orecLayout, err := stm.ParseOrecLayout(*layout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stmbench: bad -oreclayout %q (want aos or soa)\n", *layout)
		os.Exit(2)
	}

	clockMode, err := stm.ParseClockMode(*clockStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stmbench: bad -clock %q (want gv1, gv5, or local)\n", *clockStr)
		os.Exit(2)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *mutexPrf != "" {
		// Sample every contention event; the spin-heavy STM paths make the
		// default sampling rate miss the interesting short waits.
		runtime.SetMutexProfileFraction(1)
		defer func() {
			f, err := os.Create(*mutexPrf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "stmbench:", err)
				return
			}
			defer f.Close()
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "stmbench:", err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "stmbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush the final allocation state
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "stmbench:", err)
			}
		}()
	}

	ths, err := bench.ParseThreads(*threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(2)
	}
	hc := bench.HarnessConfig{
		Threads:          ths,
		TxnsPerThread:    *txns,
		Duration:         *dur,
		Scale:            *scale,
		Reps:             *reps,
		Seed:             *seed,
		Tracker:          trackerKind,
		DisableExtension: *noextend,
		CM:               cmPolicy,
		MaxAttempts:      *maxAtt,
		OrecLayout:       orecLayout,
		DisableHintCache: *nocache,
		Clock:            clockMode,
		OrderBatch:       *obatch,
		DisableSandbox:   *noSandbx,
		ZipfTheta:        *zipf,
	}
	if *noRecl {
		hc.Free = bench.FreePool
	}

	fmt.Printf("# GOMAXPROCS=%d NumCPU=%d scale=1/%d tracker=%s extension=%s cm=%s maxattempts=%d oreclayout=%s hintcache=%s clock=%s orderbatch=%d reclaim=%s sandbox=%s zipf=%.2f\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU(), *scale, *tracker, onOff(!*noextend), cmPolicy, *maxAtt,
		orecLayout, onOff(!*nocache), clockMode, *obatch, onOff(!*noRecl), onOff(!*noSandbx), *zipf)
	if runtime.NumCPU() < 8 {
		fmt.Printf("# note: %d CPUs — thread counts beyond that timeshare; expect curves to flatten there\n", runtime.NumCPU())
	}
	fmt.Println()

	var curveFilter []stm.Algorithm
	if *algos != "" {
		for _, name := range strings.Split(*algos, ",") {
			a, err := stm.ParseAlgorithm(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "stmbench:", err)
				os.Exit(2)
			}
			curveFilter = append(curveFilter, a)
		}
	}

	if *rsweep {
		base, cand, err := bench.RunReclaimSweep(os.Stdout, hc, curveFilter, *pairs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		label := fmt.Sprintf("reclaimsweep pairs=%d scale=1/%d", *pairs, *scale)
		if *jsonPath != "" {
			bench.SortMeasurements(cand)
			writeJSONTo(*jsonPath, label+" (epoch reclaim)", cand)
		}
		if *baseJSON != "" {
			bench.SortMeasurements(base)
			writeJSONTo(*baseJSON, label+" (pool baselines)", base)
		}
		return
	}

	if *tsweep {
		base, cand, err := bench.RunTdsSweep(os.Stdout, hc, curveFilter, *pairs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		label := fmt.Sprintf("tdssweep pairs=%d zipf=%.2f", *pairs, *zipf)
		if *jsonPath != "" {
			bench.SortMeasurements(cand)
			writeJSONTo(*jsonPath, label+" (tds semantic structures)", cand)
		}
		if *baseJSON != "" {
			bench.SortMeasurements(base)
			writeJSONTo(*baseJSON, label+" (tlib word-level baselines)", base)
		}
		return
	}

	if *csweep {
		base, cand, err := bench.RunClockSweep(os.Stdout, hc, nil, *pairs, *aa)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		label := fmt.Sprintf("clocksweep pairs=%d aa=%v scale=1/%d", *pairs, *aa, *scale)
		if *jsonPath != "" {
			bench.SortMeasurements(cand)
			writeJSONTo(*jsonPath, label+" (candidates)", cand)
		}
		if *baseJSON != "" {
			bench.SortMeasurements(base)
			writeJSONTo(*baseJSON, label+" (gv1 baselines)", base)
		}
		return
	}

	var mixOverride *bench.Mix
	if *mix != "" {
		var ins, del, look int
		if _, err := fmt.Sscanf(*mix, "%d/%d/%d", &ins, &del, &look); err != nil ||
			ins < 0 || del < 0 || look < 0 || ins+del+look != 100 {
			fmt.Fprintf(os.Stderr, "stmbench: bad -mix %q (want e.g. 20/20/60 summing to 100)\n", *mix)
			os.Exit(2)
		}
		mixOverride = &bench.Mix{InsertPct: ins, DeletePct: del}
	}

	var figs []bench.Figure
	if *figID == "all" {
		figs = bench.Figures
	} else if *figID != "" {
		for _, id := range strings.Split(*figID, ",") {
			f, err := bench.FigureByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "stmbench:", err)
				os.Exit(2)
			}
			figs = append(figs, f)
		}
	}
	var allMs []*bench.Measurement
	for _, f := range figs {
		if curveFilter != nil && f.Kind != "overhead" {
			f.Algorithms = curveFilter
		}
		if mixOverride != nil && f.Kind == "throughput" {
			f.Mix = *mixOverride
			f.Title += fmt.Sprintf(" [mix %s]", f.Mix)
		}
		ms, err := bench.RunFigure(os.Stdout, f, hc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stmbench: figure %s: %v\n", f.ID, err)
			os.Exit(1)
		}
		allMs = append(allMs, ms...)
	}
	var micros []bench.MicroResult
	if *micro {
		micros = bench.ReadPathMicros()
		bench.WriteMicroTable(os.Stdout, micros)
		fmt.Println()
	}
	if *csvPath != "" {
		out, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		bench.SortMeasurements(allMs)
		bench.WriteCSV(out, allMs)
		if err := out.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		fmt.Printf("# wrote %d measurements to %s\n", len(allMs), *csvPath)
	}
	if *jsonPath != "" {
		out, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		bench.SortMeasurements(allMs)
		label := fmt.Sprintf("tracker=%s extension=%s scale=1/%d cm=%s oreclayout=%s hintcache=%s clock=%s orderbatch=%d",
			*tracker, onOff(!*noextend), *scale, cmPolicy, orecLayout, onOff(!*nocache), clockMode, *obatch)
		werr := bench.WriteJSONReport(out, label, allMs, micros)
		if cerr := out.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", werr)
			os.Exit(1)
		}
		fmt.Printf("# wrote %d measurements to %s\n", len(allMs), *jsonPath)
	}
}

// runRemote dispatches the -remote macro-benchmark against a running stmd
// and exits the mode (writing the cell to -json when asked).
func runRemote(addr string, conns, keys, batch int, dur time.Duration,
	zipf float64, seed uint64, mixSpec, tenantSpec, jsonPath string) {
	mixv := bench.DefaultRemoteMix
	if mixSpec != "" {
		var g, p, c, d, pr int
		if _, err := fmt.Sscanf(mixSpec, "%d/%d/%d/%d/%d", &g, &p, &c, &d, &pr); err != nil ||
			g < 0 || p < 0 || c < 0 || d < 0 || pr < 0 || g+p+c+d+pr != 100 {
			fmt.Fprintf(os.Stderr, "stmbench: bad -remotemix %q (want get/put/cas/delete/privatize summing to 100, e.g. 70/20/5/4/1)\n", mixSpec)
			os.Exit(2)
		}
		mixv = bench.RemoteMix{GetPct: g, PutPct: p, CASPct: c, DeletePct: d, PrivatizePct: pr}
	}
	var rts []bench.RemoteTenant
	if tenantSpec != "" {
		for _, part := range strings.Split(tenantSpec, ",") {
			name, wstr, hasWeight := strings.Cut(part, ":")
			if name == "" {
				fmt.Fprintf(os.Stderr, "stmbench: bad -tenants entry %q (want name or name:weight)\n", part)
				os.Exit(2)
			}
			w := 1
			if hasWeight {
				n, err := strconv.Atoi(wstr)
				if err != nil || n <= 0 {
					fmt.Fprintf(os.Stderr, "stmbench: bad -tenants weight in %q (want a positive integer)\n", part)
					os.Exit(2)
				}
				w = n
			}
			rts = append(rts, bench.RemoteTenant{Name: name, Weight: w})
		}
	}
	rc := bench.RemoteConfig{
		Addr:     addr,
		Conns:    conns,
		Duration: dur,
		Keys:     keys,
		Batch:    batch,
		Zipf:     zipf,
		Seed:     seed,
		Mix:      mixv,
		Tenants:  rts,
	}
	m, err := bench.RunRemote(os.Stdout, rc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	if jsonPath != "" {
		label := fmt.Sprintf("remote=%s conns=%d keys=%d batch=%d zipf=%.2f",
			addr, rc.Conns, rc.Keys, rc.Batch, zipf)
		writeJSONTo(jsonPath, label, []*bench.Measurement{m})
	}
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// writeJSONTo writes measurements to path, exiting on error.
func writeJSONTo(path, label string, ms []*bench.Measurement) {
	out, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	werr := bench.WriteJSON(out, label, ms)
	if cerr := out.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", werr)
		os.Exit(1)
	}
	fmt.Printf("# wrote %d measurements to %s\n", len(ms), path)
}
