// Command stmbench regenerates the paper's evaluation figures: every panel
// of Figure 3 (throughput vs. thread count for eight STM systems) and
// Figure 4 (privatization-fence and visible-read statistics for pvrBase vs.
// pvrCAS), plus the single-thread overhead comparison quoted in §V's text.
//
// Examples:
//
//	stmbench -fig 3a                 # one panel at CI scale
//	stmbench -fig all -scale 1       # the full evaluation at paper scale
//	stmbench -fig 3c -threads 1,2,4,8,16,32 -txns 100000
//	stmbench -list                   # show the experiment index
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	stm "privstm"
	"privstm/internal/bench"
)

func main() {
	var (
		figID   = flag.String("fig", "", "figure to regenerate (3a..3h, 4a/4c/4e/4g, t1, or 'all')")
		threads = flag.String("threads", "1,2,4,8,16,32", "comma-separated thread sweep")
		txns    = flag.Int("txns", 0, "transactions per thread (0 = duration mode; paper used 100000)")
		dur     = flag.Duration("dur", 300*time.Millisecond, "per-cell duration in duration mode")
		scale   = flag.Int("scale", 8, "structure-size divisor (1 = paper scale)")
		reps    = flag.Int("reps", 1, "runs averaged per cell (paper used 3)")
		seed    = flag.Uint64("seed", 0, "workload RNG seed (0 = default)")
		list    = flag.Bool("list", false, "list the experiment index and exit")
		csvPath = flag.String("csv", "", "also write raw measurements to this CSV file")
		algos   = flag.String("algos", "", "comma-separated curve filter (figure labels, e.g. TL2,pvrStore)")
		mix     = flag.String("mix", "", "override op mix as insert/delete/lookup (e.g. 20/20/60)")
	)
	flag.Parse()

	if *list {
		fmt.Println("Experiment index (paper figure -> harness id):")
		for _, f := range bench.Figures {
			fmt.Printf("  %-3s  %-12s  %s\n", f.ID, f.Kind, f.Title)
		}
		return
	}
	if *figID == "" {
		fmt.Fprintln(os.Stderr, "stmbench: -fig is required (try -list)")
		os.Exit(2)
	}

	ths, err := bench.ParseThreads(*threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(2)
	}
	hc := bench.HarnessConfig{
		Threads:       ths,
		TxnsPerThread: *txns,
		Duration:      *dur,
		Scale:         *scale,
		Reps:          *reps,
		Seed:          *seed,
	}

	fmt.Printf("# GOMAXPROCS=%d NumCPU=%d scale=1/%d\n", runtime.GOMAXPROCS(0), runtime.NumCPU(), *scale)
	if runtime.NumCPU() < 8 {
		fmt.Printf("# note: %d CPUs — thread counts beyond that timeshare; expect curves to flatten there\n", runtime.NumCPU())
	}
	fmt.Println()

	var mixOverride *bench.Mix
	if *mix != "" {
		var ins, del, look int
		if _, err := fmt.Sscanf(*mix, "%d/%d/%d", &ins, &del, &look); err != nil ||
			ins < 0 || del < 0 || look < 0 || ins+del+look != 100 {
			fmt.Fprintf(os.Stderr, "stmbench: bad -mix %q (want e.g. 20/20/60 summing to 100)\n", *mix)
			os.Exit(2)
		}
		mixOverride = &bench.Mix{InsertPct: ins, DeletePct: del}
	}

	var curveFilter []stm.Algorithm
	if *algos != "" {
		for _, name := range strings.Split(*algos, ",") {
			a, err := stm.ParseAlgorithm(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "stmbench:", err)
				os.Exit(2)
			}
			curveFilter = append(curveFilter, a)
		}
	}

	figs := bench.Figures
	if *figID != "all" {
		f, err := bench.FigureByID(*figID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(2)
		}
		figs = []bench.Figure{f}
	}
	var allMs []*bench.Measurement
	for _, f := range figs {
		if curveFilter != nil && f.Kind != "overhead" {
			f.Algorithms = curveFilter
		}
		if mixOverride != nil && f.Kind == "throughput" {
			f.Mix = *mixOverride
			f.Title += fmt.Sprintf(" [mix %s]", f.Mix)
		}
		ms, err := bench.RunFigure(os.Stdout, f, hc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stmbench: figure %s: %v\n", f.ID, err)
			os.Exit(1)
		}
		allMs = append(allMs, ms...)
	}
	if *csvPath != "" {
		out, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		bench.SortMeasurements(allMs)
		bench.WriteCSV(out, allMs)
		if err := out.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		fmt.Printf("# wrote %d measurements to %s\n", len(allMs), *csvPath)
	}
}
