package main

import (
	"strings"
	"testing"
)

// set builds the explicitly-passed-flags map the way main does via
// flag.Visit.
func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func TestCrossValidateAccepts(t *testing.T) {
	cases := []struct {
		name string
		set  map[string]bool
		v    flagValues
	}{
		{"no flags", set(), flagValues{}},
		{"plain figure", set("fig"), flagValues{fig: "3a"}},
		{"figure with mix and algos", set("fig", "mix", "algos"), flagValues{fig: "3a", algos: "TL2,pvrStore"}},
		{"remote with its modifiers", set("remote", "conns", "keys", "batch", "remotemix", "tenants", "zipf", "json", "dur", "seed"),
			flagValues{remote: ":7077", zipf: 0.8}},
		{"clocksweep with pairs and aa", set("clocksweep", "pairs", "aa", "basejson"),
			flagValues{clocksweep: true, aa: true}},
		{"tdssweep with zipf", set("tdssweep", "zipf", "pairs"), flagValues{tdssweep: true, zipf: 0.6}},
		{"compare with tolerance", set("compare", "tolerance"), flagValues{compare: true}},
		{"tdscheck with knobs", set("tdscheck", "tdsthreads", "tdsgain"), flagValues{tdscheck: true}},
		{"orderbatch with Ord in filter", set("fig", "orderbatch", "algos"),
			flagValues{fig: "3a", orderBatch: 8, algos: "Ord,TL2"}},
		{"orderbatch with OrdQueue in filter", set("fig", "orderbatch", "algos"),
			flagValues{fig: "3b", orderBatch: 4, algos: "OrdQueue"}},
		{"orderbatch without a filter", set("fig", "orderbatch"), flagValues{fig: "3a", orderBatch: 8}},
		{"micro alone", set("micro"), flagValues{micro: true}},
		{"zipf on a figure", set("fig", "zipf"), flagValues{fig: "3e", zipf: 0.9}},
	}
	for _, tc := range cases {
		if err := crossValidate(tc.set, tc.v); err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
	}
}

func TestCrossValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		set  map[string]bool
		v    flagValues
		want string // substring of the error
	}{
		{"remote and clocksweep", set("remote", "clocksweep"),
			flagValues{remote: ":7077", clocksweep: true}, "conflicting modes"},
		{"remote and fig", set("remote", "fig"),
			flagValues{remote: ":7077", fig: "3a"}, "conflicting modes"},
		{"compare and tdscheck", set("compare", "tdscheck"),
			flagValues{compare: true, tdscheck: true}, "conflicting modes"},
		{"list and reclaimsweep", set("list", "reclaimsweep"),
			flagValues{list: true, reclaim: true}, "conflicting modes"},
		{"remote with tracker", set("remote", "tracker"),
			flagValues{remote: ":7077"}, "-tracker"},
		{"remote with threads", set("remote", "threads"),
			flagValues{remote: ":7077"}, "-threads"},
		{"remote with clock", set("remote", "clock"),
			flagValues{remote: ":7077"}, "-clock"},
		{"remote with csv", set("remote", "csv"),
			flagValues{remote: ":7077"}, "-csv"},
		{"conns without remote", set("fig", "conns"),
			flagValues{fig: "3a"}, "-conns"},
		{"tenants without remote", set("tenants"),
			flagValues{list: true}, "-tenants"},
		{"batch without remote", set("micro", "batch"),
			flagValues{micro: true}, "-batch"},
		{"pairs without a sweep", set("fig", "pairs"),
			flagValues{fig: "3a"}, "-pairs"},
		{"basejson without a sweep", set("fig", "basejson"),
			flagValues{fig: "3a"}, "-basejson"},
		{"aa without clocksweep", set("fig", "aa"),
			flagValues{fig: "3a", aa: true}, "-aa"},
		{"zipf with aa", set("clocksweep", "aa", "zipf"),
			flagValues{clocksweep: true, aa: true, zipf: 0.5}, "-zipf"},
		{"mix with a sweep", set("tdssweep", "mix"),
			flagValues{tdssweep: true}, "-mix"},
		{"tdsthreads without tdscheck", set("fig", "tdsthreads"),
			flagValues{fig: "3a"}, "-tdsthreads"},
		{"tolerance without compare", set("fig", "tolerance"),
			flagValues{fig: "3a"}, "-tolerance"},
		{"orderbatch with non-Ord filter", set("fig", "orderbatch", "algos"),
			flagValues{fig: "3a", orderBatch: 8, algos: "TL2,pvrStore"}, "-orderbatch"},
		{"algos with clocksweep", set("clocksweep", "algos"),
			flagValues{clocksweep: true, algos: "Ord"}, "-algos"},
	}
	for _, tc := range cases {
		err := crossValidate(tc.set, tc.v)
		if err == nil {
			t.Errorf("%s: expected an error, got nil", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestHasOrdAlgo(t *testing.T) {
	for spec, want := range map[string]bool{
		"Ord":          true,
		"OrdQueue":     true,
		" Ord , TL2 ":  true,
		"TL2,pvrStore": false,
		"pvrHybrid":    false,
		"ordqueue":     false, // labels are case-sensitive figure labels
		"":             false,
	} {
		if got := hasOrdAlgo(spec); got != want {
			t.Errorf("hasOrdAlgo(%q) = %v, want %v", spec, got, want)
		}
	}
}
