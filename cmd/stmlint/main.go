// Command stmlint statically enforces the STM runtime's concurrency
// invariants: atomic access discipline, metadata accessor discipline,
// transaction-body purity, and lock-copy freedom. See internal/analysis
// and the "Static checks" section of CORRECTNESS.md.
//
// Usage:
//
//	stmlint [-rules list] [packages]
//
// Packages follow the go tool's pattern shape (default "./..."). The
// process exits 0 when no findings remain, 1 when findings are reported,
// and 2 on load/usage errors. Suppress an individual finding with a
// trailing or preceding "//stmlint:ignore <rule> <reason>" comment.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"privstm/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("stmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: stmlint [-rules list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analysis.Analyzers()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-20s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" {
		want := make(map[string]bool)
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range suite {
			if want[a.Name] {
				filtered = append(filtered, a)
				delete(want, a.Name)
			}
		}
		for r := range want {
			fmt.Fprintf(stderr, "stmlint: unknown rule %q\n", r)
			return 2
		}
		suite = filtered
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "stmlint:", err)
		return 2
	}
	prog, err := analysis.Load(cwd, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags := prog.Run(suite)
	for _, d := range diags {
		fmt.Fprintln(stdout, d.Format(cwd))
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "stmlint: %d finding(s) in %d package(s)\n", len(diags), len(prog.Pkgs))
		return 1
	}
	return 0
}
