// Command stmlint statically enforces the STM runtime's concurrency
// invariants: atomic access discipline, metadata accessor discipline,
// transaction-body purity, lock-copy freedom, privatization safety
// (uninstrumented access reachable from transactions), and wait-loop
// yield discipline. See internal/analysis and the "Static checks"
// sections of CORRECTNESS.md.
//
// Usage:
//
//	stmlint [-rules list] [-tags list] [-json] [-baseline file] [-ratchet=bool] [packages]
//
// Packages follow the go tool's pattern shape (default "./..."). -tags
// selects a custom build-tag set so tagged variants (slots_race.go under
// privstm_watermark_race) are analyzed instead of silently skipped; run
// the tool once per tag set to cover the matrix. -json emits the findings
// as a machine-readable report on stdout. -baseline names a file of
// Format-style finding lines to tolerate: matching findings are
// suppressed, and — unless -ratchet=false — entries that no longer match
// anything fail the run, so the baseline can only ever shrink. (Run the
// ratchet on the default tag set only: a tagged finding looks stale to
// the other matrix runs.)
//
// The process exits 0 when no findings remain, 1 when findings are
// reported or the baseline is stale, and 2 on load/usage errors. Suppress
// an individual finding with a trailing or preceding
// "//stmlint:ignore <rule> <reason>" comment.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"privstm/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is one diagnostic in the -json report.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// jsonReport is the -json document: enough context (tags, rules) that a
// CI artifact is interpretable on its own.
type jsonReport struct {
	Tags      []string      `json:"tags,omitempty"`
	Rules     []string      `json:"rules"`
	Findings  []jsonFinding `json:"findings"`
	Baselined int           `json:"baselined,omitempty"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("stmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	tags := fs.String("tags", "", "comma-separated custom build tags to analyze under")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON report on stdout")
	baseline := fs.String("baseline", "", "file of tolerated finding lines (see -ratchet)")
	ratchet := fs.Bool("ratchet", true, "fail when baseline entries no longer match (baseline may only shrink)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: stmlint [-rules list] [-tags list] [-json] [-baseline file] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analysis.Analyzers()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-20s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" {
		want := make(map[string]bool)
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range suite {
			if want[a.Name] {
				filtered = append(filtered, a)
				delete(want, a.Name)
			}
		}
		for r := range want {
			fmt.Fprintf(stderr, "stmlint: unknown rule %q\n", r)
			return 2
		}
		suite = filtered
	}

	var tagList []string
	if *tags != "" {
		for _, t := range strings.Split(*tags, ",") {
			if t = strings.TrimSpace(t); t != "" {
				tagList = append(tagList, t)
			}
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "stmlint:", err)
		return 2
	}
	prog, err := analysis.LoadTags(cwd, tagList, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags := prog.Run(suite)

	// Baseline: tolerate exactly the listed finding lines; under the
	// ratchet, entries that match nothing are themselves failures, so the
	// file can only ever shrink toward empty.
	baselined := 0
	var stale []string
	if *baseline != "" {
		tolerated, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "stmlint:", err)
			return 2
		}
		kept := diags[:0]
		for _, d := range diags {
			if _, ok := tolerated[d.Format(cwd)]; ok {
				tolerated[d.Format(cwd)] = true
				baselined++
				continue
			}
			kept = append(kept, d)
		}
		diags = kept
		for line, used := range tolerated {
			if !used {
				stale = append(stale, line)
			}
		}
	}

	if *jsonOut {
		report := jsonReport{Tags: prog.Tags, Findings: []jsonFinding{}, Baselined: baselined}
		for _, a := range suite {
			report.Rules = append(report.Rules, a.Name)
		}
		for _, d := range diags {
			file := d.Pos.Filename
			if rel, err := filepath.Rel(cwd, file); err == nil {
				file = rel
			}
			report.Findings = append(report.Findings, jsonFinding{
				File:    filepath.ToSlash(file),
				Line:    d.Pos.Line,
				Column:  d.Pos.Column,
				Rule:    d.Rule,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "stmlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.Format(cwd))
		}
	}

	fail := false
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "stmlint: %d finding(s) in %d package(s)\n", len(diags), len(prog.Pkgs))
		fail = true
	}
	if len(stale) > 0 && *ratchet {
		fmt.Fprintf(stderr, "stmlint: %d stale baseline entr%s (fixed findings must leave the baseline — it only shrinks):\n",
			len(stale), map[bool]string{true: "y", false: "ies"}[len(stale) == 1])
		for _, line := range stale {
			fmt.Fprintf(stderr, "  %s\n", line)
		}
		fail = true
	}
	if fail {
		return 1
	}
	return 0
}

// readBaseline parses a baseline file: one Format-style finding line per
// line, blank lines and #-comments skipped. The boolean tracks whether the
// entry matched a finding this run.
func readBaseline(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]bool)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out[line] = false
	}
	return out, sc.Err()
}
