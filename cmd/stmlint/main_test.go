package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestExitCodes pins the process contract: 0 on a clean tree, 1 on
// findings, 2 on usage/load errors.
func TestExitCodes(t *testing.T) {
	null := devNull(t)
	fixtures := filepath.Join("..", "..", "internal", "analysis", "testdata", "src")

	if got := run([]string{"../.."}, null, null); got != 0 {
		t.Errorf("clean repo: exit %d, want 0", got)
	}
	if got := run([]string{filepath.Join(fixtures, "mixedatomic")}, null, null); got != 1 {
		t.Errorf("violation fixture: exit %d, want 1", got)
	}
	if got := run([]string{fixtures + "/..."}, null, null); got != 1 {
		t.Errorf("all fixtures: exit %d, want 1", got)
	}
	if got := run([]string{"-rules", "nosuchrule", "../.."}, null, null); got != 2 {
		t.Errorf("unknown rule: exit %d, want 2", got)
	}
	if got := run([]string{"./does-not-exist"}, null, null); got != 2 {
		t.Errorf("bad pattern: exit %d, want 2", got)
	}
	if got := run([]string{"-list"}, null, null); got != 0 {
		t.Errorf("-list: exit %d, want 0", got)
	}
	if got := run([]string{"-rules", "txnpurity", fixtures + "/..."}, null, null); got != 1 {
		t.Errorf("rule subset on fixtures: exit %d, want 1", got)
	}
}

// outFile returns a temp file to capture stdout plus a reader for it.
func outFile(t *testing.T) (*os.File, func() string) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "stmlint-out-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, func() string {
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
}

// TestTagMatrix pins the acceptance criterion that the repo is clean under
// the privstm_watermark_race tag set too — the historical race variant is
// analyzed, not skipped, and carries no findings.
func TestTagMatrix(t *testing.T) {
	null := devNull(t)
	if got := run([]string{"-tags", "privstm_watermark_race", "../.."}, null, null); got != 0 {
		t.Errorf("race tag set: exit %d, want 0", got)
	}
}

// TestJSONOutput checks the machine-readable report: valid JSON, all six
// rules recorded, findings present for a violation fixture.
func TestJSONOutput(t *testing.T) {
	null := devNull(t)
	fixtures := filepath.Join("..", "..", "internal", "analysis", "testdata", "src")
	out, read := outFile(t)

	if got := run([]string{"-json", filepath.Join(fixtures, "mixedatomic")}, out, null); got != 1 {
		t.Fatalf("json on violation fixture: exit %d, want 1", got)
	}
	var report struct {
		Rules    []string `json:"rules"`
		Findings []struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Rule string `json:"rule"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(read()), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(report.Rules) != 6 {
		t.Errorf("report lists %d rules, want 6", len(report.Rules))
	}
	if len(report.Findings) == 0 {
		t.Error("no findings in JSON report for a violation fixture")
	}
	for _, f := range report.Findings {
		if f.File == "" || f.Line == 0 || f.Rule == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

// TestBaselineRatchet pins the baseline semantics: listed findings are
// tolerated, unlisted ones still fail, and entries that stop matching
// fail the run unless -ratchet=false — the file can only shrink.
func TestBaselineRatchet(t *testing.T) {
	null := devNull(t)
	fixture := filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "mixedatomic")

	// Capture the fixture's findings as a baseline.
	out, read := outFile(t)
	if got := run([]string{fixture}, out, null); got != 1 {
		t.Fatalf("fixture run: exit %d, want 1", got)
	}
	base := filepath.Join(t.TempDir(), "baseline")
	if err := os.WriteFile(base, []byte("# tolerated findings\n"+read()), 0o644); err != nil {
		t.Fatal(err)
	}

	// Fully baselined: clean.
	if got := run([]string{"-baseline", base, fixture}, null, null); got != 0 {
		t.Errorf("baselined fixture: exit %d, want 0", got)
	}

	// A stale entry fails under the ratchet, passes without it.
	if err := os.WriteFile(base, []byte("gone.go:1: [mixedatomic] fixed finding\n"+read()), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := run([]string{"-baseline", base, fixture}, null, null); got != 1 {
		t.Errorf("stale baseline entry under ratchet: exit %d, want 1", got)
	}
	if got := run([]string{"-baseline", base, "-ratchet=false", fixture}, null, null); got != 0 {
		t.Errorf("stale baseline entry with -ratchet=false: exit %d, want 0", got)
	}

	// A missing baseline file is a usage error.
	if got := run([]string{"-baseline", filepath.Join(t.TempDir(), "nope"), fixture}, null, null); got != 2 {
		t.Errorf("missing baseline file: exit %d, want 2", got)
	}
}
