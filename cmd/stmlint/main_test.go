package main

import (
	"os"
	"path/filepath"
	"testing"
)

func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestExitCodes pins the process contract: 0 on a clean tree, 1 on
// findings, 2 on usage/load errors.
func TestExitCodes(t *testing.T) {
	null := devNull(t)
	fixtures := filepath.Join("..", "..", "internal", "analysis", "testdata", "src")

	if got := run([]string{"../.."}, null, null); got != 0 {
		t.Errorf("clean repo: exit %d, want 0", got)
	}
	if got := run([]string{filepath.Join(fixtures, "mixedatomic")}, null, null); got != 1 {
		t.Errorf("violation fixture: exit %d, want 1", got)
	}
	if got := run([]string{fixtures + "/..."}, null, null); got != 1 {
		t.Errorf("all fixtures: exit %d, want 1", got)
	}
	if got := run([]string{"-rules", "nosuchrule", "../.."}, null, null); got != 2 {
		t.Errorf("unknown rule: exit %d, want 2", got)
	}
	if got := run([]string{"./does-not-exist"}, null, null); got != 2 {
		t.Errorf("bad pattern: exit %d, want 2", got)
	}
	if got := run([]string{"-list"}, null, null); got != 0 {
		t.Errorf("-list: exit %d, want 0", got)
	}
	if got := run([]string{"-rules", "txnpurity", fixtures + "/..."}, null, null); got != 1 {
		t.Errorf("rule subset on fixtures: exit %d, want 1", got)
	}
}
