// Command stmstress runs long-form correctness stress against one or all
// algorithms: concurrent data-structure churn with full structural
// verification, bank-transfer invariant audits, and visibility-protocol
// hammering. It is the soak-test companion to the quick `go test` suite.
//
// Examples:
//
//	stmstress -dur 10s
//	stmstress -algo pvrStore -dur 1m -threads 8
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	stm "privstm"
	"privstm/internal/bench"
	"privstm/internal/serial"
)

func main() {
	var (
		algo    = flag.String("algo", "all", "algorithm (figure label) or 'all'")
		dur     = flag.Duration("dur", 5*time.Second, "stress duration per algorithm")
		threads = flag.Int("threads", 8, "worker threads")
	)
	flag.Parse()

	algos := append([]stm.Algorithm{stm.OrdQueue}, stm.Algorithms...)
	if *algo != "all" {
		a, err := stm.ParseAlgorithm(*algo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmstress:", err)
			os.Exit(2)
		}
		algos = []stm.Algorithm{a}
	}

	for _, a := range algos {
		if err := stressStructures(a, *dur/3, *threads); err != nil {
			fmt.Fprintf(os.Stderr, "stmstress: %v: %v\n", a, err)
			os.Exit(1)
		}
		if err := stressBank(a, *dur/3, *threads); err != nil {
			fmt.Fprintf(os.Stderr, "stmstress: %v: %v\n", a, err)
			os.Exit(1)
		}
		if err := stressSerializability(a, *dur/3, *threads); err != nil {
			fmt.Fprintf(os.Stderr, "stmstress: %v: %v\n", a, err)
			os.Exit(1)
		}
		fmt.Printf("%-14s OK (%v structure churn + bank audit + serializability check, %d threads)\n", a, *dur, *threads)
	}
}

// stressSerializability records a concurrent read-modify-write history
// through the public API and verifies conflict-serializability offline
// (internal/serial), trusting nothing inside the runtime.
func stressSerializability(a stm.Algorithm, dur time.Duration, threads int) error {
	const registers = 16
	s, err := stm.New(stm.Config{Algorithm: a, HeapWords: 1 << 12, OrecCount: 256, MaxThreads: threads})
	if err != nil {
		return err
	}
	base := s.MustAlloc(registers)
	var mu sync.Mutex
	hist := &serial.History{}
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		th := s.MustNewThread()
		tid := uint64(w + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := tid * 0x9e3779b97f4a7c15
			var local []serial.Txn
			for i := 0; time.Now().Before(deadline); i++ {
				x = x*6364136223846793005 + 1442695040888963407
				var rec serial.Txn
				y := x
				errTx := th.Atomic(func(tx *stm.Tx) {
					rec = serial.Txn{ID: int(tid)<<40 | i}
					addr := base + stm.Addr(y>>33)%registers
					v := tx.Load(addr)
					rec.Reads = []serial.Op{{Addr: uint64(addr), Val: uint64(v)}}
					nv := tid<<48 | uint64(i+1)
					tx.Store(addr, stm.Word(nv))
					rec.Writes = []serial.Op{{Addr: uint64(addr), Val: nv}}
				})
				if errTx == nil {
					local = append(local, rec)
				}
			}
			mu.Lock()
			hist.Txns = append(hist.Txns, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	hist.SortByID()
	if err := serial.Check(hist); err != nil {
		return fmt.Errorf("serializability violated over %d txns: %w", len(hist.Txns), err)
	}
	return nil
}

// stressStructures churns all three benchmark structures concurrently under
// write-heavy load and verifies them afterwards (bench.Run performs the
// structural check and fails on violation).
func stressStructures(a stm.Algorithm, dur time.Duration, threads int) error {
	specs := []bench.Spec{
		bench.Hashtable(64, 256),
		bench.BST(1 << 14),
		bench.MultiList(16, 64),
	}
	for _, sp := range specs {
		if _, err := bench.Run(sp, bench.RunConfig{
			Algorithm: a,
			Threads:   threads,
			Mix:       bench.WriteHeavy,
			Duration:  dur / time.Duration(len(specs)),
		}); err != nil {
			return err
		}
	}
	return nil
}

// stressBank runs concurrent transfers over a shared account array with
// continuous transactional audits of the conserved total.
func stressBank(a stm.Algorithm, dur time.Duration, threads int) error {
	const accounts = 64
	const initial = 1000
	s, err := stm.New(stm.Config{Algorithm: a, HeapWords: 1 << 16, OrecCount: 1 << 10, MaxThreads: threads})
	if err != nil {
		return err
	}
	base := s.MustAlloc(accounts)
	for i := stm.Addr(0); i < accounts; i++ {
		s.DirectStore(base+i, initial)
	}
	var wg sync.WaitGroup
	errs := make(chan error, threads)
	deadline := time.Now().Add(dur)
	for i := 0; i < threads; i++ {
		th := s.MustNewThread()
		seed := uint64(i + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := seed
			for time.Now().Before(deadline) {
				for j := 0; j < 64; j++ {
					x = x*6364136223846793005 + 1442695040888963407
					from := stm.Addr(x>>33) % accounts
					to := stm.Addr(x>>13) % accounts
					if from == to {
						to = (to + 1) % accounts
					}
					if j%16 == 0 {
						var sum stm.Word
						_ = th.Atomic(func(tx *stm.Tx) {
							sum = 0
							for k := stm.Addr(0); k < accounts; k++ {
								sum += tx.Load(base + k)
							}
						})
						if sum != accounts*initial {
							errs <- fmt.Errorf("bank audit: total %d, want %d", sum, accounts*initial)
							return
						}
						continue
					}
					_ = th.Atomic(func(tx *stm.Tx) {
						f := tx.Load(base + from)
						tx.Store(base+from, f-1)
						tx.Store(base+to, tx.Load(base+to)+1)
					})
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		return e
	}
	var sum stm.Word
	for i := stm.Addr(0); i < accounts; i++ {
		sum += s.DirectLoad(base + i)
	}
	if sum != accounts*initial {
		return fmt.Errorf("bank final: total %d, want %d", sum, accounts*initial)
	}
	return nil
}
