package stm

import (
	"testing"
	"testing/quick"
)

// TestEngineEquivalenceRandomPrograms generates random transactional
// programs (sequences of loads, stores, and occasional cancels over a
// small heap) and runs each program single-threaded under every engine:
// the final heap images must be identical — the engines may differ in
// every concurrency mechanism, but never in sequential semantics.
func TestEngineEquivalenceRandomPrograms(t *testing.T) {
	const heapWords = 32
	type step struct {
		Addr   uint8
		Val    uint16
		Kind   uint8 // %3: 0 load, 1 store, 2 store-accumulate
		Cancel bool  // cancel the whole txn at this step (rare)
	}
	run := func(alg Algorithm, prog []step) []Word {
		s := MustNew(Config{Algorithm: alg, HeapWords: heapWords + 8, OrecCount: 64, MaxThreads: 2})
		base := s.MustAlloc(heapWords)
		th := s.MustNewThread()
		// Split the program into transactions of ≤5 steps.
		for i := 0; i < len(prog); i += 5 {
			end := i + 5
			if end > len(prog) {
				end = len(prog)
			}
			chunk := prog[i:end]
			_ = th.Atomic(func(tx *Tx) {
				for _, st := range chunk {
					a := base + Addr(st.Addr)%heapWords
					if st.Cancel && st.Val%16 == 0 {
						tx.Cancel(errEquiv)
					}
					switch st.Kind % 3 {
					case 0:
						_ = tx.Load(a)
					case 1:
						tx.Store(a, Word(st.Val))
					default:
						tx.Store(a, tx.Load(a)+Word(st.Val))
					}
				}
			})
		}
		img := make([]Word, heapWords)
		for i := range img {
			img[i] = s.DirectLoad(base + Addr(i))
		}
		return img
	}
	prop := func(prog []step) bool {
		if len(prog) > 60 {
			prog = prog[:60]
		}
		ref := run(TL2, prog)
		for _, alg := range allAlgorithms {
			if alg == TL2 {
				continue
			}
			got := run(alg, prog)
			for i := range ref {
				if got[i] != ref[i] {
					t.Logf("%v diverged from TL2 at word %d: %d vs %d", alg, i, got[i], ref[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

var errEquiv = errTrace("cancelled")
