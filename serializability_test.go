package stm

import (
	"sync"
	"testing"

	"privstm/internal/serial"
)

// serializabilityRun records concurrent read-modify-write histories through
// the public API and feeds them to the offline conflict-serializability
// checker (internal/serial) — an end-to-end verification of the engine's
// isolation that trusts nothing inside the runtime. Every transaction reads
// then overwrites 1–3 registers with globally unique values; the checker
// reconstructs version orders from the history alone and rejects any
// precedence cycle.
func serializabilityRun(t *testing.T, s *STM, threads, txns, registers int) {
	t.Helper()
	base := s.MustAlloc(registers)
	var mu sync.Mutex
	hist := &serial.History{}
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		th := s.MustNewThread()
		tid := uint64(w + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := tid * 0x9e3779b97f4a7c15
			local := make([]serial.Txn, 0, txns)
			for i := 0; i < txns; i++ {
				// Unique value per (thread, txn, register-slot).
				mk := func(slot int) uint64 {
					return tid<<48 | uint64(i+1)<<8 | uint64(slot)
				}
				x = x*6364136223846793005 + 1442695040888963407
				nops := 1 + int(x>>61)%3
				var rec serial.Txn
				err := th.Atomic(func(tx *Tx) {
					rec = serial.Txn{ID: int(tid)<<32 | i}
					y := x
					seen := map[Addr]bool{}
					for k := 0; k < nops; k++ {
						y = y*6364136223846793005 + 1442695040888963407
						a := base + Addr(y>>33)%Addr(registers)
						if seen[a] {
							continue
						}
						seen[a] = true
						v := tx.Load(a)
						rec.Reads = append(rec.Reads, serial.Op{Addr: uint64(a), Val: uint64(v)})
						if k%2 == 0 { // half the accessed registers get overwritten
							nv := mk(k)
							tx.Store(a, Word(nv))
							rec.Writes = append(rec.Writes, serial.Op{Addr: uint64(a), Val: nv})
						}
					}
				})
				if err == nil {
					local = append(local, rec)
				}
			}
			mu.Lock()
			hist.Txns = append(hist.Txns, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	hist.SortByID()
	if err := serial.Check(hist); err != nil {
		t.Errorf("%v: history of %d txns not serializable: %v", s.Algorithm(), len(hist.Txns), err)
	}
	if len(hist.Txns) != threads*txns {
		t.Errorf("committed %d txns, want %d", len(hist.Txns), threads*txns)
	}
}

// TestSerializabilityAllEngines runs the offline checker over every engine
// under the default (GV1) clock.
func TestSerializabilityAllEngines(t *testing.T) {
	forEachAlgorithm(t, func(t *testing.T, alg Algorithm) {
		serializabilityRun(t, newSTM(t, alg), 4, 400, 8)
	})
}
