package stm

import (
	"flag"
	"fmt"
	"strings"
	"testing"

	"privstm/internal/core"
	"privstm/internal/sched"
	"privstm/internal/serial"
)

// schedReplay re-executes a recorded exploration failure verbatim. The
// corpus tests print the exact value to pass when a schedule fails, e.g.:
//
//	go test -run TestSchedReplay -sched.replay 'rmw:pvrStore:0.1.1.0'
var schedReplay = flag.String("sched.replay", "",
	"replay a recorded exploration failure: program:algorithm:trace")

// exploreAlgos are the engine families the exploration corpus covers: the
// two ordering-based schemes, the validation-fence scheme, the TL2
// baseline, an in-place (undo-log) PVR engine, the store-protocol PVR
// variant, and the hybrid.
var exploreAlgos = []Algorithm{Ord, Val, TL2, PVRBase, PVRStore, PVRHybrid}

// exploreClock/exploreBatch select the clock variant the programs build
// with. They are package state rather than parameters so the replay format
// stays a flat string; TestExploreClockModes sets them around each subtest
// (the corpus tests are not parallel) and encodes them in replay lines.
var (
	exploreClock = ClockGV1
	exploreBatch = 0
)

// setExploreVariant installs a clock variant and returns the restore func.
func setExploreVariant(mode ClockMode, batch int) func() {
	prevC, prevB := exploreClock, exploreBatch
	exploreClock, exploreBatch = mode, batch
	return func() { exploreClock, exploreBatch = prevC, prevB }
}

// exploreVariantTag renders the current variant as the replay-string suffix
// of the algorithm token: "" for the default, "@gv5", "@local+b8", …
func exploreVariantTag() string {
	if exploreClock == ClockGV1 && exploreBatch == 0 {
		return ""
	}
	tag := "@" + exploreClock.String()
	if exploreBatch > 0 {
		tag += fmt.Sprintf("+b%d", exploreBatch)
	}
	return tag
}

// parseExploreAlgorithm parses an algorithm token with an optional variant
// suffix ("ord", "ord@gv5", "ord@gv5+b8") and installs the variant.
func parseExploreAlgorithm(tok string) (Algorithm, error) {
	name, variant, _ := strings.Cut(tok, "@")
	alg, err := ParseAlgorithm(name)
	if err != nil || variant == "" {
		return alg, err
	}
	modeStr, batchStr, hasBatch := strings.Cut(variant, "+b")
	mode, err := ParseClockMode(modeStr)
	if err != nil {
		return alg, err
	}
	batch := 0
	if hasBatch {
		if _, err := fmt.Sscanf(batchStr, "%d", &batch); err != nil {
			return alg, fmt.Errorf("bad batch suffix %q: %v", variant, err)
		}
	}
	setExploreVariant(mode, batch)
	return alg, nil
}

// mkExploreSTM builds a small instance for exploration: escalation is
// disabled (MaxAttempts < 0) because the serialized-irrevocable fallback
// drains rivals with no yield point between polls, which the explorer
// would report as a stuck step.
func mkExploreSTM(alg Algorithm) *STM {
	return MustNew(Config{
		Algorithm: alg, HeapWords: 1 << 12, OrecCount: 1 << 8,
		MaxThreads: 8, MaxAttempts: -1,
		Clock: exploreClock, OrderBatch: exploreBatch,
	})
}

// exploreOracle is the OnStep invariant check shared by every program: the
// slot tracker's watermark soundness (a cached oldest-begin may never sit
// above a live transaction's begin) and each thread's hint-cache invariant
// (CORRECTNESS.md §10). It runs with every worker suspended at a yield
// point, so any violation it reports is a real reachable state.
func exploreOracle(s *STM) func() error {
	return func() error {
		if st, ok := core.UnwrapTracker(s.rt.Active).(*core.SlotTracker); ok {
			if err := st.CheckWatermark(); err != nil {
				return err
			}
		}
		var err error
		s.rt.ForEachThread(func(t *core.Thread) {
			if err == nil {
				err = t.CheckHintCache()
			}
		})
		return err
	}
}

// schedProgram is a named exploration micro-program, parameterized by
// engine so one interleaving bug hunt covers every family. mk must build a
// fresh program per call (fresh STM, fresh threads): schedules are
// independent executions.
type schedProgram struct {
	name string
	mk   func(alg Algorithm) (sched.Config, []func())
}

// rmwProgram: three workers run read-modify-write transactions on two
// shared registers, recording the history; at the end the offline
// serializability checker (internal/serial) must accept it. Values are
// globally unique so the checker can reconstruct version orders.
func rmwProgram(alg Algorithm) (sched.Config, []func()) {
	s := mkExploreSTM(alg)
	base := s.MustAlloc(2)
	hist := &serial.History{}
	var bodies []func()
	for w := 0; w < 3; w++ {
		th := s.MustNewThread()
		tid := uint64(w + 1)
		bodies = append(bodies, func() {
			for i := 0; i < 2; i++ {
				var rec serial.Txn
				err := th.Atomic(func(tx *Tx) {
					rec = serial.Txn{ID: int(tid)<<8 | i}
					a := base + Addr((int(tid)+i)%2)
					v := tx.Load(a)
					rec.Reads = []serial.Op{{Addr: uint64(a), Val: uint64(v)}}
					nv := tid<<32 | uint64(i+1)
					tx.Store(a, Word(nv))
					rec.Writes = []serial.Op{{Addr: uint64(a), Val: nv}}
				})
				if err == nil {
					hist.Txns = append(hist.Txns, rec)
				}
				sched.Point("test/rmw/between-txns")
			}
		})
	}
	return sched.Config{
		OnStep: exploreOracle(s),
		AtEnd: func() error {
			hist.SortByID()
			return serial.Check(hist)
		},
	}, bodies
}

// privProgram: a writer transaction updates two words atomically while a
// privatizer detaches them; after the privatizer's transaction commits the
// words are private, and nontransactional reads must observe them
// consistent (both updated or neither — never a half-applied write-back or
// half-rolled-back undo) and stable (no delayed write-back after the
// fence). On the privatization-safe engines this must hold on every
// schedule; on the TL2 baseline the explorer is expected to find the
// violation (TestExploreFindsTL2PrivatizationRace).
func privProgram(alg Algorithm) (sched.Config, []func()) {
	s := mkExploreSTM(alg)
	flagA := s.MustAlloc(1)
	data := s.MustAlloc(2)
	wth := s.MustNewThread()
	pth := s.MustNewThread()
	writer := func() {
		for i := 0; i < 2; i++ {
			_ = wth.Atomic(func(tx *Tx) {
				if tx.Load(flagA) != 0 {
					return // already privatized: hands off
				}
				tx.Store(data, tx.Load(data)+1)
				sched.Point("test/priv/mid-writer")
				tx.Store(data+1, tx.Load(data+1)+1)
			})
			sched.Point("test/priv/between-txns")
		}
	}
	privatizer := func() {
		_ = pth.Atomic(func(tx *Tx) {
			tx.Store(flagA, 1) // detach: committed ⇒ data is private
		})
		a, b := s.DirectLoad(data), s.DirectLoad(data+1)
		if a != b {
			panic(fmt.Sprintf("privatization violation: torn private state %d/%d after detach", a, b))
		}
		sched.Point("test/priv/recheck")
		if s.DirectLoad(data) != a || s.DirectLoad(data+1) != b {
			panic(fmt.Sprintf("privatization violation: private data changed after detach (%d/%d -> %d/%d)",
				a, b, s.DirectLoad(data), s.DirectLoad(data+1)))
		}
	}
	return sched.Config{OnStep: exploreOracle(s)}, []func(){writer, privatizer}
}

var schedPrograms = []schedProgram{
	{name: "rmw", mk: rmwProgram},
	{name: "priv", mk: privProgram},
}

func findProgram(name string) *schedProgram {
	for i := range schedPrograms {
		if schedPrograms[i].name == name {
			return &schedPrograms[i]
		}
	}
	return nil
}

// replayLine formats the reproduction command for a failing schedule,
// including the active clock variant.
func replayLine(prog string, alg Algorithm, tr sched.Trace) string {
	return fmt.Sprintf("go test -run TestSchedReplay -sched.replay '%s:%v%s:%s'",
		prog, alg, exploreVariantTag(), tr)
}

// reportScheduleFailure is the shared failure path: the error, the seed,
// and a copy-pasteable replay command.
func reportScheduleFailure(t *testing.T, prog string, alg Algorithm, res *sched.Result) {
	t.Helper()
	t.Errorf("%s/%v: schedule violation (seed %d): %v\n  replay: %s",
		prog, alg, res.Seed, res.Err, replayLine(prog, alg, res.Trace))
}

// TestExploreSerializability runs the PCT corpus of the rmw program over
// every engine family: no schedule may produce a non-serializable history
// or violate the runtime oracles.
func TestExploreSerializability(t *testing.T) {
	const runs = 12
	for _, alg := range exploreAlgos {
		t.Run(alg.String(), func(t *testing.T) {
			res, n := sched.ExplorePCT(sched.Config{Seed: 1, Horizon: 256},
				runs, func() (sched.Config, []func()) { return rmwProgram(alg) })
			if res != nil {
				reportScheduleFailure(t, "rmw", alg, res)
			}
			if n != runs {
				t.Errorf("explored %d schedules, want %d", n, runs)
			}
		})
	}
}

// TestExplorePrivatizationSafety runs the PCT corpus of the priv program
// over the privatization-safe families (every algorithm but TL2, whose
// expected violation has its own test below).
func TestExplorePrivatizationSafety(t *testing.T) {
	const runs = 16
	for _, alg := range exploreAlgos {
		if !alg.Safe() {
			continue
		}
		t.Run(alg.String(), func(t *testing.T) {
			res, _ := sched.ExplorePCT(sched.Config{Seed: 1, Horizon: 256},
				runs, func() (sched.Config, []func()) { return privProgram(alg) })
			if res != nil {
				reportScheduleFailure(t, "priv", alg, res)
			}
		})
	}
}

// TestExploreDFSSerializability exhaustively enumerates (bounded) the rmw
// program's schedule prefix space on one undo-log and one redo-log engine.
func TestExploreDFSSerializability(t *testing.T) {
	for _, alg := range []Algorithm{PVRBase, Ord} {
		t.Run(alg.String(), func(t *testing.T) {
			res, n := sched.ExploreDFS(sched.Config{}, 60,
				func() (sched.Config, []func()) { return rmwProgram(alg) })
			if res != nil {
				reportScheduleFailure(t, "rmw", alg, res)
			}
			if n == 0 {
				t.Error("DFS explored nothing")
			}
		})
	}
}

// TestExploreFindsTL2PrivatizationRace: the TL2 baseline has no
// privatization fence, so some schedule of the priv program lets the
// privatizer observe a half-written private region. The explorer must FIND
// that schedule — this is the positive control proving the whole apparatus
// (yield points, scheduler, oracles) can detect a real privatization bug —
// and the printed trace must reproduce it verbatim.
func TestExploreFindsTL2PrivatizationRace(t *testing.T) {
	res, n := sched.ExploreDFS(sched.Config{}, 4000,
		func() (sched.Config, []func()) { return privProgram(TL2) })
	if res == nil {
		t.Fatalf("explorer missed the TL2 privatization race in %d schedules", n)
	}
	if !strings.Contains(res.Err.Error(), "privatization violation") {
		t.Fatalf("found a different failure: %v", res.Err)
	}
	t.Logf("found in %d schedules: %v\n  replay: %s", n, res.Err, replayLine("priv", TL2, res.Trace))

	// The recorded trace reproduces the violation deterministically.
	cfg, bodies := privProgram(TL2)
	rep := sched.Replay(cfg, res.Trace, bodies...)
	if rep.Err == nil || !strings.Contains(rep.Err.Error(), "privatization violation") {
		t.Fatalf("replay of the failing trace did not reproduce: %v", rep.Err)
	}
}

// TestExploreDeterministicReplay: the same seed produces the identical
// trace and verdict twice in-process — the property the replay workflow
// and the fixed-seed CI corpus depend on.
func TestExploreDeterministicReplay(t *testing.T) {
	run := func() *sched.Result {
		cfg, bodies := rmwProgram(PVRStore)
		cfg.Seed = 42
		cfg.Horizon = 256
		return sched.Run(cfg, bodies...)
	}
	r1, r2 := run(), run()
	if r1.Failed() || r2.Failed() {
		t.Fatalf("unexpected failures: %v / %v", r1.Err, r2.Err)
	}
	if r1.Trace.String() != r2.Trace.String() {
		t.Fatalf("same seed diverged:\n  %v\n  %v", r1.Trace, r2.Trace)
	}
}

// TestSchedReplay re-executes a failure recorded by the corpus tests. It
// is a no-op unless -sched.replay is set.
func TestSchedReplay(t *testing.T) {
	if *schedReplay == "" {
		t.Skip("no -sched.replay trace given")
	}
	parts := strings.SplitN(*schedReplay, ":", 3)
	if len(parts) != 3 {
		t.Fatalf("-sched.replay %q: want program:algorithm:trace", *schedReplay)
	}
	prog := findProgram(parts[0])
	if prog == nil {
		t.Fatalf("unknown program %q", parts[0])
	}
	alg, err := parseExploreAlgorithm(parts[1])
	if err != nil {
		t.Fatal(err)
	}
	trace, err := sched.ParseTrace(parts[2])
	if err != nil {
		t.Fatal(err)
	}
	cfg, bodies := prog.mk(alg)
	res := sched.Replay(cfg, trace, bodies...)
	if res.Failed() {
		t.Fatalf("schedule violation reproduced at trace %v:\n  %v", res.Trace, res.Err)
	}
	t.Logf("trace %v replayed clean", trace)
}

// TestExploreClockModes runs the rmw and priv corpora over the deferred
// clock modes and the Ord commit batcher. This is the interleaving-level
// vetting of the new commit paths: under GV5/local the clock no longer
// announces commits, so the doomed-transaction polling rides the composite
// commit signal — any schedule where that signal misses a commit shows up
// here as a non-serializable history or a torn privatized read. The batcher
// variant additionally exercises leader/follower hand-offs at the
// ticket/combine/wait yield point.
func TestExploreClockModes(t *testing.T) {
	const runs = 8
	variants := []struct {
		mode  ClockMode
		batch int
	}{
		{ClockGV5, 0},
		{ClockLocal, 0},
		{ClockGV5, 4},
	}
	algos := []Algorithm{Ord, Val, TL2, PVRHybrid}
	for _, v := range variants {
		for _, alg := range algos {
			if v.batch > 0 && alg != Ord {
				continue // the batcher only exists on the ticket-based Ord
			}
			restore := setExploreVariant(v.mode, v.batch)
			name := fmt.Sprintf("%v%s", alg, exploreVariantTag())
			t.Run(name, func(t *testing.T) {
				res, n := sched.ExplorePCT(sched.Config{Seed: 1, Horizon: 256},
					runs, func() (sched.Config, []func()) { return rmwProgram(alg) })
				if res != nil {
					reportScheduleFailure(t, "rmw", alg, res)
				}
				if n != runs {
					t.Errorf("explored %d schedules, want %d", n, runs)
				}
				if alg.Safe() {
					res, _ := sched.ExplorePCT(sched.Config{Seed: 1, Horizon: 256},
						runs, func() (sched.Config, []func()) { return privProgram(alg) })
					if res != nil {
						reportScheduleFailure(t, "priv", alg, res)
					}
				}
			})
			restore()
		}
	}
}
