// Scheduler: a tiny transactional job scheduler composed from tlib
// structures — a priority queue ordered by deadline, a dedup set, and
// completion counters — where every scheduling decision is one atomic
// transaction across all three.
//
// Submitting checks the dedup set, inserts into the priority queue and
// bumps a counter atomically; claiming pops the earliest deadline and
// marks it in-flight atomically. No locks, no lock ordering, no partial
// states — the STM retries conflicting steps transparently.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"sync"

	stm "privstm"
	"privstm/tlib"
)

const (
	jobs      = 2000
	producers = 2
	workers   = 3
)

func main() {
	s := stm.MustNew(stm.Config{
		Algorithm:  stm.PVRWriterOnly,
		HeapWords:  1 << 18,
		MaxThreads: producers + workers + 1,
	})
	queue, err := tlib.NewPQueue(s, jobs)
	check(err)
	seen, err := tlib.NewSet(s, 64, jobs)
	check(err)
	submitted, err := tlib.NewCounter(s)
	check(err)
	completed, err := tlib.NewCounter(s)
	check(err)
	dupes, err := tlib.NewCounter(s)
	check(err)

	var wg sync.WaitGroup
	// Producers submit jobs; ~25% are duplicates that must be dropped.
	for p := 0; p < producers; p++ {
		th := s.MustNewThread()
		seed := uint64(p + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := seed
			for i := 0; i < jobs/producers*5/4; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				job := stm.Word(x>>33)%jobs + 1 // job id doubles as deadline
				_ = th.Atomic(func(tx *stm.Tx) {
					added, err := seen.Add(tx, job)
					if err != nil {
						tx.Cancel(err)
					}
					if !added {
						dupes.Add(tx, 1)
						return
					}
					if err := queue.Insert(tx, job); err != nil {
						tx.Cancel(err)
					}
					submitted.Add(tx, 1)
				})
			}
		}()
	}
	wg.Wait()

	// Workers drain in deadline order; each claim is atomic with the
	// completion count, so an audit at any instant balances.
	var claimed [workers][]stm.Word
	for w := 0; w < workers; w++ {
		th := s.MustNewThread()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				var job stm.Word
				var ok bool
				_ = th.Atomic(func(tx *stm.Tx) {
					job, ok = queue.PopMin(tx)
					if ok {
						completed.Add(tx, 1)
					}
				})
				if !ok {
					return
				}
				claimed[w] = append(claimed[w], job)
			}
		}(w)
	}
	wg.Wait()

	th := s.MustNewThread()
	var sub, comp, dup int64
	_ = th.Atomic(func(tx *stm.Tx) {
		sub, comp, dup = submitted.Value(tx), completed.Value(tx), dupes.Value(tx)
	})
	// Each worker's claims arrive in nondecreasing deadline order.
	ordered := true
	total := 0
	for w := range claimed {
		total += len(claimed[w])
		for i := 1; i < len(claimed[w]); i++ {
			if claimed[w][i] < claimed[w][i-1] {
				ordered = false
			}
		}
	}
	fmt.Printf("submitted: %d unique (+%d duplicates dropped)\n", sub, dup)
	fmt.Printf("completed: %d (workers drained %d)\n", comp, total)
	fmt.Printf("per-worker deadline order preserved: %v\n", ordered)
	if sub != comp || int64(total) != comp {
		fmt.Println("MISMATCH — isolation broken!")
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
