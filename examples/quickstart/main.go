// Quickstart: create an STM, run concurrent transactions, read the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	stm "privstm"
)

func main() {
	// Pick any algorithm; pvrStore is the paper's best-performing
	// privatization-safe PVR variant (§III-B).
	s := stm.MustNew(stm.Config{
		Algorithm:  stm.PVRStore,
		HeapWords:  1 << 16,
		MaxThreads: 8,
	})

	// Transactional memory is word-addressed: allocate two words — a
	// counter and an accumulator.
	counter := s.MustAlloc(1)
	sum := s.MustAlloc(1)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		th := s.MustNewThread() // one Thread per goroutine
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				// Atomic retries transparently on conflict; the body
				// must be idempotent apart from tx operations.
				_ = th.Atomic(func(tx *stm.Tx) {
					c := tx.Load(counter)
					tx.Store(counter, c+1)
					tx.Store(sum, tx.Load(sum)+c)
				})
			}
		}()
	}
	wg.Wait()

	fmt.Printf("algorithm: %v (privatization-safe: %v)\n", s.Algorithm(), s.Algorithm().Safe())
	fmt.Printf("counter:   %d (want 8000)\n", s.DirectLoad(counter))
	fmt.Printf("sum:       %d (want %d)\n", s.DirectLoad(sum), 8000*7999/2)
}
