// Pipeline: composable transactions over tlib structures, ending in a
// privatized result.
//
// Stage 1 workers pull raw items from a transactional queue, "process"
// them, and push results onto a second queue — each pull+push is ONE
// atomic transaction, so a conflict can never lose or duplicate an item.
// A final coordinator audits the results in a single snapshot-consistent
// transaction. The run also exercises this repo's two future-work
// extensions (lock-free tracker, commit-capped fences).
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"sync"

	stm "privstm"
	"privstm/tlib"
)

const (
	items   = 4000
	workers = 4
)

func main() {
	s := stm.MustNew(stm.Config{
		Algorithm:  stm.PVRStore,
		HeapWords:  1 << 18,
		MaxThreads: workers + 2,
		// Two of this repo's future-work extensions, on:
		ScanTracker:      true,
		CapFenceAtCommit: true,
	})

	raw, err := tlib.NewQueue(s, items)
	if err != nil {
		panic(err)
	}
	done, err := tlib.NewQueue(s, items)
	if err != nil {
		panic(err)
	}
	processed, err := tlib.NewCounter(s)
	if err != nil {
		panic(err)
	}

	// Seed the input queue.
	seeder := s.MustNewThread()
	for i := 0; i < items; i += 100 {
		lo, hi := i, i+100
		if err := seeder.Atomic(func(tx *stm.Tx) {
			for v := lo; v < hi; v++ {
				if err := raw.Enqueue(tx, stm.Word(v)); err != nil {
					tx.Cancel(err)
				}
			}
		}); err != nil {
			panic(err)
		}
	}

	// Stage 1: concurrent transactional workers.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := s.MustNewThread()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				empty := false
				_ = th.Atomic(func(tx *stm.Tx) {
					v, ok := raw.Dequeue(tx)
					if !ok {
						empty = true
						return
					}
					// "Process": square the item. Pull, compute, push —
					// atomically; an abort retries the whole step.
					if err := done.Enqueue(tx, v*v); err != nil {
						tx.Cancel(err)
					}
					processed.Add(tx, 1)
				})
				if empty {
					return
				}
			}
		}()
	}
	wg.Wait()

	// Stage 2: tally. The counter audit and the drain are each one
	// transaction; the drain observes a consistent snapshot of the whole
	// queue no matter what ran before it.
	coord := s.MustNewThread()
	var count int
	var sum uint64
	_ = coord.Atomic(func(tx *stm.Tx) {
		count = int(processed.Value(tx))
	})
	_ = coord.Atomic(func(tx *stm.Tx) {
		sum = 0
		for {
			v, ok := done.Dequeue(tx)
			if !ok {
				return
			}
			sum += uint64(v)
		}
	})

	var want uint64
	for v := 0; v < items; v++ {
		want += uint64(v) * uint64(v)
	}
	fmt.Printf("items processed: %d (want %d)\n", count, items)
	fmt.Printf("sum of squares:  %d (want %d)\n", sum, want)
	fmt.Printf("worker aborts:   transparent — none observable here\n")
}
