// Privatization: the paper's Figure 1, end to end.
//
// A shared linked list is truncated inside a transaction — after the commit
// the detached nodes are logically private, and the privatizer processes
// them with ordinary, uninstrumented loads and stores while other threads
// keep running transactions against the (now empty) list. Under any of the
// privatization-safe algorithms this is correct: the committing truncation
// waits at the privatization fence until every conflicting concurrent
// reader has drained.
//
//	go run ./examples/privatization
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	stm "privstm"
)

// Node layout: [next, value].
const (
	fNext = 0
	fVal  = 1
	nodeW = 2
)

func main() {
	s := stm.MustNew(stm.Config{
		Algorithm:  stm.PVRStore,
		HeapWords:  1 << 16,
		MaxThreads: 4,
	})

	// Build a list of 10 nodes: head -> 0 -> 1 -> ... -> 9.
	head := s.MustAlloc(1)
	var prev stm.Addr = head
	for i := 0; i < 10; i++ {
		n := s.MustAlloc(nodeW)
		s.DirectStore(n+fVal, stm.Word(i))
		s.DirectStore(prev, stm.Word(n)) // prev.next = n (head doubles as a next field)
		prev = n + fNext
	}

	// T2-style workers: transactionally sum the list, forever.
	var stop atomic.Bool
	var wg sync.WaitGroup
	var observedSums sync.Map
	for w := 0; w < 3; w++ {
		th := s.MustNewThread()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				var sum stm.Word
				_ = th.Atomic(func(tx *stm.Tx) {
					sum = 0
					for n := tx.LoadAddr(head); n != stm.Nil; n = tx.LoadAddr(n + fNext) {
						sum += tx.Load(n + fVal)
					}
				})
				observedSums.Store(sum, true)
			}
		}()
	}

	// Let the workers overlap the truncation so the fence has someone to
	// wait for.
	time.Sleep(20 * time.Millisecond)

	// T1, the privatizer: truncate the list transactionally...
	priv := s.MustNewThread()
	var pl stm.Addr
	_ = priv.Atomic(func(tx *stm.Tx) {
		pl = tx.LoadAddr(head)
		tx.StoreAddr(head, stm.Nil)
	})
	// ...then process the detached nodes with PLAIN loads and stores. No
	// instrumentation, no atomics: the fence guaranteed nobody else can
	// still be touching these nodes.
	count := 0
	var privSum stm.Word
	for n := pl; n != stm.Nil; n = stm.Addr(s.DirectLoad(n + fNext)) {
		privSum += s.DirectLoad(n + fVal)
		s.DirectStore(n+fVal, s.DirectLoad(n+fVal)*10) // private mutation
		count++
	}
	stop.Store(true)
	wg.Wait()

	fmt.Printf("privatized %d nodes, private sum = %d (want 45)\n", count, privSum)
	fmt.Printf("privatizer fences hit: %d (nonzero only when readers overlapped the commit)\n",
		priv.Stats().Fenced)
	fmt.Print("sums observed by concurrent transactions: ")
	observedSums.Range(func(k, _ any) bool {
		fmt.Printf("%v ", k)
		return true
	})
	fmt.Println("\n(only 45 — the full list — and 0 — after truncation — are legal)")
}
