// Bank: a classic STM workload — concurrent transfers with invariant
// audits — run against every algorithm, printing throughput and abort
// rates side by side. The conserved total demonstrates isolation; the
// per-algorithm numbers preview the trade-offs the paper's Figure 3
// quantifies.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"sync"
	"time"

	stm "privstm"
)

const (
	accounts = 64
	initial  = 1000
	threads  = 4
	duration = 300 * time.Millisecond
)

func main() {
	fmt.Printf("%-14s %12s %10s %12s\n", "algorithm", "transfers/s", "aborts%", "total-ok")
	for _, alg := range append([]stm.Algorithm{stm.OrdQueue}, stm.Algorithms...) {
		run(alg)
	}
}

func run(alg stm.Algorithm) {
	s := stm.MustNew(stm.Config{
		Algorithm:  alg,
		HeapWords:  1 << 12,
		MaxThreads: threads,
	})
	base := s.MustAlloc(accounts)
	for i := stm.Addr(0); i < accounts; i++ {
		s.DirectStore(base+i, initial)
	}

	var wg sync.WaitGroup
	ths := make([]*stm.Thread, threads)
	deadline := time.Now().Add(duration)
	for i := range ths {
		ths[i] = s.MustNewThread()
		seed := uint64(i + 1)
		th := ths[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := seed
			for time.Now().Before(deadline) {
				for j := 0; j < 128; j++ {
					x = x*6364136223846793005 + 1442695040888963407
					from := stm.Addr(x>>33) % accounts
					to := stm.Addr(x>>13) % accounts
					if from == to {
						to = (to + 1) % accounts
					}
					_ = th.Atomic(func(tx *stm.Tx) {
						f := tx.Load(base + from)
						tx.Store(base+from, f-1)
						tx.Store(base+to, tx.Load(base+to)+1)
					})
				}
			}
		}()
	}
	wg.Wait()

	var commits, aborts uint64
	for _, th := range ths {
		commits += th.Stats().Commits
		aborts += th.Stats().Aborts
	}
	var total stm.Word
	for i := stm.Addr(0); i < accounts; i++ {
		total += s.DirectLoad(base + i)
	}
	ok := "yes"
	if total != accounts*initial {
		ok = fmt.Sprintf("NO (%d)", total)
	}
	abortPct := 0.0
	if commits+aborts > 0 {
		abortPct = 100 * float64(aborts) / float64(commits+aborts)
	}
	fmt.Printf("%-14v %12.0f %9.1f%% %12s\n",
		alg, float64(commits)/duration.Seconds(), abortPct, ok)
}
