// Histogram: the privatization pattern the paper's motivation describes —
// a phase of concurrent transactional updates followed by a phase of
// intensive *uninstrumented* processing of the same data.
//
// Workers bin samples into a shared histogram transactionally. A
// coordinator then privatizes the whole histogram by atomically swapping
// the published pointer to it, after which it computes statistics over the
// bins with plain loads — the zero-overhead access that motivates
// transparent privatization (the paper cites a workload where 95% of run
// time is spent in privatized data).
//
//	go run ./examples/histogram
package main

import (
	"fmt"
	"sync"

	stm "privstm"
)

const (
	bins    = 64
	samples = 20000
	workers = 4
)

func main() {
	s := stm.MustNew(stm.Config{
		Algorithm:  stm.PVRWriterOnly,
		HeapWords:  1 << 16,
		MaxThreads: workers + 1,
	})

	// `current` points at the live histogram; workers load it in every
	// transaction, so a privatizer can swap it out from under them safely.
	current := s.MustAlloc(1)
	hist := s.MustAlloc(bins)
	s.DirectStore(current, stm.Word(hist))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := s.MustNewThread()
		seed := uint64(w*7 + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := seed
			for i := 0; i < samples/workers; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				bin := stm.Addr(x>>33) % bins
				_ = th.Atomic(func(tx *stm.Tx) {
					h := tx.LoadAddr(current)
					if h == stm.Nil {
						return // histogram privatized; drop the sample
					}
					tx.Store(h+bin, tx.Load(h+bin)+1)
				})
			}
		}()
	}
	wg.Wait()

	// Privatize: one tiny transaction detaches the histogram...
	coord := s.MustNewThread()
	var mine stm.Addr
	_ = coord.Atomic(func(tx *stm.Tx) {
		mine = tx.LoadAddr(current)
		tx.StoreAddr(current, stm.Nil)
	})

	// ...and the analysis phase runs on private data at memory speed.
	var total, max stm.Word
	maxBin := stm.Addr(0)
	for b := stm.Addr(0); b < bins; b++ {
		v := s.DirectLoad(mine + b)
		total += v
		if v > max {
			max, maxBin = v, b
		}
	}
	fmt.Printf("samples binned: %d (want %d)\n", total, samples)
	fmt.Printf("fullest bin:    #%d with %d samples\n", maxBin, max)
	fmt.Printf("privatizer fenced: %d time(s)\n", coord.Stats().Fenced)
}
