package stm

import (
	"fmt"
	"sync/atomic"
)

// TraceKind classifies a traced event.
type TraceKind uint8

// Event kinds recorded by the per-thread tracer.
const (
	// TraceAttempt marks the start of one execution attempt of an atomic
	// block; Val carries the attempt number within the current Atomic
	// call (≥2 means the previous attempt aborted and was retried).
	TraceAttempt TraceKind = iota
	// TraceRead records a transactional load (Addr, Val).
	TraceRead
	// TraceWrite records a transactional store (Addr, Val).
	TraceWrite
	// TraceCommit marks a successful Atomic completion.
	TraceCommit
	// TraceCancel marks an Atomic that ended via Tx.Cancel.
	TraceCancel
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceAttempt:
		return "attempt"
	case TraceRead:
		return "read"
	case TraceWrite:
		return "write"
	case TraceCommit:
		return "commit"
	case TraceCancel:
		return "cancel"
	default:
		return fmt.Sprintf("TraceKind(%d)", uint8(k))
	}
}

// TraceEvent is one recorded event.
type TraceEvent struct {
	Kind TraceKind
	Addr Addr
	Val  Word
}

// String formats the event compactly.
func (e TraceEvent) String() string {
	switch e.Kind {
	case TraceRead, TraceWrite:
		return fmt.Sprintf("%s %d=%d", e.Kind, e.Addr, e.Val)
	case TraceAttempt:
		return fmt.Sprintf("%s #%d", e.Kind, e.Val)
	default:
		return e.Kind.String()
	}
}

// traceRing is a bounded ring of events; old events are overwritten.
//
// The ring tolerates its one writer (the owning goroutine, possibly
// mid-Atomic) racing with snapshot readers and with EnableTrace/
// DisableTrace swapping the Thread's ring pointer: all state is accessed
// atomically, and every slot carries a sequence word written 0 before and
// index+1 after the payload, so a reader that catches a slot mid-rewrite
// sees a sequence mismatch and drops that (oldest) event instead of
// returning a torn one.
type traceRing struct {
	// pos counts events ever added; the next event's global index.
	pos   atomic.Uint64
	slots []traceSlot
}

// traceSlot is one ring entry with torn-read detection.
type traceSlot struct {
	// seq is 1 + the global index of the occupying event, or 0 while the
	// payload below is being (re)written.
	seq  atomic.Uint64
	kind atomic.Uint32
	addr atomic.Uint64
	val  atomic.Uint64
}

func newTraceRing(capacity int) *traceRing {
	return &traceRing{slots: make([]traceSlot, capacity)}
}

// add appends e. Only the ring's owning goroutine calls add (the Thread
// single-goroutine contract), so there is exactly one writer; the
// publication order — seq to 0, payload, seq to index+1, pos — is what lets
// concurrent snapshots discard in-flight slots.
func (r *traceRing) add(e TraceEvent) {
	i := r.pos.Load()
	s := &r.slots[i%uint64(len(r.slots))]
	s.seq.Store(0)
	s.kind.Store(uint32(e.Kind))
	s.addr.Store(uint64(e.Addr))
	s.val.Store(uint64(e.Val))
	s.seq.Store(i + 1)
	r.pos.Store(i + 1)
}

// snapshot returns the recorded events oldest-first. It may race with add:
// an event whose slot is concurrently rewritten fails its sequence check —
// before or after its payload is read — and is dropped. Only events at the
// overwrite frontier (the oldest retained) can be lost this way; a writer
// restores a given sequence value never (indexes are globally unique), so a
// passed double check proves the payload was stable in between.
func (r *traceRing) snapshot() []TraceEvent {
	hi := r.pos.Load()
	lo := uint64(0)
	if n := uint64(len(r.slots)); hi > n {
		lo = hi - n
	}
	out := make([]TraceEvent, 0, hi-lo)
	for i := lo; i < hi; i++ {
		s := &r.slots[i%uint64(len(r.slots))]
		if s.seq.Load() != i+1 {
			continue // recycled or mid-write
		}
		e := TraceEvent{
			Kind: TraceKind(s.kind.Load()),
			Addr: Addr(s.addr.Load()),
			Val:  Word(s.val.Load()),
		}
		if s.seq.Load() != i+1 {
			continue // overwritten while the payload was being read
		}
		out = append(out, e)
	}
	return out
}

// EnableTrace starts recording this thread's transactional events into a
// ring of the given capacity (minimum 16). Tracing costs a few nanoseconds
// per operation; it is intended for debugging, not production benchmarks.
// Calling it again resets the ring. Safe to call while the thread is inside
// Atomic on another goroutine: the ring is swapped atomically, and an
// in-flight attempt keeps appending to whichever ring it loads per event.
func (th *Thread) EnableTrace(capacity int) {
	if capacity < 16 {
		capacity = 16
	}
	th.trace.Store(newTraceRing(capacity))
}

// DisableTrace stops recording and discards the ring. Like EnableTrace it
// may race with an in-flight Atomic.
func (th *Thread) DisableTrace() { th.trace.Store(nil) }

// Trace returns the recorded events, oldest first. It may be called from
// any goroutine, including concurrently with the thread's own Atomic;
// events being overwritten at the snapshot instant are dropped rather than
// returned torn.
func (th *Thread) Trace() []TraceEvent {
	if r := th.trace.Load(); r != nil {
		return r.snapshot()
	}
	return nil
}
