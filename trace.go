package stm

import "fmt"

// TraceKind classifies a traced event.
type TraceKind uint8

// Event kinds recorded by the per-thread tracer.
const (
	// TraceAttempt marks the start of one execution attempt of an atomic
	// block; Val carries the attempt number within the current Atomic
	// call (≥2 means the previous attempt aborted and was retried).
	TraceAttempt TraceKind = iota
	// TraceRead records a transactional load (Addr, Val).
	TraceRead
	// TraceWrite records a transactional store (Addr, Val).
	TraceWrite
	// TraceCommit marks a successful Atomic completion.
	TraceCommit
	// TraceCancel marks an Atomic that ended via Tx.Cancel.
	TraceCancel
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceAttempt:
		return "attempt"
	case TraceRead:
		return "read"
	case TraceWrite:
		return "write"
	case TraceCommit:
		return "commit"
	case TraceCancel:
		return "cancel"
	default:
		return fmt.Sprintf("TraceKind(%d)", uint8(k))
	}
}

// TraceEvent is one recorded event.
type TraceEvent struct {
	Kind TraceKind
	Addr Addr
	Val  Word
}

// String formats the event compactly.
func (e TraceEvent) String() string {
	switch e.Kind {
	case TraceRead, TraceWrite:
		return fmt.Sprintf("%s %d=%d", e.Kind, e.Addr, e.Val)
	case TraceAttempt:
		return fmt.Sprintf("%s #%d", e.Kind, e.Val)
	default:
		return e.Kind.String()
	}
}

// traceRing is a bounded ring of events; old events are overwritten.
type traceRing struct {
	buf     []TraceEvent
	next    int
	wrapped bool
}

func (r *traceRing) add(e TraceEvent) {
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
}

// snapshot returns events oldest-first.
func (r *traceRing) snapshot() []TraceEvent {
	if !r.wrapped {
		return append([]TraceEvent(nil), r.buf[:r.next]...)
	}
	out := make([]TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// EnableTrace starts recording this thread's transactional events into a
// ring of the given capacity (minimum 16). Tracing costs a few nanoseconds
// per operation; it is intended for debugging, not production benchmarks.
// Calling it again resets the ring.
func (th *Thread) EnableTrace(capacity int) {
	if capacity < 16 {
		capacity = 16
	}
	th.trace = &traceRing{buf: make([]TraceEvent, capacity)}
}

// DisableTrace stops recording and discards the ring.
func (th *Thread) DisableTrace() { th.trace = nil }

// Trace returns the recorded events, oldest first. It must be called
// between transactions (a Thread is single-goroutine by contract).
func (th *Thread) Trace() []TraceEvent {
	if th.trace == nil {
		return nil
	}
	return th.trace.snapshot()
}
