package stm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// allAlgorithms includes the queue-lock Ord variant on top of the paper's
// eight curves.
var allAlgorithms = append([]Algorithm{OrdQueue}, Algorithms...)

func forEachAlgorithm(t *testing.T, fn func(t *testing.T, alg Algorithm)) {
	t.Helper()
	for _, alg := range allAlgorithms {
		t.Run(alg.String(), func(t *testing.T) { fn(t, alg) })
	}
}

func newSTM(t *testing.T, alg Algorithm) *STM {
	t.Helper()
	s, err := New(Config{Algorithm: alg, HeapWords: 1 << 16, OrecCount: 1 << 10})
	if err != nil {
		t.Fatalf("New(%v): %v", alg, err)
	}
	return s
}

func TestSingleThreadReadWrite(t *testing.T) {
	forEachAlgorithm(t, func(t *testing.T, alg Algorithm) {
		s := newSTM(t, alg)
		a := s.MustAlloc(4)
		th := s.MustNewThread()
		if err := th.Atomic(func(tx *Tx) {
			for i := Addr(0); i < 4; i++ {
				tx.Store(a+i, Word(100+i))
			}
		}); err != nil {
			t.Fatalf("Atomic: %v", err)
		}
		if err := th.Atomic(func(tx *Tx) {
			for i := Addr(0); i < 4; i++ {
				if got := tx.Load(a + i); got != Word(100+i) {
					t.Errorf("word %d: got %d, want %d", i, got, 100+i)
				}
			}
		}); err != nil {
			t.Fatalf("Atomic: %v", err)
		}
	})
}

func TestReadYourWrites(t *testing.T) {
	forEachAlgorithm(t, func(t *testing.T, alg Algorithm) {
		s := newSTM(t, alg)
		a := s.MustAlloc(1)
		th := s.MustNewThread()
		err := th.Atomic(func(tx *Tx) {
			tx.Store(a, 7)
			if got := tx.Load(a); got != 7 {
				t.Errorf("read-your-write: got %d, want 7", got)
			}
			tx.Store(a, 8)
			if got := tx.Load(a); got != 8 {
				t.Errorf("read-your-write after overwrite: got %d, want 8", got)
			}
		})
		if err != nil {
			t.Fatalf("Atomic: %v", err)
		}
		if got := s.DirectLoad(a); got != 8 {
			t.Errorf("after commit: got %d, want 8", got)
		}
	})
}

func TestCancelRollsBack(t *testing.T) {
	forEachAlgorithm(t, func(t *testing.T, alg Algorithm) {
		s := newSTM(t, alg)
		a := s.MustAlloc(2)
		th := s.MustNewThread()
		if err := th.Atomic(func(tx *Tx) { tx.Store(a, 1); tx.Store(a+1, 2) }); err != nil {
			t.Fatal(err)
		}
		errBoom := errors.New("boom")
		err := th.Atomic(func(tx *Tx) {
			tx.Store(a, 99)
			tx.Store(a+1, 98)
			tx.Cancel(errBoom)
		})
		if !errors.Is(err, errBoom) {
			t.Fatalf("Atomic returned %v, want %v", err, errBoom)
		}
		if got, got2 := s.DirectLoad(a), s.DirectLoad(a+1); got != 1 || got2 != 2 {
			t.Errorf("after cancel: got (%d,%d), want (1,2)", got, got2)
		}
		// The STM must remain usable after a cancelled transaction.
		if err := th.Atomic(func(tx *Tx) { tx.Store(a, 3) }); err != nil {
			t.Fatal(err)
		}
		if got := s.DirectLoad(a); got != 3 {
			t.Errorf("after recovery: got %d, want 3", got)
		}
	})
}

func TestPanicPropagatesAfterRollback(t *testing.T) {
	forEachAlgorithm(t, func(t *testing.T, alg Algorithm) {
		s := newSTM(t, alg)
		a := s.MustAlloc(1)
		th := s.MustNewThread()
		func() {
			defer func() {
				if r := recover(); r != "user bug" {
					t.Errorf("recover: got %v, want \"user bug\"", r)
				}
			}()
			_ = th.Atomic(func(tx *Tx) {
				tx.Store(a, 42)
				panic("user bug")
			})
		}()
		if got := s.DirectLoad(a); got != 0 {
			t.Errorf("after panic: got %d, want 0 (rolled back)", got)
		}
	})
}

func TestConcurrentCounter(t *testing.T) {
	forEachAlgorithm(t, func(t *testing.T, alg Algorithm) {
		s := newSTM(t, alg)
		ctr := s.MustAlloc(1)
		const (
			threads = 8
			incs    = 200
		)
		var wg sync.WaitGroup
		for i := 0; i < threads; i++ {
			th := s.MustNewThread()
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < incs; j++ {
					_ = th.Atomic(func(tx *Tx) {
						tx.Store(ctr, tx.Load(ctr)+1)
					})
				}
			}()
		}
		wg.Wait()
		if got := s.DirectLoad(ctr); got != threads*incs {
			t.Errorf("counter: got %d, want %d", got, threads*incs)
		}
	})
}

func TestBankTransferInvariant(t *testing.T) {
	forEachAlgorithm(t, func(t *testing.T, alg Algorithm) {
		s := newSTM(t, alg)
		const (
			accounts = 16
			initial  = 1000
			threads  = 6
			transfer = 300
		)
		base := s.MustAlloc(accounts)
		for i := Addr(0); i < accounts; i++ {
			s.DirectStore(base+i, initial)
		}
		var wg sync.WaitGroup
		violations := make(chan string, threads)
		for i := 0; i < threads; i++ {
			th := s.MustNewThread()
			seed := uint64(i)
			wg.Add(1)
			go func() {
				defer wg.Done()
				x := seed
				for j := 0; j < transfer; j++ {
					x = x*6364136223846793005 + 1442695040888963407
					from := Addr(x>>33) % accounts
					to := Addr(x>>13) % accounts
					if from == to {
						to = (to + 1) % accounts
					}
					// Transfer 1 unit, and occasionally audit the total.
					_ = th.Atomic(func(tx *Tx) {
						f := tx.Load(base + from)
						tx.Store(base+from, f-1)
						tx.Store(base+to, tx.Load(base+to)+1)
					})
					if j%32 == 0 {
						var sum Word
						_ = th.Atomic(func(tx *Tx) {
							sum = 0
							for k := Addr(0); k < accounts; k++ {
								sum += tx.Load(base + k)
							}
						})
						if sum != accounts*initial {
							violations <- fmt.Sprintf("audit saw total %d, want %d", sum, accounts*initial)
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		close(violations)
		for v := range violations {
			t.Error(v)
		}
		var sum Word
		for i := Addr(0); i < accounts; i++ {
			sum += s.DirectLoad(base + i)
		}
		if sum != accounts*initial {
			t.Errorf("final total %d, want %d", sum, accounts*initial)
		}
	})
}

func TestWriteConflictAbortsOne(t *testing.T) {
	forEachAlgorithm(t, func(t *testing.T, alg Algorithm) {
		s := newSTM(t, alg)
		a := s.MustAlloc(1)
		const threads = 4
		var wg sync.WaitGroup
		for i := 0; i < threads; i++ {
			th := s.MustNewThread()
			wg.Add(1)
			go func(v Word) {
				defer wg.Done()
				for j := 0; j < 100; j++ {
					_ = th.Atomic(func(tx *Tx) { tx.Store(a, v) })
				}
			}(Word(i + 1))
		}
		wg.Wait()
		got := s.DirectLoad(a)
		if got < 1 || got > threads {
			t.Errorf("final value %d not written by any thread", got)
		}
	})
}
