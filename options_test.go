package stm

import (
	"sync"
	"testing"
)

// optionVariants are the runtime-option combinations (beyond the default)
// that every algorithm must behave identically under.
var optionVariants = []struct {
	name string
	mut  func(*Config)
}{
	{"scanTracker", func(c *Config) { c.ScanTracker = true }},
	{"capFence", func(c *Config) { c.CapFenceAtCommit = true }},
	{"scan+cap", func(c *Config) { c.ScanTracker = true; c.CapFenceAtCommit = true }},
	{"block4", func(c *Config) { c.BlockWords = 4 }},
	{"smallOrecs", func(c *Config) { c.OrecCount = 16 }},
	{"grace8", func(c *Config) { c.MaxGrace = 8 }},
	{"graceLinear", func(c *Config) { c.GraceStrategy = GraceLinear }},
	{"graceHybrid", func(c *Config) { c.GraceStrategy = GraceHybrid }},
}

// TestOptionVariantsCounter runs the concurrent-counter isolation check
// across every algorithm under every option variant.
func TestOptionVariantsCounter(t *testing.T) {
	for _, v := range optionVariants {
		t.Run(v.name, func(t *testing.T) {
			forEachAlgorithm(t, func(t *testing.T, alg Algorithm) {
				cfg := Config{Algorithm: alg, HeapWords: 1 << 14, OrecCount: 1 << 10, MaxThreads: 8}
				v.mut(&cfg)
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				ctr := s.MustAlloc(1)
				var wg sync.WaitGroup
				for i := 0; i < 4; i++ {
					th := s.MustNewThread()
					wg.Add(1)
					go func() {
						defer wg.Done()
						for j := 0; j < 150; j++ {
							_ = th.Atomic(func(tx *Tx) { tx.Store(ctr, tx.Load(ctr)+1) })
						}
					}()
				}
				wg.Wait()
				if got := s.DirectLoad(ctr); got != 600 {
					t.Errorf("counter = %d, want 600", got)
				}
			})
		})
	}
}

// TestOptionVariantsPairInvariant stresses opacity under the variants with
// mixed readers and writers.
func TestOptionVariantsPairInvariant(t *testing.T) {
	for _, v := range optionVariants {
		t.Run(v.name, func(t *testing.T) {
			for _, alg := range []Algorithm{PVRCAS, PVRStore, PVRWriterOnly, PVRHybrid} {
				t.Run(alg.String(), func(t *testing.T) {
					cfg := Config{Algorithm: alg, HeapWords: 1 << 12, OrecCount: 1 << 8, MaxThreads: 6}
					v.mut(&cfg)
					s, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					a := s.MustAlloc(2)
					var wg sync.WaitGroup
					fail := make(chan string, 8)
					for w := 0; w < 2; w++ {
						th := s.MustNewThread()
						wg.Add(1)
						go func(v Word) {
							defer wg.Done()
							for i := 0; i < 200; i++ {
								_ = th.Atomic(func(tx *Tx) {
									tx.Store(a, v)
									tx.Store(a+1, v)
								})
								v += 2
							}
						}(Word(w + 1))
					}
					for r := 0; r < 2; r++ {
						th := s.MustNewThread()
						wg.Add(1)
						go func() {
							defer wg.Done()
							for i := 0; i < 400; i++ {
								_ = th.Atomic(func(tx *Tx) {
									if tx.Load(a) != tx.Load(a+1) {
										select {
										case fail <- "torn pair":
										default:
										}
									}
								})
							}
						}()
					}
					wg.Wait()
					close(fail)
					for msg := range fail {
						t.Error(msg)
					}
				})
			}
		})
	}
}
