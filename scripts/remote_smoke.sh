#!/bin/sh
# End-to-end smoke for the stmd/stmbench remote path: start stmd on a
# scratch port with a small worker pool and a quota-limited tenant, drive
# it with many more connections than workers, then SIGTERM and require a
# clean drain (stmd exits nonzero if any reclaim extents stay quarantined).
#
# Env knobs: GO (toolchain), ADDR (listen address), CONNS, DUR, OUT (JSON).
set -eu

GO="${GO:-go}"
ADDR="${ADDR:-127.0.0.1:7571}"
CONNS="${CONNS:-200}"
DUR="${DUR:-2s}"
OUT="${OUT:-/tmp/remote_smoke.json}"
BIN="$(mktemp -t stmd.XXXXXX)"
LOG="$(mktemp -t stmd.log.XXXXXX)"

cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    rm -f "$BIN"
}
trap cleanup EXIT

"$GO" build -o "$BIN" ./cmd/stmd
"$BIN" -addr "$ADDR" -workers 4 -maxconns 4096 \
    -tenant 'noisy:ws=4' >"$LOG" 2>&1 &
pid=$!

# Wait for the listener (the startup line prints once the port is bound).
i=0
until grep -q 'serving' "$LOG"; do
    i=$((i + 1))
    if [ "$i" -gt 50 ] || ! kill -0 "$pid" 2>/dev/null; then
        echo "remote-smoke: stmd failed to start" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

"$GO" run ./cmd/stmbench -remote "$ADDR" -conns "$CONNS" -dur "$DUR" \
    -zipf 0.8 -tenants 'noisy:1,steady:3' -json "$OUT"

kill -TERM "$pid"
wait "$pid" # stmd exits 1 on a dirty drain (quarantined extents)
pid=""
cat "$LOG"

# The run must have committed transactions and attributed quota aborts to
# the capped tenant; transport errors mean connections died mid-run.
grep -q '"remote_conns": '"$CONNS" "$OUT" || {
    echo "remote-smoke: missing remote_conns=$CONNS in $OUT" >&2
    exit 1
}
if grep -q '"commits": 0,' "$OUT"; then
    echo "remote-smoke: zero committed transactions" >&2
    exit 1
fi
grep -q '"remote_transport_errs"' "$OUT" && {
    echo "remote-smoke: transport errors during the run" >&2
    exit 1
}
grep -q '"noisy"' "$OUT" || {
    echo "remote-smoke: no quota aborts attributed to tenant noisy" >&2
    exit 1
}
echo "remote-smoke: OK ($CONNS conns on 4 workers, JSON in $OUT)"
