package stm

import (
	"fmt"
	"strings"
	"testing"
)

// clockConfig builds an STM with a specific clock mode (and optional Ord
// commit batcher) on top of the standard test geometry.
func newClockSTM(t *testing.T, alg Algorithm, mode ClockMode, batch int) *STM {
	t.Helper()
	s, err := New(Config{
		Algorithm: alg, HeapWords: 1 << 16, OrecCount: 1 << 10,
		Clock: mode, OrderBatch: batch,
	})
	if err != nil {
		t.Fatalf("New(%v, clock=%v, batch=%d): %v", alg, mode, batch, err)
	}
	return s
}

// deferredAlgos are the engines that support the deferred clock modes: every
// redo-log engine. The undo-log PVR engines are pinned to GV1 (see
// TestDeferredClockRejectsUndoEngines).
var deferredAlgos = []Algorithm{TL2, Ord, OrdQueue, Val, PVRHybrid}

// TestGV5ReaderAdvances is the deterministic pin for the GV5 reader rule: a
// writer commits at Now()+1 without advancing the clock, so the next reader
// begins at a snapshot time strictly below the committed wts. Observing that
// future timestamp the reader must publish it (AdvanceTo) and extend its
// snapshot — never abort. The whole scenario is sequential, so any abort or
// missed advance is a real bug, not scheduling noise.
func TestGV5ReaderAdvances(t *testing.T) {
	// Val is absent: its commit-side validation fence publishes the wts
	// itself (readers must be able to poll past it), so a Val reader never
	// observes a future timestamp in the first place.
	for _, alg := range []Algorithm{TL2, Ord, OrdQueue, PVRHybrid} {
		t.Run(alg.String(), func(t *testing.T) {
			s := newClockSTM(t, alg, ClockGV5, 0)
			a := s.MustAlloc(1)
			wth := s.MustNewThread()
			rth := s.MustNewThread()
			if err := wth.Atomic(func(tx *Tx) { tx.Store(a, 42) }); err != nil {
				t.Fatalf("writer: %v", err)
			}
			var got Word
			if err := rth.Atomic(func(tx *Tx) { got = tx.Load(a) }); err != nil {
				t.Fatalf("reader: %v", err)
			}
			if got != 42 {
				t.Fatalf("read %d, want 42", got)
			}
			if n := rth.Stats().Aborts; n != 0 {
				t.Errorf("reader aborted %d times; future wts must extend, not abort", n)
			}
			if n := rth.Stats().Extensions; n == 0 {
				t.Error("reader performed no snapshot extension")
			}
			if n := rth.Stats().ClockAdvances; n == 0 {
				t.Error("reader published no clock advance (AdvanceTo)")
			}
			if n := s.Stats().ClockTicks; n != 0 {
				t.Errorf("ClockTicks = %d under GV5, want 0", n)
			}
		})
	}
}

// TestClockTicksEliminated is the acceptance-criterion counter check: under
// the deferred modes the commit path performs no global-clock RMW at all,
// while under GV1 every writer commit performs exactly one.
func TestClockTicksEliminated(t *testing.T) {
	const txns = 50
	run := func(t *testing.T, alg Algorithm, mode ClockMode) *STM {
		s := newClockSTM(t, alg, mode, 0)
		a := s.MustAlloc(1)
		th := s.MustNewThread()
		for i := 0; i < txns; i++ {
			if err := th.Atomic(func(tx *Tx) { tx.Store(a, tx.Load(a)+1) }); err != nil {
				t.Fatalf("txn %d: %v", i, err)
			}
		}
		if got := s.DirectLoad(a); got != txns {
			t.Fatalf("counter = %d, want %d", got, txns)
		}
		if n := s.Stats().Aborts; n != 0 {
			t.Fatalf("%d aborts in a single-thread run", n)
		}
		return s
	}
	for _, alg := range deferredAlgos {
		for _, mode := range []ClockMode{ClockGV5, ClockLocal} {
			t.Run(fmt.Sprintf("%v/%v", alg, mode), func(t *testing.T) {
				s := run(t, alg, mode)
				if n := s.Stats().ClockTicks; n != 0 {
					t.Errorf("ClockTicks = %d under %v, want 0", n, mode)
				}
			})
		}
		t.Run(fmt.Sprintf("%v/gv1", alg), func(t *testing.T) {
			s := run(t, alg, ClockGV1)
			if n := s.Stats().ClockTicks; n != txns {
				t.Errorf("ClockTicks = %d under GV1, want %d (one CAS per writer commit)", n, txns)
			}
		})
	}
}

// TestLocalClockMonotoneCommits: under ClockLocal a thread's successive
// commits take strictly increasing timestamps from its own clock even though
// the global clock never moves; a second thread then observes the data
// consistently (its reads force a global-clock advance).
func TestLocalClockMonotoneCommits(t *testing.T) {
	s := newClockSTM(t, Ord, ClockLocal, 0)
	a := s.MustAlloc(2)
	th := s.MustNewThread()
	for i := 0; i < 10; i++ {
		if err := th.Atomic(func(tx *Tx) {
			tx.Store(a, tx.Load(a)+1)
			tx.Store(a+1, tx.Load(a+1)+1)
		}); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	other := s.MustNewThread()
	var x, y Word
	if err := other.Atomic(func(tx *Tx) { x, y = tx.Load(a), tx.Load(a+1) }); err != nil {
		t.Fatalf("observer: %v", err)
	}
	if x != 10 || y != 10 {
		t.Errorf("observed %d/%d, want 10/10", x, y)
	}
	if n := s.Stats().ClockTicks; n != 0 {
		t.Errorf("ClockTicks = %d under local clocks, want 0", n)
	}
	if n := s.Stats().Aborts; n != 0 {
		t.Errorf("%d aborts in a sequential run", n)
	}
}

// TestDeferredClockRejectsUndoEngines: the undo-log PVR engines never extend
// their snapshots and their fence proofs assume every writer commit advances
// the global clock, so New must refuse to pair them with a deferred clock.
func TestDeferredClockRejectsUndoEngines(t *testing.T) {
	for _, alg := range []Algorithm{PVRBase, PVRCAS, PVRStore, PVRWriterOnly} {
		for _, mode := range []ClockMode{ClockGV5, ClockLocal} {
			if _, err := New(Config{
				Algorithm: alg, HeapWords: 1 << 12, OrecCount: 1 << 8, Clock: mode,
			}); err == nil {
				t.Errorf("New(%v, clock=%v) succeeded, want ClockGV1 pin error", alg, mode)
			} else if !strings.Contains(err.Error(), "ClockGV1") {
				t.Errorf("New(%v, clock=%v) error %q does not name the ClockGV1 requirement", alg, mode, err)
			}
		}
	}
}

// TestClockModeParse round-trips the public parser.
func TestClockModeParse(t *testing.T) {
	for _, m := range ClockModes {
		got, err := ParseClockMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseClockMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseClockMode("tsc"); err == nil {
		t.Error("ParseClockMode accepted an unknown mode")
	}
}

// TestCommitPathAllocFree pins the allocation discipline of the new commit
// paths: the GV5 and local-clock fast paths and the batcher's self-serve
// path must stay 0 allocs/txn, same as the GV1 baseline they replace.
func TestCommitPathAllocFree(t *testing.T) {
	cases := []struct {
		name  string
		alg   Algorithm
		mode  ClockMode
		batch int
	}{
		{"tl2/gv1", TL2, ClockGV1, 0},
		{"tl2/gv5", TL2, ClockGV5, 0},
		{"tl2/local", TL2, ClockLocal, 0},
		{"ord/gv5", Ord, ClockGV5, 0},
		{"ord/local", Ord, ClockLocal, 0},
		{"ord/gv5+batch", Ord, ClockGV5, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newClockSTM(t, tc.alg, tc.mode, tc.batch)
			a := s.MustAlloc(1)
			th := s.MustNewThread()
			body := func(tx *Tx) { tx.Store(a, tx.Load(a)+1) }
			if err := th.Atomic(body); err != nil { // warm up logs
				t.Fatal(err)
			}
			if n := testing.AllocsPerRun(200, func() {
				if err := th.Atomic(body); err != nil {
					t.Fatal(err)
				}
			}); n != 0 {
				t.Errorf("commit path allocates %.1f per txn, want 0", n)
			}
		})
	}
}

// TestCombinerCountersWired: with the batcher enabled, concurrent Ord
// commits must still land exactly, and the Combined/CombineLeads counters
// must agree (every combined commit has exactly one leader service).
func TestCombinerCountersWired(t *testing.T) {
	const (
		threads = 4
		txns    = 200
	)
	s := newClockSTM(t, Ord, ClockGV5, 8)
	a := s.MustAlloc(1)
	done := make(chan error, threads)
	for w := 0; w < threads; w++ {
		th := s.MustNewThread()
		go func() {
			var err error
			for i := 0; i < txns && err == nil; i++ {
				err = th.Atomic(func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
			}
			done <- err
		}()
	}
	for w := 0; w < threads; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := s.DirectLoad(a); got != threads*txns {
		t.Fatalf("counter = %d, want %d: a combined write-back was lost or doubled", got, threads*txns)
	}
	agg := s.Stats()
	if agg.ClockTicks != 0 {
		t.Errorf("ClockTicks = %d under GV5+batch, want 0", agg.ClockTicks)
	}
	if agg.Combined > 0 && agg.CombineLeads == 0 {
		t.Errorf("Combined = %d but CombineLeads = 0: counters out of sync", agg.Combined)
	}
	if agg.WriterCommits != threads*txns {
		t.Errorf("WriterCommits = %d, want %d", agg.WriterCommits, threads*txns)
	}
}

// TestSerializabilityClockModes reruns the offline conflict-serializability
// oracle over every deferred clock mode × redo engine, plus the Ord batcher
// under both deferred modes — the end-to-end isolation check for the new
// commit paths.
func TestSerializabilityClockModes(t *testing.T) {
	type variant struct {
		alg   Algorithm
		mode  ClockMode
		batch int
	}
	var variants []variant
	for _, alg := range deferredAlgos {
		for _, mode := range []ClockMode{ClockGV5, ClockLocal} {
			variants = append(variants, variant{alg, mode, 0})
		}
	}
	variants = append(variants,
		variant{Ord, ClockGV1, 8},
		variant{Ord, ClockGV5, 8},
		variant{Ord, ClockLocal, 8},
	)
	for _, v := range variants {
		name := fmt.Sprintf("%v/%v", v.alg, v.mode)
		if v.batch > 0 {
			name += fmt.Sprintf("+b%d", v.batch)
		}
		t.Run(name, func(t *testing.T) {
			serializabilityRun(t, newClockSTM(t, v.alg, v.mode, v.batch), 4, 150, 8)
		})
	}
}
