package stm_test

import (
	"fmt"

	stm "privstm"
)

// The basic transaction lifecycle: allocate, mutate atomically, read back.
func Example() {
	s := stm.MustNew(stm.Config{Algorithm: stm.PVRStore, HeapWords: 1 << 10})
	th := s.MustNewThread()
	acct := s.MustAlloc(2)

	_ = th.Atomic(func(tx *stm.Tx) {
		tx.Store(acct, 100)   // balance
		tx.Store(acct+1, 925) // account id
	})
	_ = th.Atomic(func(tx *stm.Tx) {
		tx.Store(acct, tx.Load(acct)-30)
	})
	fmt.Println("balance:", s.DirectLoad(acct))
	// Output: balance: 70
}

// Privatization by pointer swap: after the transactional detach commits,
// the data is accessed with plain loads — the zero-instrumentation access
// the paper's techniques make safe.
func Example_privatization() {
	s := stm.MustNew(stm.Config{Algorithm: stm.PVRBase, HeapWords: 1 << 10})
	th := s.MustNewThread()

	slot := s.MustAlloc(1) // shared pointer cell
	data := s.MustAlloc(3)
	_ = th.Atomic(func(tx *stm.Tx) {
		for i := stm.Addr(0); i < 3; i++ {
			tx.Store(data+i, stm.Word(i)*11)
		}
		tx.StoreAddr(slot, data) // publish
	})

	var mine stm.Addr
	_ = th.Atomic(func(tx *stm.Tx) {
		mine = tx.LoadAddr(slot)
		tx.StoreAddr(slot, stm.Nil) // privatize: the fence runs here if needed
	})
	sum := stm.Word(0)
	for i := stm.Addr(0); i < 3; i++ {
		sum += s.DirectLoad(mine + i) // uninstrumented
	}
	fmt.Println("sum:", sum)
	// Output: sum: 33
}

// Tx.Cancel rolls the transaction back and surfaces an error instead of
// retrying.
func ExampleTx_Cancel() {
	s := stm.MustNew(stm.Config{Algorithm: stm.Ord, HeapWords: 1 << 10})
	th := s.MustNewThread()
	a := s.MustAlloc(1)

	err := th.Atomic(func(tx *stm.Tx) {
		tx.Store(a, 42)
		if tx.Load(a) > 10 {
			tx.Cancel(fmt.Errorf("limit exceeded"))
		}
	})
	fmt.Println("err:", err)
	fmt.Println("value:", s.DirectLoad(a))
	// Output:
	// err: limit exceeded
	// value: 0
}

// Algorithms are selected by configuration; their figure labels round-trip
// through ParseAlgorithm.
func ExampleParseAlgorithm() {
	a, _ := stm.ParseAlgorithm("pvrWriterOnly")
	fmt.Println(a, a.Safe())
	b, _ := stm.ParseAlgorithm("TL2")
	fmt.Println(b, b.Safe())
	// Output:
	// pvrWriterOnly true
	// TL2 false
}

// Tracing records the events of each attempt, including retries.
func ExampleThread_EnableTrace() {
	s := stm.MustNew(stm.Config{Algorithm: stm.Val, HeapWords: 1 << 10})
	th := s.MustNewThread()
	a := s.MustAlloc(1)
	th.EnableTrace(32)
	_ = th.Atomic(func(tx *stm.Tx) { tx.Store(a, 7) })
	for _, e := range th.Trace() {
		fmt.Println(e)
	}
	// Output:
	// attempt #1
	// write 1=7
	// commit
}
