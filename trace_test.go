package stm

import (
	"testing"
	"time"
)

func TestTraceRecordsCommit(t *testing.T) {
	s := newSTM(t, PVRStore)
	th := s.MustNewThread()
	a := s.MustAlloc(1)
	th.EnableTrace(64)
	if err := th.Atomic(func(tx *Tx) {
		tx.Store(a, 5)
		_ = tx.Load(a)
	}); err != nil {
		t.Fatal(err)
	}
	ev := th.Trace()
	want := []TraceEvent{
		{Kind: TraceAttempt, Val: 1},
		{Kind: TraceWrite, Addr: a, Val: 5},
		{Kind: TraceRead, Addr: a, Val: 5},
		{Kind: TraceCommit},
	}
	if len(ev) != len(want) {
		t.Fatalf("trace = %v", ev)
	}
	for i := range want {
		if ev[i] != want[i] {
			t.Errorf("trace[%d] = %v, want %v", i, ev[i], want[i])
		}
	}
	th.DisableTrace()
	if th.Trace() != nil {
		t.Error("trace survived DisableTrace")
	}
}

func TestTraceRecordsRetries(t *testing.T) {
	s := newSTM(t, PVRBase)
	flag := s.MustAlloc(1)
	th := s.MustNewThread()
	setter := s.MustNewThread()
	go func() {
		time.Sleep(5 * time.Millisecond)
		_ = setter.Atomic(func(tx *Tx) { tx.Store(flag, 1) })
	}()
	th.EnableTrace(256)
	_ = th.Atomic(func(tx *Tx) {
		if tx.Load(flag) == 0 {
			tx.Retry()
		}
	})
	ev := th.Trace()
	attempts := 0
	var maxAttempt Word
	for _, e := range ev {
		if e.Kind == TraceAttempt {
			attempts++
			maxAttempt = e.Val
		}
	}
	if attempts < 2 || int(maxAttempt) != attempts {
		t.Errorf("attempts = %d (max tag %d); trace tail: %v", attempts, maxAttempt, ev[max(0, len(ev)-6):])
	}
	if ev[len(ev)-1].Kind != TraceCommit {
		t.Errorf("last event = %v, want commit", ev[len(ev)-1])
	}
}

func TestTraceCancelAndWrap(t *testing.T) {
	s := newSTM(t, TL2)
	th := s.MustNewThread()
	a := s.MustAlloc(1)
	th.EnableTrace(16)
	err := th.Atomic(func(tx *Tx) {
		tx.Cancel(errSentinelTrace)
	})
	if err != errSentinelTrace {
		t.Fatal(err)
	}
	ev := th.Trace()
	if ev[len(ev)-1].Kind != TraceCancel {
		t.Errorf("last = %v, want cancel", ev[len(ev)-1])
	}
	// Overflow the ring; only the newest 16 events survive.
	for i := 0; i < 30; i++ {
		_ = th.Atomic(func(tx *Tx) { tx.Store(a, Word(i)) })
	}
	ev = th.Trace()
	if len(ev) != 16 {
		t.Errorf("ring holds %d, want 16", len(ev))
	}
	if ev[len(ev)-1].Kind != TraceCommit {
		t.Errorf("last after wrap = %v", ev[len(ev)-1])
	}
}

func TestTraceKindStrings(t *testing.T) {
	if TraceRead.String() != "read" || TraceKind(99).String() == "" {
		t.Error("kind strings wrong")
	}
	e := TraceEvent{Kind: TraceWrite, Addr: 3, Val: 9}
	if e.String() != "write 3=9" {
		t.Errorf("event string = %q", e.String())
	}
	if (TraceEvent{Kind: TraceAttempt, Val: 2}).String() != "attempt #2" {
		t.Error("attempt string wrong")
	}
	if (TraceEvent{Kind: TraceCommit}).String() != "commit" {
		t.Error("commit string wrong")
	}
}

var errSentinelTrace = errTrace("stop")

type errTrace string

func (e errTrace) Error() string { return string(e) }
