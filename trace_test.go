package stm

import (
	"testing"
	"time"
)

func TestTraceRecordsCommit(t *testing.T) {
	s := newSTM(t, PVRStore)
	th := s.MustNewThread()
	a := s.MustAlloc(1)
	th.EnableTrace(64)
	if err := th.Atomic(func(tx *Tx) {
		tx.Store(a, 5)
		_ = tx.Load(a)
	}); err != nil {
		t.Fatal(err)
	}
	ev := th.Trace()
	want := []TraceEvent{
		{Kind: TraceAttempt, Val: 1},
		{Kind: TraceWrite, Addr: a, Val: 5},
		{Kind: TraceRead, Addr: a, Val: 5},
		{Kind: TraceCommit},
	}
	if len(ev) != len(want) {
		t.Fatalf("trace = %v", ev)
	}
	for i := range want {
		if ev[i] != want[i] {
			t.Errorf("trace[%d] = %v, want %v", i, ev[i], want[i])
		}
	}
	th.DisableTrace()
	if th.Trace() != nil {
		t.Error("trace survived DisableTrace")
	}
}

func TestTraceRecordsRetries(t *testing.T) {
	s := newSTM(t, PVRBase)
	flag := s.MustAlloc(1)
	th := s.MustNewThread()
	setter := s.MustNewThread()
	go func() {
		time.Sleep(5 * time.Millisecond)
		_ = setter.Atomic(func(tx *Tx) { tx.Store(flag, 1) })
	}()
	th.EnableTrace(256)
	_ = th.Atomic(func(tx *Tx) {
		if tx.Load(flag) == 0 {
			tx.Retry()
		}
	})
	ev := th.Trace()
	attempts := 0
	var maxAttempt Word
	for _, e := range ev {
		if e.Kind == TraceAttempt {
			attempts++
			maxAttempt = e.Val
		}
	}
	if attempts < 2 || int(maxAttempt) != attempts {
		t.Errorf("attempts = %d (max tag %d); trace tail: %v", attempts, maxAttempt, ev[max(0, len(ev)-6):])
	}
	if ev[len(ev)-1].Kind != TraceCommit {
		t.Errorf("last event = %v, want commit", ev[len(ev)-1])
	}
}

func TestTraceCancelAndWrap(t *testing.T) {
	s := newSTM(t, TL2)
	th := s.MustNewThread()
	a := s.MustAlloc(1)
	th.EnableTrace(16)
	err := th.Atomic(func(tx *Tx) {
		tx.Cancel(errSentinelTrace)
	})
	if err != errSentinelTrace {
		t.Fatal(err)
	}
	ev := th.Trace()
	if ev[len(ev)-1].Kind != TraceCancel {
		t.Errorf("last = %v, want cancel", ev[len(ev)-1])
	}
	// Overflow the ring; only the newest 16 events survive.
	for i := 0; i < 30; i++ {
		_ = th.Atomic(func(tx *Tx) { tx.Store(a, Word(i)) })
	}
	ev = th.Trace()
	if len(ev) != 16 {
		t.Errorf("ring holds %d, want 16", len(ev))
	}
	if ev[len(ev)-1].Kind != TraceCommit {
		t.Errorf("last after wrap = %v", ev[len(ev)-1])
	}
}

// TestTraceConcurrentToggleAndSnapshot is the regression test for the
// trace-ring race: EnableTrace/DisableTrace/Trace from a monitor goroutine
// while the owning goroutine is mid-Atomic used to swap th.trace and read
// the ring's cursor unsynchronized. Run under -race; also checks no torn
// event escapes (every snapshot entry must be one of the values actually
// written).
func TestTraceConcurrentToggleAndSnapshot(t *testing.T) {
	s := newSTM(t, TL2)
	th := s.MustNewThread()
	a := s.MustAlloc(1)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 400; i++ {
			_ = th.Atomic(func(tx *Tx) {
				tx.Store(a, Word(i))
				_ = tx.Load(a)
			})
		}
	}()
	// Monitor: toggle and snapshot continuously while transactions run.
	for i := 0; ; i++ {
		select {
		case <-done:
			return
		default:
		}
		switch i % 3 {
		case 0:
			th.EnableTrace(32)
		case 1:
			for _, e := range th.Trace() {
				switch e.Kind {
				case TraceAttempt, TraceRead, TraceWrite, TraceCommit, TraceCancel:
				default:
					t.Errorf("torn event escaped snapshot: %+v", e)
				}
				if (e.Kind == TraceRead || e.Kind == TraceWrite) && e.Addr != a {
					t.Errorf("torn event escaped snapshot: %+v", e)
				}
			}
		case 2:
			th.DisableTrace()
		}
	}
}

// TestTraceSnapshotDropsTornSlot pins the seq-guard directly: a slot whose
// payload is mid-rewrite (seq = 0) is dropped, and the rest of the ring
// still comes back.
func TestTraceSnapshotDropsTornSlot(t *testing.T) {
	r := newTraceRing(16)
	for i := 0; i < 4; i++ {
		r.add(TraceEvent{Kind: TraceWrite, Addr: Addr(i), Val: Word(i)})
	}
	// Simulate a writer caught between "seq = 0" and the payload stores.
	r.slots[1].seq.Store(0)
	ev := r.snapshot()
	if len(ev) != 3 {
		t.Fatalf("snapshot kept %d events, want 3 (torn slot dropped): %v", len(ev), ev)
	}
	for _, e := range ev {
		if e.Addr == 1 {
			t.Fatalf("torn slot returned: %v", ev)
		}
	}
}

func TestTraceKindStrings(t *testing.T) {
	if TraceRead.String() != "read" || TraceKind(99).String() == "" {
		t.Error("kind strings wrong")
	}
	e := TraceEvent{Kind: TraceWrite, Addr: 3, Val: 9}
	if e.String() != "write 3=9" {
		t.Errorf("event string = %q", e.String())
	}
	if (TraceEvent{Kind: TraceAttempt, Val: 2}).String() != "attempt #2" {
		t.Error("attempt string wrong")
	}
	if (TraceEvent{Kind: TraceCommit}).String() != "commit" {
		t.Error("commit string wrong")
	}
}

var errSentinelTrace = errTrace("stop")

type errTrace string

func (e errTrace) Error() string { return string(e) }
