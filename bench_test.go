// Benchmarks regenerating the paper's evaluation under `go test -bench`.
//
// One benchmark per figure panel: BenchmarkFig3a … BenchmarkFig3h sweep all
// eight STM systems over the three microbenchmark structures and both
// operation mixes (Figure 3); BenchmarkFig4a/4c/4e/4g report the
// percent-writers-fenced and percent-visible-reads-skipped metrics for
// pvrBase vs pvrCAS (Figure 4); BenchmarkSingleThreadOverhead reproduces
// §V's single-thread comparison. Structure sizes default to a scaled-down
// CI configuration; `go run ./cmd/stmbench -scale 1` runs paper scale.
//
// Sub-benchmark names are the paper's curve labels, so
// `go test -bench 'Fig3a/pvrStore'` measures one curve of one panel.
package stm_test

import (
	"fmt"
	"sync"
	"testing"

	stm "privstm"
	"privstm/internal/bench"
	"privstm/internal/rng"
)

// benchScale divides structure sizes for CI-speed benchmarks.
const benchScale = 8

func panelSpec(fig string) (bench.Spec, bench.Mix) {
	f, err := bench.FigureByID(fig)
	if err != nil {
		panic(err)
	}
	return f.Spec(benchScale), f.Mix
}

// runPanel drives b.N operations of the given mix, spread over GOMAXPROCS
// workers, against one algorithm, and reports ops/sec (the unit of every
// Figure 3 axis).
func runPanel(b *testing.B, spec bench.Spec, alg stm.Algorithm, mix bench.Mix) *bench.Measurement {
	b.Helper()
	s, err := stm.New(stm.Config{
		Algorithm:  alg,
		HeapWords:  spec.HeapWords,
		OrecCount:  spec.OrecCount,
		MaxThreads: 128,
	})
	if err != nil {
		b.Fatal(err)
	}
	inst, err := spec.Build(s, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	var mu sync.Mutex
	m := &bench.Measurement{Workload: spec.Name, Algorithm: alg.String(), Mix: mix}
	var seq uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		seq++
		ctx := &bench.OpCtx{Th: s.MustNewThread(), RNG: rng.New(seq * 0x9e37), S: s}
		mu.Unlock()
		for pb.Next() {
			inst.Op(ctx, mix)
		}
		mu.Lock()
		m.Stats.Add(ctx.Th.Stats())
		mu.Unlock()
	})
	b.StopTimer()
	if err := inst.Check(s); err != nil {
		b.Fatalf("post-bench structural check: %v", err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
	return m
}

func benchFig3(b *testing.B, fig string) {
	spec, mix := panelSpec(fig)
	for _, alg := range bench.StandardCurves {
		b.Run(alg.String(), func(b *testing.B) {
			runPanel(b, spec, alg, mix)
		})
	}
}

func BenchmarkFig3a(b *testing.B) { benchFig3(b, "3a") }
func BenchmarkFig3b(b *testing.B) { benchFig3(b, "3b") }
func BenchmarkFig3c(b *testing.B) { benchFig3(b, "3c") }
func BenchmarkFig3d(b *testing.B) { benchFig3(b, "3d") }
func BenchmarkFig3e(b *testing.B) { benchFig3(b, "3e") }
func BenchmarkFig3f(b *testing.B) { benchFig3(b, "3f") }
func BenchmarkFig3g(b *testing.B) { benchFig3(b, "3g") }
func BenchmarkFig3h(b *testing.B) { benchFig3(b, "3h") }

// benchFig4 reports Figure 4's two statistics as benchmark metrics for the
// pvrBase / pvrCAS pair under both mixes.
func benchFig4(b *testing.B, fig string) {
	f, err := bench.FigureByID(fig)
	if err != nil {
		b.Fatal(err)
	}
	spec := f.Spec(benchScale)
	for _, alg := range bench.FenceCurves {
		for _, mix := range bench.AllMixes {
			b.Run(fmt.Sprintf("%s-%dpctLookup", alg, mix.LookupPct()), func(b *testing.B) {
				m := runPanel(b, spec, alg, mix)
				b.ReportMetric(m.Stats.PercentWritersFenced(), "%fenced")
				b.ReportMetric(m.Stats.PercentVisibleReadsSkipped(), "%visSkipped")
			})
		}
	}
}

func BenchmarkFig4a(b *testing.B) { benchFig4(b, "4a") }
func BenchmarkFig4c(b *testing.B) { benchFig4(b, "4c") }
func BenchmarkFig4e(b *testing.B) { benchFig4(b, "4e") }
func BenchmarkFig4g(b *testing.B) { benchFig4(b, "4g") }

// BenchmarkSingleThreadOverhead reproduces the §V text comparison: every
// algorithm's single-thread cost on each structure (compare ops/sec across
// sub-benchmarks; TL2 is the privatization-unsafe upper bound).
func BenchmarkSingleThreadOverhead(b *testing.B) {
	specs := []bench.Spec{
		bench.Hashtable(64, 256),
		bench.BST(1 << 14),
		bench.MultiList(64, 64),
	}
	for _, spec := range specs {
		for _, alg := range bench.StandardCurves {
			b.Run(fmt.Sprintf("%s/%s", spec.Name, alg), func(b *testing.B) {
				s := stm.MustNew(stm.Config{
					Algorithm: alg, HeapWords: spec.HeapWords,
					OrecCount: spec.OrecCount, MaxThreads: 2,
				})
				inst, err := spec.Build(s, rng.New(1))
				if err != nil {
					b.Fatal(err)
				}
				ctx := &bench.OpCtx{Th: s.MustNewThread(), RNG: rng.New(7), S: s}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					inst.Op(ctx, bench.ReadMostly)
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
			})
		}
	}
}

// Ablation micro-benchmarks: the cost of a transactional read under each
// visibility discipline, isolating the §III design choices (CAS vs store
// updates, grace periods on/off).
func BenchmarkAblationReadVisibility(b *testing.B) {
	for _, alg := range []stm.Algorithm{stm.TL2, stm.PVRBase, stm.PVRCAS, stm.PVRStore, stm.PVRWriterOnly} {
		b.Run(alg.String(), func(b *testing.B) {
			s := stm.MustNew(stm.Config{Algorithm: alg, HeapWords: 1 << 12, OrecCount: 1 << 8, MaxThreads: 2})
			base := s.MustAlloc(64)
			th := s.MustNewThread()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = th.Atomic(func(tx *stm.Tx) {
					for j := stm.Addr(0); j < 16; j++ {
						_ = tx.Load(base + j)
					}
				})
			}
			b.ReportMetric(float64(16), "reads/txn")
		})
	}
}

// BenchmarkAblationWriteCommit measures a small read-modify-write
// transaction: encounter-time undo-log engines vs commit-time redo-log
// engines.
func BenchmarkAblationWriteCommit(b *testing.B) {
	for _, alg := range []stm.Algorithm{stm.TL2, stm.Ord, stm.Val, stm.PVRBase, stm.PVRStore, stm.PVRHybrid} {
		b.Run(alg.String(), func(b *testing.B) {
			s := stm.MustNew(stm.Config{Algorithm: alg, HeapWords: 1 << 12, OrecCount: 1 << 8, MaxThreads: 2})
			base := s.MustAlloc(8)
			th := s.MustNewThread()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = th.Atomic(func(tx *stm.Tx) {
					for j := stm.Addr(0); j < 4; j++ {
						tx.Store(base+j, tx.Load(base+j)+1)
					}
				})
			}
		})
	}
}

// BenchmarkCentralList isolates the §II-C incomplete-transaction tracker —
// the bottleneck the paper identifies for short transactions — comparing
// the paper's locked central list against the lock-free registry-scan
// tracker and the cached-watermark slot tracker (the default).
func BenchmarkCentralList(b *testing.B) {
	for _, tc := range []struct {
		name    string
		tracker stm.TrackerKind
	}{{"list", stm.TrackerList}, {"scan", stm.TrackerScan}, {"slot", stm.TrackerSlot}} {
		b.Run(tc.name, func(b *testing.B) {
			s := stm.MustNew(stm.Config{
				Algorithm: stm.PVRBase, HeapWords: 1 << 10, OrecCount: 64,
				MaxThreads: 128, Tracker: tc.tracker,
			})
			a := s.MustAlloc(1)
			b.RunParallel(func(pb *testing.PB) {
				th := s.MustNewThread()
				for pb.Next() {
					// A tiny read-only transaction is almost pure
					// tracker traffic.
					_ = th.Atomic(func(tx *stm.Tx) { _ = tx.Load(a) })
				}
			})
		})
	}
}

// BenchmarkAblationFenceCap measures the commit-time threshold cap (§II-D
// future work) under a fence-heavy load: grace periods on, readers and
// writers sharing one hot block.
func BenchmarkAblationFenceCap(b *testing.B) {
	for _, tc := range []struct {
		name string
		cap  bool
	}{{"uncapped", false}, {"capped", true}} {
		b.Run(tc.name, func(b *testing.B) {
			s := stm.MustNew(stm.Config{
				Algorithm: stm.PVRCAS, HeapWords: 1 << 10, OrecCount: 64,
				MaxThreads: 128, CapFenceAtCommit: tc.cap,
			})
			a := s.MustAlloc(8)
			b.RunParallel(func(pb *testing.PB) {
				th := s.MustNewThread()
				i := 0
				for pb.Next() {
					if i++; i%4 == 0 {
						_ = th.Atomic(func(tx *stm.Tx) {
							tx.Store(a, tx.Load(a)+1)
						})
					} else {
						_ = th.Atomic(func(tx *stm.Tx) {
							for j := stm.Addr(0); j < 8; j++ {
								_ = tx.Load(a + j)
							}
						})
					}
				}
			})
		})
	}
}

// BenchmarkPrivatizedVsInstrumented quantifies the paper's core
// motivation (§I: a workload spending >95% of its time on privatized data
// needs zero-overhead access): summing a 4096-word region through the
// transactional API versus plain loads after privatizing it.
func BenchmarkPrivatizedVsInstrumented(b *testing.B) {
	const words = 4096
	s := stm.MustNew(stm.Config{Algorithm: stm.PVRStore, HeapWords: 1 << 14, MaxThreads: 2})
	base := s.MustAlloc(words)
	for i := stm.Addr(0); i < words; i++ {
		s.DirectStore(base+i, stm.Word(i))
	}
	th := s.MustNewThread()
	b.Run("transactional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sum stm.Word
			_ = th.Atomic(func(tx *stm.Tx) {
				sum = 0
				for j := stm.Addr(0); j < words; j++ {
					sum += tx.Load(base + j)
				}
			})
			if sum == 0 {
				b.Fatal("bad sum")
			}
		}
	})
	b.Run("privatized", func(b *testing.B) {
		// One transaction "privatizes" (here: no concurrent sharers, so
		// the fence is free); the scan itself is uninstrumented.
		for i := 0; i < b.N; i++ {
			var sum stm.Word
			for j := stm.Addr(0); j < words; j++ {
				sum += s.DirectLoad(base + j)
			}
			if sum == 0 {
				b.Fatal("bad sum")
			}
		}
	})
}

// BenchmarkAblationGraceStrategy reproduces §III-A's design exploration:
// exponential vs linear vs hybrid grace adaptation on the long-transaction
// workload where grace periods matter most (large multi-list).
func BenchmarkAblationGraceStrategy(b *testing.B) {
	spec := bench.MultiList(16, 128)
	for _, tc := range []struct {
		name  string
		strat stm.GraceStrategy
	}{
		{"exponential", stm.GraceExponential},
		{"linear", stm.GraceLinear},
		{"hybrid", stm.GraceHybrid},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := stm.MustNew(stm.Config{
				Algorithm: stm.PVRCAS, HeapWords: spec.HeapWords,
				OrecCount: spec.OrecCount, MaxThreads: 128, GraceStrategy: tc.strat,
			})
			inst, err := spec.Build(s, rng.New(1))
			if err != nil {
				b.Fatal(err)
			}
			var mu sync.Mutex
			var seq uint64
			var agg bench.Measurement
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				seq++
				ctx := &bench.OpCtx{Th: s.MustNewThread(), RNG: rng.New(seq), S: s}
				mu.Unlock()
				for pb.Next() {
					inst.Op(ctx, bench.ReadMostly)
				}
				mu.Lock()
				agg.Stats.Add(ctx.Th.Stats())
				mu.Unlock()
			})
			b.StopTimer()
			b.ReportMetric(agg.Stats.PercentVisibleReadsSkipped(), "%visSkipped")
			b.ReportMetric(agg.Stats.PercentWritersFenced(), "%fenced")
		})
	}
}

// BenchmarkAblationTrackerUnderLoad compares the three trackers on the
// paper's short-transaction workload (hashtable), where §V blames the
// central list for pvr flattening.
func BenchmarkAblationTrackerUnderLoad(b *testing.B) {
	spec := bench.Hashtable(64, 256)
	for _, tc := range []struct {
		name    string
		tracker stm.TrackerKind
	}{{"list", stm.TrackerList}, {"scan", stm.TrackerScan}, {"slot", stm.TrackerSlot}} {
		b.Run(tc.name, func(b *testing.B) {
			s := stm.MustNew(stm.Config{
				Algorithm: stm.PVRStore, HeapWords: spec.HeapWords,
				OrecCount: spec.OrecCount, MaxThreads: 128, Tracker: tc.tracker,
			})
			inst, err := spec.Build(s, rng.New(1))
			if err != nil {
				b.Fatal(err)
			}
			var mu sync.Mutex
			var seq uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				seq++
				ctx := &bench.OpCtx{Th: s.MustNewThread(), RNG: rng.New(seq), S: s}
				mu.Unlock()
				for pb.Next() {
					inst.Op(ctx, bench.ReadMostly)
				}
			})
		})
	}
}
