package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentages(t *testing.T) {
	var c Counters
	if c.PercentWritersFenced() != 0 || c.PercentVisibleReadsSkipped() != 0 {
		t.Error("zero counters should yield 0% (no division by zero)")
	}
	c.WriterCommits = 200
	c.Fenced = 50
	if got := c.PercentWritersFenced(); got != 25 {
		t.Errorf("PercentWritersFenced = %v, want 25", got)
	}
	c.PVReads = 1000
	c.PVSkipped = 900
	if got := c.PercentVisibleReadsSkipped(); got != 90 {
		t.Errorf("PercentVisibleReadsSkipped = %v, want 90", got)
	}
	c.Commits = 75
	c.Aborts = 25
	if got := c.AbortRate(); got != 25 {
		t.Errorf("AbortRate = %v, want 25", got)
	}
}

func TestAddAccumulatesEveryField(t *testing.T) {
	// quick cannot synthesize Counters directly (blank padding field), so
	// build them from generated slices.
	mk := func(v [18]uint64) Counters {
		return Counters{
			Commits: v[0], Aborts: v[1], WriterCommits: v[2], ReadOnlyCommits: v[3],
			Fenced: v[4], FenceSpins: v[5], PVReads: v[6], PVUpdates: v[7],
			PVSkipped: v[8], PVMultiSets: v[9], Validations: v[10], Extensions: v[11],
			OrderWaits: v[12], StoreRaces: v[13], ModeSwitches: v[14],
			Serialized: v[15], FenceStalls: v[16], Ops: v[17],
		}
	}
	prop := func(av, bv [18]uint64) bool {
		a, b := mk(av), mk(bv)
		sum := a
		sum.Add(&b)
		return sum.Commits == a.Commits+b.Commits &&
			sum.Aborts == a.Aborts+b.Aborts &&
			sum.WriterCommits == a.WriterCommits+b.WriterCommits &&
			sum.ReadOnlyCommits == a.ReadOnlyCommits+b.ReadOnlyCommits &&
			sum.Fenced == a.Fenced+b.Fenced &&
			sum.FenceSpins == a.FenceSpins+b.FenceSpins &&
			sum.PVReads == a.PVReads+b.PVReads &&
			sum.PVUpdates == a.PVUpdates+b.PVUpdates &&
			sum.PVSkipped == a.PVSkipped+b.PVSkipped &&
			sum.PVMultiSets == a.PVMultiSets+b.PVMultiSets &&
			sum.Validations == a.Validations+b.Validations &&
			sum.Extensions == a.Extensions+b.Extensions &&
			sum.OrderWaits == a.OrderWaits+b.OrderWaits &&
			sum.StoreRaces == a.StoreRaces+b.StoreRaces &&
			sum.ModeSwitches == a.ModeSwitches+b.ModeSwitches &&
			sum.Serialized == a.Serialized+b.Serialized &&
			sum.FenceStalls == a.FenceStalls+b.FenceStalls &&
			sum.Ops == a.Ops+b.Ops
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	c := Counters{Commits: 5, PVReads: 7}
	c.Reset()
	if c != (Counters{}) {
		t.Errorf("Reset left %+v", c)
	}
}

func TestString(t *testing.T) {
	c := Counters{Commits: 10, Aborts: 2, WriterCommits: 4, Fenced: 1}
	s := c.String()
	for _, want := range []string{"commits=10", "aborts=2", "fenced=25.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
