// Package stats collects per-thread execution counters and derives the
// metrics the paper's Figure 4 reports: the percentage of writer
// transactions that hit the privatization fence, and the percentage of
// partial-visibility updates that readers were able to skip.
//
// Counters are plain (non-atomic) fields because each Counters value is
// owned by exactly one thread; harnesses aggregate after the threads join.
package stats

import "fmt"

// Counters accumulates one thread's event counts. The struct is padded to
// a multiple of the cache-line size so adjacent threads' counters never
// false-share.
type Counters struct {
	Commits               uint64 // transactions committed
	Aborts                uint64 // transactions aborted (then retried)
	WriterCommits         uint64 // committed transactions that performed ≥1 write
	ReadOnlyCommits       uint64 // committed transactions with no writes
	Fenced                uint64 // writer commits that waited at the privatization fence
	FenceSpins            uint64 // backoff iterations spent inside fences
	PVReads               uint64 // transactional reads executed in partially visible mode
	PVUpdates             uint64 // partial-visibility metadata updates performed
	PVSkipped             uint64 // partial-visibility updates skipped (read was covered)
	PVCacheHits           uint64 // skips resolved by the thread-local hint cache (no vis load)
	PVMultiSets           uint64 // updates that only set the multiple-readers bit
	Validations           uint64 // full read-set validations
	Extensions            uint64 // successful snapshot (timestamp) extensions
	OrderWaits            uint64 // commits that waited for strict-ordering turns
	StoreRaces            uint64 // retries of the store-only visibility protocol
	GraceRaces            uint64 // grace-adaptation CAS attempts lost to concurrent adapters
	ModeSwitches          uint64 // hybrid/writer-only transitions to visible mode
	Serialized            uint64 // commits via the serialized-irrevocable fallback
	FenceStalls           uint64 // stall-watchdog firings inside fences
	ClockTicks            uint64 // commit-path global-clock RMWs (0 under the deferred clock modes)
	ClockAdvances         uint64 // deferred-mode future-timestamp publications (reader/fence AdvanceTo)
	Combined              uint64 // commits whose write-back a flat-combining leader performed
	CombineLeads          uint64 // combining leads that served ≥1 follower commit
	SandboxValidations    uint64 // validate-before-dangerous-use checkpoints executed
	SemanticSkips         uint64 // commuting (delta) updates applied without validation (internal/tds)
	AbstractLockConflicts uint64 // commit-time abstract-lock acquisitions or validations that failed
	WeakReads             uint64 // unlogged reads covered by abstract locks (Tx.LoadWeak)
	Ops                   uint64 // benchmark-level operations completed
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	c.Commits += o.Commits
	c.Aborts += o.Aborts
	c.WriterCommits += o.WriterCommits
	c.ReadOnlyCommits += o.ReadOnlyCommits
	c.Fenced += o.Fenced
	c.FenceSpins += o.FenceSpins
	c.PVReads += o.PVReads
	c.PVUpdates += o.PVUpdates
	c.PVSkipped += o.PVSkipped
	c.PVCacheHits += o.PVCacheHits
	c.PVMultiSets += o.PVMultiSets
	c.Validations += o.Validations
	c.Extensions += o.Extensions
	c.OrderWaits += o.OrderWaits
	c.StoreRaces += o.StoreRaces
	c.GraceRaces += o.GraceRaces
	c.ModeSwitches += o.ModeSwitches
	c.Serialized += o.Serialized
	c.FenceStalls += o.FenceStalls
	c.ClockTicks += o.ClockTicks
	c.ClockAdvances += o.ClockAdvances
	c.Combined += o.Combined
	c.CombineLeads += o.CombineLeads
	c.SandboxValidations += o.SandboxValidations
	c.SemanticSkips += o.SemanticSkips
	c.AbstractLockConflicts += o.AbstractLockConflicts
	c.WeakReads += o.WeakReads
	c.Ops += o.Ops
}

// Reset zeroes all counters.
func (c *Counters) Reset() { *c = Counters{} }

// PercentWritersFenced is Figure 4's left-hand metric: of all committed
// writer transactions, the share that detected a possible reader conflict
// and waited at the privatization fence.
func (c *Counters) PercentWritersFenced() float64 {
	return percent(c.Fenced, c.WriterCommits)
}

// PercentVisibleReadsSkipped is Figure 4's right-hand metric: of all reads
// executed in partially visible mode, the share that skipped the metadata
// update because an earlier reader's timestamp already covered them.
func (c *Counters) PercentVisibleReadsSkipped() float64 {
	return percent(c.PVSkipped, c.PVReads)
}

// AbortRate is aborts per attempted transaction.
func (c *Counters) AbortRate() float64 {
	return percent(c.Aborts, c.Commits+c.Aborts)
}

func percent(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// String summarizes the headline counters for debug output.
func (c *Counters) String() string {
	return fmt.Sprintf(
		"commits=%d aborts=%d writers=%d fenced=%.1f%% pvSkipped=%.1f%% validations=%d",
		c.Commits, c.Aborts, c.WriterCommits,
		c.PercentWritersFenced(), c.PercentVisibleReadsSkipped(), c.Validations)
}
