// Package ord implements the strict in-order commit approach of §IV, in
// the style attributed to Detlefs et al.: a redo-log STM in which "a
// committing writer first acquires ownership of locations it intends to
// update, then requests a global ticket lock (takes a ticket), validates
// its read set, writes back its speculative updates, waits for its ticket
// to be served, and then increments the ticket for its successor."
//
// Keeping commit and cleanup in serialization order solves the delayed
// cleanup half of the privatization problem without any fence; the doomed
// transaction half is handled with incremental validation — the full read
// set is revalidated whenever the global clock moves (the approach §IV
// credits to the Microsoft system).
//
// Read-only transactions touch no central data structure at all, which is
// why Ord excels on read-dominated workloads (§V).
package ord

import (
	"privstm/internal/core"
	"privstm/internal/failpoint"
	"privstm/internal/heap"
)

// Engine is the strict-ordering STM.
type Engine struct {
	rt *core.Runtime
	// useQueue selects the CLH queue lock instead of the ticket lock; the
	// paper reports both performed equally well (§IV).
	useQueue bool
}

// New returns the ticket-lock variant whose results the paper reports.
func New(rt *core.Runtime) *Engine { return &Engine{rt: rt} }

// NewQueue returns the queue-lock variant mentioned in §IV.
func NewQueue(rt *core.Runtime) *Engine { return &Engine{rt: rt, useQueue: true} }

// Name returns the figure label.
func (e *Engine) Name() string {
	if e.useQueue {
		return "OrdQueue"
	}
	return "Ord"
}

// Begin samples the clock, arms incremental validation, and opts into
// snapshot extension (redo log: no in-place writes, so an extended
// snapshot is just a later begin time).
func (e *Engine) Begin(t *core.Thread) {
	t.GateSerialized()
	t.ResetTxnState()
	t.StartSnapshot(e.rt.Clock.Now())
	t.ExtendOK = true
	t.PublishActive(t.BeginTS)
}

// Read is a consistent read followed by the incremental-validation poll:
// if some writer committed since our last check, the whole read set is
// revalidated before the loaded value can be acted upon, so a doomed
// transaction aborts before consuming state a privatizer may be mutating.
func (e *Engine) Read(t *core.Thread, a heap.Addr) heap.Word {
	if w, ok := t.Redo.Get(a); ok {
		return w
	}
	w := t.ReadHeapConsistent(a)
	t.PollValidate()
	return w
}

// Write buffers the store in the redo log.
func (e *Engine) Write(t *core.Thread, a heap.Addr, w heap.Word) {
	t.Redo.Put(a, w)
	t.Wrote = true
}

// SemanticCommitCapable marks that Commit runs the abstract-lock hooks of
// the semantic conflict layer (core.SemCommitter).
func (e *Engine) SemanticCommitCapable() {}

// Commit implements the ordered commit. Aborting ticket holders still wait
// for their turn before passing the ticket on, preserving the serving
// sequence. Abstract locks are acquired before the ticket (a busy stripe
// aborts without entering the serving sequence) and released by
// SemPostCommit before the write-back — whether this thread or a
// flat-combining leader performs it — so stripe bumps always precede data
// visibility.
func (e *Engine) Commit(t *core.Thread) bool {
	rt := e.rt
	if !t.Wrote {
		if !t.SemPreCommit() {
			t.PublishInactive()
			return false
		}
		t.SemPostCommit()
		t.PublishInactive()
		t.Stats.ReadOnlyCommits++
		return true
	}
	if !t.AcquireWriteSet() {
		t.PublishInactive()
		return false
	}
	failpoint.Eval(failpoint.AcquiredBeforeWriteback)
	if !t.SemPreCommit() {
		t.Acq.RestoreAll()
		t.PublishInactive()
		return false
	}
	if e.useQueue {
		return e.commitQueue(t)
	}
	ticket := rt.Order.Take()
	if !t.ValidateReads() {
		t.SemAbortRelease()
		rt.Order.Wait(ticket)
		rt.Order.Done(ticket)
		t.Acq.RestoreAll()
		t.PublishInactive()
		return false
	}
	wts := t.CommitTS()
	t.SemPostCommit()
	if c := rt.Combine; c != nil {
		// Flat-combining path (Config.OrderBatch): publish the validated
		// commit and either have the current leader perform it, or — once
		// served — lead and drain a batch of successors ourselves.
		res := c.Commit(&rt.Order, rt.Heap, t.ID, ticket, wts, &t.Redo, &t.Acq)
		if res.Waited {
			t.Stats.OrderWaits++
		}
		if res.ByLeader {
			t.Stats.Combined++
		} else if res.Followers > 0 {
			t.Stats.CombineLeads++
		}
		t.PublishInactive()
		t.Stats.WriterCommits++
		return true
	}
	t.Redo.WriteBack(rt.Heap)
	if !rt.Order.Served(ticket) {
		t.Stats.OrderWaits++
		rt.Order.Wait(ticket)
	}
	t.Acq.ReleaseAll(wts)
	rt.Order.Done(ticket)
	t.PublishInactive()
	t.Stats.WriterCommits++
	return true
}

func (e *Engine) commitQueue(t *core.Thread) bool {
	rt := e.rt
	n := rt.OrderQ.Enqueue()
	if !t.ValidateReads() {
		t.SemAbortRelease()
		rt.OrderQ.Wait(n)
		rt.OrderQ.Done(n)
		t.Acq.RestoreAll()
		t.PublishInactive()
		return false
	}
	wts := t.CommitTS()
	t.SemPostCommit()
	t.Redo.WriteBack(rt.Heap)
	t.Stats.OrderWaits++
	rt.OrderQ.Wait(n)
	t.Acq.ReleaseAll(wts)
	rt.OrderQ.Done(n)
	t.PublishInactive()
	t.Stats.WriterCommits++
	return true
}

// Cancel aborts an in-flight transaction; nothing global is held before
// Commit, so only the descriptor needs resetting.
func (e *Engine) Cancel(t *core.Thread) {
	t.PublishInactive()
}
