package ord

import (
	"sync"
	"testing"

	"privstm/internal/core"
)

func newRT(t *testing.T) *core.Runtime {
	t.Helper()
	rt, err := core.NewRuntime(core.Options{HeapWords: 1 << 12, OrecCount: 1 << 8, MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func engines(rt *core.Runtime) []*Engine { return []*Engine{New(rt), NewQueue(rt)} }

func TestNames(t *testing.T) {
	rt := newRT(t)
	if New(rt).Name() != "Ord" || NewQueue(rt).Name() != "OrdQueue" {
		t.Error("engine names wrong")
	}
}

func TestRedoBuffering(t *testing.T) {
	for _, e := range engines(newRT(t)) {
		rt := e.rt
		th, _ := rt.NewThread()
		a := rt.Heap.MustAlloc(1)
		if err := core.Run(e, th, func() {
			e.Write(th, a, 5)
			// Buffered: memory must NOT change until commit.
			if rt.Heap.AtomicLoad(a) != 0 {
				t.Errorf("%s: redo write leaked to memory mid-txn", e.Name())
			}
			if got := e.Read(th, a); got != 5 {
				t.Errorf("%s: read-your-write = %d", e.Name(), got)
			}
		}); err != nil {
			t.Fatal(err)
		}
		if got := rt.Heap.AtomicLoad(a); got != 5 {
			t.Errorf("%s: value after commit = %d", e.Name(), got)
		}
	}
}

func TestIncrementalValidationDoomsStaleReader(t *testing.T) {
	// A transaction that has read x aborts at its next read after another
	// transaction commits a write to x — the §IV doomed-transaction guard.
	rt := newRT(t)
	e := New(rt)
	r, _ := rt.NewThread()
	w, _ := rt.NewThread()
	x := rt.Heap.MustAlloc(1)
	y := rt.Heap.MustAlloc(1)

	attempts := 0
	if err := core.Run(e, r, func() {
		attempts++
		_ = e.Read(r, x)
		if attempts == 1 {
			// Overlap a conflicting writer commit (same goroutine: the
			// writer uses its own descriptor, which is legal as long as
			// the calls do not interleave).
			if err := core.Run(e, w, func() { e.Write(w, x, 9) }); err != nil {
				t.Fatal(err)
			}
		}
		_ = e.Read(r, y) // must trigger revalidation and abort on attempt 1
	}); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Errorf("reader ran %d attempts, want 2 (doomed once)", attempts)
	}
	if r.Stats.Aborts != 1 {
		t.Errorf("Aborts = %d, want 1", r.Stats.Aborts)
	}
}

func TestAbortPassesTicketOn(t *testing.T) {
	// A committing writer whose validation fails must still pass the
	// ticket to its successor — otherwise the system deadlocks.
	rt := newRT(t)
	e := New(rt)
	x := rt.Heap.MustAlloc(1)
	y := rt.Heap.MustAlloc(1)
	if rt.Orecs.For(x) == rt.Orecs.For(y) {
		t.Skip("orec collision")
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		th, _ := rt.NewThread()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				_ = core.Run(e, th, func() {
					vx := e.Read(th, x)
					e.Write(th, y, vx+1)
					e.Write(th, x, vx+1)
				})
			}
		}()
	}
	wg.Wait() // would hang if an aborting holder swallowed its ticket
	if got, want := rt.Heap.AtomicLoad(x), rt.Heap.AtomicLoad(y); got != want {
		t.Errorf("x=%d y=%d diverged", got, want)
	}
	if rt.Heap.AtomicLoad(x) != 1200 {
		t.Errorf("x = %d, want 1200", rt.Heap.AtomicLoad(x))
	}
}

func TestReadOnlySkipsTicket(t *testing.T) {
	rt := newRT(t)
	e := New(rt)
	th, _ := rt.NewThread()
	a := rt.Heap.MustAlloc(1)
	before := rt.Order.Take() // consume a ticket to observe the counter
	rt.Order.Wait(before)
	rt.Order.Done(before)
	if err := core.Run(e, th, func() { _ = e.Read(th, a) }); err != nil {
		t.Fatal(err)
	}
	after := rt.Order.Take()
	rt.Order.Wait(after)
	rt.Order.Done(after)
	if after != before+1 {
		t.Errorf("read-only transaction consumed a ticket (%d -> %d)", before, after)
	}
	if th.Stats.ReadOnlyCommits != 1 {
		t.Errorf("ReadOnlyCommits = %d", th.Stats.ReadOnlyCommits)
	}
}

func TestQueueVariantConcurrent(t *testing.T) {
	rt := newRT(t)
	e := NewQueue(rt)
	a := rt.Heap.MustAlloc(1)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		th, _ := rt.NewThread()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 250; j++ {
				_ = core.Run(e, th, func() {
					e.Write(th, a, e.Read(th, a)+1)
				})
			}
		}()
	}
	wg.Wait()
	if got := rt.Heap.AtomicLoad(a); got != 1000 {
		t.Errorf("counter = %d, want 1000", got)
	}
}

// TestQueueVariantAbortPassesPosition mirrors TestAbortPassesTicketOn for
// the CLH queue variant: validation failures must release the queue
// position, or the system deadlocks.
func TestQueueVariantAbortPassesPosition(t *testing.T) {
	rt := newRT(t)
	e := NewQueue(rt)
	x := rt.Heap.MustAlloc(1)
	y := rt.Heap.MustAlloc(1)
	if rt.Orecs.For(x) == rt.Orecs.For(y) {
		t.Skip("orec collision")
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		th, _ := rt.NewThread()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 250; j++ {
				_ = core.Run(e, th, func() {
					vx := e.Read(th, x)
					e.Write(th, y, vx+1)
					e.Write(th, x, vx+1)
				})
			}
		}()
	}
	wg.Wait()
	if got := rt.Heap.AtomicLoad(x); got != 1000 {
		t.Errorf("x = %d, want 1000", got)
	}
	if got := rt.Heap.AtomicLoad(y); got != 1000 {
		t.Errorf("y = %d, want 1000", got)
	}
}

// TestOrdCommitAcquireFailure: a commit that cannot acquire its write set
// aborts cleanly without consuming a ticket.
func TestOrdCommitAcquireFailure(t *testing.T) {
	rt := newRT(t)
	e := New(rt)
	holder, _ := rt.NewThread()
	w, _ := rt.NewThread()
	a := rt.Heap.MustAlloc(1)
	// Simulate a concurrent owner by acquiring directly.
	holder.ResetTxnState()
	holder.StartSnapshot(rt.Clock.Now())
	holder.PublishActive(holder.BeginTS)
	if !holder.AcquireOrec(rt.Orecs.For(a)) {
		t.Fatal("setup acquire failed")
	}
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		_ = core.Run(e, w, func() { e.Write(w, a, 1) })
		close(done)
	}()
	go func() {
		<-release
		holder.Acq.RestoreAll()
		holder.PublishInactive()
	}()
	close(release)
	<-done // w retries until the holder releases, then commits
	if got := rt.Heap.AtomicLoad(a); got != 1 {
		t.Errorf("a = %d, want 1", got)
	}
}
