package tds

import stm "privstm"

// Queue is a transactional FIFO queue with semantic conflict detection.
// Structurally it matches tlib.Queue — meta words [head, tail, size], nodes
// [next, value] — but the size word is maintained as a commuting delta on
// stripe 0 instead of a logged read-modify-write, so Push never conflicts
// with Pop through the counter and Len never conflicts with either. The
// remaining word-level footprint is inherent: concurrent Pushes serialize
// on the tail word and concurrent Pops on the head word, exactly the pairs
// that do not commute.
type Queue struct {
	s    *stm.STM
	sem  *stm.SemTable
	head stm.Addr
	tail stm.Addr
	size stm.Addr
}

const queueNodeWords = 2

// NewQueue allocates an empty queue.
func NewQueue(s *stm.STM) (*Queue, error) {
	if !s.SemanticCommitSupported() {
		return nil, ErrNoSemanticCommit
	}
	m, err := s.Alloc(3)
	if err != nil {
		return nil, err
	}
	return &Queue{s: s, sem: stm.NewSemTable(2), head: m, tail: m + 1, size: m + 2}, nil
}

// Push appends v inside tx.
func (q *Queue) Push(tx *stm.Tx, v stm.Word) {
	n := tx.MustAllocTxn(queueNodeWords)
	tx.StoreAddr(n, stm.Nil)
	tx.Store(n+1, v)
	t := tx.LoadAddr(q.tail)
	if t == stm.Nil {
		tx.StoreAddr(q.head, n)
	} else {
		tx.StoreAddr(t, n)
	}
	tx.StoreAddr(q.tail, n)
	tx.SemDelta(q.sem, 0, q.size, 1)
}

// Pop removes and returns the oldest element inside tx.
func (q *Queue) Pop(tx *stm.Tx) (v stm.Word, ok bool) {
	h := tx.LoadAddr(q.head)
	if h == stm.Nil {
		// Emptiness is witnessed by the logged head read; a concurrent Push
		// rewriting head is a word-level conflict, as it must be (Pop on an
		// empty queue does not commute with Push).
		return 0, false
	}
	v = tx.Load(h + 1)
	next := tx.LoadAddr(h)
	tx.StoreAddr(q.head, next)
	if next == stm.Nil {
		tx.StoreAddr(q.tail, stm.Nil)
	}
	tx.SemDelta(q.sem, 0, q.size, ^stm.Word(0)) // -1
	tx.RetireOnCommit(h, queueNodeWords)
	return v, true
}

// Peek returns the oldest element without removing it.
func (q *Queue) Peek(tx *stm.Tx) (v stm.Word, ok bool) {
	h := tx.LoadAddr(q.head)
	if h == stm.Nil {
		return 0, false
	}
	return tx.Load(h + 1), true
}

// Len returns the element count inside tx: one weak read of the size word
// under the counter stripe (plus this transaction's own pending deltas),
// conflicting only with committed size changes.
func (q *Queue) Len(tx *stm.Tx) int {
	tx.SemSample(q.sem, 0)
	return int(tx.LoadWeak(q.size) + tx.SemPending(q.size))
}
