//go:build privstm_semlock_race

package tds

import (
	"strings"
	"testing"

	stm "privstm"
	"privstm/internal/sched"
)

// TestSemLockRaceCaught is the positive control: with the stripe version
// bump compiled out (this build tag substitutes core/sem_release_race.go —
// a release restores the pre-acquisition word, so samplers never learn a
// writer committed under them), the explorer must find a committed torn
// read in the very program whose schedule corpus passes clean under the
// production release (TestSemLockExplorationCorpus), and the failing trace
// must reproduce deterministically under Replay.
//
// Run via `make explore-tds`:
//
//	go test -tags privstm_semlock_race -run TestSemLockRaceCaught -v ./internal/tds
func TestSemLockRaceCaught(t *testing.T) {
	res, n := sched.ExploreDFS(sched.Config{}, 4000,
		func() (sched.Config, []func()) { return semLockExploreProgram(stm.Ord) })
	if res == nil {
		t.Fatalf("explorer missed the broken abstract-lock release in %d schedules", n)
	}
	if !strings.Contains(res.Err.Error(), "semantic-lock serializability violation") {
		t.Fatalf("found a different failure: %v", res.Err)
	}
	t.Logf("caught in %d schedules: %v\n  trace: %v", n, res.Err, res.Trace)

	cfg, bodies := semLockExploreProgram(stm.Ord)
	rep := sched.Replay(cfg, res.Trace, bodies...)
	if rep.Err == nil || !strings.Contains(rep.Err.Error(), "semantic-lock serializability violation") {
		t.Fatalf("replay of the failing trace did not reproduce: %v", rep.Err)
	}
}
