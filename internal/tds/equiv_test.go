package tds

import (
	"math/rand"
	"testing"

	stm "privstm"
	"privstm/tlib"
)

// TestEquivalenceWithTlib replays identical randomized operation sequences
// against the semantic containers and tlib's word-level baselines, demanding
// identical observable results op for op — the two implementations differ
// only in conflict detection, never in semantics. Runs on a redo and an
// undo engine.
func TestEquivalenceWithTlib(t *testing.T) {
	for _, alg := range []stm.Algorithm{stm.Ord, stm.PVRStore} {
		t.Run(alg.String(), func(t *testing.T) {
			sA := newSTM(t, alg)
			sB := newSTM(t, alg)
			thA := sA.MustNewThread()
			thB := sB.MustNewThread()
			mA, err := NewMap(sA, 4, 16)
			if err != nil {
				t.Fatal(err)
			}
			qA, err := NewQueue(sA)
			if err != nil {
				t.Fatal(err)
			}
			mB, err := tlib.NewMap(sB, 4, 256)
			if err != nil {
				t.Fatal(err)
			}
			qB, err := tlib.NewQueue(sB, 256)
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(7))
			for txn := 0; txn < 400; txn++ {
				nops := 1 + rng.Intn(6)
				type obs struct {
					v  stm.Word
					ok bool
					n  int
				}
				var got, want []obs
				// Draw the op plan once, then replay it on both replicas.
				type op struct {
					kind int // 0 put, 1 get, 2 del, 3 mlen, 4 push, 5 pop, 6 peek, 7 qlen
					k, v stm.Word
				}
				plan := make([]op, nops)
				for i := range plan {
					plan[i] = op{kind: rng.Intn(8), k: stm.Word(rng.Intn(48)), v: stm.Word(rng.Intn(1 << 16))}
				}
				apply := func(tx *stm.Tx, useTds bool) []obs {
					var out []obs
					for _, o := range plan {
						switch o.kind {
						case 0:
							if useTds {
								mA.Put(tx, o.k, o.v)
							} else {
								if err := mB.Put(tx, o.k, o.v); err != nil {
									t.Fatalf("tlib Put: %v", err)
								}
							}
							out = append(out, obs{})
						case 1:
							var r obs
							if useTds {
								r.v, r.ok = mA.Get(tx, o.k)
							} else {
								r.v, r.ok = mB.Get(tx, o.k)
							}
							out = append(out, r)
						case 2:
							var r obs
							if useTds {
								r.ok = mA.Delete(tx, o.k)
							} else {
								r.ok = mB.Delete(tx, o.k)
							}
							out = append(out, r)
						case 3:
							var r obs
							if useTds {
								r.n = mA.Len(tx)
							} else {
								r.n = mB.Len(tx)
							}
							out = append(out, r)
						case 4:
							if useTds {
								qA.Push(tx, o.v)
							} else {
								if err := qB.Enqueue(tx, o.v); err != nil {
									t.Fatalf("tlib Enqueue: %v", err)
								}
							}
							out = append(out, obs{})
						case 5:
							var r obs
							if useTds {
								r.v, r.ok = qA.Pop(tx)
							} else {
								r.v, r.ok = qB.Dequeue(tx)
							}
							out = append(out, r)
						case 6:
							var r obs
							if useTds {
								r.v, r.ok = qA.Peek(tx)
							} else {
								r.v, r.ok = qB.Peek(tx)
							}
							out = append(out, r)
						case 7:
							var r obs
							if useTds {
								r.n = qA.Len(tx)
							} else {
								r.n = qB.Len(tx)
							}
							out = append(out, r)
						}
					}
					return out
				}
				if err := thA.Atomic(func(tx *stm.Tx) { got = apply(tx, true) }); err != nil {
					t.Fatal(err)
				}
				if err := thB.Atomic(func(tx *stm.Tx) { want = apply(tx, false) }); err != nil {
					t.Fatal(err)
				}
				for i := range plan {
					if got[i] != want[i] {
						t.Fatalf("txn %d op %d (%+v): tds observed %+v, tlib observed %+v",
							txn, i, plan[i], got[i], want[i])
					}
				}
			}
		})
	}
}
