package tds

import (
	"fmt"

	stm "privstm"
	"privstm/internal/sched"
)

// semLockExploreProgram is the schedule-exploration micro-program for the
// abstract-lock commit protocol (CORRECTNESS.md §15). It distills the
// hazard the stripe version bump exists to prevent:
//
//   - "reader" runs one transaction doing two weak Gets of the same key;
//     both reads are certified only by the key stripe — nothing enters the
//     word-level read set — so if a writer commits a new value between them
//     and the stripe release does not advance the version, the reader's
//     sample still validates and a torn pair of reads of one key becomes a
//     committed, externally visible history;
//   - "writer" commits two Puts of that key, each bumping the stripe on
//     release.
//
// On the production release (sem_release.go: version += 2) no schedule may
// let the reader commit v1 != v2: either the second sample or SemPreCommit
// catches the moved stripe. With -tags privstm_semlock_race the bump is
// compiled out (release restores the pre-acquisition word) and the explorer
// must find the violation — the positive control proving the corpus can
// see a real abstract-lock bug (`make explore-tds` runs both halves).
func semLockExploreProgram(alg stm.Algorithm) (sched.Config, []func()) {
	s := stm.MustNew(stm.Config{
		Algorithm: alg, HeapWords: 1 << 12, OrecCount: 1 << 8,
		MaxThreads: 4, MaxAttempts: -1,
	})
	m, err := NewMap(s, 1, 1)
	if err != nil {
		panic(err)
	}
	seed := s.MustNewThread()
	if err := seed.Atomic(func(tx *stm.Tx) { m.Put(tx, 1, 100) }); err != nil {
		panic(err)
	}
	rth := s.MustNewThread()
	wth := s.MustNewThread()
	var torn error
	reader := func() {
		var v1, v2 stm.Word
		err := rth.Atomic(func(tx *stm.Tx) {
			v1, _ = m.Get(tx, 1)
			sched.Point("tds/test/between-gets")
			v2, _ = m.Get(tx, 1)
		})
		if err == nil && v1 != v2 {
			torn = fmt.Errorf(
				"semantic-lock serializability violation: one committed transaction read %d then %d from one key", v1, v2)
		}
	}
	writer := func() {
		for i := stm.Word(0); i < 2; i++ {
			_ = wth.Atomic(func(tx *stm.Tx) { m.Put(tx, 1, 200+i) })
			sched.Point("tds/test/between-puts")
		}
	}
	return sched.Config{AtEnd: func() error { return torn }}, []func(){reader, writer}
}
