package tds

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	stm "privstm"
)

// TestWeakQuiesceDeferredClocks hammers the weak-reader quiescence
// obligation under the deferred clock schemes. Under gv5 and local a
// committed writer may not have advanced the global clock when the
// privatizer's snapshot commits, so Thread.WeakQuiesce cannot lean on
// timestamp ordering alone — it must wait out every transaction whose weak
// traversal could still hold pre-snapshot pointers into the detached
// chain. Readers run weak-read Gets across the whole table while a
// privatizer repeatedly detaches buckets and walks them uninstrumented
// (PrivateList.EachKV); writers keep churning inserts and deletes so the
// chains the privatizer steals are hot.
//
// The assertions are the value signature (every node ever published holds
// v = k*sigMul+sigAdd) and chain-length consistency; the sharper check is
// -race itself, which flags any uninstrumented EachKV load racing an
// instrumented writer if quiescence released the chain too early.
func TestWeakQuiesceDeferredClocks(t *testing.T) {
	const (
		buckets   = 4
		keySpace  = 96
		sigMul    = 7
		sigAdd    = 3
		snapshots = 40
	)
	clocks := []stm.ClockMode{stm.ClockGV5, stm.ClockLocal}
	algs := []stm.Algorithm{stm.Ord, stm.Val}
	for _, clock := range clocks {
		for _, alg := range algs {
			t.Run(fmt.Sprintf("%v_%v", alg, clock), func(t *testing.T) {
				s, err := stm.New(stm.Config{
					Algorithm:  alg,
					Clock:      clock,
					HeapWords:  1 << 16,
					OrecCount:  1 << 10,
					MaxThreads: 16,
				})
				if err != nil {
					t.Fatal(err)
				}
				m, err := NewMap(s, buckets, 64)
				if err != nil {
					t.Fatal(err)
				}

				var stop atomic.Bool
				var badReads atomic.Uint64
				var wg sync.WaitGroup
				for w := 0; w < 2; w++ {
					th := s.MustNewThread()
					wg.Add(1)
					go func(seed int) {
						defer wg.Done()
						for i := 0; !stop.Load(); i++ {
							k := stm.Word((seed*31 + i*13) % keySpace)
							if i%7 == 6 {
								_ = th.Atomic(func(tx *stm.Tx) { m.Delete(tx, k) })
							} else {
								_ = th.Atomic(func(tx *stm.Tx) { m.Put(tx, k, k*sigMul+sigAdd) })
							}
						}
					}(w)
				}
				for r := 0; r < 2; r++ {
					th := s.MustNewThread()
					wg.Add(1)
					go func(seed int) {
						defer wg.Done()
						for i := 0; !stop.Load(); i++ {
							k := stm.Word((seed*17 + i*29) % keySpace)
							var v stm.Word
							var ok bool
							if th.Atomic(func(tx *stm.Tx) { v, ok = m.Get(tx, k) }) == nil &&
								ok && v != k*sigMul+sigAdd {
								badReads.Add(1)
							}
						}
					}(r)
				}

				priv := s.MustNewThread()
				for i := 0; i < snapshots; i++ {
					pl, err := m.PrivateSnapshot(priv, i%buckets)
					if err != nil {
						stop.Store(true)
						wg.Wait()
						t.Fatal(err)
					}
					walked := 0
					pl.EachKV(func(k, v stm.Word) bool {
						if v != k*sigMul+sigAdd {
							t.Errorf("snapshot %d: key %d holds %d, want %d", i, k, v, k*sigMul+sigAdd)
						}
						walked++
						return true
					})
					if walked != pl.Count {
						t.Errorf("snapshot %d: walked %d nodes, Count says %d", i, walked, pl.Count)
					}
					pl.Retire(priv)
				}
				stop.Store(true)
				wg.Wait()

				if n := badReads.Load(); n != 0 {
					t.Errorf("%d committed Gets returned off-signature values", n)
				}
				s.DrainReclaim()
				if rs := s.ReclaimStats(); rs.Limbo != 0 {
					t.Errorf("%d extents still quarantined after drain", rs.Limbo)
				}
			})
		}
	}
}
