package tds

import (
	"sync"
	"sync/atomic"
	"testing"

	stm "privstm"
)

// TestMixedStress is the -race mixed workload: the 40/40/20 shape of the
// benchmark (map updates / queue producer-consumer / map lookups) hammered
// from several threads, with an occasional private drain thrown in, and the
// books balanced at the end:
//
//   - every queue token is conserved: pushed == popped + privately drained +
//     still enqueued;
//   - per-thread map key ranges end with exactly the increments applied;
//   - privately drained nodes are readable uninstrumented and retire clean.
func TestMixedStress(t *testing.T) {
	const (
		workers = 4
		iters   = 300
	)
	for _, alg := range []stm.Algorithm{stm.Ord, stm.PVRStore, stm.PVRHybrid} {
		t.Run(alg.String(), func(t *testing.T) {
			s := newSTM(t, alg)
			m, _ := NewMap(s, 8, 64)
			q, _ := NewQueue(s)
			var pushed, popped, drained atomic.Uint64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				th := s.MustNewThread()
				base := stm.Word(w * 100)
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						switch i % 10 {
						case 0, 1, 2, 3: // 40%: read-modify-write a map key
							k := base + stm.Word(i%25)
							_ = th.Atomic(func(tx *stm.Tx) {
								v, _ := m.Get(tx, k)
								m.Put(tx, k, v+1)
							})
						case 4, 5: // 20%: produce
							_ = th.Atomic(func(tx *stm.Tx) { q.Push(tx, 1) })
							pushed.Add(1)
						case 6, 7: // 20%: consume
							took := false
							_ = th.Atomic(func(tx *stm.Tx) {
								_, took = q.Pop(tx)
							})
							if took {
								popped.Add(1)
							}
						default: // 20%: lookups
							k := base + stm.Word(i%25)
							_ = th.Atomic(func(tx *stm.Tx) {
								m.Get(tx, k)
								m.Len(tx)
								q.Len(tx)
							})
						}
						if w == 0 && i%97 == 96 && alg.Safe() {
							pl, err := q.DrainPrivate(th)
							if err != nil {
								t.Error(err)
								return
							}
							n := 0
							pl.Each(func(node stm.Addr) bool {
								if s.DirectLoad(node+1) != 1 {
									t.Error("drained token corrupted")
								}
								n++
								return true
							})
							if n != pl.Count {
								t.Errorf("drain walked %d, Count %d", n, pl.Count)
							}
							drained.Add(uint64(pl.Count))
							pl.Retire(th)
						}
					}
				}(w)
			}
			wg.Wait()
			th := s.MustNewThread()
			_ = th.Atomic(func(tx *stm.Tx) {
				rem := 0
				for {
					if _, ok := q.Pop(tx); !ok {
						break
					}
					rem++
				}
				if got := popped.Load() + drained.Load() + uint64(rem); got != pushed.Load() {
					t.Errorf("token leak: pushed %d, accounted %d (popped %d, drained %d, remaining %d)",
						pushed.Load(), got, popped.Load(), drained.Load(), rem)
				}
				var sum stm.Word
				for w := 0; w < workers; w++ {
					for i := 0; i < 25; i++ {
						if v, ok := m.Get(tx, stm.Word(w*100+i)); ok {
							sum += v
						}
					}
				}
				// 4 of every 10 iterations increment; iters multiple of 10.
				if want := stm.Word(workers * iters * 4 / 10); sum != want {
					t.Errorf("map increments = %d, want %d", sum, want)
				}
				tx.Cancel(errAudit) // audit only; roll the drain back
			})
		})
	}
}
