package tds

import stm "privstm"

// PrivateList is a privatized chain of nodes handed out by the escape-hatch
// operations (Map.PrivateSnapshot, Queue.DrainPrivate). The privatizing
// transaction has committed and quiesced before a PrivateList is returned,
// so the nodes are unreachable from the shared structure and may be walked
// with plain uninstrumented loads — no transactions, no orecs, no logging.
//
// The extents still live in the STM heap and MUST be returned to it:
// call Retire (or retire each node yourself) when done, or the words leak
// until process exit.
type PrivateList struct {
	s     *stm.STM
	Head  stm.Addr // first node, or stm.Nil
	Count int      // number of nodes in the chain
	words int      // extent size of each node
}

// Each walks the chain, calling fn with each node's base address until fn
// returns false. The next pointer is word 0 of every node; mark bits are
// stripped (a privatized map chain can contain nodes that were marked by a
// Delete racing the snapshot's doomed rivals — the link words are committed
// state, the marks are dead metadata).
func (p *PrivateList) Each(fn func(node stm.Addr) bool) {
	for n := p.Head; n != stm.Nil; {
		next := unmark(p.s.DirectLoad(n))
		if !fn(n) {
			return
		}
		n = next
	}
}

// EachKV walks a privatized map chain, calling fn with each node's key and
// value until fn returns false. Panics if the list did not come from
// Map.PrivateSnapshot (queue nodes carry no key).
func (p *PrivateList) EachKV(fn func(k, v stm.Word) bool) {
	if p.words != mapNodeWords {
		panic("tds: EachKV on a non-map private list")
	}
	p.Each(func(n stm.Addr) bool {
		return fn(p.s.DirectLoad(n+1), p.s.DirectLoad(n+2))
	})
}

// EachValue walks a privatized queue chain, calling fn with each node's
// value until fn returns false. Panics if the list did not come from
// Queue.DrainPrivate.
func (p *PrivateList) EachValue(fn func(v stm.Word) bool) {
	if p.words != queueNodeWords {
		panic("tds: EachValue on a non-queue private list")
	}
	p.Each(func(n stm.Addr) bool {
		return fn(p.s.DirectLoad(n + 1))
	})
}

// Retire walks the chain and hands every node's extent to th's epoch
// reclaimer, emptying the list.
func (p *PrivateList) Retire(th *stm.Thread) {
	for n := p.Head; n != stm.Nil; {
		next := unmark(p.s.DirectLoad(n))
		th.Retire(n, p.words)
		n = next
	}
	p.Head = stm.Nil
	p.Count = 0
}

// PrivateSnapshot detaches bucket b wholesale and returns its chain for
// uninstrumented traversal. The transaction write-acquires b's bucket
// stripe — the abstract lock every operation on the bucket samples — so
// any concurrent Put/Get/Delete in b whose weak traversal overlapped the
// snapshot is doomed at its own commit, even though its logged word set is
// disjoint from the single head word written here. The walk itself uses
// logged reads: the count must be commit-exact, and logged validation kills
// doomed walks promptly (a weak walk inside a doomed transaction could
// chase reused memory).
//
// After the commit, the calling thread quiesces weak readers
// (Thread.WeakQuiesce) before the chain is handed out: invisible weak
// traversals are not covered by the engine's privatization fence, and one
// could still hold pre-snapshot pointers into the chain. See
// CORRECTNESS.md §15.
func (m *Map) PrivateSnapshot(th *stm.Thread, b int) (*PrivateList, error) {
	if !m.s.Algorithm().Safe() {
		return nil, ErrNotPrivatizationSafe
	}
	var head stm.Addr
	var count int
	err := th.Atomic(func(tx *stm.Tx) {
		tx.SemSample(m.sem, m.bucketStripe(b))
		tx.SemIntendWrite(m.sem, m.bucketStripe(b))
		head = tx.LoadAddr(m.head(b))
		count = 0
		for n := head; n != stm.Nil; n = unmark(tx.Load(n)) {
			count++
		}
		tx.StoreAddr(m.head(b), stm.Nil)
		if count > 0 {
			tx.SemDelta(m.sem, 0, m.size, ^stm.Word(uint64(count)-1)) // -count
		}
	})
	if err != nil {
		return nil, err
	}
	th.WeakQuiesce()
	return &PrivateList{s: m.s, Head: head, Count: count, words: mapNodeWords}, nil
}

// DrainPrivate detaches the queue's entire chain and returns it for
// uninstrumented traversal, leaving the queue empty. Head and tail are
// rewritten with logged (privatizing) stores; the logged walk makes the
// count commit-exact and keeps doomed walks finite. The same post-commit
// weak-reader quiescence as PrivateSnapshot applies before the chain is
// handed out.
func (q *Queue) DrainPrivate(th *stm.Thread) (*PrivateList, error) {
	if !q.s.Algorithm().Safe() {
		return nil, ErrNotPrivatizationSafe
	}
	var head stm.Addr
	var count int
	err := th.Atomic(func(tx *stm.Tx) {
		head = tx.LoadAddr(q.head)
		count = 0
		for n := head; n != stm.Nil; n = tx.LoadAddr(n) {
			count++
		}
		tx.StoreAddr(q.head, stm.Nil)
		tx.StoreAddr(q.tail, stm.Nil)
		if count > 0 {
			tx.SemDelta(q.sem, 0, q.size, ^stm.Word(uint64(count)-1)) // -count
		}
	})
	if err != nil {
		return nil, err
	}
	th.WeakQuiesce()
	return &PrivateList{s: q.s, Head: head, Count: count, words: queueNodeWords}, nil
}
