package tds

import stm "privstm"

// Set is a transactional set of words: a Map with a fixed value, inheriting
// its key-level conflict detection (two transactions on different keys of
// one bucket never conflict) and commuting size counter.
type Set struct {
	m *Map
}

// NewSet allocates a set with the given bucket and key-stripe counts.
func NewSet(s *stm.STM, buckets, stripes int) (*Set, error) {
	m, err := NewMap(s, buckets, stripes)
	if err != nil {
		return nil, err
	}
	return &Set{m: m}, nil
}

// Add inserts k inside tx.
func (s *Set) Add(tx *stm.Tx, k stm.Word) { s.m.Put(tx, k, 1) }

// Remove deletes k inside tx, reporting whether it was present.
func (s *Set) Remove(tx *stm.Tx, k stm.Word) bool { return s.m.Delete(tx, k) }

// Contains reports whether k is present inside tx.
func (s *Set) Contains(tx *stm.Tx, k stm.Word) bool {
	_, ok := s.m.Get(tx, k)
	return ok
}

// Len returns the element count inside tx.
func (s *Set) Len(tx *stm.Tx) int { return s.m.Len(tx) }
