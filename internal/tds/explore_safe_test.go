//go:build !privstm_semlock_race

package tds

import (
	"testing"

	stm "privstm"
	"privstm/internal/sched"
)

// TestSemLockExplorationCorpus runs the abstract-lock micro-program's
// schedule corpus on the production stripe release: no interleaving may
// commit a transaction whose weak reads of one key straddle a rival's
// committed update. PCT over a redo and an undo engine, plus a bounded DFS
// enumeration on the ordered engine. This is the corpus half of the
// rediscovery pair — build with -tags privstm_semlock_race for the half
// that must FAIL (TestSemLockRaceCaught; make explore-tds runs both).
func TestSemLockExplorationCorpus(t *testing.T) {
	const runs = 16
	for _, alg := range []stm.Algorithm{stm.Ord, stm.TL2, stm.PVRStore, stm.PVRHybrid} {
		t.Run(alg.String(), func(t *testing.T) {
			res, n := sched.ExplorePCT(sched.Config{Seed: 1, Horizon: 512},
				runs, func() (sched.Config, []func()) { return semLockExploreProgram(alg) })
			if res != nil {
				t.Errorf("schedule violation (seed %d, trace %v): %v", res.Seed, res.Trace, res.Err)
			}
			if n != runs {
				t.Errorf("explored %d schedules, want %d", n, runs)
			}
		})
	}
	t.Run("dfs", func(t *testing.T) {
		res, n := sched.ExploreDFS(sched.Config{}, 400,
			func() (sched.Config, []func()) { return semLockExploreProgram(stm.Ord) })
		if res != nil {
			t.Errorf("schedule violation (trace %v): %v", res.Trace, res.Err)
		}
		if n == 0 {
			t.Error("DFS explored nothing")
		}
		t.Logf("DFS covered %d schedule prefixes clean", n)
	})
}
