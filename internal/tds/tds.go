// Package tds provides transactional data structures with *semantic*
// conflict detection, layered over the word STM in the style of Proust /
// transactional boosting ("A Design Space for Highly-Concurrent
// Transactional Data Structures", PAPERS.md): each operation maps to an
// abstract lock — a stripe in an stm.SemTable keyed by the operation's key
// or predicate — and the commit protocol validates and acquires stripes
// alongside the word-level orecs.
//
// The point is killing false aborts. tlib's word-level containers abort
// structurally adjacent but semantically disjoint operations: a Put on one
// key invalidates a Get of a different key in the same bucket list, and
// every queue operation serializes on the size word. The tds containers
// instead traverse with *unlogged weak reads* (stm.Tx.LoadWeak) certified
// by key and bucket stripes, mutate through a minimal set of logged words
// (the edge being rewritten), and maintain counters as commuting deltas
// (stm.Tx.SemDelta) that skip validation entirely — so two transactions
// touching different keys of one bucket, or a producer and a consumer on
// one queue, never conflict.
//
// The privatization escape hatch — Map.PrivateSnapshot, Queue.DrainPrivate
// — is what the underlying paper's fences make possible and what plain
// boosting cannot offer: a bucket or a whole queue segment is detached with
// a privatizing transactional write and handed out as raw stm.Addr extents
// for zero-instrumentation traversal, then retired through the epoch
// reclaimer. Safety is the Khyzha/Gotsman/Attiya criterion plus one extra
// obligation the weak reads introduce, discharged by Thread.WeakQuiesce
// (CORRECTNESS.md §15).
//
// All containers require an algorithm whose commit runs the abstract-lock
// hooks (stm.STM.SemanticCommitSupported — all eight built-ins do); the
// escape hatch additionally requires a privatization-safe algorithm
// (everything but TL2).
package tds

import (
	"errors"

	stm "privstm"
)

// ErrNoSemanticCommit is returned by the constructors when the configured
// algorithm's commit protocol does not run the abstract-lock hooks.
var ErrNoSemanticCommit = errors.New("tds: algorithm does not support semantic commit hooks")

// ErrNotPrivatizationSafe is returned by the escape-hatch operations under
// the TL2 baseline: handing out privatized extents for uninstrumented
// access is exactly what an unsafe algorithm cannot license.
var ErrNotPrivatizationSafe = errors.New("tds: escape hatch requires a privatization-safe algorithm (not TL2)")

// markBit flags a map node's next word as logically deleted (Harris-style
// lazy list): the deleting transaction writes mark|successor into the
// victim's next word in the same transaction that unlinks it, so a weak
// traversal holding the victim can still step over it to the live suffix.
const markBit stm.Word = 1 << 63

func marked(w stm.Word) bool     { return w&markBit != 0 }
func unmark(w stm.Word) stm.Addr { return stm.Addr(w &^ markBit) }
