package tds

import stm "privstm"

// Map is a transactional hash map from word keys to word values with
// key-level (semantic) conflict detection: fixed buckets of sorted singly
// linked lists, the same organization as tlib.Map, but traversed with
// unlogged weak reads certified by abstract-lock stripes instead of a
// logged read per link.
//
// Stripe layout (one SemTable per map):
//
//	stripe 0                    — commuting counters (the size word), never
//	                              write-acquired
//	stripes 1 .. nbkt           — bucket stripes: sampled by every operation
//	                              on that bucket, write-acquired only by
//	                              PrivateSnapshot (the predicate "this
//	                              bucket's membership, wholesale")
//	stripes nbkt+1 .. nbkt+nstr — key stripes: sampled by every operation on
//	                              a key, write-acquired by Put and Delete
//
// Two operations conflict iff their stripe footprints intersect in a
// read/write or write/write pair — touching different keys of one bucket
// never conflicts, which is the false-abort kill this package exists for.
//
// Node layout: [next|mark, key, value].
type Map struct {
	s       *stm.STM
	sem     *stm.SemTable
	buckets stm.Addr // nbkt head words, then the size word
	nbkt    int
	nstr    int // key-stripe count
	size    stm.Addr
}

const mapNodeWords = 3

// NewMap allocates a map with the given bucket count and key-stripe count
// (both rounded up to ≥1). More key stripes mean fewer same-stripe false
// conflicts between distinct keys; nbkt+nstr+1 stripes are allocated.
func NewMap(s *stm.STM, buckets, stripes int) (*Map, error) {
	if !s.SemanticCommitSupported() {
		return nil, ErrNoSemanticCommit
	}
	if buckets < 1 {
		buckets = 1
	}
	if stripes < 1 {
		stripes = 1
	}
	b, err := s.Alloc(buckets + 1)
	if err != nil {
		return nil, err
	}
	return &Map{
		s:       s,
		sem:     stm.NewSemTable(1 + buckets + stripes),
		buckets: b,
		nbkt:    buckets,
		nstr:    stripes,
		size:    b + stm.Addr(buckets),
	}, nil
}

func hashKey(k stm.Word) uint64 { return uint64(k) * 0x9e3779b97f4a7c15 >> 17 }

func (m *Map) bucketIndex(k stm.Word) int { return int(hashKey(k) % uint64(m.nbkt)) }

func (m *Map) head(b int) stm.Addr { return m.buckets + stm.Addr(b) }

// bucketStripe is the wholesale-membership predicate stripe of bucket b.
func (m *Map) bucketStripe(b int) uint32 { return uint32(1 + b) }

// keyStripe is the per-key abstract lock of k.
func (m *Map) keyStripe(k stm.Word) uint32 {
	return uint32(1 + m.nbkt + int(hashKey(k)>>13%uint64(m.nstr)))
}

// findWeak walks k's bucket with weak reads, returning the address of the
// link word pointing at the first node with key ≥ k, and that node (or
// Nil). Marked nodes are stepped over without advancing the link: their
// next pointers survive marking (mark|succ), so a traversal that caught a
// node mid-deletion still reaches the live suffix — the Harris lazy-list
// move that keeps weak traversals sound (CORRECTNESS.md §15).
func (m *Map) findWeak(tx *stm.Tx, k stm.Word) (link, node stm.Addr) {
	link = m.head(m.bucketIndex(k))
	node = tx.LoadWeakAddr(link)
	for node != stm.Nil {
		raw := tx.LoadWeak(node)
		if marked(raw) {
			node = unmark(raw)
			continue
		}
		if tx.LoadWeak(node+1) >= k {
			break
		}
		link = node // next word is word 0: the node address is the link
		node = stm.Addr(raw)
	}
	return link, node
}

// sampleFor records the stripe footprint of an operation on key k: the
// bucket stripe (invalidated by PrivateSnapshot) and the key stripe.
func (m *Map) sampleFor(tx *stm.Tx, k stm.Word) {
	tx.SemSample(m.sem, m.bucketStripe(m.bucketIndex(k)))
	tx.SemSample(m.sem, m.keyStripe(k))
}

// Get returns the value for k inside tx. The traversal is entirely weak:
// no word-level read is logged, so Get conflicts only with operations on
// k's stripe (Put/Delete of a same-stripe key, or a snapshot of the
// bucket) — never with structural churn elsewhere in the bucket.
func (m *Map) Get(tx *stm.Tx, k stm.Word) (v stm.Word, ok bool) {
	m.sampleFor(tx, k)
	_, node := m.findWeak(tx, k)
	if node == stm.Nil || tx.LoadWeak(node+1) != k {
		return 0, false
	}
	return tx.LoadWeak(node + 2), true
}

// Put inserts or updates k → v inside tx. Only the rewritten link word (and
// the new node) is logged; the size change rides a commuting delta.
func (m *Map) Put(tx *stm.Tx, k, v stm.Word) {
	m.sampleFor(tx, k)
	tx.SemIntendWrite(m.sem, m.keyStripe(k))
	link, node := m.findWeak(tx, k)
	if node != stm.Nil && tx.LoadWeak(node+1) == k {
		// Update in place. Membership of node is certified by the key
		// stripe: a concurrent Delete(k) bumps it and dooms this commit, so
		// the logged value store cannot land on an unlinked node.
		tx.Store(node+2, v)
		return
	}
	// Insert: pin the edge with a logged read — the weakly observed (link,
	// node) pair must still be the committed state, and the logged entry
	// makes every later rewrite of this edge a word-level conflict.
	if tx.LoadAddr(link) != node {
		tx.Retry()
	}
	n := tx.MustAllocTxn(mapNodeWords)
	tx.StoreAddr(n, node)
	tx.Store(n+1, k)
	tx.Store(n+2, v)
	tx.StoreAddr(link, n)
	tx.SemDelta(m.sem, 0, m.size, 1)
}

// Delete removes k inside tx, reporting whether it was present. The victim
// is marked (mark|successor into its next word) and unlinked in the same
// transaction, and its extent is retired through the epoch reclaimer iff
// the transaction commits.
func (m *Map) Delete(tx *stm.Tx, k stm.Word) bool {
	m.sampleFor(tx, k)
	tx.SemIntendWrite(m.sem, m.keyStripe(k))
	link, node := m.findWeak(tx, k)
	if node == stm.Nil || tx.LoadWeak(node+1) != k {
		return false
	}
	if tx.LoadAddr(link) != node {
		tx.Retry() // edge moved since the weak traversal
	}
	raw := tx.Load(node) // logged: the successor we splice to must hold
	if marked(raw) {
		tx.Retry() // lost a race with another Delete(k); stripe will confirm
	}
	tx.Store(node, raw|markBit)
	tx.StoreAddr(link, stm.Addr(raw))
	tx.SemDelta(m.sem, 0, m.size, ^stm.Word(0)) // -1, two's complement
	tx.RetireOnCommit(node, mapNodeWords)
	return true
}

// Len returns the entry count inside tx: one weak read of the size word
// under the counter stripe, plus this transaction's own pending deltas.
// Len conflicts only with committed size *changes*, not with
// updates-in-place or other readers.
func (m *Map) Len(tx *stm.Tx) int {
	tx.SemSample(m.sem, 0)
	return int(tx.LoadWeak(m.size) + tx.SemPending(m.size))
}

// Buckets returns the bucket count.
func (m *Map) Buckets() int { return m.nbkt }
