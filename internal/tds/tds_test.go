package tds

import (
	"testing"
	"testing/quick"

	stm "privstm"
)

func newSTM(t testing.TB, alg stm.Algorithm) *stm.STM {
	t.Helper()
	s, err := stm.New(stm.Config{Algorithm: alg, HeapWords: 1 << 16, OrecCount: 1 << 10, MaxThreads: 16})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var engines = append([]stm.Algorithm{stm.OrdQueue}, stm.Algorithms...)

// TestMapModel checks the map against a Go map under random op sequences,
// one run per engine family (the semantic commit hooks run on all of them).
func TestMapModel(t *testing.T) {
	for _, alg := range engines {
		t.Run(alg.String(), func(t *testing.T) {
			s := newSTM(t, alg)
			th := s.MustNewThread()
			m, err := NewMap(s, 4, 8) // few buckets/stripes: force collisions
			if err != nil {
				t.Fatal(err)
			}
			model := map[stm.Word]stm.Word{}
			prop := func(ops []struct {
				K   uint8
				V   uint16
				Del bool
			}) bool {
				good := true
				_ = th.Atomic(func(tx *stm.Tx) {
					for _, op := range ops {
						k := stm.Word(op.K % 32)
						if op.Del {
							had := m.Delete(tx, k)
							_, want := model[k]
							if had != want {
								good = false
							}
							delete(model, k)
						} else {
							m.Put(tx, k, stm.Word(op.V))
							model[k] = stm.Word(op.V)
						}
					}
					if m.Len(tx) != len(model) {
						good = false
					}
					for k, want := range model {
						if got, ok := m.Get(tx, k); !ok || got != want {
							good = false
						}
					}
					for k := stm.Word(0); k < 32; k++ {
						if _, inModel := model[k]; !inModel {
							if _, ok := m.Get(tx, k); ok {
								good = false
							}
						}
					}
				})
				return good
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestQueueFIFO(t *testing.T) {
	s := newSTM(t, stm.Ord)
	th := s.MustNewThread()
	q, err := NewQueue(s)
	if err != nil {
		t.Fatal(err)
	}
	_ = th.Atomic(func(tx *stm.Tx) {
		if _, ok := q.Pop(tx); ok {
			t.Error("empty queue popped")
		}
		for i := stm.Word(1); i <= 5; i++ {
			q.Push(tx, i)
		}
		if q.Len(tx) != 5 {
			t.Errorf("Len = %d", q.Len(tx))
		}
		if v, ok := q.Peek(tx); !ok || v != 1 {
			t.Errorf("Peek = %d,%v", v, ok)
		}
		for i := stm.Word(1); i <= 5; i++ {
			v, ok := q.Pop(tx)
			if !ok || v != i {
				t.Errorf("Pop = %d,%v want %d", v, ok, i)
			}
		}
		if q.Len(tx) != 0 {
			t.Errorf("Len = %d after drain", q.Len(tx))
		}
	})
	// Size deltas only land at commit: check across transactions too.
	_ = th.Atomic(func(tx *stm.Tx) {
		for i := stm.Word(10); i < 13; i++ {
			q.Push(tx, i)
		}
	})
	_ = th.Atomic(func(tx *stm.Tx) {
		if q.Len(tx) != 3 {
			t.Errorf("committed Len = %d, want 3", q.Len(tx))
		}
		if v, ok := q.Pop(tx); !ok || v != 10 {
			t.Errorf("Pop across txns = %d,%v", v, ok)
		}
	})
}

func TestSet(t *testing.T) {
	s := newSTM(t, stm.PVRStore)
	th := s.MustNewThread()
	set, err := NewSet(s, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	_ = th.Atomic(func(tx *stm.Tx) {
		set.Add(tx, 7)
		set.Add(tx, 7)
		if !set.Contains(tx, 7) || set.Contains(tx, 8) {
			t.Error("Contains wrong")
		}
		if set.Len(tx) != 1 {
			t.Errorf("Len = %d after duplicate Add", set.Len(tx))
		}
		if !set.Remove(tx, 7) || set.Remove(tx, 7) {
			t.Error("Remove semantics wrong")
		}
		if set.Len(tx) != 0 {
			t.Errorf("Len = %d", set.Len(tx))
		}
	})
}

// TestAbortRollsBack aborts a mutating transaction mid-flight and checks
// nothing leaked: no size drift, no phantom entries, and the transactional
// node allocations were recycled rather than lost.
func TestAbortRollsBack(t *testing.T) {
	for _, alg := range []stm.Algorithm{stm.TL2, stm.Ord, stm.PVRBase, stm.PVRHybrid} {
		t.Run(alg.String(), func(t *testing.T) {
			s := newSTM(t, alg)
			th := s.MustNewThread()
			m, _ := NewMap(s, 2, 4)
			q, _ := NewQueue(s)
			_ = th.Atomic(func(tx *stm.Tx) {
				m.Put(tx, 1, 10)
				q.Push(tx, 100)
			})
			boom := errAudit
			err := th.Atomic(func(tx *stm.Tx) {
				m.Put(tx, 2, 20)
				m.Delete(tx, 1)
				q.Push(tx, 200)
				q.Pop(tx)
				tx.Cancel(boom)
			})
			if err == nil {
				t.Fatal("cancel did not propagate")
			}
			_ = th.Atomic(func(tx *stm.Tx) {
				if v, ok := m.Get(tx, 1); !ok || v != 10 {
					t.Errorf("key 1 = %d,%v after abort", v, ok)
				}
				if _, ok := m.Get(tx, 2); ok {
					t.Error("aborted Put visible")
				}
				if m.Len(tx) != 1 {
					t.Errorf("map Len = %d after abort", m.Len(tx))
				}
				if q.Len(tx) != 1 {
					t.Errorf("queue Len = %d after abort", q.Len(tx))
				}
				if v, ok := q.Pop(tx); !ok || v != 100 {
					t.Errorf("queue head = %d,%v after abort", v, ok)
				}
				tx.Cancel(errAudit)
			})
		})
	}
}

// TestSemanticSkips checks the commuting-delta accounting: size updates
// ride SemPostCommit and are counted in stats.SemanticSkips instead of
// entering any validated set.
func TestSemanticSkips(t *testing.T) {
	s := newSTM(t, stm.Ord)
	th := s.MustNewThread()
	q, _ := NewQueue(s)
	for i := 0; i < 5; i++ {
		_ = th.Atomic(func(tx *stm.Tx) { q.Push(tx, stm.Word(i)) })
	}
	if got := s.Stats().SemanticSkips; got < 5 {
		t.Errorf("SemanticSkips = %d, want >= 5", got)
	}
}

func TestPrivateSnapshot(t *testing.T) {
	s := newSTM(t, stm.PVRStore)
	th := s.MustNewThread()
	m, _ := NewMap(s, 2, 8)
	_ = th.Atomic(func(tx *stm.Tx) {
		for i := stm.Word(0); i < 16; i++ {
			m.Put(tx, i, i*10)
		}
	})
	var lenBefore int
	_ = th.Atomic(func(tx *stm.Tx) { lenBefore = m.Len(tx) })
	if lenBefore != 16 {
		t.Fatalf("Len = %d", lenBefore)
	}
	total := 0
	for b := 0; b < m.Buckets(); b++ {
		pl, err := m.PrivateSnapshot(th, b)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		pl.Each(func(node stm.Addr) bool {
			k := s.DirectLoad(node + 1)
			v := s.DirectLoad(node + 2)
			if v != k*10 {
				t.Errorf("private node %d -> %d, want %d", k, v, k*10)
			}
			n++
			return true
		})
		if n != pl.Count {
			t.Errorf("Each visited %d, Count = %d", n, pl.Count)
		}
		total += pl.Count
		pl.Retire(th)
		if pl.Head != stm.Nil || pl.Count != 0 {
			t.Error("Retire did not empty the list")
		}
	}
	if total != 16 {
		t.Errorf("snapshots held %d entries, want 16", total)
	}
	_ = th.Atomic(func(tx *stm.Tx) {
		if m.Len(tx) != 0 {
			t.Errorf("Len = %d after snapshotting every bucket", m.Len(tx))
		}
		if _, ok := m.Get(tx, 3); ok {
			t.Error("privatized key still reachable")
		}
	})
}

func TestDrainPrivate(t *testing.T) {
	s := newSTM(t, stm.Ord)
	th := s.MustNewThread()
	q, _ := NewQueue(s)
	_ = th.Atomic(func(tx *stm.Tx) {
		for i := stm.Word(1); i <= 6; i++ {
			q.Push(tx, i)
		}
	})
	pl, err := q.DrainPrivate(th)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Count != 6 {
		t.Fatalf("drained Count = %d", pl.Count)
	}
	want := stm.Word(1)
	pl.Each(func(node stm.Addr) bool {
		if v := s.DirectLoad(node + 1); v != want {
			t.Errorf("drained %d, want %d", v, want)
		}
		want++
		return true
	})
	pl.Retire(th)
	_ = th.Atomic(func(tx *stm.Tx) {
		if q.Len(tx) != 0 {
			t.Errorf("Len = %d after drain", q.Len(tx))
		}
		if _, ok := q.Pop(tx); ok {
			t.Error("drained queue popped")
		}
		q.Push(tx, 42) // queue stays usable after a drain
	})
	_ = th.Atomic(func(tx *stm.Tx) {
		if v, ok := q.Pop(tx); !ok || v != 42 {
			t.Errorf("post-drain Pop = %d,%v", v, ok)
		}
		tx.Cancel(errAudit)
	})
}

// TestEscapeHatchRefusedOnTL2: handing out privatized extents requires a
// privatization-safe algorithm; the TL2 baseline must be refused.
func TestEscapeHatchRefusedOnTL2(t *testing.T) {
	s := newSTM(t, stm.TL2)
	th := s.MustNewThread()
	m, _ := NewMap(s, 2, 4)
	q, _ := NewQueue(s)
	if _, err := m.PrivateSnapshot(th, 0); err != ErrNotPrivatizationSafe {
		t.Errorf("PrivateSnapshot on TL2: err = %v", err)
	}
	if _, err := q.DrainPrivate(th); err != ErrNotPrivatizationSafe {
		t.Errorf("DrainPrivate on TL2: err = %v", err)
	}
}

var errAudit = errBoom{}

type errBoom struct{}

func (errBoom) Error() string { return "audit" }
