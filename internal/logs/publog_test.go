package logs

import "testing"

func TestPubLogAddContains(t *testing.T) {
	var p PubLog
	os := testOrecs(4)
	if p.Contains(os[0], 5) {
		t.Fatal("empty log claims a publication")
	}
	p.Add(os[0], 5)
	p.Add(os[1], 7)
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	if !p.Contains(os[0], 5) || !p.Contains(os[1], 7) {
		t.Error("Contains missed a published (orec, rts) pair")
	}
	// The self-hint test is exact: a different rts on the same orec is a
	// *stale* hint and must not match.
	if p.Contains(os[0], 6) {
		t.Error("Contains matched a different rts on the same orec")
	}
	if p.Contains(os[2], 5) {
		t.Error("Contains matched an orec never published on")
	}
}

func TestPubLogOverwriteInPlace(t *testing.T) {
	var p PubLog
	os := testOrecs(2)
	p.Add(os[0], 5)
	p.Add(os[0], 9) // re-publication: only the newest hint can be live
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (overwrite in place)", p.Len())
	}
	if p.Contains(os[0], 5) {
		t.Error("stale rts still matches after overwrite")
	}
	if !p.Contains(os[0], 9) {
		t.Error("latest rts does not match")
	}
}

func TestPubLogEpochReset(t *testing.T) {
	var p PubLog
	orecs := testOrecs(200) // force several grows
	for i, o := range orecs {
		p.Add(o, uint64(i+1))
	}
	for txn := 0; txn < 3; txn++ {
		p.Reset()
		if p.Len() != 0 {
			t.Fatalf("txn %d: Reset left %d entries", txn, p.Len())
		}
		if p.Contains(orecs[7], 8) {
			t.Fatalf("txn %d: stale filter word satisfied Contains", txn)
		}
		p.Add(orecs[7], 42)
		if !p.Contains(orecs[7], 42) || p.Len() != 1 {
			t.Fatalf("txn %d: post-reset Add broken (len %d)", txn, p.Len())
		}
	}
}

// TestPubLogAllocFree pins the publication log at zero steady-state
// allocations: MakeVisible's publish path runs on every first read of a
// block, so a per-publication allocation would tax the whole read path.
func TestPubLogAllocFree(t *testing.T) {
	var p PubLog
	orecs := testOrecs(128)
	fill := func() {
		for i, o := range orecs {
			p.Add(o, uint64(i+1))
			if !p.Contains(o, uint64(i+1)) {
				t.Fatal("Contains lost a publication")
			}
		}
	}
	fill() // warm up: grow to final size
	if n := testing.AllocsPerRun(100, func() {
		p.Reset()
		fill()
	}); n != 0 {
		t.Errorf("steady-state PubLog.Add allocates %.1f per transaction", n)
	}
}

func TestKeySetBasics(t *testing.T) {
	var k KeySet
	if k.Has(3) {
		t.Fatal("empty set claims a key")
	}
	k.Add(3)
	k.Add(9)
	k.Add(3) // idempotent
	if k.Len() != 2 {
		t.Fatalf("Len = %d, want 2", k.Len())
	}
	if !k.Has(3) || !k.Has(9) || k.Has(4) {
		t.Error("membership wrong after Adds")
	}
	k.Reset()
	if k.Len() != 0 || k.Has(3) {
		t.Error("Reset left keys findable")
	}
	k.Add(5)
	if !k.Has(5) || k.Has(3) {
		t.Error("post-reset state wrong")
	}
}

func TestKeySetGrowAndEpochReset(t *testing.T) {
	var k KeySet
	for i := uint32(0); i < 200; i++ {
		k.Add(i)
	}
	if k.Len() != 200 {
		t.Fatalf("Len = %d, want 200", k.Len())
	}
	for i := uint32(0); i < 200; i++ {
		if !k.Has(i) {
			t.Fatalf("key %d lost after grows", i)
		}
	}
	for txn := 0; txn < 3; txn++ {
		k.Reset()
		if k.Has(7) {
			t.Fatalf("txn %d: stale filter word satisfied Has", txn)
		}
		k.Add(7)
		if !k.Has(7) || k.Len() != 1 {
			t.Fatalf("txn %d: post-reset Add broken", txn)
		}
	}
}

// TestKeySetAllocFree pins the hint cache at zero steady-state allocations:
// it is consulted on every partially visible read.
func TestKeySetAllocFree(t *testing.T) {
	var k KeySet
	fill := func() {
		for i := uint32(0); i < 128; i++ {
			k.Add(i)
			if !k.Has(i) {
				t.Fatal("Has lost a key")
			}
		}
	}
	fill()
	if n := testing.AllocsPerRun(100, func() {
		k.Reset()
		fill()
	}); n != 0 {
		t.Errorf("steady-state KeySet.Add allocates %.1f per transaction", n)
	}
}
