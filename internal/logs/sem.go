package logs

import (
	"sync/atomic"

	"privstm/internal/heap"
)

// This file implements the per-transaction log of the *semantic* conflict
// layer (internal/tds, CORRECTNESS.md §15): abstract-lock stripes sampled
// (reads), stripes the commit must acquire (writes), and commuting counter
// deltas that skip validation entirely (Proust/boosting-style commutativity).
//
// A stripe is one padded atomic word in a core.SemTable, packed exactly like
// an orec owner word: even = version<<1 (unowned), odd = tid<<1|1 (owned by
// a committing writer). The log stores raw *atomic.Uint64 stripe pointers so
// it stays ignorant of the table layout; exactness of deduplication is by
// pointer comparison, with the caller-supplied 32-bit key (table id mixed
// with stripe index) serving only as the probe key of the epoch-stamped
// filter (filter.go).

// SemRead records one sampled stripe: the packed word observed at sample
// time. Commit-time validation demands the stripe still carries Seen (or is
// owned by this very transaction with Seen as its pre-acquisition value).
type SemRead struct {
	Stripe *atomic.Uint64
	Seen   uint64
}

// SemWrite records one stripe the commit must acquire. Prev is filled at
// acquisition time with the displaced unowned word, needed both to release
// (Prev + bump) and to restore on abort.
type SemWrite struct {
	Stripe *atomic.Uint64
	Prev   uint64
}

// SemDeltaEntry is one commuting counter update: add Delta to the word at
// Addr at commit, after bumping Stripe so concurrent samplers of the
// counter's stripe revalidate. Deltas to the same address accumulate in the
// log, so a transaction that pushes three items records one +3.
type SemDeltaEntry struct {
	Stripe *atomic.Uint64
	Addr   heap.Addr
	Delta  heap.Word
}

// SemLog is the per-transaction semantic log. Like the word-level logs it
// is built for reuse: Reset is O(1) via the filters' epoch bumps, and
// steady-state transactions allocate nothing.
type SemLog struct {
	reads  []SemRead
	rkeys  []uint32
	rf     filter
	writes []SemWrite
	wkeys  []uint32
	wf     filter
	deltas []SemDeltaEntry
	df     filter
}

// Empty reports whether the transaction recorded no semantic activity at
// all — the fast path that keeps the commit hooks free for plain word-level
// transactions.
func (l *SemLog) Empty() bool {
	return len(l.reads) == 0 && len(l.writes) == 0 && len(l.deltas) == 0
}

func (l *SemLog) readKeyAt(i int) uint32  { return l.rkeys[i] }
func (l *SemLog) writeKeyAt(i int) uint32 { return l.wkeys[i] }
func (l *SemLog) deltaKeyAt(i int) uint32 { return semDeltaKey(l.deltas[i].Addr) }

// semDeltaKey condenses a counter address into the filter's key space (same
// scatter as the redo log's address key).
func semDeltaKey(a heap.Addr) uint32 {
	return uint32(uint64(a) * 0x9e3779b97f4a7c15 >> 33)
}

// AddRead records a sample of stripe s (probe key key) that observed the
// packed word seen. A re-sample of a stripe already logged returns whether
// the new observation matches the recorded one: false means the stripe
// moved between two samples of the same transaction, which is a semantic
// conflict the caller must abort on (the first sample anchors the
// transaction's abstract snapshot; there is no stripe-level extension).
func (l *SemLog) AddRead(key uint32, s *atomic.Uint64, seen uint64) bool {
	if l.rf.needGrow(len(l.reads)) {
		l.rf.grow(32, len(l.reads), l.readKeyAt)
	}
	slot := l.rf.start(key)
	for {
		i := l.rf.at(slot)
		if i < 0 {
			l.rf.put(slot, len(l.reads))
			l.reads = append(l.reads, SemRead{Stripe: s, Seen: seen})
			l.rkeys = append(l.rkeys, key)
			return true
		}
		if e := &l.reads[i]; e.Stripe == s {
			return e.Seen == seen
		}
		slot = l.rf.next(slot)
	}
}

// AddWrite records that the commit must acquire stripe s (probe key key).
// Duplicates collapse: one acquisition per distinct stripe.
func (l *SemLog) AddWrite(key uint32, s *atomic.Uint64) {
	if l.wf.needGrow(len(l.writes)) {
		l.wf.grow(32, len(l.writes), l.writeKeyAt)
	}
	slot := l.wf.start(key)
	for {
		i := l.wf.at(slot)
		if i < 0 {
			l.wf.put(slot, len(l.writes))
			l.writes = append(l.writes, SemWrite{Stripe: s})
			l.wkeys = append(l.wkeys, key)
			return
		}
		if l.writes[i].Stripe == s {
			return
		}
		slot = l.wf.next(slot)
	}
}

// AddDelta records a commuting update of d to the counter word at a, covered
// by stripe s. Deltas to the same address accumulate.
func (l *SemLog) AddDelta(s *atomic.Uint64, a heap.Addr, d heap.Word) {
	if l.df.needGrow(len(l.deltas)) {
		l.df.grow(16, len(l.deltas), l.deltaKeyAt)
	}
	slot := l.df.start(semDeltaKey(a))
	for {
		i := l.df.at(slot)
		if i < 0 {
			l.df.put(slot, len(l.deltas))
			l.deltas = append(l.deltas, SemDeltaEntry{Stripe: s, Addr: a, Delta: d})
			return
		}
		if e := &l.deltas[i]; e.Addr == a {
			e.Delta += d
			return
		}
		slot = l.df.next(slot)
	}
}

// PendingDelta returns the delta accumulated for the counter word at a so
// far this transaction — read-your-writes for commuting counters: a reader
// of the counter adds this to the committed word it loaded. Uses the filter,
// so it costs one probe.
func (l *SemLog) PendingDelta(a heap.Addr) heap.Word {
	if len(l.deltas) == 0 {
		return 0
	}
	slot := l.df.start(semDeltaKey(a))
	for {
		i := l.df.at(slot)
		if i < 0 {
			return 0
		}
		if e := &l.deltas[i]; e.Addr == a {
			return e.Delta
		}
		slot = l.df.next(slot)
	}
}

// PrevOf returns the pre-acquisition word recorded for stripe s, for
// validating a sampled stripe the transaction itself now owns. Linear scan:
// write sets of semantic transactions are a handful of stripes.
func (l *SemLog) PrevOf(s *atomic.Uint64) (uint64, bool) {
	for i := range l.writes {
		if l.writes[i].Stripe == s {
			return l.writes[i].Prev, true
		}
	}
	return 0, false
}

// ReadsLen returns the number of distinct sampled stripes.
func (l *SemLog) ReadsLen() int { return len(l.reads) }

// ReadAt returns the i-th sampled stripe.
func (l *SemLog) ReadAt(i int) *SemRead { return &l.reads[i] }

// WritesLen returns the number of distinct stripes to acquire.
func (l *SemLog) WritesLen() int { return len(l.writes) }

// WriteAt returns the i-th write stripe.
func (l *SemLog) WriteAt(i int) *SemWrite { return &l.writes[i] }

// DeltasLen returns the number of distinct counter words with pending
// deltas.
func (l *SemLog) DeltasLen() int { return len(l.deltas) }

// DeltaAt returns the i-th accumulated delta.
func (l *SemLog) DeltaAt(i int) *SemDeltaEntry { return &l.deltas[i] }

// Reset empties the log, retaining capacity; O(1) via the filters' epoch
// bumps.
func (l *SemLog) Reset() {
	l.reads = l.reads[:0]
	l.rkeys = l.rkeys[:0]
	l.rf.reset()
	l.writes = l.writes[:0]
	l.wkeys = l.wkeys[:0]
	l.wf.reset()
	l.deltas = l.deltas[:0]
	l.df.reset()
}
