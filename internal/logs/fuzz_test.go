package logs

import (
	"testing"

	"privstm/internal/heap"
)

// FuzzRedoIndex feeds encoded op streams to the open-addressing redo index
// and cross-checks against a Go map. Runs its seed corpus as part of
// `go test`; `go test -fuzz=FuzzRedoIndex` explores further.
func FuzzRedoIndex(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0, 255, 255})
	f.Add([]byte{9})
	f.Add([]byte{})
	seed := make([]byte, 300)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		var r Redo
		model := map[heap.Addr]heap.Word{}
		for i := 0; i+1 < len(data); i += 2 {
			a := heap.Addr(data[i])
			v := heap.Word(data[i+1])
			if data[i]%7 == 3 {
				// Interleave lookups of arbitrary keys.
				got, ok := r.Get(a)
				want, wok := model[a]
				if ok != wok || (ok && got != want) {
					t.Fatalf("Get(%d) = %d,%v want %d,%v", a, got, ok, want, wok)
				}
				continue
			}
			r.Put(a, v)
			model[a] = v
		}
		if r.Len() != len(model) {
			t.Fatalf("Len = %d, model %d", r.Len(), len(model))
		}
		for a, want := range model {
			if got, ok := r.Get(a); !ok || got != want {
				t.Fatalf("final Get(%d) = %d,%v want %d", a, got, ok, want)
			}
		}
		// Reset must fully clear.
		r.Reset()
		if r.Len() != 0 {
			t.Fatal("Reset left entries")
		}
		for a := range model {
			if _, ok := r.Get(a); ok {
				t.Fatalf("Reset left key %d findable", a)
			}
		}
	})
}
