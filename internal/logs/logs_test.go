package logs

import (
	"testing"
	"testing/quick"

	"privstm/internal/heap"
	"privstm/internal/orec"
)

// testOrecs returns n distinct orec handles backed by one table, so each
// has a unique Index — the key the ReadSet and PubLog filters use.
func testOrecs(n int) []*orec.Orec {
	tab := orec.NewTable(n, 1)
	out := make([]*orec.Orec, n)
	for i := range out {
		out[i] = tab.At(i)
	}
	return out
}

func TestReadSet(t *testing.T) {
	var rs ReadSet
	os := testOrecs(2)
	o1, o2 := os[0], os[1]
	rs.Add(o1, 10, 5)
	rs.Add(o2, 20, 7)
	if rs.Len() != 2 {
		t.Fatalf("Len = %d", rs.Len())
	}
	if e := rs.At(0); e.Orec != o1 || e.Addr != 10 || e.WTS != 5 {
		t.Errorf("entry 0 = %+v", e)
	}
	rs.Reset()
	if rs.Len() != 0 {
		t.Error("Reset did not empty the set")
	}
	rs.Add(o2, 30, 9)
	if e := rs.At(0); e.Orec != o2 || e.Addr != 30 {
		t.Errorf("entry after reuse = %+v", e)
	}
}

func TestReadSetDedup(t *testing.T) {
	var rs ReadSet
	os := testOrecs(2)
	o1, o2 := os[0], os[1]
	// Re-reading a block already covered at the same wts appends nothing.
	rs.Add(o1, 10, 5)
	rs.Add(o1, 11, 5) // same orec (block), different word
	if rs.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (deduplicated)", rs.Len())
	}
	// A newer observed timestamp refreshes the entry in place.
	rs.Add(o1, 12, 8)
	if rs.Len() != 1 {
		t.Fatalf("Len = %d after refresh, want 1", rs.Len())
	}
	if e := rs.At(0); e.WTS != 8 || e.Addr != 12 {
		t.Errorf("refreshed entry = %+v, want WTS=8 Addr=12", e)
	}
	// An older timestamp (stale retry) must not regress the entry.
	rs.Add(o1, 13, 3)
	if e := rs.At(0); e.WTS != 8 {
		t.Errorf("entry regressed to WTS=%d", e.WTS)
	}
	// A second distinct orec logs its own entry.
	rs.Add(o2, 20, 6)
	if rs.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rs.Len())
	}
}

func TestReadSetGrowRehash(t *testing.T) {
	var rs ReadSet
	orecs := testOrecs(300)
	for i, o := range orecs {
		rs.Add(o, heap.Addr(i), uint64(i+1))
	}
	if rs.Len() != len(orecs) {
		t.Fatalf("Len = %d, want %d", rs.Len(), len(orecs))
	}
	// Every key still deduplicates after multiple grows.
	for i, o := range orecs {
		rs.Add(o, heap.Addr(i), uint64(i+1))
	}
	if rs.Len() != len(orecs) {
		t.Fatalf("Len = %d after re-adds, want %d", rs.Len(), len(orecs))
	}
	for i, o := range orecs {
		if e := rs.At(i); e.Orec != o || e.WTS != uint64(i+1) {
			t.Fatalf("entry %d corrupted after rehash: %+v", i, e)
		}
	}
}

// TestReadSetEpochReset: Reset invalidates the filter by epoch bump rather
// than a memset, so stale filter words from earlier transactions must read
// as empty — re-adding the same keys after a Reset must re-log them, and
// keys never re-added must be gone.
func TestReadSetEpochReset(t *testing.T) {
	var rs ReadSet
	orecs := testOrecs(200) // force several grows so idx ≫ a small txn
	for i, o := range orecs {
		rs.Add(o, heap.Addr(i), uint64(i+1))
	}
	for txn := 0; txn < 3; txn++ {
		rs.Reset()
		if rs.Len() != 0 {
			t.Fatalf("txn %d: Reset left %d entries", txn, rs.Len())
		}
		// A small transaction re-using a key from the big one: the stale
		// filter word must not satisfy the dedup probe.
		rs.Add(orecs[7], 7, 99)
		if rs.Len() != 1 {
			t.Fatalf("txn %d: Len = %d, want 1", txn, rs.Len())
		}
		if e := rs.At(0); e.Orec != orecs[7] || e.WTS != 99 {
			t.Fatalf("txn %d: entry = %+v", txn, e)
		}
		rs.Add(orecs[7], 8, 99) // and dedup within the epoch still works
		if rs.Len() != 1 {
			t.Fatalf("txn %d: dedup broken, Len = %d", txn, rs.Len())
		}
	}
}

// TestReadSetEpochWrap drives the epoch to its wrap point and checks the
// one-per-2^32-resets physical clear keeps the filter sound.
func TestReadSetEpochWrap(t *testing.T) {
	var rs ReadSet
	os := testOrecs(2)
	rs.Add(os[0], 10, 5)
	rs.f.epoch = ^uint32(0) // as if 2^32-1 resets had happened
	rs.Reset()
	if rs.f.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", rs.f.epoch)
	}
	for _, v := range rs.f.words {
		if v != 0 {
			t.Fatal("wrap did not physically clear the filter")
		}
	}
	rs.Add(os[1], 20, 7)
	if rs.Len() != 1 || rs.At(0).Orec != os[1] {
		t.Fatalf("post-wrap state: Len=%d entry=%+v", rs.Len(), rs.At(0))
	}
}

// TestRedoEpochReset is the Redo-side twin of TestReadSetEpochReset.
func TestRedoEpochReset(t *testing.T) {
	var r Redo
	for i := 0; i < 200; i++ {
		r.Put(heap.Addr(i), heap.Word(i))
	}
	for txn := 0; txn < 3; txn++ {
		r.Reset()
		if r.Len() != 0 {
			t.Fatalf("txn %d: Reset left %d entries", txn, r.Len())
		}
		if _, ok := r.Get(7); ok {
			t.Fatalf("txn %d: stale filter word satisfied Get", txn)
		}
		r.Put(7, 123)
		if v, ok := r.Get(7); !ok || v != 123 {
			t.Fatalf("txn %d: Get(7) = %d,%v", txn, v, ok)
		}
		r.Put(7, 124) // coalescing within the epoch still works
		if r.Len() != 1 {
			t.Fatalf("txn %d: Len = %d, want 1", txn, r.Len())
		}
	}
}

// TestReadSetAddAllocFree pins the steady-state read path at zero heap
// allocations: after one warm-up transaction has sized the backing arrays,
// Reset+refill must not allocate.
func TestReadSetAddAllocFree(t *testing.T) {
	var rs ReadSet
	orecs := testOrecs(128)
	fill := func() {
		for i, o := range orecs {
			rs.Add(o, heap.Addr(i), 1)
		}
	}
	fill() // warm up: grow to final size
	if n := testing.AllocsPerRun(100, func() {
		rs.Reset()
		fill()
	}); n != 0 {
		t.Errorf("steady-state ReadSet.Add allocates %.1f per transaction", n)
	}
}

// TestRedoPutAllocFree is the same guard for the write buffer.
func TestRedoPutAllocFree(t *testing.T) {
	var r Redo
	fill := func() {
		for i := 0; i < 128; i++ {
			r.Put(heap.Addr(i), heap.Word(i))
		}
	}
	fill()
	if n := testing.AllocsPerRun(100, func() {
		r.Reset()
		fill()
	}); n != 0 {
		t.Errorf("steady-state Redo.Put allocates %.1f per transaction", n)
	}
}

func TestUndoRollbackReverseOrder(t *testing.T) {
	h := heap.New(64)
	a := h.MustAlloc(1)
	var u Undo
	h.AtomicStore(a, 1)
	u.Add(a, 1) // pre-image of first write
	h.AtomicStore(a, 2)
	u.Add(a, 2) // pre-image of second write
	h.AtomicStore(a, 3)
	u.Rollback(h)
	if got := h.AtomicLoad(a); got != 1 {
		t.Errorf("rollback restored %d, want the oldest pre-image 1", got)
	}
}

func TestUndoRollbackMultipleAddrs(t *testing.T) {
	h := heap.New(64)
	base := h.MustAlloc(8)
	var u Undo
	for i := heap.Addr(0); i < 8; i++ {
		h.AtomicStore(base+i, heap.Word(i))
	}
	for i := heap.Addr(0); i < 8; i++ {
		u.Add(base+i, h.AtomicLoad(base+i))
		h.AtomicStore(base+i, 99)
	}
	u.Rollback(h)
	for i := heap.Addr(0); i < 8; i++ {
		if got := h.AtomicLoad(base + i); got != heap.Word(i) {
			t.Errorf("word %d = %d after rollback", i, got)
		}
	}
	u.Reset()
	if u.Len() != 0 {
		t.Error("Reset did not empty the log")
	}
}

func TestRedoReadYourWrites(t *testing.T) {
	var r Redo
	if _, ok := r.Get(5); ok {
		t.Fatal("empty redo log claims a value")
	}
	r.Put(5, 100)
	r.Put(6, 200)
	r.Put(5, 101) // overwrite coalesces
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (coalesced)", r.Len())
	}
	if v, ok := r.Get(5); !ok || v != 101 {
		t.Errorf("Get(5) = %d,%v", v, ok)
	}
	if v, ok := r.Get(6); !ok || v != 200 {
		t.Errorf("Get(6) = %d,%v", v, ok)
	}
}

func TestRedoWriteBack(t *testing.T) {
	h := heap.New(64)
	base := h.MustAlloc(4)
	var r Redo
	r.Put(base, 1)
	r.Put(base+1, 2)
	r.Put(base, 3)
	r.WriteBack(h)
	if h.AtomicLoad(base) != 3 || h.AtomicLoad(base+1) != 2 {
		t.Errorf("write-back produced (%d,%d)", h.AtomicLoad(base), h.AtomicLoad(base+1))
	}
	r.Reset()
	if r.Len() != 0 {
		t.Error("Reset did not clear entries")
	}
	if _, ok := r.Get(base); ok {
		t.Error("Reset did not clear index")
	}
}

func TestRedoModel(t *testing.T) {
	// Property: Redo behaves as a map with last-write-wins.
	prop := func(ops []struct {
		A uint8
		V uint16
	}) bool {
		var r Redo
		model := map[heap.Addr]heap.Word{}
		for _, op := range ops {
			a, v := heap.Addr(op.A%32), heap.Word(op.V)
			r.Put(a, v)
			model[a] = v
		}
		if r.Len() != len(model) {
			return false
		}
		for a, v := range model {
			got, ok := r.Get(a)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAcquiredReleaseAndRestore(t *testing.T) {
	os := testOrecs(2)
	o1, o2 := os[0], os[1]
	o1.Owner().Store(orec.PackOwned(3))
	o2.Owner().Store(orec.PackOwned(3))
	var ac Acquired
	ac.Add(o1, 10)
	ac.Add(o2, 20)
	if ac.Len() != 2 {
		t.Fatalf("Len = %d", ac.Len())
	}
	ac.RestoreAll()
	if orec.WTS(o1.Owner().Load()) != 10 || orec.WTS(o2.Owner().Load()) != 20 {
		t.Error("RestoreAll did not restore previous timestamps")
	}
	o1.Owner().Store(orec.PackOwned(3))
	o2.Owner().Store(orec.PackOwned(3))
	ac.ReleaseAll(77)
	if orec.WTS(o1.Owner().Load()) != 77 || orec.WTS(o2.Owner().Load()) != 77 {
		t.Error("ReleaseAll did not publish the commit timestamp")
	}
	if orec.IsOwned(o1.Owner().Load()) {
		t.Error("orec still owned after release")
	}
}
