package logs

import "privstm/internal/orec"

// PubEntry records one visibility hint published by the current
// transaction: the orec and the read timestamp written into its vis word.
type PubEntry struct {
	Orec *orec.Orec
	RTS  uint64
}

// PubLog is the per-transaction visibility publication log: the writer-side
// self-test (core.Thread.publishedHere) may treat a hint as "my own read,
// no fence needed" only if the hint's exact (orec, rts) pair appears here.
//
// It replaces a lazily allocated Go map: entries and the epoch-stamped
// filter (filter.go) are retained across transactions, so steady-state
// publication and lookup are alloc-free and Reset is O(1). Keyed by the
// orec's table index; re-publishing on the same orec overwrites the RTS in
// place (only the latest hint can still be in the vis word).
type PubLog struct {
	entries []PubEntry
	f       filter
}

func (p *PubLog) keyAt(i int) uint32 { return p.entries[i].Orec.Index() }

// Add records that this transaction published a hint with read timestamp
// rts on o.
func (p *PubLog) Add(o *orec.Orec, rts uint64) {
	if p.f.needGrow(len(p.entries)) {
		p.f.grow(32, len(p.entries), p.keyAt)
	}
	s := p.f.start(o.Index())
	for {
		i := p.f.at(s)
		if i < 0 {
			p.f.put(s, len(p.entries))
			p.entries = append(p.entries, PubEntry{Orec: o, RTS: rts})
			return
		}
		if e := &p.entries[i]; e.Orec == o {
			e.RTS = rts
			return
		}
		s = p.f.next(s)
	}
}

// Contains reports whether this transaction published exactly (o, rts).
func (p *PubLog) Contains(o *orec.Orec, rts uint64) bool {
	if len(p.entries) == 0 {
		return false
	}
	s := p.f.start(o.Index())
	for {
		i := p.f.at(s)
		if i < 0 {
			return false
		}
		if e := &p.entries[i]; e.Orec == o {
			return e.RTS == rts
		}
		s = p.f.next(s)
	}
}

// Len returns the number of orecs published on this transaction.
func (p *PubLog) Len() int { return len(p.entries) }

// At returns the i-th entry.
func (p *PubLog) At(i int) *PubEntry { return &p.entries[i] }

// Reset empties the log, retaining capacity; O(1) via the filter's epoch
// bump.
func (p *PubLog) Reset() {
	p.entries = p.entries[:0]
	p.f.reset()
}

// KeySet is a small set of 32-bit keys with alloc-free steady-state
// insertion and O(1) epoch reset. core.Thread uses one as the thread-local
// orec hint cache: the table indices of orecs on which the running
// transaction has already established its visibility, so re-reads skip the
// shared vis-word load entirely (CORRECTNESS.md §10).
type KeySet struct {
	keys []uint32
	f    filter
}

func (k *KeySet) keyAt(i int) uint32 { return k.keys[i] }

// Add inserts key (idempotent).
func (k *KeySet) Add(key uint32) {
	if k.f.needGrow(len(k.keys)) {
		k.f.grow(32, len(k.keys), k.keyAt)
	}
	s := k.f.start(key)
	for {
		i := k.f.at(s)
		if i < 0 {
			k.f.put(s, len(k.keys))
			k.keys = append(k.keys, key)
			return
		}
		if k.keys[i] == key {
			return
		}
		s = k.f.next(s)
	}
}

// Has reports whether key is in the set.
func (k *KeySet) Has(key uint32) bool {
	if len(k.keys) == 0 {
		return false
	}
	s := k.f.start(key)
	for {
		i := k.f.at(s)
		if i < 0 {
			return false
		}
		if k.keys[i] == key {
			return true
		}
		s = k.f.next(s)
	}
}

// Len returns the set's size.
func (k *KeySet) Len() int { return len(k.keys) }

// ForEach calls fn for every key in the set, in insertion order. The
// schedule explorer's hint-cache oracle (core.Thread.CheckHintCache) uses
// it to audit every cached index against the shared vis words.
func (k *KeySet) ForEach(fn func(key uint32)) {
	for _, key := range k.keys {
		fn(key)
	}
}

// Reset empties the set, retaining capacity; O(1) via the filter's epoch
// bump.
func (k *KeySet) Reset() {
	k.keys = k.keys[:0]
	k.f.reset()
}
