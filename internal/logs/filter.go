package logs

// filter is the open-addressed, epoch-stamped index shared by the
// per-transaction containers (ReadSet, Redo, PubLog, KeySet). It maps a
// 32-bit key to the index of an entry in the container's backing slice;
// collision resolution is linear probing over a power-of-two table kept
// below 3/4 load.
//
// Each word packs (epoch, entry index + 1); a word whose epoch is not the
// container's current epoch reads as empty. Reset then just bumps the
// epoch — O(1) — instead of memsetting the whole table, so one large
// transaction does not tax every later small transaction on the thread
// with an O(max-historical-capacity) clear per begin. One physical clear
// runs per 2^32 resets, when the epoch wraps (see reset).
type filter struct {
	words []uint64
	mask  uint32
	epoch uint32
}

// needGrow reports whether a table holding n entries must grow before the
// next insertion (no storage yet, or at the 3/4 load bound).
func (f *filter) needGrow(n int) bool {
	return f.words == nil || n*4 >= len(f.words)*3
}

// start returns the first probe slot for key (32-bit Fibonacci scatter).
func (f *filter) start(key uint32) uint32 { return key * 2654435769 & f.mask }

// next advances a probe chain by one slot.
func (f *filter) next(s uint32) uint32 { return (s + 1) & f.mask }

// at returns the entry index stored at slot s, or -1 if the slot is empty
// in the current epoch.
func (f *filter) at(s uint32) int {
	v := f.words[s]
	if uint32(v>>32) != f.epoch || uint32(v) == 0 {
		return -1
	}
	return int(uint32(v)) - 1
}

// put stores entry index i at slot s.
func (f *filter) put(s uint32, i int) {
	f.words[s] = uint64(f.epoch)<<32 | uint64(i+1)
}

// grow allocates a doubled table (initial slots on first use) and
// reinserts entries 0..count-1 using keyAt. Amortized by the container's
// append growth; never on the steady-state path.
func (f *filter) grow(initial, count int, keyAt func(int) uint32) {
	n := initial
	if f.words != nil {
		n = len(f.words) * 2
	}
	f.words = make([]uint64, n)
	f.mask = uint32(n - 1)
	for i := 0; i < count; i++ {
		s := f.start(keyAt(i))
		for f.at(s) >= 0 {
			s = f.next(s)
		}
		f.put(s, i)
	}
}

// reset invalidates every slot in O(1) by bumping the epoch. The table is
// physically cleared only when the 32-bit epoch wraps, so a stale word
// from 2^32 resets ago can never alias a current one.
func (f *filter) reset() {
	if f.epoch++; f.epoch == 0 {
		clear(f.words)
		f.epoch = 1
	}
}
