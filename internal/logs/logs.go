// Package logs implements the per-transaction bookkeeping shared by all
// engines: read sets for validation, redo logs for buffered-update engines
// (§IV), undo logs for the in-place PVR engines (§II-A), and the set of
// acquired orecs.
//
// All containers are designed for reuse: a transaction descriptor owns one
// of each, and Reset keeps the backing arrays so steady-state transactions
// allocate nothing.
package logs

import (
	"privstm/internal/failpoint"
	"privstm/internal/heap"
	"privstm/internal/orec"
)

// ReadEntry records one transactional read: which orec covered it and the
// write timestamp observed at read time. Addr is retained so engines that
// upgrade reads to partial visibility late (pvrWriterOnly, pvrHybrid) can
// revisit the location.
type ReadEntry struct {
	Orec *orec.Orec
	Addr heap.Addr
	WTS  uint64
}

// ReadSet is a log of reads, deduplicated per orec: re-reading a block
// already covered at the same write timestamp appends nothing, which keeps
// validation and the writer-side conflict scan proportional to the number
// of *distinct* blocks read rather than the number of loads.
//
// The index is a shared epoch-stamped filter (filter.go) keyed by the
// orec's table slot (Orec.Index). Keys and orec handles are in bijection
// (one table per runtime), so matching on the entry's orec pointer is
// exact.
type ReadSet struct {
	entries []ReadEntry
	f       filter
}

func (rs *ReadSet) keyAt(i int) uint32 { return rs.entries[i].Orec.Index() }

// Add records a read of address a covered by orec o with write timestamp
// wts. A re-read of a block already logged at the same timestamp appends
// nothing; a re-read observing a *newer* timestamp (the snapshot was
// extended past an intervening commit) refreshes the entry in place, so
// validation keeps checking "unchanged since my latest read".
func (rs *ReadSet) Add(o *orec.Orec, a heap.Addr, wts uint64) {
	if rs.f.needGrow(len(rs.entries)) {
		rs.f.grow(64, len(rs.entries), rs.keyAt)
	}
	s := rs.f.start(o.Index())
	for {
		i := rs.f.at(s)
		if i < 0 {
			rs.f.put(s, len(rs.entries))
			rs.entries = append(rs.entries, ReadEntry{Orec: o, Addr: a, WTS: wts})
			return
		}
		if e := &rs.entries[i]; e.Orec == o {
			if wts > e.WTS {
				e.WTS = wts
				e.Addr = a
			}
			return
		}
		s = rs.f.next(s)
	}
}

// Len returns the number of distinct blocks read.
func (rs *ReadSet) Len() int { return len(rs.entries) }

// At returns the i-th entry.
func (rs *ReadSet) At(i int) *ReadEntry { return &rs.entries[i] }

// Reset empties the set, retaining capacity; O(1) via the filter's epoch
// bump.
func (rs *ReadSet) Reset() {
	rs.entries = rs.entries[:0]
	rs.f.reset()
}

// UndoEntry records a pre-image for in-place writes.
type UndoEntry struct {
	Addr heap.Addr
	Old  heap.Word
}

// Undo is the undo log of an in-place engine. Entries are appended in write
// order and must be rolled back in reverse, so that the oldest pre-image of
// a multiply-written word wins.
type Undo struct {
	entries []UndoEntry
}

// Add logs a pre-image.
func (u *Undo) Add(a heap.Addr, old heap.Word) {
	u.entries = append(u.entries, UndoEntry{Addr: a, Old: old})
}

// Len returns the number of logged pre-images.
func (u *Undo) Len() int { return len(u.entries) }

// Rollback restores all pre-images to h in reverse order using atomic
// stores (concurrent doomed readers may still be loading these words).
func (u *Undo) Rollback(h *heap.Heap) {
	for i := len(u.entries) - 1; i >= 0; i-- {
		failpoint.Eval(failpoint.UndoMidRollback)
		h.AtomicStore(u.entries[i].Addr, u.entries[i].Old)
	}
}

// Reset empties the log, retaining capacity.
func (u *Undo) Reset() { u.entries = u.entries[:0] }

// RedoEntry is one buffered write.
type RedoEntry struct {
	Addr heap.Addr
	Val  heap.Word
}

// Redo is a write buffer with O(1) read-your-writes lookup. Writes to the
// same address overwrite in place, so write-back applies each address once,
// with the latest value. The zero value is an empty log ready to use.
//
// The index is the shared epoch-stamped filter (filter.go) rather than a
// Go map: redo lookup sits on the read hot path of every buffered-update
// engine, and the paper's C systems pay only a few instructions there.
type Redo struct {
	entries []RedoEntry
	f       filter
}

// redoKey condenses an address into the filter's 32-bit key space.
func redoKey(a heap.Addr) uint32 {
	return uint32(uint64(a) * 0x9e3779b97f4a7c15 >> 33)
}

func (r *Redo) keyAt(i int) uint32 { return redoKey(r.entries[i].Addr) }

// Put buffers a write of w to a.
func (r *Redo) Put(a heap.Addr, w heap.Word) {
	if r.f.needGrow(len(r.entries)) {
		r.f.grow(32, len(r.entries), r.keyAt)
	}
	s := r.f.start(redoKey(a))
	for {
		i := r.f.at(s)
		if i < 0 {
			r.f.put(s, len(r.entries))
			r.entries = append(r.entries, RedoEntry{Addr: a, Val: w})
			return
		}
		if e := &r.entries[i]; e.Addr == a {
			e.Val = w
			return
		}
		s = r.f.next(s)
	}
}

// Get returns the buffered value for a, if any.
func (r *Redo) Get(a heap.Addr) (heap.Word, bool) {
	if len(r.entries) == 0 {
		return 0, false
	}
	s := r.f.start(redoKey(a))
	for {
		i := r.f.at(s)
		if i < 0 {
			return 0, false
		}
		if e := &r.entries[i]; e.Addr == a {
			return e.Val, true
		}
		s = r.f.next(s)
	}
}

// Len returns the number of distinct buffered addresses.
func (r *Redo) Len() int { return len(r.entries) }

// At returns the i-th buffered write.
func (r *Redo) At(i int) *RedoEntry { return &r.entries[i] }

// WriteBack flushes every buffered write to h with atomic stores. The
// per-word yield point exposes the partially-written window a privatizer
// must never observe (the fence proofs cover it; the schedule explorer
// attacks it).
func (r *Redo) WriteBack(h *heap.Heap) {
	for i := range r.entries {
		failpoint.Eval(failpoint.RedoWriteBackWord)
		h.AtomicStore(r.entries[i].Addr, r.entries[i].Val)
	}
}

// Reset empties the log, retaining capacity; O(1) via the filter's epoch
// bump.
func (r *Redo) Reset() {
	r.entries = r.entries[:0]
	r.f.reset()
}

// AcquiredEntry records ownership of one orec and the owner-word value it
// held before acquisition, needed to restore it on abort.
type AcquiredEntry struct {
	Orec    *orec.Orec
	PrevWTS uint64 // write timestamp the orec carried before we owned it
}

// Acquired is the set of orecs a writer owns.
type Acquired struct {
	entries []AcquiredEntry
}

// Add records ownership of o, which previously carried prevWTS.
func (ac *Acquired) Add(o *orec.Orec, prevWTS uint64) {
	ac.entries = append(ac.entries, AcquiredEntry{Orec: o, PrevWTS: prevWTS})
}

// Len returns the number of owned orecs.
func (ac *Acquired) Len() int { return len(ac.entries) }

// At returns the i-th entry.
func (ac *Acquired) At(i int) *AcquiredEntry { return &ac.entries[i] }

// ReleaseAll stores wts into every owned orec, making the updates visible
// at that timestamp (commit path). Per-orec yield point: a schedule may
// interleave other workers between individual releases.
func (ac *Acquired) ReleaseAll(wts uint64) {
	packed := orec.PackUnowned(wts)
	for i := range ac.entries {
		failpoint.Eval(failpoint.OrecRelease)
		ac.entries[i].Orec.Owner().Store(packed)
	}
}

// RestoreAll puts each orec's previous write timestamp back (abort path).
func (ac *Acquired) RestoreAll() {
	for i := range ac.entries {
		failpoint.Eval(failpoint.OrecRelease)
		e := &ac.entries[i]
		e.Orec.Owner().Store(orec.PackUnowned(e.PrevWTS))
	}
}

// Reset empties the set, retaining capacity.
func (ac *Acquired) Reset() { ac.entries = ac.entries[:0] }
