// Package logs implements the per-transaction bookkeeping shared by all
// engines: read sets for validation, redo logs for buffered-update engines
// (§IV), undo logs for the in-place PVR engines (§II-A), and the set of
// acquired orecs.
//
// All containers are designed for reuse: a transaction descriptor owns one
// of each, and Reset keeps the backing arrays so steady-state transactions
// allocate nothing.
package logs

import (
	"privstm/internal/failpoint"
	"privstm/internal/heap"
	"privstm/internal/orec"
)

// ReadEntry records one transactional read: which orec covered it and the
// write timestamp observed at read time. Addr is retained so engines that
// upgrade reads to partial visibility late (pvrWriterOnly, pvrHybrid) can
// revisit the location.
type ReadEntry struct {
	Orec *orec.Orec
	Addr heap.Addr
	WTS  uint64
	// key is the orec-table index of Orec, the filter's hash key (a block
	// of addresses shares one orec, so one key).
	key uint32
}

// ReadSet is a log of reads, deduplicated per orec: re-reading a block
// already covered at the same write timestamp appends nothing, which keeps
// validation and the writer-side conflict scan proportional to the number
// of *distinct* blocks read rather than the number of loads.
//
// The filter is the same open-addressing design as Redo's index, keyed by
// the orec-table slot the caller passes to Add. Keys and orec pointers are
// in bijection (one table per runtime), so matching on the entry's orec
// pointer is exact.
//
// Each filter word packs (epoch, entry index + 1); a word whose epoch is
// not the container's current epoch reads as empty. Reset then just bumps
// the epoch — O(1) — instead of memsetting the whole filter, so one large
// transaction does not tax every later small transaction on the thread
// with an O(max-historical-capacity) clear per begin. One real clear runs
// per 2^32 resets, when the epoch wraps (see Reset).
type ReadSet struct {
	entries []ReadEntry
	idx     []uint64
	mask    uint32
	epoch   uint32
}

func (rs *ReadSet) slot(key uint32) uint32 {
	return key * 2654435769 & rs.mask // 32-bit Fibonacci scatter
}

// live reports whether filter word v holds a current-epoch entry index.
func (rs *ReadSet) live(v uint64) bool {
	return uint32(v>>32) == rs.epoch && uint32(v) != 0
}

func (rs *ReadSet) grow() {
	n := 64
	if rs.idx != nil {
		n = len(rs.idx) * 2
	}
	rs.idx = make([]uint64, n)
	rs.mask = uint32(n - 1)
	tag := uint64(rs.epoch) << 32
	for i := range rs.entries {
		s := rs.slot(rs.entries[i].key)
		for rs.live(rs.idx[s]) {
			s = (s + 1) & rs.mask
		}
		rs.idx[s] = tag | uint64(i+1)
	}
}

// Add records a read of address a covered by orec o (at table slot key)
// with write timestamp wts. A re-read of a block already logged at the
// same timestamp is dropped; a re-read observing a *newer* timestamp (the
// snapshot was extended past an intervening commit) refreshes the entry in
// place, so validation keeps checking "unchanged since my latest read".
func (rs *ReadSet) Add(o *orec.Orec, a heap.Addr, wts uint64, key uint32) {
	if rs.idx == nil || len(rs.entries)*4 >= len(rs.idx)*3 {
		rs.grow()
	}
	s := rs.slot(key)
	for {
		v := rs.idx[s]
		if !rs.live(v) {
			rs.idx[s] = uint64(rs.epoch)<<32 | uint64(len(rs.entries)+1)
			rs.entries = append(rs.entries, ReadEntry{Orec: o, Addr: a, WTS: wts, key: key})
			return
		}
		if e := &rs.entries[uint32(v)-1]; e.Orec == o {
			if wts > e.WTS {
				e.WTS = wts
				e.Addr = a
			}
			return
		}
		s = (s + 1) & rs.mask
	}
}

// Len returns the number of distinct blocks read.
func (rs *ReadSet) Len() int { return len(rs.entries) }

// At returns the i-th entry.
func (rs *ReadSet) At(i int) *ReadEntry { return &rs.entries[i] }

// Reset empties the set, retaining capacity. It is O(1): bumping the epoch
// invalidates every filter word at once. The filter is physically cleared
// only when the 32-bit epoch wraps, so a stale word from 2^32 resets ago
// can never alias a current one.
func (rs *ReadSet) Reset() {
	rs.entries = rs.entries[:0]
	if rs.epoch++; rs.epoch == 0 {
		clear(rs.idx)
		rs.epoch = 1
	}
}

// UndoEntry records a pre-image for in-place writes.
type UndoEntry struct {
	Addr heap.Addr
	Old  heap.Word
}

// Undo is the undo log of an in-place engine. Entries are appended in write
// order and must be rolled back in reverse, so that the oldest pre-image of
// a multiply-written word wins.
type Undo struct {
	entries []UndoEntry
}

// Add logs a pre-image.
func (u *Undo) Add(a heap.Addr, old heap.Word) {
	u.entries = append(u.entries, UndoEntry{Addr: a, Old: old})
}

// Len returns the number of logged pre-images.
func (u *Undo) Len() int { return len(u.entries) }

// Rollback restores all pre-images to h in reverse order using atomic
// stores (concurrent doomed readers may still be loading these words).
func (u *Undo) Rollback(h *heap.Heap) {
	for i := len(u.entries) - 1; i >= 0; i-- {
		failpoint.Eval(failpoint.UndoMidRollback)
		h.AtomicStore(u.entries[i].Addr, u.entries[i].Old)
	}
}

// Reset empties the log, retaining capacity.
func (u *Undo) Reset() { u.entries = u.entries[:0] }

// RedoEntry is one buffered write.
type RedoEntry struct {
	Addr heap.Addr
	Val  heap.Word
}

// Redo is a write buffer with O(1) read-your-writes lookup. Writes to the
// same address overwrite in place, so write-back applies each address once,
// with the latest value. The zero value is an empty log ready to use.
//
// The index is a small open-addressing hash table rather than a Go map:
// redo lookup sits on the read hot path of every buffered-update engine,
// and the paper's C systems pay only a few instructions there. Filter
// words are epoch-stamped exactly like ReadSet's, so Reset is O(1).
type Redo struct {
	entries []RedoEntry
	idx     []uint64
	mask    uint32
	epoch   uint32
}

func (r *Redo) slot(a heap.Addr) uint32 {
	return uint32(uint64(a)*0x9e3779b97f4a7c15>>33) & r.mask
}

// live reports whether filter word v holds a current-epoch entry index.
func (r *Redo) live(v uint64) bool {
	return uint32(v>>32) == r.epoch && uint32(v) != 0
}

func (r *Redo) grow() {
	n := 32
	if r.idx != nil {
		n = len(r.idx) * 2
	}
	r.idx = make([]uint64, n)
	r.mask = uint32(n - 1)
	tag := uint64(r.epoch) << 32
	for i := range r.entries {
		s := r.slot(r.entries[i].Addr)
		for r.live(r.idx[s]) {
			s = (s + 1) & r.mask
		}
		r.idx[s] = tag | uint64(i+1)
	}
}

// Put buffers a write of w to a.
func (r *Redo) Put(a heap.Addr, w heap.Word) {
	if r.idx == nil || len(r.entries)*4 >= len(r.idx)*3 {
		r.grow()
	}
	s := r.slot(a)
	for {
		v := r.idx[s]
		if !r.live(v) {
			r.idx[s] = uint64(r.epoch)<<32 | uint64(len(r.entries)+1)
			r.entries = append(r.entries, RedoEntry{Addr: a, Val: w})
			return
		}
		if e := &r.entries[uint32(v)-1]; e.Addr == a {
			e.Val = w
			return
		}
		s = (s + 1) & r.mask
	}
}

// Get returns the buffered value for a, if any.
func (r *Redo) Get(a heap.Addr) (heap.Word, bool) {
	if len(r.entries) == 0 {
		return 0, false
	}
	s := r.slot(a)
	for {
		v := r.idx[s]
		if !r.live(v) {
			return 0, false
		}
		if e := &r.entries[uint32(v)-1]; e.Addr == a {
			return e.Val, true
		}
		s = (s + 1) & r.mask
	}
}

// Len returns the number of distinct buffered addresses.
func (r *Redo) Len() int { return len(r.entries) }

// At returns the i-th buffered write.
func (r *Redo) At(i int) *RedoEntry { return &r.entries[i] }

// WriteBack flushes every buffered write to h with atomic stores.
func (r *Redo) WriteBack(h *heap.Heap) {
	for i := range r.entries {
		h.AtomicStore(r.entries[i].Addr, r.entries[i].Val)
	}
}

// Reset empties the log, retaining capacity. O(1) epoch bump; the filter
// is physically cleared only when the 32-bit epoch wraps (see
// ReadSet.Reset).
func (r *Redo) Reset() {
	r.entries = r.entries[:0]
	if r.epoch++; r.epoch == 0 {
		clear(r.idx)
		r.epoch = 1
	}
}

// AcquiredEntry records ownership of one orec and the owner-word value it
// held before acquisition, needed to restore it on abort.
type AcquiredEntry struct {
	Orec    *orec.Orec
	PrevWTS uint64 // write timestamp the orec carried before we owned it
}

// Acquired is the set of orecs a writer owns.
type Acquired struct {
	entries []AcquiredEntry
}

// Add records ownership of o, which previously carried prevWTS.
func (ac *Acquired) Add(o *orec.Orec, prevWTS uint64) {
	ac.entries = append(ac.entries, AcquiredEntry{Orec: o, PrevWTS: prevWTS})
}

// Len returns the number of owned orecs.
func (ac *Acquired) Len() int { return len(ac.entries) }

// At returns the i-th entry.
func (ac *Acquired) At(i int) *AcquiredEntry { return &ac.entries[i] }

// ReleaseAll stores wts into every owned orec, making the updates visible
// at that timestamp (commit path).
func (ac *Acquired) ReleaseAll(wts uint64) {
	packed := orec.PackUnowned(wts)
	for i := range ac.entries {
		ac.entries[i].Orec.Owner.Store(packed)
	}
}

// RestoreAll puts each orec's previous write timestamp back (abort path).
func (ac *Acquired) RestoreAll() {
	for i := range ac.entries {
		e := &ac.entries[i]
		e.Orec.Owner.Store(orec.PackUnowned(e.PrevWTS))
	}
}

// Reset empties the set, retaining capacity.
func (ac *Acquired) Reset() { ac.entries = ac.entries[:0] }
