package clock

import (
	"sync"
	"testing"
)

func TestZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Errorf("Now() = %d, want 0", got)
	}
}

func TestTickAdvances(t *testing.T) {
	var c Clock
	for i := uint64(1); i <= 100; i++ {
		if got := c.Tick(); got != i {
			t.Fatalf("Tick %d = %d", i, got)
		}
		if got := c.Now(); got != i {
			t.Fatalf("Now after tick %d = %d", i, got)
		}
	}
}

func TestTickUnique(t *testing.T) {
	// Concurrent tickers must receive distinct, gap-free timestamps.
	var c Clock
	const (
		workers = 8
		per     = 10000
	)
	results := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		results[w] = make([]uint64, 0, per)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				results[w] = append(results[w], c.Tick())
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool, workers*per)
	for _, r := range results {
		last := uint64(0)
		for _, ts := range r {
			if seen[ts] {
				t.Fatalf("timestamp %d issued twice", ts)
			}
			seen[ts] = true
			if ts <= last {
				t.Fatalf("timestamps not monotone within one worker: %d after %d", ts, last)
			}
			last = ts
		}
	}
	if got := c.Now(); got != workers*per {
		t.Errorf("final clock = %d, want %d", got, workers*per)
	}
}

func TestAdvanceTo(t *testing.T) {
	var c Clock
	c.AdvanceTo(42)
	if got := c.Now(); got != 42 {
		t.Errorf("Now = %d, want 42", got)
	}
	c.AdvanceTo(10) // never moves backwards
	if got := c.Now(); got != 42 {
		t.Errorf("Now = %d after backwards AdvanceTo, want 42", got)
	}
	c.AdvanceTo(43)
	if got := c.Now(); got != 43 {
		t.Errorf("Now = %d, want 43", got)
	}
}

func TestAdvanceToConcurrent(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.AdvanceTo(uint64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Now(); got != 7999 {
		t.Errorf("final clock = %d, want 7999", got)
	}
}
