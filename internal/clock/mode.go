package clock

import "fmt"

// Mode selects the version-clock scheme (ROADMAP item #2; the paper's
// §II-A assumes the GV1 scheme and never measures its cost).
//
// The three modes trade commit-time contention against validation work:
//
//   - GV1: every committing writer atomically increments the global clock
//     and uses the result as its write timestamp. Timestamps are unique and
//     totally ordered, so "wts == ValidTS+1" proves no intervening commit
//     (the TL2 validation-skip optimization) — at the cost of one RMW on a
//     single cache line per writer commit, the worst scaler at high thread
//     counts.
//
//   - GV5: a committing writer uses Now()+1 as its write timestamp
//     *without* advancing the clock (TL2's GV5 deferred scheme). Commits
//     touch no shared clock state at all; readers that observe a write
//     timestamp above the global clock raise it with AdvanceTo and
//     revalidate (snapshot extension), and aborting transactions bump the
//     clock so their retry begins past the commits that doomed them.
//     Timestamps are no longer unique, so the validation-skip optimization
//     is disabled (see CORRECTNESS.md "Clock soundness").
//
//   - Local: each thread carries a Local clock; a committing writer's
//     timestamp is max(global, thread-local, ValidTS)+1 and the local
//     clock is advanced to it. Per-thread timestamp streams are strictly
//     increasing with no shared write on the commit path; staleness
//     propagates exactly as under GV5 (reader-side AdvanceTo + extension).
//
// The undo-log PVR engines are pinned to GV1 (enforced in stm.New): they
// never extend their snapshots, and the §II–III fence proofs assume every
// writer commit advances a monotone global order.
type Mode int

// The clock schemes.
const (
	GV1 Mode = iota
	GV5
	Local
)

// Deferred reports whether writers commit without advancing the global
// clock, i.e. whether duplicate write timestamps are possible and readers
// must propagate observed future timestamps themselves.
func (m Mode) Deferred() bool { return m != GV1 }

// String returns the flag spelling of the mode.
func (m Mode) String() string {
	switch m {
	case GV1:
		return "gv1"
	case GV5:
		return "gv5"
	case Local:
		return "local"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode maps a flag spelling ("gv1", "gv5", "local") back to its Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "gv1", "":
		return GV1, nil
	case "gv5":
		return GV5, nil
	case "local":
		return Local, nil
	default:
		return 0, fmt.Errorf("clock: unknown mode %q (want gv1, gv5, or local)", s)
	}
}

// Modes lists every clock scheme in flag order.
var Modes = []Mode{GV1, GV5, Local}
