package clock

import "sync/atomic"

// ThreadClock is the per-thread clock word of Mode Local: the high-water
// mark of the owning thread's own write timestamps. Exactly one thread
// advances it (its owner, at commit time), so there is no contention by
// construction; the word is still atomic so that diagnostic readers
// (stats dumps, oracles) are race-free and so that every access goes
// through an accessor the stmlint accessordiscipline rule can see.
//
// The zero value is a clock at time 0, ready to use.
type ThreadClock struct {
	now atomic.Uint64
	// The descriptor embedding a ThreadClock pads around it; no padding
	// here so the word can share the descriptor's existing layout.
}

// Now returns the owner's current local time.
func (l *ThreadClock) Now() uint64 { return l.now.Load() }

// AdvanceTo raises the local clock to at least t. Owner-only: a plain
// load/store pair suffices because no other thread ever advances this
// word.
func (l *ThreadClock) AdvanceTo(t uint64) {
	if l.now.Load() < t {
		l.now.Store(t)
	}
}
