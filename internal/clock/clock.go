// Package clock implements the globally synchronized version clock that
// every STM engine in this repository relies on for consistency checks
// (paper §II-A).
//
// The paper uses a 32-bit clock and ignores overflow; we use 64 bits so that
// wrap-around can never occur in practice, which keeps correctness arguments
// free of modular-arithmetic caveats.
package clock

import "sync/atomic"

// Clock is a monotonically increasing global timestamp source. The zero
// value is a clock at time 0, ready to use.
//
// All methods are safe for concurrent use.
type Clock struct {
	// now is padded on both sides so the hot counter never shares a cache
	// line with neighbouring data.
	_   [7]uint64
	now atomic.Uint64
	_   [7]uint64
}

// Now returns the current global time.
func (c *Clock) Now() uint64 { return c.now.Load() }

// Tick atomically advances the clock by one step and returns the *new*
// time. A committing writer uses the returned value as its write timestamp
// (wts): no other transaction can share it.
func (c *Clock) Tick() uint64 { return c.now.Add(1) }

// AdvanceTo raises the clock to at least t. It is used by engines that
// derive timestamps externally (e.g. during recovery in tests). The clock
// never moves backwards.
func (c *Clock) AdvanceTo(t uint64) {
	for {
		cur := c.now.Load()
		if cur >= t || c.now.CompareAndSwap(cur, t) {
			return
		}
	}
}
