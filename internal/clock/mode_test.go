package clock

import "testing"

func TestModeStringsAndParse(t *testing.T) {
	for _, m := range Modes {
		got, err := ParseMode(m.String())
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("ParseMode(%q) = %v, want %v", m.String(), got, m)
		}
	}
	if m, err := ParseMode(""); err != nil || m != GV1 {
		t.Fatalf("ParseMode(\"\") = %v, %v; want GV1", m, err)
	}
	if _, err := ParseMode("gv7"); err == nil {
		t.Fatal("ParseMode(\"gv7\") accepted an unknown mode")
	}
}

func TestModeDeferred(t *testing.T) {
	if GV1.Deferred() {
		t.Error("GV1 must not be deferred")
	}
	if !GV5.Deferred() || !Local.Deferred() {
		t.Error("GV5 and Local must be deferred")
	}
}

func TestThreadClock(t *testing.T) {
	var l ThreadClock
	if l.Now() != 0 {
		t.Fatalf("zero ThreadClock Now = %d", l.Now())
	}
	l.AdvanceTo(7)
	if l.Now() != 7 {
		t.Fatalf("Now = %d after AdvanceTo(7)", l.Now())
	}
	l.AdvanceTo(3) // never backwards
	if l.Now() != 7 {
		t.Fatalf("Now = %d after backwards AdvanceTo", l.Now())
	}
	l.AdvanceTo(8)
	if l.Now() != 8 {
		t.Fatalf("Now = %d after AdvanceTo(8)", l.Now())
	}
}
