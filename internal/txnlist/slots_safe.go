//go:build !privstm_watermark_race

// slots_safe.go is the production watermark-cache write path: every cache
// write (EnterAt's lowering, the slow-path recompute publish) serializes on
// the writer lock, per the safety argument in slots.go's package comment.
// Building with -tags privstm_watermark_race substitutes slots_race.go,
// which reverts to the pre-fix optimistic publication so the schedule
// explorer can demonstrate rediscovering the historical race.

package txnlist

import "privstm/internal/failpoint"

// EnterAt registers slot id under a previously assigned timestamp ts, which
// may be older than every cached or live begin. It does not return until
// the cache can no longer report a value above ts, so fences and conflict
// scans that start after EnterAt returns always account for the joiner.
func (s *Slots) EnterAt(id int, ts uint64) {
	s.raiseHi(id)
	s.entering.Add(1) // CheckWatermark skips the store→lowering window
	defer s.entering.Add(-1)
	s.slots[id].v.Store(ts<<1 | 1)
	failpoint.Eval(failpoint.SlotsEnterAtLower)
	s.mu.Lock()
	// Holding the writer lock means no recompute is mid-scan: any scan
	// that publishes after we release will see our slot (stored above).
	// Three cases for the value we find:
	//   - empty: leave it empty — readers scan, and scans see our slot.
	//     (Installing our own timestamp would be unsound: an older
	//     fresh-Enter transaction may be live with the cache never yet
	//     computed, and a valid-looking cache above its begin would lift
	//     the watermark past it.)
	//   - at or below ts: already covers us; leave it.
	//   - above ts: lower it to our slot. Lowering can only delay fences,
	//     never release one early, so it is safe even if the old value was
	//     stale.
	if c := s.cache.Load(); c != 0 {
		if _, cts := unpackCache(c); cts > ts&slotTSMask {
			s.cache.Store(packCache(id, ts))
		}
	}
	s.mu.Unlock()
}

func (s *Slots) oldest(skip int) (uint64, bool) {
	if ts, ok, hit := s.cached(skip); hit {
		return ts, ok
	}
	failpoint.Eval(failpoint.SlotsScanPublish)
	s.mu.Lock()
	// While we waited for the lock another recompute may have re-armed
	// the cache; retry the fast path before paying for a scan.
	if ts, ok, hit := s.cached(skip); hit {
		s.mu.Unlock()
		return ts, ok
	}
	// Slow path, under the writer lock so no EnterAt can register a low
	// timestamp between our scan and our publish.
	minTS, minID, oTS, oAny := s.scanSlots(skip)
	var nc uint64
	if minID >= 0 {
		nc = packCache(minID, minTS)
	}
	s.cache.Store(nc)
	s.mu.Unlock()
	return oTS, oAny
}
