package txnlist

import (
	"privstm/internal/clock"
	"privstm/internal/sched"
)

// watermarkExploreProgram is the schedule-exploration micro-program for the
// EnterAt-vs-recompute watermark race (the PR-2 fix; package comment in
// slots.go, CORRECTNESS.md "Slot tracker watermark"):
//
//   - setup: slot 0 is live with a fresh, high begin timestamp and the
//     cache is empty, so the first oldest query must scan;
//   - worker "recompute" runs OldestBegin — fast-path miss, scan, yield at
//     SlotsScanPublish, publish;
//   - worker "joiner" runs EnterAt with a timestamp *below* slot 0's —
//     slot store, yield at SlotsEnterAtLower, cache lowering.
//
// Under the production locked write path no interleaving of the two yield
// points can publish a watermark above the joiner's begin. Under
// -tags privstm_watermark_race (the reverted, optimistic publication) the
// schedule [recompute scans; joiner stores its slot and finds the cache
// still empty, so its lowering loop returns without writing; recompute
// publishes the pre-join minimum] leaves a *valid* cache — holder slot 0
// still matches — above the live joiner's begin, which CheckWatermark
// reports. The two build-tagged tests next to this file assert both
// directions over the same exhaustively enumerated schedule space.
func watermarkExploreProgram() (sched.Config, []func()) {
	s := NewSlots(4)
	var c clock.Clock
	c.AdvanceTo(10)
	s.Enter(0, &c) // live at begin 10; Enter never seeds the cache
	recompute := func() { s.OldestBegin() }
	joiner := func() { s.EnterAt(1, 3) } // late joiner, older timestamp
	check := func() error { return s.CheckWatermark() }
	return sched.Config{OnStep: check, AtEnd: check}, []func(){recompute, joiner}
}
