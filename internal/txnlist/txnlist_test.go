package txnlist

import (
	"sync"
	"testing"

	"privstm/internal/clock"
)

func TestEmptyList(t *testing.T) {
	l := New()
	if _, ok := l.OldestBegin(); ok {
		t.Error("empty list reported an oldest entry")
	}
	if l.Len() != 0 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestEnterRemoveOrdering(t *testing.T) {
	l := New()
	var c clock.Clock
	nodes := make([]*Node, 5)
	for i := range nodes {
		nodes[i] = &Node{}
		c.Tick()
		ts := l.Enter(nodes[i], &c)
		if ts != uint64(i+1) {
			t.Fatalf("Enter %d assigned ts %d", i, ts)
		}
	}
	if got, ok := l.OldestBegin(); !ok || got != 1 {
		t.Fatalf("OldestBegin = %d,%v want 1,true", got, ok)
	}
	// Remove the head twice; the oldest must advance.
	l.Remove(nodes[0])
	if got, _ := l.OldestBegin(); got != 2 {
		t.Errorf("after removing head, oldest = %d", got)
	}
	// Remove from the middle.
	l.Remove(nodes[2])
	if got, _ := l.OldestBegin(); got != 2 {
		t.Errorf("after removing middle, oldest = %d", got)
	}
	// Remove the tail.
	l.Remove(nodes[4])
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
	l.Remove(nodes[1])
	l.Remove(nodes[3])
	if _, ok := l.OldestBegin(); ok {
		t.Error("list should be empty")
	}
}

func TestOldestOtherBegin(t *testing.T) {
	l := New()
	var c clock.Clock
	a, b := &Node{}, &Node{}
	c.Tick()
	l.Enter(a, &c)
	if _, ok := l.OldestOtherBegin(a); ok {
		t.Error("sole entry should see no other")
	}
	c.Tick()
	l.Enter(b, &c)
	if got, ok := l.OldestOtherBegin(a); !ok || got != 2 {
		t.Errorf("OldestOtherBegin(head) = %d,%v want 2,true", got, ok)
	}
	if got, ok := l.OldestOtherBegin(b); !ok || got != 1 {
		t.Errorf("OldestOtherBegin(tail) = %d,%v want 1,true", got, ok)
	}
}

func TestEnterAtSortedInsert(t *testing.T) {
	l := New()
	var c clock.Clock
	c.AdvanceTo(100)
	late := &Node{}
	a, b := &Node{}, &Node{}
	l.Enter(a, &c) // ts 100
	c.AdvanceTo(200)
	l.Enter(b, &c) // ts 200
	// A late joiner with an old timestamp must become the head.
	l.EnterAt(late, 50)
	if got, _ := l.OldestBegin(); got != 50 {
		t.Errorf("oldest = %d, want 50", got)
	}
	// One in the middle.
	mid := &Node{}
	l.EnterAt(mid, 150)
	l.Remove(late)
	if got, _ := l.OldestBegin(); got != 100 {
		t.Errorf("oldest = %d, want 100", got)
	}
	l.Remove(a)
	if got, _ := l.OldestBegin(); got != 150 {
		t.Errorf("oldest = %d, want 150", got)
	}
	// And one at the tail position.
	tail := &Node{}
	l.EnterAt(tail, 999)
	l.Remove(mid)
	l.Remove(b)
	if got, _ := l.OldestBegin(); got != 999 {
		t.Errorf("oldest = %d, want 999", got)
	}
	l.Remove(tail)
}

func TestRemoveNotOnListPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Remove of unlisted node did not panic")
		}
	}()
	New().Remove(&Node{})
}

func TestConcurrentEnterRemove(t *testing.T) {
	l := New()
	var c clock.Clock
	const workers = 8
	const iters = 3000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		n := &Node{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Tick()
				l.Enter(n, &c)
				// Lock-free oldest reads race with enters/removes.
				if ts, ok := l.OldestBegin(); ok && ts > n.BeginTS() {
					t.Errorf("oldest %d exceeds my begin %d while I am on the list", ts, n.BeginTS())
				}
				l.Remove(n)
			}
		}()
	}
	wg.Wait()
	if l.Len() != 0 {
		t.Errorf("Len = %d after all removed", l.Len())
	}
}

// TestConcurrentEnterAtLenOldestOther races the full List surface —
// sorted late-joiner inserts, Len, and the excluding-self query — against
// Enter/Remove churn under -race. Lock-free readers must never observe a
// value past a registered worker's own begin timestamp.
func TestConcurrentEnterAtLenOldestOther(t *testing.T) {
	l := New()
	var c clock.Clock
	c.Tick()
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		n := &Node{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var my uint64
				if i%5 == 2 {
					// Late joiner: timestamp sampled before insertion.
					my = c.Now()
					c.Tick()
					l.EnterAt(n, my)
				} else {
					c.Tick()
					my = l.Enter(n, &c)
				}
				if ts, ok := l.OldestBegin(); ok && ts > my {
					t.Errorf("oldest %d exceeds my begin %d while on the list", ts, my)
				}
				_, _ = l.OldestOtherBegin(n)
				_ = l.Len()
				l.Remove(n)
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != 0 {
		t.Errorf("Len = %d after all removed", l.Len())
	}
	if _, ok := l.OldestBegin(); ok {
		t.Error("list should be empty")
	}
}

// TestOldestIsLowerBound verifies the central safety property the fence
// relies on: while any transaction with begin timestamp T is on the list,
// OldestBegin never returns a value greater than T.
func TestOldestIsLowerBound(t *testing.T) {
	l := New()
	var c clock.Clock
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Churning writers.
	for w := 0; w < 4; w++ {
		n := &Node{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Tick()
				l.Enter(n, &c)
				l.Remove(n)
			}
		}()
	}
	// A long-lived resident; observers must never see past it.
	resident := &Node{}
	c.Tick()
	l.Enter(resident, &c)
	myTS := resident.BeginTS()
	for i := 0; i < 200000; i++ {
		if ts, ok := l.OldestBegin(); !ok || ts > myTS {
			t.Fatalf("OldestBegin = %d,%v but resident began at %d", ts, ok, myTS)
		}
	}
	close(stop)
	wg.Wait()
	l.Remove(resident)
}
