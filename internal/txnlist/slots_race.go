//go:build privstm_watermark_race

// slots_race.go reverts the PR-2 watermark-cache fix: cache writes go back
// to optimistic, unlocked publication, reintroducing the historical
// EnterAt-vs-recompute race on purpose. The unsound interleaving:
//
//  1. a recompute scans the slots while a late joiner (EnterAt, old
//     timestamp) has not yet stored its slot — or has, but after the scan
//     passed its index;
//  2. the joiner stores its slot and CAS-lowers the cache to its own
//     (old) timestamp;
//  3. the recompute publishes the minimum its stale scan found,
//     overwriting the lowering — the cache now names a *valid* holder
//     (live, slot matches) with a timestamp above the live joiner's begin.
//
// A privatization fence consulting OldestBegin then releases before the
// joiner completes, exactly the delayed-cleanup failure the paper's fence
// exists to prevent. The schedule explorer's watermark oracle
// (Slots.CheckWatermark) detects state 3 directly.
//
// This file exists so the explorer's regression corpus can demonstrate
// rediscovering a real historical bug (build with
// -tags privstm_watermark_race); production builds use slots_safe.go.

package txnlist

import "privstm/internal/failpoint"

// EnterAt registers slot id under a previously assigned timestamp ts.
// Historical (unsound) version: the cache lowering is an optimistic CAS
// with no writer lock, so it can interleave with a recompute's
// scan-then-publish and be overwritten by a stale minimum.
func (s *Slots) EnterAt(id int, ts uint64) {
	s.raiseHi(id)
	s.entering.Add(1) // CheckWatermark skips the store→lowering window
	defer s.entering.Add(-1)
	s.slots[id].v.Store(ts<<1 | 1)
	failpoint.Eval(failpoint.SlotsEnterAtLower)
	for {
		c := s.cache.Load()
		if c == 0 {
			return
		}
		if _, cts := unpackCache(c); cts <= ts&slotTSMask {
			return
		}
		if s.cache.CompareAndSwap(c, packCache(id, ts)) {
			return
		}
	}
}

func (s *Slots) oldest(skip int) (uint64, bool) {
	if ts, ok, hit := s.cached(skip); hit {
		return ts, ok
	}
	// Historical (unsound) version: scan and publish with no writer lock.
	// The yield point sits in the scan→publish window, where an EnterAt
	// lowering can slip in and be clobbered by the Store below.
	minTS, minID, oTS, oAny := s.scanSlots(skip)
	failpoint.Eval(failpoint.SlotsScanPublish)
	var nc uint64
	if minID >= 0 {
		nc = packCache(minID, minTS)
	}
	s.cache.Store(nc)
	return oTS, oAny
}
