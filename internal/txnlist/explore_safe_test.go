//go:build !privstm_watermark_race

package txnlist

import (
	"testing"

	"privstm/internal/sched"
)

// TestWatermarkExplorationCorpus exhaustively enumerates the
// EnterAt-vs-recompute schedule space on the production (locked) cache
// write path: no interleaving may publish a watermark above a live begin.
// This is the corpus half of the rediscovery pair — build with
// -tags privstm_watermark_race for the half that must FAIL
// (TestWatermarkRaceRediscovered in explore_race_test.go).
func TestWatermarkExplorationCorpus(t *testing.T) {
	const max = 500
	res, n := sched.ExploreDFS(sched.Config{}, max, watermarkExploreProgram)
	if res != nil {
		t.Fatalf("schedule violation on the locked write path (trace %v): %v", res.Trace, res.Err)
	}
	if n == 0 {
		t.Fatal("DFS explored nothing")
	}
	if n >= max {
		t.Fatalf("schedule space not exhausted in %d schedules; the corpus claim needs full enumeration", max)
	}
	t.Logf("enumerated all %d schedules clean", n)
}
