//go:build privstm_watermark_race

package txnlist

import (
	"strings"
	"testing"

	"privstm/internal/sched"
)

// TestWatermarkRaceRediscovered: with the PR-2 watermark fix reverted
// (this build tag substitutes slots_race.go's optimistic cache
// publication), the schedule explorer must rediscover the historical
// EnterAt-vs-recompute race from scratch — exhaustive DFS over the same
// program whose full schedule space passes clean on the production write
// path (TestWatermarkExplorationCorpus). The failing trace must then
// reproduce the violation deterministically under Replay; it is logged so
// the interleaving can be replayed by hand.
//
// Run via `make explore` (the rest of the txnlist tests assume the sound
// write path and are not built for this tag combination's stress claims):
//
//	go test -tags privstm_watermark_race -run TestWatermarkRaceRediscovered ./internal/txnlist
func TestWatermarkRaceRediscovered(t *testing.T) {
	res, n := sched.ExploreDFS(sched.Config{}, 500, watermarkExploreProgram)
	if res == nil {
		t.Fatalf("explorer missed the historical watermark race in %d schedules", n)
	}
	if !strings.Contains(res.Err.Error(), "watermark") {
		t.Fatalf("found a different failure: %v", res.Err)
	}
	t.Logf("rediscovered in %d schedules: %v\n  trace: %v", n, res.Err, res.Trace)

	cfg, bodies := watermarkExploreProgram()
	rep := sched.Replay(cfg, res.Trace, bodies...)
	if rep.Err == nil || !strings.Contains(rep.Err.Error(), "watermark") {
		t.Fatalf("replay of the failing trace did not reproduce: %v", rep.Err)
	}
}
