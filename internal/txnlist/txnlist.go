// Package txnlist implements the central list of incomplete transactions
// (paper §II-C): every active transaction, plus every aborted transaction
// that has not yet finished undoing its writes, appears on a list sorted by
// begin timestamp. Privatization fences consult the head of the list to
// find the oldest incomplete transaction.
//
// Following the paper: nodes are statically allocated one per thread, the
// list is protected by a simple spin lock, and the oldest timestamp can be
// read *without* the lock by double-checking the head pointer after reading
// the head node's contents — correct because begin timestamps are
// monotonically increasing, so a successfully double-checked read is a
// lower bound on the oldest incomplete transaction.
package txnlist

import (
	"sync/atomic"

	"privstm/internal/clock"
	"privstm/internal/spin"
)

// Node is one thread's statically allocated list entry. A node is either
// on its owner's List or idle; it must not be shared between lists.
type Node struct {
	beginTS atomic.Uint64
	next    atomic.Pointer[Node]
	prev    *Node // maintained only under the list lock
	in      bool  // maintained only under the list lock
}

// BeginTS returns the begin timestamp most recently assigned to the node.
func (n *Node) BeginTS() uint64 { return n.beginTS.Load() }

// List is the central transaction list. The zero value is an empty list.
type List struct {
	mu   spin.Mutex
	head atomic.Pointer[Node]
	tail *Node
}

// New returns an empty list.
func New() *List { return &List{} }

// Enter assigns n a fresh begin timestamp read from c *while holding the
// list lock* and appends n at the tail. Sampling the clock under the lock
// guarantees that list order and timestamp order agree, which is what makes
// the head the oldest entry. It returns the assigned timestamp.
func (l *List) Enter(n *Node, c *clock.Clock) uint64 {
	l.mu.Lock()
	ts := c.Now()
	n.beginTS.Store(ts)
	l.appendLocked(n)
	l.mu.Unlock()
	return ts
}

// EnterAt inserts n with a previously assigned timestamp ts, keeping the
// list sorted. Late joiners — pvrWriterOnly transactions reaching their
// first write, and hybrid transactions switching to partial visibility —
// carry a begin timestamp that may be older than entries already on the
// list, so this walks to the correct position.
func (l *List) EnterAt(n *Node, ts uint64) {
	l.mu.Lock()
	n.beginTS.Store(ts)
	// Find the first node with a larger timestamp; insert before it.
	var prev *Node
	cur := l.head.Load()
	for cur != nil && cur.beginTS.Load() <= ts {
		prev = cur
		cur = cur.next.Load()
	}
	n.in = true
	n.prev = prev
	n.next.Store(cur)
	if cur != nil {
		cur.prev = n
	} else {
		l.tail = n
	}
	if prev != nil {
		prev.next.Store(n)
	} else {
		l.head.Store(n)
	}
	l.mu.Unlock()
}

func (l *List) appendLocked(n *Node) {
	n.in = true
	n.next.Store(nil)
	n.prev = l.tail
	if l.tail != nil {
		l.tail.next.Store(n)
	} else {
		l.head.Store(n)
	}
	l.tail = n
}

// Remove unlinks n. A transaction removes itself only after its commit or
// abort protocol — including undo-log rollback — is complete, so that
// fences keep waiting for its cleanup.
func (l *List) Remove(n *Node) {
	l.mu.Lock()
	if !n.in {
		l.mu.Unlock()
		panic("txnlist: Remove of node not on list")
	}
	n.in = false
	if n.prev != nil {
		n.prev.next.Store(n.next.Load())
	} else {
		l.head.Store(n.next.Load())
	}
	if nxt := n.next.Load(); nxt != nil {
		nxt.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev = nil
	n.next.Store(nil)
	l.mu.Unlock()
}

// OldestBegin returns a lower bound on the begin timestamp of the oldest
// incomplete transaction, and whether the list was non-empty. It takes no
// lock: it reads the head node's timestamp and double-checks that the head
// pointer did not change in the interim (paper §II-C).
func (l *List) OldestBegin() (ts uint64, ok bool) {
	//stmlint:ignore yieldsite obstruction-free double-check: repeats only if a rival moved the head between the two reads; terminates as soon as the world holds still, so the starvation direction is inverted
	for {
		h := l.head.Load()
		if h == nil {
			return 0, false
		}
		ts = h.beginTS.Load()
		if l.head.Load() == h {
			return ts, true
		}
	}
}

// OldestOtherBegin is OldestBegin excluding self: "if the transaction doing
// the lookup is itself the head of the list, the next node in the list is
// inspected" (§II-C).
func (l *List) OldestOtherBegin(self *Node) (ts uint64, ok bool) {
	//stmlint:ignore yieldsite obstruction-free double-check, same argument as OldestBegin
	for {
		h := l.head.Load()
		if h == nil {
			return 0, false
		}
		if h != self {
			ts = h.beginTS.Load()
			if l.head.Load() == h {
				return ts, true
			}
			continue
		}
		n := self.next.Load()
		if n == nil {
			if l.head.Load() == self {
				return 0, false
			}
			continue
		}
		ts = n.beginTS.Load()
		if l.head.Load() == self && self.next.Load() == n {
			return ts, true
		}
	}
}

// Len counts the entries under the lock. Intended for tests and statistics,
// not hot paths.
func (l *List) Len() int {
	l.mu.Lock()
	n := 0
	for cur := l.head.Load(); cur != nil; cur = cur.next.Load() {
		n++
	}
	l.mu.Unlock()
	return n
}
