package txnlist

import (
	"sync"
	"sync/atomic"
	"testing"

	"privstm/internal/clock"
)

func TestSlotsEmpty(t *testing.T) {
	s := NewSlots(4)
	if _, ok := s.OldestBegin(); ok {
		t.Error("empty tracker reported an oldest entry")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Cap() != 4 {
		t.Errorf("Cap = %d", s.Cap())
	}
	if s.CachedHolder() != -1 {
		t.Errorf("CachedHolder = %d on empty tracker", s.CachedHolder())
	}
}

func TestSlotsBounds(t *testing.T) {
	for _, n := range []int{0, -1, MaxSlots + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSlots(%d) did not panic", n)
				}
			}()
			NewSlots(n)
		}()
	}
	NewSlots(1)
}

func TestSlotsEnterLeaveOldest(t *testing.T) {
	s := NewSlots(8)
	var c clock.Clock
	c.Tick()
	ts0 := s.Enter(0, &c)
	c.Tick()
	ts1 := s.Enter(1, &c)
	if ts1 <= ts0 {
		t.Fatalf("timestamps not increasing: %d then %d", ts0, ts1)
	}
	if got, ok := s.OldestBegin(); !ok || got != ts0 {
		t.Fatalf("OldestBegin = %d,%v want %d,true", got, ok, ts0)
	}
	// Second query must hit the cache and agree.
	if got, ok := s.OldestBegin(); !ok || got != ts0 {
		t.Fatalf("cached OldestBegin = %d,%v want %d,true", got, ok, ts0)
	}
	if s.CachedHolder() != 0 {
		t.Errorf("CachedHolder = %d, want 0", s.CachedHolder())
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	// Cached holder exits: the lazy recompute must advance to slot 1.
	s.Leave(0)
	if got, ok := s.OldestBegin(); !ok || got != ts1 {
		t.Fatalf("after holder exit OldestBegin = %d,%v want %d,true", got, ok, ts1)
	}
	if s.CachedHolder() != 1 {
		t.Errorf("CachedHolder = %d, want 1", s.CachedHolder())
	}
	s.Leave(1)
	if _, ok := s.OldestBegin(); ok {
		t.Error("tracker should be empty")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after all left", s.Len())
	}
}

func TestSlotsOldestOtherBegin(t *testing.T) {
	s := NewSlots(4)
	var c clock.Clock
	c.Tick()
	s.Enter(0, &c)
	if _, ok := s.OldestOtherBegin(0); ok {
		t.Error("sole entry should see no other")
	}
	c.Tick()
	s.Enter(1, &c)
	if got, ok := s.OldestOtherBegin(0); !ok || got != 2 {
		t.Errorf("OldestOtherBegin(0) = %d,%v want 2,true", got, ok)
	}
	if got, ok := s.OldestOtherBegin(1); !ok || got != 1 {
		t.Errorf("OldestOtherBegin(1) = %d,%v want 1,true", got, ok)
	}
	// Seed the cache with the global minimum (slot 0), then check the
	// excluding query still never exceeds the survivor's begin.
	s.OldestBegin()
	if got, ok := s.OldestOtherBegin(0); !ok || got != 2 {
		t.Errorf("cached OldestOtherBegin(0) = %d,%v want 2,true", got, ok)
	}
	s.Leave(0)
	s.Leave(1)
}

func TestSlotsEnterAtLowersWatermark(t *testing.T) {
	s := NewSlots(8)
	var c clock.Clock
	c.AdvanceTo(100)
	s.Enter(0, &c) // ts 100
	if got, _ := s.OldestBegin(); got != 100 {
		t.Fatalf("oldest = %d, want 100", got)
	}
	// A late joiner with an older timestamp must be reflected immediately
	// after EnterAt returns — this is the fence's lower-bound requirement.
	s.EnterAt(1, 50)
	if got, ok := s.OldestBegin(); !ok || got != 50 {
		t.Fatalf("after EnterAt oldest = %d,%v want 50,true", got, ok)
	}
	// A late joiner that is *not* older must leave the watermark alone.
	s.EnterAt(2, 70)
	if got, _ := s.OldestBegin(); got != 50 {
		t.Errorf("oldest = %d, want 50", got)
	}
	s.Leave(1)
	if got, _ := s.OldestBegin(); got != 70 {
		t.Errorf("after joiner left, oldest = %d, want 70", got)
	}
	s.Leave(2)
	if got, _ := s.OldestBegin(); got != 100 {
		t.Errorf("oldest = %d, want 100", got)
	}
	s.Leave(0)
}

func TestSlotsReenterInvalidatesCache(t *testing.T) {
	s := NewSlots(4)
	var c clock.Clock
	c.AdvanceTo(10)
	s.Enter(0, &c)
	c.AdvanceTo(20)
	s.Enter(1, &c)
	s.OldestBegin() // cache slot 0 @ 10
	// Slot 0 finishes and immediately re-enters at a later time: the cached
	// (holder, ts) pair no longer matches the slot, so the fast path must
	// reject it and the recompute must return the new minimum.
	s.Leave(0)
	c.AdvanceTo(30)
	s.Enter(0, &c)
	if got, ok := s.OldestBegin(); !ok || got != 20 {
		t.Errorf("OldestBegin = %d,%v want 20,true (slot 1)", got, ok)
	}
	s.Leave(0)
	s.Leave(1)
}

// TestSlotsConcurrentStress races Enter/Leave/EnterAt against the oldest
// queries and Len under -race, checking the lower-bound property from each
// worker's own perspective at every step.
func TestSlotsConcurrentStress(t *testing.T) {
	const workers = 8
	const iters = 3000
	s := NewSlots(workers)
	var c clock.Clock
	c.Tick()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var my uint64
				if i%7 == 3 {
					// Late joiner: recorded timestamp predates registration.
					my = c.Now()
					c.Tick()
					s.EnterAt(id, my)
				} else {
					c.Tick()
					my = s.Enter(id, &c)
				}
				if ts, ok := s.OldestBegin(); ok && ts > my {
					t.Errorf("oldest %d exceeds my begin %d while registered", ts, my)
				}
				if ts, ok := s.OldestOtherBegin(id); ok && ts > my+uint64(iters) {
					_ = ts // excluding-self may exceed my begin; just exercise it
				}
				_ = s.Len()
				s.Leave(id)
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 0 {
		t.Errorf("Len = %d after all left", s.Len())
	}
}

// TestSlotsOldestIsLowerBound mirrors the central list's safety test: while
// a long-lived resident is registered, no query may return a timestamp past
// its begin — regardless of churn and late joiners on other slots.
func TestSlotsOldestIsLowerBound(t *testing.T) {
	const churners = 4
	s := NewSlots(churners + 1)
	var c clock.Clock
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < churners; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%5 == 4 {
					s.EnterAt(id, c.Now())
				} else {
					c.Tick()
					s.Enter(id, &c)
				}
				s.Leave(id)
			}
		}(w)
	}
	resident := churners
	c.Tick()
	myTS := s.Enter(resident, &c)
	for i := 0; i < 200000; i++ {
		if ts, ok := s.OldestBegin(); !ok || ts > myTS {
			t.Fatalf("OldestBegin = %d,%v but resident began at %d", ts, ok, myTS)
		}
	}
	close(stop)
	wg.Wait()
	s.Leave(resident)
}

// TestSlotsEnterAtEmptyCacheKeepsOlderEntrant: a late joiner must not seed
// a never-computed (empty) cache with its own timestamp — an older
// fresh-Enter transaction may be live that no scan has cached yet, and a
// valid-looking watermark above its begin would release fences early. The
// joiner must leave the cache empty and let the next query scan.
func TestSlotsEnterAtEmptyCacheKeepsOlderEntrant(t *testing.T) {
	s := NewSlots(4)
	var c clock.Clock
	c.AdvanceTo(10)
	s.Enter(0, &c) // live at 10; no query yet, so the cache is still empty
	s.EnterAt(1, 50)
	if got, ok := s.OldestBegin(); !ok || got != 10 {
		t.Fatalf("OldestBegin = %d,%v want 10,true (older entrant)", got, ok)
	}
	s.Leave(0)
	s.Leave(1)
}

// TestSlotsEnterAtVsRecomputeRace targets the interleaving where a
// recompute's scan passes a joiner's slot before the joiner stores it, the
// joiner then registers via EnterAt and finds the (pre-publish) cache
// already at or below its timestamp, and the scan publishes a minimum
// computed without the joiner. The published watermark would then exceed
// the live joiner's begin — exactly what PrivatizationFence must never
// observe. The shape maximizes the scan window: the joiner sits in slot 0
// (visited first, so the scan has the whole remaining array still to walk),
// a long-lived resident in the last slot keeps the scans long and supplies
// a high minimum (1000), and a churner in slot 1 alternately installs a low
// watermark (500 ≤ the joiner's 700, triggering EnterAt's covered case) and
// leaves (forcing the pollers to recompute).
func TestSlotsEnterAtVsRecomputeRace(t *testing.T) {
	const (
		slots      = 256
		joinerTS   = 700
		churnTS    = 500
		residentTS = 1000
		iters      = 20000
	)
	s := NewSlots(slots)
	var c clock.Clock
	c.AdvanceTo(residentTS)
	s.Enter(slots-1, &c) // raises hi so every scan walks the full array
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // churner: plant a low watermark, then vacate it
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.EnterAt(1, churnTS)
			s.Leave(1)
		}
	}()
	go func() { // poller: recomputes whenever the churner's watermark goes stale
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.OldestBegin()
		}
	}()
	for i := 0; i < iters; i++ {
		s.EnterAt(0, joinerTS)
		if ts, ok := s.OldestBegin(); !ok || ts > joinerTS {
			t.Fatalf("iter %d: OldestBegin = %d,%v but joiner live at %d", i, ts, ok, joinerTS)
		}
		s.Leave(0)
	}
	close(stop)
	wg.Wait()
	s.Leave(slots - 1)
}

// TestSlotsOldestFastPathAllocFree pins the oldest-begin fast path (and the
// Enter/Leave stores) at zero heap allocations.
func TestSlotsOldestFastPathAllocFree(t *testing.T) {
	s := NewSlots(16)
	var c clock.Clock
	c.Tick()
	s.Enter(0, &c)
	s.OldestBegin() // warm the cache
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := s.OldestBegin(); !ok {
			t.Fatal("lost the resident")
		}
	}); n != 0 {
		t.Errorf("OldestBegin fast path allocates %.1f per call", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		c.Tick()
		s.Enter(1, &c)
		s.Leave(1)
	}); n != 0 {
		t.Errorf("Enter/Leave allocates %.1f per cycle", n)
	}
	s.Leave(0)
}

// Benchmarks: the §II-C ablation. BenchmarkTrackerEnterLeave measures the
// begin/end critical path; BenchmarkTrackerOldest measures the fence-side
// query with a resident holder. Run both with -bench Tracker to compare the
// spin-locked list against the slot array.
func BenchmarkTrackerEnterLeave(b *testing.B) {
	b.Run("list", func(b *testing.B) {
		l := New()
		var c clock.Clock
		b.RunParallel(func(pb *testing.PB) {
			n := &Node{}
			for pb.Next() {
				c.Tick()
				l.Enter(n, &c)
				l.Remove(n)
			}
		})
	})
	b.Run("slots", func(b *testing.B) {
		s := NewSlots(256)
		var c clock.Clock
		var next atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			id := int(next.Add(1) - 1)
			for pb.Next() {
				c.Tick()
				s.Enter(id, &c)
				s.Leave(id)
			}
		})
	})
}

func BenchmarkTrackerOldest(b *testing.B) {
	b.Run("list", func(b *testing.B) {
		l := New()
		var c clock.Clock
		c.Tick()
		resident := &Node{}
		l.Enter(resident, &c)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := l.OldestBegin(); !ok {
				b.Fatal("lost resident")
			}
		}
	})
	b.Run("slots", func(b *testing.B) {
		s := NewSlots(256)
		var c clock.Clock
		c.Tick()
		s.Enter(0, &c)
		s.OldestBegin()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := s.OldestBegin(); !ok {
				b.Fatal("lost resident")
			}
		}
	})
}
