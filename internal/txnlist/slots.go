// slots.go implements the "lighter weight implementation of the central
// list" the paper leaves as future work (§II-C), taken further than the
// registry-scanning tracker: a statically allocated, cache-line padded slot
// array indexed by thread ID, plus a cached, monotonically advancing
// oldest-begin watermark.
//
//   - Enter/Leave are single uncontended atomic stores into the thread's
//     own padded slot — no lock, no shared cache line.
//   - OldestBegin is, on the fast path, one atomic load of the cache word
//     plus one load of the cached holder's slot to revalidate it. The O(n)
//     slot scan runs only when the cached holder has exited (or re-entered
//     under a different timestamp), i.e. lazily.
//   - EnterAt (late joiners with old timestamps: pvrWriterOnly first
//     writes, pvrHybrid mode switches) lowers the cache before returning,
//     so a fence that starts after the joiner is registered can never
//     overlook it.
//
// Safety argument (the fence's lower-bound requirement) — see
// CORRECTNESS.md "Slot tracker watermark":
//
// The cache word packs (holder slot + 1, begin timestamp). Invariant: at
// every instant with no EnterAt in flight, either the cache's timestamp is
// ≤ the begin timestamp of every live registered transaction, or the
// cached holder's slot no longer matches the cached timestamp — in which
// case every reader falls back to the scan. (Mid-EnterAt — slot stored,
// lowering pending — the cache may transiently exceed the joiner's begin;
// that is fine because EnterAt's contract binds only queries that start
// after it returns.) All cache *writes* — EnterAt's lowering and the slow path's
// recompute publish — are serialized by a writer lock, and a joiner's slot
// is stored before it takes the lock. So a recompute's scan and publish
// can never interleave with a registration it must not miss: an EnterAt
// either completes before the recompute acquires the lock (its slot is
// visible to the scan) or runs after the publish (and then re-lowers the
// cache itself if the published value is above its timestamp). Detecting
// the interleaving with an optimistic publish CAS instead is unsound: a
// joiner whose timestamp is already covered would leave the word
// untouched, and even a version-stamped word can recur (ABA) once another
// recompute reinstalls the same minimum, letting a stale scan publish a
// watermark above a live joiner. A scan that misses a *concurrently
// entering* (fresh-timestamp) transaction is sound for the same reason
// the registry-scanning tracker is: registration completes before the
// transaction publishes visibility hints or performs further reads, and
// the engines revalidate after registering, so only fences that start
// after registration must see it — and they do.
//
// Readers never take the lock: the fast path is two loads, and a reader
// that loses the fast path acquires the lock only to scan-and-publish.
package txnlist

import (
	"fmt"
	"sync/atomic"

	"privstm/internal/clock"
	"privstm/internal/spin"
)

const (
	// slotTSBits is the width of the timestamp half of the cache word.
	// Timestamps beyond 2^48 (≈ 9 years of continuous commits at one per
	// nanosecond) are truncated in the cache; truncation only ever lowers
	// the watermark, which is the safe direction, at the cost of the fast
	// path never validating again.
	slotTSBits = 48
	slotTSMask = uint64(1)<<slotTSBits - 1

	// MaxSlots is the largest slot count a Slots can track: the holder
	// index must fit in the cache word alongside the timestamp.
	MaxSlots = 1<<(64-slotTSBits) - 2
)

// slot is one thread's registration word, padded to a full cache line so
// that begins and ends on different threads never contend.
type slot struct {
	// v holds beginTS<<1 | 1 while the thread's transaction is incomplete,
	// 0 otherwise.
	v atomic.Uint64
	_ [7]uint64
}

// Slots is the slot-array tracker. Create with NewSlots.
type Slots struct {
	// cache is the oldest-begin watermark: (holder+1)<<slotTSBits | ts,
	// or 0 when no holder is cached (every query then scans).
	cache atomic.Uint64
	_     [7]uint64
	// hi is a high-water mark over entered slot indexes (+1): scans stop
	// there instead of walking the full capacity.
	hi atomic.Uint64
	_  [7]uint64
	// mu serializes every cache write (EnterAt's lowering, the slow-path
	// recompute publish); see the package comment for why optimistic CAS
	// publication is not enough. Fast-path readers never touch it.
	mu spin.Mutex
	_  [15]uint32
	// entering counts in-flight EnterAt registrations (slot stored, cache
	// lowering not yet complete). Only CheckWatermark consults it: inside
	// that window the cache may legitimately sit above the joiner's begin —
	// EnterAt's contract covers queries that start after it returns — so
	// the oracle must not flag the transient.
	entering atomic.Int64

	slots []slot
}

// NewSlots returns a tracker with capacity for n slots (thread IDs 0..n-1).
func NewSlots(n int) *Slots {
	if n < 1 || n > MaxSlots {
		panic(fmt.Sprintf("txnlist: slot count %d out of range [1, %d]", n, MaxSlots))
	}
	return &Slots{slots: make([]slot, n)}
}

// Cap returns the slot capacity.
func (s *Slots) Cap() int { return len(s.slots) }

func packCache(id int, ts uint64) uint64 {
	return uint64(id+1)<<slotTSBits | ts&slotTSMask
}

func unpackCache(c uint64) (id int, ts uint64) {
	return int(c>>slotTSBits) - 1, c & slotTSMask
}

// raiseHi publishes id as entered so scans cover it.
func (s *Slots) raiseHi(id int) {
	want := uint64(id + 1)
	for {
		h := s.hi.Load()
		if h >= want || s.hi.CompareAndSwap(h, want) {
			return
		}
	}
}

// Enter registers slot id with a fresh begin timestamp sampled from c and
// returns it. Unlike the central list, no lock orders the clock sample
// against other begins: the tracker does not need sortedness, only that a
// transaction is visible with a timestamp no later than any datum it reads,
// which a pre-publication Now() guarantees (the clock is monotonic, so a
// fresh sample can never undercut a still-cached older holder).
func (s *Slots) Enter(id int, c *clock.Clock) uint64 {
	s.raiseHi(id)
	ts := c.Now()
	s.slots[id].v.Store(ts<<1 | 1)
	return ts
}

// Leave deregisters slot id: one atomic store. If id was the cached holder
// the cache is left stale; the next oldest query notices the slot mismatch
// and recomputes (the "lazy recompute on holder exit" of the design).
func (s *Slots) Leave(id int) { s.slots[id].v.Store(0) }

// OldestBegin returns a lower bound on the begin timestamp of the oldest
// incomplete transaction, and whether any is incomplete. Fast path: two
// atomic loads (cache word, holder revalidation).
func (s *Slots) OldestBegin() (uint64, bool) { return s.oldest(-1) }

// OldestOtherBegin is OldestBegin excluding slot id. When the cached
// holder is some other slot the fast path still applies (the global
// minimum excluding self is ≥ the global minimum, so the cached value
// remains a valid lower bound); when the caller itself holds the cache the
// scan runs.
func (s *Slots) OldestOtherBegin(id int) (uint64, bool) { return s.oldest(id) }

// scanSlots walks every entered slot, returning the global minimum (for
// reinstalling the cache) and the minimum excluding skip (the query
// result). Shared by the locked recompute (slots_safe.go) and the
// historical unlocked one (slots_race.go).
func (s *Slots) scanSlots(skip int) (minTS uint64, minID int, oTS uint64, oAny bool) {
	n := int(s.hi.Load())
	minID = -1
	for i := 0; i < n; i++ {
		v := s.slots[i].v.Load()
		if v&1 == 0 {
			continue
		}
		ts := v >> 1
		if minID < 0 || ts < minTS {
			minTS, minID = ts, i
		}
		if i != skip && (!oAny || ts < oTS) {
			oTS, oAny = ts, true
		}
	}
	return minTS, minID, oTS, oAny
}

// CheckWatermark verifies the watermark-cache soundness invariant (package
// comment; CORRECTNESS.md "Slot tracker watermark"): whenever the cache is
// *valid* — its holder's slot still matches the cached timestamp — the
// cached timestamp is a lower bound on every live registration. The check
// is skipped while any EnterAt is in flight: between a joiner's slot store
// and its cache lowering the cache may transiently exceed the joiner's
// begin even under the locked write path (a recompute that finished before
// the joiner started is a plain sequential execution), and the invariant
// only binds queries that start after EnterAt returns. The schedule
// explorer calls it between steps, while every worker is suspended, so the
// loads form a consistent snapshot; a concurrent caller would only ever
// see a transient mismatch in the unsound direction and never a false pass
// turned failure.
func (s *Slots) CheckWatermark() error {
	if s.entering.Load() != 0 {
		return nil // a registration is mid-flight: transient by design
	}
	c := s.cache.Load()
	if c == 0 {
		return nil
	}
	h, cts := unpackCache(c)
	if h < 0 || h >= len(s.slots) {
		return fmt.Errorf("txnlist: watermark holder %d out of range", h)
	}
	if v := s.slots[h].v.Load(); v&1 == 0 || (v>>1)&slotTSMask != cts {
		return nil // stale cache: every reader falls back to the scan
	}
	n := int(s.hi.Load())
	for i := 0; i < n; i++ {
		v := s.slots[i].v.Load()
		if v&1 == 0 {
			continue
		}
		if ts := (v >> 1) & slotTSMask; ts < cts {
			return fmt.Errorf("txnlist: watermark %d (holder %d) above live slot %d begin %d", cts, h, i, ts)
		}
	}
	return nil
}

// cached attempts the lock-free fast path: use the cached watermark when
// there is a holder other than skip whose slot still matches. hit reports
// whether the fast path applied.
func (s *Slots) cached(skip int) (ts uint64, ok, hit bool) {
	c := s.cache.Load()
	if h, cts := unpackCache(c); c != 0 && h != skip {
		if v := s.slots[h].v.Load(); v&1 == 1 && (v>>1)&slotTSMask == cts {
			return cts, true, true
		}
	}
	return 0, false, false
}

// Len counts the incomplete transactions (tests and statistics).
func (s *Slots) Len() int {
	n := 0
	for i := 0; i < int(s.hi.Load()); i++ {
		if s.slots[i].v.Load()&1 == 1 {
			n++
		}
	}
	return n
}

// CachedHolder returns the slot index the watermark currently points at,
// or -1 if the cache is empty. Tests use it to pin fast-path behaviour.
func (s *Slots) CachedHolder() int {
	c := s.cache.Load()
	if c == 0 {
		return -1
	}
	id, _ := unpackCache(c)
	return id
}
