//go:build privstm_reclaim_race

// epoch_race.go deliberately removes the epoch check: every retired extent
// is freed (and may be reused) immediately, regardless of in-flight
// transactions. This is the "unsafe reclaim" positive control — the bug the
// production check in epoch_safe.go exists to prevent. With this tag the
// reclaim explorer program (explore_race_test.go) must FAIL: a reader that
// began before the retiring commit still holds the extent's address, the
// reuse lands inside its window, and the PoisonOracle (or the reader's own
// torn result) reports the use-after-reclaim with a replayable trace.
//
// Never build production binaries with this tag.

package reclaim

// canFree under the race tag ignores the epoch entirely.
func canFree(stamp, oldestBegin uint64, anyActive bool) bool {
	return true
}
