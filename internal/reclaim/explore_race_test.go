//go:build privstm_reclaim_race

package reclaim

import (
	"strings"
	"testing"

	"privstm/internal/sched"
)

// TestReclaimRaceCaught is the positive control: with the epoch check
// removed (this build tag substitutes epoch_race.go — every retired extent
// frees immediately), the explorer must find a use-after-reclaim in the
// very program whose full schedule space passes clean under the production
// check (TestReclaimExplorationCorpus), and the failing trace must
// reproduce deterministically under Replay.
//
// Run via `make explore-reclaim`:
//
//	go test -tags privstm_reclaim_race -run TestReclaimRaceCaught -v ./internal/reclaim
func TestReclaimRaceCaught(t *testing.T) {
	res, n := sched.ExploreDFS(sched.Config{}, 2000, reclaimExploreProgram)
	if res == nil {
		t.Fatalf("explorer missed the use-after-reclaim in %d schedules", n)
	}
	if !strings.Contains(res.Err.Error(), "use-after-reclaim") {
		t.Fatalf("found a different failure: %v", res.Err)
	}
	t.Logf("caught in %d schedules: %v\n  trace: %v", n, res.Err, res.Trace)

	cfg, bodies := reclaimExploreProgram()
	rep := sched.Replay(cfg, res.Trace, bodies...)
	if rep.Err == nil || !strings.Contains(rep.Err.Error(), "use-after-reclaim") {
		t.Fatalf("replay of the failing trace did not reproduce: %v", rep.Err)
	}
}
