package reclaim

import (
	"fmt"
	"sync/atomic"

	"privstm/internal/clock"
	"privstm/internal/heap"
	"privstm/internal/sched"
	"privstm/internal/txnlist"
)

// reclaimExploreProgram is the schedule-exploration micro-program for the
// retire→collect→reuse epoch (CORRECTNESS.md §14). It distills the hazard
// to its two-thread core:
//
//   - "reader" begins a transaction at clock 5 (entering the oldest-begin
//     slots) and holds the address of node x, which its snapshot reached
//     before the unlink; it dereferences x across two yield points, then
//     announces its last access and leaves the tracker;
//   - "writer" models the unlinking commit at clock 10: it advances the
//     clock, retires x stamped 10, runs a collection pass, and tries to
//     reallocate.
//
// The reclaimer runs in poison mode and a sched.PoisonOracle watches x for
// exactly the danger window — retired while the pre-retire reader is still
// incomplete. On the production epoch check (epoch_safe.go) no
// interleaving can poison, free, or reuse x inside that window: the
// watermark (oldest begin 5 < stamp 10) blocks collection until the reader
// has left. With -tags privstm_reclaim_race the check is gone and the
// explorer must find a schedule where the collect lands inside the
// reader's window — the use-after-reclaim this subsystem exists to
// prevent. The reader also self-checks the values it loads, catching the
// variant where reuse zeroes the words between its two loads.
func reclaimExploreProgram() (sched.Config, []func()) {
	const retireTS = 10
	h := heap.New(64)
	s := txnlist.NewSlots(4)
	var c clock.Clock
	c.AdvanceTo(5)
	r := New(h, s.OldestBegin, Config{Threads: 2, CollectEvery: 1 << 30, Poison: true})

	x := h.MustAlloc(2)
	h.AtomicStore(x, 42)
	h.AtomicStore(x+1, 43)
	oracle := sched.NewPoisonOracle(h, Poison)

	// holder is true while the reader is a pre-retire transaction that may
	// still dereference x. There is no yield point between Enter and the
	// store (or between the clear and Unwatch), so the writer always
	// observes slot registration and holder flag in agreement.
	var holder atomic.Bool
	var torn error

	reader := func() {
		begin := s.Enter(0, &c)
		if begin < retireTS {
			holder.Store(true)
			sched.Point("reclaim/test/reader-captured")
			v0 := h.AtomicLoad(x)
			sched.Point("reclaim/test/reader-deref")
			v1 := h.AtomicLoad(x + 1)
			if v0 != 42 || v1 != 43 {
				torn = fmt.Errorf(
					"use-after-reclaim: pre-retire reader loaded %#x/%#x, want 42/43", v0, v1)
			}
			holder.Store(false)
			oracle.Unwatch("x")
		}
		// A transaction beginning at or after the unlink's commit sees the
		// unlink and can never reach x — it performs no dereference.
		s.Leave(0)
	}
	writer := func() {
		c.AdvanceTo(retireTS) // the unlinking commit
		sched.Point("reclaim/test/unlinked")
		if holder.Load() {
			oracle.Watch("x", x, 2)
		}
		r.Retire(1, x, 2, retireTS)
		r.Collect(1)
		sched.Point("reclaim/test/collected")
		if a, err := h.Alloc(2); err == nil {
			_ = a // reuse attempt; yields at HeapReuse when recycled
		}
	}
	check := func() error {
		if err := oracle.Check(); err != nil {
			return err
		}
		return torn
	}
	return sched.Config{OnStep: check, AtEnd: check}, []func(){reader, writer}
}
