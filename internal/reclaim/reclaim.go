// Package reclaim implements epoch-based safe memory reclamation for the
// transactional heap, closing the reuse half of the doomed-transaction
// problem (PAPERS.md: Machens/Turau, "Sandboxing for Software Transactional
// Memory with Deferred Updates"; CORRECTNESS.md §14).
//
// The hazard: a transaction T with begin timestamp B can consistently read
// a pointer to node X, then a writer W commits at R > B, unlinking X and
// freeing it. T is not doomed — its snapshot legitimately contains the
// pre-unlink state — yet it holds X's address. If X's words are reused
// *nontransactionally* (a plain write to freshly allocated memory touches
// no orec), T's validation cannot detect the reuse and T consumes torn
// data. The fix is an epoch rule: X may be physically reused only once no
// incomplete transaction began before R, because every transaction that
// begins at or after R sees the unlink (W's commit is ordered before its
// begin snapshot) and can never load X's address transactionally again.
//
// The epoch is exactly the oldest-begin watermark the incomplete-
// transaction tracker (txnlist.Slots and friends) already maintains for
// the privatization fences: Retire stamps each freed extent with the
// unlinking transaction's commit timestamp into a per-thread limbo list,
// and a collection pass — amortized every CollectEvery retires, or forced
// with Drain — returns an extent to the heap free list only when the
// watermark proves oldestBegin ≥ stamp (or nothing is in flight). The
// watermark is a *lower bound* on the true oldest begin, which is the safe
// direction here exactly as it is for fences: an undershooting bound can
// only delay reclamation, never release an extent a live transaction could
// still reach.
//
// Building with -tags privstm_reclaim_race (epoch_race.go) removes the
// epoch check — every retired extent is freed immediately — as a positive
// control: the schedule explorer must catch the resulting use-after-reclaim
// (internal/sched's PoisonOracle, make explore-reclaim).
package reclaim

import (
	"sync/atomic"

	"privstm/internal/failpoint"
	"privstm/internal/heap"
	"privstm/internal/spin"
)

// Poison is the sentinel written over every quarantined word when
// Config.Poison is set. The value is chosen to be a wildly out-of-range
// heap address and an implausible payload, so any computation that consumes
// it fails loudly (and the explorer's PoisonOracle can recognize it).
const Poison heap.Word = 0xDEADDEADDEADDEAD

// DefaultCollectEvery is the amortization period: one collection pass per
// this many retires on a shard. It must exceed localBatch or every batch
// publication pays a collection pass (and its watermark sample); at 4×
// the batch, three of four publishes are pure appends.
const DefaultCollectEvery = 64

// maxClass is the largest extent size (words) kept on the classed per-shard
// ready stacks; it matches the heap free list's exact-fit classes. Larger
// extents go straight to the heap free list at collect time.
const maxClass = 16

// localBatch sizes the owner-only fronts: retires publish to the shard in
// batches of this many, and allocation refills prefetch this many cleared
// extents per shard-lock acquisition. The batch is what makes the
// steady-state node cycle cost plain slice traffic instead of two lock
// round-trips per operation (see Local); it also amortizes publish's
// per-batch watermark sample. The price of a bigger batch is quarantine
// width: up to localBatch retired-but-unpublished extents per thread are
// invisible to Drain until the owner flushes.
const localBatch = 32

// Config configures a Reclaimer.
type Config struct {
	// Threads is the number of per-thread limbo shards; Retire's tid must
	// be < Threads. Minimum 1.
	Threads int
	// CollectEvery is the number of retires on one shard between amortized
	// collection passes (0 ⇒ DefaultCollectEvery).
	CollectEvery int
	// Poison overwrites an extent's words with the Poison sentinel at
	// *collect* time, the moment the epoch check releases it. Debug mode:
	// it turns a silent use-after-reclaim into a loud one and feeds the
	// explorer's poisoned-memory oracle (sched.PoisonOracle). Poisoning at
	// retire time would itself be the bug this package prevents: during
	// quarantine an old-snapshot reader may still legitimately load the
	// words (the unlink never modified the payload, and a plain sentinel
	// store would bypass its orec-based validation), so the sentinel may
	// land only where the epoch proves no incomplete transaction can look.
	Poison bool
}

// Stats is an aggregate snapshot of the reclaimer's counters. Extents
// buffered in owner-only fronts (RetireLocal/AllocLocal) are invisible
// until the owner thread publishes a batch or calls Flush — and the
// fronts' counter deltas (retires/collects/freed from direct-clearing
// publishes) are invisible until Flush, which folds them into the shard.
type Stats struct {
	Retires  uint64 // extents published to shard limbo lists
	Collects uint64 // collection passes executed (amortized + drains)
	Freed    uint64 // extents the epoch check has cleared for reuse
	Limbo    uint64 // extents currently quarantined
}

// extent is one retired run of words awaiting its epoch.
type extent struct {
	addr  heap.Addr
	n     uint32
	stamp uint64
}

// shard is one thread's limbo list. Shards are lock-protected (not
// lock-free): the owner thread is the only frequent visitor, so the spin
// lock is uncontended on the fast path, while still letting Drain and
// Stats walk foreign shards safely.
type shard struct {
	mu           spin.Mutex
	limbo        []extent
	sinceCollect int
	// ready holds epoch-cleared extents by exact word size, awaiting reuse
	// (AllocLocal refills from here; Drain returns the stock to the heap
	// free list).
	ready [maxClass + 1][]heap.Addr
	// Counters are atomics, not lock-protected fields, so a publish whose
	// whole batch direct-clears can account for itself without touching
	// the shard lock at all (Stats reads them lock-free too).
	retires  atomic.Uint64
	collects atomic.Uint64
	freed    atomic.Uint64
	_        [8]uint64 // pad: shards of different threads must not false-share
}

// Local is the owner-only half of a thread's reclamation state: Retire
// buffers retires here and Alloc serves reuse from here, both with plain
// (unlocked) slice operations, publishing to / refilling from the locked
// shard only every localBatch operations. A Local is touched exclusively
// by its owner thread — Drain and Stats never look at it — so the owner's
// batch boundary is the only synchronization it needs (Flush hands its
// contents to the shard when the thread finishes).
//
// Retire and Alloc are deliberately thin — append/pop plus a length check,
// with everything batch-boundary outlined into publish/allocSlow — so the
// compiler inlines the per-node fast path into the STM thread's call sites
// (these run once per node in the workloads' steady state; the paired
// overhead sweep in EXPERIMENTS.md is the budget they must fit).
type Local struct {
	pending []extent    // retired, stamped, not yet published to the shard
	ready   []heap.Addr // prefetched epoch-cleared extents, readyWords each
	// readyWords is the word size the ready cache currently serves; the
	// workloads allocate one node size each, so a single class suffices.
	readyWords int
	// missBackoff suppresses refill attempts (which take the shard lock)
	// for a few allocations after a refill came back empty, so alloc-heavy
	// growth phases don't pay a lock round-trip per node.
	missBackoff int
	// spill stages direct-cleared extents that don't fit the ready cache
	// (wrong class, or over readyCap) between publish's partition loop and
	// its single lock acquisition.
	spill []extent
	// Owner-local counter deltas, folded into the shard's atomics by Flush.
	// Plain fields: an atomic RMW costs ~10× a plain add, and publish runs
	// them once per batch — keeping them local is what lets a fully-cleared
	// publish touch no shared memory at all. Until Flush, Stats does not see
	// them (the same visibility contract as the extents themselves).
	retires  uint64
	collects uint64
	freed    uint64
	r        *Reclaimer
	s        *shard    // this Local's shard (same index in r.shards)
	_        [8]uint64 // pad: Locals of different threads must not false-share
}

// readyCap bounds the owner-local ready cache; direct-cleared extents
// beyond it spill to the shard stock so a retire-heavy phase can't grow
// the cache without bound.
const readyCap = 4 * localBatch

// Retire quarantines the n-word extent at a, stamped with stamp, through
// the owner thread's front: a plain append, publishing to the shard (with
// the amortized collection pass) once localBatch retires accumulate.
func (l *Local) Retire(a heap.Addr, n int, stamp uint64) {
	failpoint.Eval(failpoint.ReclaimRetire)
	l.pending = append(l.pending, extent{addr: a, n: uint32(n), stamp: stamp})
	if len(l.pending) >= localBatch {
		l.publish()
	}
}

// Alloc returns an n-word epoch-cleared extent from the owner thread's
// front, if one is available; ok is false when the caller should fall back
// to the heap. The returned words are NOT zeroed: they hold whatever the
// extent's last life (or the poison sentinel) left behind, like a malloc'd
// block; callers must fully initialize a node before publishing it.
func (l *Local) Alloc(n int) (heap.Addr, bool) {
	if k := len(l.ready) - 1; k >= 0 && l.readyWords == n {
		a := l.ready[k]
		l.ready = l.ready[:k]
		return a, true
	}
	return l.allocSlow(n)
}

// publish drains the front's pending retires. It samples the watermark
// once and partitions the batch: extents the epoch already covers clear
// directly — into the owner-local ready cache when they fit, the shard
// stock otherwise — and only still-quarantined extents visit the shared
// limbo list. Sampling before any move is the same one-shot check a
// collection pass makes, so this is a collection pass that happens to run
// at the producer: a transaction beginning after the sample observes the
// unlink (its begin ≥ stamp) and can never reach the extent. In the
// quiescent steady state the whole batch clears into the ready cache and
// the shard lock is never taken — retire→reuse becomes pure owner-local
// slice traffic (the counters are atomics for exactly this reason).
func (l *Local) publish() {
	total := len(l.pending)
	if total == 0 {
		return
	}
	oldestBegin, anyActive := l.r.oldest()
	adopt := l.readyWords == 0 && len(l.ready) == 0
	kept := l.pending[:0]
	var cleared uint64
	for _, e := range l.pending {
		if !canFree(e.stamp, oldestBegin, anyActive) {
			kept = append(kept, e)
			continue
		}
		failpoint.Eval(failpoint.ReclaimCollect)
		if l.r.poison {
			// Atomic stores: the sentinel may still race the *loads* of a
			// doomed transaction whose reads will never validate; the values
			// it sees are garbage either way, but the stores must be
			// race-clean.
			for i := 0; i < int(e.n); i++ {
				l.r.h.AtomicStore(e.addr+heap.Addr(i), Poison)
			}
		}
		cleared++
		if adopt {
			// First traffic on this front: serve the class it retires.
			l.readyWords, adopt = int(e.n), false
		}
		if int(e.n) == l.readyWords && len(l.ready) < readyCap {
			l.ready = append(l.ready, e.addr)
		} else {
			l.spill = append(l.spill, e)
		}
	}
	l.retires += uint64(total)
	l.collects++
	l.freed += cleared
	if len(kept) > 0 || len(l.spill) > 0 {
		s := l.s
		s.mu.Lock()
		s.limbo = append(s.limbo, kept...)
		s.sinceCollect += len(kept)
		for _, e := range l.spill {
			if int(e.n) <= maxClass {
				s.ready[e.n] = append(s.ready[e.n], e.addr)
			} else {
				l.r.h.Free(e.addr, int(e.n))
			}
		}
		if s.sinceCollect >= l.r.collectEvery {
			s.sinceCollect = 0
			l.r.collectLocked(s)
		}
		s.mu.Unlock()
		l.spill = l.spill[:0]
	}
	l.pending = l.pending[:0]
}

// allocSlow is Alloc's refill path: hand back a stale cache on a size
// switch, convert any pending retires whose epoch has arrived (publish
// direct-clears into the ready cache without the shard lock), then pull up
// to localBatch cleared extents of the wanted size from the shard's ready
// stock (collecting on demand if the stock is bare but limbo is not).
func (l *Local) allocSlow(n int) (heap.Addr, bool) {
	if l.readyWords != n && len(l.ready) > 0 {
		// The thread switched node sizes: hand the stale cache back to the
		// shard so the stock is not stranded on a class nobody allocates.
		l.returnReady()
	}
	if n > maxClass || n <= 0 {
		return heap.Nil, false
	}
	l.readyWords = n
	if len(l.pending) >= localBatch/4 {
		// Publishing fewer would pay the watermark sample for a handful of
		// extents; below the threshold the heap's bump pointer absorbs the
		// jitter until the batch fills (the extra extents re-enter
		// circulation at the next publish, so nothing leaks).
		l.publish()
		if k := len(l.ready); k > 0 {
			a := l.ready[k-1]
			l.ready = l.ready[:k-1]
			return a, true
		}
	}
	if l.missBackoff > 0 {
		l.missBackoff--
		return heap.Nil, false
	}
	s := l.s
	s.mu.Lock()
	if len(s.ready[n]) == 0 && len(s.limbo) > 0 {
		// Nothing stocked: see whether quarantined extents have cleared.
		s.sinceCollect = 0
		l.r.collectLocked(s)
	}
	stack := s.ready[n]
	b := localBatch
	if len(stack) < b {
		b = len(stack)
	}
	l.ready = append(l.ready, stack[len(stack)-b:]...)
	s.ready[n] = stack[:len(stack)-b]
	s.mu.Unlock()
	if k := len(l.ready); k > 0 {
		a := l.ready[k-1]
		l.ready = l.ready[:k-1]
		return a, true
	}
	// Empty refill: skip the lock for the next batch of allocations so a
	// pure growth phase stays on the heap's bump path.
	l.missBackoff = localBatch
	return heap.Nil, false
}

// returnReady hands the front's prefetched extents back to its shard's
// ready stock (size-switch and Flush paths).
func (l *Local) returnReady() {
	if len(l.ready) == 0 {
		return
	}
	s := l.s
	s.mu.Lock()
	s.ready[l.readyWords] = append(s.ready[l.readyWords], l.ready...)
	s.mu.Unlock()
	l.ready = l.ready[:0]
}

// Flush publishes everything buffered in the front — pending retires to
// the shard's limbo, prefetched ready extents back to the shard's stock —
// and resets the refill backoff. Call from the owner thread when it
// finishes (or after it has provably stopped) so Drain and Stats see the
// thread's full state.
func (l *Local) Flush() {
	l.publish()
	l.returnReady()
	l.missBackoff = 0
	l.s.retires.Add(l.retires)
	l.s.collects.Add(l.collects)
	l.s.freed.Add(l.freed)
	l.retires, l.collects, l.freed = 0, 0, 0
}

// Reclaimer defers physical reuse of freed heap extents until the
// oldest-begin watermark proves no incomplete transaction can reach them.
// Methods are safe for concurrent use; Retire(tid, ...) additionally
// assumes at most one goroutine uses each tid at a time (the STM's
// one-thread-one-descriptor rule).
type Reclaimer struct {
	h *heap.Heap
	// oldest is the epoch source: a lower bound on the begin timestamp of
	// the oldest incomplete transaction, and whether any is in flight —
	// the contract of ActiveTracker.OldestBegin / txnlist.Slots.
	oldest       func() (uint64, bool)
	collectEvery int
	poison       bool
	shards       []shard
	fronts       []Local
}

// New builds a Reclaimer returning extents to h, with oldest as the
// watermark source.
func New(h *heap.Heap, oldest func() (uint64, bool), cfg Config) *Reclaimer {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.CollectEvery <= 0 {
		cfg.CollectEvery = DefaultCollectEvery
	}
	r := &Reclaimer{
		h:            h,
		oldest:       oldest,
		collectEvery: cfg.CollectEvery,
		poison:       cfg.Poison,
		shards:       make([]shard, cfg.Threads),
		fronts:       make([]Local, cfg.Threads),
	}
	for i := range r.fronts {
		r.fronts[i].r = r
		r.fronts[i].s = &r.shards[i]
	}
	return r
}

// Local returns thread tid's owner-only front. The STM thread caches the
// pointer at creation so the per-node Retire/Alloc fast paths are direct
// (inlinable) method calls with no index arithmetic.
func (r *Reclaimer) Local(tid int) *Local { return &r.fronts[r.clamp(tid)] }

// Poisoning reports whether the debug sentinel is written over extents as
// the epoch check releases them.
func (r *Reclaimer) Poisoning() bool { return r.poison }

// clamp normalizes an out-of-range tid to shard 0. The single unsigned
// compare keeps the per-retire fast path free of the integer divide a
// tid%len(shards) would cost (RetireLocal and AllocLocal run once per node
// in the workloads' steady state).
func (r *Reclaimer) clamp(tid int) int {
	if uint(tid) >= uint(len(r.shards)) {
		return 0
	}
	return tid
}

// Retire quarantines the n-word extent at a, stamped with stamp, on thread
// tid's limbo list. stamp must be ≥ the commit timestamp of the
// transaction that unlinked the extent (the watermark comparison is
// against it); callers obtain it from Thread.RetireStamp. Every
// CollectEvery retires the shard runs an amortized collection pass.
//
// The steady-state fast path performs no allocation: the limbo slice and
// the heap free list both retain their capacity across collect/reuse
// cycles (pinned by TestRetireSteadyStateAllocates0).
func (r *Reclaimer) Retire(tid int, a heap.Addr, n int, stamp uint64) {
	failpoint.Eval(failpoint.ReclaimRetire)
	s := &r.shards[r.clamp(tid)]
	s.mu.Lock()
	s.limbo = append(s.limbo, extent{addr: a, n: uint32(n), stamp: stamp})
	s.retires.Add(1)
	s.sinceCollect++
	if s.sinceCollect >= r.collectEvery {
		s.sinceCollect = 0
		r.collectLocked(s)
	}
	s.mu.Unlock()
}

// collectLocked runs one collection pass over s (s.mu held): sample the
// watermark once, clear every extent whose stamp the epoch covers, and
// compact the survivors in place (no allocation). Cleared extents of
// classable size stock the shard's ready stacks for AllocLocal; oversized
// ones go straight to the heap free list.
func (r *Reclaimer) collectLocked(s *shard) {
	// An empty shard is a no-op, not a collection: threads that never
	// retire (or a final drain over already-clean shards) report 0 passes.
	if len(s.limbo) == 0 {
		return
	}
	s.collects.Add(1)
	oldestBegin, anyActive := r.oldest()
	kept := s.limbo[:0]
	for _, e := range s.limbo {
		if canFree(e.stamp, oldestBegin, anyActive) {
			failpoint.Eval(failpoint.ReclaimCollect)
			if r.poison {
				// Atomic stores: the sentinel may still race the *loads* of
				// a doomed transaction whose reads will never validate; the
				// values it sees are garbage either way, but the stores
				// must be race-clean.
				for i := 0; i < int(e.n); i++ {
					r.h.AtomicStore(e.addr+heap.Addr(i), Poison)
				}
			}
			if int(e.n) <= maxClass {
				s.ready[e.n] = append(s.ready[e.n], e.addr)
			} else {
				r.h.Free(e.addr, int(e.n))
			}
			s.freed.Add(1)
		} else {
			kept = append(kept, e)
		}
	}
	s.limbo = kept
}

// Collect runs one collection pass over thread tid's shard and returns how
// many extents it freed.
func (r *Reclaimer) Collect(tid int) uint64 {
	s := &r.shards[r.clamp(tid)]
	s.mu.Lock()
	before := s.freed.Load()
	s.sinceCollect = 0
	r.collectLocked(s)
	freed := s.freed.Load() - before
	s.mu.Unlock()
	return freed
}

// Drain runs a collection pass over every shard and returns the shards'
// ready stocks to the heap free list (tests and end-of-run accounting).
// Extents whose epoch has not yet arrived remain quarantined; Drain returns
// the number of extents cleared by this call's collection passes. Extents
// buffered in per-thread fronts are NOT visible to Drain — each owner
// thread must Flush before the drain for full accounting.
func (r *Reclaimer) Drain() uint64 {
	var freed uint64
	for i := range r.shards {
		freed += r.Collect(i)
		s := &r.shards[i]
		s.mu.Lock()
		for n := 1; n <= maxClass; n++ {
			for _, a := range s.ready[n] {
				r.h.Free(a, n)
			}
			s.ready[n] = s.ready[n][:0]
		}
		s.mu.Unlock()
	}
	return freed
}

// RetireLocal is Local(tid).Retire: buffered on thread tid's owner-only
// front, published in localBatch batches. Callers must respect front
// ownership — at most one goroutine uses each tid, and Flush(tid) must run
// (from the owner, or after it provably finished) before Drain can see
// these extents.
func (r *Reclaimer) RetireLocal(tid int, a heap.Addr, n int, stamp uint64) {
	r.Local(tid).Retire(a, n, stamp)
}

// AllocLocal is Local(tid).Alloc: an n-word epoch-cleared extent from
// thread tid's front, refilling from the shard's ready stock (one lock
// round-trip per localBatch extents) when the front runs dry.
func (r *Reclaimer) AllocLocal(tid, n int) (heap.Addr, bool) {
	return r.Local(tid).Alloc(n)
}

// Flush is Local(tid).Flush: publish everything buffered in thread tid's
// front so Drain and Stats see the thread's full state.
func (r *Reclaimer) Flush(tid int) {
	r.Local(tid).Flush()
}

// Stats aggregates the per-shard counters.
func (r *Reclaimer) Stats() Stats {
	var st Stats
	for i := range r.shards {
		s := &r.shards[i]
		st.Retires += s.retires.Load()
		st.Collects += s.collects.Load()
		st.Freed += s.freed.Load()
		s.mu.Lock()
		st.Limbo += uint64(len(s.limbo))
		s.mu.Unlock()
	}
	return st
}
