//go:build !privstm_reclaim_race

package reclaim

import (
	"testing"

	"privstm/internal/sched"
)

// TestReclaimExplorationCorpus exhaustively enumerates the
// retire→collect→reuse schedule space on the production epoch check: no
// interleaving may poison, free, or reuse an extent while a transaction
// that began before its retire stamp is still incomplete. This is the
// corpus half of the rediscovery pair — build with
// -tags privstm_reclaim_race for the half that must FAIL
// (TestReclaimRaceCaught in explore_race_test.go; make explore-reclaim
// runs both).
func TestReclaimExplorationCorpus(t *testing.T) {
	const max = 2000
	res, n := sched.ExploreDFS(sched.Config{}, max, reclaimExploreProgram)
	if res != nil {
		t.Fatalf("schedule violation on the production epoch check (trace %v): %v", res.Trace, res.Err)
	}
	if n == 0 {
		t.Fatal("DFS explored nothing")
	}
	if n >= max {
		t.Fatalf("schedule space not exhausted in %d schedules; the corpus claim needs full enumeration", max)
	}
	t.Logf("enumerated all %d schedules clean", n)
}
