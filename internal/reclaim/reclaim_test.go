package reclaim

import (
	"sync/atomic"
	"testing"

	"privstm/internal/heap"
)

// epochSource is a settable watermark stand-in: ts is the oldest incomplete
// begin, any whether one exists. Atomic so tests may move it while a
// collector runs.
type epochSource struct {
	ts  atomic.Uint64
	any atomic.Bool
}

func (e *epochSource) oldest() (uint64, bool) { return e.ts.Load(), e.any.Load() }

func (e *epochSource) set(ts uint64, any bool) {
	e.ts.Store(ts)
	e.any.Store(any)
}

func newTestReclaimer(cfg Config) (*heap.Heap, *epochSource, *Reclaimer) {
	h := heap.New(1 << 12)
	e := &epochSource{}
	if cfg.Threads == 0 {
		cfg.Threads = 2
	}
	return h, e, New(h, e.oldest, cfg)
}

// TestRetireBlocksUntilEpoch is the core safety property in miniature: an
// extent retired at stamp R stays quarantined while a transaction with
// begin < R is incomplete, and frees once the watermark passes R.
func TestRetireBlocksUntilEpoch(t *testing.T) {
	h, e, r := newTestReclaimer(Config{CollectEvery: 1 << 30})
	a := h.MustAlloc(2)

	e.set(5, true) // an incomplete transaction began at 5
	r.Retire(0, a, 2, 10)
	if freed := r.Drain(); freed != 0 {
		t.Fatalf("freed %d extents with oldest begin 5 < stamp 10, want 0", freed)
	}
	if st := r.Stats(); st.Limbo != 1 {
		t.Fatalf("limbo = %d, want 1", st.Limbo)
	}

	e.set(10, true) // the old transaction finished; oldest now began at 10
	if freed := r.Drain(); freed != 1 {
		t.Fatalf("freed %d extents with oldest begin 10 ≥ stamp 10, want 1", freed)
	}
	if st := r.Stats(); st.Limbo != 0 || st.Freed != 1 {
		t.Fatalf("stats after drain: %+v", st)
	}
}

// TestQuiescentFreesImmediately: with nothing in flight the stamp is
// irrelevant — the extent frees on the first pass.
func TestQuiescentFreesImmediately(t *testing.T) {
	h, e, r := newTestReclaimer(Config{CollectEvery: 1 << 30})
	a := h.MustAlloc(3)
	e.set(0, false)
	r.Retire(1, a, 3, 1<<40)
	if freed := r.Drain(); freed != 1 {
		t.Fatalf("freed %d, want 1 (no incomplete transactions)", freed)
	}
}

// TestAmortizedCollect: the CollectEvery'th retire on a shard runs a pass
// without any explicit Drain.
func TestAmortizedCollect(t *testing.T) {
	h, e, r := newTestReclaimer(Config{CollectEvery: 2})
	e.set(0, false)
	a := h.MustAlloc(1)
	b := h.MustAlloc(1)
	r.Retire(0, a, 1, 1)
	if st := r.Stats(); st.Freed != 0 {
		t.Fatalf("freed %d after 1 retire (CollectEvery=2), want 0", st.Freed)
	}
	r.Retire(0, b, 1, 1)
	if st := r.Stats(); st.Freed != 2 || st.Limbo != 0 {
		t.Fatalf("after amortized pass: %+v, want Freed=2 Limbo=0", st)
	}
}

// TestPoisonSentinel: poison mode leaves quarantined words untouched (an
// old-snapshot reader may still legitimately load them), writes the
// sentinel the moment the epoch check releases the extent, and reuse hands
// the words back zeroed.
func TestPoisonSentinel(t *testing.T) {
	h, e, r := newTestReclaimer(Config{CollectEvery: 1 << 30, Poison: true})
	a := h.MustAlloc(2)
	h.AtomicStore(a, 42)
	h.AtomicStore(a+1, 43)

	e.set(5, true) // a pre-retire transaction is still incomplete
	r.Retire(0, a, 2, 10)
	r.Drain() // blocked: quarantined words must keep their committed values
	if w := h.AtomicLoad(a); w != 42 {
		t.Fatalf("quarantined word = %#x, want committed value 42 (poison may not land before the epoch)", w)
	}

	e.set(0, false)
	if freed := r.Drain(); freed != 1 {
		t.Fatalf("freed %d, want 1", freed)
	}
	for i := heap.Addr(0); i < 2; i++ {
		if w := h.AtomicLoad(a + i); w != Poison {
			t.Fatalf("word %d = %#x after collect, want poison %#x", i, w, Poison)
		}
	}
	got := h.MustAlloc(2)
	if got != a {
		t.Fatalf("realloc = %d, want recycled extent %d", got, a)
	}
	for i := heap.Addr(0); i < 2; i++ {
		if w := h.AtomicLoad(a + i); w != 0 {
			t.Fatalf("word %d = %#x after reuse, want 0", i, w)
		}
	}
}

// TestHeapExactFitReuse: the heap free list recycles exact sizes and falls
// back to the bump pointer for sizes it has never seen.
func TestHeapExactFitReuse(t *testing.T) {
	h, e, r := newTestReclaimer(Config{CollectEvery: 1})
	e.set(0, false)
	a := h.MustAlloc(4)
	before := h.InUse()
	r.Retire(0, a, 4, 1)
	// The amortized collect stocked the shard; Drain moves the stock onto
	// the heap free list, where plain MustAlloc can see it.
	r.Drain()
	if got := h.MustAlloc(3); got == a {
		t.Fatalf("3-word alloc reused the 4-word extent %d", got)
	}
	if got := h.MustAlloc(4); got != a {
		t.Fatalf("4-word alloc = %d, want recycled %d", got, a)
	}
	hs := h.Stats()
	if hs.ReusedWords != 4 || hs.FreedWords != 4 || hs.FreeWords != 0 {
		t.Fatalf("heap stats %+v, want Reused=4 Freed=4 Free=0", hs)
	}
	if h.InUse() != before+3 {
		t.Fatalf("bump advanced %d words, want 3 (only the non-matching alloc)", h.InUse()-before)
	}
}

// TestRetireSteadyStateAllocates0 pins the acceptance criterion: the
// retire→collect→reuse cycle — through the owner-only front path the STM
// threads use — allocates nothing once slice capacities have warmed up.
func TestRetireSteadyStateAllocates0(t *testing.T) {
	h, e, r := newTestReclaimer(Config{CollectEvery: 4})
	e.set(0, false)
	cycle := func() {
		a, ok := r.AllocLocal(0, 2)
		if !ok {
			a = h.MustAlloc(2)
		}
		r.RetireLocal(0, a, 2, 1)
	}
	// Warm up every slice: front pending/ready, shard limbo/ready stacks.
	for i := 0; i < 64; i++ {
		cycle()
	}
	if n := testing.AllocsPerRun(1000, cycle); n != 0 {
		t.Fatalf("steady-state retire cycle allocated %v times per run, want 0", n)
	}
}

// TestLocalFrontFlush: extents buffered on a thread's front are invisible
// to cross-thread accounting until Flush publishes them; an extent whose
// epoch has not arrived lands quarantined on the shard (publish's
// direct-clear must not release it), and a later Drain frees it once the
// watermark passes.
func TestLocalFrontFlush(t *testing.T) {
	h, e, r := newTestReclaimer(Config{CollectEvery: 1 << 30})
	e.set(5, true) // an incomplete transaction began at 5
	a := h.MustAlloc(2)
	r.RetireLocal(0, a, 2, 10)
	if st := r.Stats(); st.Retires != 0 || st.Limbo != 0 {
		t.Fatalf("front-buffered retire already visible: %+v", st)
	}
	if freed := r.Drain(); freed != 0 {
		t.Fatalf("Drain saw %d extents that were never published", freed)
	}
	r.Flush(0)
	if st := r.Stats(); st.Retires != 1 || st.Limbo != 1 || st.Freed != 0 {
		t.Fatalf("after Flush: %+v, want Retires=1 Limbo=1 Freed=0", st)
	}
	e.set(10, true) // the old transaction finished
	if freed := r.Drain(); freed != 1 {
		t.Fatalf("Drain freed %d, want 1", freed)
	}
	if got := h.MustAlloc(2); got != a {
		t.Fatalf("realloc = %d, want drained extent %d", got, a)
	}
}

// TestPublishDirectClear: a quiescent publish clears the whole batch into
// the owner's ready cache without the extents ever visiting the shard's
// limbo list — Alloc serves them back immediately.
func TestPublishDirectClear(t *testing.T) {
	h, e, r := newTestReclaimer(Config{CollectEvery: 1 << 30})
	e.set(0, false)
	a := h.MustAlloc(2)
	r.RetireLocal(0, a, 2, 1)
	r.Flush(0)
	if st := r.Stats(); st.Retires != 1 || st.Freed != 1 || st.Limbo != 0 {
		t.Fatalf("after quiescent Flush: %+v, want Retires=1 Freed=1 Limbo=0", st)
	}
	got, ok := r.AllocLocal(0, 2)
	if !ok || got != a {
		t.Fatalf("AllocLocal = %d,%v, want direct-cleared extent %d", got, ok, a)
	}
}

// TestAllocLocalRecyclesOwnRetires: the owner front's alloc path serves the
// thread's own epoch-cleared retires without any Drain, and the words come
// back unzeroed (malloc semantics — documented on AllocLocal).
func TestAllocLocalRecyclesOwnRetires(t *testing.T) {
	h, e, r := newTestReclaimer(Config{CollectEvery: 1})
	e.set(0, false)
	addrs := make(map[heap.Addr]bool)
	// localBatch retires force a publish + collect, stocking the shard.
	for i := 0; i < 16; i++ {
		a := h.MustAlloc(2)
		h.AtomicStore(a, 7) // dirty the extent
		addrs[a] = true
		r.RetireLocal(0, a, 2, 1)
	}
	got, ok := r.AllocLocal(0, 2)
	if !ok {
		t.Fatal("AllocLocal found nothing after a published batch cleared")
	}
	if !addrs[got] {
		t.Fatalf("AllocLocal returned %d, not one of the retired extents", got)
	}
	if w := h.AtomicLoad(got); w != 7 {
		t.Fatalf("recycled word = %#x, want the stale 7 (AllocLocal does not zero)", w)
	}
	// A size switch returns the stale cache instead of stranding it.
	if _, ok := r.AllocLocal(0, 3); ok {
		t.Fatal("AllocLocal(3) succeeded with only 2-word extents stocked")
	}
	r.Flush(0)
	if freed := r.Drain(); freed != 0 {
		t.Fatalf("everything was already cleared; Drain freed %d more", freed)
	}
	if hs := h.Stats(); hs.FreeWords == 0 {
		t.Fatal("drained stock never reached the heap free list")
	}
}

func BenchmarkRetireCollectReuse(b *testing.B) {
	h, e, r := newTestReclaimer(Config{})
	e.set(0, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, ok := r.AllocLocal(0, 2)
		if !ok {
			a = h.MustAlloc(2)
		}
		r.RetireLocal(0, a, 2, 1)
	}
}
