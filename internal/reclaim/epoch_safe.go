//go:build !privstm_reclaim_race

// epoch_safe.go is the production epoch check. Building with
// -tags privstm_reclaim_race substitutes epoch_race.go, which removes the
// check entirely so the schedule explorer can demonstrate catching the
// resulting use-after-reclaim as a positive control (the same build-tag
// pattern as txnlist's slots_safe.go / slots_race.go).

package reclaim

// canFree reports whether an extent stamped at stamp may be physically
// reused. Safe exactly when no incomplete transaction began before stamp:
// a transaction beginning at or after the unlink's commit timestamp R
// (stamp ≥ R) observes the unlink in its begin snapshot and can never
// transactionally load the extent's address again — while a transaction
// that began *before* R may consistently hold the pre-unlink pointer, and
// a plain reuse write would bypass its orec-based validation entirely.
// oldestBegin is a lower bound (watermark), so the test can only err by
// keeping the extent quarantined longer — the safe direction
// (CORRECTNESS.md §14).
func canFree(stamp, oldestBegin uint64, anyActive bool) bool {
	return !anyActive || oldestBegin >= stamp
}
