// Package heap implements the simulated transactional memory that stands in
// for the raw process address space of the paper's C implementation.
//
// The paper's STM is word-based: every transactional load/store targets a
// machine word, and conflict detection hashes the word's address into a
// table of ownership records (§II-A). We reproduce that model with a flat
// array of 64-bit words indexed by Addr. Transactional code accesses words
// with sync/atomic (Go requires it when racing instrumented accesses are
// possible); *privatized* data is accessed with plain loads and stores —
// the zero-overhead access the paper identifies as the whole point of
// privatization.
package heap

import (
	"errors"
	"fmt"
	"sync/atomic"

	"privstm/internal/failpoint"
	"privstm/internal/spin"
)

// ErrOutOfMemory is the sentinel wrapped by Alloc's exhaustion error;
// long-running workloads match it with errors.Is to distinguish running out
// of address space (expected when reclamation is ablated away) from bugs.
var ErrOutOfMemory = errors.New("heap: out of memory")

// Addr is the address of one word in a Heap. Address 0 is reserved as the
// nil address and is never returned by Alloc.
type Addr uint64

// Nil is the reserved null address.
const Nil Addr = 0

// Word is the unit of transactional access.
type Word uint64

// maxSizeClass is the largest extent size (in words) with a dedicated
// exact-fit free stack; larger extents share one overflow list. Every
// workload node in this repository is ≤ 4 words, so the classed stacks
// cover the hot path with an O(1) pop.
const maxSizeClass = 16

// extent is one freed run of words parked on the overflow free list.
type extent struct {
	base Addr
	n    int
}

// Heap is a flat, fixed-size word-addressed memory.
//
// Transactional accesses must use AtomicLoad/AtomicStore/CAS; accesses to
// data known to be private may use Load/Store. Mixing the two on the same
// word concurrently is a data race — exactly the race the privatization
// techniques in this repository exist to prevent.
type Heap struct {
	words []uint64
	next  atomic.Uint64 // bump pointer for Alloc

	// Free-list state. Freed extents are recycled exact-size only (no
	// splitting or coalescing): the workloads allocate fixed-size nodes, so
	// exact fit is both O(1) and fragmentation-free. freeWords fronts the
	// lock: Alloc skips the free list entirely (one atomic load) while
	// nothing has ever been freed, keeping the bump path as cheap as before
	// reclamation existed.
	freeMu    spin.Mutex
	freeClass [maxSizeClass + 1][]Addr // [n] → stack of freed n-word extents
	freeBig   []extent                 // extents larger than maxSizeClass
	freeWords atomic.Uint64            // words currently parked on the free list

	freedWords  atomic.Uint64 // cumulative words passed to Free
	reusedWords atomic.Uint64 // cumulative words re-handed-out by Alloc
}

// Stats is a point-in-time snapshot of the heap's allocation accounting.
type Stats struct {
	CapWords    int    // heap capacity in words
	BumpWords   uint64 // words handed out by the bump pointer (incl. the nil word)
	FreedWords  uint64 // cumulative words returned with Free
	ReusedWords uint64 // cumulative words Alloc served from the free list
	FreeWords   uint64 // words currently parked on the free list
}

// Stats snapshots the allocation counters. Counters are monotone and
// individually atomic; a snapshot taken while allocators run is internally
// consistent enough for reporting (exact after workers join).
func (h *Heap) Stats() Stats {
	return Stats{
		CapWords:    len(h.words),
		BumpWords:   h.next.Load(),
		FreedWords:  h.freedWords.Load(),
		ReusedWords: h.reusedWords.Load(),
		FreeWords:   h.freeWords.Load(),
	}
}

// New creates a heap with the given number of words (minimum 2: the nil
// word plus one usable word).
func New(words int) *Heap {
	if words < 2 {
		words = 2
	}
	h := &Heap{words: make([]uint64, words)}
	h.next.Store(1) // keep address 0 as nil
	return h
}

// Size returns the heap capacity in words.
func (h *Heap) Size() int { return len(h.words) }

// Alloc reserves n contiguous zeroed words and returns the address of the
// first, preferring an exact-size extent from the free list over fresh bump
// space. Free list entries come from Free, which in this repository is
// called only by the epoch-based reclaimer (internal/reclaim) — so by the
// time Alloc re-hands an extent out, no incomplete transaction can still
// reach it (CORRECTNESS.md §14).
func (h *Heap) Alloc(n int) (Addr, error) {
	if n <= 0 {
		return Nil, fmt.Errorf("heap: Alloc(%d): non-positive size", n)
	}
	if h.freeWords.Load() > 0 {
		if a, ok := h.popFree(n); ok {
			failpoint.Eval(failpoint.HeapReuse)
			// Zero with atomic stores: a doomed reader that captured the
			// extent's address before it was retired may still issue
			// instrumented loads against it (its validation will reject
			// them, but the loads themselves must stay race-clean).
			for i := 0; i < n; i++ {
				atomic.StoreUint64(&h.words[a+Addr(i)], 0)
			}
			h.reusedWords.Add(uint64(n))
			return a, nil
		}
	}
	for {
		base := h.next.Load()
		if base+uint64(n) > uint64(len(h.words)) {
			return Nil, fmt.Errorf("%w (cap %d words, want %d more)", ErrOutOfMemory, len(h.words), n)
		}
		if h.next.CompareAndSwap(base, base+uint64(n)) {
			return Addr(base), nil
		}
	}
}

// popFree removes and returns an exact-size free extent, if one exists.
func (h *Heap) popFree(n int) (Addr, bool) {
	h.freeMu.Lock()
	defer h.freeMu.Unlock()
	if n <= maxSizeClass {
		stack := h.freeClass[n]
		if len(stack) == 0 {
			return Nil, false
		}
		a := stack[len(stack)-1]
		h.freeClass[n] = stack[:len(stack)-1]
		h.freeWords.Add(^uint64(uint64(n) - 1)) // subtract n
		return a, true
	}
	for i, e := range h.freeBig {
		if e.n == n {
			h.freeBig[i] = h.freeBig[len(h.freeBig)-1]
			h.freeBig = h.freeBig[:len(h.freeBig)-1]
			h.freeWords.Add(^uint64(uint64(n) - 1))
			return e.base, true
		}
	}
	return Nil, false
}

// Free returns the n-word extent at a to the free list for reuse by a later
// Alloc. The caller must guarantee that no incomplete transaction can still
// reach the extent — in this repository that proof is the reclaimer's epoch
// check (internal/reclaim); workloads must never call Free directly on
// addresses that were ever shared. Freeing out-of-range extents panics:
// a wild free is a bug in the caller, not a recoverable condition.
func (h *Heap) Free(a Addr, n int) {
	if n <= 0 || uint64(a) == 0 || uint64(a)+uint64(n) > h.next.Load() {
		panic(fmt.Sprintf("heap: Free(%d, %d): extent not allocated (bump=%d)", a, n, h.next.Load()))
	}
	h.freeMu.Lock()
	if n <= maxSizeClass {
		h.freeClass[n] = append(h.freeClass[n], a)
	} else {
		h.freeBig = append(h.freeBig, extent{base: a, n: n})
	}
	h.freeMu.Unlock()
	h.freeWords.Add(uint64(n))
	h.freedWords.Add(uint64(n))
}

// MustAlloc is Alloc that panics on exhaustion; used by workloads whose
// sizing is known up front.
func (h *Heap) MustAlloc(n int) Addr {
	a, err := h.Alloc(n)
	if err != nil {
		panic(err)
	}
	return a
}

// InUse returns the number of words the bump pointer has handed out so far
// (including the reserved nil word). Freed-and-parked words still count:
// InUse measures address-space consumption, not live data.
func (h *Heap) InUse() int { return int(h.next.Load()) }

// Contains reports whether a addresses a word inside the heap. The sandbox
// checkpoints (core.Thread.CheckAddr) use it to pre-validate addresses
// computed from transactionally-read data before indexing the word array.
func (h *Heap) Contains(a Addr) bool { return uint64(a) < uint64(len(h.words)) }

// AtomicLoad reads a word with atomic (acquire) semantics. Use for all
// transactional reads.
func (h *Heap) AtomicLoad(a Addr) Word {
	return Word(atomic.LoadUint64(&h.words[a]))
}

// AtomicStore writes a word with atomic (release) semantics. Use for all
// transactional writes, undo-log rollbacks and redo-log write-backs.
func (h *Heap) AtomicStore(a Addr, w Word) {
	atomic.StoreUint64(&h.words[a], uint64(w))
}

// AtomicAdd atomically adds d to the word at a and returns the new value.
// It is the commit-path primitive for commuting (delta) updates — counter
// words maintained by the semantic layer (internal/tds): concurrent commits
// apply their deltas in any order without conflicting. Negative deltas are
// expressed in two's complement (Word arithmetic wraps).
func (h *Heap) AtomicAdd(a Addr, d Word) Word {
	return Word(atomic.AddUint64(&h.words[a], uint64(d)))
}

// Load reads a word with plain semantics. Only correct for data the caller
// privately owns (e.g. after privatization).
//
//stmlint:ignore mixedatomic zero-overhead access to privatized words is the point of the paper; callers must guarantee privacy
func (h *Heap) Load(a Addr) Word { return Word(h.words[a]) }

// Store writes a word with plain semantics. Only correct for privately
// owned data.
//
//stmlint:ignore mixedatomic zero-overhead access to privatized words is the point of the paper; callers must guarantee privacy
func (h *Heap) Store(a Addr, w Word) { h.words[a] = uint64(w) }
