// Package heap implements the simulated transactional memory that stands in
// for the raw process address space of the paper's C implementation.
//
// The paper's STM is word-based: every transactional load/store targets a
// machine word, and conflict detection hashes the word's address into a
// table of ownership records (§II-A). We reproduce that model with a flat
// array of 64-bit words indexed by Addr. Transactional code accesses words
// with sync/atomic (Go requires it when racing instrumented accesses are
// possible); *privatized* data is accessed with plain loads and stores —
// the zero-overhead access the paper identifies as the whole point of
// privatization.
package heap

import (
	"fmt"
	"sync/atomic"
)

// Addr is the address of one word in a Heap. Address 0 is reserved as the
// nil address and is never returned by Alloc.
type Addr uint64

// Nil is the reserved null address.
const Nil Addr = 0

// Word is the unit of transactional access.
type Word uint64

// Heap is a flat, fixed-size word-addressed memory.
//
// Transactional accesses must use AtomicLoad/AtomicStore/CAS; accesses to
// data known to be private may use Load/Store. Mixing the two on the same
// word concurrently is a data race — exactly the race the privatization
// techniques in this repository exist to prevent.
type Heap struct {
	words []uint64
	next  atomic.Uint64 // bump pointer for Alloc
}

// New creates a heap with the given number of words (minimum 2: the nil
// word plus one usable word).
func New(words int) *Heap {
	if words < 2 {
		words = 2
	}
	h := &Heap{words: make([]uint64, words)}
	h.next.Store(1) // keep address 0 as nil
	return h
}

// Size returns the heap capacity in words.
func (h *Heap) Size() int { return len(h.words) }

// Alloc reserves n contiguous words and returns the address of the first.
// The words are zeroed (they were never handed out before). Alloc never
// reuses space; long-lived structures should manage free pools inside
// transactional memory (see internal/bench), which both matches what the
// paper's microbenchmarks do and sidesteps unsafe reclamation.
func (h *Heap) Alloc(n int) (Addr, error) {
	if n <= 0 {
		return Nil, fmt.Errorf("heap: Alloc(%d): non-positive size", n)
	}
	for {
		base := h.next.Load()
		if base+uint64(n) > uint64(len(h.words)) {
			return Nil, fmt.Errorf("heap: out of memory (cap %d words, want %d more)", len(h.words), n)
		}
		if h.next.CompareAndSwap(base, base+uint64(n)) {
			return Addr(base), nil
		}
	}
}

// MustAlloc is Alloc that panics on exhaustion; used by workloads whose
// sizing is known up front.
func (h *Heap) MustAlloc(n int) Addr {
	a, err := h.Alloc(n)
	if err != nil {
		panic(err)
	}
	return a
}

// InUse returns the number of words handed out so far (including the
// reserved nil word).
func (h *Heap) InUse() int { return int(h.next.Load()) }

// AtomicLoad reads a word with atomic (acquire) semantics. Use for all
// transactional reads.
func (h *Heap) AtomicLoad(a Addr) Word {
	return Word(atomic.LoadUint64(&h.words[a]))
}

// AtomicStore writes a word with atomic (release) semantics. Use for all
// transactional writes, undo-log rollbacks and redo-log write-backs.
func (h *Heap) AtomicStore(a Addr, w Word) {
	atomic.StoreUint64(&h.words[a], uint64(w))
}

// Load reads a word with plain semantics. Only correct for data the caller
// privately owns (e.g. after privatization).
//
//stmlint:ignore mixedatomic zero-overhead access to privatized words is the point of the paper; callers must guarantee privacy
func (h *Heap) Load(a Addr) Word { return Word(h.words[a]) }

// Store writes a word with plain semantics. Only correct for privately
// owned data.
//
//stmlint:ignore mixedatomic zero-overhead access to privatized words is the point of the paper; callers must guarantee privacy
func (h *Heap) Store(a Addr, w Word) { h.words[a] = uint64(w) }
