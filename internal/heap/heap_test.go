package heap

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocBasics(t *testing.T) {
	h := New(100)
	a, err := h.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if a == Nil {
		t.Fatal("Alloc returned the nil address")
	}
	b, err := h.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if b < a+10 {
		t.Errorf("allocations overlap: %d then %d", a, b)
	}
}

func TestAllocExhaustion(t *testing.T) {
	h := New(16)
	if _, err := h.Alloc(14); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(10); err == nil {
		t.Error("expected out-of-memory error")
	}
	// A smaller request that still fits must succeed.
	if _, err := h.Alloc(1); err != nil {
		t.Errorf("small alloc after failure: %v", err)
	}
}

func TestAllocRejectsNonPositive(t *testing.T) {
	h := New(16)
	if _, err := h.Alloc(0); err == nil {
		t.Error("Alloc(0) should fail")
	}
	if _, err := h.Alloc(-3); err == nil {
		t.Error("Alloc(-3) should fail")
	}
}

func TestAllocZeroed(t *testing.T) {
	h := New(64)
	a := h.MustAlloc(8)
	for i := Addr(0); i < 8; i++ {
		if h.Load(a+i) != 0 {
			t.Errorf("word %d not zeroed", i)
		}
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	h := New(256)
	a := h.MustAlloc(128)
	prop := func(off uint8, w uint64) bool {
		addr := a + Addr(off)%128
		h.Store(addr, Word(w))
		if h.Load(addr) != Word(w) {
			return false
		}
		h.AtomicStore(addr, Word(w)+1)
		return h.AtomicLoad(addr) == Word(w)+1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAlloc(t *testing.T) {
	h := New(1 << 16)
	const workers = 8
	const per = 100
	got := make([][]Addr, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				got[w] = append(got[w], h.MustAlloc(7))
			}
		}(w)
	}
	wg.Wait()
	// All allocations must be disjoint.
	seen := map[Addr]bool{}
	for _, as := range got {
		for _, a := range as {
			for i := Addr(0); i < 7; i++ {
				if seen[a+i] {
					t.Fatalf("word %d allocated twice", a+i)
				}
				seen[a+i] = true
			}
		}
	}
}

func TestMinimumSize(t *testing.T) {
	h := New(0)
	if h.Size() < 2 {
		t.Errorf("Size = %d, want ≥ 2", h.Size())
	}
	if h.InUse() != 1 {
		t.Errorf("InUse = %d, want 1 (nil word reserved)", h.InUse())
	}
}
