package priv

import (
	"sync"
	"sync/atomic"

	stm "privstm"
)

// PubConfig parameterizes the publication stressor.
//
// Publication is privatization's mirror image: a thread initializes data
// *privately* (plain stores, no instrumentation) and then publishes it with
// a single transactional pointer store. The paper does not solve the
// general publication problem (footnote 1) but states its solutions
// "support the intuitive publication-by-store idiom": any transaction that
// observes the published pointer must also observe the private
// initialization writes that preceded it.
type PubConfig struct {
	Algorithm  stm.Algorithm
	Publishers int
	Readers    int
	Iterations int
	// AtomicPrivate uses atomic stores for the publisher's private
	// initialization. As with Config.AtomicPrivate: the fence-complete
	// engines (Val, pvrBase/CAS/Store) are genuinely race-free with plain
	// stores because re-privatization fences out every covered reader,
	// while the validation-based engines (Ord, pvrWriterOnly invisible
	// mode, pvrHybrid invisible mode) discard — but physically perform —
	// doomed loads, as their TSO-hosted originals did.
	AtomicPrivate bool
}

// PubResult reports the observations.
type PubResult struct {
	// Torn counts transactional reads that reached a published node and
	// found it incompletely initialized.
	Torn int64
	// Published is the number of publish operations completed.
	Published int64
	// Observations is the number of reader transactions that saw a node.
	Observations int64
}

// RunPublication executes the stressor: each publisher repeatedly takes a
// node from its private pool, initializes three fields privately to one
// value, publishes it through a shared slot transactionally, and later
// un-publishes (re-privatizes) it; readers transactionally load the slot
// and verify the three fields agree.
func RunPublication(cfg PubConfig) (*PubResult, error) {
	if cfg.Publishers <= 0 {
		cfg.Publishers = 1
	}
	if cfg.Readers <= 0 {
		cfg.Readers = 2
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 500
	}
	s, err := stm.New(stm.Config{
		Algorithm:  cfg.Algorithm,
		HeapWords:  1 << 14,
		OrecCount:  1 << 8,
		MaxThreads: cfg.Publishers + cfg.Readers,
	})
	if err != nil {
		return nil, err
	}
	res := &PubResult{}
	slots := s.MustAlloc(cfg.Publishers)
	var stop atomic.Bool
	var wg sync.WaitGroup

	for r := 0; r < cfg.Readers; r++ {
		th := s.MustNewThread()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for p := 0; p < cfg.Publishers; p++ {
					slot := slots + stm.Addr(p)
					_ = th.Atomic(func(tx *stm.Tx) {
						n := tx.LoadAddr(slot)
						if n == stm.Nil {
							return
						}
						a, b, c := tx.Load(n), tx.Load(n+1), tx.Load(n+2)
						atomic.AddInt64(&res.Observations, 1)
						if a != b || b != c {
							atomic.AddInt64(&res.Torn, 1)
						}
					})
				}
			}
		}()
	}

	var pubWG sync.WaitGroup
	for p := 0; p < cfg.Publishers; p++ {
		th := s.MustNewThread()
		slot := slots + stm.Addr(p)
		node := s.MustAlloc(3)
		store := s.DirectStore
		if cfg.AtomicPrivate {
			store = s.AtomicStore
		}
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			v := stm.Word(1)
			for i := 0; i < cfg.Iterations; i++ {
				// Private initialization: uninstrumented stores. The node
				// is not reachable from shared memory yet (first round) or
				// has been re-privatized (later rounds).
				store(node, v)
				store(node+1, v)
				store(node+2, v)
				// Publish by store.
				_ = th.Atomic(func(tx *stm.Tx) { tx.StoreAddr(slot, node) })
				atomic.AddInt64(&res.Published, 1)
				// Privatize it back (transparent privatization!) so the
				// next round's plain re-initialization is legal.
				_ = th.Atomic(func(tx *stm.Tx) { tx.StoreAddr(slot, stm.Nil) })
				v += 3
			}
		}()
	}
	pubWG.Wait()
	stop.Store(true)
	wg.Wait()
	return res, nil
}
