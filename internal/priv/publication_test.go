package priv

import (
	"testing"

	stm "privstm"
)

// TestPublicationByStore verifies the idiom the paper's footnote promises:
// a reader that observes the published pointer observes the private
// initialization too, for every privatization-safe algorithm. The
// *un*-publish half of each cycle is itself a privatization, so this also
// stresses fences from a second angle.
func TestPublicationByStore(t *testing.T) {
	safe := append([]stm.Algorithm{stm.OrdQueue},
		stm.Ord, stm.Val, stm.PVRBase, stm.PVRCAS, stm.PVRStore, stm.PVRWriterOnly, stm.PVRHybrid)
	for _, alg := range safe {
		t.Run(alg.String(), func(t *testing.T) {
			res, err := RunPublication(PubConfig{
				Algorithm:  alg,
				Publishers: 2,
				Readers:    2,
				Iterations: 300,
				AtomicPrivate: alg == stm.Ord || alg == stm.OrdQueue ||
					alg == stm.PVRWriterOnly || alg == stm.PVRHybrid,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%v: published=%d observations=%d torn=%d",
				alg, res.Published, res.Observations, res.Torn)
			if res.Torn != 0 {
				t.Errorf("%v: %d torn publications observed", alg, res.Torn)
			}
			if res.Published != 600 {
				t.Errorf("published = %d, want 600", res.Published)
			}
		})
	}
}
