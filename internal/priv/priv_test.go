package priv

import (
	"testing"

	stm "privstm"
)

// safePlain lists the algorithms whose privatization fences make the
// privatizer's plain (uninstrumented) accesses genuinely race-free; these
// run with plain private access, so `go test -race` doubles as a proof.
var safePlain = []stm.Algorithm{
	stm.Val, stm.PVRBase, stm.PVRCAS, stm.PVRStore,
}

// safeAtomic lists algorithms that are logically privatization-safe but —
// like the original systems they model, which rely on TSO hardware —
// physically overlap a doomed transaction's (discarded) loads with private
// stores: Ord relies on incremental validation rather than fences, and
// pvrWriterOnly/pvrHybrid fall back to validation for read-only or
// small-read-set transactions. Their checkers use atomic private access to
// keep the race detector out of the experiment; the logical invariants
// still must hold.
var safeAtomic = []stm.Algorithm{stm.Ord, stm.OrdQueue, stm.PVRWriterOnly, stm.PVRHybrid}

func testCfg(alg stm.Algorithm, atomicPriv bool) Config {
	return Config{
		Algorithm:     alg,
		Nodes:         24,
		Readers:       3,
		Iterations:    150,
		AtomicPrivate: atomicPriv,
		TornWindow:    true,
	}
}

func TestPrivatizationSafeEngines(t *testing.T) {
	for _, alg := range safePlain {
		t.Run(alg.String(), func(t *testing.T) {
			res, err := Run(testCfg(alg, false))
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%v: %v", alg, res)
			if !res.Clean() {
				t.Errorf("privatization violation under %v: %v", alg, res)
			}
			if res.Privatizations == 0 {
				t.Error("stressor made no progress")
			}
		})
	}
}

func TestPrivatizationSafeOrderedEngines(t *testing.T) {
	for _, alg := range safeAtomic {
		t.Run(alg.String(), func(t *testing.T) {
			res, err := Run(testCfg(alg, true))
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%v: %v", alg, res)
			if !res.Clean() {
				t.Errorf("privatization violation under %v: %v", alg, res)
			}
		})
	}
}

// TestTL2Baseline runs the stressor against the privatization-unsafe
// baseline. Violations are *possible* but scheduling-dependent, so the test
// only reports them; it demonstrates what the safe engines prevent.
func TestTL2Baseline(t *testing.T) {
	res, err := Run(testCfg(stm.TL2, true))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("TL2 (expected to be unsafe): %v", res)
	if !res.Clean() {
		t.Logf("TL2 exhibited the privatization problem, as the paper describes")
	}
}

// TestPrivatizationSafeWithAblations re-runs the safety assertions under
// the pre-optimization configuration — the paper's spin-locked central
// list and snapshot extension disabled — so the commit-path optimizations
// can be A/B-compared without losing the safety net on either side.
func TestPrivatizationSafeWithAblations(t *testing.T) {
	run := func(alg stm.Algorithm, atomicPriv bool) {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := testCfg(alg, atomicPriv)
			cfg.Tracker = stm.TrackerList
			cfg.DisableExtension = true
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%v+list+noextend: %v", alg, res)
			if !res.Clean() {
				t.Errorf("privatization violation under %v with ablations: %v", alg, res)
			}
		})
	}
	for _, alg := range safePlain {
		run(alg, false)
	}
	for _, alg := range safeAtomic {
		run(alg, true)
	}
}

// TestPrivatizationSafeWithExtensions re-runs the safety assertions with
// the two future-work extensions enabled: the lock-free scan tracker and
// the commit-time fence-threshold cap. Both change *when* fences trigger
// and wait, never whether a needed fence is skipped.
func TestPrivatizationSafeWithExtensions(t *testing.T) {
	for _, alg := range safePlain {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := testCfg(alg, false)
			cfg.ScanTracker = true
			cfg.CapFenceAtCommit = true
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%v+scan+cap: %v", alg, res)
			if !res.Clean() {
				t.Errorf("privatization violation under %v with extensions: %v", alg, res)
			}
		})
	}
	for _, alg := range safeAtomic {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := testCfg(alg, true)
			cfg.ScanTracker = true
			cfg.CapFenceAtCommit = true
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%v+scan+cap: %v", alg, res)
			if !res.Clean() {
				t.Errorf("privatization violation under %v with extensions: %v", alg, res)
			}
		})
	}
}

// TestPrivatizationSafeWithSoALayout re-runs the safety assertions under
// the structure-of-arrays orec layout (with the hint cache at its default,
// on). The layout moves the metadata words to different cache lines but
// must not change any protocol outcome, so every safe engine has to stay
// clean under plain or atomic private access exactly as in the AoS runs.
func TestPrivatizationSafeWithSoALayout(t *testing.T) {
	run := func(alg stm.Algorithm, atomicPriv bool) {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := testCfg(alg, atomicPriv)
			cfg.OrecLayout = stm.OrecLayoutSoA
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%v+soa: %v", alg, res)
			if !res.Clean() {
				t.Errorf("privatization violation under %v with SoA layout: %v", alg, res)
			}
		})
	}
	for _, alg := range safePlain {
		run(alg, false)
	}
	for _, alg := range safeAtomic {
		run(alg, true)
	}
}

// TestPrivatizationSafeWithoutHintCache is the hint-cache ablation: the
// cache only elides provably redundant updates, so turning it off must not
// change safety either (and a violation *with* the cache but not without it
// would point straight at an unsound elision).
func TestPrivatizationSafeWithoutHintCache(t *testing.T) {
	run := func(alg stm.Algorithm, atomicPriv bool) {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := testCfg(alg, atomicPriv)
			cfg.DisableHintCache = true
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%v+nohintcache: %v", alg, res)
			if !res.Clean() {
				t.Errorf("privatization violation under %v without hint cache: %v", alg, res)
			}
		})
	}
	for _, alg := range safePlain {
		run(alg, false)
	}
	for _, alg := range safeAtomic {
		run(alg, true)
	}
}
