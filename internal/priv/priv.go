// Package priv implements a stress checker for the privatization problem of
// the paper's Figure 1: a privatizer thread transactionally truncates a
// shared linked list and then processes the detached nodes without any
// instrumentation, while non-privatizer threads transactionally search and
// modify nodes of the same list.
//
// Every node carries a pair of mirror fields (A, B) that all writers —
// transactional and private — always update together to the same value.
// The checker therefore detects both halves of the privatization problem:
//
//   - Delayed cleanup: the privatizer reads A ≠ B on a privatized node,
//     because a doomed transaction has not yet undone its in-place writes,
//     or a committed transaction's redo write-back is still in flight.
//
//   - Doomed transactions: a transaction body observes A ≠ B, because the
//     privatizer's uninstrumented writes raced with its reads after it was
//     doomed.
//
// Under a privatization-safe algorithm both counters must be zero; under
// the TL2 baseline violations are possible (and demonstrate the problem).
package priv

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	stm "privstm"
)

// Node field offsets within a 4-word node.
const (
	fNext = 0 // address of next node (stm.Nil terminates)
	fVal  = 1 // payload key
	fA    = 2 // mirror field A
	fB    = 3 // mirror field B
	nodeW = 4
)

// Config parameterizes a stress run.
type Config struct {
	Algorithm stm.Algorithm
	// Nodes is the length of the shared list.
	Nodes int
	// Readers is the number of non-privatizer threads.
	Readers int
	// Iterations is the number of privatize/process/republish cycles.
	Iterations int
	// TornWindow widens the race windows: workers yield the processor
	// between accesses to the two mirror fields, both transactionally and
	// in the privatizer's private phase. Safe algorithms must stay clean
	// even so; the TL2 baseline then exhibits violations much more often.
	TornWindow bool
	// Tracker, ScanTracker, DisableExtension and CapFenceAtCommit select
	// the corresponding runtime variants; the safety assertions must hold
	// regardless of which combination is configured.
	Tracker          stm.TrackerKind
	ScanTracker      bool
	DisableExtension bool
	CapFenceAtCommit bool
	// OrecLayout selects the orec-table memory layout; the safety
	// assertions are layout-independent.
	OrecLayout stm.OrecLayout
	// DisableHintCache turns off the thread-local orec hint cache.
	DisableHintCache bool
	// AtomicPrivate makes the privatizer's "uninstrumented" accesses use
	// atomic loads/stores. The fence-based algorithms are race-free with
	// plain accesses (the interesting property!); the TL2 baseline and the
	// strict-ordering schemes physically race by design — the original
	// systems rely on TSO hardware — so their checkers use atomic access
	// to keep Go's race detector out of the experiment while still
	// detecting every logical violation.
	AtomicPrivate bool
}

// Result reports what the stressor observed.
type Result struct {
	// DelayedCleanup counts privatizer observations of A ≠ B on privatized
	// nodes.
	DelayedCleanup int64
	// DoomedReads counts transaction bodies that observed A ≠ B.
	DoomedReads int64
	// FinalCorrupt counts nodes left with A ≠ B after all threads joined.
	FinalCorrupt int64
	// Privatizations is the number of completed truncate/process cycles.
	Privatizations int64
	// TxOps is the number of committed non-privatizer operations.
	TxOps int64
}

// Clean reports whether the run observed no violations at all. The counters
// written by worker goroutines are read atomically so Clean is safe to call
// even while a run is still in flight.
func (r *Result) Clean() bool {
	return atomic.LoadInt64(&r.DelayedCleanup) == 0 &&
		atomic.LoadInt64(&r.DoomedReads) == 0 && r.FinalCorrupt == 0
}

// String summarizes the result.
func (r *Result) String() string {
	return fmt.Sprintf("privatizations=%d txOps=%d delayedCleanup=%d doomedReads=%d finalCorrupt=%d",
		r.Privatizations, atomic.LoadInt64(&r.TxOps),
		atomic.LoadInt64(&r.DelayedCleanup), atomic.LoadInt64(&r.DoomedReads), r.FinalCorrupt)
}

// Run executes the stress scenario and returns the observation counts.
func Run(cfg Config) (*Result, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 32
	}
	if cfg.Readers <= 0 {
		cfg.Readers = 3
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 200
	}
	s, err := stm.New(stm.Config{
		Algorithm:                cfg.Algorithm,
		HeapWords:                1 << 16,
		OrecCount:                1 << 10,
		MaxThreads:               cfg.Readers + 1,
		Tracker:                  cfg.Tracker,
		ScanTracker:              cfg.ScanTracker,
		DisableSnapshotExtension: cfg.DisableExtension,
		CapFenceAtCommit:         cfg.CapFenceAtCommit,
		OrecLayout:               cfg.OrecLayout,
		DisableHintCache:         cfg.DisableHintCache,
	})
	if err != nil {
		return nil, err
	}

	// Build the shared list: head word + Nodes nodes.
	head := s.MustAlloc(1)
	nodes := make([]stm.Addr, cfg.Nodes)
	for i := range nodes {
		nodes[i] = s.MustAlloc(nodeW)
		s.DirectStore(nodes[i]+fVal, stm.Word(i))
		s.DirectStore(nodes[i]+fA, 1)
		s.DirectStore(nodes[i]+fB, 1)
	}
	for i := 0; i+1 < len(nodes); i++ {
		s.DirectStore(nodes[i]+fNext, stm.Word(nodes[i+1]))
	}
	s.DirectStore(head, stm.Word(nodes[0]))

	res := &Result{}
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Non-privatizer threads (Figure 1's T2): search for a node by value
	// and "process" it — read both mirror fields, verify the invariant,
	// and write them back incremented, all transactionally.
	for r := 0; r < cfg.Readers; r++ {
		th := s.MustNewThread()
		target := stm.Word(r % cfg.Nodes)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				err := th.Atomic(func(tx *stm.Tx) {
					n := tx.LoadAddr(head)
					for n != stm.Nil && tx.Load(n+fVal) != target {
						n = tx.LoadAddr(n + fNext)
					}
					if n == stm.Nil {
						return // list currently privatized
					}
					a := tx.Load(n + fA)
					if cfg.TornWindow {
						runtime.Gosched()
					}
					b := tx.Load(n + fB)
					if a != b {
						// A doomed transaction observed torn private
						// state. Counted immediately: opacity forbids
						// user code from ever seeing this, even in a
						// body that is later retried.
						atomic.AddInt64(&res.DoomedReads, 1)
						return
					}
					tx.Store(n+fA, a+1)
					if cfg.TornWindow {
						runtime.Gosched()
					}
					tx.Store(n+fB, b+1)
				})
				if err == nil {
					atomic.AddInt64(&res.TxOps, 1)
				}
			}
		}()
	}

	// The privatizer (Figure 1's T1): truncate, process privately,
	// republish.
	priv := s.MustNewThread()
	load := func(a stm.Addr) stm.Word {
		if cfg.AtomicPrivate {
			return s.AtomicLoad(a)
		}
		return s.DirectLoad(a)
	}
	store := func(a stm.Addr, w stm.Word) {
		if cfg.AtomicPrivate {
			s.AtomicStore(a, w)
		} else {
			s.DirectStore(a, w)
		}
	}
	for it := 0; it < cfg.Iterations; it++ {
		var pl stm.Addr
		_ = priv.Atomic(func(tx *stm.Tx) {
			pl = tx.LoadAddr(head)
			tx.StoreAddr(head, stm.Nil)
		})
		// The list is now logically private: process it with
		// uninstrumented accesses.
		for n := pl; n != stm.Nil; n = stm.Addr(load(n + fNext)) {
			a := load(n + fA)
			b := load(n + fB)
			if a != b {
				atomic.AddInt64(&res.DelayedCleanup, 1)
			}
			store(n+fA, a+2)
			if cfg.TornWindow {
				// Widen the torn window with a busy delay. (Gosched here
				// would park the privatizer behind the reader loops for a
				// full preemption quantum on small machines, slowing the
				// stressor by orders of magnitude without widening the
				// interesting race.)
				busyDelay()
			}
			store(n+fB, a+2)
		}
		res.Privatizations++
		// Republish (publication-by-store idiom).
		_ = priv.Atomic(func(tx *stm.Tx) {
			tx.StoreAddr(head, pl)
		})
	}
	stop.Store(true)
	wg.Wait()

	// Final audit: every node must satisfy the invariant.
	for _, n := range nodes {
		if s.DirectLoad(n+fA) != s.DirectLoad(n+fB) {
			res.FinalCorrupt++
		}
	}
	return res, nil
}

//go:noinline
func busySpinIter() {}

// busyDelay burns roughly a microsecond without yielding the processor.
func busyDelay() {
	for i := 0; i < 2000; i++ {
		busySpinIter()
	}
}
