package orec

import (
	"testing"
	"unsafe"

	"privstm/internal/heap"
)

func TestParseLayoutRoundTrip(t *testing.T) {
	for _, l := range []Layout{LayoutAoS, LayoutSoA} {
		got, err := ParseLayout(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLayout(%q) = %v, %v", l.String(), got, err)
		}
	}
	if l, err := ParseLayout(""); err != nil || l != LayoutAoS {
		t.Errorf("empty spelling should mean the default AoS, got %v, %v", l, err)
	}
	if _, err := ParseLayout("bogus"); err == nil {
		t.Error("bogus layout accepted")
	}
}

// TestLayoutsBehaveIdentically drives the handle API through both layouts:
// For/At identity, store/load round trips through every metadata word, and
// Index stability must not depend on where the words physically live.
func TestLayoutsBehaveIdentically(t *testing.T) {
	for _, layout := range []Layout{LayoutAoS, LayoutSoA} {
		tab := NewTableLayout(64, 1, layout)
		if tab.Layout() != layout {
			t.Fatalf("Layout() = %v, want %v", tab.Layout(), layout)
		}
		for i := 0; i < tab.Len(); i++ {
			o := tab.At(i)
			if o.Index() != uint32(i) {
				t.Fatalf("%v: At(%d).Index() = %d", layout, i, o.Index())
			}
			o.Owner().Store(uint64(i) + 1)
			o.Vis().Store(uint64(i) + 2)
			o.Grace().Store(uint64(i) + 3)
			o.CurrReader().Store(uint64(i) + 4)
		}
		// No word aliases another record's word in either layout.
		for i := 0; i < tab.Len(); i++ {
			o := tab.At(i)
			if o.Owner().Load() != uint64(i)+1 || o.Vis().Load() != uint64(i)+2 ||
				o.Grace().Load() != uint64(i)+3 || o.CurrReader().Load() != uint64(i)+4 {
				t.Fatalf("%v: record %d words aliased: owner=%d vis=%d grace=%d curr=%d",
					layout, i, o.Owner().Load(), o.Vis().Load(), o.Grace().Load(), o.CurrReader().Load())
			}
		}
		// For and At agree on handle identity (pointer equality is what the
		// read-set dedup and the acquired log rely on).
		for a := heap.Addr(0); a < 256; a++ {
			if tab.For(a) != tab.At(tab.Index(a)) {
				t.Fatalf("%v: For/At disagree at addr %d", layout, a)
			}
		}
	}
}

// TestLayoutPadding checks the false-sharing contracts the layouts exist
// for: AoS keeps one record per 64-byte line; SoA pads every column element
// to its own line so neighboring records in one column never share.
func TestLayoutPadding(t *testing.T) {
	if s := unsafe.Sizeof(aosCell{}); s != 64 {
		t.Errorf("aosCell size = %d, want 64", s)
	}
	if s := unsafe.Sizeof(soaWord{}); s != 64 {
		t.Errorf("soaWord size = %d, want 64", s)
	}
	if s := unsafe.Sizeof(Orec{}); s != 16 {
		t.Errorf("Orec handle size = %d, want 16 (4 per cache line)", s)
	}

	aos := NewTableLayout(8, 1, LayoutAoS)
	d := uintptr(unsafe.Pointer(aos.At(1).Owner())) - uintptr(unsafe.Pointer(aos.At(0).Owner()))
	if d != 64 {
		t.Errorf("AoS record stride = %d bytes, want 64", d)
	}
	// The AoS handle is embedded in its own cell: For → handle → word is
	// one cache line, not a handle line plus a cell line.
	for i := 0; i < aos.Len(); i++ {
		o := aos.At(i)
		hLine := uintptr(unsafe.Pointer(o)) / 64
		wLine := uintptr(unsafe.Pointer(o.Owner())) / 64
		if hLine != wLine {
			t.Fatalf("AoS: record %d handle (line %d) not colocated with its words (line %d)", i, hLine, wLine)
		}
	}

	soa := NewTableLayout(8, 1, LayoutSoA)
	d = uintptr(unsafe.Pointer(soa.At(1).Vis())) - uintptr(unsafe.Pointer(soa.At(0).Vis()))
	if d != 64 {
		t.Errorf("SoA column stride = %d bytes, want 64", d)
	}
	// In SoA a record's owner and vis words live on different lines (that
	// separation is the point of the layout).
	ownLine := uintptr(unsafe.Pointer(soa.At(0).Owner())) / 64
	visLine := uintptr(unsafe.Pointer(soa.At(0).Vis())) / 64
	if ownLine == visLine {
		t.Error("SoA: a record's owner and vis words share a cache line")
	}
}
