package orec

import (
	"testing"
	"testing/quick"

	"privstm/internal/heap"
)

func TestOwnerPackingRoundTrip(t *testing.T) {
	prop := func(wts uint64) bool {
		wts &= 1<<63 - 1 // representable range
		v := PackUnowned(wts)
		return !IsOwned(v) && WTS(v) == wts
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	prop2 := func(tid uint64) bool {
		tid &= 1<<63 - 1
		v := PackOwned(tid)
		return IsOwned(v) && OwnerTID(v) == tid
	}
	if err := quick.Check(prop2, nil); err != nil {
		t.Error(err)
	}
}

func TestVisPackingRoundTrip(t *testing.T) {
	prop := func(rts, tid uint64, multi bool) bool {
		rts &= visRTSMask
		tid &= MaxTID
		r, id, m := UnpackVis(PackVis(rts, tid, multi))
		return r == rts && id == tid && m == multi
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestVisFieldAccessorsAgree(t *testing.T) {
	prop := func(rts, tid uint64, multi bool) bool {
		v := PackVis(rts, tid, multi)
		r, id, m := UnpackVis(v)
		return VisRTS(v) == r && VisTID(v) == id && VisMulti(v) == m
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestVisMultiBitIndependent(t *testing.T) {
	v := PackVis(123, 45, false)
	if VisMulti(v) {
		t.Fatal("multi set unexpectedly")
	}
	v |= 1 // the writer-side idiom for setting the multi bit
	rts, tid, multi := UnpackVis(v)
	if rts != 123 || tid != 45 || !multi {
		t.Errorf("after |1: (%d,%d,%v), want (123,45,true)", rts, tid, multi)
	}
}

func TestOwnedUnownedDisjoint(t *testing.T) {
	// No unowned encoding may be mistaken for an owned one.
	for _, wts := range []uint64{0, 1, 77, 1 << 40} {
		if IsOwned(PackUnowned(wts)) {
			t.Errorf("PackUnowned(%d) reads as owned", wts)
		}
	}
	for _, tid := range []uint64{0, 1, MaxTID} {
		if !IsOwned(PackOwned(tid)) {
			t.Errorf("PackOwned(%d) reads as unowned", tid)
		}
	}
}

func TestTableBlockGranularity(t *testing.T) {
	tab := NewTable(1024, 4)
	if tab.BlockWords() != 4 {
		t.Fatalf("BlockWords = %d, want 4", tab.BlockWords())
	}
	// Addresses within one block share an orec.
	for base := heap.Addr(0); base < 64; base += 4 {
		idx := tab.Index(base)
		for off := heap.Addr(1); off < 4; off++ {
			if tab.Index(base+off) != idx {
				t.Errorf("addresses %d and %d in one block map to different orecs", base, base+off)
			}
		}
	}
}

func TestTableSizeRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {1000, 1024}, {1024, 1024}, {0, 1},
	} {
		if got := NewTable(tc.in, 1).Len(); got != tc.want {
			t.Errorf("NewTable(%d).Len() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestTableDistribution(t *testing.T) {
	// Consecutive blocks should scatter reasonably evenly.
	tab := NewTable(256, 1)
	counts := make([]int, tab.Len())
	const n = 1 << 14
	for a := heap.Addr(0); a < n; a++ {
		counts[tab.Index(a)]++
	}
	want := n / tab.Len()
	for i, c := range counts {
		if c < want/4 || c > want*4 {
			t.Errorf("slot %d holds %d addresses, want about %d", i, c, want)
		}
	}
}

func TestTableForStable(t *testing.T) {
	tab := NewTable(64, 2)
	a := heap.Addr(12345)
	if tab.For(a) != tab.For(a) {
		t.Error("For not stable for one address")
	}
	if tab.For(a) != tab.At(tab.Index(a)) {
		t.Error("For and At(Index) disagree")
	}
}
