package orec

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"privstm/internal/heap"
)

// Layout selects the memory layout of a Table's metadata words.
//
// LayoutAoS (the default) keeps all four words of one record together on
// one padded 64-byte cache line: records never false-share with each
// other, but a committing writer's owner-word scan drags the co-located
// reader-hint (vis) words through the coherence fabric, and every reader
// hint store dirties the line the next owner check needs.
//
// LayoutSoA splits the records into four parallel column arrays — owner,
// vis, grace, curr_reader — each element padded to its own cache line.
// Writer commit scans then touch only owner lines and reader hint traffic
// only vis lines, eliminating the writer/reader false sharing at the cost
// of 4x the metadata footprint (256 bytes per record instead of 64).
type Layout int

const (
	// LayoutAoS is the array-of-structures layout: one padded cache line
	// per record holding all four words.
	LayoutAoS Layout = iota
	// LayoutSoA is the structure-of-arrays layout: four parallel padded
	// columns, one per metadata word.
	LayoutSoA
)

// String returns the flag spelling ("aos", "soa").
func (l Layout) String() string {
	switch l {
	case LayoutSoA:
		return "soa"
	default:
		return "aos"
	}
}

// ParseLayout maps a flag spelling back to its Layout.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "aos", "":
		return LayoutAoS, nil
	case "soa":
		return LayoutSoA, nil
	}
	return 0, fmt.Errorf("orec: unknown layout %q (want aos or soa)", s)
}

// aosCell is one record's worth of metadata in the AoS layout: the four
// words and the record's handle together on one 64-byte line, with the
// handle exactly HandleOff bytes after the owner word as the accessors
// require. Embedding the handle in what would otherwise be padding means
// For(addr) → handle → word touches exactly one cache line per record,
// matching a plain embedded-atomics struct.
type aosCell struct {
	owner            atomic.Uint64
	h                Orec // at owner+8 = HandleOff
	vis, grace, curr atomic.Uint64
	_                [2]uint64
}

// soaWord is one element of a SoA column, padded to a full 64-byte line so
// neighboring records in the same column do not false-share either. Only
// the owner column's h is used: the record's handle lives HandleOff bytes
// after its owner word, exactly as in AoS, so Owner() stays loadless.
// Readers therefore read (but never dirty) their record's owner-column
// line to reach the handle; the vis/grace/curr_reader store traffic the
// layout exists to isolate still lands on the other columns only.
type soaWord struct {
	w atomic.Uint64
	h Orec // at w+8 = HandleOff
	_ [5]uint64
}

// Table maps heap addresses to orecs. Conflict detection happens "at the
// granularity of small, contiguous, fixed-size blocks of memory" (§II-A):
// BlockWords consecutive words share one orec, and block numbers are
// scattered over the table with a Fibonacci multiplicative hash, like the
// Harris–Fraser hashing the paper builds on.
//
// The metadata words live in a layout-dependent backing slab (see Layout).
// Each layout is a single allocation with every record's handle embedded
// HandleOff bytes after its owner word, so the handle accessors reach all
// four columns by offset arithmetic that never leaves the slab.
type Table struct {
	n          int
	mask       uint64
	blockShift uint
	layout     Layout

	// base is the start of the backing slab. Both layouts place record
	// i's handle at base + 64*i + HandleOff (the AoS cell and the SoA
	// owner-column element are each 64 bytes with the handle HandleOff
	// bytes in), so At/For are branchless address arithmetic with no
	// per-layout dispatch on the read hot path.
	base unsafe.Pointer

	// Backing storage, kept to root the slab for the GC. Exactly one is
	// non-nil, per layout.
	aos []aosCell
	soa []soaWord // 4*n elements: owner column, then vis, grace, curr
}

// NewTable creates a table with at least count orecs (rounded up to a power
// of two) and the given block size in words (also rounded to a power of
// two; minimum 1), in the default AoS layout.
func NewTable(count, blockWords int) *Table {
	return NewTableLayout(count, blockWords, LayoutAoS)
}

// NewTableLayout is NewTable with an explicit memory layout.
func NewTableLayout(count, blockWords int, layout Layout) *Table {
	n := ceilPow2(count)
	bs := uint(0)
	for 1<<bs < blockWords {
		bs++
	}
	t := &Table{
		n:          n,
		mask:       uint64(n - 1),
		blockShift: bs,
		layout:     layout,
	}
	switch layout {
	case LayoutSoA:
		// One slab, columns back to back, so the column stride
		// (64*n bytes) stays within a single allocation. The stride
		// must fit the handle's 32-bit offset field; 2^26 records is
		// far beyond any table this runtime sizes.
		if n > 1<<26 {
			panic("orec: SoA table too large for 32-bit column stride")
		}
		t.soa = make([]soaWord, 4*n)
		stride := uint32(n) * uint32(unsafe.Sizeof(soaWord{}))
		for i := 0; i < n; i++ {
			t.soa[i].h = Orec{a: 0, b: stride, idx: uint32(i)}
		}
		t.base = unsafe.Pointer(&t.soa[0])
	default:
		t.aos = make([]aosCell, n)
		for i := range t.aos {
			t.aos[i].h = Orec{a: 16, b: 8, idx: uint32(i)}
		}
		t.base = unsafe.Pointer(&t.aos[0])
	}
	return t
}

// Layout returns the table's memory layout.
func (t *Table) Layout() Layout { return t.layout }

// Len returns the number of orecs.
func (t *Table) Len() int { return t.n }

// BlockWords returns the conflict-detection granularity in words.
func (t *Table) BlockWords() int { return 1 << t.blockShift }

// Index returns the table slot for address a. Exported so tests can verify
// that addresses in one block collide and the distribution is uniform.
func (t *Table) Index(a heap.Addr) int {
	block := uint64(a) >> t.blockShift
	return int((block * 0x9e3779b97f4a7c15 >> 17) & t.mask)
}

// For returns the orec guarding address a. Index's mask keeps the slot in
// range, so no bounds check is needed on this hot path.
func (t *Table) For(a heap.Addr) *Orec {
	return (*Orec)(unsafe.Add(t.base, t.Index(a)*64+HandleOff))
}

// At returns the orec at slot i.
func (t *Table) At(i int) *Orec {
	if uint(i) >= uint(t.n) {
		panic("orec: table index out of range")
	}
	return (*Orec)(unsafe.Add(t.base, i*64+HandleOff))
}

func ceilPow2(n int) int {
	if n < 1 {
		n = 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
