package orec

import "privstm/internal/heap"

// Table maps heap addresses to orecs. Conflict detection happens "at the
// granularity of small, contiguous, fixed-size blocks of memory" (§II-A):
// BlockWords consecutive words share one orec, and block numbers are
// scattered over the table with a Fibonacci multiplicative hash, like the
// Harris–Fraser hashing the paper builds on.
type Table struct {
	orecs      []Orec
	mask       uint64
	blockShift uint
}

// NewTable creates a table with at least count orecs (rounded up to a power
// of two) and the given block size in words (also rounded to a power of
// two; minimum 1).
func NewTable(count, blockWords int) *Table {
	n := ceilPow2(count)
	bs := uint(0)
	for 1<<bs < blockWords {
		bs++
	}
	return &Table{
		orecs:      make([]Orec, n),
		mask:       uint64(n - 1),
		blockShift: bs,
	}
}

// Len returns the number of orecs.
func (t *Table) Len() int { return len(t.orecs) }

// BlockWords returns the conflict-detection granularity in words.
func (t *Table) BlockWords() int { return 1 << t.blockShift }

// Index returns the table slot for address a. Exported so tests can verify
// that addresses in one block collide and the distribution is uniform.
func (t *Table) Index(a heap.Addr) int {
	block := uint64(a) >> t.blockShift
	return int((block * 0x9e3779b97f4a7c15 >> 17) & t.mask)
}

// For returns the orec guarding address a.
func (t *Table) For(a heap.Addr) *Orec { return &t.orecs[t.Index(a)] }

// At returns the orec at slot i; used by whole-table sweeps in tests.
func (t *Table) At(i int) *Orec { return &t.orecs[i] }

func ceilPow2(n int) int {
	if n < 1 {
		n = 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
