package orec

import "testing"

// FuzzVisWord checks that any byte-derived (rts, tid, multi) triple
// round-trips through the packed vis word and that the multi-set idiom
// (v|1) never disturbs the other fields.
func FuzzVisWord(f *testing.F) {
	f.Add(uint64(0), uint64(0), false)
	f.Add(uint64(1), uint64(1), true)
	f.Add(^uint64(0), ^uint64(0), true)
	f.Add(uint64(1)<<40, uint64(MaxTID), false)
	f.Fuzz(func(t *testing.T, rts, tid uint64, multi bool) {
		rts &= visRTSMask
		tid &= MaxTID
		v := PackVis(rts, tid, multi)
		r, id, m := UnpackVis(v)
		if r != rts || id != tid || m != multi {
			t.Fatalf("roundtrip (%d,%d,%v) -> (%d,%d,%v)", rts, tid, multi, r, id, m)
		}
		r2, id2, m2 := UnpackVis(v | 1)
		if r2 != rts || id2 != tid || !m2 {
			t.Fatalf("multi-set idiom disturbed fields: (%d,%d,%v)", r2, id2, m2)
		}
	})
}

// FuzzOwnerWord checks owner-word encodings never alias across the
// owned/unowned boundary.
func FuzzOwnerWord(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(123456789))
	f.Add(^uint64(0) >> 1)
	f.Fuzz(func(t *testing.T, x uint64) {
		x &= 1<<63 - 1
		if IsOwned(PackUnowned(x)) {
			t.Fatalf("PackUnowned(%d) aliases owned", x)
		}
		if !IsOwned(PackOwned(x)) {
			t.Fatalf("PackOwned(%d) aliases unowned", x)
		}
		if WTS(PackUnowned(x)) != x || OwnerTID(PackOwned(x)) != x {
			t.Fatal("field extraction wrong")
		}
	})
}
