// Package orec implements ownership records (orecs) — the per-block
// conflict-detection metadata of the paper's word-based STM (§II-A), with
// the partial-visibility extensions of Figure 2:
//
//	(a) owner word:  write timestamp (wts) or owning transaction
//	(b) read timestamp (rts)
//	(c) last-reader transaction ID (tid) + multiple-readers bit
//	(d) per-orec grace period
//	(e) curr_reader lock for the store-only visibility protocol
//
// The rts and tid fields live in one 64-bit word so that they are always
// read and written "together in a single load/store" as §II-E requires.
package orec

import "sync/atomic"

// Field packing.
//
// owner word: wts<<1 (even → unowned) or tid<<1|1 (odd → owned).
//
// vis word:   rts<<24 | tid<<1 | multi. rts gets 40 bits (≈10^12 commits
// before saturation — unreachable in practice); tid gets 23 bits; bit 0 is
// the multiple-concurrent-readers flag.
const (
	visTIDBits = 23
	visRTSMask = (uint64(1) << (64 - visTIDBits - 1)) - 1

	// MaxTID is the largest transaction/thread ID representable in the
	// vis word.
	MaxTID = (1 << visTIDBits) - 1
)

// PackUnowned encodes an unowned owner word carrying write timestamp wts.
func PackUnowned(wts uint64) uint64 { return wts << 1 }

// PackOwned encodes an owner word held by transaction tid.
func PackOwned(tid uint64) uint64 { return tid<<1 | 1 }

// IsOwned reports whether the owner word encodes ownership.
func IsOwned(w uint64) bool { return w&1 == 1 }

// WTS extracts the write timestamp from an unowned owner word.
func WTS(w uint64) uint64 { return w >> 1 }

// OwnerTID extracts the owner transaction ID from an owned owner word.
func OwnerTID(w uint64) uint64 { return w >> 1 }

// PackVis encodes the (rts, tid, multi) triple into one vis word.
func PackVis(rts, tid uint64, multi bool) uint64 {
	v := (rts&visRTSMask)<<(visTIDBits+1) | (tid&MaxTID)<<1
	if multi {
		v |= 1
	}
	return v
}

// UnpackVis decodes a vis word.
func UnpackVis(v uint64) (rts, tid uint64, multi bool) {
	return v >> (visTIDBits + 1), (v >> 1) & MaxTID, v&1 == 1
}

// VisRTS extracts just the read timestamp.
func VisRTS(v uint64) uint64 { return v >> (visTIDBits + 1) }

// VisTID extracts just the last-reader transaction ID.
func VisTID(v uint64) uint64 { return (v >> 1) & MaxTID }

// VisMulti extracts the multiple-readers bit.
func VisMulti(v uint64) bool { return v&1 == 1 }

// NoReader is the value of curr_reader when no visibility update is in
// progress. Thread IDs stored in curr_reader are offset by one so that
// thread 0 can be distinguished from "no reader".
const NoReader uint64 = 0

// Orec is a single ownership record, padded to occupy a full 64-byte cache
// line so that metadata for unrelated blocks never exhibits false sharing.
type Orec struct {
	Owner      atomic.Uint64 // wts or owning txn (Fig. 2a)
	Vis        atomic.Uint64 // rts|tid|multi (Fig. 2b,c)
	Grace      atomic.Uint64 // grace period in clock steps (Fig. 2d)
	CurrReader atomic.Uint64 // store-protocol lock (Fig. 2e)
	_          [4]uint64
}
