// Package orec implements ownership records (orecs) — the per-block
// conflict-detection metadata of the paper's word-based STM (§II-A), with
// the partial-visibility extensions of Figure 2:
//
//	(a) owner word:  write timestamp (wts) or owning transaction
//	(b) read timestamp (rts)
//	(c) last-reader transaction ID (tid) + multiple-readers bit
//	(d) per-orec grace period
//	(e) curr_reader lock for the store-only visibility protocol
//
// The rts and tid fields live in one 64-bit word so that they are always
// read and written "together in a single load/store" as §II-E requires.
package orec

import (
	"sync/atomic"
	"unsafe"
)

// Field packing.
//
// owner word: wts<<1 (even → unowned) or tid<<1|1 (odd → owned).
//
// vis word:   rts<<24 | tid<<1 | multi. rts gets 40 bits (≈10^12 commits
// before saturation — unreachable in practice); tid gets 23 bits; bit 0 is
// the multiple-concurrent-readers flag.
const (
	visTIDBits = 23
	visRTSMask = (uint64(1) << (64 - visTIDBits - 1)) - 1

	// MaxTID is the largest transaction/thread ID representable in the
	// vis word.
	MaxTID = (1 << visTIDBits) - 1
)

// PackUnowned encodes an unowned owner word carrying write timestamp wts.
func PackUnowned(wts uint64) uint64 { return wts << 1 }

// PackOwned encodes an owner word held by transaction tid.
func PackOwned(tid uint64) uint64 { return tid<<1 | 1 }

// IsOwned reports whether the owner word encodes ownership.
func IsOwned(w uint64) bool { return w&1 == 1 }

// WTS extracts the write timestamp from an unowned owner word.
func WTS(w uint64) uint64 { return w >> 1 }

// OwnerTID extracts the owner transaction ID from an owned owner word.
func OwnerTID(w uint64) uint64 { return w >> 1 }

// PackVis encodes the (rts, tid, multi) triple into one vis word.
func PackVis(rts, tid uint64, multi bool) uint64 {
	v := (rts&visRTSMask)<<(visTIDBits+1) | (tid&MaxTID)<<1
	if multi {
		v |= 1
	}
	return v
}

// UnpackVis decodes a vis word.
func UnpackVis(v uint64) (rts, tid uint64, multi bool) {
	return v >> (visTIDBits + 1), (v >> 1) & MaxTID, v&1 == 1
}

// VisRTS extracts just the read timestamp.
func VisRTS(v uint64) uint64 { return v >> (visTIDBits + 1) }

// VisTID extracts just the last-reader transaction ID.
func VisTID(v uint64) uint64 { return (v >> 1) & MaxTID }

// VisMulti extracts the multiple-readers bit.
func VisMulti(v uint64) bool { return v&1 == 1 }

// NoReader is the value of curr_reader when no visibility update is in
// progress. Thread IDs stored in curr_reader are offset by one so that
// thread 0 can be distinguished from "no reader".
const NoReader uint64 = 0

// Orec is a single ownership record, presented as a stable 16-byte
// handle embedded in the owning Table's backing slab, HandleOff bytes
// after the record's owner word (in both memory layouts). The accessors
// reach the metadata words by offset arithmetic from the handle's own
// address: Owner() costs no memory loads at all — exactly a plain
// embedded-atomics struct — and the remaining words cost one load of the
// (a, b) pair, which shares the owner word's cache line. Handles are
// initialized once at table construction and never written afterwards;
// all mutation goes through the atomic words themselves.
//
// Keeping the handle free of pointers matters twice over: a read-path
// metadata access is For(addr) → handle → word, and with per-word
// pointers the handle was a second dependent load (and, before it was
// colocated, a second cold cache line) per distinct orec, which
// measurably slowed every engine on long traversals; and a pointer-free
// slab is opaque to the garbage collector.
//
// Callers use the accessor methods as the record's fields (o.Vis().Load(),
// o.Owner().CompareAndSwap(...)); the returned *atomic.Uint64 must not be
// retained beyond the expression or loop using it. Handles are only valid
// inside a Table's slab — the zero Orec has no words to point at.
type Orec struct {
	// Word n (1 = vis, 2 = grace, 3 = curr_reader) sits a+n*b bytes
	// past the owner word, within the same slab allocation (so the
	// arithmetic below is within-object and legal). AoS cells use
	// (16, 8); SoA columns use (0, 64*tableLen).
	a, b uint32
	// idx is the record's slot in its Table, fixed at construction.
	idx uint32
	_   uint32
}

// HandleOff is the byte distance from a record's owner word to its handle,
// identical in both layouts.
const HandleOff = 8

// word returns the n-th metadata word of the record (0 = owner).
func (o *Orec) word(n int) *atomic.Uint64 {
	return (*atomic.Uint64)(unsafe.Add(unsafe.Pointer(o),
		int(o.a)+n*int(o.b)-HandleOff))
}

// Owner is the wts-or-owning-txn word (Fig. 2a).
func (o *Orec) Owner() *atomic.Uint64 {
	return (*atomic.Uint64)(unsafe.Add(unsafe.Pointer(o), -HandleOff))
}

// Vis is the rts|tid|multi word (Fig. 2b,c).
func (o *Orec) Vis() *atomic.Uint64 { return o.word(1) }

// Grace is the grace period in clock steps (Fig. 2d).
func (o *Orec) Grace() *atomic.Uint64 { return o.word(2) }

// CurrReader is the store-protocol lock (Fig. 2e).
func (o *Orec) CurrReader() *atomic.Uint64 { return o.word(3) }

// Index returns the record's table slot. It is the canonical hash key for
// per-transaction containers (read-set dedup, publication log, hint
// cache): indices and handles are in bijection within one table.
func (o *Orec) Index() uint32 { return o.idx }
