package pvr

import (
	"sync"
	"testing"
	"time"

	"privstm/internal/core"
)

func newRT(t *testing.T) *core.Runtime {
	t.Helper()
	rt, err := core.NewRuntime(core.Options{HeapWords: 1 << 12, OrecCount: 1 << 8, MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func thread(t *testing.T, rt *core.Runtime) *core.Thread {
	t.Helper()
	th, err := rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	return th
}

func TestVariantNames(t *testing.T) {
	rt := newRT(t)
	for _, tc := range []struct {
		e    *Engine
		want string
	}{
		{NewBase(rt), "pvrBase"},
		{NewCAS(rt), "pvrCAS"},
		{NewStore(rt), "pvrStore"},
		{NewWriterOnly(rt), "pvrWriterOnly"},
	} {
		if tc.e.Name() != tc.want {
			t.Errorf("Name = %q, want %q", tc.e.Name(), tc.want)
		}
	}
}

func TestInPlaceWriteAndRollback(t *testing.T) {
	for _, mk := range []func(*core.Runtime) *Engine{NewBase, NewCAS, NewStore, NewWriterOnly} {
		rt := newRT(t)
		e := mk(rt)
		th := thread(t, rt)
		a := rt.Heap.MustAlloc(2)

		// Commit path.
		if err := core.Run(e, th, func() {
			e.Write(th, a, 10)
			e.Write(th, a+1, 20)
		}); err != nil {
			t.Fatal(err)
		}
		if rt.Heap.AtomicLoad(a) != 10 || rt.Heap.AtomicLoad(a+1) != 20 {
			t.Fatalf("%s: committed values wrong", e.Name())
		}

		// In-place speculation must be visible mid-transaction and undone
		// on user cancel.
		err := core.Run(e, th, func() {
			e.Write(th, a, 99)
			if rt.Heap.AtomicLoad(a) != 99 {
				t.Errorf("%s: in-place write not visible in memory", e.Name())
			}
			th.UserCancel(errSentinel)
		})
		if err != errSentinel {
			t.Fatalf("%s: err = %v", e.Name(), err)
		}
		if got := rt.Heap.AtomicLoad(a); got != 10 {
			t.Errorf("%s: rollback left %d, want 10", e.Name(), got)
		}
		// Cleanup must have left the central list empty and orecs free.
		if rt.Active.Count() != 0 {
			t.Errorf("%s: central list not empty after cancel", e.Name())
		}
	}
}

var errSentinel = errTest("sentinel")

type errTest string

func (e errTest) Error() string { return string(e) }

func TestReadersEnterCentralList(t *testing.T) {
	rt := newRT(t)
	e := NewBase(rt)
	th := thread(t, rt)
	a := rt.Heap.MustAlloc(1)
	entered := -1
	if err := core.Run(e, th, func() {
		_ = e.Read(th, a)
		entered = rt.Active.Count()
	}); err != nil {
		t.Fatal(err)
	}
	if entered != 1 {
		t.Errorf("central list length during txn = %d, want 1", entered)
	}
	if rt.Active.Count() != 0 {
		t.Error("central list not empty after commit")
	}
}

func TestWriterOnlyReadOnlySkipsCentralList(t *testing.T) {
	rt := newRT(t)
	e := NewWriterOnly(rt)
	th := thread(t, rt)
	a := rt.Heap.MustAlloc(1)
	during := -1
	if err := core.Run(e, th, func() {
		_ = e.Read(th, a)
		during = rt.Active.Count()
	}); err != nil {
		t.Fatal(err)
	}
	if during != 0 {
		t.Errorf("read-only writerOnly txn appeared on central list (len %d)", during)
	}
	if th.Stats.ReadOnlyCommits != 1 {
		t.Errorf("ReadOnlyCommits = %d", th.Stats.ReadOnlyCommits)
	}
}

func TestWriterOnlyGoesVisibleOnFirstWrite(t *testing.T) {
	rt := newRT(t)
	e := NewWriterOnly(rt)
	th := thread(t, rt)
	a := rt.Heap.MustAlloc(2)
	var before, after int
	if err := core.Run(e, th, func() {
		_ = e.Read(th, a)
		before = rt.Active.Count()
		e.Write(th, a+1, 5)
		after = rt.Active.Count()
	}); err != nil {
		t.Fatal(err)
	}
	if before != 0 || after != 1 {
		t.Errorf("list length before/after first write = %d/%d, want 0/1", before, after)
	}
	if th.Stats.ModeSwitches != 1 {
		t.Errorf("ModeSwitches = %d", th.Stats.ModeSwitches)
	}
}

// TestWriterFencesOnReaderConflict drives the full §II flow: a reader makes
// a location partially visible; a writer that commits a write to the same
// location must wait at the privatization fence until the reader finishes.
func TestWriterFencesOnReaderConflict(t *testing.T) {
	for _, mk := range []func(*core.Runtime) *Engine{NewBase, NewCAS, NewStore} {
		rt := newRT(t)
		e := mk(rt)
		reader := thread(t, rt)
		writer := thread(t, rt)
		a := rt.Heap.MustAlloc(1)

		readerIn := make(chan struct{})
		readerGo := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = core.Run(e, reader, func() {
				_ = e.Read(reader, a)
				close(readerIn)
				<-readerGo
			})
		}()
		<-readerIn

		committed := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = core.Run(e, writer, func() {
				e.Write(writer, a, 42)
			})
			close(committed)
		}()

		select {
		case <-committed:
			t.Fatalf("%s: writer returned without fencing for the live reader", e.Name())
		case <-time.After(20 * time.Millisecond):
		}
		close(readerGo)
		<-committed
		wg.Wait()
		if writer.Stats.Fenced != 1 {
			t.Errorf("%s: Fenced = %d, want 1", e.Name(), writer.Stats.Fenced)
		}
	}
}

// TestWriterSkipsFenceWithoutConflict: disjoint access parallelism must not
// fence (the whole point of partial visibility).
func TestWriterSkipsFenceWithoutConflict(t *testing.T) {
	rt := newRT(t)
	e := NewBase(rt)
	reader := thread(t, rt)
	writer := thread(t, rt)
	a := rt.Heap.MustAlloc(1)
	b := rt.Heap.MustAlloc(1024) // far away: different orec

	readerIn := make(chan struct{})
	readerGo := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = core.Run(e, reader, func() {
			_ = e.Read(reader, a)
			close(readerIn)
			<-readerGo
		})
	}()
	<-readerIn
	if rt.Orecs.For(a) == rt.Orecs.For(b+1000) {
		t.Skip("orec collision between chosen addresses")
	}
	if err := core.Run(e, writer, func() { e.Write(writer, b+1000, 1) }); err != nil {
		t.Fatal(err)
	}
	if writer.Stats.Fenced != 0 {
		t.Errorf("disjoint writer fenced (%d)", writer.Stats.Fenced)
	}
	close(readerGo)
	wg.Wait()
}

func TestWriteAfterReadNoSelfFence(t *testing.T) {
	// §II-E: a transaction that reads then writes d must not fence on its
	// own visibility hint — even with another (non-conflicting) live txn.
	rt := newRT(t)
	e := NewBase(rt)
	th := thread(t, rt)
	other := thread(t, rt)
	a := rt.Heap.MustAlloc(1)

	otherIn := make(chan struct{})
	otherGo := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = core.Run(e, other, func() {
			_ = e.Read(other, a+512) // unrelated location
			close(otherIn)
			<-otherGo
		})
	}()
	<-otherIn
	if rt.Orecs.For(a) == rt.Orecs.For(a+512) {
		close(otherGo)
		wg.Wait()
		t.Skip("orec collision")
	}
	done := make(chan struct{})
	go func() {
		_ = core.Run(e, th, func() {
			v := e.Read(th, a)
			e.Write(th, a, v+1)
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("write-after-read fenced against itself (deadlocked on own hint)")
	}
	if th.Stats.Fenced != 0 {
		t.Errorf("Fenced = %d, want 0", th.Stats.Fenced)
	}
	close(otherGo)
	wg.Wait()
}

func TestSecondReaderForcesFenceViaMultiBit(t *testing.T) {
	// §II-E's other half: if the writer itself read d but so did someone
	// else, the multi bit must force the fence.
	rt := newRT(t)
	e := NewBase(rt)
	w := thread(t, rt)
	r := thread(t, rt)
	a := rt.Heap.MustAlloc(1)

	wIn := make(chan struct{})
	wGo := make(chan struct{})
	committed := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = core.Run(e, w, func() {
			v := e.Read(w, a)
			close(wIn)
			<-wGo
			e.Write(w, a, v+1)
		})
		close(committed)
	}()
	<-wIn

	rIn := make(chan struct{})
	rGo := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = core.Run(e, r, func() {
			_ = e.Read(r, a)
			close(rIn)
			<-rGo
		})
	}()
	<-rIn
	close(wGo)
	select {
	case <-committed:
		t.Fatal("writer ignored the second concurrent reader")
	case <-time.After(20 * time.Millisecond):
	}
	close(rGo)
	<-committed
	wg.Wait()
	if w.Stats.Fenced != 1 {
		t.Errorf("Fenced = %d, want 1", w.Stats.Fenced)
	}
}

func TestAbortedWriterDoesNotFence(t *testing.T) {
	rt := newRT(t)
	e := NewBase(rt)
	r := thread(t, rt)
	w := thread(t, rt)
	a := rt.Heap.MustAlloc(1)

	rIn := make(chan struct{})
	rGo := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = core.Run(e, r, func() {
			_ = e.Read(r, a)
			close(rIn)
			<-rGo
		})
	}()
	<-rIn
	// The writer writes a (conflicting with the reader) but cancels.
	err := core.Run(e, w, func() {
		e.Write(w, a, 7)
		w.UserCancel(errSentinel)
	})
	if err != errSentinel {
		t.Fatal(err)
	}
	if w.Stats.Fenced != 0 {
		t.Errorf("aborted writer fenced (%d)", w.Stats.Fenced)
	}
	if rt.Heap.AtomicLoad(a) != 0 {
		t.Error("cancel did not roll back")
	}
	close(rGo)
	wg.Wait()
}

func TestConflictingWritersOneAborts(t *testing.T) {
	// Encounter-time acquisition: the second writer to reach an owned orec
	// aborts and retries.
	rt := newRT(t)
	e := NewBase(rt)
	a := rt.Heap.MustAlloc(1)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		th := thread(t, rt)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				_ = core.Run(e, th, func() {
					v := e.Read(th, a)
					e.Write(th, a, v+1)
				})
			}
		}()
	}
	wg.Wait()
	if got := rt.Heap.AtomicLoad(a); got != 800 {
		t.Errorf("counter = %d, want 800", got)
	}
}

func TestGraceLoweredOnWriterConflict(t *testing.T) {
	rt := newRT(t)
	e := NewCAS(rt)
	r := thread(t, rt)
	w := thread(t, rt)
	a := rt.Heap.MustAlloc(1)
	o := rt.Orecs.For(a)
	o.Grace().Store(64)

	rIn := make(chan struct{})
	rGo := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = core.Run(e, r, func() {
			_ = e.Read(r, a)
			close(rIn)
			<-rGo
		})
	}()
	<-rIn
	graceAfterRead := o.Grace().Load()
	if graceAfterRead != 128 {
		t.Errorf("grace after successful visibility update = %d, want 128", graceAfterRead)
	}
	done := make(chan struct{})
	go func() {
		_ = core.Run(e, w, func() { e.Write(w, a, 9) })
		close(done)
	}()
	time.Sleep(10 * time.Millisecond) // writer should now be fencing
	close(rGo)
	<-done
	wg.Wait()
	if got := o.Grace().Load(); got != graceAfterRead/2 {
		t.Errorf("grace after writer conflict = %d, want %d", got, graceAfterRead/2)
	}
	if w.Stats.Fenced != 1 {
		t.Errorf("Fenced = %d", w.Stats.Fenced)
	}
}
