package pvr

import (
	"sync"
	"testing"

	"privstm/internal/core"
)

// TestWriterOnlyInvisibleDoomedRetries: a read-only-so-far transaction
// whose read set is invalidated by a writer commit must abort at its next
// read's poll and succeed on retry.
func TestWriterOnlyInvisibleDoomedRetries(t *testing.T) {
	rt := newRT(t)
	e := NewWriterOnly(rt)
	r := thread(t, rt)
	w := thread(t, rt)
	x := rt.Heap.MustAlloc(1)
	y := rt.Heap.MustAlloc(600)
	if rt.Orecs.For(x) == rt.Orecs.For(y+512) {
		t.Skip("orec collision")
	}
	attempts := 0
	if err := core.Run(e, r, func() {
		attempts++
		_ = e.Read(r, x)
		if attempts == 1 {
			if err := core.Run(e, w, func() { e.Write(w, x, 5) }); err != nil {
				t.Fatal(err)
			}
		}
		_ = e.Read(r, y+512)
	}); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}
	if r.Stats.ReadOnlyCommits != 1 {
		t.Errorf("ReadOnlyCommits = %d", r.Stats.ReadOnlyCommits)
	}
}

// TestWriterOnlyInvisibleCancel: cancelling before the first write must
// not touch the tracker (the transaction never joined it).
func TestWriterOnlyInvisibleCancel(t *testing.T) {
	rt := newRT(t)
	e := NewWriterOnly(rt)
	th := thread(t, rt)
	a := rt.Heap.MustAlloc(1)
	err := core.Run(e, th, func() {
		_ = e.Read(th, a)
		th.UserCancel(errSentinel)
	})
	if err != errSentinel {
		t.Fatal(err)
	}
	if rt.Active.Count() != 0 {
		t.Error("tracker not empty after invisible cancel")
	}
}

// TestGoVisibleAbortsWhenDoomed: the §III-C transition itself must abort a
// transaction whose reads were invalidated before its first write — the
// bug the privatization stressor originally caught.
func TestGoVisibleAbortsWhenDoomed(t *testing.T) {
	rt := newRT(t)
	e := NewWriterOnly(rt)
	r := thread(t, rt)
	w := thread(t, rt)
	x := rt.Heap.MustAlloc(1)
	target := rt.Heap.MustAlloc(600)
	if rt.Orecs.For(x) == rt.Orecs.For(target+512) {
		t.Skip("orec collision")
	}
	attempts := 0
	if err := core.Run(e, r, func() {
		attempts++
		_ = e.Read(r, x)
		if attempts == 1 {
			// Invalidate the read, then let the victim attempt its first
			// write: goVisible's revalidation must refuse.
			if err := core.Run(e, w, func() { e.Write(w, x, 1) }); err != nil {
				t.Fatal(err)
			}
			// Suppress the poll path by writing without reading again.
		}
		e.Write(r, target+512, 9)
	}); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2 (goVisible must doom attempt 1)", attempts)
	}
	if got := rt.Heap.AtomicLoad(target + 512); got != 9 {
		t.Errorf("retry did not commit: %d", got)
	}
}

// TestUndoEngineCommitValidationFails: a writer whose read set goes stale
// after its in-place writes must roll back at commit and retry.
func TestUndoEngineCommitValidationFails(t *testing.T) {
	rt := newRT(t)
	e := NewBase(rt)
	r := thread(t, rt)
	w := thread(t, rt)
	x := rt.Heap.MustAlloc(1)
	y := rt.Heap.MustAlloc(600)
	if rt.Orecs.For(x) == rt.Orecs.For(y+512) {
		t.Skip("orec collision")
	}
	// The conflicting writer must run concurrently: it will fence on the
	// reader's visibility hint for x, and the reader's commit-time
	// validation failure (abort, tracker exit) is what releases it.
	attempts := 0
	var once sync.Once
	var wg sync.WaitGroup
	if err := core.Run(e, r, func() {
		attempts++
		v := e.Read(r, x)
		e.Write(r, y+512, v+100)
		if attempts == 1 {
			once.Do(func() {
				before := rt.Clock.Now()
				wg.Add(1)
				go func() {
					defer wg.Done()
					_ = core.Run(e, w, func() { e.Write(w, x, 7) })
				}()
				// Wait until the writer has committed (clock ticked); it
				// is now waiting at its privatization fence for us.
				for rt.Clock.Now() == before {
				}
			})
		}
	}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}
	if got := rt.Heap.AtomicLoad(y + 512); got != 107 {
		t.Errorf("y = %d, want 107 (committed from refreshed read)", got)
	}
	if r.Stats.Aborts != 1 {
		t.Errorf("Aborts = %d", r.Stats.Aborts)
	}
}
