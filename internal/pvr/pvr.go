// Package pvr implements the paper's partially-visible-read STM engines:
// the undo-log word-based STM of §II with the four variants evaluated in
// §V:
//
//	pvrBase       — CAS visibility updates, no grace periods (§II)
//	pvrCAS        — adds adaptive per-orec grace periods (§III-A)
//	pvrStore      — replaces the CAS with the store-only protocol (§III-B)
//	pvrWriterOnly — adds the read-only transaction optimization (§III-C)
//
// Writes are performed in place with per-location undo logging; readers
// leave partial-visibility hints; committing writers that detect a possible
// reader conflict execute a privatization fence.
package pvr

import (
	"privstm/internal/core"
	"privstm/internal/failpoint"
	"privstm/internal/heap"
	"privstm/internal/orec"
)

// Engine is one configured PVR variant. Create with NewBase, NewCAS,
// NewStore or NewWriterOnly.
type Engine struct {
	rt         *core.Runtime
	name       string
	grace      bool          // adaptive grace periods (§III-A)
	proto      core.VisProto // CAS or store-only visibility updates
	writerOnly bool          // read-only transaction optimization (§III-C)
}

// NewBase returns the basic scheme of §II: CAS updates, G = 0.
func NewBase(rt *core.Runtime) *Engine {
	return &Engine{rt: rt, name: "pvrBase", proto: core.VisCAS}
}

// NewCAS returns pvrBase augmented with adaptive grace periods (§III-A).
func NewCAS(rt *core.Runtime) *Engine {
	return &Engine{rt: rt, name: "pvrCAS", grace: true, proto: core.VisCAS}
}

// NewStore returns pvrCAS with the CAS-free visibility update of §III-B.
func NewStore(rt *core.Runtime) *Engine {
	return &Engine{rt: rt, name: "pvrStore", grace: true, proto: core.VisStore}
}

// NewWriterOnly returns pvrStore plus the read-only optimization of §III-C:
// transactions run with invisible, incrementally validated reads until their
// first write, at which point they join the central list and make every
// prior read partially visible.
func NewWriterOnly(rt *core.Runtime) *Engine {
	return &Engine{rt: rt, name: "pvrWriterOnly", grace: true, proto: core.VisStore, writerOnly: true}
}

// Name returns the figure label of the variant.
func (e *Engine) Name() string { return e.name }

// Begin starts a transaction. Unless the read-only optimization applies,
// the transaction immediately enters the central list (its begin timestamp
// is assigned under the list lock so list order matches timestamp order).
func (e *Engine) Begin(t *core.Thread) {
	t.GateSerialized()
	t.ResetTxnState()
	// ExtendOK stays false: the undo-log engines write in place, so their
	// snapshots are pinned at BeginTS and the §II fence proofs apply
	// verbatim (ValidTS == BeginTS throughout).
	if e.writerOnly {
		t.StartSnapshot(e.rt.Clock.Now())
	} else {
		t.StartSnapshot(e.rt.Active.Enter(t))
		t.Visible = true
		failpoint.Eval(failpoint.BeginEnteredBeforePublish)
	}
	t.PublishActive(t.BeginTS)
}

// Read performs a transactional load of a: publish partial visibility on
// the covering orec, then do the timestamp-checked consistent read.
func (e *Engine) Read(t *core.Thread, a heap.Addr) heap.Word {
	o := t.RT.Orecs.For(a)
	if e.writerOnly && !t.Visible {
		// Invisible mode: consistent read plus incremental validation in
		// place of visibility (§III-C: read-only transactions validate
		// whenever a writer commits).
		w := t.ReadHeapConsistent(a)
		t.PollValidate()
		return w
	}
	// Reading our own in-place write needs no visibility hint: ownership
	// already blocks every other reader and writer.
	if own := o.Owner().Load(); orec.IsOwned(own) && orec.OwnerTID(own) == t.ID {
		t.Reads.Add(o, a, t.BeginTS)
		return t.RT.Heap.AtomicLoad(a)
	}
	t.MakeVisible(o, e.grace, e.proto)
	return t.ReadHeapConsistent(a)
}

// Write performs an in-place transactional store with undo logging,
// acquiring the covering orec at encounter time.
func (e *Engine) Write(t *core.Thread, a heap.Addr, w heap.Word) {
	if e.writerOnly && !t.Visible {
		e.goVisible(t)
	}
	// Sandbox bounds guard before the in-place write: an address computed
	// from torn reads must not fault (or clobber a live word) mid-attempt.
	t.CheckAddr(a)
	o := t.RT.Orecs.For(a)
	if !t.AcquireOrec(o) {
		t.ConflictAbort()
	}
	failpoint.Eval(failpoint.AcquiredBeforeWriteback)
	t.Undo.Add(a, t.RT.Heap.AtomicLoad(a))
	t.RT.Heap.AtomicStore(a, w)
	t.Wrote = true
}

// goVisible is the §III-C transition: about to make a first write, the
// transaction joins the central list at its original begin timestamp (a
// sorted insert — newer transactions are already on the list) and makes all
// its reads partially visible, protecting it from both halves of the
// privatization problem from here on.
//
// The read set must then be revalidated *after* the hints are published:
// a writer whose commit-time conflict scan predates our hints will not
// fence for us, so if any such writer has already committed against our
// read set we are doomed and must abort before performing any in-place
// write. (If the validation passes, every later-committing conflicting
// writer's scan is ordered after our hint stores and will fence.)
func (e *Engine) goVisible(t *core.Thread) {
	if t.EpochPinned {
		// Weak reads already registered us on the tracker at BeginTS (the
		// epoch pin); adopt that entry rather than double-entering, which
		// would corrupt the list tracker's linkage.
		t.EpochPinned = false
	} else {
		e.rt.Active.EnterAt(t, t.BeginTS)
	}
	failpoint.Eval(failpoint.BeginEnteredBeforePublish)
	t.Visible = true
	t.Stats.ModeSwitches++
	n := t.Reads.Len()
	for i := 0; i < n; i++ {
		t.MakeVisible(t.Reads.At(i).Orec, e.grace, e.proto)
	}
	if !t.ValidateReads() {
		t.ConflictAbort()
	}
}

// SemanticCommitCapable marks that Commit runs the abstract-lock hooks of
// the semantic conflict layer (core.SemCommitter).
func (e *Engine) SemanticCommitCapable() {}

// Commit finishes the transaction. Writers validate their read set, scan
// their owned orecs for possible reader conflicts, release ownership at a
// fresh timestamp, leave the central list, and only then — per §II-D —
// wait at the privatization fence if a conflict was found. Abstract locks
// are acquired before the commit timestamp (the word orecs are already
// held from encounter time) and released by SemPostCommit before the
// orecs, so stripe bumps precede data visibility.
func (e *Engine) Commit(t *core.Thread) bool {
	rt := e.rt
	if !t.Wrote {
		if !t.SemPreCommit() {
			if t.Visible {
				rt.Active.Leave(t)
			}
			t.PublishInactive()
			return false
		}
		t.SemPostCommit()
		if t.Visible {
			rt.Active.Leave(t)
		}
		t.PublishInactive()
		t.Stats.ReadOnlyCommits++
		return true
	}
	if !t.SemPreCommit() {
		e.rollback(t)
		return false
	}
	wts := t.CommitTS()
	if !t.SkipCommitValidation(wts) && !t.ValidateReads() {
		t.SemAbortRelease()
		e.rollback(t)
		return false
	}
	threshold, conflict := t.ReaderConflictScan(e.grace)
	if conflict && rt.CapFenceAtCommit && threshold > wts {
		// Optional §II-D future-work optimization: readers that began
		// after this commit observe the committed state and cannot be
		// doomed by it, so grace-inflated thresholds beyond the commit
		// time only add "extended delays" — cap them.
		threshold = wts
	}
	t.SemPostCommit()
	t.Acq.ReleaseAll(wts)
	rt.Active.Leave(t)
	t.PublishInactive()
	t.Stats.WriterCommits++
	failpoint.Eval(failpoint.CommitBeforeFence)
	if conflict {
		t.PrivatizationFence(threshold)
	}
	return true
}

// Cancel rolls back an in-flight transaction: undo the in-place writes,
// restore orec ownership, and only then leave the central list — aborted
// transactions must remain visible to fences until their cleanup completes
// (§II-C). Aborted transactions never fence.
func (e *Engine) Cancel(t *core.Thread) {
	if t.Wrote {
		e.rollback(t)
		return
	}
	if t.Visible {
		e.rt.Active.Leave(t)
	}
	t.PublishInactive()
}

func (e *Engine) rollback(t *core.Thread) {
	t.Undo.Rollback(e.rt.Heap)
	t.Acq.RestoreAll()
	if t.Visible {
		e.rt.Active.Leave(t)
	}
	t.PublishInactive()
}
