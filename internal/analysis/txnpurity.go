package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TxnPurity returns the txnpurity analyzer.
//
// Invariant (doomed-transaction failure mode, CORRECTNESS.md §2): the body
// of an atomic block may execute several times — aborted attempts are
// rolled back and retried, and a *doomed* attempt may run briefly on
// inconsistent reads before validation catches it. Any irrevocable side
// effect inside the body therefore escapes the rollback: sleeps stall the
// whole commit pipeline (every fence waits on the central list's oldest
// entry), channel operations and mutex acquisitions can deadlock against a
// doomed attempt that will never commit, and os/net I/O is replayed once
// per retry. The rule checks every function literal passed to
// stm.Atomic/core.Run, plus (transitively, via the module call graph) the
// module functions it calls in any package — except the runtime packages
// themselves (txnOpaquePkgs): calls into the STM runtime (tx.Load and
// everything under it, down to spin.Backoff.Wait) are the instrumented
// operations the rule exists to protect, not violations, so the runtime is
// an opaque leaf.
func TxnPurity() *Analyzer {
	return &Analyzer{
		Name: "txnpurity",
		Doc:  "transaction bodies must not sleep, use channels, lock mutexes, launch goroutines, or do os/net I/O",
		Run:  runTxnPurity,
	}
}

// impurity is one irrevocable effect found in a function body.
type impurity struct {
	pos  token.Pos
	what string
}

type purityChecker struct {
	p *Program
	// summaries memoizes per-function impurity lists for the transitive
	// module-wide closure; inProgress breaks recursion cycles.
	summaries  map[*types.Func][]impurity
	inProgress map[*types.Func]bool
}

// txnOpaquePkgs names the module packages the transitive purity closure
// does not descend into: the runtime itself (defaultYieldScope — its wait
// loops sleep and park by design, under the fence/CM protocols the rule
// protects) plus the tooling seams (fault injection, the schedule
// explorer, statistics, the serial token, the deterministic RNG).
var txnOpaquePkgs = map[string]bool{
	"failpoint": true, "sched": true, "stats": true,
	"rng": true, "serial": true, "priv": true,
}

func (pc *purityChecker) opaquePkg(name string) bool {
	return txnOpaquePkgs[name] || defaultYieldScope[name]
}

func runTxnPurity(p *Program) []Diagnostic {
	var diags []Diagnostic
	pc := &purityChecker{
		p:          p,
		summaries:  make(map[*types.Func][]impurity),
		inProgress: make(map[*types.Func]bool),
	}
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicBlockCall(p, pkg.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					lit, ok := unparen(arg).(*ast.FuncLit)
					if !ok {
						continue
					}
					for _, imp := range pc.checkBody(pkg, lit.Body) {
						diags = append(diags, Diagnostic{
							Pos:     p.Fset.Position(imp.pos),
							Rule:    "txnpurity",
							Message: "transaction body " + imp.what + "; atomic blocks may re-execute and must not perform irrevocable effects",
						})
					}
				}
				return true
			})
		}
	}
	return diags
}

// isAtomicBlockCall recognizes the entry points that execute a function
// literal transactionally: a method named Atomic, or a function named Run,
// declared inside this module (stm.Thread.Atomic, core.Run, and the test
// fixtures' stand-ins). Calls without a literal argument are never matched.
func isAtomicBlockCall(p *Program, info *types.Info, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return false
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if path := fn.Pkg().Path(); path != p.ModPath && !strings.HasPrefix(path, p.ModPath+"/") {
		return false
	}
	switch fn.Name() {
	case "Atomic":
		return fn.Type().(*types.Signature).Recv() != nil
	case "Run":
		// The schedule explorer's Run (package sched) shares the name but
		// executes *worker goroutine* bodies, serialized under the
		// controller — not transaction bodies. Its literal arguments are
		// ordinary concurrent code and may block.
		return fn.Pkg().Name() != "sched"
	default:
		return false
	}
}

// checkBody scans one body (declared in pkg) for impurities, following
// calls to module functions outside the opaque runtime (their findings are
// reported at the call site, with the callee named).
func (pc *purityChecker) checkBody(pkg *Package, body ast.Node) []impurity {
	var out []impurity
	info := pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			out = append(out, impurity{n.Pos(), "performs a channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				out = append(out, impurity{n.Pos(), "performs a channel receive"})
			}
		case *ast.SelectStmt:
			out = append(out, impurity{n.Pos(), "blocks in a select statement"})
		case *ast.GoStmt:
			out = append(out, impurity{n.Pos(), "launches a goroutine"})
		case *ast.RangeStmt:
			if t, ok := info.Types[n.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					out = append(out, impurity{n.Pos(), "ranges over a channel"})
				}
			}
		case *ast.CallExpr:
			out = append(out, pc.checkCall(pkg, n)...)
		}
		return true
	})
	return out
}

// checkCall classifies one call inside a transaction body.
func (pc *purityChecker) checkCall(pkg *Package, call *ast.CallExpr) []impurity {
	info := pkg.Info
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	switch obj := info.Uses[id].(type) {
	case *types.Builtin:
		if obj.Name() == "close" {
			return []impurity{{call.Pos(), "closes a channel"}}
		}
	case *types.Func:
		// Allowlist: the failpoint package is the sanctioned fault-injection
		// seam — its hooks may sleep or park by design, under test control
		// only, so failpoint.Eval inside an atomic body is not a violation
		// (same name-based precedent as the spin package below). The sched
		// package rides the same seam: sched.Point is the explorer's yield
		// point (a named failpoint.Eval) and parks the calling goroutine
		// under the controller by design.
		if p := obj.Pkg(); p != nil && (p.Name() == "failpoint" || p.Name() == "sched") {
			return nil
		}
		if what := impureCallee(obj); what != "" {
			return []impurity{{call.Pos(), what}}
		}
		// Transitive closure over module callees in any non-opaque
		// package: calls into the STM runtime itself (tx.Load and
		// everything beneath it) are the instrumented operations the rule
		// exists to protect, not violations, so runtime packages stay
		// opaque leaves.
		samePkg := obj.Pkg() == pkg.Types
		if samePkg || (pc.p.declaredInModule(obj) && !pc.opaquePkg(obj.Pkg().Name())) {
			if inner := pc.summarize(obj); len(inner) > 0 {
				name := obj.Name()
				if !samePkg {
					name = funcDisplayName(obj)
				}
				return []impurity{{call.Pos(), fmt.Sprintf("calls %s, which %s", name, inner[0].what)}}
			}
		}
	}
	return nil
}

// impureCallee classifies callees that are irrevocable by themselves,
// returning a description or "".
func impureCallee(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	path, name := pkg.Path(), fn.Name()
	switch {
	case path == "time" && (name == "Sleep" || name == "After" || name == "Tick" || name == "NewTimer" || name == "NewTicker"):
		return "calls time." + name
	case path == "os" || strings.HasPrefix(path, "os/") ||
		path == "net" || strings.HasPrefix(path, "net/"):
		return "performs I/O via " + pkg.Name() + "." + name
	}
	// Mutex acquisition: Lock/RLock on sync's or this repo's spin lock
	// types. A doomed transaction that aborts between Lock and Unlock
	// leaves the mutex held forever.
	if name == "Lock" || name == "RLock" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if n := namedOf(sig.Recv().Type()); n != nil && n.Obj().Pkg() != nil {
				if rp := n.Obj().Pkg(); rp.Path() == "sync" || rp.Name() == "spin" {
					return "acquires a " + rp.Name() + "." + n.Obj().Name()
				}
			}
		}
	}
	return ""
}

// summarize computes (memoized) the impurities of a module function or
// method with a known body, located through the call graph's declaration
// index regardless of package.
func (pc *purityChecker) summarize(fn *types.Func) []impurity {
	if s, ok := pc.summaries[fn]; ok {
		return s
	}
	if pc.inProgress[fn] {
		return nil
	}
	fi := pc.p.CallGraph().Decl(fn)
	if fi == nil || fi.Decl.Body == nil {
		pc.summaries[fn] = nil
		return nil
	}
	pc.inProgress[fn] = true
	s := pc.checkBody(fi.Pkg, fi.Decl.Body)
	delete(pc.inProgress, fn)
	pc.summaries[fn] = s
	return s
}
