package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// walkStack traverses root in ast.Inspect order, passing each node together
// with its ancestor stack (stack[0] is root's parent side; the node itself
// is not included). Returning false prunes the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// unparen strips any number of surrounding parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// fieldOf reports the struct field a selector expression denotes, or nil if
// the selector is not a field access (package qualifier, method value, …).
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	f, _ := s.Obj().(*types.Var)
	return f
}

// deref removes one level of pointer indirection.
func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedOf returns the named type behind t (through one pointer), if any.
func namedOf(t types.Type) *types.Named {
	n, _ := deref(t).(*types.Named)
	return n
}

// isSyncAtomicType reports whether t (through one pointer) is one of the
// typed atomics of sync/atomic (atomic.Uint64, atomic.Pointer[T], …).
func isSyncAtomicType(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// atomicOpNames are the sync/atomic package-level operation prefixes.
var atomicOpPrefixes = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"}

// isAtomicOpName reports whether name looks like a sync/atomic package
// function that operates on a pointed-to location.
func isAtomicOpName(name string) bool {
	for _, p := range atomicOpPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// syncAtomicCall recognizes calls of the form atomic.XxxNN(&target, ...)
// where atomic resolves to sync/atomic, and returns the address-of operand
// (nil otherwise).
func syncAtomicCall(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !isAtomicOpName(sel.Sel.Name) {
		return nil
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	return unparen(call.Args[0])
}

// addressedField digs through &expr and any index expressions to the
// struct-field selector being addressed: &s.f, &s.f[i], &s.a[i].f all
// resolve to a selector. It returns the innermost field selector, the
// field it denotes, and whether the address goes through an index (i.e.
// the atomic target is an *element* of the field, not the field word
// itself); selector and field are nil when the operand is not field-based.
func addressedField(info *types.Info, addr ast.Expr) (sel *ast.SelectorExpr, f *types.Var, indexed bool) {
	u, ok := addr.(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil, nil, false
	}
	e := unparen(u.X)
	for {
		if ix, ok := e.(*ast.IndexExpr); ok {
			e = unparen(ix.X)
			indexed = true
			continue
		}
		break
	}
	s, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, nil, false
	}
	f = fieldOf(info, s)
	if f == nil {
		return nil, nil, false
	}
	return s, f, indexed
}

// qualifiedFieldName renders a field as pkg.Type.Field for diagnostics,
// using the receiver type recorded in the selection when available.
func qualifiedFieldName(recv types.Type, f *types.Var) string {
	qual := func(p *types.Package) string { return p.Name() }
	if n := namedOf(recv); n != nil {
		return types.TypeString(n, qual) + "." + f.Name()
	}
	if f.Pkg() != nil {
		return f.Pkg().Name() + "." + f.Name()
	}
	return f.Name()
}

// relTo renders a position as "file:line" with the file path relative to
// the module root, for stable cross-machine diagnostics.
func (p *Program) relTo(pos token.Pos) string {
	position := p.Fset.Position(pos)
	name := position.Filename
	if rel, err := filepath.Rel(p.ModRoot, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d", name, position.Line)
}
