// callgraph.go builds the module-wide static call graph the
// interprocedural analyzers (privaccess, yieldsite, and txnpurity's
// cross-package closure) share. PR 1's analyzers were intra-package —
// txnpurity followed helpers only inside the package declaring the atomic
// body — which left exactly the escape the paper's discipline cares about:
// a wrapper in another package that performs an uninstrumented access on
// behalf of a transaction. The call graph lifts that restriction with
// nothing beyond go/ast + go/types.
//
// Precision notes (all documented limits are over-approximations on the
// edge side and under-approximations on the resolution side):
//
//   - Edges are recorded for every *reference* to a declared function, not
//     only call positions: taking a method value (store := s.DirectStore)
//     creates an edge, because the referencing function can invoke it
//     later. This makes "reaches" sound for stored function values at the
//     cost of occasionally over-approximating.
//   - Calls through interface methods resolve to the abstract
//     *types.Func of the interface method — a graph leaf. Predicates that
//     care (yieldsite's cm.Wait) match the abstract object by name and
//     declaring package; everything else treats interface dispatch as
//     opaque. Calls through plain function values resolve to nothing.
//   - Calls made inside a function literal are attributed to the function
//     declaration lexically enclosing the literal (the literal may run
//     later or never; for may-analyses the over-approximation is sound).
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FuncInfo ties a declared module function to its source.
type FuncInfo struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// Edge is one reference from a declared function to another function
// object (declared, imported, or abstract interface method).
type Edge struct {
	Callee *types.Func
	Pos    token.Pos
}

// CallGraph is the module-wide function reference graph.
type CallGraph struct {
	prog *Program
	// decls indexes every function and method declared in an analyzed
	// package.
	decls map[*types.Func]*FuncInfo
	// edges lists, per declared function, every function object its body
	// references (in source order, duplicates kept).
	edges map[*types.Func][]Edge
}

// CallGraph returns the program's call graph, building it on first use.
func (p *Program) CallGraph() *CallGraph {
	if p.cg == nil {
		p.cg = buildCallGraph(p)
	}
	return p.cg
}

func buildCallGraph(p *Program) *CallGraph {
	g := &CallGraph{
		prog:  p,
		decls: make(map[*types.Func]*FuncInfo),
		edges: make(map[*types.Func][]Edge),
	}
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.decls[obj] = &FuncInfo{Pkg: pkg, Decl: fd}
				g.edges[obj] = referencedFuncs(pkg.Info, fd.Body)
			}
		}
	}
	return g
}

// referencedFuncs lists every function object the body mentions, in source
// order.
func referencedFuncs(info *types.Info, body ast.Node) []Edge {
	var out []Edge
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if fn, ok := info.Uses[id].(*types.Func); ok {
			out = append(out, Edge{Callee: fn, Pos: id.Pos()})
		}
		return true
	})
	return out
}

// Decl returns the declaration info for a module function, or nil for
// imported, abstract, or synthetic functions.
func (g *CallGraph) Decl(fn *types.Func) *FuncInfo { return g.decls[fn] }

// Edges returns the function objects fn's body references.
func (g *CallGraph) Edges(fn *types.Func) []Edge { return g.edges[fn] }

// Reaches computes the set of declared functions from which a function
// satisfying pred is reachable through the reference graph. The result
// maps each reaching function to the first edge of one witness path
// (an edge whose callee satisfies pred, or whose callee reaches one).
// Functions that themselves satisfy pred are not included on their own
// account — the map answers "does calling fn lead to pred", so a
// pred-satisfying function appears only if it also calls one.
func (g *CallGraph) Reaches(pred func(*types.Func) bool) map[*types.Func]Edge {
	reach := make(map[*types.Func]Edge)
	for changed := true; changed; {
		changed = false
		for fn, edges := range g.edges {
			if _, ok := reach[fn]; ok {
				continue
			}
			for _, e := range edges {
				if e.Callee == fn {
					continue
				}
				if pred(e.Callee) {
					reach[fn] = e
					changed = true
					break
				}
				if _, ok := reach[e.Callee]; ok {
					reach[fn] = e
					changed = true
					break
				}
			}
		}
	}
	return reach
}

// PathString renders a witness path starting at the edge leaving fn, for
// diagnostics: "helper → wrapper → STM.DirectStore". The path is cut off
// with an ellipsis after a few hops; it exists to orient the reader, not
// to be a proof.
func (g *CallGraph) PathString(first Edge, reach map[*types.Func]Edge, pred func(*types.Func) bool) string {
	var parts []string
	e := first
	for i := 0; i < 6; i++ {
		parts = append(parts, funcDisplayName(e.Callee))
		if pred(e.Callee) {
			return strings.Join(parts, " → ")
		}
		next, ok := reach[e.Callee]
		if !ok {
			break
		}
		e = next
	}
	return strings.Join(append(parts, "…"), " → ")
}

// funcDisplayName renders a function for diagnostics: Recv.Name for
// methods, pkg.Name for cross-package functions, bare Name otherwise.
func funcDisplayName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil {
			return n.Obj().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// CalleeOf resolves the static callee of a call expression: a declared
// function, an imported function, a concrete method, or an abstract
// interface method. It returns nil for calls through function values,
// builtins, and type conversions.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// declaredInModule reports whether fn belongs to a package of the analyzed
// module.
func (p *Program) declaredInModule(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == p.ModPath || strings.HasPrefix(path, p.ModPath+"/")
}
