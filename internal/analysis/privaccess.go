// privaccess.go is the static shadow of the privatization-safety
// criterion of Khyzha/Gotsman/Attiya ("Safe Privatization in TM",
// PAPERS.md): an uninstrumented (direct) access is observationally safe
// only on data that is private to the accessor — never published, or
// privatized by a committed transaction whose privatization fence has
// drained every conflicting reader. Violations are precisely
// transactional-to-direct escapes, which is a flow property this analyzer
// checks in two parts:
//
//  1. Reachability (interprocedural, via the module call graph): a
//     transaction body must never reach STM.DirectLoad/DirectStore — not
//     directly and not through a wrapper in any package. A direct access
//     inside a transaction bypasses orec conflict detection entirely, so
//     neither the fence nor validation can order it.
//
//  2. Escape flow (intraprocedural, via the dataflow engine): an address
//     obtained by a transactional load (tx.Load/tx.LoadAddr) that escapes
//     the atomic body may feed a direct access only if the capturing
//     transaction also performed a transactional write — the recognized
//     privatize idiom (examples/privatization, the bench structures'
//     unlink-then-free): the write is what detaches the data, and the
//     commit's fence is what makes the detachment safe. A read-only
//     transaction privatizes nothing, so direct access to what it
//     observed races with concurrent writers.
//
//  3. Retire flow (intraprocedural, position-ordered): an address handed
//     to a Retire method belongs to the epoch-based reclaimer
//     (internal/reclaim, CORRECTNESS.md §14) — once its epoch passes the
//     extent may be poisoned or reused by another thread — so a later
//     uninstrumented access through that address is a use-after-free in
//     waiting. Privatization made the access legal (rule 2's idiom);
//     retirement ends the license. Reassigning the variable kills the
//     taint: it names a different extent from then on.
//
// Soundness limits (path-insensitive, type-based; CORRECTNESS.md §12):
// the "privatizing write" test is syntactic presence of a tx.Store in the
// same body — the analyzer does not prove the write actually detaches the
// escaping address; addresses laundered through heap-resident structures,
// channels, or across function boundaries lose their taint; and calls
// through function values resolve to nothing. The rule is a tripwire for
// the common shapes, not a verifier. Suppress deliberate exceptions with
// //stmlint:ignore privaccess <reason> — the reason is the proof
// obligation.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// PrivAccess returns the privaccess analyzer.
func PrivAccess() *Analyzer {
	return &Analyzer{
		Name: "privaccess",
		Doc:  "uninstrumented Direct* access must stay outside transactions, transactionally-loaded addresses may be accessed directly only after a privatizing write, and never after being retired to the reclaimer",
		Run:  runPrivAccess,
	}
}

// isDirectAccessor reports whether fn is an uninstrumented-access entry
// point: a module method named DirectLoad or DirectStore (stm.STM's pair,
// and any fixture or future stand-in following the naming contract).
func (p *Program) isDirectAccessor(fn *types.Func) bool {
	if fn == nil || !p.declaredInModule(fn) {
		return false
	}
	if fn.Name() != "DirectLoad" && fn.Name() != "DirectStore" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// isRetireMethod reports whether fn is a reclamation entry point: a module
// method named Retire (stm.Thread, core.Thread, reclaim.Local and
// reclaim.Reclaimer — and any fixture or future stand-in following the
// naming contract). Which argument carries the extent is decided by type,
// not position: Reclaimer.Retire takes a shard index first.
func (p *Program) isRetireMethod(fn *types.Func) bool {
	if fn == nil || !p.declaredInModule(fn) || fn.Name() != "Retire" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// isAddrType reports whether t names the transactional-address type (a
// module named type called Addr, through aliases — stm.Addr = heap.Addr —
// and one pointer).
func isAddrType(t types.Type) bool {
	if t == nil {
		return false
	}
	n := namedOf(types.Unalias(t))
	return n != nil && n.Obj().Name() == "Addr"
}

// isTxMethod reports whether fn is a method of a transaction handle (a
// module type named Tx) with one of the given names.
func (p *Program) isTxMethod(fn *types.Func, names ...string) bool {
	if fn == nil || !p.declaredInModule(fn) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := namedOf(sig.Recv().Type())
	if n == nil || n.Obj().Name() != "Tx" {
		return false
	}
	for _, name := range names {
		if fn.Name() == name {
			return true
		}
	}
	return false
}

func runPrivAccess(p *Program) []Diagnostic {
	mayDirect := p.CallGraph().Reaches(p.isDirectAccessor)

	var diags []Diagnostic
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				diags = append(diags, p.checkDeclPrivAccess(pkg, fd, mayDirect)...)
				diags = append(diags, p.checkRetireFlow(pkg, fd, mayDirect)...)
			}
		}
	}
	// Nested atomic literals make the outer body walk revisit the inner
	// one; drop exact duplicates rather than complicating the traversal.
	seen := make(map[string]bool)
	out := diags[:0]
	for _, d := range diags {
		key := d.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}
	return out
}

// txEscape records one variable that left an atomic body carrying a
// transactionally-loaded address.
type txEscape struct {
	obj types.Object
	pos token.Pos // the escaping assignment
	// privatized: every literal that tainted obj also performed a
	// transactional write (the privatize idiom).
	privatized bool
}

// checkDeclPrivAccess analyzes one function declaration: reachability of
// Direct* from the atomic bodies it contains (rule 1) and escape flow from
// those bodies into the rest of the declaration (rule 2).
func (p *Program) checkDeclPrivAccess(pkg *Package, fd *ast.FuncDecl, mayDirect map[*types.Func]Edge) []Diagnostic {
	info := pkg.Info
	var diags []Diagnostic

	// escapes accumulates rule-2 state across every atomic literal in the
	// declaration; an object tainted by any literal without a privatizing
	// write stays unprivatized.
	escapes := make(map[types.Object]*txEscape)

	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicBlockCall(p, info, call) {
			return true
		}
		for _, arg := range call.Args {
			lit, ok := unparen(arg).(*ast.FuncLit)
			if !ok {
				continue
			}
			diags = append(diags, p.checkBodyReachesDirect(pkg, lit.Body, mayDirect)...)
			p.collectTxEscapes(pkg, lit, escapes)
		}
		return true
	})

	seed := make(map[types.Object]Taint)
	live := make(map[types.Object]*txEscape)
	for obj, esc := range escapes {
		if !esc.privatized {
			live[obj] = esc
			seed[obj] = TaintEscaped
		}
	}
	if len(live) == 0 {
		return diags
	}

	// Rule 2 sink scan: propagate the escaped taint through the whole
	// declaration and flag direct accesses fed by it. Sinks inside
	// function literals are skipped — atomic bodies are rule 1's business,
	// and other closures run at times the flow cannot order.
	flow := RunFlow(fd.Body, info, seed, nil)
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := CalleeOf(info, call)
		if fn == nil {
			return true
		}
		_, wraps := mayDirect[fn]
		if !p.isDirectAccessor(fn) && !wraps {
			return true
		}
		for _, a := range call.Args {
			if flow.ExprTaint(a)&TaintEscaped == 0 {
				continue
			}
			src := firstTaintSource(live)
			what := funcDisplayName(fn)
			if wraps {
				what = what + " (which reaches a Direct* access)"
			}
			diags = append(diags, Diagnostic{
				Pos:  p.Fset.Position(call.Pos()),
				Rule: "privaccess",
				Message: fmt.Sprintf(
					"%s receives an address loaded transactionally (escaped via %q at %s) whose transaction performed no privatizing write; only data detached by a committed transaction may be accessed uninstrumented",
					what, src.obj.Name(), p.relTo(src.pos)),
			})
			break
		}
		return true
	})
	return diags
}

// checkBodyReachesDirect flags references inside an atomic body that are,
// or transitively reach, a Direct* accessor (rule 1). References rather
// than calls: taking the method value (store := s.DirectStore) arms the
// same hazard.
func (p *Program) checkBodyReachesDirect(pkg *Package, body ast.Node, mayDirect map[*types.Func]Edge) []Diagnostic {
	info := pkg.Info
	cg := p.CallGraph()
	var diags []Diagnostic
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		if p.isDirectAccessor(fn) {
			diags = append(diags, Diagnostic{
				Pos:  p.Fset.Position(id.Pos()),
				Rule: "privaccess",
				Message: fmt.Sprintf(
					"transaction body uses uninstrumented %s; direct access inside a transaction bypasses orec conflict detection and breaks privatization safety",
					funcDisplayName(fn)),
			})
			return true
		}
		if first, ok := mayDirect[fn]; ok {
			diags = append(diags, Diagnostic{
				Pos:  p.Fset.Position(id.Pos()),
				Rule: "privaccess",
				Message: fmt.Sprintf(
					"transaction body calls %s, which reaches an uninstrumented access (%s); direct access inside a transaction bypasses orec conflict detection",
					funcDisplayName(fn),
					cg.PathString(first, mayDirect, p.isDirectAccessor)),
			})
		}
		return true
	})
	return diags
}

// checkRetireFlow is rule 3: a position-ordered scan of one declaration
// flagging uninstrumented access through an address that was already handed
// to a Retire method. A Retire call taints its Addr-typed identifier
// arguments; a later Direct* call (or a wrapper reaching one) whose
// arguments mention a tainted identifier — including derived expressions
// like n+8 — is flagged; reassigning the variable kills the taint. Function
// literals are skipped on both sides: they run at times source order cannot
// witness (atomic bodies are rule 1's business).
func (p *Program) checkRetireFlow(pkg *Package, fd *ast.FuncDecl, mayDirect map[*types.Func]Edge) []Diagnostic {
	info := pkg.Info
	retired := make(map[types.Object]token.Pos)
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			// The variable names a different extent from here on.
			for _, l := range n.Lhs {
				if id, ok := unparen(l).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						delete(retired, obj)
					}
				}
			}
		case *ast.CallExpr:
			fn := CalleeOf(info, n)
			if fn == nil {
				return true
			}
			_, wraps := mayDirect[fn]
			switch {
			case p.isDirectAccessor(fn) || wraps:
				for _, arg := range n.Args {
					obj, rp := retiredIdentIn(info, arg, retired)
					if obj == nil {
						continue
					}
					what := funcDisplayName(fn)
					if wraps {
						what = what + " (which reaches a Direct* access)"
					}
					diags = append(diags, Diagnostic{
						Pos:  p.Fset.Position(n.Pos()),
						Rule: "privaccess",
						Message: fmt.Sprintf(
							"%s receives %q, an address retired to the reclaimer at %s; once its epoch passes the extent may be poisoned or reused by another thread, so uninstrumented access after Retire is a use-after-free",
							what, obj.Name(), p.relTo(rp)),
					})
					break
				}
			case p.isRetireMethod(fn):
				for _, arg := range n.Args {
					id, ok := unparen(arg).(*ast.Ident)
					if !ok || !isAddrType(info.TypeOf(arg)) {
						continue
					}
					obj := info.Uses[id]
					if v, ok := obj.(*types.Var); ok && !v.IsField() {
						retired[obj] = n.Pos()
					}
				}
			}
		}
		return true
	})
	return diags
}

// retiredIdentIn returns the first identifier inside expr bound to a
// retired object, with its retire position.
func retiredIdentIn(info *types.Info, expr ast.Expr, retired map[types.Object]token.Pos) (types.Object, token.Pos) {
	var obj types.Object
	var pos token.Pos
	ast.Inspect(expr, func(m ast.Node) bool {
		if obj != nil {
			return false
		}
		if id, ok := m.(*ast.Ident); ok {
			if o := info.Uses[id]; o != nil {
				if rp, ok := retired[o]; ok {
					obj, pos = o, rp
				}
			}
		}
		return true
	})
	return obj, pos
}

// collectTxEscapes runs the taint flow inside one atomic literal and
// records assignments of tx-loaded addresses to variables declared outside
// the literal.
func (p *Program) collectTxEscapes(pkg *Package, lit *ast.FuncLit, escapes map[types.Object]*txEscape) {
	info := pkg.Info
	gen := func(call *ast.CallExpr) Taint {
		if p.isTxMethod(CalleeOf(info, call), "Load", "LoadAddr") {
			return TaintTxAddr
		}
		return 0
	}
	flow := RunFlow(lit.Body, info, nil, gen)

	privatized := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if p.isTxMethod(CalleeOf(info, call), "Store", "StoreAddr") {
				privatized = true
			}
		}
		return true
	})

	record := func(target ast.Expr, taint Taint, pos token.Pos) {
		if taint&TaintTxAddr == 0 {
			return
		}
		id, ok := unparen(target).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return
		}
		// Declared inside the literal → not an escape.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return
		}
		esc, ok := escapes[obj]
		if !ok {
			escapes[obj] = &txEscape{obj: obj, pos: pos, privatized: privatized}
			return
		}
		// Tainted by several literals: unprivatized wins (conservative).
		esc.privatized = esc.privatized && privatized
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if n, ok := n.(*ast.AssignStmt); ok {
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				t := flow.ExprTaint(n.Rhs[0])
				for _, l := range n.Lhs {
					record(l, t, n.Pos())
				}
				return true
			}
			for i, l := range n.Lhs {
				if i < len(n.Rhs) {
					record(l, flow.ExprTaint(n.Rhs[i]), n.Pos())
				}
			}
		}
		return true
	})
}

// firstTaintSource picks a deterministic representative escape for the
// diagnostic message (the one at the earliest position).
func firstTaintSource(live map[types.Object]*txEscape) *txEscape {
	var best *txEscape
	for _, esc := range live {
		if best == nil || esc.pos < best.pos ||
			(esc.pos == best.pos && esc.obj.Name() < best.obj.Name()) {
			best = esc
		}
	}
	return best
}
