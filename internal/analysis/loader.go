package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// ImportPath is the module-qualified import path (e.g.
	// "privstm/internal/core"). Command packages keep their path even
	// though nothing imports them.
	ImportPath string
	// Dir is the absolute directory the sources were read from.
	Dir string
	// Name is the package clause name.
	Name string
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's fact tables for Files.
	Info *types.Info
}

// Program is a set of packages loaded together: all analyzers run over one
// Program so cross-package facts (e.g. "this field is accessed atomically
// somewhere") are visible everywhere.
type Program struct {
	Fset *token.FileSet
	// Pkgs are the packages named by the load patterns, sorted by import
	// path. Dependency packages pulled in only via imports are available
	// through the loader cache but are not analyzed.
	Pkgs []*Package

	// ModRoot and ModPath describe the enclosing module.
	ModRoot string
	ModPath string

	// Tags are the custom build tags the file set was selected under
	// (empty for the default build configuration).
	Tags []string

	// cg memoizes the module call graph (built lazily by CallGraph).
	cg *CallGraph
}

// Load locates the module containing dir, resolves the patterns against
// it, and parses and type-checks every matched package (test files are
// skipped). Patterns follow the go tool's shape: "./..." walks the whole
// module, "dir/..." walks a subtree, anything else names one directory.
// The default build configuration selects files (custom build tags false).
func Load(dir string, patterns ...string) (*Program, error) {
	return LoadTags(dir, nil, patterns...)
}

// LoadTags is Load under an explicit custom-tag set: a file constrained by
// //go:build is included iff its constraint holds with every tag in tags
// true (plus the usual GOOS/GOARCH/compiler/release tags). This closes the
// loader's historical blind spot: tag-gated variants like the schedule
// explorer's slots_race.go (-tags privstm_watermark_race) were silently
// invisible to every analyzer, so the lint matrix could not cover the
// exact file whose bug class it exists to catch. Note one program loads
// ONE consistent file set — analyzing both variants of a tag pair means
// two LoadTags calls, which is what cmd/stmlint's -tags flag and the
// Makefile's lint matrix do.
func LoadTags(dir string, tags []string, patterns ...string) (*Program, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	tagSet := make(map[string]bool, len(tags))
	for _, t := range tags {
		if t = strings.TrimSpace(t); t != "" {
			tagSet[t] = true
		}
	}
	l := &loader{
		fset:       token.NewFileSet(),
		modRoot:    modRoot,
		modPath:    modPath,
		tags:       tagSet,
		pkgs:       make(map[string]*Package),
		inProgress: make(map[string]bool),
		stdCache:   make(map[string]*types.Package),
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	for _, pat := range patterns {
		ds, err := resolvePattern(abs, pat, tagSet)
		if err != nil {
			return nil, err
		}
		for _, d := range ds {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("stmlint: no packages match %v", patterns)
	}
	sort.Strings(dirs)
	sortedTags := make([]string, 0, len(tagSet))
	for t := range tagSet {
		sortedTags = append(sortedTags, t)
	}
	sort.Strings(sortedTags)
	prog := &Program{Fset: l.fset, ModRoot: modRoot, ModPath: modPath, Tags: sortedTags}
	for _, d := range dirs {
		ip, err := l.importPathFor(d)
		if err != nil {
			return nil, err
		}
		pkg, err := l.loadModulePkg(ip)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			prog.Pkgs = append(prog.Pkgs, pkg)
		}
	}
	return prog, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("stmlint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("stmlint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// resolvePattern expands one pattern into package directories.
func resolvePattern(base, pat string, tags map[string]bool) ([]string, error) {
	recursive := false
	if pat == "all" {
		pat, recursive = ".", true
	}
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "" {
			pat = "."
		}
	}
	dir := pat
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(base, dir)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return nil, fmt.Errorf("stmlint: pattern %q: not a directory: %s", pat, dir)
	}
	if !recursive {
		if len(goSources(dir, tags)) == 0 {
			return nil, fmt.Errorf("stmlint: no Go files in %s", dir)
		}
		return []string{dir}, nil
	}
	var out []string
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != dir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if len(goSources(p, tags)) > 0 {
			out = append(out, p)
		}
		return nil
	})
	return out, err
}

// goSources lists the non-test .go files of dir whose build constraints
// hold under the given custom-tag set, sorted.
func goSources(dir string, tags map[string]bool) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		path := filepath.Join(dir, name)
		if !buildTagsSatisfied(path, tags) {
			continue
		}
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}

// buildTagsSatisfied reports whether the file's //go:build constraint (if
// any) holds with the custom tags in tags true and every other custom tag
// false (GOOS/GOARCH/compiler and release tags are always true). With an
// empty tag set this selects the same file set as a plain `go build ./...`;
// with a tag enabled the complementary variant (e.g. slots_safe.go's
// !privstm_watermark_race) drops out so the program still type-checks with
// exactly one definition of each symbol.
func buildTagsSatisfied(path string, tags map[string]bool) bool {
	src, err := os.ReadFile(path)
	if err != nil {
		return true // let the parser report the real problem
	}
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if constraint.IsGoBuild(trimmed) {
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				return true
			}
			return expr.Eval(func(tag string) bool {
				return tags[tag] || defaultBuildTag(tag)
			})
		}
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			continue
		}
		break // reached the package clause: no constraint
	}
	return true
}

// defaultBuildTag evaluates one build tag the way an untagged build would.
func defaultBuildTag(tag string) bool {
	if tag == runtime.GOOS || tag == runtime.GOARCH || tag == runtime.Compiler {
		return true
	}
	// Release tags: go1.1 through the running toolchain's version are true.
	return strings.HasPrefix(tag, "go1.")
}

// loader parses and type-checks module packages recursively, acting as the
// types.Importer for intra-module imports and delegating standard-library
// imports to the gc importer (with a from-source fallback, so the tool
// works even where no export data is installed).
type loader struct {
	fset             *token.FileSet
	modRoot, modPath string
	tags             map[string]bool

	pkgs       map[string]*Package
	inProgress map[string]bool

	stdGC    types.Importer
	stdSrc   types.Importer
	stdCache map[string]*types.Package
}

// importPathFor maps an absolute directory inside the module to its import
// path.
func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("stmlint: %s is outside module %s", dir, l.modRoot)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// dirFor inverts importPathFor.
func (l *loader) dirFor(importPath string) string {
	if importPath == l.modPath {
		return l.modRoot
	}
	rel := strings.TrimPrefix(importPath, l.modPath+"/")
	return filepath.Join(l.modRoot, filepath.FromSlash(rel))
}

// Import implements types.Importer for the type-checker: module packages
// are loaded from source recursively, everything else is standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.loadModulePkg(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.importStd(path)
}

func (l *loader) importStd(path string) (*types.Package, error) {
	if p, ok := l.stdCache[path]; ok {
		return p, nil
	}
	if l.stdGC == nil {
		l.stdGC = importer.Default()
	}
	p, err := l.stdGC.Import(path)
	if err != nil {
		if l.stdSrc == nil {
			l.stdSrc = importer.ForCompiler(l.fset, "source", nil)
		}
		var srcErr error
		if p, srcErr = l.stdSrc.Import(path); srcErr != nil {
			return nil, fmt.Errorf("stmlint: import %q: %v (source fallback: %v)", path, err, srcErr)
		}
	}
	l.stdCache[path] = p
	return p, nil
}

// loadModulePkg parses and type-checks one module package (memoized).
func (l *loader) loadModulePkg(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.inProgress[importPath] {
		return nil, fmt.Errorf("stmlint: import cycle through %q", importPath)
	}
	l.inProgress[importPath] = true
	defer delete(l.inProgress, importPath)

	dir := l.dirFor(importPath)
	srcs := goSources(dir, l.tags)
	if len(srcs) == 0 {
		return nil, fmt.Errorf("stmlint: no Go files in %s", dir)
	}
	var files []*ast.File
	name := ""
	for _, src := range srcs {
		f, err := parser.ParseFile(l.fset, src, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if name == "" {
			name = f.Name.Name
		} else if f.Name.Name != name {
			return nil, fmt.Errorf("stmlint: %s: mixed packages %q and %q", dir, name, f.Name.Name)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("stmlint: type-check %s: %v", importPath, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("stmlint: type-check %s: %v", importPath, err)
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Name:       name,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}
