package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// defaultProtectedPkgs names the metadata packages whose struct fields
// carry the privatization protocol's access discipline. The key is the
// package *name* (not path) so the rule also applies to the test fixtures
// and to any future relocation of the packages.
var defaultProtectedPkgs = map[string]bool{
	"orec":    true, // ownership records: owner word, vis word, grace, curr_reader
	"clock":   true, // the global version clock
	"txnlist": true, // the central list of incomplete transactions
	"spin":    true, // spin locks guarding the above
}

// AccessorDiscipline returns the accessordiscipline analyzer with the
// default protected-package set and an empty allowlist.
//
// Invariant (paper §II-C/§II-E): orec words, the clock, and the central
// transaction list are only manipulated through their own package's
// accessors — PackOwned/CAS acquire, Clock.Tick, List.Enter/Remove — so
// that every mutation follows the protocol (e.g. the clock never moves
// backwards, rts|tid are stored as one word, list order matches timestamp
// order). Outside the declaring package, the only permitted direct field
// use is calling a method on a sync/atomic-typed field (o.Owner.Load()),
// which *is* the accessor for exported atomic words.
func AccessorDiscipline() *Analyzer {
	return NewAccessorDiscipline(defaultProtectedPkgs, nil)
}

// NewAccessorDiscipline builds the analyzer with an explicit protected set
// and an allowlist of accessor package names that may touch protected
// fields directly (the escape hatch for tightly coupled helper packages).
func NewAccessorDiscipline(protected, allow map[string]bool) *Analyzer {
	return &Analyzer{
		Name: "accessordiscipline",
		Doc:  "fields of orec/clock/txnlist/spin types may only be touched via their package's accessors",
		Run: func(p *Program) []Diagnostic {
			return runAccessorDiscipline(p, protected, allow)
		},
	}
}

func runAccessorDiscipline(p *Program, protected, allow map[string]bool) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range p.Pkgs {
		if allow[pkg.Name] {
			continue
		}
		info := pkg.Info
		for _, f := range pkg.Files {
			walkStack(f, func(n ast.Node, stack []ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				field := fieldOf(info, sel)
				if field == nil || field.Pkg() == nil {
					return true
				}
				declPkg := field.Pkg()
				if declPkg == pkg.Types || !protected[declPkg.Name()] {
					return true
				}
				if isAtomicMethodCall(sel, field, stack) {
					return true
				}
				name := qualifiedFieldName(info.Selections[sel].Recv(), field)
				diags = append(diags, Diagnostic{
					Pos:  p.Fset.Position(sel.Pos()),
					Rule: "accessordiscipline",
					Message: fmt.Sprintf(
						"direct access to %s outside package %s; use the package's accessor methods (calling sync/atomic methods on the field is allowed)",
						name, declPkg.Name()),
				})
				return true
			})
		}
	}
	return diags
}

// isAtomicMethodCall reports whether selector sel (a protected field) is
// used only as the receiver of a method call on a sync/atomic typed field:
// the expression shape x.Field.Load(...) with Field of type atomic.T.
func isAtomicMethodCall(sel *ast.SelectorExpr, field *types.Var, stack []ast.Node) bool {
	if !isSyncAtomicType(field.Type()) || len(stack) < 2 {
		return false
	}
	parent, ok := stack[len(stack)-1].(*ast.SelectorExpr)
	if !ok || unparen(parent.X) != sel {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	return ok && unparen(call.Fun) == parent
}
