// Package core is a stmlint test fixture for the yieldsite rule (the
// package is named core so it falls inside the analyzer's default runtime
// scope): poll loops with and without sched-visible yields, progress
// loops, and bounded scans.
package core

import (
	"sync/atomic"

	fp "privstm/internal/analysis/testdata/src/yieldsite/failpoint"
	"privstm/internal/analysis/testdata/src/yieldsite/spin"
)

var (
	done atomic.Bool
	turn atomic.Uint64
)

// PollNoYield spins on a flag it never writes — the starvation shape.
func PollNoYield() {
	for !done.Load() { // want flagged: poll without yield
	}
}

// InfinitePollNoYield is the same poll written as an infinite loop.
func InfinitePollNoYield() {
	for { // want flagged: infinite poll without yield
		if done.Load() {
			return
		}
	}
}

// PollWithFailpoint is clean: the explorer owns the seam.
func PollWithFailpoint() {
	for !done.Load() {
		fp.Eval("fixture/poll")
	}
}

// PollWithBackoff is clean: spin.Backoff.Wait is a recognized yield.
func PollWithBackoff() {
	var b spin.Backoff
	for !done.Load() {
		b.Wait()
	}
}

// CASLoop is clean: it writes the state it reads, so its wait is bounded
// by rivals' progress — a progress loop, not a poll loop.
func CASLoop() uint64 {
	for {
		cur := turn.Load()
		if turn.CompareAndSwap(cur, cur+1) {
			return cur
		}
	}
}

// BoundedScan is clean: the atomic read sits under an ordered comparison —
// it is the scan's extent, not a condition being waited out.
func BoundedScan() uint64 {
	var sum uint64
	for i := uint64(0); i < turn.Load(); i++ {
		sum += i
	}
	return sum
}

// readFlag hides the atomic read one call deep.
func readFlag() bool { return done.Load() }

// TransitiveReadNoYield launders the poll through a helper; the call-graph
// read closure still sees it.
func TransitiveReadNoYield() {
	for { // want flagged: transitive poll without yield
		if readFlag() {
			return
		}
	}
}

// yieldingHelper reaches a yield point transitively.
func yieldingHelper() { fp.Eval("fixture/helper") }

// TransitiveYield is clean: the yield arrives through the helper.
func TransitiveYield() {
	for !done.Load() {
		yieldingHelper()
	}
}

// Suppressed demonstrates the escape hatch with its mandatory reason.
func Suppressed() {
	//stmlint:ignore yieldsite fixture: demonstrating suppression
	for !done.Load() {
	}
}
