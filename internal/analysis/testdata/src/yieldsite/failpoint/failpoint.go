// Package failpoint is the yieldsite fixture's stand-in for the real
// failpoint seam: the analyzer recognizes Eval by package name and
// function name, exactly as the schedule explorer hooks it.
package failpoint

// Eval marks a sched-visible yield point.
func Eval(name string) { _ = name }
