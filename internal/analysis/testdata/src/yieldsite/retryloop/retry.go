// Package core (the retryloop fixture) is the rediscovery control for the
// yieldsite analyzer — the repo's watermark-race tradition applied to the
// PR 5 starvation bug: RunBad mirrors core.Run's retry loop as it stood
// before the core/retry/cm-wait yield was added, and the analyzer must
// keep flagging it; RunGood is the post-fix shape and must stay clean. If
// the analyzer ever stops catching the historical omission, the test
// pinned to RunBad's loop fails.
package core

import (
	"sync/atomic"

	fp "privstm/internal/analysis/testdata/src/yieldsite/failpoint"
)

// engine stands in for core.Engine: begin and commit read shared clock
// state, so the retry loop's re-reads are transitive atomic loads — the
// same way the real Run loop polls the world.
type engine struct{ epoch atomic.Uint64 }

func (e *engine) begin() uint64   { return e.epoch.Load() }
func (e *engine) tryCommit() bool { return e.epoch.Load()&1 == 0 }

// cmPolicy stands in for the contention-manager interface; a module method
// named Wait is a recognized yield.
type cmPolicy struct{}

// Wait parks the loser until its rival finishes.
func (cmPolicy) Wait() {}

// RunBad is the pre-PR 5 retry loop: the abort path goes straight back to
// begin with no sched-visible yield, so a parked rival can starve and the
// schedule explorer cannot interleave the retry.
func RunBad(e *engine, body func()) {
	for { // the historical core/retry/cm-wait omission
		e.begin()
		body()
		if e.tryCommit() {
			return
		}
	}
}

// RunGood is the post-PR 5 shape: failpoint seam plus CM wait on the abort
// path.
func RunGood(e *engine, cm cmPolicy, body func()) {
	for {
		e.begin()
		body()
		if e.tryCommit() {
			return
		}
		fp.Eval("core/retry/cm-wait")
		cm.Wait()
	}
}
