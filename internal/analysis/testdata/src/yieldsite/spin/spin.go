// Package spin is the yieldsite fixture's stand-in for the backoff
// package: Wait is recognized as a yield primitive by package and method
// name.
package spin

// Backoff mimics the real backoff's shape.
type Backoff struct{ attempts int }

// Wait performs one backoff step.
func (b *Backoff) Wait() { b.attempts++ }
