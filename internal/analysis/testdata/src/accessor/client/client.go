// Package client is the stmlint accessordiscipline fixture: it touches
// protected metadata fields from outside their packages.
package client

import (
	"privstm/internal/analysis/testdata/src/accessor/clock"
	"privstm/internal/analysis/testdata/src/accessor/orec"
)

// Good uses only accessors and atomic method calls.
func Good(o *orec.Orec, c *clock.Clock) uint64 {
	w := o.Owner.Load() // clean: atomic method call on the field
	o.Owner.Store(w | 1)
	o.SetWTS(c.Tick()) // clean: accessor methods
	return o.WTS()
}

// Bad reaches into the protected structs directly.
func Bad(o *orec.Orec, c *clock.Clock) uint64 {
	o.Wts = 9            // want flagged: plain field write from outside
	w := o.Wts           // want flagged: plain field read from outside
	own := o.Owner       // want flagged: copying the atomic word, not calling through it
	ts := c.NowTS.Add(1) // clean: atomic method call
	pc := &c.NowTS       // want flagged: leaking the address sidesteps the accessor
	_ = pc
	return w + ts + own.Load()
}

// Suppressed shows the escape hatch.
func Suppressed(o *orec.Orec) uint64 {
	//stmlint:ignore accessordiscipline single-threaded test harness setup
	return o.Wts
}

// GoodHandle exercises the pointer-handle record of the SoA-capable table:
// method calls through a *atomic.Uint64 field are the accessor, exactly as
// with an embedded atomic word.
func GoodHandle(h *orec.Handle) uint64 {
	w := h.Owner.Load() // clean: atomic method call through the pointer field
	h.Vis.Store(w | 1)  // clean: same
	if h.Owner.CompareAndSwap(w, w+1) {
		return uint64(h.Index()) // clean: accessor for the plain field
	}
	return w
}

// BadHandle shows that the pointer indirection is not an escape hatch.
func BadHandle(h *orec.Handle) uint64 {
	p := h.Owner // want flagged: aliasing the word pointer sidesteps the discipline
	h.Vis = nil  // want flagged: rebinding the handle's pointer field
	v := *h.Vis  // want flagged: dereferencing without an atomic method call
	return p.Load() + v.Load()
}

// GoodThreadClock drives the per-thread clock through its accessors and
// atomic method calls — the only sanctioned ways to touch a clock word.
func GoodThreadClock(l *clock.ThreadClock) uint64 {
	l.AdvanceTo(l.Now() + 1) // clean: accessor methods
	w := l.LocalTS.Load()    // clean: atomic method call on the field
	l.LocalTS.Store(w)       // clean: same
	return w
}

// BadThreadClock reaches into the per-thread clock word directly: merging
// thread-local times must go through AdvanceTo (monotone) and diagnostics
// must go through atomic loads, never copies or aliases of the word.
func BadThreadClock(l *clock.ThreadClock, m *clock.ThreadClock) uint64 {
	w := l.LocalTS  // want flagged: copying the atomic word, not calling through it
	p := &m.LocalTS // want flagged: leaking the address sidesteps AdvanceTo
	_ = p
	return w.Load()
}
