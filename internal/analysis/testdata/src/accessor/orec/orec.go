// Package orec is a stmlint test fixture standing in for the runtime's
// ownership-record package: its name puts it in the protected set.
package orec

import "sync/atomic"

// Orec mimics the real ownership record: an atomic owner word plus a
// plain field that only this package's accessors may touch.
type Orec struct {
	Owner atomic.Uint64
	Wts   uint64
}

// WTS is the accessor for the plain field.
func (o *Orec) WTS() uint64 { return o.Wts }

// SetWTS is the mutating accessor.
func (o *Orec) SetWTS(v uint64) { o.Wts = v }
