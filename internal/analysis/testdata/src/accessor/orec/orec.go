// Package orec is a stmlint test fixture standing in for the runtime's
// ownership-record package: its name puts it in the protected set.
package orec

import "sync/atomic"

// Orec mimics the real ownership record: an atomic owner word plus a
// plain field that only this package's accessors may touch.
type Orec struct {
	Owner atomic.Uint64
	Wts   uint64
}

// WTS is the accessor for the plain field.
func (o *Orec) WTS() uint64 { return o.Wts }

// SetWTS is the mutating accessor.
func (o *Orec) SetWTS(v uint64) { o.Wts = v }

// Handle mimics the pointer-handle record of the layout-polymorphic table
// (structure-of-arrays support): the atomic words are reached through
// *atomic.Uint64 fields pointing into layout-dependent backing arrays, and
// idx is a plain field with an accessor.
type Handle struct {
	Owner *atomic.Uint64
	Vis   *atomic.Uint64
	idx   uint32
}

// Index is the accessor for the plain field.
func (h *Handle) Index() uint32 { return h.idx }
