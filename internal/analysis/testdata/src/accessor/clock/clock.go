// Package clock is a stmlint test fixture standing in for the global
// version clock: its name puts it in the protected set.
package clock

import "sync/atomic"

// Clock exposes its counter so the fixture's client can violate the
// discipline; the real package keeps it unexported.
type Clock struct {
	NowTS atomic.Uint64
}

// Tick advances the clock.
func (c *Clock) Tick() uint64 { return c.NowTS.Add(1) }
