// Package clock is a stmlint test fixture standing in for the global
// version clock: its name puts it in the protected set.
package clock

import "sync/atomic"

// Clock exposes its counter so the fixture's client can violate the
// discipline; the real package keeps it unexported.
type Clock struct {
	NowTS atomic.Uint64
}

// Tick advances the clock.
func (c *Clock) Tick() uint64 { return c.NowTS.Add(1) }

// ThreadClock mirrors the per-thread clock of the thread-local scheme: one
// exported atomic word, owner-advanced through AdvanceTo. Exported here so
// the fixture's client can violate the discipline.
type ThreadClock struct {
	LocalTS atomic.Uint64
}

// Now returns the thread's current local time.
func (l *ThreadClock) Now() uint64 { return l.LocalTS.Load() }

// AdvanceTo raises the local clock to t (never backwards).
func (l *ThreadClock) AdvanceTo(t uint64) {
	if t > l.LocalTS.Load() {
		l.LocalTS.Store(t)
	}
}
