// Package mixedatomic is a stmlint test fixture: counters mixing
// sync/atomic and plain access, with clean code alongside.
package mixedatomic

import "sync/atomic"

// Counters mixes access disciplines on purpose.
type Counters struct {
	hits   int64
	misses int64
	slots  []uint64
	clean  atomic.Int64 // typed atomic: invisible to the rule
	plain  int64        // never accessed atomically: also invisible
}

// Bump updates the counters atomically.
func (c *Counters) Bump(i int) {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64((&c.misses), 1)
	atomic.StoreUint64(&c.slots[i], 7)
	c.clean.Add(1)
	c.plain++
}

// Snapshot reads them back with plain loads: every field read here that
// Bump touched with sync/atomic must be flagged.
func (c *Counters) Snapshot() (int64, int64, uint64) {
	h := c.hits                 // want flagged: plain read of atomic field
	c.misses = 0                // want flagged: plain write of atomic field
	n := len(c.slots)           // clean: len does not race with element atomics
	e := c.slots[0]             // want flagged: plain element access
	for _, s := range c.slots { // want flagged: range copies elements
		e += s
	}
	_ = n
	return h, c.plain, e
}

// Suppressed demonstrates the ignore directive.
func (c *Counters) Suppressed() int64 {
	//stmlint:ignore mixedatomic read-only snapshot taken after workers join
	return c.hits
}
