// fixture_failpoint.go exercises the failpoint allowlist: Eval may sleep
// under test control, but it is the sanctioned injection seam — calls to it
// inside atomic bodies must not be flagged.
package txnpurity

import "privstm/internal/analysis/testdata/src/txnpurity/failpoint"

// FailpointBodies is clean: failpoint calls are allowlisted.
func FailpointBodies(t *Thread) {
	_ = t.Atomic(func() {
		failpoint.Eval("core/commit/before-fence")
		word = pureHelper()
	})
	Run(func() {
		failpoint.Eval("core/rollback/mid-undo")
	})
}
