// Package sched is a stand-in for privstm/internal/sched: Point is the
// schedule explorer's yield seam (it parks the goroutine under the
// controller by design), and Run executes worker *goroutine* bodies, not
// transaction bodies — despite sharing core.Run's name.
package sched

import "time"

// Point pretends to be a yield point (worst case: parks the goroutine).
func Point(name string) {
	if name == "" {
		time.Sleep(time.Millisecond)
	}
}

// Run pretends to execute worker bodies under the controller.
func Run(seed int, bodies ...func()) {
	for _, b := range bodies {
		b()
	}
}
