// fixture_cross.go exercises the interprocedural closure: the irrevocable
// effect sits in another package, reached through the module call graph.
package txnpurity

import "privstm/internal/analysis/testdata/src/txnpurity/helpers"

// CrossBodies hides the sleep one package away.
func CrossBodies(t *Thread) {
	_ = t.Atomic(func() {
		helpers.Sleepy() // want flagged: transitive cross-package sleep
	})
	_ = t.Atomic(func() { // clean: pure cross-package call
		word = uint64(helpers.Pure())
	})
}
