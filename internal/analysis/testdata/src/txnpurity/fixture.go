// Package txnpurity is a stmlint test fixture: function literals passed to
// Atomic/Run containing irrevocable side effects.
package txnpurity

import (
	"os"
	"sync"
	"time"
)

// Thread is an in-module stand-in for stm.Thread; a method named Atomic
// taking a function literal marks a transaction body.
type Thread struct{}

// Atomic pretends to run body transactionally.
func (t *Thread) Atomic(body func()) error { body(); return nil }

// Run is the in-module stand-in for core.Run.
func Run(body func()) { body() }

var (
	mu   sync.Mutex
	ch   = make(chan int, 1)
	word uint64
)

// sleepHelper hides an irrevocable effect one call deep.
func sleepHelper() {
	time.Sleep(time.Millisecond)
}

// pureHelper is fine.
func pureHelper() uint64 { return word + 1 }

// Bodies exercises every violation class.
func Bodies(t *Thread) {
	_ = t.Atomic(func() {
		time.Sleep(time.Millisecond) // want flagged: sleep
	})
	_ = t.Atomic(func() {
		ch <- 1 // want flagged: channel send
		<-ch    // want flagged: channel receive
	})
	_ = t.Atomic(func() {
		select { // want flagged: select
		case v := <-ch:
			word = uint64(v)
		default:
		}
	})
	_ = t.Atomic(func() {
		close(ch)   // want flagged: close
		go func() { // want flagged: goroutine launch
			word++
		}()
	})
	_ = t.Atomic(func() {
		mu.Lock() // want flagged: mutex acquisition
		defer mu.Unlock()
		_, _ = os.ReadFile("/etc/hostname") // want flagged: os I/O
	})
	Run(func() {
		sleepHelper() // want flagged: transitive same-package sleep
		pureHelper()  // clean
	})
	Run(func() {
		for v := range ch { // want flagged: ranging over a channel
			word = uint64(v)
		}
	})
	_ = t.Atomic(func() { // clean body
		word = pureHelper()
	})
	_ = t.Atomic(func() {
		//stmlint:ignore txnpurity deliberate: demonstrating suppression
		time.Sleep(time.Microsecond)
	})
}
