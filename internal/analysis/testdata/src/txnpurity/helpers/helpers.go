// Package helpers hides an irrevocable effect behind a package boundary —
// the escape the same-package-only closure missed before the call graph.
package helpers

import "time"

// Sleepy blocks; fine from plain code, a replayed stall inside a body.
func Sleepy() {
	time.Sleep(time.Millisecond)
}

// Pure is fine from anywhere.
func Pure() int { return 42 }
