// fixture_sched.go exercises the sched allowlist: Point is the explorer's
// yield seam (allowlisted inside atomic bodies, like failpoint.Eval), and
// sched.Run's literal arguments are worker goroutine bodies — not
// transaction bodies — so blocking inside them must not be flagged even
// though the function shares core.Run's name.
package txnpurity

import "privstm/internal/analysis/testdata/src/txnpurity/sched"

// SchedBodies is clean: yield points are allowlisted, and exploration
// worker bodies are ordinary concurrent code.
func SchedBodies(t *Thread, ch chan int) {
	_ = t.Atomic(func() {
		sched.Point("test/fixture/mid-txn")
		word = pureHelper()
	})
	sched.Run(1,
		func() { ch <- 1 },
		func() { <-ch },
	)
}
