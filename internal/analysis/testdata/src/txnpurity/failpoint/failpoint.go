// Package failpoint is a stand-in for privstm/internal/failpoint: its Eval
// may sleep or park under test control, but calls to it inside atomic
// bodies are the sanctioned injection seam and must not be flagged.
package failpoint

import "time"

// Eval pretends to evaluate a failpoint (here: worst case, a sleep).
func Eval(name string) {
	if name == "" {
		time.Sleep(time.Millisecond)
	}
}
