// Package privaccess is a stmlint test fixture: uninstrumented Direct*
// access reachable from transaction bodies (rule 1) and transactionally
// loaded addresses escaping to direct access without a privatizing write
// (rule 2), plus the clean shapes each rule must not flag.
package privaccess

import (
	"privstm/internal/analysis/testdata/src/privaccess/stmlib"
	"privstm/internal/analysis/testdata/src/privaccess/wrap"
)

// freeLocal is a same-package wrapper over the uninstrumented store.
func freeLocal(s *stmlib.STM, a stmlib.Addr) {
	s.DirectStore(a, 0)
}

// DirectInBody references the uninstrumented pair inside a transaction:
// once as a call, once as a method value stored for later use.
func DirectInBody(t *stmlib.Thread, s *stmlib.STM, a stmlib.Addr) {
	_ = t.Atomic(func(tx *stmlib.Tx) {
		v := s.DirectLoad(a)   // want flagged: direct load in body
		store := s.DirectStore // want flagged: method value arms the hazard
		store(a, v)
	})
}

// WrappedInBody reaches the uninstrumented store through helpers — one in
// this package, one across a package boundary.
func WrappedInBody(t *stmlib.Thread, s *stmlib.STM, a stmlib.Addr) {
	_ = t.Atomic(func(tx *stmlib.Tx) {
		freeLocal(s, a) // want flagged: same-package wrapper
		wrap.Free(s, a) // want flagged: cross-package wrapper
	})
}

// UnprivatizedEscape leaks the address a read-only transaction observed:
// nothing detached the node, so the direct load races with writers.
func UnprivatizedEscape(t *stmlib.Thread, s *stmlib.STM, head stmlib.Addr) uint64 {
	var n stmlib.Addr
	_ = t.Atomic(func(tx *stmlib.Tx) {
		n = tx.LoadAddr(head)
	})
	return s.DirectLoad(n) // want flagged: unprivatized escape
}

// DerivedEscape shows the taint surviving address arithmetic: a field
// offset computed from the escaped address is still the escaped address.
func DerivedEscape(t *stmlib.Thread, s *stmlib.STM, head stmlib.Addr) uint64 {
	var n stmlib.Addr
	_ = t.Atomic(func(tx *stmlib.Tx) {
		n = tx.LoadAddr(head)
	})
	field := n + 8
	return s.DirectLoad(field) // want flagged: derived from escape
}

// PrivatizedEscape is the canonical legal idiom (examples/privatization):
// the transaction unlinks the node it returns, so after commit — and the
// privatization fence it implies — the node is private to this thread.
func PrivatizedEscape(t *stmlib.Thread, s *stmlib.STM, head stmlib.Addr) uint64 {
	var n stmlib.Addr
	_ = t.Atomic(func(tx *stmlib.Tx) {
		n = tx.LoadAddr(head)
		tx.StoreAddr(head, stmlib.Nil) // privatizing write: detach
	})
	return s.DirectLoad(n) // clean: privatized behind the commit fence
}

// OutsideIsFine: direct access on an address that never saw a transaction
// is plain memory access — never flagged.
func OutsideIsFine(s *stmlib.STM, a stmlib.Addr) uint64 {
	return s.DirectLoad(a)
}

// Suppressed demonstrates the escape hatch: the ignore directive takes a
// mandatory reason, which is the author's proof obligation.
func Suppressed(t *stmlib.Thread, s *stmlib.STM, head stmlib.Addr) uint64 {
	var n stmlib.Addr
	_ = t.Atomic(func(tx *stmlib.Tx) {
		n = tx.LoadAddr(head)
	})
	//stmlint:ignore privaccess fixture: single-threaded test harness, no concurrent writers
	return s.DirectLoad(n)
}
