// Package wrap hides an uninstrumented access behind a cross-package
// helper — exactly the escape an intra-package analysis cannot see and
// the call graph exists to close.
package wrap

import "privstm/internal/analysis/testdata/src/privaccess/stmlib"

// Free performs a direct store on behalf of its caller. Legal from plain
// code operating on privatized data; a privatization-safety violation when
// reached from inside a transaction.
func Free(s *stmlib.STM, a stmlib.Addr) {
	s.DirectStore(a, 0)
}
