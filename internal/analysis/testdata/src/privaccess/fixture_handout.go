// fixture_handout.go pins the privatized-handout idiom of the semantic
// containers' escape hatch (tds.Map.PrivateSnapshot / tds.Queue.
// DrainPrivate): a transaction detaches a whole chain with one privatizing
// write, the caller traverses the extent uninstrumented, and finishes by
// retiring every node. The clean shape must stay clean; forgetting the
// privatizing write or touching a node after its Retire must be flagged.
package privaccess

import "privstm/internal/analysis/testdata/src/privaccess/stmlib"

// DrainHandout is the escape-hatch shape internal/tds implements: detach
// the chain head inside the transaction (the privatizing write), then walk
// the now-private nodes directly and retire each one after its last use.
func DrainHandout(t *stmlib.Thread, s *stmlib.STM, head stmlib.Addr) uint64 {
	var n stmlib.Addr
	_ = t.Atomic(func(tx *stmlib.Tx) {
		n = tx.LoadAddr(head)
		tx.StoreAddr(head, stmlib.Nil) // privatizing write: detach the chain
	})
	var sum uint64
	for n != stmlib.Nil {
		next := stmlib.Addr(s.DirectLoad(n)) // clean: privatized chain
		sum += s.DirectLoad(n + 1)           // clean: same extent
		t.Retire(n, 2)
		n = next // reassignment: the loop variable now names the next node
	}
	return sum
}

// DrainWithoutDetach forgets the privatizing write: the handed-out head
// still hangs off shared memory, so the direct walk races with writers.
func DrainWithoutDetach(t *stmlib.Thread, s *stmlib.STM, head stmlib.Addr) uint64 {
	var n stmlib.Addr
	_ = t.Atomic(func(tx *stmlib.Tx) {
		n = tx.LoadAddr(head)
	})
	return s.DirectLoad(n + 1) // want flagged: no privatizing write
}

// DrainUseAfterRetire retires the node before its last direct read: the
// value read races with the reclaimer's poisoning.
func DrainUseAfterRetire(t *stmlib.Thread, s *stmlib.STM, head stmlib.Addr) uint64 {
	var n stmlib.Addr
	_ = t.Atomic(func(tx *stmlib.Tx) {
		n = tx.LoadAddr(head)
		tx.StoreAddr(head, stmlib.Nil) // privatizing write: detach
	})
	t.Retire(n, 2)
	return s.DirectLoad(n + 1) // want flagged: retired before the read
}
