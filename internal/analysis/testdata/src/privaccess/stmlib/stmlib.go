// Package stmlib holds the privaccess fixture's in-module stand-ins for
// the stm API surface the analyzer recognizes by name and shape: a type
// with the uninstrumented DirectLoad/DirectStore pair, a transaction
// handle named Tx with Load/LoadAddr/Store/StoreAddr, and a Thread whose
// Atomic method marks transaction bodies. It lives in its own package so
// both the fixture and its cross-package wrapper can import it without a
// cycle.
package stmlib

// Addr is the stand-in for stm.Addr.
type Addr uintptr

// Nil is the null address.
const Nil Addr = 0

// STM is the stand-in for stm.STM carrying the uninstrumented access pair.
type STM struct{ mem map[Addr]uint64 }

// DirectLoad reads a word without instrumentation.
func (s *STM) DirectLoad(a Addr) uint64 { return s.mem[a] }

// DirectStore writes a word without instrumentation.
func (s *STM) DirectStore(a Addr, v uint64) { s.mem[a] = v }

// Tx is the stand-in transaction handle.
type Tx struct{ s *STM }

// Load reads a word transactionally.
func (tx *Tx) Load(a Addr) uint64 { return tx.s.mem[a] }

// LoadAddr reads an address word transactionally.
func (tx *Tx) LoadAddr(a Addr) Addr { return Addr(tx.s.mem[a]) }

// Store writes a word transactionally.
func (tx *Tx) Store(a Addr, v uint64) { tx.s.mem[a] = v }

// StoreAddr writes an address word transactionally.
func (tx *Tx) StoreAddr(a Addr, v Addr) { tx.s.mem[a] = uint64(v) }

// Thread is the stand-in for stm.Thread.
type Thread struct{ s *STM }

// Atomic pretends to run body as one transaction.
func (t *Thread) Atomic(body func(tx *Tx)) error {
	body(&Tx{s: t.s})
	return nil
}

// Retire is the stand-in for stm.Thread.Retire: it hands the n-word extent
// at a to the epoch-based reclaimer for eventual poisoning and reuse.
func (t *Thread) Retire(a Addr, n int) { delete(t.s.mem, a) }
