// fixture_retire.go exercises privaccess rule 3: an address handed to a
// Retire method belongs to the epoch-based reclaimer, so uninstrumented
// access through it afterwards is a use-after-free in waiting — even when
// the access was legal moments earlier under the privatize idiom. The
// clean shapes pin the rule's position ordering and its reassignment kill.
package privaccess

import "privstm/internal/analysis/testdata/src/privaccess/stmlib"

// RetireEndsTheLicense privatizes a node (legal direct access), retires
// it, and then touches it again: the first access is clean, the second is
// the use-after-free the reclamation epoch exists to prevent.
func RetireEndsTheLicense(t *stmlib.Thread, s *stmlib.STM, head stmlib.Addr) uint64 {
	var n stmlib.Addr
	_ = t.Atomic(func(tx *stmlib.Tx) {
		n = tx.LoadAddr(head)
		tx.StoreAddr(head, stmlib.Nil) // privatizing write: detach
	})
	v := s.DirectLoad(n) // clean: privatized, not yet retired
	t.Retire(n, 2)
	return v + s.DirectLoad(n) // want flagged: retired address
}

// RetiredDerived shows the taint surviving address arithmetic: a field
// offset computed from the retired address is still inside the extent.
func RetiredDerived(t *stmlib.Thread, s *stmlib.STM, n stmlib.Addr) {
	t.Retire(n, 2)
	s.DirectStore(n+1, 0) // want flagged: derived from retired address
}

// RetiredIntoWrapper pushes the retired address through a helper that
// reaches the uninstrumented store — the call graph closes the loophole.
func RetiredIntoWrapper(t *stmlib.Thread, s *stmlib.STM, n stmlib.Addr) {
	t.Retire(n, 2)
	freeLocal(s, n) // want flagged: wrapper reaches DirectStore
}

// ReassignedAfterRetire is the kill shape: after reassignment the variable
// names a different extent, so the later access is plain memory access.
func ReassignedAfterRetire(t *stmlib.Thread, s *stmlib.STM, n, fresh stmlib.Addr) uint64 {
	t.Retire(n, 2)
	n = fresh
	return s.DirectLoad(n) // clean: reassignment killed the taint
}

// AccessBeforeRetire pins the position ordering: the access precedes the
// retire in source order, so nothing is flagged.
func AccessBeforeRetire(t *stmlib.Thread, s *stmlib.STM, n stmlib.Addr) uint64 {
	v := s.DirectLoad(n)
	t.Retire(n, 2)
	return v
}

// SuppressedRetire demonstrates the escape hatch for rule 3, with the
// mandatory reason as the proof obligation.
func SuppressedRetire(t *stmlib.Thread, s *stmlib.STM, n stmlib.Addr) uint64 {
	t.Retire(n, 2)
	//stmlint:ignore privaccess fixture: single-threaded, collect cannot run concurrently
	return s.DirectLoad(n)
}
