// Package copylock is a stmlint test fixture: values containing spin
// locks and atomics copied by value.
package copylock

import (
	"sync/atomic"

	"privstm/internal/analysis/testdata/src/copylock/spin"
)

// Orec carries an atomic word: copying it forks the protocol's identity.
type Orec struct {
	Owner atomic.Uint64
	pad   [6]uint64
}

// Table embeds locks transitively (struct → array → struct → atomic).
type Table struct {
	mu    spin.Mutex
	orecs [4]Orec
}

// Plain has no lock-like fields and may be copied freely.
type Plain struct {
	a, b uint64
}

// ByValue has a by-value receiver. // want flagged below
func (t Table) ByValue() int { return len(t.orecs) } // want flagged: receiver copy

// ByPointer is the correct shape.
func (t *Table) ByPointer() int { return len(t.orecs) }

// Consume takes an orec by value. // want flagged below
func Consume(o Orec) uint64 { return o.Owner.Load() } // want flagged: parameter copy

// Copies exercises the assignment/element/range copy checks.
func Copies(t *Table, orecs []Orec, p Plain) {
	local := *t               // want flagged: dereference copy
	o := orecs[0]             // want flagged: element copy
	q := p                    // clean: Plain carries no locks
	fresh := Orec{}           // clean: composite literal constructs, not copies
	for _, e := range orecs { // want flagged: range copies each element
		_ = e
	}
	_, _, _, _ = local, o, q, fresh
}

// Deref returns a copy through a pointer. // want flagged below
func Deref(t *Table) Table { return *t } // want flagged: by-value result and dereference return

// Suppressed shows the escape hatch.
func Suppressed(o *Orec) uint64 {
	//stmlint:ignore copylock snapshot of a quiesced orec in a single-threaded test
	snapshot := *o
	return snapshot.Owner.Load()
}
