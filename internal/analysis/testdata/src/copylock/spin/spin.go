// Package spin is a stmlint test fixture standing in for the runtime's
// spin-lock package; copylock recognizes its Mutex by package name.
package spin

// Mutex mimics the real test-and-test-and-set lock.
type Mutex struct {
	state uint32
}

// Lock is a stub.
func (m *Mutex) Lock() { m.state = 1 }

// Unlock is a stub.
func (m *Mutex) Unlock() { m.state = 0 }
