package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadedFiles returns the base names of the files the loader selected for
// the given custom tag set.
func loadedFiles(t *testing.T, tags []string, patterns ...string) map[string]bool {
	t.Helper()
	prog, err := LoadTags(filepath.Join("..", ".."), tags, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]bool)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			out[filepath.Base(prog.Fset.Position(f.Pos()).Filename)] = true
		}
	}
	return out
}

// TestLoadTagsCoversRaceFile is the regression test for the loader's
// build-tag blind spot: files behind //go:build constraints used to be
// dropped from analysis entirely, so the historical watermark-race variant
// (slots_race.go) was never linted. Each tag set must select exactly one
// of the two variants — the same file set the compiler would build.
func TestLoadTagsCoversRaceFile(t *testing.T) {
	def := loadedFiles(t, nil, "./internal/txnlist")
	if !def["slots_safe.go"] {
		t.Errorf("default tag set: slots_safe.go not loaded")
	}
	if def["slots_race.go"] {
		t.Errorf("default tag set: slots_race.go loaded despite its constraint")
	}

	race := loadedFiles(t, []string{"privstm_watermark_race"}, "./internal/txnlist")
	if !race["slots_race.go"] {
		t.Errorf("race tag set: slots_race.go still invisible to analysis")
	}
	if race["slots_safe.go"] {
		t.Errorf("race tag set: slots_safe.go loaded alongside its replacement")
	}
}

// TestLoadTagsRecordsTags pins the Program.Tags bookkeeping the CLI's
// JSON output reports.
func TestLoadTagsRecordsTags(t *testing.T) {
	prog, err := LoadTags(filepath.Join("..", ".."), []string{"privstm_watermark_race"}, "./internal/txnlist")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(prog.Tags, ","); got != "privstm_watermark_race" {
		t.Errorf("Program.Tags = %q, want %q", got, "privstm_watermark_race")
	}
}
