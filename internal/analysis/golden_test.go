package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// runFixture loads fixture packages from testdata/src, runs one analyzer,
// and returns the formatted diagnostics with paths relative to
// testdata/src.
func runFixture(t *testing.T, a *Analyzer, patterns ...string) []string {
	t.Helper()
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(src, patterns...)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	var out []string
	for _, d := range prog.Run([]*Analyzer{a}) {
		out = append(out, d.Format(src))
	}
	return out
}

// checkGolden compares got against testdata/<name>.golden, rewriting it
// under -update.
func checkGolden(t *testing.T, name string, got []string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	text := strings.Join(got, "\n")
	if len(got) > 0 {
		text += "\n"
	}
	if *update {
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/analysis -run %s -update`): %v", t.Name(), err)
	}
	if string(want) != text {
		t.Errorf("diagnostics differ from %s\n--- got ---\n%s--- want ---\n%s", path, text, want)
	}
}

func TestMixedAtomicGolden(t *testing.T) {
	checkGolden(t, "mixedatomic", runFixture(t, MixedAtomic(), "mixedatomic"))
}

func TestAccessorDisciplineGolden(t *testing.T) {
	checkGolden(t, "accessordiscipline",
		runFixture(t, AccessorDiscipline(), "accessor/..."))
}

func TestTxnPurityGolden(t *testing.T) {
	// The /... pattern matters: the cross-package fixture's helper package
	// must be loaded for the call graph to descend into it.
	checkGolden(t, "txnpurity", runFixture(t, TxnPurity(), "txnpurity/..."))
}

func TestCopyLockGolden(t *testing.T) {
	checkGolden(t, "copylock", runFixture(t, CopyLock(), "copylock/..."))
}

func TestPrivAccessGolden(t *testing.T) {
	checkGolden(t, "privaccess", runFixture(t, PrivAccess(), "privaccess/..."))
}

func TestYieldSiteGolden(t *testing.T) {
	checkGolden(t, "yieldsite", runFixture(t, YieldSite(), "yieldsite/..."))
}

// TestYieldSiteRediscoversCMWait is the rediscovery control: the retryloop
// fixture copies core.Run's retry loop as it stood before PR 5 added the
// core/retry/cm-wait yield, and the analyzer must flag exactly that loop
// (RunBad) while leaving the fixed shape (RunGood) clean. The position is
// pinned so the test fails loudly if the analyzer drifts.
func TestYieldSiteRediscoversCMWait(t *testing.T) {
	got := runFixture(t, YieldSite(), "yieldsite/retryloop")
	const want = "yieldsite/retryloop/retry.go:35"
	found := false
	for _, line := range got {
		if strings.HasPrefix(line, want) {
			found = true
		} else {
			t.Errorf("unexpected finding (RunGood must stay clean): %s", line)
		}
	}
	if !found {
		t.Errorf("analyzer no longer catches the historical cm-wait omission at %s; findings: %v", want, got)
	}
}

// TestFixturesTripTheLinter is the acceptance check that the violation
// fixtures make the default suite exit nonzero territory: every rule must
// produce at least one finding on its own fixture.
func TestFixturesTripTheLinter(t *testing.T) {
	for _, tc := range []struct {
		analyzer *Analyzer
		patterns []string
	}{
		{MixedAtomic(), []string{"mixedatomic"}},
		{AccessorDiscipline(), []string{"accessor/..."}},
		{TxnPurity(), []string{"txnpurity/..."}},
		{CopyLock(), []string{"copylock/..."}},
		{PrivAccess(), []string{"privaccess/..."}},
		{YieldSite(), []string{"yieldsite/..."}},
	} {
		if got := runFixture(t, tc.analyzer, tc.patterns...); len(got) == 0 {
			t.Errorf("%s: no findings on its violation fixture", tc.analyzer.Name)
		}
	}
}

// TestRepoIsClean runs the full six-analyzer suite over the real module —
// the same invocations `make lint` uses — and requires zero findings on
// every cell of the build-tag matrix (default, the watermark-race revert,
// and the reclaim-race epoch bypass), so a regression in the runtime's
// access, wait, or reclamation discipline fails `go test ./...` too.
func TestRepoIsClean(t *testing.T) {
	for _, tags := range [][]string{nil, {"privstm_watermark_race"}, {"privstm_reclaim_race"}} {
		prog, err := LoadTags(filepath.Join("..", ".."), tags, "./...")
		if err != nil {
			t.Fatal(err)
		}
		if diags := prog.Run(Analyzers()); len(diags) != 0 {
			for _, d := range diags {
				t.Errorf("tags=%v: %s", tags, d.Format(prog.ModRoot))
			}
		}
	}
}

// TestAccessorDisciplineCoversThreadClock pins the analyzer's coverage of
// the per-thread clock type added with the thread-local clock scheme: both
// direct-word uses in BadThreadClock must be flagged, and the accessor-only
// GoodThreadClock must stay clean.
func TestAccessorDisciplineCoversThreadClock(t *testing.T) {
	got := runFixture(t, AccessorDiscipline(), "accessor/...")
	flagged := 0
	for _, line := range got {
		if !strings.Contains(line, "ThreadClock.LocalTS") {
			continue
		}
		flagged++
		if strings.Contains(line, "GoodThreadClock") {
			t.Errorf("accessor-only use flagged: %s", line)
		}
	}
	if flagged != 2 {
		t.Errorf("flagged %d ThreadClock.LocalTS uses, want 2 (copy + address leak)", flagged)
	}
}

// TestAllowlist verifies the accessordiscipline escape hatch: allowlisted
// client packages may touch protected fields directly.
func TestAllowlist(t *testing.T) {
	a := NewAccessorDiscipline(defaultProtectedPkgs, map[string]bool{"client": true})
	if got := runFixture(t, a, "accessor/..."); len(got) != 0 {
		t.Errorf("allowlisted package still flagged:\n%s", strings.Join(got, "\n"))
	}
}

// TestRuleNamesAreStable pins the rule identifiers that ignore comments
// and CI reference.
func TestRuleNamesAreStable(t *testing.T) {
	want := []string{"mixedatomic", "accessordiscipline", "txnpurity", "copylock", "privaccess", "yieldsite"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
	}
}
