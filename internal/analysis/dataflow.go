// dataflow.go is a small forward dataflow engine over one function body:
// reaching-definition taint propagation on local variables, computed as a
// fixpoint so loops converge. It is deliberately path-insensitive — facts
// from all branches merge (union), and a definition reaches every later
// (and, through loop back-edges, earlier) use — which makes the analyses
// built on it (privaccess) sound for may-questions at the cost of
// precision: "this value MAY derive from a transactional load" never
// misses a derivation the AST can express, but can report one on a path
// that never executes. The soundness holes that remain are the ones a
// type-based engine cannot see: values laundered through the heap (stored
// into a struct field or slice and read back) and through channels lose
// their taint. CORRECTNESS.md §12 lists them.
package analysis

import (
	"go/ast"
	"go/types"
)

// Taint is a small bitset of dataflow facts attached to values.
type Taint uint8

const (
	// TaintTxAddr marks a value derived from a transactional load
	// (tx.Load / tx.LoadAddr) — privaccess's "address observed inside a
	// transaction".
	TaintTxAddr Taint = 1 << iota
	// TaintEscaped marks a value derived from a variable that escaped a
	// transaction body carrying TaintTxAddr without a privatizing write.
	TaintEscaped
)

// Flow is the fixpoint result of one dataflow pass.
type Flow struct {
	info   *types.Info
	taints map[types.Object]Taint
	gen    func(*ast.CallExpr) Taint
}

// RunFlow propagates taints through body until the per-object taint map
// stops changing. seed pre-taints objects (variables defined outside body
// whose values flow in); gen introduces taint at call expressions (nil for
// none). Propagation covers assignments, short variable declarations, var
// specs, range statements, and expression structure (arithmetic, indexing,
// conversions, parens, unary ops); calls other than conversions produce
// only what gen says, so taint does not leak through arbitrary function
// returns.
func RunFlow(body ast.Node, info *types.Info, seed map[types.Object]Taint, gen func(*ast.CallExpr) Taint) *Flow {
	f := &Flow{info: info, taints: make(map[types.Object]Taint), gen: gen}
	for o, t := range seed {
		f.taints[o] = t
	}
	// Fixpoint: a body with loops needs at most one extra pass per
	// dependency chain through a back-edge; the cap is a safety net, not a
	// tuning knob.
	for pass := 0; pass < 64; pass++ {
		if !f.propagate(body) {
			return f
		}
	}
	return f
}

// propagate runs one pass over body, returning whether anything changed.
func (f *Flow) propagate(body ast.Node) bool {
	changed := false
	merge := func(obj types.Object, t Taint) {
		if obj == nil || t == 0 {
			return
		}
		if old := f.taints[obj]; old|t != old {
			f.taints[obj] = old | t
			changed = true
		}
	}
	lhsObj := func(e ast.Expr) types.Object {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := f.info.Defs[id]; obj != nil {
			return obj
		}
		return f.info.Uses[id]
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				// Tuple assignment from one expression (call, map index,
				// type assert): every LHS gets the RHS taint.
				t := f.ExprTaint(n.Rhs[0])
				for _, l := range n.Lhs {
					merge(lhsObj(l), t)
				}
				break
			}
			for i, l := range n.Lhs {
				if i < len(n.Rhs) {
					merge(lhsObj(l), f.ExprTaint(n.Rhs[i]))
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				switch {
				case len(n.Values) == len(n.Names):
					merge(f.info.Defs[name], f.ExprTaint(n.Values[i]))
				case len(n.Values) == 1:
					merge(f.info.Defs[name], f.ExprTaint(n.Values[0]))
				}
			}
		case *ast.RangeStmt:
			t := f.ExprTaint(n.X)
			if n.Key != nil {
				merge(lhsObj(n.Key), t)
			}
			if n.Value != nil {
				merge(lhsObj(n.Value), t)
			}
		}
		return true
	})
	return changed
}

// ExprTaint computes the taint of an expression under the current state.
func (f *Flow) ExprTaint(e ast.Expr) Taint {
	switch e := e.(type) {
	case *ast.Ident:
		obj := f.info.Uses[e]
		if obj == nil {
			obj = f.info.Defs[e]
		}
		return f.taints[obj]
	case *ast.ParenExpr:
		return f.ExprTaint(e.X)
	case *ast.UnaryExpr:
		return f.ExprTaint(e.X)
	case *ast.StarExpr:
		return f.ExprTaint(e.X)
	case *ast.BinaryExpr:
		return f.ExprTaint(e.X) | f.ExprTaint(e.Y)
	case *ast.IndexExpr:
		return f.ExprTaint(e.X) | f.ExprTaint(e.Index)
	case *ast.SliceExpr:
		return f.ExprTaint(e.X)
	case *ast.CallExpr:
		// A conversion (stm.Addr(w), uint64(a)) preserves its operand's
		// taint; a real call contributes only what gen assigns it.
		if tv, ok := f.info.Types[e.Fun]; ok && tv.IsType() {
			var t Taint
			for _, a := range e.Args {
				t |= f.ExprTaint(a)
			}
			return t
		}
		if f.gen != nil {
			return f.gen(e)
		}
		return 0
	}
	return 0
}

// ObjTaint returns the accumulated taint of one object.
func (f *Flow) ObjTaint(obj types.Object) Taint { return f.taints[obj] }
