package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CopyLock returns the copylock analyzer.
//
// Invariant: spin mutexes, orecs, and every typed atomic are identity
// objects — the protocol synchronizes on their *address* (a CAS on a
// copied orec word serializes nothing). Copying a value that contains one
// silently forks that identity: the copy's lock state is garbage, and the
// cache-line padding that prevents false sharing is lost. The rule flags
// by-value receivers, parameters, results, assignments, dereferences and
// range clauses whose type transitively contains a spin.Mutex, a sync
// lock, or a sync/atomic typed value.
//
// go vet's copylocks covers the sync types; this rule exists because the
// repo's own spin.Mutex and atomic-bearing metadata structs (orec.Orec,
// core.Thread, …) are invisible to vet.
func CopyLock() *Analyzer {
	return &Analyzer{
		Name: "copylock",
		Doc:  "values containing spin mutexes, orecs, or atomics must not be copied",
		Run:  runCopyLock,
	}
}

type copyLockChecker struct {
	p     *Program
	cache map[types.Type]string
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

func runCopyLock(p *Program) []Diagnostic {
	c := &copyLockChecker{p: p, cache: make(map[types.Type]string)}
	var diags []Diagnostic
	report := func(node ast.Node, what, lock string) {
		diags = append(diags, Diagnostic{
			Pos:     p.Fset.Position(node.Pos()),
			Rule:    "copylock",
			Message: fmt.Sprintf("%s copies a value containing %s; pass a pointer instead", what, lock),
		})
	}
	for _, pkg := range p.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					c.checkFuncSig(info, n.Recv, n.Type, report)
				case *ast.FuncLit:
					c.checkFuncSig(info, nil, n.Type, report)
				case *ast.AssignStmt:
					for i, rhs := range n.Rhs {
						// `_ = x` marks a value as deliberately unused; no
						// second copy outlives the statement.
						if len(n.Lhs) == len(n.Rhs) && isBlank(n.Lhs[i]) {
							continue
						}
						if lock := c.copiedLock(info, rhs); lock != "" {
							report(rhs, "assignment", lock)
						}
					}
				case *ast.ReturnStmt:
					for _, res := range n.Results {
						// Only flag dereference copies: returning a local
						// by value is the constructor idiom and creates no
						// sharing.
						if star, ok := unparen(res).(*ast.StarExpr); ok {
							if lock := c.lockIn(info, star); lock != "" {
								report(res, "return", lock)
							}
						}
					}
				case *ast.RangeStmt:
					if n.Value == nil || isBlank(n.Value) {
						return true
					}
					if t, ok := info.Types[n.X]; ok {
						var elem types.Type
						switch seq := t.Type.Underlying().(type) {
						case *types.Slice:
							elem = seq.Elem()
						case *types.Array:
							elem = seq.Elem()
						case *types.Pointer: // range over *array
							if arr, ok := seq.Elem().Underlying().(*types.Array); ok {
								elem = arr.Elem()
							}
						}
						if elem != nil {
							if lock := c.contains(elem); lock != "" {
								report(n.Value, "range clause", lock)
							}
						}
					}
				}
				return true
			})
		}
	}
	return diags
}

// checkFuncSig flags by-value receivers, parameters and results.
func (c *copyLockChecker) checkFuncSig(info *types.Info, recv *ast.FieldList,
	ftype *ast.FuncType, report func(ast.Node, string, string)) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t, ok := info.Types[field.Type]
			if !ok {
				continue
			}
			if lock := c.contains(t.Type); lock != "" {
				report(field.Type, what, lock)
			}
		}
	}
	check(recv, "by-value receiver")
	check(ftype.Params, "by-value parameter")
	check(ftype.Results, "by-value result")
}

// copiedLock reports the lock inside an RHS expression that copies an
// existing value (identifier, field, element, or dereference). Composite
// literals and calls construct fresh values and are not copies of a shared
// original.
func (c *copyLockChecker) copiedLock(info *types.Info, rhs ast.Expr) string {
	switch unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return c.lockIn(info, rhs)
	}
	return ""
}

func (c *copyLockChecker) lockIn(info *types.Info, e ast.Expr) string {
	t, ok := info.Types[unparen(e)]
	if !ok {
		return ""
	}
	return c.contains(t.Type)
}

// contains reports a description of the first lock-like component found in
// t (transitively through structs and arrays), or "".
func (c *copyLockChecker) contains(t types.Type) string {
	if t == nil {
		return ""
	}
	if s, ok := c.cache[t]; ok {
		return s
	}
	c.cache[t] = "" // cycle guard; overwritten below
	res := c.containsUncached(t)
	c.cache[t] = res
	return res
}

func (c *copyLockChecker) containsUncached(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if pkg := obj.Pkg(); pkg != nil {
			switch {
			case pkg.Path() == "sync/atomic":
				return "a sync/atomic." + obj.Name()
			case pkg.Path() == "sync" &&
				(obj.Name() == "Mutex" || obj.Name() == "RWMutex" || obj.Name() == "WaitGroup" ||
					obj.Name() == "Cond" || obj.Name() == "Once" || obj.Name() == "Pool" || obj.Name() == "Map"):
				return "a sync." + obj.Name()
			case pkg.Name() == "spin" && obj.Name() == "Mutex":
				return "a spin.Mutex"
			}
		}
		return c.contains(n.Underlying())
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if s := c.contains(u.Field(i).Type()); s != "" {
				return s
			}
		}
	case *types.Array:
		return c.contains(u.Elem())
	}
	return ""
}
