// yieldsite.go is the static answer to the bug class PR 5 found
// dynamically: the core/retry/cm-wait starvation, a runtime wait loop
// with no sched-visible yield point, which the deterministic schedule
// explorer (internal/sched) can neither serialize nor shake out because
// it only gains control at yield seams. The analyzer flags poll loops in
// runtime packages — loops that re-read atomic state they never write —
// that contain no recognized yield.
//
// Classification:
//
//   - A loop is a poll-loop candidate if its condition reads atomic state
//     (directly, or through a module function that transitively performs
//     an atomic load), or if it is an infinite `for {`/`for i := 0; ; i++`
//     loop whose body reads atomic state. Bounded scans (`for i := 0;
//     i < n; i++` over plain memory) and range loops are not candidates.
//   - A candidate is exempt if the loop itself performs an atomic
//     *write* (Store/Add/Swap/CompareAndSwap/And/Or): a CAS loop's wait
//     is bounded by rivals' progress, not by their scheduling — it is a
//     progress loop, not a poll loop. Only lexical writes count;
//     transitive writes would exonerate fence loops whose slow path
//     CASes internally while the fence itself still spins.
//   - A candidate passes if it contains a sched-visible yield: a call to
//     failpoint.Eval or sched.Point (the explorer's seams), a spin
//     package wait (Backoff.Wait, Until, Mutex.Lock), a module method
//     named Wait (the contention managers' interface method, the ticket
//     queues), or a module function that transitively reaches one.
//
// Soundness limits (CORRECTNESS.md §12): a yield inside a nested function
// literal counts even though the literal may never run; calls through
// plain function values resolve to nothing, so a yield hidden behind one
// is missed (over-flagging) while an atomic read behind one is missed
// too (under-flagging); and obstruction-free double-check loops (read,
// re-validate, retry on interference) match the poll shape textually —
// they retry on *change* where a poll loop retries on *stillness*, a
// distinction no lexical rule sees. Those sites carry
// //stmlint:ignore yieldsite <reason> with the termination argument as
// the reason.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// defaultYieldScope names the runtime packages whose wait discipline the
// schedule explorer depends on. Harness and tooling packages (priv, bench,
// sched itself, failpoint, stats) run as ordinary concurrent code under
// the Go scheduler and are out of scope.
var defaultYieldScope = map[string]bool{
	"stm": true, "core": true, "spin": true, "ticket": true,
	"txnlist": true, "orec": true, "clock": true, "heap": true,
	"logs": true, "tl2": true, "hybrid": true, "pvr": true,
	"ord": true, "val": true,
}

// YieldSite returns the yieldsite analyzer over the default runtime scope.
func YieldSite() *Analyzer { return NewYieldSite(defaultYieldScope) }

// NewYieldSite returns a yieldsite analyzer scoped to the given package
// names.
func NewYieldSite(scope map[string]bool) *Analyzer {
	return &Analyzer{
		Name: "yieldsite",
		Doc:  "runtime poll loops (re-reading atomic state they never write) must contain a sched-visible yield point",
		Run: func(p *Program) []Diagnostic {
			return runYieldSite(p, scope)
		},
	}
}

// isYieldPrimitive reports whether fn is a sched-visible yield point.
func isYieldPrimitive(p *Program) func(*types.Func) bool {
	return func(fn *types.Func) bool {
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Name() {
		case "failpoint":
			if fn.Name() == "Eval" {
				return true
			}
		case "sched":
			if fn.Name() == "Point" {
				return true
			}
		case "spin":
			switch fn.Name() {
			case "Wait", "Until", "Lock":
				return true
			}
		}
		// A module method named Wait: the contention managers' interface
		// method (resolved abstractly), the ticket queues' turn waits.
		if fn.Name() == "Wait" && p.declaredInModule(fn) {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
		}
		return false
	}
}

// isAtomicLoadFn reports whether fn is an atomic read: a Load-prefixed
// method on a sync/atomic type, or a Load* function from sync/atomic
// itself. CompareAndSwap and Swap are classified as writes, not reads —
// they are how progress loops make progress.
func isAtomicLoadFn(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if !strings.HasPrefix(fn.Name(), "Load") {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return isSyncAtomicType(deref(sig.Recv().Type()))
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// isAtomicWriteFn reports whether fn is an atomic write or read-modify-
// write on a sync/atomic type (or sync/atomic package function).
func isAtomicWriteFn(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	name := fn.Name()
	write := false
	for _, prefix := range [...]string{"Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			write = true
			break
		}
	}
	if !write {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return isSyncAtomicType(deref(sig.Recv().Type()))
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// callsMatching reports whether node lexically contains a call whose
// static callee satisfies direct, or (when trans is non-nil) resolves to a
// module function in the transitive closure.
func callsMatching(info *types.Info, node ast.Node, direct func(*types.Func) bool, trans map[*types.Func]Edge) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := CalleeOf(info, call)
		if fn == nil {
			return true
		}
		if direct(fn) {
			found = true
			return false
		}
		if trans != nil {
			if _, ok := trans[fn]; ok {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// condPollReads reports whether a loop condition reads atomic state in a
// poll position. An atomic read under an ordered comparison (<, <=, >, >=)
// is a bound check — `for i := 0; i < int(s.hi.Load()); i++` is a scan
// whose extent happens to be atomic — while equality tests and boolean
// negations are polls: the loop is waiting for the value to become
// something (`for o.CurrReader().Load() != NoReader`, `for !done.Load()`).
func condPollReads(info *types.Info, cond ast.Expr, mayRead map[*types.Func]Edge) bool {
	if e, ok := unparen(cond).(*ast.BinaryExpr); ok {
		switch e.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			return false
		case token.LAND, token.LOR:
			return condPollReads(info, e.X, mayRead) ||
				condPollReads(info, e.Y, mayRead)
		}
	}
	return callsMatching(info, cond, isAtomicLoadFn, mayRead)
}

func runYieldSite(p *Program, scope map[string]bool) []Diagnostic {
	cg := p.CallGraph()
	yieldPred := isYieldPrimitive(p)
	mayYield := cg.Reaches(yieldPred)
	mayRead := cg.Reaches(isAtomicLoadFn)

	var diags []Diagnostic
	for _, pkg := range p.Pkgs {
		if !scope[pkg.Types.Name()] {
			continue
		}
		info := pkg.Info
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				// The yield primitives themselves (spin.Backoff.Wait and
				// friends) implement the waiting; their internal loops are
				// not poll loops by construction.
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok && yieldPred(fn) {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					loop, ok := n.(*ast.ForStmt)
					if !ok {
						return true
					}
					infinite := loop.Cond == nil
					condReads := loop.Cond != nil &&
						condPollReads(info, loop.Cond, mayRead)
					if !infinite && !condReads {
						return true
					}
					if infinite && !callsMatching(info, loop.Body, isAtomicLoadFn, mayRead) {
						return true
					}
					if callsMatching(info, loop, isAtomicWriteFn, nil) {
						return true // progress loop: writes the state it reads
					}
					if callsMatching(info, loop, yieldPred, mayYield) {
						return true
					}
					diags = append(diags, Diagnostic{
						Pos:  p.Fset.Position(loop.Pos()),
						Rule: "yieldsite",
						Message: "poll loop re-reads atomic state it never writes but contains no sched-visible yield point " +
							"(failpoint.Eval, sched.Point, spin wait, or cm.Wait); the schedule explorer cannot serialize it " +
							"and a rival parked behind it can starve",
					})
					return true
				})
			}
		}
	}
	return diags
}
