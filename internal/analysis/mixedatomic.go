package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// MixedAtomic returns the mixedatomic analyzer.
//
// Invariant (paper §II-E, CORRECTNESS.md §1): every word of STM metadata
// that participates in the privatization protocol — orec words, clock
// values, visibility hints, txnlist heads, shared counters — is accessed
// through Go's sequentially consistent atomics, so that all conflicting
// accesses are ordered by a single total order. A struct field that is
// passed to sync/atomic anywhere must therefore be accessed atomically
// *everywhere*: one plain load or store reintroduces exactly the
// uninstrumented-access races privatization safety is supposed to rule
// out (Khyzha et al.). Typed atomics (atomic.Uint64 & friends) make the
// mistake impossible and are invisible to this rule; it exists for the
// function-style atomics operating on plain fields.
//
// For slice/array fields the atomic target is an element, so only element
// accesses (indexing, ranging) of the same field are flagged; len/cap and
// whole-slice reads do not race with element atomics.
func MixedAtomic() *Analyzer {
	return &Analyzer{
		Name: "mixedatomic",
		Doc:  "a struct field accessed via sync/atomic anywhere must be accessed atomically everywhere",
		Run:  runMixedAtomic,
	}
}

// atomicFieldFact records how a field is used atomically across the
// program.
type atomicFieldFact struct {
	sites []token.Pos // atomic call sites, sorted
	whole bool        // &s.f (the field word itself); false: only &s.f[i]
}

func runMixedAtomic(p *Program) []Diagnostic {
	// Pass 1: find every field that is the target of a sync/atomic call,
	// anywhere in the program, and remember the selector nodes those calls
	// go through so pass 2 does not count them as plain accesses.
	facts := make(map[*types.Var]*atomicFieldFact)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				addr := syncAtomicCall(pkg.Info, call)
				if addr == nil {
					return true
				}
				sel, field, indexed := addressedField(pkg.Info, addr)
				if field == nil {
					return true
				}
				fact := facts[field]
				if fact == nil {
					fact = &atomicFieldFact{}
					facts[field] = fact
				}
				fact.sites = append(fact.sites, call.Pos())
				fact.whole = fact.whole || !indexed
				sanctioned[sel] = true
				return true
			})
		}
	}
	if len(facts) == 0 {
		return nil
	}
	for _, fact := range facts {
		sort.Slice(fact.sites, func(i, j int) bool { return fact.sites[i] < fact.sites[j] })
	}

	// Pass 2: flag every conflicting plain access to those fields.
	var diags []Diagnostic
	for _, pkg := range p.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			walkStack(f, func(n ast.Node, stack []ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				field := fieldOf(info, sel)
				if field == nil {
					return true
				}
				fact, hot := facts[field]
				if !hot {
					return true
				}
				if !fact.whole && !isElementAccess(sel, stack) {
					return true
				}
				name := qualifiedFieldName(info.Selections[sel].Recv(), field)
				diags = append(diags, Diagnostic{
					Pos:  p.Fset.Position(sel.Pos()),
					Rule: "mixedatomic",
					Message: fmt.Sprintf(
						"plain access of %s, which is accessed with sync/atomic at %s; mixing atomic and plain accesses is a data race",
						name, p.relTo(fact.sites[0])),
				})
				return true
			})
		}
	}
	return diags
}

// isElementAccess reports whether selector sel (a slice/array field whose
// elements are accessed atomically elsewhere) is itself used to reach an
// element: indexed, or ranged over. len/cap and whole-value uses are fine.
func isElementAccess(sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.IndexExpr:
		return unparen(parent.X) == sel
	case *ast.RangeStmt:
		// `for i, v := range s.f` copies elements when v is present; even
		// index-only ranging is conservatively treated as element access.
		return unparen(parent.X) == sel
	}
	return false
}
