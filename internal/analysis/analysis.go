// Package analysis is a from-scratch static-analysis framework for the STM
// runtime, built only on the standard library's go/ast, go/parser, go/types
// and go/token (no golang.org/x/tools dependency).
//
// The concurrency-correctness argument of the paper's privatization design
// rests on a handful of access-discipline invariants: orec words and
// read-visibility hints are only touched through atomic operations, the
// global clock only advances through its accessors, transaction bodies
// never perform irrevocable side effects, and metadata containing spin
// locks or atomics is never copied by value. Khyzha et al. ("Safe
// Privatization in Transactional Memory") show that privatization bugs are
// precisely uninstrumented accesses slipping past the protocol — so this
// package machine-checks the discipline instead of trusting comments.
//
// Six analyzers are provided (see Analyzers). Four are intra-package AST
// checks:
//
//	mixedatomic        — a struct field accessed via sync/atomic anywhere
//	                     must be accessed atomically everywhere
//	accessordiscipline — fields of protected metadata types (orec, clock,
//	                     txnlist, spin) may only be touched inside their
//	                     own package, except through atomic method calls
//	txnpurity          — function literals passed to stm.Atomic/core.Run
//	                     must not sleep, block on channels, lock mutexes,
//	                     or perform os/net I/O (irrevocability hazards)
//	copylock           — values containing spin mutexes, orecs or atomics
//	                     must not be copied
//
// Two are interprocedural, built on the module-wide call graph
// (callgraph.go) and the forward dataflow engine (dataflow.go):
//
//	privaccess         — uninstrumented Direct* access must never be
//	                     reachable from a transaction body, and addresses
//	                     loaded transactionally may only be accessed
//	                     directly after a privatizing write (+ fence)
//	yieldsite          — poll loops in runtime packages must contain a
//	                     sched-visible yield point, so the schedule
//	                     explorer keeps full wait-site coverage
//
// A finding can be suppressed with a comment on the same line or the line
// immediately above:
//
//	//stmlint:ignore mixedatomic reason for the exception
//	//stmlint:ignore mixedatomic,copylock two rules at once
package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the rule that fired, and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String formats the diagnostic as "file:line: [rule] message" with the
// file path as recorded (usually absolute). Use Format for paths relative
// to a base directory.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Format renders the diagnostic with its file path relative to base (when
// possible), the form the command line and the golden tests use.
func (d Diagnostic) Format(base string) string {
	name := d.Pos.Filename
	if base != "" {
		if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		}
	}
	return fmt.Sprintf("%s:%d: [%s] %s", name, d.Pos.Line, d.Rule, d.Message)
}

// Analyzer is one named check over a loaded Program.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics and ignore comments.
	Name string
	// Doc is a one-line description of the invariant the rule guards.
	Doc string
	// Run inspects the whole program and returns raw findings; ignore
	// filtering and sorting happen in Program.Run.
	Run func(*Program) []Diagnostic
}

// Analyzers returns the default suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MixedAtomic(),
		AccessorDiscipline(),
		TxnPurity(),
		CopyLock(),
		PrivAccess(),
		YieldSite(),
	}
}

// Run executes the given analyzers over the program, drops findings
// suppressed by //stmlint:ignore comments, and returns the remainder
// sorted by position then rule.
func (p *Program) Run(analyzers []*Analyzer) []Diagnostic {
	ignores := p.ignoreIndex()
	var out []Diagnostic
	for _, a := range analyzers {
		for _, d := range a.Run(p) {
			if ignores.suppresses(d) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// ignoreMarker is the comment prefix that suppresses findings.
const ignoreMarker = "stmlint:ignore"

// ignoreIndex maps (file, line) to the set of rule names suppressed there.
// An ignore comment suppresses its own line and the line that follows, so
// it works both as a trailing comment and on a line of its own above the
// flagged statement.
type ignoreIndex map[string]map[int]map[string]bool

func (ix ignoreIndex) add(file string, line int, rule string) {
	m, ok := ix[file]
	if !ok {
		m = make(map[int]map[string]bool)
		ix[file] = m
	}
	for _, l := range [2]int{line, line + 1} {
		if m[l] == nil {
			m[l] = make(map[string]bool)
		}
		m[l][rule] = true
	}
}

func (ix ignoreIndex) suppresses(d Diagnostic) bool {
	m := ix[d.Pos.Filename]
	if m == nil {
		return false
	}
	rules := m[d.Pos.Line]
	return rules != nil && (rules[d.Rule] || rules["all"])
}

// ignoreIndex scans every comment in the program for //stmlint:ignore
// markers. The first whitespace-delimited field after the marker is a
// comma-separated rule list ("all" matches every rule); anything after it
// is free-text justification.
func (p *Program) ignoreIndex() ignoreIndex {
	ix := make(ignoreIndex)
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(strings.TrimPrefix(text, "/*"))
					if !strings.HasPrefix(text, ignoreMarker) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreMarker))
					fields := strings.Fields(rest)
					pos := p.Fset.Position(c.Pos())
					if len(fields) == 0 {
						ix.add(pos.Filename, pos.Line, "all")
						continue
					}
					for _, rule := range strings.Split(fields[0], ",") {
						if rule = strings.TrimSpace(rule); rule != "" {
							ix.add(pos.Filename, pos.Line, rule)
						}
					}
				}
			}
		}
	}
	return ix
}
