// Package rng provides a small, fast, deterministic pseudo-random number
// generator for workload drivers and tests.
//
// Benchmarks need per-thread generators with no shared state (math/rand's
// global source would serialize threads and distort throughput numbers),
// and reproducible streams so that two engines can be driven with the same
// operation sequence. We use SplitMix64 for seeding and xoshiro256**-style
// state advance via SplitMix64 chains, which is statistically strong enough
// for choosing keys and operations.
package rng

// RNG is a deterministic 64-bit generator. Not safe for concurrent use;
// create one per goroutine.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to a state derived from seed.
func (r *RNG) Seed(seed uint64) {
	// Avoid the all-zero fixed point and decorrelate small seeds.
	r.state = seed + 0x9e3779b97f4a7c15
}

// Uint64 returns the next value in the stream (SplitMix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32-bit value.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a value in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Multiply-shift range reduction; bias is negligible for our n.
	return int((r.Uint64() >> 33) % uint64(n))
}

// Pct returns a value in [0, 100), for drawing operation mixes.
func (r *RNG) Pct() int { return r.Intn(100) }
