package rng

import "math"

// Zipf draws keys from [0, n) with a Zipf(theta) distribution, theta in
// (0, 1) — the YCSB/Gray "zipfian" generator (Gray et al., "Quickly
// Generating Billion-Record Synthetic Databases", SIGMOD '94). The skew
// convention matches the STM literature's hashtable benchmarks: rank k is
// drawn with probability proportional to 1/k^theta, so theta → 0 is
// uniform and theta → 1 approaches 1/k. (math/rand's Zipf wants s > 1 and
// cannot express this range, hence the stdlib-only reimplementation.)
//
// Draws cost two float64 pow calls; the zeta-sum setup is O(n) once. Not
// safe for concurrent use; create one per goroutine, like RNG.
type Zipf struct {
	r     *RNG
	n     uint64
	theta float64
	// Gray's closed-form inverse-CDF constants.
	alpha float64
	zetan float64
	eta   float64
	half  float64 // zeta(2, theta), the two-element partial sum
}

// NewZipf returns a Zipf(theta) sampler over [0, n) driven by r. theta == 0
// is the uniform limit the doc comment above promises: Next then draws
// exactly like RNG.Intn (same reduction of the same stream), so callers no
// longer special-case "zipf 0 means uniform" themselves. Panics if n == 0
// or theta is outside [0, 1).
func NewZipf(r *RNG, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("rng: NewZipf with n == 0")
	}
	if theta == 0 {
		return &Zipf{r: r, n: n}
	}
	if theta < 0 || theta >= 1 {
		panic("rng: NewZipf theta must be in [0, 1)")
	}
	zetan := zeta(n, theta)
	z := &Zipf{
		r:     r,
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		half:  zeta(2, theta),
	}
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.half/zetan)
	return z
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next rank in [0, n): rank 0 is the hottest key. Callers
// that want hot keys scattered across the key space should permute the rank
// (e.g. multiply by a constant mod n) rather than use it directly.
func (z *Zipf) Next() uint64 {
	if z.theta == 0 {
		// Uniform limit: one draw, reduced exactly like RNG.Intn so key
		// streams match what "theta <= 0 ⇒ Intn" callers used to produce.
		return (z.r.Uint64() >> 33) % z.n
	}
	u := float64(z.r.Uint64()>>11) / (1 << 53) // uniform [0, 1)
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	k := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// Theta returns the configured skew.
func (z *Zipf) Theta() float64 { return z.theta }
