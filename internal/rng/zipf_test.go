package rng

import (
	"math"
	"testing"
)

func TestZipfRangeAndDeterminism(t *testing.T) {
	a := NewZipf(New(9), 1000, 0.8)
	b := NewZipf(New(9), 1000, 0.8)
	for i := 0; i < 10000; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatalf("streams diverged at %d: %d vs %d", i, va, vb)
		}
		if va >= 1000 {
			t.Fatalf("draw %d out of range", va)
		}
	}
}

// TestZipfSkew checks the defining property against the exact CDF: the mass
// on the hottest ranks grows with theta and tracks the analytic value.
func TestZipfSkew(t *testing.T) {
	const n, draws = 1000, 200000
	for _, theta := range []float64{0.2, 0.5, 0.8, 0.99} {
		z := NewZipf(New(1), n, theta)
		top := 0 // draws landing in the hottest 10 ranks
		for i := 0; i < draws; i++ {
			if z.Next() < 10 {
				top++
			}
		}
		want := zeta(10, theta) / zeta(n, theta)
		got := float64(top) / draws
		if math.Abs(got-want) > 0.02 {
			t.Errorf("theta %.2f: top-10 mass %.4f, analytic %.4f", theta, got, want)
		}
		if theta >= 0.8 && got < 0.2 {
			t.Errorf("theta %.2f: expected heavy skew, top-10 mass only %.4f", theta, got)
		}
	}
}

func TestZipfHottestFirst(t *testing.T) {
	z := NewZipf(New(3), 100, 0.9)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if !(counts[0] > counts[1] && counts[1] > counts[5] && counts[5] > counts[50]) {
		t.Errorf("rank frequencies not decreasing: c0=%d c1=%d c5=%d c50=%d",
			counts[0], counts[1], counts[5], counts[50])
	}
}

func TestZipfPanics(t *testing.T) {
	for _, bad := range []float64{1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("theta %v accepted", bad)
				}
			}()
			NewZipf(New(1), 10, bad)
		}()
	}
}

// TestZipfThetaZeroUniform: theta == 0 is the documented uniform limit —
// it must not panic, must draw bit-identically to RNG.Intn on the same
// stream (paired A/B key sequences from before the fix are preserved), and
// must cover the range roughly evenly.
func TestZipfThetaZeroUniform(t *testing.T) {
	const n, draws = 64, 100000
	z := NewZipf(New(7), n, 0)
	ref := New(7)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := z.Next()
		if want := uint64(ref.Intn(n)); v != want {
			t.Fatalf("draw %d: theta-0 Next() = %d, RNG.Intn = %d (streams must match)", i, v, want)
		}
		counts[v]++
	}
	// Uniformity: every rank within ±25% of the expected draws/n.
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > want/4 {
			t.Errorf("rank %d drawn %d times, expected ~%.0f", k, c, want)
		}
	}
	if z.Theta() != 0 {
		t.Errorf("Theta() = %v, want 0", z.Theta())
	}
}
