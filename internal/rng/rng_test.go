package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between differently seeded streams", same)
	}
}

func TestIntnRange(t *testing.T) {
	prop := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPctRange(t *testing.T) {
	r := New(7)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		p := r.Pct()
		if p < 0 || p >= 100 {
			t.Fatalf("Pct = %d", p)
		}
		counts[p]++
	}
	// Roughly uniform: every percentile should appear.
	for p, c := range counts {
		if c == 0 {
			t.Errorf("percentile %d never drawn", p)
		}
	}
}

func TestUniformityChiSquarish(t *testing.T) {
	// Coarse bucket-balance check over Intn(16).
	r := New(99)
	const draws = 160000
	var counts [16]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(16)]++
	}
	want := draws / 16
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d: %d draws, want about %d", b, c, want)
		}
	}
}

func TestUint32NotConstant(t *testing.T) {
	r := New(5)
	first := r.Uint32()
	for i := 0; i < 100; i++ {
		if r.Uint32() != first {
			return
		}
	}
	t.Error("Uint32 returned a constant stream")
}

func TestReseed(t *testing.T) {
	r := New(123)
	want := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r.Seed(123)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("after reseed, step %d = %d, want %d", i, got, w)
		}
	}
}
