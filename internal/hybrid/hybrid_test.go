package hybrid

import (
	"sync"
	"testing"
	"time"

	"privstm/internal/core"
	"privstm/internal/heap"
)

func newRT(t *testing.T) *core.Runtime {
	t.Helper()
	rt, err := core.NewRuntime(core.Options{
		HeapWords: 1 << 12, OrecCount: 1 << 8, MaxThreads: 8, HybridThreshold: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestName(t *testing.T) {
	if New(newRT(t)).Name() != "pvrHybrid" {
		t.Error("name wrong")
	}
}

func TestStaysInvisibleBelowThreshold(t *testing.T) {
	rt := newRT(t)
	e := New(rt)
	th, _ := rt.NewThread()
	base := rt.Heap.MustAlloc(64)
	rt.Clock.Tick() // a writer has committed, but the read set stays small
	if err := core.Run(e, th, func() {
		for i := 0; i < 8; i++ {
			_ = e.Read(th, base+heap.Addr(i))
		}
		if rt.Active.Count() != 0 {
			t.Error("transaction went visible below the threshold")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if th.Stats.ModeSwitches != 0 {
		t.Errorf("ModeSwitches = %d", th.Stats.ModeSwitches)
	}
}

func TestStaysInvisibleWithoutWriterCommit(t *testing.T) {
	// Large read set but no concurrent writer commit: both conditions are
	// required for the switch (§IV).
	rt := newRT(t)
	e := New(rt)
	th, _ := rt.NewThread()
	base := rt.Heap.MustAlloc(64)
	if err := core.Run(e, th, func() {
		for i := 0; i < 40; i++ {
			_ = e.Read(th, base+heap.Addr(i))
		}
		if rt.Active.Count() != 0 {
			t.Error("transaction went visible with a quiescent clock")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestGoesVisiblePastThresholdAfterWriterCommit(t *testing.T) {
	rt := newRT(t)
	e := New(rt)
	th, _ := rt.NewThread()
	base := rt.Heap.MustAlloc(64)
	rt.Clock.Tick() // simulate a concurrent writer commit after begin… see below
	if err := core.Run(e, th, func() {
		// The clock moves after this transaction begins:
		rt.Clock.Tick()
		for i := 0; i < 40; i++ {
			_ = e.Read(th, base+heap.Addr(i))
		}
		if rt.Active.Count() != 1 {
			t.Error("transaction did not go visible past the threshold")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if th.Stats.ModeSwitches != 1 {
		t.Errorf("ModeSwitches = %d, want 1", th.Stats.ModeSwitches)
	}
	if rt.Active.Count() != 0 {
		t.Error("central list not empty after commit")
	}
}

// TestVisibleReaderFencesWriter drives the hybrid's PVR half: once a reader
// is visible, a conflicting writer must wait at the privatization fence.
func TestVisibleReaderFencesWriter(t *testing.T) {
	rt := newRT(t)
	e := New(rt)
	r, _ := rt.NewThread()
	w, _ := rt.NewThread()
	base := rt.Heap.MustAlloc(64)

	rIn := make(chan struct{})
	rGo := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = core.Run(e, r, func() {
			rt.Clock.Tick() // a writer committed since we began
			for i := 0; i < 40; i++ {
				_ = e.Read(r, base+heap.Addr(i))
			}
			close(rIn)
			<-rGo
		})
	}()
	<-rIn

	committed := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = core.Run(e, w, func() { e.Write(w, base, 1) })
		close(committed)
	}()
	select {
	case <-committed:
		t.Fatal("hybrid writer ignored a partially visible reader")
	case <-time.After(20 * time.Millisecond):
	}
	close(rGo)
	<-committed
	wg.Wait()
	if w.Stats.Fenced != 1 {
		t.Errorf("Fenced = %d, want 1", w.Stats.Fenced)
	}
	if w.Stats.OrderWaits == 0 && w.Stats.WriterCommits != 1 {
		t.Errorf("writer stats inconsistent: %+v", w.Stats)
	}
}

func TestConcurrentCounter(t *testing.T) {
	rt := newRT(t)
	e := New(rt)
	a := rt.Heap.MustAlloc(1)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		th, _ := rt.NewThread()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 250; j++ {
				_ = core.Run(e, th, func() {
					e.Write(th, a, e.Read(th, a)+1)
				})
			}
		}()
	}
	wg.Wait()
	if got := rt.Heap.AtomicLoad(a); got != 1000 {
		t.Errorf("counter = %d, want 1000", got)
	}
}
