package hybrid

import (
	"testing"

	"privstm/internal/core"
	"privstm/internal/heap"
)

// TestWritePathTriggersSwitch: the mode-switch rule is monitored at writes
// too ("monitoring the global clock at each read and write", §IV).
func TestWritePathTriggersSwitch(t *testing.T) {
	rt := newRT(t)
	e := New(rt)
	th, _ := rt.NewThread()
	base := rt.Heap.MustAlloc(64)
	if err := core.Run(e, th, func() {
		rt.Clock.Tick()
		for i := 0; i < 20; i++ {
			_ = e.Read(th, base+heap.Addr(i))
		}
		// The reads crossed the threshold with a moved clock; by now the
		// transaction has switched. A write must find it visible.
		e.Write(th, base+40, 1)
		if !th.Visible {
			t.Error("transaction not visible after threshold + clock movement")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCancelWhileVisible(t *testing.T) {
	rt := newRT(t)
	e := New(rt)
	th, _ := rt.NewThread()
	base := rt.Heap.MustAlloc(64)
	err := core.Run(e, th, func() {
		rt.Clock.Tick()
		for i := 0; i < 20; i++ {
			_ = e.Read(th, base+heap.Addr(i))
		}
		if !th.Visible {
			t.Fatal("expected visible mode")
		}
		th.UserCancel(errBoom)
	})
	if err != errBoom {
		t.Fatal(err)
	}
	if rt.Active.Count() != 0 {
		t.Error("tracker not empty after visible cancel")
	}
}

type errString string

func (e errString) Error() string { return string(e) }

var errBoom = errString("boom")

// TestRedoReadYourWritesInvisibleAndVisible: read-your-writes must hold in
// both modes.
func TestRedoReadYourWritesInvisibleAndVisible(t *testing.T) {
	rt := newRT(t)
	e := New(rt)
	th, _ := rt.NewThread()
	base := rt.Heap.MustAlloc(64)
	if err := core.Run(e, th, func() {
		e.Write(th, base, 7)
		if got := e.Read(th, base); got != 7 {
			t.Errorf("invisible RYW = %d", got)
		}
		rt.Clock.Tick()
		for i := 1; i < 24; i++ {
			_ = e.Read(th, base+heap.Addr(i))
		}
		e.Write(th, base+32, 9)
		if got := e.Read(th, base); got != 7 {
			t.Errorf("visible RYW = %d", got)
		}
		if got := e.Read(th, base+32); got != 9 {
			t.Errorf("visible RYW new = %d", got)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if rt.Heap.AtomicLoad(base) != 7 || rt.Heap.AtomicLoad(base+32) != 9 {
		t.Error("write-back missing")
	}
}

// TestHybridCommitValidationFailurePassesTicket: a hybrid writer whose
// validation fails at commit must hand the ticket on and leave the tracker.
func TestHybridCommitValidationFailurePassesTicket(t *testing.T) {
	rt := newRT(t)
	e := New(rt)
	r, _ := rt.NewThread()
	w, _ := rt.NewThread()
	x := rt.Heap.MustAlloc(1)
	y := rt.Heap.MustAlloc(600)
	if rt.Orecs.For(x) == rt.Orecs.For(y+512) {
		t.Skip("orec collision")
	}
	attempts := 0
	if err := core.Run(e, r, func() {
		attempts++
		v := e.Read(r, x)
		if attempts == 1 {
			if err := core.Run(e, w, func() { e.Write(w, x, 5) }); err != nil {
				t.Fatal(err)
			}
		}
		e.Write(r, y+512, v+1)
	}); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}
	// The system must still be usable (ticket passed on).
	if err := core.Run(e, w, func() { e.Write(w, x, 6) }); err != nil {
		t.Fatal(err)
	}
	if rt.Active.Count() != 0 {
		t.Error("tracker not empty")
	}
}
