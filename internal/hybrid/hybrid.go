// Package hybrid implements the paper's dynamic hybrid of strict in-order
// commits and partially visible reads (§IV).
//
// Unlike the undo-log PVR engines, the hybrid buffers updates in a redo
// log. A transaction starts with invisible, incrementally validated reads.
// Once its read set grows past a threshold (16 in the paper) *and* it has
// observed some concurrent writer commit (by monitoring the global clock at
// each read and write), it puts itself on the central list and makes all
// its reads partially visible. Writers must honour both mechanisms: they
// commit in strict ticket order *and* check their write set for partially
// visible readers, waiting at the privatization fence on conflict — the
// "two-fold overhead" §V discusses.
package hybrid

import (
	"privstm/internal/core"
	"privstm/internal/failpoint"
	"privstm/internal/heap"
)

// Engine is the hybrid STM.
type Engine struct {
	rt *core.Runtime
}

// New returns a hybrid engine on rt; the visibility threshold comes from
// the runtime's HybridThreshold option (paper value 16).
func New(rt *core.Runtime) *Engine { return &Engine{rt: rt} }

// Name returns the figure label.
func (e *Engine) Name() string { return "pvrHybrid" }

// Begin starts in invisible mode. The redo log permits snapshot extension;
// central-list registration and visibility hints stay anchored at BeginTS,
// so the fence arguments are unchanged (an extension past a privatizer's
// commit requires a validation pass proving we read nothing it wrote).
func (e *Engine) Begin(t *core.Thread) {
	t.GateSerialized()
	t.ResetTxnState()
	t.StartSnapshot(e.rt.Clock.Now())
	t.ExtendOK = true
	t.PublishActive(t.BeginTS)
}

// Read serves buffered writes, performs a consistent read, polls for
// incremental validation, and applies the mode-switch rule.
func (e *Engine) Read(t *core.Thread, a heap.Addr) heap.Word {
	if w, ok := t.Redo.Get(a); ok {
		return w
	}
	if t.Visible {
		// Visible mode: writers fence for us, and commits still validate,
		// so the per-read incremental validation — the very cost the
		// mode switch exists to shed — is no longer needed.
		t.MakeVisible(t.RT.Orecs.For(a), true, core.VisStore)
		return t.ReadHeapConsistent(a)
	}
	w := t.ReadHeapConsistent(a)
	t.PollValidate()
	e.maybeGoVisible(t)
	return w
}

// Write buffers the store and applies the mode-switch rule.
func (e *Engine) Write(t *core.Thread, a heap.Addr, w heap.Word) {
	t.Redo.Put(a, w)
	t.Wrote = true
	if !t.Visible {
		e.maybeGoVisible(t)
	}
}

// maybeGoVisible switches to partially visible reads once the read set has
// crossed the threshold and another writer has committed since we began
// (the clock has moved past our begin time).
func (e *Engine) maybeGoVisible(t *core.Thread) {
	// "Another writer has committed since we began" is judged on the
	// commit signal, not the bare clock, so the rule keeps firing under
	// the deferred clock modes (core.CommitSignal).
	if t.Reads.Len() <= e.rt.HybridThreshold || e.rt.CommitSignal() <= t.BeginSignal {
		return
	}
	if t.EpochPinned {
		// Weak reads already registered us on the tracker at BeginTS (the
		// epoch pin); adopt that entry rather than double-entering.
		t.EpochPinned = false
	} else {
		e.rt.Active.EnterAt(t, t.BeginTS)
	}
	failpoint.Eval(failpoint.BeginEnteredBeforePublish)
	t.Visible = true
	t.Stats.ModeSwitches++
	n := t.Reads.Len()
	for i := 0; i < n; i++ {
		t.MakeVisible(t.Reads.At(i).Orec, true, core.VisStore)
	}
	// Revalidate after publishing hints: a writer whose conflict scan
	// preceded them will not fence for us, so we must be provably
	// un-doomed at this point (see pvr.goVisible).
	if !t.ValidateReads() {
		t.ConflictAbort()
	}
}

// SemanticCommitCapable marks that Commit runs the abstract-lock hooks of
// the semantic conflict layer (core.SemCommitter).
func (e *Engine) SemanticCommitCapable() {}

// Commit combines the ordered commit of §IV with the PVR writer-side scan:
// acquire, take a ticket, validate, write back, wait to be served, scan for
// partially visible readers while still owning the write set, release in
// order, and finally fence if a conflict was detected.
func (e *Engine) Commit(t *core.Thread) bool {
	rt := e.rt
	if !t.Wrote {
		if !t.SemPreCommit() {
			e.cleanupAbort(t)
			return false
		}
		t.SemPostCommit()
		if t.Visible {
			rt.Active.Leave(t)
		}
		t.PublishInactive()
		t.Stats.ReadOnlyCommits++
		return true
	}
	if !t.AcquireWriteSet() {
		e.cleanupAbort(t)
		return false
	}
	failpoint.Eval(failpoint.AcquiredBeforeWriteback)
	if !t.SemPreCommit() {
		t.Acq.RestoreAll()
		e.cleanupAbort(t)
		return false
	}
	ticket := rt.Order.Take()
	if !t.ValidateReads() {
		t.SemAbortRelease()
		rt.Order.Wait(ticket)
		rt.Order.Done(ticket)
		t.Acq.RestoreAll()
		e.cleanupAbort(t)
		return false
	}
	wts := t.CommitTS()
	t.SemPostCommit()
	t.Redo.WriteBack(rt.Heap)
	if !rt.Order.Served(ticket) {
		t.Stats.OrderWaits++
		rt.Order.Wait(ticket)
	}
	threshold, conflict := t.ReaderConflictScan(true)
	if conflict && rt.CapFenceAtCommit && threshold > wts {
		threshold = wts // see pvr.Engine.Commit
	}
	t.Acq.ReleaseAll(wts)
	rt.Order.Done(ticket)
	if t.Visible {
		rt.Active.Leave(t)
	}
	t.PublishInactive()
	t.Stats.WriterCommits++
	failpoint.Eval(failpoint.CommitBeforeFence)
	if conflict {
		t.PrivatizationFence(threshold)
	}
	return true
}

// Cancel aborts an in-flight transaction, leaving the central list if the
// transaction had gone visible.
func (e *Engine) Cancel(t *core.Thread) {
	e.cleanupAbort(t)
}

func (e *Engine) cleanupAbort(t *core.Thread) {
	if t.Visible {
		e.rt.Active.Leave(t)
	}
	t.PublishInactive()
}
