package tl2

import (
	"sync"
	"testing"

	"privstm/internal/core"
)

func newRT(t *testing.T) *core.Runtime {
	t.Helper()
	rt, err := core.NewRuntime(core.Options{HeapWords: 1 << 12, OrecCount: 1 << 8, MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestName(t *testing.T) {
	if New(newRT(t)).Name() != "TL2" {
		t.Error("name wrong")
	}
}

func TestRedoSemantics(t *testing.T) {
	rt := newRT(t)
	e := New(rt)
	th, _ := rt.NewThread()
	a := rt.Heap.MustAlloc(1)
	if err := core.Run(e, th, func() {
		e.Write(th, a, 3)
		if rt.Heap.AtomicLoad(a) != 0 {
			t.Error("TL2 write leaked before commit")
		}
		if e.Read(th, a) != 3 {
			t.Error("read-your-write failed")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if rt.Heap.AtomicLoad(a) != 3 {
		t.Error("write-back missing")
	}
}

func TestCommitValidationCatchesConflict(t *testing.T) {
	// Reader reads x, a conflicting writer commits, reader tries to commit
	// a write elsewhere: commit-time validation must abort and retry it.
	rt := newRT(t)
	e := New(rt)
	r, _ := rt.NewThread()
	w, _ := rt.NewThread()
	x := rt.Heap.MustAlloc(1)
	y := rt.Heap.MustAlloc(1)
	if rt.Orecs.For(x) == rt.Orecs.For(y) {
		t.Skip("orec collision")
	}
	attempts := 0
	if err := core.Run(e, r, func() {
		attempts++
		v := e.Read(r, x)
		if attempts == 1 {
			if err := core.Run(e, w, func() { e.Write(w, x, 77) }); err != nil {
				t.Fatal(err)
			}
		}
		e.Write(r, y, v+1)
	}); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}
	if got := rt.Heap.AtomicLoad(y); got != 78 {
		t.Errorf("y = %d, want 78 (from the refreshed read)", got)
	}
}

func TestSingleThreadFastPathSkipsValidation(t *testing.T) {
	// With no other writers, wts == begin+1 and validation is skipped;
	// just confirm a long run of solo transactions commits cleanly.
	rt := newRT(t)
	e := New(rt)
	th, _ := rt.NewThread()
	a := rt.Heap.MustAlloc(1)
	for i := 0; i < 1000; i++ {
		if err := core.Run(e, th, func() {
			e.Write(th, a, e.Read(th, a)+1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := rt.Heap.AtomicLoad(a); got != 1000 {
		t.Errorf("counter = %d", got)
	}
	if th.Stats.Aborts != 0 {
		t.Errorf("solo run aborted %d times", th.Stats.Aborts)
	}
}

func TestConcurrentCounter(t *testing.T) {
	rt := newRT(t)
	e := New(rt)
	a := rt.Heap.MustAlloc(1)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		th, _ := rt.NewThread()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 250; j++ {
				_ = core.Run(e, th, func() {
					e.Write(th, a, e.Read(th, a)+1)
				})
			}
		}()
	}
	wg.Wait()
	if got := rt.Heap.AtomicLoad(a); got != 1000 {
		t.Errorf("counter = %d, want 1000", got)
	}
}
