// Package tl2 implements the baseline STM of §V: a system modeled on TL2
// (Dice, Shavit & Shalev) — redo logging, commit-time locking, and a global
// version clock. TL2 does **not** guarantee privatization safety; the paper
// uses it as "a trivial upper bound on the throughput one might ideally
// hope to combine with privatization safety", and so do we.
package tl2

import (
	"privstm/internal/core"
	"privstm/internal/failpoint"
	"privstm/internal/heap"
)

// Engine is the TL2 baseline.
type Engine struct {
	rt *core.Runtime
}

// New returns a TL2 engine on rt.
func New(rt *core.Runtime) *Engine { return &Engine{rt: rt} }

// Name returns the figure label.
func (e *Engine) Name() string { return "TL2" }

// Begin samples the global version clock and opts into snapshot extension
// (a stale read triggers a timestamp extension attempt instead of an
// unconditional abort, the TinySTM/LSA refinement of TL2's read rule).
func (e *Engine) Begin(t *core.Thread) {
	t.GateSerialized()
	t.ResetTxnState()
	t.StartSnapshot(e.rt.Clock.Now())
	t.ExtendOK = true
	t.PublishActive(t.BeginTS)
}

// Read returns the buffered value for addresses this transaction has
// written, and otherwise performs the timestamp-checked consistent read.
func (e *Engine) Read(t *core.Thread, a heap.Addr) heap.Word {
	if w, ok := t.Redo.Get(a); ok {
		return w
	}
	return t.ReadHeapConsistent(a)
}

// Write buffers the store in the redo log.
func (e *Engine) Write(t *core.Thread, a heap.Addr, w heap.Word) {
	t.Redo.Put(a, w)
	t.Wrote = true
}

// SemanticCommitCapable marks that Commit runs the abstract-lock hooks of
// the semantic conflict layer (core.SemCommitter).
func (e *Engine) SemanticCommitCapable() {}

// Commit is the TL2 protocol: lock the write set, increment the clock,
// validate the read set (skipped when no other writer intervened), write
// back, and release the locks at the new timestamp. Abstract locks ride
// alongside: acquired and validated after the word-level write set
// (SemPreCommit), published before any word becomes visible
// (SemPostCommit runs before the write-back).
func (e *Engine) Commit(t *core.Thread) bool {
	rt := e.rt
	if !t.Wrote {
		if !t.SemPreCommit() {
			t.PublishInactive()
			return false
		}
		t.SemPostCommit()
		t.PublishInactive()
		t.Stats.ReadOnlyCommits++
		return true
	}
	if !t.AcquireWriteSet() {
		t.PublishInactive()
		return false
	}
	failpoint.Eval(failpoint.AcquiredBeforeWriteback)
	if !t.SemPreCommit() {
		t.Acq.RestoreAll()
		t.PublishInactive()
		return false
	}
	wts := t.CommitTS()
	if !t.SkipCommitValidation(wts) && !t.ValidateReads() {
		t.SemAbortRelease()
		t.Acq.RestoreAll()
		t.PublishInactive()
		return false
	}
	t.SemPostCommit()
	t.Redo.WriteBack(rt.Heap)
	t.Acq.ReleaseAll(wts)
	t.PublishInactive()
	t.Stats.WriterCommits++
	return true
}

// Cancel aborts an in-flight transaction. TL2 holds no global state during
// execution, so only the descriptor needs resetting.
func (e *Engine) Cancel(t *core.Thread) {
	t.PublishInactive()
}
