package core

import (
	"privstm/internal/failpoint"
	"privstm/internal/txnlist"
)

// ActiveTracker abstracts "the set of incomplete transactions" that
// privatization fences query. Three implementations are provided:
//
//   - ListTracker wraps the paper's central sorted linked list (§II-C):
//     O(1) oldest lookups, but every transaction begin/end takes a spin
//     lock, which §V identifies as the bottleneck for short transactions.
//
//   - ScanTracker is the "lighter weight implementation of the central
//     list" the paper leaves as future work: transactions only publish
//     (begin, active) in their own descriptor slot — one uncontended
//     atomic store — and oldest lookups scan the thread registry. Begins
//     and ends are contention-free; the cost moves to the (much rarer)
//     writer-side conflict scans and fence polls, which become O(threads).
//
//   - SlotTracker (the default) keeps ScanTracker's contention-free
//     begins/ends but restores O(1) oldest lookups with a cached,
//     monotonically advancing watermark over a padded slot array
//     (txnlist.Slots); the scan runs only when the cached holder exits.
//
// Correctness requirement shared by all three: a transaction publishes
// itself before its first read, so any writer whose commit-time scan runs
// after a reader's visibility hint also observes that reader as incomplete.
// TrackerKind selects the ActiveTracker implementation (Options.Tracker).
type TrackerKind int

const (
	// TrackerSlot is the default: padded per-thread slots plus a cached
	// oldest-begin watermark — O(1) begins, ends, and oldest lookups.
	TrackerSlot TrackerKind = iota
	// TrackerList is the paper's §II-C spin-locked central list, kept for
	// ablations and for reproducing the paper's bottleneck analysis.
	TrackerList
	// TrackerScan is the registry-scanning tracker: O(1) begins/ends,
	// O(threads) oldest lookups.
	TrackerScan
)

type ActiveTracker interface {
	// Enter registers t with a fresh begin timestamp and returns it.
	Enter(t *Thread) uint64
	// EnterAt registers t under a previously assigned timestamp (late
	// joiners: pvrWriterOnly first writes, hybrid mode switches).
	EnterAt(t *Thread, ts uint64)
	// Leave deregisters t after its commit/abort protocol — including
	// undo-log rollback — completes.
	Leave(t *Thread)
	// OldestBegin returns a lower bound on the begin timestamp of the
	// oldest incomplete transaction, and whether any is incomplete.
	OldestBegin() (uint64, bool)
	// OldestOtherBegin is OldestBegin excluding t itself.
	OldestOtherBegin(t *Thread) (uint64, bool)
	// Count returns the number of registered transactions (tests/stats).
	Count() int
}

// yieldTracker decorates an ActiveTracker with the txnlist yield points:
// after each registration transition completes it evaluates the matching
// failpoint, outside any tracker-internal lock, so the schedule explorer
// can order other workers against central-list entry and exit without
// deadlocking a suspended lock holder. NewRuntime installs it around every
// tracker kind; the disabled cost is one failpoint.Eval nil-check per
// transition. Query methods (OldestBegin etc.) pass through untouched —
// they run inside fence wait loops that already carry their own yield
// points.
type yieldTracker struct {
	inner ActiveTracker
}

// Enter registers t and then yields at TrackerEnter.
func (y yieldTracker) Enter(t *Thread) uint64 {
	ts := y.inner.Enter(t)
	failpoint.Eval(failpoint.TrackerEnter)
	return ts
}

// EnterAt registers the late joiner and then yields at TrackerEnterAt.
func (y yieldTracker) EnterAt(t *Thread, ts uint64) {
	y.inner.EnterAt(t, ts)
	failpoint.Eval(failpoint.TrackerEnterAt)
}

// Leave deregisters t and then yields at TrackerLeave.
func (y yieldTracker) Leave(t *Thread) {
	y.inner.Leave(t)
	failpoint.Eval(failpoint.TrackerLeave)
}

// OldestBegin passes through.
func (y yieldTracker) OldestBegin() (uint64, bool) { return y.inner.OldestBegin() }

// OldestOtherBegin passes through.
func (y yieldTracker) OldestOtherBegin(t *Thread) (uint64, bool) {
	return y.inner.OldestOtherBegin(t)
}

// Count passes through.
func (y yieldTracker) Count() int { return y.inner.Count() }

// Unwrap exposes the decorated tracker, so oracles can reach
// implementation-specific invariant checks (e.g. SlotTracker.CheckWatermark).
func (y yieldTracker) Unwrap() ActiveTracker { return y.inner }

// UnwrapTracker peels yield-point decoration off tr, returning the concrete
// tracker underneath (tr itself if undecorated).
func UnwrapTracker(tr ActiveTracker) ActiveTracker {
	for {
		u, ok := tr.(interface{ Unwrap() ActiveTracker })
		if !ok {
			return tr
		}
		tr = u.Unwrap()
	}
}

// ListTracker adapts the §II-C central list.
type ListTracker struct {
	rt   *Runtime
	list *txnlist.List
}

// NewListTracker returns a tracker backed by the central list.
func NewListTracker(rt *Runtime) *ListTracker {
	return &ListTracker{rt: rt, list: txnlist.New()}
}

// Enter assigns a begin timestamp under the list lock and appends.
func (lt *ListTracker) Enter(t *Thread) uint64 { return lt.list.Enter(&t.Node, &lt.rt.Clock) }

// EnterAt sort-inserts a late joiner.
func (lt *ListTracker) EnterAt(t *Thread, ts uint64) { lt.list.EnterAt(&t.Node, ts) }

// Leave unlinks the node.
func (lt *ListTracker) Leave(t *Thread) { lt.list.Remove(&t.Node) }

// OldestBegin reads the head with the lock-free double-check.
func (lt *ListTracker) OldestBegin() (uint64, bool) { return lt.list.OldestBegin() }

// OldestOtherBegin skips t if it is the head.
func (lt *ListTracker) OldestOtherBegin(t *Thread) (uint64, bool) {
	return lt.list.OldestOtherBegin(&t.Node)
}

// Count returns the list length.
func (lt *ListTracker) Count() int { return lt.list.Len() }

// SlotTracker adapts txnlist.Slots: contention-free begins/ends with an
// O(1) cached-watermark oldest lookup. Thread IDs index the slot array
// directly.
type SlotTracker struct {
	rt    *Runtime
	slots *txnlist.Slots
}

// NewSlotTracker returns a tracker with one padded slot per possible
// thread.
func NewSlotTracker(rt *Runtime) *SlotTracker {
	return &SlotTracker{rt: rt, slots: txnlist.NewSlots(len(rt.threads))}
}

// Enter samples the clock and publishes into the thread's slot (see
// txnlist.Slots.Enter for why no lock is needed).
func (st *SlotTracker) Enter(t *Thread) uint64 {
	return st.slots.Enter(int(t.ID), &st.rt.Clock)
}

// EnterAt publishes a late joiner and lowers the watermark to cover it.
func (st *SlotTracker) EnterAt(t *Thread, ts uint64) { st.slots.EnterAt(int(t.ID), ts) }

// Leave clears the slot; the watermark recomputes lazily.
func (st *SlotTracker) Leave(t *Thread) { st.slots.Leave(int(t.ID)) }

// OldestBegin is the cached-watermark fast path.
func (st *SlotTracker) OldestBegin() (uint64, bool) { return st.slots.OldestBegin() }

// OldestOtherBegin is OldestBegin excluding t.
func (st *SlotTracker) OldestOtherBegin(t *Thread) (uint64, bool) {
	return st.slots.OldestOtherBegin(int(t.ID))
}

// Count scans for registered transactions.
func (st *SlotTracker) Count() int { return st.slots.Len() }

// CheckWatermark forwards the slots' watermark-soundness check, for the
// schedule explorer's oracles: reach it through UnwrapTracker(rt.Active).
// It is safe to call while transactions run; the explorer calls it with
// every worker suspended so a reported violation is a real state, not a
// torn read.
func (st *SlotTracker) CheckWatermark() error { return st.slots.CheckWatermark() }

// ScanTracker derives everything from the (begin, active) words the
// threads already publish. Enter/Leave are single atomic stores; oldest
// queries scan the registry.
type ScanTracker struct {
	rt *Runtime
}

// NewScanTracker returns the registry-scanning tracker.
func NewScanTracker(rt *Runtime) *ScanTracker { return &ScanTracker{rt: rt} }

// Enter samples the clock and publishes. Unlike the list tracker, no lock
// orders the clock sample against other begins — the scan does not need
// sortedness, only that each transaction is visible with a timestamp no
// later than any datum it reads.
func (st *ScanTracker) Enter(t *Thread) uint64 {
	ts := st.rt.Clock.Now()
	t.trackerTS.Store(ts<<1 | 1)
	return ts
}

// EnterAt publishes a late joiner under its original timestamp.
func (st *ScanTracker) EnterAt(t *Thread, ts uint64) { t.trackerTS.Store(ts<<1 | 1) }

// Leave clears the slot.
func (st *ScanTracker) Leave(t *Thread) { t.trackerTS.Store(0) }

// OldestBegin scans all registered threads.
func (st *ScanTracker) OldestBegin() (uint64, bool) { return st.scan(nil) }

// OldestOtherBegin scans all registered threads except t.
func (st *ScanTracker) OldestOtherBegin(t *Thread) (uint64, bool) { return st.scan(t) }

func (st *ScanTracker) scan(skip *Thread) (uint64, bool) {
	oldest, any := uint64(0), false
	st.rt.ForEachThread(func(u *Thread) {
		if u == skip {
			return
		}
		v := u.trackerTS.Load()
		if v&1 == 0 {
			return
		}
		if ts := v >> 1; !any || ts < oldest {
			oldest, any = ts, true
		}
	})
	return oldest, any
}

// Count scans for registered transactions.
func (st *ScanTracker) Count() int {
	n := 0
	st.rt.ForEachThread(func(u *Thread) {
		if u.trackerTS.Load()&1 == 1 {
			n++
		}
	})
	return n
}
