package core

import "privstm/internal/txnlist"

// ActiveTracker abstracts "the set of incomplete transactions" that
// privatization fences query. Two implementations are provided:
//
//   - ListTracker wraps the paper's central sorted linked list (§II-C):
//     O(1) oldest lookups, but every transaction begin/end takes a spin
//     lock, which §V identifies as the bottleneck for short transactions.
//
//   - ScanTracker is the "lighter weight implementation of the central
//     list" the paper leaves as future work: transactions only publish
//     (begin, active) in their own descriptor slot — one uncontended
//     atomic store — and oldest lookups scan the thread registry. Begins
//     and ends are contention-free; the cost moves to the (much rarer)
//     writer-side conflict scans and fence polls, which become O(threads).
//
// Correctness requirement shared by both: a transaction publishes itself
// before its first read, so any writer whose commit-time scan runs after a
// reader's visibility hint also observes that reader as incomplete.
type ActiveTracker interface {
	// Enter registers t with a fresh begin timestamp and returns it.
	Enter(t *Thread) uint64
	// EnterAt registers t under a previously assigned timestamp (late
	// joiners: pvrWriterOnly first writes, hybrid mode switches).
	EnterAt(t *Thread, ts uint64)
	// Leave deregisters t after its commit/abort protocol — including
	// undo-log rollback — completes.
	Leave(t *Thread)
	// OldestBegin returns a lower bound on the begin timestamp of the
	// oldest incomplete transaction, and whether any is incomplete.
	OldestBegin() (uint64, bool)
	// OldestOtherBegin is OldestBegin excluding t itself.
	OldestOtherBegin(t *Thread) (uint64, bool)
	// Count returns the number of registered transactions (tests/stats).
	Count() int
}

// ListTracker adapts the §II-C central list.
type ListTracker struct {
	rt   *Runtime
	list *txnlist.List
}

// NewListTracker returns a tracker backed by the central list.
func NewListTracker(rt *Runtime) *ListTracker {
	return &ListTracker{rt: rt, list: txnlist.New()}
}

// Enter assigns a begin timestamp under the list lock and appends.
func (lt *ListTracker) Enter(t *Thread) uint64 { return lt.list.Enter(&t.Node, &lt.rt.Clock) }

// EnterAt sort-inserts a late joiner.
func (lt *ListTracker) EnterAt(t *Thread, ts uint64) { lt.list.EnterAt(&t.Node, ts) }

// Leave unlinks the node.
func (lt *ListTracker) Leave(t *Thread) { lt.list.Remove(&t.Node) }

// OldestBegin reads the head with the lock-free double-check.
func (lt *ListTracker) OldestBegin() (uint64, bool) { return lt.list.OldestBegin() }

// OldestOtherBegin skips t if it is the head.
func (lt *ListTracker) OldestOtherBegin(t *Thread) (uint64, bool) {
	return lt.list.OldestOtherBegin(&t.Node)
}

// Count returns the list length.
func (lt *ListTracker) Count() int { return lt.list.Len() }

// ScanTracker derives everything from the (begin, active) words the
// threads already publish. Enter/Leave are single atomic stores; oldest
// queries scan the registry.
type ScanTracker struct {
	rt *Runtime
}

// NewScanTracker returns the registry-scanning tracker.
func NewScanTracker(rt *Runtime) *ScanTracker { return &ScanTracker{rt: rt} }

// Enter samples the clock and publishes. Unlike the list tracker, no lock
// orders the clock sample against other begins — the scan does not need
// sortedness, only that each transaction is visible with a timestamp no
// later than any datum it reads.
func (st *ScanTracker) Enter(t *Thread) uint64 {
	ts := st.rt.Clock.Now()
	t.trackerTS.Store(ts<<1 | 1)
	return ts
}

// EnterAt publishes a late joiner under its original timestamp.
func (st *ScanTracker) EnterAt(t *Thread, ts uint64) { t.trackerTS.Store(ts<<1 | 1) }

// Leave clears the slot.
func (st *ScanTracker) Leave(t *Thread) { t.trackerTS.Store(0) }

// OldestBegin scans all registered threads.
func (st *ScanTracker) OldestBegin() (uint64, bool) { return st.scan(nil) }

// OldestOtherBegin scans all registered threads except t.
func (st *ScanTracker) OldestOtherBegin(t *Thread) (uint64, bool) { return st.scan(t) }

func (st *ScanTracker) scan(skip *Thread) (uint64, bool) {
	oldest, any := uint64(0), false
	st.rt.ForEachThread(func(u *Thread) {
		if u == skip {
			return
		}
		v := u.trackerTS.Load()
		if v&1 == 0 {
			return
		}
		if ts := v >> 1; !any || ts < oldest {
			oldest, any = ts, true
		}
	})
	return oldest, any
}

// Count scans for registered transactions.
func (st *ScanTracker) Count() int {
	n := 0
	st.rt.ForEachThread(func(u *Thread) {
		if u.trackerTS.Load()&1 == 1 {
			n++
		}
	})
	return n
}
