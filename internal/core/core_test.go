package core

import (
	"sync"
	"testing"

	"privstm/internal/orec"
)

func newTestRT(t *testing.T, maxThreads int) *Runtime {
	t.Helper()
	rt, err := NewRuntime(Options{
		HeapWords: 1 << 12, OrecCount: 1 << 8, MaxThreads: maxThreads,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func newActiveThread(t *testing.T, rt *Runtime) *Thread {
	t.Helper()
	th, err := rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	th.ResetTxnState()
	th.StartSnapshot(rt.Active.Enter(th))
	th.Visible = true
	th.PublishActive(th.BeginTS)
	return th
}

func finish(rt *Runtime, th *Thread) {
	rt.Active.Leave(th)
	th.PublishInactive()
}

func TestOptionsValidation(t *testing.T) {
	if _, err := NewRuntime(Options{MaxThreads: orec.MaxTID + 1}); err == nil {
		t.Error("MaxThreads beyond TID range should be rejected")
	}
	rt := newTestRT(t, 2)
	if _, err := rt.NewThread(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.NewThread(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.NewThread(); err == nil {
		t.Error("thread limit not enforced")
	}
}

func TestReaderMayBeLive(t *testing.T) {
	rt := newTestRT(t, 4)
	th := newActiveThread(t, rt)
	if !rt.ReaderMayBeLive(th.ID, th.BeginTS) {
		t.Error("active thread with begin ≤ rts should be possibly live")
	}
	if rt.ReaderMayBeLive(th.ID, th.BeginTS-1) {
		t.Error("hint older than the thread's begin cannot be its current read")
	}
	finish(rt, th)
	if rt.ReaderMayBeLive(th.ID, th.BeginTS) {
		t.Error("inactive thread reported live")
	}
	if rt.ReaderMayBeLive(99, 5) {
		t.Error("unregistered tid reported live")
	}
}

func TestMakeVisibleFreshUpdate(t *testing.T) {
	for _, proto := range []VisProto{VisCAS, VisStore} {
		rt := newTestRT(t, 4)
		th := newActiveThread(t, rt)
		o := rt.Orecs.At(0)
		th.MakeVisible(o, false, proto)
		rts, tid, multi := orec.UnpackVis(o.Vis().Load())
		if rts < th.BeginTS || tid != th.ID || multi {
			t.Errorf("proto %v: vis = (%d,%d,%v), want rts ≥ %d, tid %d, no multi",
				proto, rts, tid, multi, th.BeginTS, th.ID)
		}
		if th.Stats.PVUpdates != 1 || th.Stats.PVSkipped != 0 {
			t.Errorf("proto %v: stats = %+v", proto, th.Stats)
		}
		if !th.publishedHere(o, rts) {
			t.Errorf("proto %v: publication log missing the hint", proto)
		}
		// A second read of the same orec in the same transaction skips.
		th.MakeVisible(o, false, proto)
		if th.Stats.PVSkipped != 1 {
			t.Errorf("proto %v: second read did not skip (stats %+v)", proto, th.Stats)
		}
		finish(rt, th)
	}
}

func TestMakeVisibleSecondReaderSetsMulti(t *testing.T) {
	for _, proto := range []VisProto{VisCAS, VisStore} {
		rt := newTestRT(t, 4)
		r1 := newActiveThread(t, rt)
		r2 := newActiveThread(t, rt)
		o := rt.Orecs.At(0)
		r1.MakeVisible(o, false, proto)
		// r2 began after r1's hint was published at r1's begin… ensure
		// coverage: r2.BeginTS ≥ r1's rts only if no clock movement; the
		// hint's rts = clock at publish = r2's begin here, so r2 is
		// covered and must set the multi bit (r1 may still be live).
		r2.MakeVisible(o, false, proto)
		_, _, multi := orec.UnpackVis(o.Vis().Load())
		if !multi {
			t.Errorf("proto %v: second concurrent reader did not set multi", proto)
		}
		if r2.Stats.PVMultiSets != 1 {
			t.Errorf("proto %v: r2 stats = %+v", proto, r2.Stats)
		}
		// A third reader now skips outright.
		r3 := newActiveThread(t, rt)
		r3.MakeVisible(o, false, proto)
		if r3.Stats.PVSkipped != 1 {
			t.Errorf("proto %v: third reader did not skip (stats %+v)", proto, r3.Stats)
		}
		finish(rt, r1)
		finish(rt, r2)
		finish(rt, r3)
	}
}

func TestMakeVisibleDeadHintSkipped(t *testing.T) {
	rt := newTestRT(t, 4)
	r1 := newActiveThread(t, rt)
	o := rt.Orecs.At(0)
	r1.MakeVisible(o, false, VisCAS)
	finish(rt, r1) // r1's hint is now dead
	r2 := newActiveThread(t, rt)
	// r2 is covered (clock unchanged) and the hint's owner has finished:
	// no update is needed at all.
	r2.MakeVisible(o, false, VisCAS)
	if r2.Stats.PVSkipped != 1 || r2.Stats.PVMultiSets != 0 {
		t.Errorf("dead hint not skipped: %+v", r2.Stats)
	}
	_, _, multi := orec.UnpackVis(o.Vis().Load())
	if multi {
		t.Error("multi set unnecessarily for a dead hint")
	}
	finish(rt, r2)
}

func TestMakeVisibleUncoveredOverwrites(t *testing.T) {
	rt := newTestRT(t, 4)
	r1 := newActiveThread(t, rt)
	o := rt.Orecs.At(0)
	r1.MakeVisible(o, false, VisCAS)
	old := orec.VisRTS(o.Vis().Load())
	finish(rt, r1)
	rt.Clock.Tick() // move time forward so the next reader is not covered
	r2 := newActiveThread(t, rt)
	r2.MakeVisible(o, false, VisCAS)
	rts, tid, multi := orec.UnpackVis(o.Vis().Load())
	if rts <= old || tid != r2.ID {
		t.Errorf("uncovered read did not refresh hint: rts %d (old %d) tid %d", rts, old, tid)
	}
	if multi {
		t.Error("multi carried although no transaction could be covered by the old hint")
	}
	finish(rt, r2)
}

func TestMakeVisibleCarriesMultiForLiveElder(t *testing.T) {
	// An old reader is still live; a newer uncovered reader overwrites the
	// hint and must carry the multi bit so writers keep fencing for the
	// elder.
	rt := newTestRT(t, 4)
	elder := newActiveThread(t, rt)
	o := rt.Orecs.At(0)
	elder.MakeVisible(o, false, VisCAS)
	rt.Clock.Tick()
	young := newActiveThread(t, rt) // begins after the hint's rts
	young.MakeVisible(o, false, VisCAS)
	_, tid, multi := orec.UnpackVis(o.Vis().Load())
	if tid != young.ID {
		t.Fatalf("hint tid = %d, want %d", tid, young.ID)
	}
	if !multi {
		t.Error("overwriting a possibly-covering hint of a live elder must carry multi")
	}
	finish(rt, elder)
	finish(rt, young)
}

func TestGraceAdaptation(t *testing.T) {
	rt := newTestRT(t, 4)
	o := rt.Orecs.At(0)
	if o.Grace().Load() != 0 {
		t.Fatal("grace should start at 0")
	}
	for want := uint64(1); want <= DefaultMaxGrace; want *= 2 {
		raiseGrace(o, GraceExponential, rt.MaxGrace)
		if got := o.Grace().Load(); got != want {
			t.Fatalf("grace = %d, want %d", got, want)
		}
	}
	raiseGrace(o, GraceExponential, rt.MaxGrace)
	if got := o.Grace().Load(); got != DefaultMaxGrace {
		t.Errorf("grace exceeded cap: %d", got)
	}
	lowerGrace(o, GraceExponential)
	if got := o.Grace().Load(); got != DefaultMaxGrace/2 {
		t.Errorf("grace after halve = %d", got)
	}
	for i := 0; i < 20; i++ {
		lowerGrace(o, GraceExponential)
	}
	if got := o.Grace().Load(); got != 0 {
		t.Errorf("grace floor = %d, want 0", got)
	}
}

func TestGraceExtendsCoverage(t *testing.T) {
	rt := newTestRT(t, 4)
	o := rt.Orecs.At(0)
	o.Grace().Store(16)
	r1 := newActiveThread(t, rt)
	r1.MakeVisible(o, true, VisCAS)
	rts := orec.VisRTS(o.Vis().Load())
	if rts != r1.RT.Clock.Now()+16 {
		t.Errorf("rts = %d, want now+16 = %d", rts, r1.RT.Clock.Now()+16)
	}
	if o.Grace().Load() != 32 {
		t.Errorf("grace after successful update = %d, want 32", o.Grace().Load())
	}
	finish(rt, r1)
	// Future readers within the grace window skip even after clock ticks.
	for i := 0; i < 10; i++ {
		rt.Clock.Tick()
	}
	r2 := newActiveThread(t, rt)
	r2.MakeVisible(o, true, VisCAS)
	if r2.Stats.PVSkipped != 1 {
		t.Errorf("read within grace window did not skip: %+v", r2.Stats)
	}
	finish(rt, r2)
}

func TestReaderConflictScanSelfOnly(t *testing.T) {
	// Write-after-read (§II-E): a transaction that reads then writes the
	// same orec must not fence on its own hint.
	rt := newTestRT(t, 4)
	w := newActiveThread(t, rt)
	other := newActiveThread(t, rt) // some unrelated concurrent txn
	o := rt.Orecs.At(0)
	w.MakeVisible(o, false, VisCAS)
	if !w.AcquireOrec(o) {
		t.Fatal("acquire failed")
	}
	if _, conflict := w.ReaderConflictScan(false); conflict {
		t.Error("self-only hint caused a conflict")
	}
	finish(rt, other)
	finish(rt, w)
}

func TestReaderConflictScanForeignReader(t *testing.T) {
	rt := newTestRT(t, 4)
	r := newActiveThread(t, rt)
	w := newActiveThread(t, rt)
	o := rt.Orecs.At(0)
	r.MakeVisible(o, false, VisCAS)
	if !w.AcquireOrec(o) {
		t.Fatal("acquire failed")
	}
	threshold, conflict := w.ReaderConflictScan(false)
	if !conflict {
		t.Fatal("live foreign reader not detected")
	}
	if threshold < r.BeginTS {
		t.Errorf("threshold %d below reader begin %d", threshold, r.BeginTS)
	}
	// Once the reader finishes, the same hint no longer conflicts.
	finish(rt, r)
	if _, conflict := w.ReaderConflictScan(false); conflict {
		t.Error("completed reader still causes conflicts")
	}
	finish(rt, w)
}

func TestReaderConflictScanStaleSelfHint(t *testing.T) {
	// A hint this thread published in an *earlier* transaction must not be
	// claimed as self-only: another live reader may be covered by it.
	rt := newTestRT(t, 4)
	w := newActiveThread(t, rt)
	o := rt.Orecs.At(0)
	w.MakeVisible(o, false, VisCAS)
	finish(rt, w)

	// Another reader starts and is covered by w's old hint (clock has not
	// moved), so it may skip; w then starts a new transaction and writes o.
	r := newActiveThread(t, rt)
	r.MakeVisible(o, false, VisCAS)

	w.ResetTxnState()
	w.StartSnapshot(rt.Active.Enter(w))
	w.Visible = true
	w.PublishActive(w.BeginTS)
	if !w.AcquireOrec(o) {
		t.Fatal("acquire failed")
	}
	if _, conflict := w.ReaderConflictScan(false); !conflict {
		t.Error("stale self hint was claimed as self-only; covered reader lost")
	}
	finish(rt, r)
	finish(rt, w)
}

func TestPrivatizationFenceWaitsForReaderGeneration(t *testing.T) {
	rt := newTestRT(t, 4)
	r := newActiveThread(t, rt)
	w := newActiveThread(t, rt)
	threshold := r.BeginTS
	finish(rt, w) // writers leave the list before fencing

	released := make(chan struct{})
	go func() {
		w.PrivatizationFence(threshold)
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("fence returned while a conflicting reader was live")
	default:
	}
	finish(rt, r)
	<-released
	if w.Stats.Fenced != 1 {
		t.Errorf("Fenced = %d", w.Stats.Fenced)
	}
}

func TestPrivatizationFenceIgnoresYoungerTxns(t *testing.T) {
	rt := newTestRT(t, 4)
	r := newActiveThread(t, rt)
	threshold := r.BeginTS
	finish(rt, r)
	rt.Clock.Tick()
	young := newActiveThread(t, rt) // begins after the threshold
	defer finish(rt, young)

	w := newActiveThread(t, rt)
	finish(rt, w)
	done := make(chan struct{})
	go func() {
		w.PrivatizationFence(threshold)
		close(done)
	}()
	<-done // must not block on the younger transaction
}

func TestValidationFence(t *testing.T) {
	rt := newTestRT(t, 4)
	w := newActiveThread(t, rt)
	r := newActiveThread(t, rt)
	wts := rt.Clock.Tick()
	finish(rt, w)

	released := make(chan struct{})
	go func() {
		w.ValidationFence(wts)
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("validation fence returned before the reader reached a clean point")
	default:
	}
	// The reader publishes a validation at ≥ wts: the fence must release.
	r.SetValidated(wts)
	<-released
	finish(rt, r)
}

func TestVisStoreProtocolStress(t *testing.T) {
	// Hammer one orec with concurrent store-protocol updates and verify
	// the two core guarantees: per-orec rts never decreases, and after a
	// reader's MakeVisible returns the orec covers it (rts ≥ its begin).
	rt := newTestRT(t, 16)
	o := rt.Orecs.At(0)
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	var mu sync.Mutex
	maxSeen := uint64(0)
	for i := 0; i < workers; i++ {
		th, err := rt.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				th.ResetTxnState()
				th.StartSnapshot(rt.Active.Enter(th))
				th.Visible = true
				th.PublishActive(th.BeginTS)
				th.MakeVisible(o, j%2 == 0, VisStore)
				if rts := orec.VisRTS(o.Vis().Load()); rts < th.BeginTS {
					t.Errorf("after MakeVisible, rts %d < begin %d", rts, th.BeginTS)
				}
				mu.Lock()
				if rts := orec.VisRTS(o.Vis().Load()); rts >= maxSeen {
					maxSeen = rts
				}
				mu.Unlock()
				finish(rt, th)
				if j%16 == 0 {
					rt.Clock.Tick()
				}
			}
		}(th)
	}
	wg.Wait()
	if o.CurrReader().Load() != orec.NoReader {
		t.Error("curr_reader left claimed after all updates completed")
	}
}

// TestVisCASProtocolStress mirrors TestVisStoreProtocolStress for the
// CAS-based update path, including grace periods, and additionally checks
// per-orec rts monotonicity across the run.
func TestVisCASProtocolStress(t *testing.T) {
	rt := newTestRT(t, 16)
	o := rt.Orecs.At(1)
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		th, err := rt.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			lastRTS := uint64(0)
			for j := 0; j < iters; j++ {
				th.ResetTxnState()
				th.StartSnapshot(rt.Active.Enter(th))
				th.Visible = true
				th.PublishActive(th.BeginTS)
				th.MakeVisible(o, j%2 == 0, VisCAS)
				rts := orec.VisRTS(o.Vis().Load())
				if rts < th.BeginTS {
					t.Errorf("after MakeVisible, rts %d < begin %d", rts, th.BeginTS)
				}
				if rts < lastRTS {
					// rts may legitimately appear lower than a *previously
					// sampled* value only if another reader overwrote in
					// between with a larger one we then race past; re-check
					// against the live value.
					if cur := orec.VisRTS(o.Vis().Load()); cur < lastRTS {
						t.Errorf("orec rts regressed: %d after %d", cur, lastRTS)
					}
				}
				lastRTS = rts
				finish(rt, th)
				if j%16 == 0 {
					rt.Clock.Tick()
				}
			}
		}(th)
	}
	wg.Wait()
}

// TestConflictScanWithGraceAdaptation: a conflicting scan halves grace on
// exactly the conflicting orecs.
func TestConflictScanWithGraceAdaptation(t *testing.T) {
	rt := newTestRT(t, 4)
	r := newActiveThread(t, rt)
	w := newActiveThread(t, rt)
	o1 := rt.Orecs.At(0)
	o2 := rt.Orecs.At(1)
	o1.Grace().Store(32)
	o2.Grace().Store(32)
	r.MakeVisible(o1, true, VisCAS) // raises o1's grace to 64
	if !w.AcquireOrec(o1) || !w.AcquireOrec(o2) {
		t.Fatal("acquire failed")
	}
	if _, conflict := w.ReaderConflictScan(true); !conflict {
		t.Fatal("conflict not detected")
	}
	if got := o1.Grace().Load(); got != 32 {
		t.Errorf("conflicting orec grace = %d, want 32 (halved from 64)", got)
	}
	if got := o2.Grace().Load(); got != 32 {
		t.Errorf("non-conflicting orec grace = %d, want 32 (untouched)", got)
	}
	finish(rt, r)
	finish(rt, w)
}
