//go:build privstm_semlock_race

package core

// Broken abstract-lock release for the explorer's positive control: the
// stripe is unlocked without bumping its version, so a transaction that
// sampled it before a conflicting commit still validates — a
// serializability hole the tds exploration corpus must rediscover (see
// Makefile explore-tds and internal/tds sched tests).
const semReleaseBump = 0
