// cm.go is the contention-management layer of the retry loop: pluggable
// inter-attempt wait policies, and the serialized-irrevocable escalation
// that guarantees progress after MaxAttempts consecutive aborts (see
// CORRECTNESS.md §9 "Liveness").
package core

import (
	"fmt"
	"sync/atomic"

	"privstm/internal/spin"
)

// CMPolicy selects the contention-management policy applied between
// attempts of an aborted transaction (Options.CM / stm.Config.ContentionManager).
type CMPolicy int

const (
	// CMBackoff is the default: truncated exponential backoff with
	// yielding (the pre-existing behaviour, now with escalation after
	// MaxAttempts aborts).
	CMBackoff CMPolicy = iota
	// CMKarma approximates karma-style priority: a transaction accumulates
	// "karma" proportional to the work it has invested (read/write-set
	// sizes at abort time), and once rich enough it refuses to enter the
	// sleep phase of the backoff — long transactions retry aggressively
	// instead of parking behind short ones.
	CMKarma
	// CMSerialize escalates to the serialized-irrevocable fallback after
	// the very first abort — a livelock-free (if sequential) mode useful
	// for ablations and pathological workloads.
	CMSerialize
)

// String returns the stmbench flag spelling of the policy.
func (p CMPolicy) String() string {
	switch p {
	case CMBackoff:
		return "backoff"
	case CMKarma:
		return "karma"
	case CMSerialize:
		return "serialize"
	default:
		return fmt.Sprintf("CMPolicy(%d)", int(p))
	}
}

// ParseCMPolicy maps a flag spelling back to its policy.
func ParseCMPolicy(s string) (CMPolicy, error) {
	for _, p := range []CMPolicy{CMBackoff, CMKarma, CMSerialize} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("core: unknown contention manager %q (want backoff, karma, or serialize)", s)
}

// DefaultMaxAttempts is the abort budget before a transaction escalates to
// the serialized-irrevocable fallback (Options.MaxAttempts = 0).
const DefaultMaxAttempts = 64

// contentionManager is the per-thread wait policy. Wait is called once per
// abort (except the final abort before escalation); Reset after a commit,
// so the next transaction starts from the cheap phase.
type contentionManager interface {
	Wait(t *Thread)
	Reset()
}

// backoffCM is CMBackoff: a plain spin.Backoff.
type backoffCM struct {
	b spin.Backoff
}

func (c *backoffCM) Wait(*Thread) { c.b.Wait() }
func (c *backoffCM) Reset()       { c.b.Reset() }

// karmaSleepExempt is the karma at which a transaction stops entering the
// backoff's sleep phase. With karma counted as 1 + |reads| + |writes| per
// abort, a handful of aborts of a modest transaction reaches it.
const karmaSleepExempt = 256

// karmaCM is CMKarma. It reuses the backoff schedule but tracks invested
// work; a high-karma transaction is held out of the sleep phase (its next
// Wait is reset to the busy phase), implementing "priority to the
// transaction that has done the most work" without any cross-thread state:
// low-karma rivals park for up to 1024µs while the rich transaction
// retries, which resolves ties in its favour with high probability.
type karmaCM struct {
	b     spin.Backoff
	karma uint64
}

func (c *karmaCM) Wait(t *Thread) {
	c.karma += 1 + uint64(t.Reads.Len()) + uint64(t.Undo.Len()) + uint64(t.Redo.Len())
	if c.b.Phase() == spin.PhaseSleep && c.karma >= karmaSleepExempt {
		c.b.Reset()
	}
	c.b.Wait()
}

func (c *karmaCM) Reset() {
	c.b.Reset()
	c.karma = 0
}

// newCM builds the configured policy for one thread.
func (rt *Runtime) newCM() contentionManager {
	switch rt.CMKind {
	case CMKarma:
		return &karmaCM{}
	default:
		// CMSerialize never waits between attempts (it escalates after the
		// first abort); plain backoff is a harmless placeholder.
		return &backoffCM{}
	}
}

// attemptLimit resolves Options.MaxAttempts into the abort count at which
// Run escalates: 0 disables escalation entirely.
func (rt *Runtime) attemptLimit() int {
	if rt.CMKind == CMSerialize {
		return 1
	}
	switch {
	case rt.MaxAttempts < 0:
		return 0 // escalation disabled
	case rt.MaxAttempts == 0:
		return DefaultMaxAttempts
	default:
		return rt.MaxAttempts
	}
}

// serialToken is the global irrevocability token. The mutex serializes
// escalated transactions against each other; the holder word is what every
// Begin checks (GateSerialized) so that no new transaction starts while an
// irrevocable one runs.
type serialToken struct {
	mu     spin.Mutex
	holder atomic.Uint64 // thread ID + 1, or 0 when free
}

func (s *serialToken) acquire(t *Thread) {
	s.mu.Lock()
	s.holder.Store(t.ID + 1)
}

func (s *serialToken) release(t *Thread) {
	s.holder.Store(0)
	s.mu.Unlock()
}

// GateSerialized blocks while another thread holds the irrevocability
// token. Every engine calls it as the first statement of Begin, so once the
// token holder has drained the already-running transactions it executes
// alone. The fast path is one atomic load.
func (t *Thread) GateSerialized() {
	tok := &t.RT.serialTok
	if tok.holder.Load() == 0 {
		return
	}
	var b spin.Backoff
	for {
		h := tok.holder.Load()
		if h == 0 || h == t.ID+1 {
			return
		}
		b.Wait()
	}
}

// drainOthers waits until every other registered thread has published
// inactive. Called by the token holder after acquiring the token: any
// transaction that began before the token was visible runs to completion
// (commit or abort — both end in PublishInactive), and no new one can begin
// past the gate, so on return the holder executes alone.
func (rt *Runtime) drainOthers(t *Thread) {
	rt.ForEachThread(func(u *Thread) {
		if u == t {
			return
		}
		var b spin.Backoff
		for {
			if _, active := u.Published(); !active {
				return
			}
			b.Wait()
		}
	})
}
