package core

import (
	"privstm/internal/failpoint"
	"privstm/internal/heap"
)

// Engine is the interface every STM implementation provides. Read and
// Write abort the running transaction by panicking with the internal
// conflict signal (unwound inside Run); Commit returns false if the commit
// attempt aborted. Both abort paths must leave the descriptor fully cleaned
// up (undo rolled back, orecs released, central list departed).
type Engine interface {
	// Name returns the curve label used in the paper's figures
	// (e.g. "pvrStore").
	Name() string
	// Begin starts a transaction on t.
	Begin(t *Thread)
	// Read performs a transactional load.
	Read(t *Thread, a heap.Addr) heap.Word
	// Write performs a transactional store.
	Write(t *Thread, a heap.Addr, w heap.Word)
	// Commit attempts to commit, reporting success. On failure the
	// transaction has been rolled back and may be retried.
	Commit(t *Thread) bool
	// Cancel rolls back an in-flight transaction (conflict or user abort).
	Cancel(t *Thread)
}

// conflictSignal is the panic value used to unwind a doomed transaction.
type conflictSignal struct{}

// cancelSignal unwinds a transaction the user chose to roll back; Run does
// not retry it.
type cancelSignal struct{ err error }

// ConflictAbort unwinds the current transaction and retries it. Engines
// call it when they detect a conflict mid-transaction.
func (t *Thread) ConflictAbort() { panic(conflictSignal{}) }

// UserCancel unwinds the current transaction, rolls it back, and makes Run
// return err without retrying.
func (t *Thread) UserCancel(err error) { panic(cancelSignal{err: err}) }

// Run executes body as a transaction on engine e, retrying on conflict
// under the configured contention-management policy. It returns nil on
// commit, or the error passed to UserCancel if the body cancelled itself.
//
// Run sandboxes the body, JudoSTM-style (§IV): if the body panics for any
// reason other than the internal signals while its read set is invalid, the
// transaction was doomed — it may have observed inconsistent state, and the
// panic is an artifact (e.g. an out-of-range address computed from torn
// data). Such panics are converted into aborts and retried. A panic raised
// while the read set is still valid is a genuine bug in the body and is
// propagated after rollback.
//
// After Runtime.attemptLimit consecutive aborts the transaction escalates
// to the serialized-irrevocable fallback (runSerialized): it takes the
// global token, drains every other in-flight transaction, and runs alone to
// a guaranteed commit — graceful degradation instead of livelock under
// pathological contention. No CM wait is inserted between the final failed
// attempt and the escalation: the token acquisition is the wait.
func Run(e Engine, t *Thread, body func()) error {
	if t.cm == nil {
		t.cm = &backoffCM{} // descriptors built outside NewThread (tests)
	}
	t.Attempts = 0
	limit := t.RT.attemptLimit()
	for {
		e.Begin(t)
		done, err := runOnce(e, t, body)
		if done {
			t.Stats.Commits++
			t.cm.Reset()
			return err
		}
		t.Stats.Aborts++
		t.abortClockBump() // GV5: the abort path, not the commit path, moves the clock
		t.Attempts++
		if limit > 0 && t.Attempts >= limit {
			return runSerialized(e, t, body)
		}
		failpoint.Eval(failpoint.CMWait)
		t.cm.Wait(t)
	}
}

// runSerialized is the serialized-irrevocable fallback: the transaction
// acquires the global token (serializing against other escalated threads),
// waits out every in-flight transaction, and retries alone. With the Begin
// gate closed no new rival can start, so the only transactions that can
// still abort it are gate-slippers — threads that passed the gate before
// the token was published — and those are finite, so the loop terminates
// with a commit (see CORRECTNESS.md §9 for the full argument).
func runSerialized(e Engine, t *Thread, body func()) error {
	tok := &t.RT.serialTok
	tok.acquire(t)
	defer tok.release(t)
	for {
		t.RT.drainOthers(t)
		e.Begin(t)
		done, err := runOnce(e, t, body)
		if done {
			t.Stats.Serialized++
			t.Stats.Commits++
			t.cm.Reset()
			return err
		}
		// A gate-slipper got in ahead of the drain; re-drain and retry.
		t.Stats.Aborts++
		t.abortClockBump()
		t.Attempts++
	}
}

func runOnce(e Engine, t *Thread, body func()) (done bool, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		switch s := r.(type) {
		case conflictSignal:
			e.Cancel(t)
			done = false
		case cancelSignal:
			e.Cancel(t)
			done, err = true, s.err
		case failpoint.Abort:
			// Injected abort: clean up and retry, regardless of read-set
			// validity.
			e.Cancel(t)
			done = false
		default:
			if !t.ValidateReads() {
				// Doomed transaction: the panic came from inconsistent
				// reads. Abort and retry.
				e.Cancel(t)
				done = false
				return
			}
			e.Cancel(t)
			panic(r)
		}
	}()
	body()
	if e.Commit(t) {
		t.FinishCommit() // apply RetireOnCommit + settle txn allocations
		return true, nil
	}
	return false, nil
}
