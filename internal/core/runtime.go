// Package core contains the machinery shared by every STM engine in this
// repository: the runtime (heap, orec table, global clock, central
// transaction list, ordering locks), the per-thread transaction descriptor,
// the retry loop, read-set validation, the partial-visibility protocols of
// §II–III, and the privatization/validation fences.
//
// The paper's primary contribution — partially visible reads — lives here
// (visibility.go, fence.go); the engine packages (internal/pvr, internal/ord,
// internal/val, internal/hybrid, internal/tl2) compose these pieces into the
// eight systems evaluated in §V.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"privstm/internal/clock"
	"privstm/internal/heap"
	"privstm/internal/orec"
	"privstm/internal/reclaim"
	"privstm/internal/stats"
	"privstm/internal/ticket"
	"privstm/internal/txnlist"
)

// DefaultMaxGrace is the grace-period cap from §III-A: 256 clock steps.
const DefaultMaxGrace = 256

// DefaultHybridThreshold is the read-set size beyond which pvrHybrid
// switches to partially visible reads (§IV: 16).
const DefaultHybridThreshold = 16

// OrecLayout re-exports the orec-table memory layout selector
// (Options.OrecLayout).
type OrecLayout = orec.Layout

// The orec-table layouts.
const (
	OrecLayoutAoS = orec.LayoutAoS
	OrecLayoutSoA = orec.LayoutSoA
)

// ParseOrecLayout maps a flag spelling ("aos", "soa") back to its layout.
func ParseOrecLayout(s string) (OrecLayout, error) { return orec.ParseLayout(s) }

// Options configures a Runtime.
type Options struct {
	HeapWords  int // capacity of the simulated heap
	OrecCount  int // number of ownership records (rounded to a power of 2)
	BlockWords int // conflict-detection granularity in words
	MaxThreads int // maximum concurrently registered threads

	MaxGrace        uint64 // cap for adaptive grace periods (0 ⇒ DefaultMaxGrace)
	HybridThreshold int    // read-set size that flips pvrHybrid visible (0 ⇒ 16)

	// Clock selects the version-clock scheme: ClockGV1 (default) CASes the
	// global clock once per writer commit; ClockGV5 defers (commits take
	// Now()+1 without advancing; readers propagate, aborts bump);
	// ClockLocal merges a per-thread clock at commit time. See
	// internal/clock and CORRECTNESS.md §13.
	Clock ClockMode
	// OrderBatch enables the Ord engine's flat-combining commit batcher:
	// the committer currently served by the ticket lock performs up to
	// OrderBatch successors' write-backs under one ticket hold. 0 disables
	// combining; only Ord's ticket variant consults it.
	OrderBatch int

	// Tracker selects the incomplete-transaction tracker. The default,
	// TrackerSlot, is the O(1) cached-watermark slot array; TrackerList
	// restores the paper's §II-C spin-locked central list (ablations);
	// TrackerScan is the registry-scanning variant.
	Tracker TrackerKind
	// ScanTracker is the deprecated boolean form of Tracker: when set (and
	// Tracker is left at its default) it selects TrackerScan.
	ScanTracker bool
	// DisableExtension turns off snapshot extension: redo-log transactions
	// then abort on any read newer than their begin timestamp instead of
	// attempting a timestamp extension (the pre-optimization behaviour,
	// kept for ablations).
	DisableExtension bool
	// CapFenceAtCommit caps privatization-fence thresholds at the
	// writer's commit time, eliminating the grace-period "extended
	// delays" of §III-A (safe: a reader that began after the commit
	// observes the committed state and cannot be doomed by it).
	CapFenceAtCommit bool
	// GraceStrategy selects the §III-A adaptation family (default:
	// exponential, the paper's choice).
	GraceStrategy GraceStrategy
	// OrecLayout selects the orec table's memory layout: OrecLayoutAoS
	// (default; one padded line per record) or OrecLayoutSoA (parallel
	// padded columns, separating writer owner-scan traffic from reader
	// hint traffic).
	OrecLayout OrecLayout
	// DisableHintCache turns off the thread-local orec hint cache, making
	// every MakeVisible re-run the full §II-E protocol (ablations and the
	// cache-equivalence property test).
	DisableHintCache bool
	// DisableSandboxChecks turns off the validate-before-dangerous-use
	// sandbox checkpoints (Thread.ValidateBeforeUse): doomed transactions
	// then rely solely on commit-time validation and Run's panic sandbox,
	// the pre-reclamation behaviour. Kept for ablations; unsafe to combine
	// with uninstrumented access to txn-read pointers.
	DisableSandboxChecks bool
	// ReclaimPoison makes the epoch-based reclaimer overwrite quarantined
	// words with the reclaim.Poison sentinel (debug mode: use-after-reclaim
	// fails loudly and the explorer's poisoned-memory oracle can see it).
	ReclaimPoison bool
	// ReclaimCollectEvery is the reclaimer's amortization period in retires
	// per thread (0 ⇒ reclaim.DefaultCollectEvery).
	ReclaimCollectEvery int

	// CM selects the contention-management policy applied between retry
	// attempts (default CMBackoff).
	CM CMPolicy
	// MaxAttempts is the abort budget before a transaction escalates to
	// the serialized-irrevocable fallback: 0 means DefaultMaxAttempts,
	// negative disables escalation (the pre-robustness behaviour).
	MaxAttempts int
	// StallThreshold is the number of no-progress fence backoff rounds
	// before the stall watchdog fires: 0 means DefaultStallThreshold,
	// negative disables the watchdog.
	StallThreshold int
	// OnStall is invoked once per detected fence stall (default: a log
	// line). It runs on the fenced thread; keep it cheap and non-blocking.
	OnStall func(StallInfo)
}

func (o *Options) fill() {
	if o.HeapWords == 0 {
		o.HeapWords = 1 << 20
	}
	if o.OrecCount == 0 {
		o.OrecCount = 1 << 16
	}
	if o.BlockWords == 0 {
		o.BlockWords = 1
	}
	if o.MaxThreads == 0 {
		o.MaxThreads = 64
	}
	if o.MaxGrace == 0 {
		o.MaxGrace = DefaultMaxGrace
	}
	if o.HybridThreshold == 0 {
		o.HybridThreshold = DefaultHybridThreshold
	}
	if o.ScanTracker && o.Tracker == TrackerSlot {
		o.Tracker = TrackerScan
	}
	// The slot tracker's cached watermark packs the holder index next to
	// the timestamp; configurations beyond its capacity (well past any
	// practical thread count) degrade to the registry scan.
	if o.Tracker == TrackerSlot && o.MaxThreads > txnlist.MaxSlots {
		o.Tracker = TrackerScan
	}
}

// Runtime is the shared state of one STM instance. All engines attached to
// a Runtime operate on the same heap, orec table and clock, so tests can
// compare engines on identical memory images (one engine at a time).
type Runtime struct {
	Heap   *heap.Heap
	Orecs  *orec.Table
	Clock  clock.Clock
	Active ActiveTracker // incomplete-transaction tracker (§II-C)
	Order  ticket.Lock   // strict-ordering ticket lock (§IV)
	OrderQ *ticket.QueueLock

	// ClockMode is the configured version-clock scheme (clockpath.go).
	ClockMode ClockMode
	// Combine is Ord's flat-combining commit batcher, non-nil when
	// Options.OrderBatch > 0.
	Combine *ticket.Combiner

	// Reclaim is the epoch-based safe-reclamation subsystem: extents
	// retired through Thread.Retire are quarantined until the oldest-begin
	// watermark proves no incomplete transaction began before the retiring
	// commit, then returned to Heap's free list (CORRECTNESS.md §14).
	Reclaim *reclaim.Reclaimer

	MaxGrace         uint64
	HybridThreshold  int
	CapFenceAtCommit bool
	NoExtension      bool // snapshot extension disabled (ablation)
	NoHintCache      bool // thread-local hint cache disabled (ablation)
	NoSandboxChecks  bool // validate-before-use sandbox disabled (ablation)
	GraceStrategy    GraceStrategy

	CMKind         CMPolicy
	MaxAttempts    int
	StallThreshold int
	OnStall        func(StallInfo)

	// serialTok is the global irrevocability token of the serialized
	// fallback (cm.go).
	serialTok serialToken

	// threads is a fixed-size registry: slots are claimed with an atomic
	// counter and published with atomic stores, so registration may
	// safely race with visibility-liveness checks and validation fences
	// running on already-registered threads.
	threads []atomic.Pointer[Thread]
	nthread atomic.Int64

	// Thread lifecycle: ReleaseThread unpublishes a descriptor and parks
	// its registry slot ID on freeIDs for reuse by a later NewThread, so a
	// pool that churns workers does not exhaust the fixed-size registry.
	// The mutex also orders the descriptor hand-off: everything the old
	// owner did (including flushing its reclaim front) happens-before the
	// new owner's first use of the same slot ID. retired accumulates the
	// op counters of released descriptors so aggregate statistics survive
	// worker churn.
	lifeMu  sync.Mutex
	freeIDs []uint64
	retired stats.Counters
}

// NewRuntime builds a runtime from opts.
func NewRuntime(opts Options) (*Runtime, error) {
	opts.fill()
	if opts.MaxThreads > orec.MaxTID {
		return nil, fmt.Errorf("core: MaxThreads %d exceeds representable TID limit %d",
			opts.MaxThreads, orec.MaxTID)
	}
	rt := &Runtime{
		Heap:             heap.New(opts.HeapWords),
		Orecs:            orec.NewTableLayout(opts.OrecCount, opts.BlockWords, opts.OrecLayout),
		OrderQ:           ticket.NewQueueLock(),
		ClockMode:        opts.Clock,
		MaxGrace:         opts.MaxGrace,
		HybridThreshold:  opts.HybridThreshold,
		CapFenceAtCommit: opts.CapFenceAtCommit,
		NoExtension:      opts.DisableExtension,
		NoHintCache:      opts.DisableHintCache,
		NoSandboxChecks:  opts.DisableSandboxChecks,
		GraceStrategy:    opts.GraceStrategy,
		CMKind:           opts.CM,
		MaxAttempts:      opts.MaxAttempts,
		StallThreshold:   opts.StallThreshold,
		OnStall:          opts.OnStall,
		threads:          make([]atomic.Pointer[Thread], opts.MaxThreads),
	}
	switch opts.Tracker {
	case TrackerScan:
		rt.Active = NewScanTracker(rt)
	case TrackerList:
		rt.Active = NewListTracker(rt)
	default:
		rt.Active = NewSlotTracker(rt)
	}
	// Every tracker kind carries the schedule explorer's yield points
	// (tracker.go); disabled cost is a nil-check per Enter/EnterAt/Leave.
	rt.Active = yieldTracker{inner: rt.Active}
	// The reclaimer's epoch source is the tracker's oldest-begin watermark;
	// bind it through a closure so tests that swap trackers keep working.
	rt.Reclaim = reclaim.New(rt.Heap,
		func() (uint64, bool) { return rt.Active.OldestBegin() },
		reclaim.Config{
			Threads:      opts.MaxThreads,
			CollectEvery: opts.ReclaimCollectEvery,
			Poison:       opts.ReclaimPoison,
		})
	if opts.OrderBatch > 0 {
		rt.Combine = ticket.NewCombiner(opts.MaxThreads, opts.OrderBatch)
	}
	// Start time at 1 so that a zeroed vis word (rts = 0) can never read
	// as a hint covering a live transaction: every begin timestamp is ≥ 1.
	rt.Clock.Tick()
	return rt, nil
}

// NewThread registers a new thread descriptor. A worker goroutine must use
// its own descriptor exclusively. Descriptors live until ReleaseThread
// (stm.Thread.Close) returns their registry slot; released slot IDs are
// reused before the high-water counter grows, so a pool that churns workers
// stays within MaxThreads. NewThread is safe to call while other threads
// are running transactions.
func (rt *Runtime) NewThread() (*Thread, error) {
	var id int64 = -1
	rt.lifeMu.Lock()
	if n := len(rt.freeIDs); n > 0 {
		id = int64(rt.freeIDs[n-1])
		rt.freeIDs = rt.freeIDs[:n-1]
	}
	rt.lifeMu.Unlock()
	if id < 0 {
		id = rt.nthread.Add(1) - 1
		if id >= int64(len(rt.threads)) {
			rt.nthread.Add(-1)
			return nil, fmt.Errorf("core: thread limit %d reached", len(rt.threads))
		}
	}
	t := &Thread{RT: rt, ID: uint64(id), Rl: rt.Reclaim.Local(int(id))}
	t.cm = rt.newCM()
	rt.threads[id].Store(t)
	return t, nil
}

// ReleaseThread unregisters a descriptor previously obtained from NewThread:
// it flushes the thread's local reclaim front (so retired extents become
// visible to Reclaim.Drain), folds the thread's op counters into the
// runtime-level retired accumulator, clears the registry slot (liveness
// checks treat the ID as dead from then on), and parks the slot ID for
// reuse. The descriptor must be quiescent — no transaction in flight, no
// epoch pin held. Releasing a descriptor twice, or one that is still
// active, is an error.
func (rt *Runtime) ReleaseThread(t *Thread) error {
	if t == nil || t.RT != rt {
		return fmt.Errorf("core: ReleaseThread of foreign descriptor")
	}
	if _, active := t.Published(); active {
		return fmt.Errorf("core: ReleaseThread of thread %d with a transaction or epoch pin still published", t.ID)
	}
	if !rt.threads[t.ID].CompareAndSwap(t, nil) {
		return fmt.Errorf("core: ReleaseThread of already-released thread %d", t.ID)
	}
	// Push buffered retires out of the per-thread front into the shared
	// limbo shards; without this the extents would strand invisibly (the
	// historical leak this release path fixes).
	t.Rl.Flush()
	rt.lifeMu.Lock()
	rt.retired.Add(&t.Stats)
	rt.freeIDs = append(rt.freeIDs, t.ID)
	rt.lifeMu.Unlock()
	return nil
}

// RetiredStats folds the op counters accumulated by released descriptors
// into agg, so aggregate statistics survive worker churn.
func (rt *Runtime) RetiredStats(agg *stats.Counters) {
	rt.lifeMu.Lock()
	agg.Add(&rt.retired)
	rt.lifeMu.Unlock()
}

// ThreadByID returns the descriptor registered under id, or nil. Liveness
// checks in the visibility protocol use it to decide whether an orec's last
// reader may still be running.
func (rt *Runtime) ThreadByID(id uint64) *Thread {
	if id >= uint64(len(rt.threads)) {
		return nil
	}
	return rt.threads[id].Load()
}

// NumThreads returns how many descriptors have been registered.
func (rt *Runtime) NumThreads() int { return int(rt.nthread.Load()) }

// ForEachThread calls fn for every registered descriptor.
func (rt *Runtime) ForEachThread(fn func(*Thread)) {
	n := rt.nthread.Load()
	for i := int64(0); i < n; i++ {
		if t := rt.threads[i].Load(); t != nil {
			fn(t)
		}
	}
}
