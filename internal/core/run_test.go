package core

import (
	"errors"
	"testing"

	"privstm/internal/heap"
	"privstm/internal/orec"
)

// fakeEngine is a minimal in-place engine for exercising Run's control
// flow in isolation.
type fakeEngine struct {
	rt       *Runtime
	begins   int
	cancels  int
	commitOK bool
}

func (f *fakeEngine) Name() string { return "fake" }
func (f *fakeEngine) Begin(t *Thread) {
	f.begins++
	t.ResetTxnState()
	t.StartSnapshot(f.rt.Clock.Now())
	t.PublishActive(t.BeginTS)
}
func (f *fakeEngine) Read(t *Thread, a heap.Addr) heap.Word { return t.ReadHeapConsistent(a) }
func (f *fakeEngine) Write(t *Thread, a heap.Addr, w heap.Word) {
	if !t.AcquireOrec(f.rt.Orecs.For(a)) {
		t.ConflictAbort()
	}
	t.Undo.Add(a, f.rt.Heap.AtomicLoad(a))
	f.rt.Heap.AtomicStore(a, w)
	t.Wrote = true
}
func (f *fakeEngine) Commit(t *Thread) bool {
	if !f.commitOK {
		f.commitOK = true // succeed on the retry
		t.Undo.Rollback(f.rt.Heap)
		t.Acq.RestoreAll()
		t.PublishInactive()
		return false
	}
	t.Acq.ReleaseAll(f.rt.Clock.Tick())
	t.PublishInactive()
	return true
}
func (f *fakeEngine) Cancel(t *Thread) {
	f.cancels++
	t.Undo.Rollback(f.rt.Heap)
	t.Acq.RestoreAll()
	t.PublishInactive()
}

func TestRunRetriesFailedCommit(t *testing.T) {
	rt := newTestRT(t, 2)
	e := &fakeEngine{rt: rt}
	th, _ := rt.NewThread()
	runs := 0
	if err := Run(e, th, func() { runs++ }); err != nil {
		t.Fatal(err)
	}
	if runs != 2 || e.begins != 2 {
		t.Errorf("runs=%d begins=%d, want 2/2 (one failed commit)", runs, e.begins)
	}
	if th.Stats.Aborts != 1 || th.Stats.Commits != 1 {
		t.Errorf("stats: %+v", th.Stats)
	}
}

func TestRunConflictAbortRetries(t *testing.T) {
	rt := newTestRT(t, 2)
	e := &fakeEngine{rt: rt, commitOK: true}
	th, _ := rt.NewThread()
	runs := 0
	if err := Run(e, th, func() {
		runs++
		if runs == 1 {
			th.ConflictAbort()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if runs != 2 || e.cancels != 1 {
		t.Errorf("runs=%d cancels=%d", runs, e.cancels)
	}
}

func TestRunUserCancelNoRetry(t *testing.T) {
	rt := newTestRT(t, 2)
	e := &fakeEngine{rt: rt, commitOK: true}
	th, _ := rt.NewThread()
	sentinel := errors.New("stop")
	runs := 0
	err := Run(e, th, func() {
		runs++
		th.UserCancel(sentinel)
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if runs != 1 || e.cancels != 1 {
		t.Errorf("runs=%d cancels=%d, want 1/1", runs, e.cancels)
	}
	if th.Stats.Commits != 1 {
		t.Errorf("a cancelled transaction still counts as a completed Run: %+v", th.Stats)
	}
}

func TestRunSandboxesDoomedPanic(t *testing.T) {
	// A body panic while the read set is invalid is a symptom of a doomed
	// transaction and must be retried, not propagated.
	rt := newTestRT(t, 2)
	e := &fakeEngine{rt: rt, commitOK: true}
	th, _ := rt.NewThread()
	a := rt.Heap.MustAlloc(1)
	runs := 0
	if err := Run(e, th, func() {
		runs++
		_ = e.Read(th, a)
		if runs == 1 {
			// Invalidate the read behind our back, then "crash".
			o := rt.Orecs.For(a)
			o.Owner().Store(orec.PackUnowned(rt.Clock.Tick()))
			panic("chased a torn pointer")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Errorf("runs = %d, want 2 (sandboxed retry)", runs)
	}
}

func TestRunPropagatesGenuinePanic(t *testing.T) {
	rt := newTestRT(t, 2)
	e := &fakeEngine{rt: rt, commitOK: true}
	th, _ := rt.NewThread()
	defer func() {
		if r := recover(); r != "real bug" {
			t.Errorf("recovered %v, want \"real bug\"", r)
		}
		if e.cancels != 1 {
			t.Errorf("cancel not run before propagation (cancels=%d)", e.cancels)
		}
	}()
	_ = Run(e, th, func() { panic("real bug") })
}

func TestReadHeapConsistentAbortsOnForeignOwner(t *testing.T) {
	rt := newTestRT(t, 2)
	owner := newActiveThread(t, rt)
	reader := newActiveThread(t, rt)
	a := rt.Heap.MustAlloc(1)
	if !owner.AcquireOrec(rt.Orecs.For(a)) {
		t.Fatal("acquire failed")
	}
	aborted := false
	func() {
		defer func() {
			if _, ok := recover().(conflictSignal); ok {
				aborted = true
			}
		}()
		reader.ReadHeapConsistent(a)
	}()
	if !aborted {
		t.Error("read of a foreign-owned orec did not abort")
	}
	finish(rt, owner)
	finish(rt, reader)
}

func TestReadHeapConsistentAbortsOnNewerTimestamp(t *testing.T) {
	rt := newTestRT(t, 2)
	reader := newActiveThread(t, rt)
	a := rt.Heap.MustAlloc(1)
	rt.Orecs.For(a).Owner().Store(orec.PackUnowned(rt.Clock.Tick()))
	aborted := false
	func() {
		defer func() {
			if _, ok := recover().(conflictSignal); ok {
				aborted = true
			}
		}()
		reader.ReadHeapConsistent(a)
	}()
	if !aborted {
		t.Error("read of a too-new orec did not abort")
	}
	finish(rt, reader)
}

func TestAcquireWriteSetRollsBackOnFailure(t *testing.T) {
	rt := newTestRT(t, 2)
	a := rt.Heap.MustAlloc(1)
	b := rt.Heap.MustAlloc(600)
	w1 := newActiveThread(t, rt)
	w2 := newActiveThread(t, rt)
	if rt.Orecs.For(a) == rt.Orecs.For(b+512) {
		t.Skip("orec collision")
	}
	// w1 owns b's orec; w2 wants both a and b.
	if !w1.AcquireOrec(rt.Orecs.For(b + 512)) {
		t.Fatal("setup acquire failed")
	}
	w2.Redo.Put(a, 1)
	w2.Redo.Put(b+512, 2)
	if w2.AcquireWriteSet() {
		t.Fatal("AcquireWriteSet should have failed")
	}
	if w2.Acq.Len() != 0 {
		t.Error("failed acquisition left entries in the acquired set")
	}
	if orec.IsOwned(rt.Orecs.For(a).Owner().Load()) {
		t.Error("orec a still owned after rollback")
	}
	finish(rt, w1)
	finish(rt, w2)
}

func TestPollValidateOnlyOnClockChange(t *testing.T) {
	rt := newTestRT(t, 2)
	th := newActiveThread(t, rt)
	th.LastClockSeen = rt.Clock.Now()
	th.PollValidate()
	if th.Stats.Validations != 0 {
		t.Error("validated although the clock did not move")
	}
	rt.Clock.Tick()
	th.PollValidate()
	if th.Stats.Validations != 1 {
		t.Errorf("Validations = %d, want 1", th.Stats.Validations)
	}
	// And it published the clean point.
	if th.ValidatedAt() != rt.Clock.Now() {
		t.Errorf("ValidatedAt = %d, want %d", th.ValidatedAt(), rt.Clock.Now())
	}
	finish(rt, th)
}

func TestPollValidateAbortsOnInvalidReadSet(t *testing.T) {
	rt := newTestRT(t, 2)
	th := newActiveThread(t, rt)
	a := rt.Heap.MustAlloc(1)
	_ = th.ReadHeapConsistent(a)
	rt.Orecs.For(a).Owner().Store(orec.PackUnowned(rt.Clock.Tick()))
	aborted := false
	func() {
		defer func() {
			if _, ok := recover().(conflictSignal); ok {
				aborted = true
			}
		}()
		th.PollValidate()
	}()
	if !aborted {
		t.Error("stale read set survived PollValidate")
	}
	finish(rt, th)
}
