package core

import (
	"sync/atomic"

	"privstm/internal/failpoint"
	"privstm/internal/heap"
	"privstm/internal/orec"
	"privstm/internal/spin"
)

// This file is the engine-side half of the semantic conflict layer used by
// internal/tds (CORRECTNESS.md §15). The idea is Proust/boosting layering:
// containers map each operation to an *abstract lock* — a stripe in a
// SemTable keyed by the operation's key or predicate — and the commit
// protocol acquires and validates those stripes alongside the word-level
// orecs. Two transactions that touch different keys of the same bucket list
// then share orecs but not stripes, and the stripe check (not the word
// check) decides whether they conflict: the container performs its
// traversals with unlogged weak reads (ReadWeak) that the word validator
// never sees, so structurally disjoint operations stop aborting each other.
//
// Commuting operations go one step further: a counter-shaped update
// (queue size, map size) is logged as a delta (SemAddDelta) and applied
// with one atomic add at commit, after bumping the counter's stripe — no
// word-level orec, no validation, counted in stats.SemanticSkips.
//
// Locking discipline: stripes are acquired only inside Commit, between
// SemPreCommit and SemPostCommit/SemAbortRelease, strictly after the
// word-level write set is acquired; acquisition never waits (a busy stripe
// fails the commit), so the global no-deadlock argument of the contention
// managers is untouched.

// SemTable is a table of abstract-lock stripes. Each stripe is one padded
// atomic word packed exactly like an orec owner word: even = version<<1
// (unowned), odd = tid<<1|1 (owned by a committing transaction). Versions
// are self-contained monotone counters — each release adds 2 — and never
// derived from the global clock, so duplicate commit timestamps under the
// deferred clock modes cannot alias two distinct stripe states.
//
// Containers choose their own key→stripe mapping; by convention stripe 0 is
// reserved for commuting counters and structural version bumps and is never
// write-acquired (an atomic +2 on an owned stripe would corrupt the owner
// tid).
type SemTable struct {
	id      uint32
	stripes []semStripe
	mask    uint32
}

// semStripe pads each stripe to a cache line so independent keys never
// false-share.
type semStripe struct {
	v atomic.Uint64
	_ [7]uint64
}

// semTableIDs hands every table a distinct id, mixed into the filter probe
// keys so stripes of different tables logged by one transaction scatter.
var semTableIDs atomic.Uint32

// NewSemTable creates a table with at least n stripes (rounded up to a
// power of two, minimum 2).
func NewSemTable(n int) *SemTable {
	size := 2
	for size < n {
		size *= 2
	}
	return &SemTable{
		id:      semTableIDs.Add(1),
		stripes: make([]semStripe, size),
		mask:    uint32(size - 1),
	}
}

// Len returns the stripe count (a power of two).
func (st *SemTable) Len() int { return len(st.stripes) }

// stripe returns stripe i's atomic word (index masked to the table).
func (st *SemTable) stripe(i uint32) *atomic.Uint64 { return &st.stripes[i&st.mask].v }

// key builds the filter probe key for stripe i.
func (st *SemTable) key(i uint32) uint32 { return st.id*0x85ebca6b ^ (i & st.mask) }

// semOwned packs the owned stripe word for thread tid.
func semOwned(tid uint64) uint64 { return tid<<1 | 1 }

// SemCommitter is the capability marker an engine implements to declare
// that its Commit runs the abstract-lock hooks (SemPreCommit /
// SemPostCommit / SemAbortRelease) at the documented points. The semantic
// containers (internal/tds) refuse to run on an engine without it: on such
// an engine the semantic log would be populated but never validated, which
// is silently unsound rather than merely slow.
type SemCommitter interface {
	SemanticCommitCapable()
}

// SemSample records a read-side sample of stripe i: the transaction's
// observations under that abstract lock are valid iff the stripe is
// unchanged at commit time. A stripe currently owned by a committing rival
// aborts immediately (stripes are held only for the short commit window;
// waiting here would reintroduce the lock-order deadlock the no-wait rule
// exists to prevent). A re-sample that observes a different version than
// the first also aborts: the first sample anchors the abstract snapshot.
func (t *Thread) SemSample(st *SemTable, i uint32) {
	s := st.stripe(i)
	v := s.Load()
	if v&1 != 0 {
		t.Stats.AbstractLockConflicts++
		t.ConflictAbort()
	}
	if !t.Sem.AddRead(st.key(i), s, v) {
		t.Stats.AbstractLockConflicts++
		t.ConflictAbort()
	}
}

// SemIntendWrite declares that the transaction semantically modifies the
// state guarded by stripe i: the commit will acquire the stripe, and its
// release will bump the version so every overlapping sampler revalidates.
func (t *Thread) SemIntendWrite(st *SemTable, i uint32) {
	t.Sem.AddWrite(st.key(i), st.stripe(i))
}

// SemAddDelta logs a commuting counter update: add d (two's complement for
// decrements) to the word at a, covered by stripe i. The word must be
// maintained *exclusively* through deltas — it is applied with an atomic
// add at commit and never write-acquired — and readers of the word must
// sample stripe i. Stripe i must be one of the never-acquired counter
// stripes (conventionally stripe 0).
func (t *Thread) SemAddDelta(st *SemTable, i uint32, a heap.Addr, d heap.Word) {
	t.Sem.AddDelta(st.stripe(i), a, d)
}

// SemPendingDelta returns the delta accumulated against the counter word at
// a so far this transaction (zero if none) — read-your-writes for SemAddDelta
// counters, whose updates otherwise land only at commit.
func (t *Thread) SemPendingDelta(a heap.Addr) heap.Word {
	return t.Sem.PendingDelta(a)
}

// SemPreCommit acquires the transaction's abstract locks and validates its
// stripe samples. Engines call it after the word-level write set is fully
// acquired and before the commit timestamp is taken. It returns false —
// with every stripe it touched restored — if any stripe is busy or any
// sample went stale; the engine then aborts exactly as for a failed word
// validation. On success the stripes stay owned until SemPostCommit (the
// commit succeeded) or SemAbortRelease (a later commit step failed).
func (t *Thread) SemPreCommit() bool {
	sem := &t.Sem
	if sem.Empty() {
		return true
	}
	own := semOwned(t.ID)
	nw := sem.WritesLen()
	for i := 0; i < nw; i++ {
		w := sem.WriteAt(i)
		v := w.Stripe.Load()
		if v&1 != 0 || !w.Stripe.CompareAndSwap(v, own) {
			for j := 0; j < i; j++ {
				p := sem.WriteAt(j)
				p.Stripe.Store(p.Prev)
			}
			t.Stats.AbstractLockConflicts++
			return false
		}
		w.Prev = v
		failpoint.Eval(failpoint.SemAcquired)
	}
	nr := sem.ReadsLen()
	for i := 0; i < nr; i++ {
		r := sem.ReadAt(i)
		v := r.Stripe.Load()
		if v == r.Seen {
			continue
		}
		if v == own {
			// We own it: valid iff nothing committed between our sample and
			// our acquisition.
			if prev, ok := sem.PrevOf(r.Stripe); ok && prev == r.Seen {
				continue
			}
		}
		t.SemAbortRelease()
		t.Stats.AbstractLockConflicts++
		return false
	}
	return true
}

// SemPostCommit publishes the transaction's semantic effects. Engines call
// it on the success path *before* releasing (and, for redo engines, before
// writing back) the word-level write set: the stripe version bumps must be
// in place before any rival can observe the new data, so a sampler that
// reads a post-commit value is guaranteed to fail its stripe validation.
// Within the call the ordering is bump-then-apply for the same reason:
// delta stripes move before the counter words do.
func (t *Thread) SemPostCommit() {
	sem := &t.Sem
	if sem.Empty() {
		return
	}
	nw := sem.WritesLen()
	for i := 0; i < nw; i++ {
		failpoint.Eval(failpoint.SemRelease)
		w := sem.WriteAt(i)
		w.Stripe.Store(w.Prev + semReleaseBump)
	}
	nd := sem.DeltasLen()
	for i := 0; i < nd; i++ {
		failpoint.Eval(failpoint.SemRelease)
		sem.DeltaAt(i).Stripe.Add(2)
	}
	for i := 0; i < nd; i++ {
		d := sem.DeltaAt(i)
		t.RT.Heap.AtomicAdd(d.Addr, d.Delta)
	}
	t.Stats.SemanticSkips += uint64(nd)
}

// SemAbortRelease restores every acquired stripe to its pre-acquisition
// word. Engines call it when a commit step *after* a successful
// SemPreCommit fails (word validation, ordered-commit revalidation).
func (t *Thread) SemAbortRelease() {
	sem := &t.Sem
	nw := sem.WritesLen()
	for i := 0; i < nw; i++ {
		failpoint.Eval(failpoint.SemRelease)
		w := sem.WriteAt(i)
		w.Stripe.Store(w.Prev)
	}
}

// ReadWeak performs an unlogged read covered by an abstract lock: the word
// is loaded consistently (orec double-check, as in ReadHeapConsistent) but
// never enters the read set, so word-level validation ignores it — the
// stripe the container sampled is what certifies it at commit. The first
// weak read of a transaction pins the thread on the active tracker at its
// begin timestamp, which blocks epoch reclamation (internal/reclaim) from
// reusing any extent retired after the pin: a weak traversal can therefore
// dereference pointers it read moments ago without revalidating them. The
// pin is released on PublishInactive, the universal transaction-end path.
func (t *Thread) ReadWeak(a heap.Addr) heap.Word {
	t.CheckAddr(a)
	if w, ok := t.Redo.Get(a); ok {
		return w // read-your-writes for the buffered-update engines
	}
	if !t.Visible && !t.EpochPinned {
		// Pin BEFORE the load: the retire→collect ordering guarantees that
		// any extent still reachable through a word we are about to read was
		// retired after this registration is visible (CORRECTNESS.md §15).
		t.RT.Active.EnterAt(t, t.BeginTS)
		t.EpochPinned = true
	}
	t.Stats.WeakReads++
	o := t.RT.Orecs.For(a)
	//stmlint:ignore yieldsite obstruction-free double-check: the loop repeats only when a rival changed the orec mid-read — it retries on interference, not on stillness, so it cannot spin while the world is idle
	for {
		v1 := o.Owner().Load()
		if orec.IsOwned(v1) {
			if orec.OwnerTID(v1) == t.ID {
				return t.RT.Heap.AtomicLoad(a) // my own in-place write
			}
			t.ConflictAbort()
		}
		w := t.RT.Heap.AtomicLoad(a)
		if o.Owner().Load() == v1 {
			return w
		}
	}
}

// WeakQuiesce blocks until every transaction that began before this
// thread's latest commit has completed. It is the escape-hatch fence the
// semantic containers run after a privatizing commit (Map.PrivateSnapshot,
// Queue.DrainPrivate): weak readers are invisible to the engines'
// privatization fences (their reads are unlogged and publish no visibility
// hints), but every weak reader is pinned on the active tracker at its
// begin timestamp, so draining the tracker below LastCommitTS drains them
// too. Only transactions that began *before* the privatizing commit can
// hold pointers into the privatized extent (a later begin observes the
// unlink — see CORRECTNESS.md §15), so oldest ≥ LastCommitTS is exactly
// "no one left to wait for".
func (t *Thread) WeakQuiesce() {
	threshold := t.LastCommitTS
	// Deferred clock modes: publish the threshold so new begins start at or
	// above it — otherwise a steady stream of readers beginning at a stale
	// global time could hold the quiesce open forever.
	t.NoteFutureWTS(threshold)
	var b spin.Backoff
	for {
		oldest, any := t.RT.Active.OldestBegin()
		if !any || oldest >= threshold {
			return
		}
		failpoint.Eval(failpoint.SemQuiesceWait)
		t.Stats.FenceSpins++
		b.Wait()
	}
}

// TxnExtent is one heap extent allocated inside a transaction.
type TxnExtent struct {
	Addr heap.Addr
	N    int
}

// MustAllocTxn allocates an n-word extent whose lifetime follows the
// transaction: if the attempt aborts, the extent is kept and re-handed to
// the retry's allocations (the common path — a retried insert allocates the
// same node shape), and any extent a committed attempt did not consume is
// retired through the epoch reclaimer. Words are NOT zeroed when an extent
// is re-handed across attempts; the caller initializes every word before
// publishing, as with the reclaimer's AllocReused.
func (t *Thread) MustAllocTxn(n int) heap.Addr {
	for t.txnAllocCur < len(t.TxnAllocs) {
		e := t.TxnAllocs[t.txnAllocCur]
		if e.N == n {
			t.txnAllocCur++
			return e.Addr
		}
		// Shape mismatch with the aborted attempt: retire the leftover and
		// try the next one.
		t.Rl.Retire(e.Addr, e.N, t.RetireStamp())
		t.TxnAllocs = append(t.TxnAllocs[:t.txnAllocCur], t.TxnAllocs[t.txnAllocCur+1:]...)
	}
	a, ok := t.AllocReused(n)
	if !ok {
		a = t.RT.Heap.MustAlloc(n)
	}
	t.TxnAllocs = append(t.TxnAllocs, TxnExtent{Addr: a, N: n})
	t.txnAllocCur++
	return a
}

// RetireOnCommit schedules the n-word extent at a for epoch retirement if
// and only if the running transaction commits (a container unlinking a node
// cannot retire it inline — the unlink might abort). FinishCommit applies
// the schedule; an abort simply drops it at the next Begin.
func (t *Thread) RetireOnCommit(a heap.Addr, n int) {
	t.commitRetires = append(t.commitRetires, TxnExtent{Addr: a, N: n})
}

// FinishCommit runs after an engine's Commit succeeds (core.Run calls it):
// transactional allocations that were consumed become permanent, leftovers
// from earlier aborted attempts are retired, and the RetireOnCommit
// schedule is applied — stamped at RetireStamp, which covers this very
// commit, exactly what the reclaimer's epoch check needs.
func (t *Thread) FinishCommit() {
	if len(t.TxnAllocs) > 0 {
		for _, e := range t.TxnAllocs[t.txnAllocCur:] {
			t.Rl.Retire(e.Addr, e.N, t.RetireStamp())
		}
		t.TxnAllocs = t.TxnAllocs[:0]
		t.txnAllocCur = 0
	}
	if len(t.commitRetires) > 0 {
		for _, e := range t.commitRetires {
			t.Rl.Retire(e.Addr, e.N, t.RetireStamp())
		}
		t.commitRetires = t.commitRetires[:0]
	}
}
