package core

import (
	"testing"
	"time"

	"privstm/internal/spin"
)

func TestStallLimit(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, DefaultStallThreshold},
		{7, 7},
		{-1, 0}, // watchdog disabled
	}
	for _, c := range cases {
		rt := &Runtime{StallThreshold: c.in}
		if got := rt.stallLimit(); got != c.want {
			t.Errorf("stallLimit(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPrivatizationFenceWatchdogDetectsStalledReader(t *testing.T) {
	stalls := make(chan StallInfo, 4)
	rt := newTestRTOpts(t, Options{
		StallThreshold: 4,
		OnStall:        func(info StallInfo) { stalls <- info },
	})
	reader, _ := rt.NewThread()
	writer, _ := rt.NewThread()

	// The reader registers and then makes no progress — the injected-stall
	// scenario the fence must detect rather than silently spin on.
	begin := rt.Active.Enter(reader)
	reader.PublishActive(begin)

	done := make(chan struct{})
	go func() {
		writer.PrivatizationFence(begin) // threshold ≥ begin: must wait
		close(done)
	}()

	var info StallInfo
	select {
	case info = <-stalls:
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog never fired for a stalled reader")
	}
	if info.Fence != FencePrivatization {
		t.Errorf("info.Fence = %q", info.Fence)
	}
	if info.WaiterID != writer.ID {
		t.Errorf("info.WaiterID = %d, want %d", info.WaiterID, writer.ID)
	}
	if info.BlockerID != int64(reader.ID) {
		t.Errorf("info.BlockerID = %d, want %d (the stalled reader)", info.BlockerID, reader.ID)
	}
	if info.BlockerBegin != begin || info.Bound != begin {
		t.Errorf("info begin/bound = %d/%d, want %d/%d", info.BlockerBegin, info.Bound, begin, begin)
	}
	if info.Rounds < 4 {
		t.Errorf("info.Rounds = %d, want >= threshold 4", info.Rounds)
	}
	select {
	case <-done:
		t.Fatal("fence returned while the reader was still registered (unsound)")
	default:
	}

	// Detection is diagnostic only: the fence completes normally once the
	// reader finishes.
	rt.Active.Leave(reader)
	reader.PublishInactive()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("fence never returned after the reader left")
	}
	// One firing per stall, not one per round.
	if extra := len(stalls); extra != 0 {
		t.Errorf("watchdog fired %d extra times for the same stall", extra+1)
	}
}

func TestValidationFenceWatchdogDetectsStalledReader(t *testing.T) {
	stalls := make(chan StallInfo, 4)
	rt := newTestRTOpts(t, Options{
		StallThreshold: 4,
		OnStall:        func(info StallInfo) { stalls <- info },
	})
	reader, _ := rt.NewThread()
	writer, _ := rt.NewThread()

	reader.PublishActive(1)
	wts := uint64(5)

	done := make(chan struct{})
	go func() {
		writer.ValidationFence(wts)
		close(done)
	}()

	var info StallInfo
	select {
	case info = <-stalls:
	case <-time.After(10 * time.Second):
		t.Fatal("validation-fence watchdog never fired")
	}
	if info.Fence != FenceValidation || info.BlockerID != int64(reader.ID) || info.Bound != wts {
		t.Errorf("info = %+v", info)
	}

	// Publishing a validation at ≥ wts is the reader's clean point.
	reader.SetValidated(wts)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("fence never returned after the reader validated")
	}
	reader.PublishInactive()
}

func TestWatchdogCountsProgressAsFresh(t *testing.T) {
	// A thread that finishes and starts a new transaction at the SAME begin
	// timestamp must count as progress: the publication sequence number
	// distinguishes the two, so the watchdog restarts its round counter
	// rather than firing.
	rt := newTestRTOpts(t, Options{StallThreshold: 8})
	u, _ := rt.NewThread()
	w, _ := rt.NewThread()

	u.PublishActive(3)
	var watch stallWatch
	var b spin.Backoff
	for i := 0; i < 6; i++ {
		watch.observe(w, FenceValidation, int64(u.ID), u.BeginSeq(), 3, 9, &b)
	}
	if watch.rounds != 6 {
		t.Fatalf("rounds = %d, want 6", watch.rounds)
	}
	// Same timestamp, new transaction: sequence number changes.
	u.PublishInactive()
	u.PublishActive(3)
	watch.observe(w, FenceValidation, int64(u.ID), u.BeginSeq(), 3, 9, &b)
	if watch.rounds != 1 {
		t.Fatalf("rounds after restart = %d, want 1 (progress detected)", watch.rounds)
	}
	if w.Stats.FenceStalls != 0 {
		t.Fatalf("FenceStalls = %d, want 0", w.Stats.FenceStalls)
	}
}
