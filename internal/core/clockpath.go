package core

import "privstm/internal/clock"

// This file is the clock subsystem's integration point with the engines:
// every commit-path and poll-path decision that depends on Options.Clock
// funnels through the helpers below, so the engines themselves stay
// mode-oblivious. The soundness arguments live in CORRECTNESS.md §13.

// ClockMode re-exports the version-clock scheme selector (Options.Clock).
type ClockMode = clock.Mode

// The version-clock schemes.
const (
	ClockGV1   = clock.GV1
	ClockGV5   = clock.GV5
	ClockLocal = clock.Local
)

// ParseClockMode maps a flag spelling ("gv1", "gv5", "local") back to its
// ClockMode.
func ParseClockMode(s string) (ClockMode, error) { return clock.ParseMode(s) }

// CommitTS returns the write timestamp for a committing writer that has
// already acquired its entire write set. The acquire-before-sample order is
// what keeps the deferred modes sound: a writer committing at wts = V owns
// every orec it will release from before the global clock could have
// reached V, so a reader whose snapshot covers V either sees the ownership
// (and defers) or sees the fully committed state — extension-based
// validation cannot admit a torn prefix (CORRECTNESS.md §13).
//
// CommitTS also records the result in Thread.LastCommitTS, the anchor for
// reclamation stamps (RetireStamp): under the deferred modes the clock can
// lag the commit timestamp, and a retire stamped below the unlinking
// commit would let the epoch check release the extent early.
func (t *Thread) CommitTS() uint64 {
	rt := t.RT
	var wts uint64
	switch rt.ClockMode {
	case clock.GV5:
		// Deferred: no shared RMW at all. Duplicate timestamps across
		// threads are possible and fine; SkipCommitValidation is disabled
		// in this mode, and readers propagate observed future timestamps
		// themselves (NoteFutureWTS).
		wts = rt.Clock.Now() + 1
	case clock.Local:
		// Thread-local merge: strictly above every global time this thread
		// has observed and every timestamp it has issued, with no shared
		// write on the commit path.
		wts = rt.Clock.Now()
		if l := t.Clk.Now(); l > wts {
			wts = l
		}
		wts++
		t.Clk.AdvanceTo(wts)
	default:
		t.Stats.ClockTicks++
		wts = rt.Clock.Tick()
	}
	t.LastCommitTS = wts
	return wts
}

// NoteFutureWTS propagates an observed future write timestamp into the
// global clock under the deferred modes. Writers there commit above the
// clock without advancing it, so the reader (or failed acquirer) that
// trips over such a timestamp is the one that publishes it — after which
// its own extension attempt, and every other thread's begin snapshot and
// incremental poll, can cover the commit. A no-op under GV1, where the
// committer already advanced the clock.
func (t *Thread) NoteFutureWTS(wts uint64) {
	rt := t.RT
	if rt.ClockMode == clock.GV1 || wts <= rt.Clock.Now() {
		return
	}
	rt.Clock.AdvanceTo(wts)
	t.Stats.ClockAdvances++
}

// SkipCommitValidation reports whether a commit at wts may skip its final
// read-set validation. Only GV1's unique, totally ordered timestamps
// support the classic TL2 inference (wts == ValidTS+1 ⇒ the tick we just
// performed is the only one since our snapshot was validated): under the
// deferred modes a rival can commit at the very same timestamp, which is
// exactly when the test would wrongly pass — so those modes always
// validate.
func (t *Thread) SkipCommitValidation(wts uint64) bool {
	return t.RT.ClockMode == clock.GV1 && wts == t.ValidTS+1
}

// abortClockBump is GV5's deferred clock advance: commits never move the
// clock, so the abort path does. The retry then begins at a time covering
// the commit(s) that doomed this attempt instead of re-sampling an unmoved
// clock, and other threads' incremental polls observe the movement. Clock
// traffic becomes proportional to the abort rate — paid exactly when
// synchronization is already failing, never on the commit fast path.
func (t *Thread) abortClockBump() {
	if t.RT.ClockMode == clock.GV5 {
		t.RT.Clock.Tick()
	}
}

// CommitSignal returns a value whose movement means "some writer commit
// may have completed since you last sampled". Under GV1 that is the global
// clock itself. Under the deferred modes writer commits do not move the
// clock, which would blind the doomed-transaction polling of the §IV
// engines — the protection that catches a reader acting on state a
// privatizer is already mutating nontransactionally. The ordering locks'
// served counters move on every ordered commit (Ord, OrdQueue, pvrHybrid),
// so the composite restores the trigger at GV1's cadence. Of the remaining
// engines, Val forces reader revalidation through its validation fence
// (which advances the clock at entry under deferred modes), TL2 never
// promised privatization safety, and the undo-log PVR engines are pinned
// to GV1 by stm.New.
func (rt *Runtime) CommitSignal() uint64 {
	sig := rt.Clock.Now()
	if rt.ClockMode != clock.GV1 {
		sig += rt.Order.ServedCount() + rt.OrderQ.ServedCount()
	}
	return sig
}
