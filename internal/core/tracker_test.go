package core

import (
	"sync"
	"testing"
)

func trackers(t *testing.T) map[string]func(*Runtime) ActiveTracker {
	t.Helper()
	return map[string]func(*Runtime) ActiveTracker{
		"list": func(rt *Runtime) ActiveTracker { return NewListTracker(rt) },
		"scan": func(rt *Runtime) ActiveTracker { return NewScanTracker(rt) },
		"slot": func(rt *Runtime) ActiveTracker { return NewSlotTracker(rt) },
	}
}

func TestTrackerSemantics(t *testing.T) {
	for name, mk := range trackers(t) {
		t.Run(name, func(t *testing.T) {
			rt := newTestRT(t, 8)
			tr := mk(rt)
			if _, any := tr.OldestBegin(); any {
				t.Fatal("empty tracker reports an entry")
			}
			a, _ := rt.NewThread()
			b, _ := rt.NewThread()
			tsA := tr.Enter(a)
			rt.Clock.Tick()
			tsB := tr.Enter(b)
			if tsB < tsA {
				t.Fatalf("timestamps regressed: %d then %d", tsA, tsB)
			}
			if got, any := tr.OldestBegin(); !any || got > tsA {
				t.Errorf("OldestBegin = %d,%v want ≤ %d", got, any, tsA)
			}
			if got, any := tr.OldestOtherBegin(a); !any || got != tsB {
				t.Errorf("OldestOtherBegin(a) = %d,%v want %d", got, any, tsB)
			}
			if got, any := tr.OldestOtherBegin(b); !any || got > tsA {
				t.Errorf("OldestOtherBegin(b) = %d,%v want ≤ %d", got, any, tsA)
			}
			if tr.Count() != 2 {
				t.Errorf("Count = %d", tr.Count())
			}
			tr.Leave(a)
			if got, any := tr.OldestBegin(); !any || got != tsB {
				t.Errorf("after Leave(a): oldest = %d,%v want %d", got, any, tsB)
			}
			if _, any := tr.OldestOtherBegin(b); any {
				t.Error("b alone should see no other")
			}
			tr.Leave(b)
			if _, any := tr.OldestBegin(); any {
				t.Error("tracker not empty after all left")
			}
		})
	}
}

func TestTrackerLateJoiner(t *testing.T) {
	for name, mk := range trackers(t) {
		t.Run(name, func(t *testing.T) {
			rt := newTestRT(t, 8)
			tr := mk(rt)
			young, _ := rt.NewThread()
			rt.Clock.AdvanceTo(100)
			tr.Enter(young)
			elder, _ := rt.NewThread()
			tr.EnterAt(elder, 5) // late joiner with an old timestamp
			if got, any := tr.OldestBegin(); !any || got > 5 {
				t.Errorf("oldest = %d,%v want ≤ 5", got, any)
			}
			tr.Leave(elder)
			tr.Leave(young)
		})
	}
}

// TestTrackerLowerBoundUnderChurn verifies the fence-safety property for
// both implementations: while a resident transaction is registered,
// OldestBegin never exceeds its begin timestamp.
func TestTrackerLowerBoundUnderChurn(t *testing.T) {
	for name, mk := range trackers(t) {
		t.Run(name, func(t *testing.T) {
			rt := newTestRT(t, 8)
			tr := mk(rt)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				th, err := rt.NewThread()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(th *Thread) {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						rt.Clock.Tick()
						tr.Enter(th)
						tr.Leave(th)
					}
				}(th)
			}
			resident, _ := rt.NewThread()
			myTS := tr.Enter(resident)
			for i := 0; i < 100000; i++ {
				if ts, any := tr.OldestBegin(); !any || ts > myTS {
					t.Fatalf("oldest = %d,%v but resident began at %d", ts, any, myTS)
				}
			}
			close(stop)
			wg.Wait()
			tr.Leave(resident)
		})
	}
}

func TestRuntimeSelectsTracker(t *testing.T) {
	// NewRuntime wraps every tracker in the yield-point decorator;
	// UnwrapTracker exposes the selected concrete kind.
	rt, err := NewRuntime(Options{HeapWords: 64, OrecCount: 16, MaxThreads: 2, ScanTracker: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rt.Active.(yieldTracker); !ok {
		t.Errorf("runtime tracker not yield-decorated: %T", rt.Active)
	}
	if _, ok := UnwrapTracker(rt.Active).(*ScanTracker); !ok {
		t.Errorf("deprecated ScanTracker option ignored: %T", UnwrapTracker(rt.Active))
	}
	rt2, _ := NewRuntime(Options{HeapWords: 64, OrecCount: 16, MaxThreads: 2})
	if _, ok := UnwrapTracker(rt2.Active).(*SlotTracker); !ok {
		t.Errorf("default tracker should be the slot array: %T", UnwrapTracker(rt2.Active))
	}
	rt3, _ := NewRuntime(Options{HeapWords: 64, OrecCount: 16, MaxThreads: 2, Tracker: TrackerList})
	if _, ok := UnwrapTracker(rt3.Active).(*ListTracker); !ok {
		t.Errorf("TrackerList option ignored: %T", UnwrapTracker(rt3.Active))
	}
	rt4, _ := NewRuntime(Options{HeapWords: 64, OrecCount: 16, MaxThreads: 2, Tracker: TrackerScan})
	if _, ok := UnwrapTracker(rt4.Active).(*ScanTracker); !ok {
		t.Errorf("TrackerScan option ignored: %T", UnwrapTracker(rt4.Active))
	}
}
