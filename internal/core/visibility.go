package core

import (
	"fmt"

	"privstm/internal/failpoint"
	"privstm/internal/orec"
	"privstm/internal/spin"
)

// VisProto selects how partial-visibility metadata is updated.
type VisProto int

const (
	// VisCAS updates the (rts, tid) word with compare-and-swap (§II-E).
	VisCAS VisProto = iota
	// VisStore updates it with the Lamport-style curr_reader store
	// protocol of §III-B, avoiding atomic read-modify-write instructions.
	VisStore
)

// Partial visibility — reader side (§II-B, §II-E, §III-A).
//
// MakeVisible publishes (or confirms) this transaction's interest in orec o.
// The cases:
//
//   - The orec's read timestamp already covers us (rts ≥ our begin time) and
//     either the multi-reader bit is set, or the hint is our own, or the
//     hint's publisher has certainly finished the transaction that published
//     it. Then we skip the update entirely: any writer of o will still fence,
//     because we remain on the central list with begin ≤ rts, and a hint
//     whose publishing transaction has completed can never be claimed by a
//     writer as "only my own read" (see the self-test in
//     ReaderConflictScan, which accepts a hint only if the writer itself
//     published it in its *current* transaction).
//
//   - We are covered but the hint belongs to a possibly-live foreign
//     transaction and the multi bit is clear: we must set the multi bit, or
//     the hint's owner could later write o and treat the hint as covering
//     only itself (§II-E's write-after-read hazard, from the other side).
//
//   - We are not covered: publish (now+G, us) and conservatively carry the
//     multi bit whenever a live transaction may have been covered by the
//     hint we overwrite. This is safe because a temporarily lost or stale
//     hint only matters for transactions still on the central list, and the
//     carried bit makes writers fence for them (§III-B's staleness
//     argument).
func (t *Thread) MakeVisible(o *orec.Orec, useGrace bool, proto VisProto) {
	rt := t.RT
	t.Stats.PVReads++
	mustMulti := false // set after a detected store-protocol race
	probed := false    // hint cache consulted at most once per call
	for {
		v := o.Vis().Load()
		rts, tid, multi := orec.UnpackVis(v)
		covered := rts >= t.BeginTS

		if covered && (multi || (!mustMulti && (tid == t.ID || !rt.ReaderMayBeLive(tid, rts)))) {
			// The common fast path, deliberately ahead of the hint
			// cache: a covered check is one shared load and a branch,
			// cheaper than a cache probe, and most steady-state reads
			// land here.
			t.Stats.PVSkipped++
			return
		}

		// Slow path: a multi-bit CAS or a full publication is coming.
		// If this transaction already established its visibility on o,
		// skip it — within one transaction that decision is stable, and
		// re-running the protocol could only reach another skip
		// (soundness: CORRECTNESS.md §10). The probe pays for itself
		// here because what it elides is an atomic update, not a load.
		if !probed && !rt.NoHintCache {
			probed = true
			if t.visCache.Has(o.Index()) {
				t.Stats.PVSkipped++
				t.Stats.PVCacheHits++
				return
			}
		}

		if covered {
			// Set only the multiple-readers bit.
			nv := v | 1
			if proto == VisCAS {
				if o.Vis().CompareAndSwap(v, nv) {
					t.Stats.PVMultiSets++
					t.cacheVisible(o.Index())
					return
				}
				continue
			}
			if t.visStoreUpdate(o, v, nv) {
				t.Stats.PVMultiSets++
				t.cacheVisible(o.Index())
				return
			}
			mustMulti = true
			continue
		}

		// Full update: rts ← now+G, tid ← us.
		g := uint64(0)
		if useGrace {
			g = o.Grace().Load()
		}
		now := rt.Clock.Now()
		// Carry the multi bit if any live transaction may be covered by
		// the hint we are about to overwrite (its begin would be ≤ rts).
		oldB, anyActive := rt.Active.OldestBegin()
		carry := mustMulti || (anyActive && oldB <= rts)
		nv := orec.PackVis(now+g, t.ID, carry)
		var done bool
		if proto == VisCAS {
			done = o.Vis().CompareAndSwap(v, nv)
		} else {
			done = t.visStoreUpdate(o, v, nv)
		}
		if !done {
			if proto == VisStore {
				mustMulti = true
			}
			continue
		}
		t.Stats.PVUpdates++
		t.VisPub.Add(o, orec.VisRTS(nv))
		t.cacheVisible(o.Index())
		if useGrace {
			t.Stats.GraceRaces += raiseGrace(o, rt.GraceStrategy, rt.MaxGrace)
		}
		return
	}
}

// cacheVisible records in the thread-local hint cache that the running
// transaction has established its visibility on the orec at table index
// key by updating shared state (a multi-bit set or a full publication);
// later MakeVisible calls on the same orec that would otherwise re-enter
// the slow path return without re-running the update protocol. The cache
// is flushed at transaction reset and (conservatively) on snapshot
// extension.
func (t *Thread) cacheVisible(key uint32) {
	if !t.RT.NoHintCache {
		t.visCache.Add(key)
	}
}

// CheckHintCache audits the thread-local hint cache against CORRECTNESS.md
// §10's invariant, for the schedule explorer's oracles: while the caching
// transaction is live, re-running MakeVisible on any cached orec could only
// take another skip. Concretely, every cached index's vis word must (a)
// still cover the transaction (rts ≥ BeginTS — coverage, once observed, is
// irrevocable under a monotonic clock) and (b) not be a foreign
// possibly-live single-reader hint (the multi bit is preserved by every
// update that can overwrite a hint covering a live reader). A violation
// means the cache would elide a *required* shared-state update and a writer
// could skip a fence a live reader depends on.
//
// Call with the thread quiescent — the explorer runs it with every worker
// suspended at a yield point. Threads without a live transaction vacuously
// pass (gate: the published-active bit, cleared by PublishInactive at
// transaction end — NOT t.Visible, which survives until the next Begin's
// ResetTxnState; between those two points the cache is stale but harmless,
// since every hint-cache probe happens inside a live transaction).
func (t *Thread) CheckHintCache() error {
	if t.RT.NoHintCache || !t.Visible {
		return nil
	}
	if _, active := t.Published(); !active {
		return nil
	}
	var err error
	t.visCache.ForEach(func(key uint32) {
		if err != nil {
			return
		}
		o := t.RT.Orecs.At(int(key))
		rts, tid, multi := orec.UnpackVis(o.Vis().Load())
		if rts < t.BeginTS {
			err = fmt.Errorf("hint cache: thread %d caches orec %d but vis rts %d < BeginTS %d (coverage revoked)",
				t.ID, key, rts, t.BeginTS)
			return
		}
		if !multi && tid != t.ID && t.RT.ReaderMayBeLive(tid, rts) {
			err = fmt.Errorf("hint cache: thread %d caches orec %d held by possibly-live foreign reader %d (rts %d, multi clear)",
				t.ID, key, tid, rts)
		}
	})
	return err
}

// visStoreUpdate runs one attempt of the §III-B store-only protocol:
//
//  1. wait for curr_reader to be clear;
//  2. claim it with a plain store of our ID;
//  3. re-check that the vis word still holds the expected value — if not, a
//     concurrent reader raced us: report failure so the caller retries with
//     the multi bit;
//  4. store the new vis value;
//  5. re-check curr_reader — if it no longer holds our ID, a racer
//     overlapped us and our update may be stale: report failure.
//
// All accesses are individual atomic loads and stores (Go atomics are
// sequentially consistent, satisfying the paper's ordering requirement); no
// compare-and-swap is involved, which is the protocol's entire purpose.
func (t *Thread) visStoreUpdate(o *orec.Orec, expected, newv uint64) bool {
	var b spin.Backoff
	for o.CurrReader().Load() != orec.NoReader {
		failpoint.Eval(failpoint.VisStoreWait)
		b.Wait()
	}
	id := t.ID + 1 // offset so thread 0 is distinguishable from NoReader
	o.CurrReader().Store(id)
	if o.Vis().Load() != expected {
		// Raced before our update: withdraw (only if the slot is still
		// ours; overwriting a racer's claim would be repaired by the
		// racer's own step-5 check).
		if o.CurrReader().Load() == id {
			o.CurrReader().Store(orec.NoReader)
		}
		t.Stats.StoreRaces++
		return false
	}
	o.Vis().Store(newv)
	if o.CurrReader().Load() == id {
		o.CurrReader().Store(orec.NoReader)
		return true
	}
	t.Stats.StoreRaces++
	return false
}

// publishedHere reports whether (o, rts) is a hint published by the current
// transaction. The writer-side self-test consults the publication log: a
// hint may be treated as "my own read, no fence needed" only if it was
// published by the writer's current transaction. (Without this, a stale
// hint — whose rts can sit in the future when grace periods are on — could
// be claimed by the publisher's *next* transaction, silently skipping a
// fence another live reader depends on.)
func (t *Thread) publishedHere(o *orec.Orec, rts uint64) bool {
	return t.VisPub.Contains(o, rts)
}

// GraceStrategy selects how per-orec grace periods adapt. §III-A settles
// on exponential increase and decrease after experimenting "with other
// strategies such as linear increase and decrease of grace periods, and
// some hybrids"; all three families are implemented so that the ablation
// benchmarks can reproduce that comparison.
type GraceStrategy int

const (
	// GraceExponential doubles on success, halves on conflict (the
	// paper's choice, and the default).
	GraceExponential GraceStrategy = iota
	// GraceLinear adds/subtracts a fixed step (16 clock ticks).
	GraceLinear
	// GraceHybrid increases linearly but backs off exponentially — the
	// AIMD-style hybrid.
	GraceHybrid
)

// graceLinearStep is the additive step for the linear and hybrid
// strategies.
const graceLinearStep = 16

// graceCASRetries bounds the grace adapters' compare-and-swap loops.
// Adaptation is a heuristic, so abandoning an update after a few lost
// races is harmless — but each *individual* update must be a real
// read-modify-write: the previous plain load-then-store could overwrite a
// concurrent adaptation with a value derived from a stale read, e.g. a
// racing raise and lower could leave the grace period *above* where either
// alone would have put it, and repeated races could walk it arbitrarily
// far from the adaptive equilibrium. Lost attempts (retried or abandoned)
// are counted in stats.GraceRaces so the ablation benchmarks can report
// how often adaptation actually contends.
const graceCASRetries = 4

// raiseGrace grows o's grace period after a successful visibility update,
// per the runtime's strategy, up to maxGrace. It returns the number of
// CAS attempts lost to concurrent adapters (for stats.GraceRaces).
func raiseGrace(o *orec.Orec, strat GraceStrategy, maxGrace uint64) (races uint64) {
	failpoint.Eval(failpoint.GraceRaise)
	for {
		g := o.Grace().Load()
		ng := g
		switch strat {
		case GraceLinear, GraceHybrid:
			ng += graceLinearStep
		default:
			if ng == 0 {
				ng = 1
			} else {
				ng *= 2
			}
		}
		if ng > maxGrace {
			ng = maxGrace
		}
		if ng == g || o.Grace().CompareAndSwap(g, ng) {
			return races
		}
		if races++; races >= graceCASRetries {
			return races
		}
	}
}

// lowerGrace shrinks o's grace period when a writer detects a (possibly
// false-positive) reader conflict through o. Bounded-retry CAS like
// raiseGrace; returns the number of lost attempts.
func lowerGrace(o *orec.Orec, strat GraceStrategy) (races uint64) {
	failpoint.Eval(failpoint.GraceLower)
	for {
		g := o.Grace().Load()
		ng := g
		switch strat {
		case GraceLinear:
			if ng >= graceLinearStep {
				ng -= graceLinearStep
			} else {
				ng = 0
			}
		default:
			ng /= 2
		}
		if ng == g || o.Grace().CompareAndSwap(g, ng) {
			return races
		}
		if races++; races >= graceCASRetries {
			return races
		}
	}
}
