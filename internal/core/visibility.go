package core

import (
	"privstm/internal/orec"
	"privstm/internal/spin"
)

// VisProto selects how partial-visibility metadata is updated.
type VisProto int

const (
	// VisCAS updates the (rts, tid) word with compare-and-swap (§II-E).
	VisCAS VisProto = iota
	// VisStore updates it with the Lamport-style curr_reader store
	// protocol of §III-B, avoiding atomic read-modify-write instructions.
	VisStore
)

// Partial visibility — reader side (§II-B, §II-E, §III-A).
//
// MakeVisible publishes (or confirms) this transaction's interest in orec o.
// The cases:
//
//   - The orec's read timestamp already covers us (rts ≥ our begin time) and
//     either the multi-reader bit is set, or the hint is our own, or the
//     hint's publisher has certainly finished the transaction that published
//     it. Then we skip the update entirely: any writer of o will still fence,
//     because we remain on the central list with begin ≤ rts, and a hint
//     whose publishing transaction has completed can never be claimed by a
//     writer as "only my own read" (see the self-test in
//     ReaderConflictScan, which accepts a hint only if the writer itself
//     published it in its *current* transaction).
//
//   - We are covered but the hint belongs to a possibly-live foreign
//     transaction and the multi bit is clear: we must set the multi bit, or
//     the hint's owner could later write o and treat the hint as covering
//     only itself (§II-E's write-after-read hazard, from the other side).
//
//   - We are not covered: publish (now+G, us) and conservatively carry the
//     multi bit whenever a live transaction may have been covered by the
//     hint we overwrite. This is safe because a temporarily lost or stale
//     hint only matters for transactions still on the central list, and the
//     carried bit makes writers fence for them (§III-B's staleness
//     argument).
func (t *Thread) MakeVisible(o *orec.Orec, useGrace bool, proto VisProto) {
	rt := t.RT
	t.Stats.PVReads++
	mustMulti := false // set after a detected store-protocol race
	for {
		v := o.Vis.Load()
		rts, tid, multi := orec.UnpackVis(v)
		covered := rts >= t.BeginTS

		if covered {
			if multi || (!mustMulti && (tid == t.ID || !rt.ReaderMayBeLive(tid, rts))) {
				t.Stats.PVSkipped++
				return
			}
			// Set only the multiple-readers bit.
			nv := v | 1
			if proto == VisCAS {
				if o.Vis.CompareAndSwap(v, nv) {
					t.Stats.PVMultiSets++
					return
				}
				continue
			}
			if t.visStoreUpdate(o, v, nv) {
				t.Stats.PVMultiSets++
				return
			}
			mustMulti = true
			continue
		}

		// Full update: rts ← now+G, tid ← us.
		g := uint64(0)
		if useGrace {
			g = o.Grace.Load()
		}
		now := rt.Clock.Now()
		// Carry the multi bit if any live transaction may be covered by
		// the hint we are about to overwrite (its begin would be ≤ rts).
		oldB, anyActive := rt.Active.OldestBegin()
		carry := mustMulti || (anyActive && oldB <= rts)
		nv := orec.PackVis(now+g, t.ID, carry)
		var done bool
		if proto == VisCAS {
			done = o.Vis.CompareAndSwap(v, nv)
		} else {
			done = t.visStoreUpdate(o, v, nv)
		}
		if !done {
			if proto == VisStore {
				mustMulti = true
			}
			continue
		}
		t.Stats.PVUpdates++
		t.notePublished(o, orec.VisRTS(nv))
		if useGrace {
			raiseGrace(o, rt.GraceStrategy, rt.MaxGrace)
		}
		return
	}
}

// visStoreUpdate runs one attempt of the §III-B store-only protocol:
//
//  1. wait for curr_reader to be clear;
//  2. claim it with a plain store of our ID;
//  3. re-check that the vis word still holds the expected value — if not, a
//     concurrent reader raced us: report failure so the caller retries with
//     the multi bit;
//  4. store the new vis value;
//  5. re-check curr_reader — if it no longer holds our ID, a racer
//     overlapped us and our update may be stale: report failure.
//
// All accesses are individual atomic loads and stores (Go atomics are
// sequentially consistent, satisfying the paper's ordering requirement); no
// compare-and-swap is involved, which is the protocol's entire purpose.
func (t *Thread) visStoreUpdate(o *orec.Orec, expected, newv uint64) bool {
	var b spin.Backoff
	for o.CurrReader.Load() != orec.NoReader {
		b.Wait()
	}
	id := t.ID + 1 // offset so thread 0 is distinguishable from NoReader
	o.CurrReader.Store(id)
	if o.Vis.Load() != expected {
		// Raced before our update: withdraw (only if the slot is still
		// ours; overwriting a racer's claim would be repaired by the
		// racer's own step-5 check).
		if o.CurrReader.Load() == id {
			o.CurrReader.Store(orec.NoReader)
		}
		t.Stats.StoreRaces++
		return false
	}
	o.Vis.Store(newv)
	if o.CurrReader.Load() == id {
		o.CurrReader.Store(orec.NoReader)
		return true
	}
	t.Stats.StoreRaces++
	return false
}

// notePublished records that this transaction published a hint with the
// given rts on o. The writer-side self-test consults this log: a hint may
// be treated as "my own read, no fence needed" only if it was published by
// the writer's current transaction. (Without this, a stale hint — whose rts
// can sit in the future when grace periods are on — could be claimed by the
// publisher's *next* transaction, silently skipping a fence another live
// reader depends on.)
func (t *Thread) notePublished(o *orec.Orec, rts uint64) {
	if t.VisPub == nil {
		t.VisPub = make(map[*orec.Orec]uint64, 32)
	}
	t.VisPub[o] = rts
}

// publishedHere reports whether (o, rts) is a hint published by the current
// transaction.
func (t *Thread) publishedHere(o *orec.Orec, rts uint64) bool {
	r, ok := t.VisPub[o]
	return ok && r == rts
}

// GraceStrategy selects how per-orec grace periods adapt. §III-A settles
// on exponential increase and decrease after experimenting "with other
// strategies such as linear increase and decrease of grace periods, and
// some hybrids"; all three families are implemented so that the ablation
// benchmarks can reproduce that comparison.
type GraceStrategy int

const (
	// GraceExponential doubles on success, halves on conflict (the
	// paper's choice, and the default).
	GraceExponential GraceStrategy = iota
	// GraceLinear adds/subtracts a fixed step (16 clock ticks).
	GraceLinear
	// GraceHybrid increases linearly but backs off exponentially — the
	// AIMD-style hybrid.
	GraceHybrid
)

// graceLinearStep is the additive step for the linear and hybrid
// strategies.
const graceLinearStep = 16

// raiseGrace grows o's grace period after a successful visibility update,
// per the runtime's strategy, up to cap.
func raiseGrace(o *orec.Orec, strat GraceStrategy, cap uint64) {
	g := o.Grace.Load()
	switch strat {
	case GraceLinear, GraceHybrid:
		g += graceLinearStep
	default:
		if g == 0 {
			g = 1
		} else {
			g *= 2
		}
	}
	if g > cap {
		g = cap
	}
	o.Grace.Store(g)
}

// lowerGrace shrinks o's grace period when a writer detects a (possibly
// false-positive) reader conflict through o.
func lowerGrace(o *orec.Orec, strat GraceStrategy) {
	g := o.Grace.Load()
	switch strat {
	case GraceLinear:
		if g >= graceLinearStep {
			g -= graceLinearStep
		} else {
			g = 0
		}
	default:
		g /= 2
	}
	o.Grace.Store(g)
}
