//go:build !privstm_semlock_race

package core

// semReleaseBump is the amount a stripe's packed word advances when a
// committed writer releases it: +2 keeps the word even (unowned) and bumps
// the version, so every transaction that sampled the stripe before this
// commit fails its validation. The privstm_semlock_race build recreates the
// historical broken release (no bump) for the schedule explorer's positive
// control: with it, `make explore-tds` must FIND a serializability
// violation.
const semReleaseBump = 2
