package core

import (
	"testing"

	"privstm/internal/orec"
)

// staleVis makes o's vis word look like an ancient foreign hint (rts 0),
// so the next MakeVisible by a transaction with BeginTS > 0 takes the
// slow path. This is how re-publication pressure appears in the wild:
// another reader's full update, or §III-B store-protocol staleness,
// leaves a hint that no longer covers us.
func staleVis(o *orec.Orec) { o.Vis().Store(0) }

// TestHintCacheHitSkipsReRuns: once MakeVisible has updated shared state
// for an orec, later reads that would re-enter the slow path (because the
// vis word looks stale) must resolve in the thread-local cache without
// re-running the publication protocol.
func TestHintCacheHitSkipsReRuns(t *testing.T) {
	for _, proto := range []VisProto{VisCAS, VisStore} {
		rt := newTestRT(t, 4)
		rt.Clock.Tick() // BeginTS > 0, so a zeroed vis word is not covering
		th := newActiveThread(t, rt)
		o := rt.Orecs.At(7)

		th.MakeVisible(o, false, proto)
		if th.Stats.PVUpdates != 1 || th.Stats.PVCacheHits != 0 {
			t.Fatalf("proto %v: first read: updates=%d cacheHits=%d",
				proto, th.Stats.PVUpdates, th.Stats.PVCacheHits)
		}
		// An ordinary re-read resolves on the covered fast path, ahead of
		// the cache.
		th.MakeVisible(o, false, proto)
		if th.Stats.PVCacheHits != 0 || th.Stats.PVSkipped != 1 {
			t.Fatalf("proto %v: covered re-read: cacheHits=%d skipped=%d, want 0/1",
				proto, th.Stats.PVCacheHits, th.Stats.PVSkipped)
		}
		// When the vis word goes stale, the cache elides re-publication.
		staleVis(o)
		for i := 0; i < 3; i++ {
			th.MakeVisible(o, false, proto)
		}
		if th.Stats.PVCacheHits != 3 || th.Stats.PVUpdates != 1 {
			t.Errorf("proto %v: stale re-reads: cacheHits=%d updates=%d, want 3/1",
				proto, th.Stats.PVCacheHits, th.Stats.PVUpdates)
		}
		if o.Vis().Load() != 0 {
			t.Errorf("proto %v: cache hit touched the shared vis word", proto)
		}
		// A new transaction must not inherit the cache: the same stale
		// word now forces a real publication.
		finish(rt, th)
		th.ResetTxnState()
		th.StartSnapshot(rt.Active.Enter(th))
		th.Visible = true
		th.PublishActive(th.BeginTS)
		th.MakeVisible(o, false, proto)
		if th.Stats.PVCacheHits != 3 || th.Stats.PVUpdates != 2 {
			t.Errorf("proto %v: cache survived ResetTxnState (hits=%d updates=%d, want 3/2)",
				proto, th.Stats.PVCacheHits, th.Stats.PVUpdates)
		}
		finish(rt, th)
	}
}

// TestHintCacheDisabled: the DisableHintCache ablation must force every
// slow-path MakeVisible through the full protocol.
func TestHintCacheDisabled(t *testing.T) {
	rt, err := NewRuntime(Options{
		HeapWords: 1 << 12, OrecCount: 1 << 8, MaxThreads: 4,
		DisableHintCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Clock.Tick()
	th := newActiveThread(t, rt)
	o := rt.Orecs.At(7)
	th.MakeVisible(o, false, VisCAS)
	for i := 0; i < 3; i++ {
		staleVis(o)
		th.MakeVisible(o, false, VisCAS)
	}
	if th.Stats.PVCacheHits != 0 {
		t.Errorf("cache hits with DisableHintCache: %d", th.Stats.PVCacheHits)
	}
	// Every stale re-read had to republish.
	if th.Stats.PVUpdates != 4 {
		t.Errorf("updates = %d, want 4", th.Stats.PVUpdates)
	}
	finish(rt, th)
}

// TestTryExtendFlushesHintCache: a successful snapshot extension must flush
// the hint cache (CORRECTNESS.md §10 keeps the cache's argument scoped to
// one validity interval), so the next slow-path read goes back through the
// full protocol before the cache re-arms.
func TestTryExtendFlushesHintCache(t *testing.T) {
	rt := newTestRT(t, 4)
	rt.Clock.Tick()
	th := newActiveThread(t, rt)
	th.ExtendOK = true
	o := rt.Orecs.At(7)

	th.MakeVisible(o, false, VisCAS) // publish, arm the cache
	staleVis(o)
	th.MakeVisible(o, false, VisCAS)
	if th.Stats.PVCacheHits != 1 || th.Stats.PVUpdates != 1 {
		t.Fatalf("pre-extension: cacheHits=%d updates=%d, want 1/1",
			th.Stats.PVCacheHits, th.Stats.PVUpdates)
	}

	rt.Clock.Tick() // something committed: extension has work to do
	if !th.TryExtend() {
		t.Fatal("TryExtend failed on an empty read set")
	}

	// The stale re-read after the extension must miss the cache and
	// republish...
	th.MakeVisible(o, false, VisCAS)
	if th.Stats.PVCacheHits != 1 || th.Stats.PVUpdates != 2 {
		t.Errorf("post-extension: cacheHits=%d updates=%d, want 1/2 (cache must be flushed)",
			th.Stats.PVCacheHits, th.Stats.PVUpdates)
	}
	// ...and re-arm the cache for subsequent stale re-reads.
	staleVis(o)
	th.MakeVisible(o, false, VisCAS)
	if th.Stats.PVCacheHits != 2 {
		t.Errorf("cacheHits = %d on the re-armed re-read, want 2", th.Stats.PVCacheHits)
	}
	finish(rt, th)
}

// TestPollValidateExtensionFlushesHintCache is the PollValidate twin of
// TestTryExtendFlushesHintCache.
func TestPollValidateExtensionFlushesHintCache(t *testing.T) {
	rt := newTestRT(t, 4)
	rt.Clock.Tick()
	th := newActiveThread(t, rt)
	th.ExtendOK = true
	o := rt.Orecs.At(7)

	th.MakeVisible(o, false, VisCAS)
	staleVis(o)
	th.MakeVisible(o, false, VisCAS)
	if th.Stats.PVCacheHits != 1 {
		t.Fatalf("cacheHits = %d, want 1", th.Stats.PVCacheHits)
	}
	rt.Clock.Tick()
	th.PollValidate() // extends: must flush the cache
	th.MakeVisible(o, false, VisCAS)
	if th.Stats.PVCacheHits != 1 || th.Stats.PVUpdates != 2 {
		t.Errorf("after PollValidate extension: cacheHits=%d updates=%d, want 1/2",
			th.Stats.PVCacheHits, th.Stats.PVUpdates)
	}
	finish(rt, th)
}

// TestMakeVisibleAllocFree pins the whole reader-side visibility path at
// zero heap allocations in steady state, for both protocols and all three
// hot cases: the covered re-read, the cache-elided stale re-read, and the
// full publication.
func TestMakeVisibleAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name  string
		proto VisProto
	}{{"CAS", VisCAS}, {"Store", VisStore}} {
		t.Run(tc.name, func(t *testing.T) {
			rt := newTestRT(t, 4)
			rt.Clock.Tick()
			th := newActiveThread(t, rt)
			o := rt.Orecs.At(7)

			th.MakeVisible(o, false, tc.proto) // warm up caches and logs
			if n := testing.AllocsPerRun(200, func() {
				th.MakeVisible(o, false, tc.proto)
			}); n != 0 {
				t.Errorf("covered MakeVisible allocates %.1f per call", n)
			}

			staleVis(o)
			if n := testing.AllocsPerRun(200, func() {
				th.MakeVisible(o, false, tc.proto)
			}); n != 0 {
				t.Errorf("cache-elided MakeVisible allocates %.1f per call", n)
			}

			// Publication path: reset per run so neither the hint cache
			// nor the covered test can short-circuit the full update.
			if n := testing.AllocsPerRun(200, func() {
				staleVis(o)
				th.ResetTxnState()
				th.StartSnapshot(th.BeginTS)
				th.MakeVisible(o, false, tc.proto)
			}); n != 0 {
				t.Errorf("publishing MakeVisible allocates %.1f per call", n)
			}
			finish(rt, th)
		})
	}
}

// TestHintCacheEquivalence is the soundness property test for the cache
// elision: under an identical deterministic interleaving of three readers
// and one committing writer on a single orec, a runtime with the hint cache
// and a runtime without it must produce identical writer-side outcomes —
// the same (conflict, threshold) from every ReaderConflictScan — and end
// every step with the same shared vis word. The cache may only elide
// updates whose re-execution would have been skips (CORRECTNESS.md §10);
// if it ever elided a *required* multi-bit set or publication, some writer
// scan below would diverge from the uncached run.
func TestHintCacheEquivalence(t *testing.T) {
	const steps = 4000
	type outcome struct {
		threshold uint64
		conflict  bool
		vis       uint64
	}
	for _, tc := range []struct {
		name  string
		proto VisProto
	}{{"CAS", VisCAS}, {"Store", VisStore}} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(disable bool) []outcome {
				rt, err := NewRuntime(Options{
					HeapWords: 1 << 8, OrecCount: 1 << 4, MaxThreads: 8,
					DisableHintCache: disable,
				})
				if err != nil {
					t.Fatal(err)
				}
				o := rt.Orecs.At(3)
				readers := make([]*Thread, 3)
				live := make([]bool, 3)
				for i := range readers {
					th, err := rt.NewThread()
					if err != nil {
						t.Fatal(err)
					}
					readers[i] = th
				}
				writer, err := rt.NewThread()
				if err != nil {
					t.Fatal(err)
				}
				var out []outcome
				seed := uint64(0x9e3779b97f4a7c15)
				for s := 0; s < steps; s++ {
					seed = seed*6364136223846793005 + 1442695040888963407
					r := seed >> 33
					switch r % 5 {
					case 0, 1: // reader visibility action
						i := int(r / 5 % 3)
						th := readers[i]
						if !live[i] {
							th.ResetTxnState()
							th.StartSnapshot(rt.Active.Enter(th))
							th.Visible = true
							th.PublishActive(th.BeginTS)
							live[i] = true
						}
						th.MakeVisible(o, true, tc.proto)
					case 2: // reader completes
						i := int(r / 5 % 3)
						if live[i] {
							rt.Active.Leave(readers[i])
							readers[i].PublishInactive()
							live[i] = false
						}
					default: // writer: acquire, scan, commit
						w := writer
						w.ResetTxnState()
						w.StartSnapshot(rt.Active.Enter(w))
						w.Visible = true
						w.PublishActive(w.BeginTS)
						if !w.AcquireOrec(o) {
							t.Fatalf("step %d: writer failed to acquire an unowned orec", s)
						}
						threshold, conflict := w.ReaderConflictScan(true)
						wts := rt.Clock.Tick()
						w.Acq.ReleaseAll(wts)
						rt.Active.Leave(w)
						w.PublishInactive()
						out = append(out, outcome{threshold, conflict, o.Vis().Load()})
					}
				}
				return out
			}
			cached, uncached := run(false), run(true)
			if len(cached) != len(uncached) {
				t.Fatalf("step counts diverged: %d vs %d", len(cached), len(uncached))
			}
			for i := range cached {
				if cached[i] != uncached[i] {
					t.Fatalf("writer scan %d diverged: cached=%+v uncached=%+v",
						i, cached[i], uncached[i])
				}
			}
		})
	}
}

// TestHintCacheSharedStateUntouched: a cache hit must not modify any orec
// word — vis, grace, or curr_reader.
func TestHintCacheSharedStateUntouched(t *testing.T) {
	rt := newTestRT(t, 4)
	rt.Clock.Tick()
	th := newActiveThread(t, rt)
	o := rt.Orecs.At(7)
	th.MakeVisible(o, true, VisStore)
	staleVis(o)
	vis, grace, curr := o.Vis().Load(), o.Grace().Load(), o.CurrReader().Load()
	for i := 0; i < 5; i++ {
		th.MakeVisible(o, true, VisStore)
	}
	if o.Vis().Load() != vis || o.Grace().Load() != grace || o.CurrReader().Load() != curr {
		t.Error("cache hits modified shared orec state")
	}
	if th.Stats.PVCacheHits != 5 {
		t.Errorf("cacheHits = %d, want 5", th.Stats.PVCacheHits)
	}
	finish(rt, th)
}
