package core

import "testing"

func TestGraceStrategies(t *testing.T) {
	cases := []struct {
		strat      GraceStrategy
		upSteps    []uint64 // expected values after successive raises from 0
		downFrom   uint64
		downResult uint64
	}{
		{GraceExponential, []uint64{1, 2, 4, 8, 16}, 16, 8},
		{GraceLinear, []uint64{16, 32, 48, 64, 80}, 16, 0},
		{GraceHybrid, []uint64{16, 32, 48, 64, 80}, 16, 8},
	}
	for _, c := range cases {
		rt := newTestRT(t, 2)
		o := rt.Orecs.At(0)
		for i, want := range c.upSteps {
			raiseGrace(o, c.strat, DefaultMaxGrace)
			if got := o.Grace().Load(); got != want {
				t.Errorf("strategy %v raise %d: grace = %d, want %d", c.strat, i, got, want)
			}
		}
		o.Grace().Store(c.downFrom)
		lowerGrace(o, c.strat)
		if got := o.Grace().Load(); got != c.downResult {
			t.Errorf("strategy %v lower from %d: grace = %d, want %d", c.strat, c.downFrom, got, c.downResult)
		}
	}
}

func TestGraceStrategyCap(t *testing.T) {
	for _, strat := range []GraceStrategy{GraceExponential, GraceLinear, GraceHybrid} {
		rt := newTestRT(t, 2)
		o := rt.Orecs.At(0)
		for i := 0; i < 100; i++ {
			raiseGrace(o, strat, 64)
		}
		if got := o.Grace().Load(); got != 64 {
			t.Errorf("strategy %v: grace = %d, want cap 64", strat, got)
		}
	}
}

func TestGraceLinearFloor(t *testing.T) {
	rt := newTestRT(t, 2)
	o := rt.Orecs.At(0)
	o.Grace().Store(5) // below one linear step
	lowerGrace(o, GraceLinear)
	if got := o.Grace().Load(); got != 0 {
		t.Errorf("grace = %d, want floor 0", got)
	}
}
