package core

import (
	"fmt"
	"sync/atomic"

	"privstm/internal/clock"
	"privstm/internal/heap"
	"privstm/internal/logs"
	"privstm/internal/orec"
	"privstm/internal/reclaim"
	"privstm/internal/stats"
	"privstm/internal/txnlist"
)

// Thread is a per-worker transaction descriptor. One Thread supports one
// transaction at a time; engines store all per-transaction state here so
// that steady-state transactions allocate nothing.
type Thread struct {
	RT *Runtime
	ID uint64

	// Rl is this thread's owner-only reclamation front (cached from
	// RT.Reclaim at registration): Retire/AllocReused run once per node in
	// allocation-heavy workloads, so their fast paths must be direct
	// inlinable calls.
	Rl *reclaim.Local

	// Node is this thread's statically allocated entry in the central
	// transaction list (§II-C).
	Node txnlist.Node

	// BeginTS is the global-clock value recorded at transaction begin. It
	// anchors everything the privatization proofs reason about: central-
	// list registration, visibility-hint coverage, and fence thresholds.
	BeginTS uint64
	// ValidTS is the top of the transaction's validity interval (snapshot
	// extension): every logged read is known consistent with a snapshot at
	// this clock time, so reads accept data with wts ≤ ValidTS. It starts
	// at BeginTS and advances only through a successful full read-set
	// validation (TryExtend/PollValidate) on engines that set ExtendOK.
	ValidTS uint64
	// ExtendOK is set by the redo-log engines (Ord, Val, TL2, pvrHybrid)
	// whose snapshots may be extended; the in-place PVR engines keep
	// ValidTS pinned to BeginTS so the §II fence arguments are untouched.
	ExtendOK bool

	Reads logs.ReadSet
	Undo  logs.Undo
	Redo  logs.Redo
	Acq   logs.Acquired
	// Sem is the semantic-layer log (sem.go): abstract-lock stripes sampled
	// and to acquire, plus commuting counter deltas. Empty — and free — for
	// plain word-level transactions.
	Sem logs.SemLog

	// Clk is the thread-local clock of ClockLocal mode: the high-water
	// mark of this thread's own write timestamps, merged with the global
	// clock at commit time (CommitTS). Unused in the other modes.
	Clk clock.ThreadClock

	Stats stats.Counters

	// Wrote is set on the first transactional write.
	Wrote bool
	// Visible is set while the transaction's reads are partially visible
	// (it is on the central list).
	Visible bool
	// LastClockSeen is the commit signal (CommitSignal: the clock under
	// GV1, clock + ordered-commit counts under the deferred modes) as of
	// the last incremental validation (redo-log engines' doomed-
	// transaction polling).
	LastClockSeen uint64
	// BeginSignal is the commit signal sampled at transaction begin; the
	// hybrid's mode-switch rule compares against it to ask "has any writer
	// committed since I began?" (under GV1 it equals BeginTS).
	BeginSignal uint64
	// Attempts counts consecutive aborts of the current Run, for
	// contention-management backoff.
	Attempts int
	// EpochPinned is set when an invisible transaction registered itself on
	// the active tracker solely to block epoch reclamation under its weak
	// reads (ReadWeak); PublishInactive releases the pin. A transaction that
	// later turns Visible (hybrid/writerOnly mode switches) inherits the
	// tracker entry instead of re-entering.
	EpochPinned bool
	// TxnAllocs are extents allocated by MustAllocTxn across the attempts of
	// the current Run: entries below txnAllocCur are consumed by the current
	// attempt, the rest are leftovers from aborted attempts awaiting reuse
	// (FinishCommit retires whatever a committed attempt did not consume).
	TxnAllocs   []TxnExtent
	txnAllocCur int
	// commitRetires is the RetireOnCommit schedule: extents the current
	// attempt unlinked, retired by FinishCommit iff the attempt commits.
	commitRetires []TxnExtent
	// LastCommitTS is the write timestamp of this thread's most recent
	// writer commit (recorded by CommitTS). Under the deferred clock modes
	// a commit does not advance the global clock, so Clock.Now() sampled
	// after the commit can lag the commit timestamp; RetireStamp takes the
	// max of the two so retire stamps never undershoot the unlinking
	// commit (CORRECTNESS.md §14).
	LastCommitTS uint64
	// VisPub logs the (orec, rts) hints this transaction published; the
	// writer-side self-test (ReaderConflictScan) only treats a hint as the
	// writer's own if it appears here. Open-addressed and epoch-reset
	// (logs.PubLog), so steady-state publication is alloc-free.
	VisPub logs.PubLog
	// visCache is the thread-local orec hint cache: the table indices of
	// orecs on which the running transaction has already established its
	// visibility. A hit lets MakeVisible return without loading the shared
	// vis word (soundness: CORRECTNESS.md §10). Flushed per transaction
	// and — conservatively — whenever the snapshot is extended.
	visCache logs.KeySet

	// cm is the configured contention-management policy (cm.go), consulted
	// by Run between attempts.
	cm contentionManager

	// pub publishes (beginTS<<1 | active) for other threads: the liveness
	// checks in the visibility protocol (§II-E) and the validation fence
	// read it.
	pub atomic.Uint64
	// pubSeq counts PublishActive calls. The stall watchdog uses it to
	// distinguish successive transactions that begin at the same clock
	// value (the clock only ticks on writer commits), so a thread that
	// completes and restarts counts as progress even when its new begin
	// timestamp is unchanged.
	pubSeq atomic.Uint64
	// lastValidated publishes the clock time of this thread's most recent
	// successful full read-set validation, for the Val engine's fence.
	lastValidated atomic.Uint64
	// trackerTS is the ScanTracker's registration slot:
	// beginTS<<1 | active.
	trackerTS atomic.Uint64

	// padding to keep descriptors from false-sharing in the registry.
	_ [8]uint64
}

// PublishActive announces that this thread runs a transaction that began at
// ts.
func (t *Thread) PublishActive(ts uint64) {
	t.pubSeq.Add(1)
	t.pub.Store(ts<<1 | 1)
}

// BeginSeq returns the publication sequence number: it changes between any
// two distinct transactions of this thread, even ones sharing a begin
// timestamp. The stall watchdog keys blocker identity on it.
func (t *Thread) BeginSeq() uint64 { return t.pubSeq.Load() }

// PublishInactive announces that this thread has no live transaction. It is
// the universal transaction-end path (every engine's commit and abort
// protocol runs it), so it also releases the weak-read epoch pin: a pinned
// transaction leaves the active tracker here, unblocking reclamation.
func (t *Thread) PublishInactive() {
	if t.EpochPinned {
		t.RT.Active.Leave(t)
		t.EpochPinned = false
	}
	t.pub.Store(0)
}

// Published returns the announced state: begin timestamp and liveness.
func (t *Thread) Published() (beginTS uint64, active bool) {
	v := t.pub.Load()
	return v >> 1, v&1 == 1
}

// SetValidated publishes a successful validation at clock time ts.
func (t *Thread) SetValidated(ts uint64) { t.lastValidated.Store(ts) }

// ValidatedAt returns the clock time of the last published validation.
func (t *Thread) ValidatedAt() uint64 { return t.lastValidated.Load() }

// ResetTxnState clears per-transaction logs and flags. Engines call it from
// Begin.
func (t *Thread) ResetTxnState() {
	t.Reads.Reset()
	t.Undo.Reset()
	t.Redo.Reset()
	t.Acq.Reset()
	t.Wrote = false
	t.Visible = false
	t.ExtendOK = false
	t.VisPub.Reset()
	t.visCache.Reset()
	t.Sem.Reset()
	t.txnAllocCur = 0 // leftovers from an aborted attempt are re-handed out
	t.commitRetires = t.commitRetires[:0]
}

// StartSnapshot records ts as the transaction's begin time and initializes
// the validity interval to the degenerate [ts, ts]. Engines call it from
// Begin after sampling the clock (or entering the tracker). ts must be a
// *global*-clock sample even in ClockLocal mode: seeding the validity bound
// from the thread-local clock would let validation accept a later rival's
// same-or-lower-timestamped writes (CORRECTNESS.md §13).
func (t *Thread) StartSnapshot(ts uint64) {
	t.BeginTS = ts
	t.ValidTS = ts
	t.LastClockSeen = ts
	t.BeginSignal = ts
	if t.RT.ClockMode != clock.GV1 {
		sig := t.RT.CommitSignal()
		t.LastClockSeen = sig
		t.BeginSignal = sig
	}
}

// ReaderMayBeLive reports whether the transaction that published a read at
// timestamp rts under thread id tid may still be incomplete. A reader's
// published rts is always ≥ its begin timestamp, so if thread tid is
// currently inactive, or its live transaction began after rts, the reader
// that wrote the hint has certainly finished (§II-E's liveness test).
func (rt *Runtime) ReaderMayBeLive(tid, rts uint64) bool {
	u := rt.ThreadByID(tid)
	if u == nil {
		return false // hint from an unregistered id: treat as dead
	}
	begin, active := u.Published()
	return active && begin <= rts
}

// CheckConsistent implements the per-read timestamp test of §II-A: the orec
// must be unowned (or owned by the reader itself) and must not have been
// modified after the snapshot's validity bound. It returns the orec's
// current write timestamp, and false if the transaction must abort.
func (t *Thread) CheckConsistent(o *orec.Orec) (wts uint64, ok bool) {
	v := o.Owner().Load()
	if orec.IsOwned(v) {
		if orec.OwnerTID(v) == t.ID {
			return 0, true // my own in-place write; undo log has the pre-image
		}
		return 0, false // defer to the prior concurrent writer: abort
	}
	wts = orec.WTS(v)
	return wts, wts <= t.ValidTS
}

// ValidateReads re-runs the consistency test over the whole read set: each
// logged orec must be unowned (or owned by this transaction) and must
// still carry the write timestamp observed at read time. Per-orec
// unowned timestamps are monotonic (commits tick the clock; aborts restore
// the pre-acquisition value), so "wts ≤ logged" is exactly "unchanged
// since my read", which stays sound after the snapshot has been extended
// past BeginTS. It is the commit-time validation of the redo/undo engines
// and the body of the incremental validation used by the §IV systems.
func (t *Thread) ValidateReads() bool {
	n := t.Reads.Len()
	for i := 0; i < n; i++ {
		e := t.Reads.At(i)
		v := e.Orec.Owner().Load()
		if orec.IsOwned(v) {
			if orec.OwnerTID(v) != t.ID {
				return false
			}
			continue
		}
		if orec.WTS(v) > e.WTS {
			return false
		}
	}
	return true
}

// ValidateBeforeUse is the sandbox checkpoint of the Machens
// validate-before-dangerous-operation discipline (PAPERS.md, "Sandboxing
// for Software Transactional Memory with Deferred Updates"): call it
// immediately before an operation whose *inputs* derive from
// transactionally-read data and whose failure mode is worse than a wrong
// value — a division whose divisor could be a torn zero, an indirect load
// through a txn-read pointer that could now be reclaimed or poisoned. A
// doomed transaction fails the validation and aborts (retries) here,
// before the dangerous operation executes; a consistent transaction pays
// one O(R) read-set pass and proceeds.
//
// The full ValidateReads pass is required — a cheap commit-signal "has any
// writer committed?" test is NOT a sound substitute for the in-place
// (undo-log) engines, whose rivals invalidate a read set by acquiring
// orecs and writing in place without moving the clock or the ordering
// counters. The disabled path (Runtime.NoSandboxChecks, the
// Config.DisableSandboxChecks ablation) is one field load and performs no
// allocation (pinned by TestSandboxDisabledAllocates0).
func (t *Thread) ValidateBeforeUse() {
	if t.RT.NoSandboxChecks {
		return
	}
	t.Stats.SandboxValidations++
	if !t.ValidateReads() {
		t.ConflictAbort()
	}
}

// CheckAddr sandbox-checks a heap address that is about to be
// dereferenced. In-range addresses pass with one comparison. An
// out-of-range address means the value it was computed from was torn: the
// transaction validates, so a doomed attempt aborts and retries before any
// wild access, while a consistent transaction — whose address really is
// garbage, an application bug — propagates a descriptive panic (core.Run's
// sandbox re-validates and lets it through).
func (t *Thread) CheckAddr(a heap.Addr) {
	if t.RT.Heap.Contains(a) {
		return
	}
	t.ValidateBeforeUse()
	panic(fmt.Sprintf("stm: wild heap address %d (heap cap %d words) in a consistent transaction", a, t.RT.Heap.Size()))
}

// RetireStamp returns the timestamp to stamp a retired extent with: no
// lower than this thread's latest commit. The unlink that freed the extent
// committed at LastCommitTS; any transaction beginning at or after the
// stamp therefore observes the unlink, which is exactly what the
// reclaimer's epoch check needs (internal/reclaim, CORRECTNESS.md §14).
// Clock.Now() alone would be unsound under the deferred clock modes, where
// the clock can lag the commit timestamp.
func (t *Thread) RetireStamp() uint64 {
	s := t.RT.Clock.Now()
	if t.LastCommitTS > s {
		s = t.LastCommitTS
	}
	return s
}

// Retire hands the n-word extent at a to the runtime's epoch-based
// reclaimer, stamped with RetireStamp. Call it only after the transaction
// that unlinked the extent has committed (outside any Atomic body). The
// extent rides this thread's owner-only front (reclaim.RetireLocal) — a
// plain append on the fast path, publishing to the shared limbo shard in
// batches — so FlushReclaim must run before cross-thread accounting
// (Drain/Stats) can see the most recent retires.
func (t *Thread) Retire(a heap.Addr, n int) {
	t.Rl.Retire(a, n, t.RetireStamp())
}

// AllocReused returns an n-word extent recycled through the reclaimer's
// epoch, if one is available to this thread; words are NOT zeroed (the
// caller initializes the node before publishing it, as with malloc).
// Returns false when the caller should allocate from the heap instead.
func (t *Thread) AllocReused(n int) (heap.Addr, bool) {
	return t.Rl.Alloc(n)
}

// FlushReclaim publishes this thread's buffered retires and prefetched free
// extents to its reclaim shard. Call when the thread finishes working (or
// from a point that provably happens after it stopped).
func (t *Thread) FlushReclaim() {
	t.Rl.Flush()
}

// TryExtend attempts a snapshot extension (the classic timestamp-extension
// move of lazy-snapshot STMs): sample the clock, revalidate the whole read
// set, and on success raise ValidTS to the sampled time. Ordering matters —
// the clock is sampled first, so any commit the validation could have
// missed carries a write timestamp greater than the new bound. Returns
// false (leaving the snapshot untouched) if the engine opted out, nothing
// has committed since the current bound, or validation fails.
func (t *Thread) TryExtend() bool {
	if !t.ExtendOK || t.RT.NoExtension {
		return false
	}
	c := t.RT.Clock.Now()
	if c == t.ValidTS {
		return false
	}
	// Sample the commit signal before validating, like the clock: a commit
	// the validation could have missed then still re-fires the next poll.
	sig := t.RT.CommitSignal()
	t.Stats.Validations++
	if !t.ValidateReads() {
		return false
	}
	t.ValidTS = c
	t.LastClockSeen = sig
	t.Stats.Extensions++
	// Flush the hint cache across the extension. Coverage decisions key
	// off BeginTS, which extension does not move, so this is purely
	// conservative — but it keeps the cache's lifetime argument local to
	// "one validity interval" (CORRECTNESS.md §10) and costs O(1).
	t.visCache.Reset()
	t.SetValidated(c)
	return true
}

// PollValidate is the incremental-validation hook of the redo-log engines
// (Ord, Val, pvrHybrid): whenever the global clock has moved since the last
// check — some writer committed — the full read set is revalidated before
// the transaction consumes any further values. This is the Microsoft
// system's incremental validation / RingSTM's commit-counter polling, and
// it is what catches doomed transactions before they act on state mutated
// nontransactionally by a privatizer (§IV).
//
// With snapshot extension enabled the successful validation doubles as a
// timestamp extension: one O(R) pass per observed clock value both proves
// the transaction is not doomed and moves its validity bound forward, so a
// transaction whose read set is untouched stops aborting on (and stops
// revalidating for) commits that do not conflict with it.
func (t *Thread) PollValidate() {
	// The trigger is the commit signal, not the bare clock: under the
	// deferred clock modes writer commits move the ordering locks' served
	// counters but not the clock, and the doomed-transaction protection
	// must keep firing at GV1's cadence (clockpath.go).
	c := t.RT.Clock.Now()
	sig := c
	if t.RT.ClockMode != clock.GV1 {
		sig = t.RT.CommitSignal()
	}
	if sig == t.LastClockSeen {
		return
	}
	t.Stats.Validations++
	if !t.ValidateReads() {
		t.ConflictAbort()
	}
	t.LastClockSeen = sig
	if t.ExtendOK && !t.RT.NoExtension && c > t.ValidTS {
		t.ValidTS = c
		t.Stats.Extensions++
		t.visCache.Reset() // conservative, as in TryExtend
	}
	t.SetValidated(c)
}

// ReadHeapConsistent performs the full consistent-read dance against
// location a: pre-check the orec, load the word, post-check that the orec
// did not change in the interim (the standard race guard for in-place
// writers), and log the read. Engines layer visibility and redo-lookup
// around it. A word newer than the validity bound triggers a snapshot
// extension attempt instead of an unconditional abort.
func (t *Thread) ReadHeapConsistent(a heap.Addr) heap.Word {
	// Sandbox bounds guard: an address computed from torn reads aborts the
	// doomed attempt here instead of faulting into Run's recover.
	t.CheckAddr(a)
	o := t.RT.Orecs.For(a)
	//stmlint:ignore yieldsite obstruction-free double-check: the loop repeats only when a rival changed the orec (then we abort or extend) — it retries on interference, not on stillness, so it cannot spin while the world is idle
	for {
		v1 := o.Owner().Load()
		if orec.IsOwned(v1) {
			if orec.OwnerTID(v1) == t.ID {
				// Reading my own in-place write.
				t.Reads.Add(o, a, t.BeginTS)
				return t.RT.Heap.AtomicLoad(a)
			}
			t.ConflictAbort()
		}
		wts := orec.WTS(v1)
		if wts > t.ValidTS {
			// Deferred modes: publish the future timestamp first, so the
			// extension below can reach it — and so that, if we abort
			// instead, the retry's begin snapshot covers the commit.
			t.NoteFutureWTS(wts)
			if !t.TryExtend() {
				t.ConflictAbort()
			}
			continue // bound raised; re-examine the orec
		}
		w := t.RT.Heap.AtomicLoad(a)
		if o.Owner().Load() == v1 {
			t.Reads.Add(o, a, wts)
			return w
		}
		// The orec changed under us; retry the read.
	}
}
