package core

import (
	"privstm/internal/failpoint"
	"privstm/internal/orec"
	"privstm/internal/spin"
)

// ReaderConflictScan is the writer-side half of partial visibility
// (§II-C, §II-E). For every orec the committing writer owns, it inspects
// the (rts, tid, multi) hint and decides whether a concurrent reader may
// have read the block:
//
//   - A hint is ignored if it is "self only": published by this very
//     transaction (tid matches and the rts is in our per-transaction
//     publication log) with the multiple-readers bit clear. This implements
//     §II-E's write-after-read exemption without the stale-hint hazard.
//
//   - Otherwise the hint signals a conflict iff a transaction that could
//     have published or been covered by it — begin ≤ rts — may still be
//     incomplete, i.e. iff rts ≥ the begin time of the oldest *other*
//     incomplete transaction on the central list.
//
// It returns the fence threshold t = max(conflicting rts) and whether any
// conflict was found. When adaptGrace is set, each conflicting orec's grace
// period is halved (§III-A's exponential decrease).
func (t *Thread) ReaderConflictScan(adaptGrace bool) (threshold uint64, conflict bool) {
	oldestOther, anyOther := t.RT.Active.OldestOtherBegin(t)
	if !anyOther {
		return 0, false
	}
	n := t.Acq.Len()
	for i := 0; i < n; i++ {
		o := t.Acq.At(i).Orec
		rts, tid, multi := orec.UnpackVis(o.Vis().Load())
		if tid == t.ID && !multi && t.publishedHere(o, rts) {
			continue // our own read, and provably nobody else's
		}
		if rts < oldestOther {
			continue // every covered reader has completed
		}
		conflict = true
		if rts > threshold {
			threshold = rts
		}
		if adaptGrace {
			t.Stats.GraceRaces += lowerGrace(o, t.RT.GraceStrategy)
		}
	}
	return threshold, conflict
}

// PrivatizationFence blocks the committing writer until every transaction
// that may have read its write set has completed — concretely, until the
// oldest incomplete transaction on the central list began after the fence
// threshold (§II-D). The caller must have removed itself from the list
// first. With grace periods the threshold can lie beyond the commit time,
// reproducing the paper's "extended delays" downside.
// The fence never breaks out on a stall — that would be unsound — but a
// progress watchdog (watchdog.go) counts and reports blockers that stop
// moving, so a stalled or dead reader turns into a diagnosed event rather
// than a silent hang.
func (t *Thread) PrivatizationFence(threshold uint64) {
	t.Stats.Fenced++
	// Under the deferred clock modes the threshold can sit above the global
	// clock (a commit-capped threshold is a deferred wts). Publish it before
	// waiting: otherwise a steady stream of readers beginning at the stale
	// global time could hold the fence open forever, since no new begin
	// could ever exceed the threshold.
	t.NoteFutureWTS(threshold)
	failpoint.Eval(failpoint.FenceEnter)
	defer failpoint.Eval(failpoint.FenceExit)
	var b spin.Backoff
	var w stallWatch
	for {
		oldest, any := t.RT.Active.OldestBegin()
		if !any || oldest > threshold {
			return
		}
		failpoint.Eval(failpoint.FencePrivWait)
		if t.RT.stallLimit() > 0 {
			// The tracker watermark names a timestamp, not a thread; map it
			// back through the registry for the stall report (best effort).
			id, seq := t.RT.blockerFor(oldest)
			w.observe(t, FencePrivatization, id, seq, oldest, threshold, &b)
		}
		t.Stats.FenceSpins++
		b.Wait()
	}
}

// ValidationFence is the every-transaction fence of the Val system
// (TR-915, compared in §V): after its write-back completes at commit time
// wts, the writer waits until every other registered thread has reached a
// clean point with respect to that commit — it has no live transaction, or
// its transaction began after wts, or it has published a successful full
// read-set validation at time ≥ wts (at which point it either noticed the
// conflict and died, or provably does not overlap the writer).
// Like the privatization fence it carries a stall watchdog: per blocking
// thread, keyed on that thread's publication sequence so a same-timestamp
// restart counts as progress.
func (t *Thread) ValidationFence(wts uint64) {
	t.Stats.Fenced++
	// Deferred clock modes: raise the global clock to the commit time
	// before waiting. Concurrent readers' incremental polls fire on the
	// movement and publish validations at ≥ wts (or die trying), which is
	// the very condition this fence waits for — without the advance their
	// polls would never trigger and the fence would spin until each
	// reader's transaction ended.
	t.NoteFutureWTS(wts)
	failpoint.Eval(failpoint.FenceEnter)
	defer failpoint.Eval(failpoint.FenceExit)
	var b spin.Backoff
	t.RT.ForEachThread(func(u *Thread) {
		if u == t {
			return
		}
		b.Reset()
		b.ResetSleepCap() // clear any stall cap left by the previous thread's loop
		var w stallWatch
		for {
			begin, active := u.Published()
			if !active || begin >= wts || u.ValidatedAt() >= wts {
				return
			}
			failpoint.Eval(failpoint.FenceValWait)
			w.observe(t, FenceValidation, int64(u.ID), u.BeginSeq(), begin, wts, &b)
			t.Stats.FenceSpins++
			b.Wait()
		}
	})
}
