// watchdog.go is the fence stall watchdog: a progress-based detector that
// fires when the transaction blocking a fence has made no observable
// progress for StallThreshold backoff rounds. Detection is diagnostic only
// — the fence keeps waiting (breaking out would be unsound; see
// CORRECTNESS.md §9) — but it turns a silent livelock into a counted,
// reported event, and drops the wait loop's sleep cap so subsequent checks
// run at diagnostic frequency.
package core

import (
	"log"
	"time"

	"privstm/internal/spin"
)

// DefaultStallThreshold is the number of no-progress backoff rounds before
// the watchdog fires (Options.StallThreshold = 0). At the default backoff
// schedule this corresponds to tens of milliseconds of wall-clock wait —
// far beyond any healthy fence dwell, but fast enough for tests.
const DefaultStallThreshold = 64

// stallSleepCap bounds the fence backoff's sleep phase once a stall has
// been detected, so the fence polls the blocker at diagnostic frequency
// instead of parking for the full 1024µs default between checks.
const stallSleepCap = 64 * time.Microsecond

// Fence names reported in StallInfo.Fence.
const (
	FencePrivatization = "privatization"
	FenceValidation    = "validation"
)

// StallInfo describes a detected fence stall; it is passed to
// Options.OnStall (stm.Config.OnStall).
type StallInfo struct {
	// Fence is FencePrivatization or FenceValidation.
	Fence string
	// WaiterID is the thread stuck at the fence.
	WaiterID uint64
	// BlockerID is the thread whose unmoving transaction blocks the fence,
	// or -1 when it could not be identified (the privatization fence waits
	// on a tracker watermark, not a thread; the scan that maps the
	// watermark back to a thread can miss).
	BlockerID int64
	// BlockerBegin is the blocker's begin timestamp (the watermark value
	// for the privatization fence).
	BlockerBegin uint64
	// Bound is what the fence is waiting for: the threshold the oldest
	// begin must exceed (privatization) or the commit time every reader
	// must validate past (validation).
	Bound uint64
	// Rounds is the number of consecutive no-progress backoff rounds
	// observed when the watchdog fired.
	Rounds int
}

// stallLimit resolves Options.StallThreshold: 0 means the default,
// negative disables the watchdog.
func (rt *Runtime) stallLimit() int {
	switch {
	case rt.StallThreshold < 0:
		return 0
	case rt.StallThreshold == 0:
		return DefaultStallThreshold
	default:
		return rt.StallThreshold
	}
}

// notifyStall delivers info to the configured callback, defaulting to a
// once-per-stall log line.
func (rt *Runtime) notifyStall(info StallInfo) {
	if rt.OnStall != nil {
		rt.OnStall(info)
		return
	}
	log.Printf("privstm: %s fence stalled: waiter=%d blocker=%d begin=%d bound=%d rounds=%d",
		info.Fence, info.WaiterID, info.BlockerID, info.BlockerBegin, info.Bound, info.Rounds)
}

// stallWatch tracks one fence wait's blocker identity across backoff
// rounds. A blocker is identified by (thread ID, publication sequence,
// begin timestamp): the sequence number disambiguates successive
// transactions that begin at the same clock value (the clock only ticks on
// writer commits), so a thread that finishes and immediately starts a new
// same-timestamp transaction counts as progress. An unidentified blocker
// (id -1) is tracked by timestamp alone — conservative in the firing
// direction only.
type stallWatch struct {
	blockerID    int64
	blockerSeq   uint64
	blockerBegin uint64
	rounds       int
	fired        bool
}

// observe records one backoff round spent waiting on the given blocker and
// fires the watchdog when the identity survives the threshold. It adjusts
// b's sleep cap: capped while a stall is active, default otherwise.
func (w *stallWatch) observe(t *Thread, fence string, blockerID int64, blockerSeq, blockerBegin, bound uint64, b *spin.Backoff) {
	limit := t.RT.stallLimit()
	if limit == 0 {
		return
	}
	if w.rounds == 0 || blockerID != w.blockerID || blockerSeq != w.blockerSeq || blockerBegin != w.blockerBegin {
		// New blocker (or first round): restart the progress clock and
		// restore the default wait schedule.
		w.blockerID, w.blockerSeq, w.blockerBegin = blockerID, blockerSeq, blockerBegin
		w.rounds = 1
		if w.fired {
			w.fired = false
			b.ResetSleepCap()
			b.Reset()
		}
		return
	}
	w.rounds++
	if w.rounds >= limit && !w.fired {
		w.fired = true
		b.SetSleepCap(stallSleepCap)
		t.Stats.FenceStalls++
		t.RT.notifyStall(StallInfo{
			Fence:        fence,
			WaiterID:     t.ID,
			BlockerID:    blockerID,
			BlockerBegin: blockerBegin,
			Bound:        bound,
			Rounds:       w.rounds,
		})
	}
}

// blockerFor scans the thread registry for a published-active transaction
// with begin timestamp ts, returning its identity for stall tracking, or
// (-1, 0) if none matches (the tracker watermark can momentarily lead or
// lag the publication word).
func (rt *Runtime) blockerFor(ts uint64) (id int64, seq uint64) {
	id, seq = -1, 0
	rt.ForEachThread(func(u *Thread) {
		if id >= 0 {
			return
		}
		if begin, active := u.Published(); active && begin == ts {
			id, seq = int64(u.ID), u.BeginSeq()
		}
	})
	return id, seq
}
