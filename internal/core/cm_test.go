package core

import (
	"testing"
	"time"

	"privstm/internal/spin"
)

// countingCM records Wait/Reset calls so tests can pin Run's CM protocol.
type countingCM struct {
	waits  int
	resets int
}

func (c *countingCM) Wait(*Thread) { c.waits++ }
func (c *countingCM) Reset()       { c.resets++ }

func TestParseCMPolicy(t *testing.T) {
	for _, p := range []CMPolicy{CMBackoff, CMKarma, CMSerialize} {
		got, err := ParseCMPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseCMPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseCMPolicy("nope"); err == nil {
		t.Error("ParseCMPolicy accepted garbage")
	}
}

func TestAttemptLimit(t *testing.T) {
	cases := []struct {
		cm   CMPolicy
		max  int
		want int
	}{
		{CMBackoff, 0, DefaultMaxAttempts},
		{CMBackoff, 5, 5},
		{CMBackoff, -1, 0}, // escalation disabled
		{CMKarma, 0, DefaultMaxAttempts},
		{CMSerialize, 0, 1},
		{CMSerialize, 99, 1}, // serialize escalates after the first abort regardless
	}
	for _, c := range cases {
		rt := &Runtime{CMKind: c.cm, MaxAttempts: c.max}
		if got := rt.attemptLimit(); got != c.want {
			t.Errorf("attemptLimit(cm=%v, max=%d) = %d, want %d", c.cm, c.max, got, c.want)
		}
	}
}

// newTestRTOpts is newTestRT with extra options merged in.
func newTestRTOpts(t *testing.T, opts Options) *Runtime {
	t.Helper()
	if opts.HeapWords == 0 {
		opts.HeapWords = 1 << 12
	}
	if opts.OrecCount == 0 {
		opts.OrecCount = 1 << 8
	}
	if opts.MaxThreads == 0 {
		opts.MaxThreads = 4
	}
	rt, err := NewRuntime(opts)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestRunSkipsWaitBeforeEscalation(t *testing.T) {
	rt := newTestRTOpts(t, Options{MaxAttempts: 3})
	e := &fakeEngine{rt: rt, commitOK: true}
	th, _ := rt.NewThread()
	cm := &countingCM{}
	th.cm = cm
	attempt := 0
	if err := Run(e, th, func() {
		attempt++
		if attempt <= 3 {
			th.ConflictAbort()
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Three aborts, then escalation: CM waits only between non-final
	// attempts (after aborts 1 and 2, not after abort 3 — the satellite
	// fix), and the serialized attempt commits.
	if cm.waits != 2 {
		t.Errorf("cm.Wait called %d times, want 2 (skipped before escalation)", cm.waits)
	}
	if th.Stats.Serialized != 1 {
		t.Errorf("Serialized = %d, want 1", th.Stats.Serialized)
	}
	if th.Stats.Commits != 1 || th.Stats.Aborts != 3 {
		t.Errorf("commits=%d aborts=%d, want 1/3", th.Stats.Commits, th.Stats.Aborts)
	}
	if rt.serialTok.holder.Load() != 0 {
		t.Error("serialized token not released after commit")
	}
}

func TestRunResetsCMAfterCommit(t *testing.T) {
	rt := newTestRT(t, 2)
	e := &fakeEngine{rt: rt, commitOK: true}
	th, _ := rt.NewThread()
	cm := &countingCM{}
	th.cm = cm
	attempt := 0
	if err := Run(e, th, func() {
		attempt++
		if attempt == 1 {
			th.ConflictAbort()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if cm.waits != 1 || cm.resets != 1 {
		t.Errorf("waits=%d resets=%d, want 1/1 (CM state reset after commit)", cm.waits, cm.resets)
	}
}

func TestSerializePolicyEscalatesImmediately(t *testing.T) {
	rt := newTestRTOpts(t, Options{CM: CMSerialize})
	e := &fakeEngine{rt: rt, commitOK: true}
	th, _ := rt.NewThread()
	cm := &countingCM{}
	th.cm = cm
	attempt := 0
	if err := Run(e, th, func() {
		attempt++
		if attempt == 1 {
			th.ConflictAbort()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if cm.waits != 0 {
		t.Errorf("CMSerialize waited %d times, want 0", cm.waits)
	}
	if th.Stats.Serialized != 1 {
		t.Errorf("Serialized = %d, want 1", th.Stats.Serialized)
	}
}

func TestGateSerializedBlocksWhileTokenHeld(t *testing.T) {
	rt := newTestRT(t, 2)
	holder, _ := rt.NewThread()
	other, _ := rt.NewThread()

	rt.serialTok.acquire(holder)
	passed := make(chan struct{})
	go func() {
		other.GateSerialized()
		close(passed)
	}()
	select {
	case <-passed:
		t.Fatal("GateSerialized passed while the token was held")
	case <-time.After(10 * time.Millisecond):
	}
	// The holder itself is never blocked by its own token.
	done := make(chan struct{})
	go func() {
		holder.GateSerialized()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("token holder blocked on its own gate")
	}
	rt.serialTok.release(holder)
	select {
	case <-passed:
	case <-time.After(5 * time.Second):
		t.Fatal("GateSerialized never unblocked after release")
	}
}

func TestDrainOthersWaitsForActiveThreads(t *testing.T) {
	rt := newTestRT(t, 3)
	escalated, _ := rt.NewThread()
	rival, _ := rt.NewThread()

	rival.PublishActive(1)
	done := make(chan struct{})
	go func() {
		rt.drainOthers(escalated)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("drainOthers returned while a rival was active")
	case <-time.After(10 * time.Millisecond):
	}
	rival.PublishInactive()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("drainOthers never returned after the rival left")
	}
}

func TestKarmaCMExemptsRichTransactionsFromSleep(t *testing.T) {
	rt := newTestRTOpts(t, Options{CM: CMKarma})
	th, _ := rt.NewThread()
	cm, ok := th.cm.(*karmaCM)
	if !ok {
		t.Fatalf("CMKarma runtime built %T", th.cm)
	}
	// Poor transaction deep in the backoff schedule: Wait sleeps and the
	// schedule keeps advancing.
	cm.b.Skip(40)
	cm.Wait(th)
	if got := cm.b.Attempts(); got != 41 {
		t.Fatalf("poor Wait left attempts=%d, want 41", got)
	}
	cm.Reset()

	// Rich transaction: invested work crosses the exemption threshold, so a
	// Wait that would enter the sleep phase resets to the busy phase instead
	// of parking.
	for i := 0; i < karmaSleepExempt; i++ {
		th.Undo.Add(0, 0)
	}
	cm.b.Skip(40)
	cm.Wait(th)
	if cm.karma < karmaSleepExempt {
		t.Fatalf("karma = %d, want >= %d", cm.karma, karmaSleepExempt)
	}
	if got := cm.b.Attempts(); got != 1 {
		t.Fatalf("rich Wait left attempts=%d, want 1 (reset instead of sleeping)", got)
	}
	if cm.b.Phase() != spin.PhaseBusy {
		t.Fatalf("rich Wait left phase %v, want busy", cm.b.Phase())
	}
	cm.Reset()
	if cm.karma != 0 {
		t.Errorf("Reset kept karma %d", cm.karma)
	}
}
