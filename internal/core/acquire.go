package core

import (
	"privstm/internal/failpoint"
	"privstm/internal/orec"
)

// AcquireOrec attempts to take ownership of o for this transaction
// (§II-A): the orec must be consistent — unowned, with a write timestamp no
// newer than our snapshot's validity bound — and is then atomically marked
// owned. It
// reports success; on failure the transaction must abort (both readers and
// writers defer to prior concurrent writers). Re-acquiring an orec we
// already own succeeds without a second log entry.
func (t *Thread) AcquireOrec(o *orec.Orec) bool {
	for {
		v := o.Owner().Load()
		if orec.IsOwned(v) {
			return orec.OwnerTID(v) == t.ID
		}
		wts := orec.WTS(v)
		if wts > t.ValidTS {
			// Publish a deferred-mode future timestamp, then try to extend
			// over the rival commit (redo engines acquire at commit time,
			// where an extension is still sound: ValidateReads skips orecs
			// we already own). If the snapshot cannot move, abort — the
			// published timestamp guarantees the retry begins past it.
			t.NoteFutureWTS(wts)
			if !t.TryExtend() {
				return false
			}
			continue // bound raised; re-examine the orec
		}
		if o.Owner().CompareAndSwap(v, orec.PackOwned(t.ID)) {
			t.Acq.Add(o, wts)
			failpoint.Eval(failpoint.OrecAcquired)
			return true
		}
		// Lost a race for the orec; re-examine the new value.
	}
}

// AcquireWriteSet acquires the orecs guarding every address in the redo
// log (commit-time locking, §IV). On failure it restores the orecs already
// taken and reports false.
func (t *Thread) AcquireWriteSet() bool {
	n := t.Redo.Len()
	for i := 0; i < n; i++ {
		o := t.RT.Orecs.For(t.Redo.At(i).Addr)
		if !t.AcquireOrec(o) {
			t.Acq.RestoreAll()
			t.Acq.Reset()
			return false
		}
	}
	return true
}
