package sched

import (
	"testing"

	"privstm/internal/failpoint"
)

// TestPointDisabledZeroAlloc pins the disabled explorer's cost model: with
// no controller installed (the production state) a yield point must not
// allocate. The runtime's hot paths call failpoint.Eval unconditionally,
// so any allocation here would tax every transaction in every build.
func TestPointDisabledZeroAlloc(t *testing.T) {
	failpoint.Reset()
	if n := testing.AllocsPerRun(1000, func() { Point("sched/overhead/probe") }); n != 0 {
		t.Fatalf("disabled yield point allocates %v times per call, want 0", n)
	}
}

// BenchmarkPointDisabled measures the disabled yield point: one atomic
// pointer load and a nil check (same budget as a bare failpoint.Eval).
// Compare against BenchmarkPointArmedNoHook for the cost of an armed
// registry without a controller.
func BenchmarkPointDisabled(b *testing.B) {
	failpoint.Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Point("sched/overhead/probe")
	}
}

// BenchmarkPointArmedNoHook measures a yield point with the registry armed
// (some unrelated failpoint set) but no global controller hook — the state
// a fault-injection test leaves between arms.
func BenchmarkPointArmedNoHook(b *testing.B) {
	failpoint.Set("sched/overhead/other", nil)
	defer failpoint.Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Point("sched/overhead/probe")
	}
}
