package sched

import (
	"fmt"
	"strconv"
	"strings"
)

// Trace is a recorded decision sequence: the worker index granted at each
// scheduling step. Its string form — dot-separated indexes, e.g.
// "0.1.1.0.2" — is what a failing exploration prints and what the
// -sched.replay flag accepts.
type Trace []int

// String encodes the trace in the replay flag's format.
func (t Trace) String() string {
	var b strings.Builder
	for i, w := range t {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(w))
	}
	return b.String()
}

// ParseTrace decodes the String form. An empty string is an empty trace.
func ParseTrace(s string) (Trace, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ".")
	t := make(Trace, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sched: bad trace element %q in %q", p, s)
		}
		t[i] = n
	}
	return t, nil
}
