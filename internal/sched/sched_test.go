package sched

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"privstm/internal/failpoint"
)

// TestRunSerializes: workers mutate shared state with no synchronization of
// their own; the explorer's token passing is the only thing keeping this
// data-race-free, so running it under -race validates the serialization
// protocol end to end.
func TestRunSerializes(t *testing.T) {
	counter := 0
	body := func() {
		for i := 0; i < 50; i++ {
			counter++
			Point("test/inc")
		}
	}
	res := Run(Config{Seed: 1}, body, body, body)
	if res.Failed() {
		t.Fatal(res.Err)
	}
	if counter != 150 {
		t.Fatalf("counter = %d, want 150", counter)
	}
	if len(res.Trace) == 0 || len(res.Trace) != len(res.Choices) || len(res.Trace) != len(res.Picked) {
		t.Fatalf("trace/choices/picked lengths: %d/%d/%d", len(res.Trace), len(res.Choices), len(res.Picked))
	}
}

// TestDeterminism: identical Config + program twice must yield identical
// traces and verdicts — the property every replay and CI corpus rests on.
func TestDeterminism(t *testing.T) {
	mk := func() (func(), func()) {
		x := 0
		return func() {
				x++
				Point("test/a")
				x++
				Point("test/b")
			}, func() {
				x += 10
				Point("test/c")
				x += 10
			}
	}
	for seed := uint64(0); seed < 20; seed++ {
		b0, b1 := mk()
		r1 := Run(Config{Seed: seed, ChangePoints: 2}, b0, b1)
		b0, b1 = mk()
		r2 := Run(Config{Seed: seed, ChangePoints: 2}, b0, b1)
		if r1.Failed() || r2.Failed() {
			t.Fatalf("seed %d: unexpected failure: %v / %v", seed, r1.Err, r2.Err)
		}
		if !reflect.DeepEqual(r1.Trace, r2.Trace) || !reflect.DeepEqual(r1.Choices, r2.Choices) {
			t.Fatalf("seed %d: runs diverged: %v vs %v", seed, r1.Trace, r2.Trace)
		}
	}
}

// TestReplayFollowsTrace: replaying a recorded trace re-executes the same
// decision sequence.
func TestReplayFollowsTrace(t *testing.T) {
	mk := func() []func() {
		return []func(){
			func() { Point("test/a"); Point("test/b") },
			func() { Point("test/c") },
		}
	}
	bodies := mk()
	orig := Run(Config{Seed: 7}, bodies...)
	if orig.Failed() {
		t.Fatal(orig.Err)
	}
	bodies = mk()
	rep := Replay(Config{}, orig.Trace, bodies...)
	if rep.Failed() {
		t.Fatal(rep.Err)
	}
	if !reflect.DeepEqual(rep.Trace, orig.Trace) {
		t.Fatalf("replay trace %v != original %v", rep.Trace, orig.Trace)
	}
}

// TestReplayDivergenceReported: a trace that names a finished worker fails
// with a divergence error instead of silently rescheduling.
func TestReplayDivergenceReported(t *testing.T) {
	bodies := []func(){
		func() {},
		func() { Point("test/a") },
	}
	// Worker 0 has exactly one grant (start→done); granting it twice
	// diverges at the second step.
	res := Replay(Config{}, Trace{0, 0, 1, 1}, bodies...)
	if !res.Failed() || !strings.Contains(res.Err.Error(), "diverged") {
		t.Fatalf("err = %v, want divergence", res.Err)
	}
}

// TestDFSEnumeratesInterleavings: two workers with three grants each
// (start→a, a→b, b→done) have C(6,3) = 20 interleavings; bounded DFS must
// visit exactly that many and terminate.
func TestDFSEnumeratesInterleavings(t *testing.T) {
	mk := func() (Config, []func()) {
		body := func() { Point("test/a"); Point("test/b") }
		return Config{}, []func(){body, body}
	}
	res, n := ExploreDFS(Config{}, 1000, mk)
	if res != nil {
		t.Fatalf("unexpected failure: %v", res.Err)
	}
	if n != 20 {
		t.Fatalf("DFS visited %d schedules, want 20", n)
	}
}

// TestDFSFindsInterleavingBug: a transient state (x == 1 between two writes)
// is observable only in some interleavings; DFS must find one, and the
// reported trace must reproduce the failure under Replay.
func TestDFSFindsInterleavingBug(t *testing.T) {
	type prog struct {
		x    int
		seen bool
	}
	mkProg := func() (*prog, []func()) {
		p := &prog{}
		return p, []func(){
			func() {
				p.x = 1
				Point("test/mid")
				p.x = 0
			},
			func() {
				Point("test/look")
				if p.x == 1 {
					p.seen = true
				}
			},
		}
	}
	var cur *prog
	mk := func() (Config, []func()) {
		p, bodies := mkProg()
		cur = p
		return Config{AtEnd: func() error {
			if p.seen {
				return errors.New("observed transient x == 1")
			}
			return nil
		}}, bodies
	}
	res, n := ExploreDFS(Config{}, 1000, mk)
	if res == nil {
		t.Fatalf("DFS missed the bug after %d schedules", n)
	}
	if !strings.Contains(res.Err.Error(), "transient") {
		t.Fatalf("wrong failure: %v", res.Err)
	}
	// The printed trace reproduces the failure deterministically.
	p, bodies := mkProg()
	rep := Replay(Config{}, res.Trace, bodies...)
	if rep.Failed() {
		t.Fatalf("replay of failing trace errored early: %v", rep.Err)
	}
	if !p.seen {
		t.Fatalf("replay of %v did not reproduce the bug", res.Trace)
	}
	_ = cur
}

// TestPCTFindsInterleavingBug: the same transient-state bug falls to seeded
// PCT within a small corpus.
func TestPCTFindsInterleavingBug(t *testing.T) {
	mk := func() (Config, []func()) {
		x := 0
		seen := false
		return Config{
				ChangePoints: 2,
				Horizon:      6, // ~the real schedule length: demotions must land inside it
				AtEnd: func() error {
					if seen {
						return errors.New("observed transient state")
					}
					return nil
				},
			}, []func(){
				func() { x = 1; Point("test/mid"); x = 0 },
				func() { Point("test/look"); seen = seen || x == 1 },
			}
	}
	res, n := ExplorePCT(Config{Seed: 1}, 64, mk)
	if res == nil {
		t.Fatalf("PCT missed the bug in %d runs", n)
	}
	if res.Seed == 0 {
		t.Fatal("failing result lost its seed")
	}
}

// TestWaitSitePreference: worker 0 spins on a flag at a registered wait
// site; first-enabled scheduling would otherwise run it forever. The
// wait-site discipline must yield to worker 1, which sets the flag.
func TestWaitSitePreference(t *testing.T) {
	flag := false
	res := Run(Config{Strategy: StrategyFirst, MaxSteps: 200},
		func() {
			for !flag {
				failpoint.Eval(failpoint.FencePrivWait)
			}
		},
		func() {
			Point("test/pre")
			flag = true
		},
	)
	if res.Failed() {
		t.Fatalf("wait-site discipline failed to break the spin: %v", res.Err)
	}
}

// TestAllPollingRoundRobin: two pollers waiting on each other's progress
// both run (oldest-run first) instead of one monopolizing the schedule.
func TestAllPollingRoundRobin(t *testing.T) {
	a, b := 0, 0
	res := Run(Config{Strategy: StrategyFirst, MaxSteps: 500},
		func() {
			for a < 3 {
				failpoint.Eval(failpoint.FenceValWait)
				if b >= a {
					a++
				}
			}
		},
		func() {
			for b < 3 {
				failpoint.Eval(failpoint.FenceValWait)
				if a > b {
					b++
				}
			}
		},
	)
	if res.Failed() {
		t.Fatalf("round-robin failed: %v (a=%d b=%d)", res.Err, a, b)
	}
}

// TestLivelockDetection: a worker that can never leave its wait loop trips
// the MaxSteps bound with a diagnostic naming the parked site.
func TestLivelockDetection(t *testing.T) {
	res := Run(Config{MaxSteps: 50},
		func() {
			for {
				failpoint.Eval(failpoint.FencePrivWait)
			}
		},
	)
	if !res.Failed() || !strings.Contains(res.Err.Error(), "livelock") {
		t.Fatalf("err = %v, want livelock diagnostic", res.Err)
	}
	if !strings.Contains(res.Err.Error(), failpoint.FencePrivWait) {
		t.Fatalf("diagnostic %v does not name the parked site", res.Err)
	}
}

// TestWorkerPanicReported: a worker panic (not schedStop) fails the run with
// the panic value, and the other worker is unwound cleanly.
func TestWorkerPanicReported(t *testing.T) {
	res := Run(Config{},
		func() { Point("test/a"); panic("boom") },
		func() { Point("test/b"); Point("test/c") },
	)
	if !res.Failed() || !strings.Contains(res.Err.Error(), "boom") {
		t.Fatalf("err = %v, want worker panic", res.Err)
	}
}

// TestOnStepOracleConsistency: OnStep runs with every worker suspended, so
// an invariant touched by two workers is never observed mid-update.
func TestOnStepOracleConsistency(t *testing.T) {
	var x, y int // invariant outside yield windows: x == y
	body := func() {
		for i := 0; i < 5; i++ {
			x++
			y++ // no yield between the two halves: OnStep never sees x != y
			Point("test/step")
		}
	}
	steps := 0
	res := Run(Config{
		Seed: 3,
		OnStep: func() error {
			steps++
			if x != y {
				return fmt.Errorf("oracle observed torn state x=%d y=%d", x, y)
			}
			return nil
		},
	}, body, body)
	if res.Failed() {
		t.Fatal(res.Err)
	}
	if steps == 0 {
		t.Fatal("OnStep never ran")
	}
}

// TestOnStepFailureAborts: an oracle error fails the run at that step and
// every worker unwinds (Run returns rather than deadlocking).
func TestOnStepFailureAborts(t *testing.T) {
	x := 0
	res := Run(Config{
		OnStep: func() error {
			if x >= 2 {
				return errors.New("x reached 2")
			}
			return nil
		},
	},
		func() {
			for i := 0; i < 10; i++ {
				x++
				Point("test/inc")
			}
		},
		func() { Point("test/other") },
	)
	if !res.Failed() || !strings.Contains(res.Err.Error(), "x reached 2") {
		t.Fatalf("err = %v, want oracle failure", res.Err)
	}
	if !strings.Contains(res.Err.Error(), "oracle failed at step") {
		t.Fatalf("err = %v, want step attribution", res.Err)
	}
}

// TestStepTimeout: a worker blocked in native code with no yield point trips
// StepTimeout instead of hanging the run forever.
func TestStepTimeout(t *testing.T) {
	release := make(chan struct{})
	res := Run(Config{StepTimeout: 50 * time.Millisecond},
		func() { <-release },
	)
	close(release) // let the leaked worker finish after the verdict
	if !res.Failed() || !strings.Contains(res.Err.Error(), "yield point") {
		t.Fatalf("err = %v, want step-timeout diagnostic", res.Err)
	}
}

// TestPointPassthrough: with no exploration armed, Point is a disabled
// failpoint evaluation — a no-op.
func TestPointPassthrough(t *testing.T) {
	Point("test/unarmed") // must not block or panic
}

// TestUnregisteredGoroutinePassthrough: failpoint evaluations from
// goroutines outside the program (helpers spawned by a worker, monitors) do
// not park — they pass straight through the global hook.
func TestUnregisteredGoroutinePassthrough(t *testing.T) {
	res := Run(Config{},
		func() {
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < 10; i++ {
					failpoint.Eval("test/helper")
				}
			}()
			<-done
			Point("test/after")
		},
	)
	if res.Failed() {
		t.Fatal(res.Err)
	}
}

func TestTraceStringRoundTrip(t *testing.T) {
	for _, tr := range []Trace{nil, {0}, {0, 1, 1, 0, 2}} {
		got, err := ParseTrace(tr.String())
		if err != nil {
			t.Fatalf("%v: %v", tr, err)
		}
		if !reflect.DeepEqual(got, tr) && !(len(got) == 0 && len(tr) == 0) {
			t.Fatalf("round trip %v -> %q -> %v", tr, tr.String(), got)
		}
	}
	for _, bad := range []string{"a", "1.x", "-1", "1..2"} {
		if _, err := ParseTrace(bad); err == nil {
			t.Errorf("ParseTrace(%q) accepted", bad)
		}
	}
}

// TestDFSAltSentinel pins the branch encoding: ^i decodes back to i and is
// negative for every worker index.
func TestDFSAltSentinel(t *testing.T) {
	for i := 0; i < 5; i++ {
		after, ok := altSentinel(^i)
		if !ok || after != i {
			t.Fatalf("altSentinel(^%d) = %d,%v", i, after, ok)
		}
		if _, ok := altSentinel(i); ok {
			t.Fatalf("altSentinel(%d) claimed sentinel", i)
		}
	}
}
