package sched

// ExplorePCT runs `runs` schedules of the program produced by mk, one per
// derived seed, and returns the first failing result (nil if all pass) plus
// the number of schedules executed. mk must build a fresh program — state
// and worker bodies — per call; sharing state across schedules would let
// one schedule's outcome leak into the next.
//
// Seeds are derived deterministically from cfg.Seed (seed, seed+1, ...), so
// a corpus is reproducible from one number and a failure names the exact
// seed to replay.
func ExplorePCT(cfg Config, runs int, mk func() (Config, []func())) (*Result, int) {
	for i := 0; i < runs; i++ {
		rcfg, bodies := mk()
		rcfg.Seed = cfg.Seed + uint64(i)
		rcfg.Strategy = StrategyPCT
		if rcfg.ChangePoints == 0 {
			rcfg.ChangePoints = cfg.ChangePoints
		}
		if rcfg.MaxSteps == 0 {
			rcfg.MaxSteps = cfg.MaxSteps
		}
		if rcfg.Horizon == 0 {
			rcfg.Horizon = cfg.Horizon
		}
		res := Run(rcfg, bodies...)
		if res.Failed() {
			return res, i + 1
		}
	}
	return nil, runs
}

// ExploreDFS enumerates the program's schedules depth-first and bounded:
// it runs the first schedule under the first-enabled policy, then
// repeatedly backtracks the deepest decision that still has an untried
// alternative, re-running with that prefix, until the space is exhausted or
// maxSchedules is reached. It returns the first failing result (nil if
// every visited schedule passes) and the number of schedules executed.
//
// The enumeration is stateless (CHESS-style): each schedule is a fresh
// program execution driven by a decision prefix, so mk must produce an
// identical-behaving program each call — the exploration assumes the same
// prefix always reaches the same choice points. Programs whose branching
// outgrows maxSchedules are cut off, not sampled; callers wanting coverage
// beyond the bound should use ExplorePCT.
func ExploreDFS(cfg Config, maxSchedules int, mk func() (Config, []func())) (*Result, int) {
	var prefix Trace
	for n := 0; n < maxSchedules; n++ {
		rcfg, bodies := mk()
		rcfg.Strategy = StrategyFirst
		rcfg.Prefix = prefix
		if rcfg.MaxSteps == 0 {
			rcfg.MaxSteps = cfg.MaxSteps
		}
		res := Run(rcfg, bodies...)
		if res.Failed() {
			return res, n + 1
		}
		next, ok := nextPrefix(res)
		if !ok {
			return nil, n + 1
		}
		prefix = next
	}
	return nil, maxSchedules
}

// nextPrefix backtracks a completed run's decision sequence: the deepest
// step whose choice has an untried successor in its candidate set
// (Picked[i]+1 < Choices[i]) is advanced; everything before it replays
// verbatim. ok is false when the whole space has been visited.
//
// The advanced step is encoded as a position sentinel (^(Picked[i]+1)):
// worker indexes in a trace are not positions in the candidate set, but
// deterministic re-execution of the same prefix reproduces the same
// candidate set in the same order, so "the sibling after the one last
// taken" is exactly the candidate at position Picked[i]+1.
func nextPrefix(res *Result) (Trace, bool) {
	for i := len(res.Trace) - 1; i >= 0; i-- {
		if res.Picked[i]+1 >= res.Choices[i] {
			continue
		}
		alt := make(Trace, i+1)
		copy(alt, res.Trace[:i])
		alt[i] = ^(res.Picked[i] + 1)
		return alt, true
	}
	return nil, false
}

// altSentinel reports whether a prefix element is a nextPrefix alternative
// marker and decodes the candidate position it names.
func altSentinel(v int) (pos int, ok bool) {
	if v < 0 {
		return ^v, true
	}
	return 0, false
}
