// Package sched is a deterministic interleaving explorer for the STM
// runtime, in the CHESS/PCT mold, layered on the failpoint registry's yield
// points (internal/failpoint).
//
// A Controller serializes a set of worker goroutines so that exactly one
// runs between yield points: every failpoint.Eval compiled into the runtime
// becomes a place where the running worker parks and hands control back to
// the scheduler, which picks the next worker according to the configured
// strategy. Because context switches happen only at yield points and the
// pick sequence is recorded, every run is reproducible: a failure prints a
// decision trace that Replay re-executes verbatim.
//
// Strategies:
//
//   - PCT (Config.Seed, Config.ChangePoints): the probabilistic concurrency
//     testing scheduler — workers get random distinct priorities, the
//     highest-priority enabled worker runs, and at d random steps the
//     running worker's priority drops below everyone else's. Small d finds
//     most real bugs with high probability per run.
//   - First-enabled (StrategyFirst): always the lowest-indexed enabled
//     worker; the deterministic base policy under DFS prefixes and replays.
//   - Prefix (Config.Prefix): follow a recorded decision sequence, then
//     fall back to the strategy. ExploreDFS (explore.go) uses prefixes to
//     enumerate all schedules of small programs; Replay uses them to
//     reproduce failures.
//
// Wait-site discipline: yield points inside wait/poll loops
// (failpoint.IsWaitSite) mark the worker as polling, and the scheduler
// prefers non-polling workers — a spin loop re-checking a condition only
// runs when no worker can make real progress, so a suspended lock or fence
// holder cannot be starved by its own waiter and serialized execution never
// livelocks on a healthy runtime. If every live worker is polling the
// scheduler round-robins them (oldest-run first); MaxSteps bounds runaway
// schedules and reports them as suspected livelock.
//
// The per-run oracles (Config.OnStep, Config.AtEnd) run while every worker
// is suspended, so they observe a consistent global state — that is what
// lets invariant checks like txnlist.Slots.CheckWatermark run mid-schedule
// without locks of their own. See CORRECTNESS.md §11 for the yield-point
// catalog and oracle definitions.
package sched

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"privstm/internal/failpoint"
	"privstm/internal/rng"
)

// Point is a named yield point for test bodies: programs under exploration
// call it to offer the scheduler a context-switch opportunity at
// application level (between transactions, around nontransactional reads).
// It is a plain failpoint evaluation — free when nothing is armed — and is
// allowlisted by stmlint's txnpurity rule alongside failpoint.Eval.
func Point(name string) { failpoint.Eval(name) }

// Config parameterizes one schedule execution.
type Config struct {
	// Seed drives the PCT scheduler's priority assignment and change
	// points. Two runs of the same program with the same Config produce
	// identical traces and verdicts.
	Seed uint64
	// Strategy picks the scheduling policy (default StrategyPCT).
	Strategy Strategy
	// ChangePoints is PCT's d — how many priority-change points are
	// planted in the schedule (default 3). Ignored by StrategyFirst.
	ChangePoints int
	// Horizon is the estimated schedule length over which PCT scatters its
	// change points (default 64, clamped to MaxSteps). PCT's bug-finding
	// probability depends on change points landing inside the actual
	// schedule, so set this near the program's real step count — scattering
	// over MaxSteps would make demotions vanishingly rare in short runs.
	Horizon int
	// MaxSteps bounds the schedule length; exceeding it fails the run with
	// a suspected-livelock diagnostic (default 20000).
	MaxSteps int
	// Prefix, when non-empty, is a decision sequence to follow verbatim
	// before falling back to Strategy. A prefix step naming a worker that
	// is finished or not enabled fails the run (replay divergence).
	Prefix Trace
	// OnStep, when non-nil, runs after every scheduling step, with every
	// worker suspended; returning an error fails the run at that step.
	OnStep func() error
	// AtEnd, when non-nil, runs once after every worker has finished;
	// returning an error fails the run.
	AtEnd func() error
	// StepTimeout is the wall-clock bound on a single step — how long the
	// scheduler waits for the granted worker to reach its next yield point
	// or finish (default 30s; exploration steps are microseconds, so a
	// trip here means a worker blocked somewhere without a yield point).
	StepTimeout time.Duration
}

// Strategy selects the scheduling policy.
type Strategy int

const (
	// StrategyPCT is the randomized-priority scheduler (default).
	StrategyPCT Strategy = iota
	// StrategyFirst always runs the lowest-indexed enabled worker.
	StrategyFirst
)

const (
	defaultChangePoints = 3
	defaultMaxSteps     = 20000
	defaultHorizon      = 64
	defaultStepTimeout  = 30 * time.Second
)

// Result describes one executed schedule.
type Result struct {
	// Trace is the decision sequence: Trace[i] is the worker index granted
	// at step i. Feed it back through Config.Prefix (or Replay) to
	// re-execute the schedule.
	Trace Trace
	// Choices[i] is how many workers were eligible at step i — the
	// branching degree ExploreDFS backtracks over. The candidate ordering
	// is deterministic (by worker index, or oldest-run first when every
	// candidate is polling).
	Choices []int
	// Picked[i] is the chosen worker's position within step i's candidate
	// set; an untried DFS alternative exists at step i iff
	// Picked[i]+1 < Choices[i].
	Picked []int
	// Seed echoes Config.Seed.
	Seed uint64
	// Err is nil for a passing run; otherwise the first failure — a
	// worker panic, an oracle violation, a replay divergence, or the
	// MaxSteps livelock diagnostic.
	Err error
}

// Failed reports whether the schedule ended in a failure.
func (r *Result) Failed() bool { return r.Err != nil }

// workerState is a worker's lifecycle stage.
type workerState int

const (
	stateParked workerState = iota // waiting for a grant
	stateRunning
	stateDone
)

// worker is one serialized goroutine.
type worker struct {
	idx   int
	gate  chan struct{} // grant token; capacity 1
	state workerState
	// polling marks a worker whose last yield was at a wait site
	// (failpoint.IsWaitSite): it is re-checking a condition someone else
	// must change, so the scheduler deprioritizes it.
	polling bool
	// site is the yield point the worker is parked at ("" = start).
	site string
	// prio is the PCT priority (higher runs first).
	prio int
	// lastRun is the step at which the worker last ran, for the
	// all-polling round-robin.
	lastRun int
}

// event is a worker→scheduler notification: the worker with the token
// either parked at a yield point or finished.
type event struct {
	w    *worker
	site string
	done bool
	err  error // worker panic (done only)
}

// schedStop is the panic value used to unwind workers after the scheduler
// aborts a run (oracle failure, livelock bound). core.Run propagates it
// after rolling the transaction back, because it arrives with a consistent
// read set.
type schedStop struct{}

// controller serializes one program's workers.
type controller struct {
	cfg     Config
	workers []*worker
	events  chan event
	abort   chan struct{}

	// gids maps goroutine IDs to workers so the failpoint global hook can
	// tell worker yields from stray evaluations (test main, helpers).
	mu   sync.Mutex
	gids map[uint64]*worker
}

// Run executes the given worker bodies under one deterministic schedule and
// reports the outcome. It owns the failpoint global hook for the duration
// (callers must not run concurrent explorations or arm a competing global
// hook; per-name failpoints still fire normally).
func Run(cfg Config, bodies ...func()) *Result {
	if cfg.ChangePoints == 0 {
		cfg.ChangePoints = defaultChangePoints
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = defaultMaxSteps
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = defaultHorizon
	}
	if cfg.Horizon > cfg.MaxSteps {
		cfg.Horizon = cfg.MaxSteps
	}
	if cfg.StepTimeout == 0 {
		cfg.StepTimeout = defaultStepTimeout
	}
	c := &controller{
		cfg:    cfg,
		events: make(chan event, len(bodies)), // finish events never block
		abort:  make(chan struct{}),
		gids:   make(map[uint64]*worker),
	}
	for i := range bodies {
		c.workers = append(c.workers, &worker{
			idx:     i,
			gate:    make(chan struct{}, 1),
			lastRun: -1,
		})
	}
	failpoint.SetGlobal(c.hook)
	defer failpoint.ClearGlobal()

	for i, body := range bodies {
		go c.runWorker(c.workers[i], body)
	}
	return c.schedule()
}

// Replay re-executes a recorded decision trace: the strategy is pinned to
// first-enabled so steps beyond the trace (there are normally none) stay
// deterministic, and any divergence from the trace is reported as an error.
func Replay(cfg Config, trace Trace, bodies ...func()) *Result {
	cfg.Prefix = trace
	cfg.Strategy = StrategyFirst
	return Run(cfg, bodies...)
}

// runWorker is the worker goroutine: register, wait for the first grant,
// run the body, notify completion. A schedStop unwind (aborted run) is a
// silent exit; any other panic is reported as the run's failure.
func (c *controller) runWorker(w *worker, body func()) {
	gid := goid()
	c.mu.Lock()
	c.gids[gid] = w
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.gids, gid)
		c.mu.Unlock()
		var err error
		if r := recover(); r != nil {
			if _, stopped := r.(schedStop); !stopped {
				err = fmt.Errorf("sched: worker %d panicked: %v", w.idx, r)
			}
		}
		c.events <- event{w: w, done: true, err: err}
	}()
	c.park(w)
	body()
}

// hook is the failpoint global hook: when the calling goroutine is a
// registered worker, park it at the named yield point until the scheduler
// grants it the token again. Evaluations from unregistered goroutines
// (test main, monitors, goroutines outside the program) pass through.
func (c *controller) hook(site string) {
	c.mu.Lock()
	w := c.gids[goid()]
	c.mu.Unlock()
	if w == nil {
		return
	}
	c.events <- event{w: w, site: site}
	c.park(w)
}

// park blocks until the scheduler grants the worker the token, unwinding
// with schedStop if the run was aborted meanwhile.
func (c *controller) park(w *worker) {
	select {
	case <-w.gate:
	case <-c.abort:
		panic(schedStop{})
	}
}

// schedule is the controller loop: pick an eligible worker, grant it the
// token, wait for it to yield or finish, run the oracle, repeat. It runs on
// the caller's goroutine.
func (c *controller) schedule() *Result {
	res := &Result{Seed: c.cfg.Seed}
	st := newStrategyState(c.cfg, len(c.workers))
	timer := time.NewTimer(c.cfg.StepTimeout)
	defer timer.Stop()

	live := len(c.workers)
	fail := func(err error) *Result {
		res.Err = err
		close(c.abort)
		// Drain: every worker unwinds via schedStop (or was already done)
		// and sends exactly one finish event; the channel buffer holds
		// them all, so no worker blocks on a scheduler that stopped
		// listening. The timeout covers a worker stuck in native blocking
		// with no yield point (the StepTimeout failure case): it cannot
		// observe the abort, so leak it rather than hang the run — the
		// buffered events channel absorbs its eventual finish event.
		deadline := time.NewTimer(c.cfg.StepTimeout)
		defer deadline.Stop()
		for live > 0 {
			select {
			case ev := <-c.events:
				if ev.done {
					live--
				}
			case <-deadline.C:
				return res
			}
		}
		return res
	}

	for step := 0; live > 0; step++ {
		if step >= c.cfg.MaxSteps {
			return fail(fmt.Errorf("sched: exceeded MaxSteps=%d without completing — suspected livelock (workers parked at: %s)",
				c.cfg.MaxSteps, c.parkedSites()))
		}
		cands := c.eligible()
		if len(cands) == 0 {
			// All live workers are mid-step? Impossible: the token holder
			// always produces an event before the scheduler runs again.
			return fail(fmt.Errorf("sched: no eligible worker at step %d", step))
		}
		w, err := st.pick(step, cands, res)
		if err != nil {
			return fail(err)
		}
		res.Trace = append(res.Trace, w.idx)
		res.Choices = append(res.Choices, len(cands))
		pos := 0
		for j, cw := range cands {
			if cw == w {
				pos = j
				break
			}
		}
		res.Picked = append(res.Picked, pos)
		w.state = stateRunning
		w.lastRun = step
		w.gate <- struct{}{}

		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(c.cfg.StepTimeout)
		select {
		case ev := <-c.events:
			if ev.done {
				ev.w.state = stateDone
				live--
				if ev.err != nil {
					return fail(ev.err)
				}
			} else {
				ev.w.state = stateParked
				ev.w.site = ev.site
				ev.w.polling = failpoint.IsWaitSite(ev.site)
			}
		case <-timer.C:
			return fail(fmt.Errorf("sched: worker %d did not reach a yield point within %v (blocked without a yield site?)",
				w.idx, c.cfg.StepTimeout))
		}
		if c.cfg.OnStep != nil {
			if oerr := c.cfg.OnStep(); oerr != nil {
				return fail(fmt.Errorf("sched: oracle failed at step %d (worker %d at %q): %w",
					step, w.idx, w.site, oerr))
			}
		}
	}
	if c.cfg.AtEnd != nil {
		if oerr := c.cfg.AtEnd(); oerr != nil {
			res.Err = fmt.Errorf("sched: end-of-run oracle failed: %w", oerr)
		}
	}
	return res
}

// eligible returns the workers the next step may grant: the parked
// non-polling workers ordered by index, or — when every parked worker is
// polling — all of them, ordered oldest-run first (ties by index). The
// all-polling ordering IS the round-robin discipline: cands[0] is always
// the poller that has waited longest, so first-enabled scheduling and
// exhausted PCT priorities both rotate through spin loops instead of
// re-running one forever.
func (c *controller) eligible() []*worker {
	var ready, polling []*worker
	for _, w := range c.workers {
		if w.state != stateParked {
			continue
		}
		if w.polling {
			polling = append(polling, w)
		} else {
			ready = append(ready, w)
		}
	}
	if len(ready) > 0 {
		return ready
	}
	sort.SliceStable(polling, func(i, j int) bool {
		return polling[i].lastRun < polling[j].lastRun
	})
	return polling
}

// parkedSites describes where every live worker is parked, for livelock
// diagnostics.
func (c *controller) parkedSites() string {
	s := ""
	for _, w := range c.workers {
		if w.state == stateDone {
			continue
		}
		if s != "" {
			s += ", "
		}
		site := w.site
		if site == "" {
			site = "start"
		}
		s += fmt.Sprintf("w%d@%s", w.idx, site)
	}
	return s
}

// strategyState carries the per-run scheduling policy state.
type strategyState struct {
	cfg    Config
	prefix Trace
	// permInit holds the initial PCT priorities until the first pick
	// installs them on the workers (which the controller owns).
	permInit []int
	// changeAt maps step numbers to planted PCT priority-change points.
	changeAt map[int]bool
	// nextLowPrio is the next priority handed out at a change point; it
	// only decreases, so each demotion lands below everything assigned
	// before it.
	nextLowPrio int
}

func newStrategyState(cfg Config, n int) *strategyState {
	st := &strategyState{cfg: cfg, prefix: cfg.Prefix, nextLowPrio: -1}
	if cfg.Strategy != StrategyPCT {
		return st
	}
	r := rng.New(cfg.Seed)
	// Random distinct priorities: a Fisher–Yates permutation of [0, n).
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	st.permInit = perm
	st.changeAt = make(map[int]bool, cfg.ChangePoints)
	for i := 0; i < cfg.ChangePoints; i++ {
		st.changeAt[r.Intn(cfg.Horizon)] = true
	}
	return st
}

// pick chooses the worker for this step from cands (non-empty, ordered by
// index).
func (st *strategyState) pick(step int, cands []*worker, res *Result) (*worker, error) {
	// Install initial PCT priorities once.
	if st.permInit != nil {
		for _, w := range cands {
			w.prio = st.permInit[w.idx%len(st.permInit)]
		}
		st.permInit = nil
	}
	// Prefix steps come first (DFS branches, replays).
	if len(st.prefix) > 0 {
		want := st.prefix[0]
		st.prefix = st.prefix[1:]
		if pos, alt := altSentinel(want); alt {
			// DFS alternative marker: take the candidate at this position.
			// Deterministic re-execution of the same prefix reproduces the
			// same candidate set in the same order, so a position recorded
			// by the previous visit resolves to the sibling it names.
			if pos >= len(cands) {
				return nil, fmt.Errorf("sched: DFS prefix diverged at step %d: position %d out of range (have %s)",
					step, pos, workersString(cands))
			}
			w := cands[pos]
			st.demoteAfter(step, w)
			return w, nil
		}
		for _, w := range cands {
			if w.idx == want {
				st.demoteAfter(step, w)
				return w, nil
			}
		}
		return nil, fmt.Errorf("sched: replay diverged at step %d: worker %d not eligible (have %s)",
			step, want, workersString(cands))
	}
	switch st.cfg.Strategy {
	case StrategyFirst:
		return cands[0], nil
	default: // StrategyPCT
		if cands[0].polling {
			// All-polling phase: eligible() already put the oldest-run
			// poller first; priorities would let one spin loop monopolize.
			best := cands[0]
			st.demoteAfter(step, best)
			return best, nil
		}
		best := cands[0]
		for _, w := range cands[1:] {
			if w.prio > best.prio {
				best = w
			}
		}
		st.demoteAfter(step, best)
		return best, nil
	}
}

// demoteAfter applies a PCT priority-change point: if this step is one, the
// chosen worker's priority drops below every priority handed out so far.
func (st *strategyState) demoteAfter(step int, w *worker) {
	if st.changeAt != nil && st.changeAt[step] {
		w.prio = st.nextLowPrio
		st.nextLowPrio--
	}
}

func workersString(ws []*worker) string {
	s := ""
	for _, w := range ws {
		if s != "" {
			s += ","
		}
		s += fmt.Sprintf("%d", w.idx)
	}
	return s
}
