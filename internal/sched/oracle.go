package sched

import (
	"fmt"
	"sort"
	"sync"

	"privstm/internal/heap"
)

// PoisonOracle is the poisoned-memory oracle for reclamation programs
// (CORRECTNESS.md §14): it checks, at every exploration step, that no heap
// extent a live old-snapshot transaction can still reach has been released
// by the reclaimer. The program under test runs the reclaimer in poison
// mode — collection overwrites released words with a sentinel — so
// "released" is directly observable in memory: a watched word equal to the
// sentinel, or no longer equal to the committed value it held when the
// watch began (reuse zeroes or rewrites it), is a use-after-reclaim.
//
// Protocol: a worker calls Watch when an extent enters the danger window —
// it has been retired while a transaction that began before the retire
// stamp is still incomplete and holds the extent's address — and Unwatch
// when the holder performs its last access (before it leaves the
// incomplete-transaction tracker: after leaving, reclamation is fair
// game). Install Check as the program's Config.OnStep/AtEnd; the explorer
// invokes it with every worker suspended, so the loads race nothing.
type PoisonOracle struct {
	h        *heap.Heap
	sentinel heap.Word

	mu      sync.Mutex
	watched map[string]watchedExtent
}

type watchedExtent struct {
	addr heap.Addr
	n    int
	vals []heap.Word // committed values at Watch time
}

// NewPoisonOracle builds an oracle over h. sentinel is the reclaimer's
// poison pattern (reclaim.Poison; passed in as a value so sched stays
// independent of the reclaim package).
func NewPoisonOracle(h *heap.Heap, sentinel heap.Word) *PoisonOracle {
	return &PoisonOracle{h: h, sentinel: sentinel, watched: make(map[string]watchedExtent)}
}

// Watch starts guarding the n-word extent at a under label: until Unwatch,
// its words must keep the committed values they hold now.
func (p *PoisonOracle) Watch(label string, a heap.Addr, n int) {
	vals := make([]heap.Word, n)
	for i := 0; i < n; i++ {
		vals[i] = p.h.AtomicLoad(a + heap.Addr(i))
	}
	p.mu.Lock()
	p.watched[label] = watchedExtent{addr: a, n: n, vals: vals}
	p.mu.Unlock()
}

// Unwatch stops guarding the labeled extent (the holder has performed its
// last access).
func (p *PoisonOracle) Unwatch(label string) {
	p.mu.Lock()
	delete(p.watched, label)
	p.mu.Unlock()
}

// Check reports a use-after-reclaim if any watched word has been poisoned
// or otherwise overwritten. Install as Config.OnStep and AtEnd.
func (p *PoisonOracle) Check() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Deterministic iteration so a violation always names the same label.
	labels := make([]string, 0, len(p.watched))
	for l := range p.watched {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		w := p.watched[l]
		for i := 0; i < w.n; i++ {
			got := p.h.AtomicLoad(w.addr + heap.Addr(i))
			if got == w.vals[i] {
				continue
			}
			if got == p.sentinel {
				return fmt.Errorf(
					"use-after-reclaim: extent %q word %d (addr %d) poisoned while a pre-retire transaction can still reach it",
					l, i, w.addr+heap.Addr(i))
			}
			return fmt.Errorf(
				"use-after-reclaim: extent %q word %d (addr %d) = %#x, want committed %#x — reused under a live old-snapshot reader",
				l, i, w.addr+heap.Addr(i), got, w.vals[i])
		}
	}
	return nil
}
