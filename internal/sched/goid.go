package sched

import "runtime"

// goid returns the calling goroutine's ID, parsed from the runtime.Stack
// header ("goroutine N [running]:"). The runtime offers no public
// accessor; the explorer needs one because the failpoint global hook is
// invoked on whatever goroutine evaluated the point, and must map it back
// to a registered worker (or pass the evaluation through). Stack with a
// small buffer and false (current goroutine only) does not stop the world
// and costs well under a microsecond — negligible against a scheduling
// step, and paid only while an exploration is running.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	const prefix = "goroutine "
	if len(s) < len(prefix) {
		return 0
	}
	s = s[len(prefix):]
	var id uint64
	for i := 0; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
		id = id*10 + uint64(s[i]-'0')
	}
	return id
}
