package spin

import (
	"sync/atomic"

	"privstm/internal/failpoint"
)

// Mutex is a test-and-test-and-set spin lock with backoff — the "simple
// spin lock" the paper uses to protect the central transaction list. The
// zero value is unlocked.
type Mutex struct {
	state atomic.Uint32
}

// Lock acquires the mutex, backing off (and eventually yielding) while it
// is contended.
func (m *Mutex) Lock() {
	var b Backoff
	for {
		if m.state.Load() == 0 && m.state.CompareAndSwap(0, 1) {
			return
		}
		// Yield point on the contended path only: lets the schedule
		// explorer suspend a waiter instead of letting it spin against a
		// suspended holder (the uncontended acquire stays hook-free).
		failpoint.Eval(failpoint.SpinMutexWait)
		b.Wait()
	}
}

// TryLock acquires the mutex if it is free, reporting success.
func (m *Mutex) TryLock() bool {
	return m.state.Load() == 0 && m.state.CompareAndSwap(0, 1)
}

// Unlock releases the mutex. Calling Unlock on an unlocked Mutex is a bug;
// it panics to surface the programming error.
func (m *Mutex) Unlock() {
	if m.state.Swap(0) != 1 {
		panic("spin: Unlock of unlocked Mutex")
	}
}
