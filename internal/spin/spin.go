// Package spin provides spin-wait utilities tuned for hosts with few
// hardware threads.
//
// The paper's experiments ran on a 32-way Niagara where pure spinning is
// cheap. Under the Go runtime on small machines, a goroutine that spins
// without yielding can starve the very transaction it is waiting for, so
// every wait loop in this repository uses Backoff: brief busy spinning,
// then cooperative yielding, then exponentially growing sleeps.
package spin

import (
	"runtime"
	"time"
)

// Backoff implements truncated exponential backoff with yielding.
// The zero value is ready to use.
type Backoff struct {
	attempts int
}

const (
	busySpins  = 8    // iterations of pure spinning before yielding
	yieldSpins = 16   // iterations of Gosched before sleeping
	maxSleepUS = 1024 // cap for the sleep phase, microseconds
)

// Wait performs one backoff step. Callers invoke it once per failed
// attempt of the guarded condition.
func (b *Backoff) Wait() {
	switch {
	case b.attempts < busySpins:
		// Busy loop proportional to attempt count. The loop body is
		// deliberately trivial; its only purpose is to burn a few cycles
		// without a syscall.
		for i := 0; i < 1<<uint(b.attempts); i++ {
			spinHint()
		}
	case b.attempts < busySpins+yieldSpins:
		runtime.Gosched()
	default:
		exp := b.attempts - busySpins - yieldSpins
		us := 1 << uint(min(exp, 8))
		if us > maxSleepUS {
			us = maxSleepUS
		}
		time.Sleep(time.Duration(us) * time.Microsecond)
	}
	b.attempts++
}

// Reset clears the backoff so the next Wait starts from the cheap phase.
func (b *Backoff) Reset() { b.attempts = 0 }

// Skip advances the schedule by n steps without waiting, so a caller that
// knows its turn is far away starts directly in the yield/sleep phases.
func (b *Backoff) Skip(n int) {
	if n > 0 {
		b.attempts += n
	}
}

// Attempts reports how many times Wait has been called since the last
// Reset. Tests use it to verify phase progression.
func (b *Backoff) Attempts() int { return b.attempts }

//go:noinline
func spinHint() {}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Until spins with backoff until cond returns true. It is a convenience
// for wait loops with no early-exit needs.
func Until(cond func() bool) {
	var b Backoff
	for !cond() {
		b.Wait()
	}
}
