// Package spin provides spin-wait utilities tuned for hosts with few
// hardware threads.
//
// The paper's experiments ran on a 32-way Niagara where pure spinning is
// cheap. Under the Go runtime on small machines, a goroutine that spins
// without yielding can starve the very transaction it is waiting for, so
// every wait loop in this repository uses Backoff: brief busy spinning,
// then cooperative yielding, then exponentially growing sleeps.
package spin

import (
	"runtime"
	"time"
)

// Backoff implements truncated exponential backoff with yielding.
// The zero value is ready to use.
type Backoff struct {
	attempts int

	// sleepCap encodes the sleep-phase policy: 0 is the default 1024µs
	// cap, a positive value bounds individual sleeps to it (SetSleepCap —
	// fence watchdogs lower it once a stall is detected so the wait loop
	// keeps polling at diagnostic frequency), and a negative value means
	// sleeping is disabled entirely (DisableSleep — the sleep phase
	// degrades to cooperative yielding). The three meanings have distinct
	// constructors so "no sleeping" and "default schedule" cannot be
	// conflated through a 0 argument.
	sleepCap time.Duration
}

// sleepDisabled is the sleepCap sentinel installed by DisableSleep.
const sleepDisabled time.Duration = -1

const (
	busySpins  = 8    // iterations of pure spinning before yielding
	yieldSpins = 16   // iterations of Gosched before sleeping
	maxSleepUS = 1024 // cap for the sleep phase, microseconds
)

// Phase identifies which backoff regime the next Wait call will use.
type Phase int

// The backoff phases, in escalation order.
const (
	PhaseBusy  Phase = iota // pure spinning
	PhaseYield              // cooperative Gosched
	PhaseSleep              // timed sleeps
)

// Phase reports the regime the next Wait will run in.
func (b *Backoff) Phase() Phase {
	switch {
	case b.attempts < busySpins:
		return PhaseBusy
	case b.attempts < busySpins+yieldSpins:
		return PhaseYield
	default:
		return PhaseSleep
	}
}

// Wait performs one backoff step. Callers invoke it once per failed
// attempt of the guarded condition.
func (b *Backoff) Wait() {
	switch {
	case b.attempts < busySpins:
		// Busy loop proportional to attempt count. The loop body is
		// deliberately trivial; its only purpose is to burn a few cycles
		// without a syscall.
		for i := 0; i < 1<<uint(b.attempts); i++ {
			spinHint()
		}
	case b.attempts < busySpins+yieldSpins:
		runtime.Gosched()
	default:
		if b.sleepCap < 0 {
			runtime.Gosched()
		} else {
			time.Sleep(b.sleep())
		}
	}
	b.attempts++
}

// sleep computes the next sleep-phase duration, honouring the cap.
func (b *Backoff) sleep() time.Duration {
	exp := b.attempts - busySpins - yieldSpins
	us := 1 << uint(min(exp, 10))
	if us > maxSleepUS {
		us = maxSleepUS
	}
	d := time.Duration(us) * time.Microsecond
	if b.sleepCap > 0 && d > b.sleepCap {
		d = b.sleepCap
	}
	return d
}

// SetSleepCap bounds individual sleep-phase waits to d. d must be positive:
// to restore the default 1024µs cap call ResetSleepCap, and to forbid
// sleeping entirely call DisableSleep — a non-positive d is treated as
// ResetSleepCap so legacy SetSleepCap(0) callers keep the behavior they had,
// but new code should say which of the two it means. Reset does not clear
// the cap.
func (b *Backoff) SetSleepCap(d time.Duration) {
	if d <= 0 {
		d = 0
	}
	b.sleepCap = d
}

// ResetSleepCap restores the default sleep schedule (the 1024µs cap),
// undoing any earlier SetSleepCap or DisableSleep.
func (b *Backoff) ResetSleepCap() { b.sleepCap = 0 }

// DisableSleep forbids timed sleeps: the sleep phase degrades to
// cooperative yielding (runtime.Gosched), so the backoff never parks the
// goroutine in the kernel. Undone by ResetSleepCap or SetSleepCap.
func (b *Backoff) DisableSleep() { b.sleepCap = sleepDisabled }

// SleepCap returns the configured sleep-phase bound: 0 = default cap,
// positive = explicit cap, negative = sleeping disabled (DisableSleep).
func (b *Backoff) SleepCap() time.Duration { return b.sleepCap }

// Reset clears the backoff so the next Wait starts from the cheap phase.
func (b *Backoff) Reset() { b.attempts = 0 }

// Skip advances the schedule by n steps without waiting, so a caller that
// knows its turn is far away starts directly in the yield/sleep phases.
func (b *Backoff) Skip(n int) {
	if n > 0 {
		b.attempts += n
	}
}

// Attempts reports how many times Wait has been called since the last
// Reset. Tests use it to verify phase progression.
func (b *Backoff) Attempts() int { return b.attempts }

//go:noinline
func spinHint() {}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Until spins with backoff until cond returns true. It is a convenience
// for wait loops with no early-exit needs.
func Until(cond func() bool) {
	var b Backoff
	for !cond() {
		b.Wait()
	}
}
