package spin

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffPhases(t *testing.T) {
	var b Backoff
	if b.Attempts() != 0 {
		t.Fatal("zero value should start at 0 attempts")
	}
	start := time.Now()
	for i := 0; i < busySpins+yieldSpins; i++ {
		b.Wait()
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("busy+yield phases took %v", d)
	}
	if b.Attempts() != busySpins+yieldSpins {
		t.Errorf("Attempts = %d", b.Attempts())
	}
	// The sleep phase must actually sleep.
	start = time.Now()
	b.Wait()
	if d := time.Since(start); d < time.Microsecond {
		t.Logf("sleep phase returned in %v (scheduler-dependent)", d)
	}
	b.Reset()
	if b.Attempts() != 0 {
		t.Error("Reset did not clear attempts")
	}
}

func TestPhaseProgression(t *testing.T) {
	var b Backoff
	for i := 0; i < busySpins+yieldSpins+4; i++ {
		want := PhaseSleep
		switch {
		case i < busySpins:
			want = PhaseBusy
		case i < busySpins+yieldSpins:
			want = PhaseYield
		}
		if got := b.Phase(); got != want {
			t.Fatalf("attempt %d: Phase = %v, want %v", i, got, want)
		}
		b.Skip(1) // advance without actually sleeping
	}
	b.Reset()
	if b.Phase() != PhaseBusy {
		t.Error("Reset did not return to the busy phase")
	}
}

func TestSleepCapClampsSleepPhase(t *testing.T) {
	var b Backoff
	b.Skip(busySpins + yieldSpins + 20) // deep into the sleep phase
	if d := b.sleep(); d != maxSleepUS*time.Microsecond {
		t.Fatalf("uncapped deep sleep = %v, want %v", d, maxSleepUS*time.Microsecond)
	}
	b.SetSleepCap(64 * time.Microsecond)
	if got := b.SleepCap(); got != 64*time.Microsecond {
		t.Fatalf("SleepCap = %v", got)
	}
	if d := b.sleep(); d != 64*time.Microsecond {
		t.Fatalf("capped sleep = %v, want 64µs", d)
	}
	// The cap bounds, it does not inflate: early sleep-phase waits shorter
	// than the cap are unaffected.
	b.Reset()
	b.Skip(busySpins + yieldSpins) // first sleep step: 1µs
	if d := b.sleep(); d != time.Microsecond {
		t.Fatalf("first capped sleep = %v, want 1µs", d)
	}
	// Reset must not clear the cap (the watchdog relies on this).
	if b.SleepCap() != 64*time.Microsecond {
		t.Fatal("Reset cleared the sleep cap")
	}
	b.SetSleepCap(0)
	b.Skip(20)
	if d := b.sleep(); d != maxSleepUS*time.Microsecond {
		t.Fatalf("after clearing cap, sleep = %v, want default max", d)
	}
}

func TestDisableSleepNeverSleeps(t *testing.T) {
	var b Backoff
	b.DisableSleep()
	if got := b.SleepCap(); got >= 0 {
		t.Fatalf("SleepCap after DisableSleep = %v, want negative sentinel", got)
	}
	b.Skip(busySpins + yieldSpins + 20) // deep into the sleep phase
	// 200 sleep-phase waits at the default schedule would park for ~200ms;
	// with sleeping disabled they are all Gosched and finish near-instantly.
	start := time.Now()
	for i := 0; i < 200; i++ {
		b.Wait()
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("sleep-disabled waits took %v — Wait still sleeps", d)
	}
	// Reset keeps the policy (like SetSleepCap); ResetSleepCap undoes it.
	b.Reset()
	if b.SleepCap() >= 0 {
		t.Fatal("Reset cleared DisableSleep")
	}
	b.ResetSleepCap()
	if b.SleepCap() != 0 {
		t.Fatal("ResetSleepCap did not restore the default schedule")
	}
}

func TestResetSleepCapRestoresDefault(t *testing.T) {
	var b Backoff
	b.SetSleepCap(64 * time.Microsecond)
	b.ResetSleepCap()
	b.Skip(busySpins + yieldSpins + 20)
	if d := b.sleep(); d != maxSleepUS*time.Microsecond {
		t.Fatalf("after ResetSleepCap, sleep = %v, want default max", d)
	}
	// Legacy ambiguity pinned: a non-positive SetSleepCap argument means
	// "default schedule", never "no sleeping".
	b.DisableSleep()
	b.SetSleepCap(0)
	if b.SleepCap() != 0 {
		t.Fatalf("SetSleepCap(0) left cap %v, want default 0", b.SleepCap())
	}
	b.DisableSleep()
	b.SetSleepCap(-time.Microsecond)
	if b.SleepCap() != 0 {
		t.Fatalf("SetSleepCap(-1µs) left cap %v, want default 0", b.SleepCap())
	}
}

func TestUntil(t *testing.T) {
	var flag atomic.Bool
	go func() {
		time.Sleep(5 * time.Millisecond)
		flag.Store(true)
	}()
	Until(flag.Load)
	if !flag.Load() {
		t.Fatal("Until returned before the condition held")
	}
}

func TestMutexExclusion(t *testing.T) {
	var m Mutex
	var inside, total atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				m.Lock()
				if inside.Add(1) != 1 {
					t.Error("mutual exclusion violated")
				}
				total.Add(1)
				inside.Add(-1)
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if total.Load() != 16000 {
		t.Errorf("total = %d", total.Load())
	}
}

func TestMutexTryLock(t *testing.T) {
	var m Mutex
	if !m.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if m.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	m.Unlock()
}

func TestUnlockOfUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Unlock of unlocked mutex did not panic")
		}
	}()
	var m Mutex
	m.Unlock()
}
