package spin

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffPhases(t *testing.T) {
	var b Backoff
	if b.Attempts() != 0 {
		t.Fatal("zero value should start at 0 attempts")
	}
	start := time.Now()
	for i := 0; i < busySpins+yieldSpins; i++ {
		b.Wait()
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("busy+yield phases took %v", d)
	}
	if b.Attempts() != busySpins+yieldSpins {
		t.Errorf("Attempts = %d", b.Attempts())
	}
	// The sleep phase must actually sleep.
	start = time.Now()
	b.Wait()
	if d := time.Since(start); d < time.Microsecond {
		t.Logf("sleep phase returned in %v (scheduler-dependent)", d)
	}
	b.Reset()
	if b.Attempts() != 0 {
		t.Error("Reset did not clear attempts")
	}
}

func TestUntil(t *testing.T) {
	var flag atomic.Bool
	go func() {
		time.Sleep(5 * time.Millisecond)
		flag.Store(true)
	}()
	Until(flag.Load)
	if !flag.Load() {
		t.Fatal("Until returned before the condition held")
	}
}

func TestMutexExclusion(t *testing.T) {
	var m Mutex
	var inside, total atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				m.Lock()
				if inside.Add(1) != 1 {
					t.Error("mutual exclusion violated")
				}
				total.Add(1)
				inside.Add(-1)
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if total.Load() != 16000 {
		t.Errorf("total = %d", total.Load())
	}
}

func TestMutexTryLock(t *testing.T) {
	var m Mutex
	if !m.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if m.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	m.Unlock()
}

func TestUnlockOfUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Unlock of unlocked mutex did not panic")
		}
	}()
	var m Mutex
	m.Unlock()
}
