// Package failpoint is a stdlib-only fault-injection registry for the STM
// runtime. Named evaluation points are threaded through the critical windows
// the privatization proofs reason about (the catalog below); tests arm a
// point with a hook — delay, yield, stall-until-signaled, forced abort,
// panic — to turn the probabilistic races of the paper's §I (delayed
// cleanup, doomed transactions) into deterministic schedules.
//
// The same evaluation points double as the *yield points* of the
// deterministic schedule explorer (internal/sched): SetGlobal installs a
// hook that fires on every Eval regardless of name, which the explorer's
// controller uses to suspend the calling goroutine and hand the processor
// to the next worker in the schedule under test. The yield-point catalog —
// every site compiled into the runtime — is documented in CORRECTNESS.md
// §11.
//
// Production cost is one atomic pointer load and a nil check per Eval: the
// registry pointer is nil until the first Set or SetGlobal, and Reset
// returns it to nil. A pinned test (TestEvalDisabledAllocates0) and
// BenchmarkEvalDisabled keep the disabled path allocation-free.
package failpoint

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Catalog of the injection points compiled into the runtime. Each constant
// names the invariant window it sits in; CORRECTNESS.md §9 lists the proof
// each point lets tests attack.
const (
	// BeginEnteredBeforePublish fires between central-list registration and
	// the publication that makes the transaction observable (activity word,
	// visibility hints): pvr.Begin, pvr.goVisible, hybrid.maybeGoVisible.
	// Window: fences must already cover a transaction whose registration is
	// complete even though its hints are not yet visible.
	BeginEnteredBeforePublish = "core/begin/entered-before-publish"
	// AcquiredBeforeWriteback fires between ownership acquisition and the
	// data write: the in-place store of pvr.Write, and the redo-log
	// write-back of the tl2/ord/val/hybrid commits. Window: ownership must
	// exclude every conflicting access for the whole acquire→write span.
	AcquiredBeforeWriteback = "core/commit/acquired-before-writeback"
	// CommitBeforeFence fires after a writer's commit point (clock tick,
	// release, list departure) and before it enters its privatization or
	// validation fence. Window: the fence must still drain every reader the
	// commit-time scan saw, however late the writer arrives at it.
	CommitBeforeFence = "core/commit/before-fence"
	// UndoMidRollback fires before each pre-image restore of an undo-log
	// rollback. Window: an aborted transaction must stay on the central
	// list (and keep orec ownership) until its cleanup completes — the
	// delayed-cleanup failure mode of §I.
	UndoMidRollback = "core/rollback/mid-undo"
	// FencePrivWait and FenceValWait fire once per poll round inside the
	// privatization and validation fence wait loops. Window: the fences'
	// own liveness — the stall watchdog is tested through these.
	FencePrivWait = "core/fence/privatization-wait"
	FenceValWait  = "core/fence/validation-wait"

	// --- Yield-point generalization (schedule exploration) ---
	//
	// The sites below were added for internal/sched: each names a step of
	// the protocols whose orderings the paper's proofs constrain, so the
	// explorer can suspend a worker at every point where another worker's
	// interleaving could matter. They are ordinary failpoints — tests may
	// arm them individually too.

	// OrecAcquired fires immediately after a writer wins ownership of an
	// orec, before any data write under that ownership.
	OrecAcquired = "core/orec/acquired"
	// OrecRelease fires before each orec ownership release or restore
	// (commit-time ReleaseAll, abort-time RestoreAll).
	OrecRelease = "core/orec/release"
	// RedoWriteBackWord fires before each word of a redo-log write-back,
	// exposing the partially-written window of the buffered-update engines.
	RedoWriteBackWord = "core/commit/writeback-word"
	// FenceEnter and FenceExit bracket both fences, so schedules can
	// order other workers' steps against fence entry and release.
	FenceEnter = "core/fence/enter"
	FenceExit  = "core/fence/exit"
	// TrackerEnter, TrackerEnterAt and TrackerLeave fire right after a
	// transaction registers on (or deregisters from) the incomplete-
	// transaction tracker — the central-list transitions of §II-C.
	TrackerEnter   = "core/txnlist/enter"
	TrackerEnterAt = "core/txnlist/enter-at"
	TrackerLeave   = "core/txnlist/leave"
	// GraceRaise and GraceLower fire at the top of the §III-A grace-period
	// adapters (reader-side raise, writer-side lower).
	GraceRaise = "core/grace/raise"
	GraceLower = "core/grace/lower"
	// VisStoreWait fires once per poll of the §III-B store protocol's
	// curr_reader wait loop.
	VisStoreWait = "core/vis/store-wait"
	// SpinMutexWait fires once per contended iteration of spin.Mutex.Lock,
	// so a worker waiting on a spin lock yields to the explorer instead of
	// spinning against a suspended holder.
	SpinMutexWait = "spin/mutex/wait"
	// OrderWait fires once per poll of the §IV ordering locks' wait loops
	// (ticket and CLH queue).
	OrderWait = "ticket/order/wait"
	// CombineWait fires once per poll of a flat-combining committer waiting
	// to be served — by a leader (state → done) or by the ticket lock
	// (self-service). A worker parked here needs the current leader (or the
	// preceding ticket holders) to run.
	CombineWait = "ticket/combine/wait"
	// SlotsEnterAtLower fires inside txnlist.Slots.EnterAt between the
	// joiner's slot store and the watermark-cache check.
	SlotsEnterAtLower = "txnlist/watermark/enter-at-lower"
	// SlotsScanPublish fires in txnlist.Slots' oldest-begin recompute
	// around the scan-and-publish step (between scan and publish in the
	// privstm_watermark_race build that reverts the PR-2 locking fix; just
	// before the locked section otherwise).
	SlotsScanPublish = "txnlist/watermark/scan-publish"
	// CMWait fires before the contention-management wait between retry
	// attempts of an aborted transaction. It is a wait site: an aborted
	// transaction is effectively polling for its rival to get out of the
	// way, and a scheduler that kept granting it (each retry looks like
	// progress) would starve the suspended rival forever.
	CMWait = "core/retry/cm-wait"

	// --- Epoch-based reclamation (internal/reclaim, CORRECTNESS.md §14) ---

	// ReclaimRetire fires at the top of Reclaimer.Retire, before the extent
	// is stamped into the limbo list. Window: an old-snapshot reader that
	// captured the extent's address before the unlink must be able to keep
	// reading the quarantined words unharmed for the whole retire→collect
	// span.
	ReclaimRetire = "reclaim/retire"
	// ReclaimCollect fires once per extent a collection pass is about to
	// release, between the epoch check and the poison/free step. Window:
	// the watermark sampled by the pass must still cover every incomplete
	// transaction that could reach the extent when the free lands.
	ReclaimCollect = "reclaim/collect"
	// HeapReuse fires in heap.Alloc when an extent is served from the free
	// list, before it is zeroed and returned. Window: reuse is the step
	// that turns an epoch bug into a user-visible torn read — the explorer
	// orders other workers' steps against it.
	HeapReuse = "heap/alloc/reuse"

	// --- Abstract locks / semantic conflict detection (internal/tds,
	// CORRECTNESS.md §15) ---

	// SemAcquired fires after a committing writer wins one abstract-lock
	// stripe, before it acquires the next or validates its sampled stripes.
	// Window: stripes must exclude every conflicting semantic commit for the
	// whole acquire→release span, exactly like orecs.
	SemAcquired = "core/sem/acquired"
	// SemRelease fires before each abstract-lock stripe release or delta
	// bump in SemPostCommit. Window: the version bump must be observable to
	// any transaction that can observe the committed data (bump-before-
	// visibility: SemPostCommit runs while the word orecs are still owned).
	SemRelease = "core/sem/release"
	// SemQuiesceWait fires once per poll of the weak-reader quiescence wait
	// (Thread.WeakQuiesce): the privatizing thread is waiting for every
	// tracked transaction that began before its commit to complete.
	SemQuiesceWait = "core/sem/quiesce-wait"
)

// waitSites is the set of points that sit inside wait/poll loops: a worker
// suspended there is re-polling a condition some other worker must change.
// The schedule explorer deprioritizes workers yielding at these sites so a
// spin loop cannot monopolize the schedule. Kept here, next to the catalog,
// so a new wait loop's site cannot be forgotten in a second list.
var waitSites = map[string]bool{
	FencePrivWait: true,
	FenceValWait:  true,
	VisStoreWait:  true,
	SpinMutexWait: true,
	OrderWait:     true,
	CombineWait:   true,
	CMWait:        true,

	SemQuiesceWait: true,
}

// IsWaitSite reports whether name is a wait-loop yield point (see
// waitSites).
func IsWaitSite(name string) bool { return waitSites[name] }

// Func is a hook invoked when an armed point is evaluated; it receives the
// point's name so one hook can serve several points.
type Func func(name string)

// Abort is the panic value raised by ForceAbort hooks. core.Run recognizes
// it and converts the unwind into an ordinary abort-and-retry (the engine's
// Cancel cleans up), so tests can force a transaction to lose any number of
// attempts without fabricating real conflicts.
type Abort struct {
	// Point is the name of the failpoint that raised the abort.
	Point string
}

// point is one armed failpoint.
type point struct {
	fn   Func
	hits atomic.Uint64
}

// registry is the set of armed points. It is reached through an atomic
// pointer so that the disabled state is literally a nil pointer.
type registry struct {
	mu  sync.Mutex
	pts map[string]*point
	// global, when non-nil, is invoked for every evaluated point before
	// any per-name hook — the schedule explorer's yield hook.
	global Func
}

var reg atomic.Pointer[registry]

// Eval evaluates the named point: in production (nothing armed, the normal
// state) it is an atomic load and a nil check; with the registry armed it
// runs the point's hook, if any.
func Eval(name string) {
	r := reg.Load()
	if r == nil {
		return
	}
	r.eval(name)
}

func (r *registry) eval(name string) {
	r.mu.Lock()
	g := r.global
	p := r.pts[name]
	r.mu.Unlock()
	if g != nil {
		g(name)
	}
	if p == nil {
		return
	}
	p.hits.Add(1)
	if p.fn != nil {
		p.fn(name)
	}
}

// Set arms the named point with hook fn. Points persist until Disable or
// Reset; re-setting replaces the hook and zeroes the hit count.
func Set(name string, fn Func) {
	for {
		if r := reg.Load(); r != nil {
			r.mu.Lock()
			r.pts[name] = &point{fn: fn}
			r.mu.Unlock()
			return
		}
		fresh := &registry{pts: make(map[string]*point)}
		if reg.CompareAndSwap(nil, fresh) {
			fresh.mu.Lock()
			fresh.pts[name] = &point{fn: fn}
			fresh.mu.Unlock()
			return
		}
	}
}

// SetGlobal installs fn as the global yield hook: it is invoked for every
// evaluated point, before any per-name hook, with the point's name. The
// schedule explorer (internal/sched) is the intended caller. Arms the
// registry if it was disabled.
func SetGlobal(fn Func) {
	for {
		if r := reg.Load(); r != nil {
			r.mu.Lock()
			r.global = fn
			r.mu.Unlock()
			return
		}
		fresh := &registry{pts: make(map[string]*point), global: fn}
		if reg.CompareAndSwap(nil, fresh) {
			return
		}
	}
}

// ClearGlobal removes the global yield hook. The registry stays armed (per-
// name points keep working); call Reset to restore the zero-cost state.
func ClearGlobal() {
	if r := reg.Load(); r != nil {
		r.mu.Lock()
		r.global = nil
		r.mu.Unlock()
	}
}

// Disable disarms the named point. Its hit count is kept (Hits still works)
// and the registry stays armed; call Reset to restore the zero-cost state.
func Disable(name string) {
	if r := reg.Load(); r != nil {
		r.mu.Lock()
		if p := r.pts[name]; p != nil {
			p.fn = nil
		}
		r.mu.Unlock()
	}
}

// Reset disarms every point and returns Eval to its nil-check fast path.
// Tests register it as a cleanup: t.Cleanup(failpoint.Reset).
func Reset() { reg.Store(nil) }

// Hits reports how many times the named point has been evaluated since it
// was Set (0 if never armed).
func Hits(name string) uint64 {
	if r := reg.Load(); r != nil {
		r.mu.Lock()
		p := r.pts[name]
		r.mu.Unlock()
		if p != nil {
			return p.hits.Load()
		}
	}
	return 0
}

// Delay returns a hook that sleeps for d on every evaluation.
func Delay(d time.Duration) Func {
	return func(string) { time.Sleep(d) }
}

// YieldN returns a hook that yields the processor n times, opening a window
// for other goroutines without a timed sleep.
func YieldN(n int) Func {
	return func(string) {
		for i := 0; i < n; i++ {
			runtime.Gosched()
		}
	}
}

// ForceAbort returns a hook that panics with Abort; inside a transaction
// core.Run converts it into an abort-and-retry of the attempt.
func ForceAbort() Func {
	return func(name string) { panic(Abort{Point: name}) }
}

// Panic returns a hook that panics with v, for exercising the sandboxing
// and propagation paths of core.Run.
func Panic(v any) Func {
	return func(string) { panic(v) }
}

// Times wraps fn so that exactly the first n evaluations invoke it; later
// evaluations are inert. Safe for concurrent evaluation: the counter is
// claimed with a CAS loop that never goes below zero, so no interleaving of
// concurrent callers — and no number of later calls — can fire fn more than
// n times (a plain saturating decrement could wrap after 2^63 calls).
func Times(n int, fn Func) Func {
	var left atomic.Int64
	left.Store(int64(n))
	return func(name string) {
		for {
			v := left.Load()
			if v <= 0 {
				return
			}
			if left.CompareAndSwap(v, v-1) {
				fn(name)
				return
			}
		}
	}
}

// Stall parks every goroutine that evaluates its hook until Release. Tests
// use it to hold a transaction inside a critical window deterministically:
//
//	st := failpoint.NewStall()
//	failpoint.Set(failpoint.UndoMidRollback, failpoint.Times(1, st.Hook()))
//	... start the victim ...
//	st.WaitArrival() // victim is now parked inside the window
//	... drive the schedule under test ...
//	st.Release()
type Stall struct {
	arrived chan struct{}
	release chan struct{}
}

// NewStall returns a fresh stall gate.
func NewStall() *Stall {
	return &Stall{
		arrived: make(chan struct{}, 1024),
		release: make(chan struct{}),
	}
}

// Hook returns the parking hook.
func (s *Stall) Hook() Func {
	return func(string) {
		select {
		case s.arrived <- struct{}{}:
		default:
		}
		<-s.release
	}
}

// WaitArrival blocks until some goroutine has parked at the stall (each
// arrival is announced once; call again to await another).
func (s *Stall) WaitArrival() { <-s.arrived }

// Release unparks every current and future caller of the hook. Release is
// idempotent-unsafe by design (closing twice panics); call it once.
func (s *Stall) Release() { close(s.release) }
