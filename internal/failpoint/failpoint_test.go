package failpoint

import (
	"sync"
	"testing"
	"time"
)

func TestEvalDisabledAllocates0(t *testing.T) {
	Reset()
	// Acceptance pin: the disabled path must be a nil check — zero
	// allocations per evaluation.
	if n := testing.AllocsPerRun(1000, func() { Eval(CommitBeforeFence) }); n != 0 {
		t.Fatalf("disabled Eval allocated %v times per run, want 0", n)
	}
}

func BenchmarkEvalDisabled(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Eval(CommitBeforeFence)
	}
}

func TestSetDisableResetHits(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	calls := 0
	Set("test/point", func(string) { calls++ })
	Eval("test/point")
	Eval("test/point")
	Eval("other/point") // unarmed: no effect
	if calls != 2 {
		t.Fatalf("hook ran %d times, want 2", calls)
	}
	if got := Hits("test/point"); got != 2 {
		t.Fatalf("Hits = %d, want 2", got)
	}
	if got := Hits("other/point"); got != 0 {
		t.Fatalf("Hits(unarmed) = %d, want 0", got)
	}

	Disable("test/point")
	Eval("test/point") // still counted, hook no longer runs
	if calls != 2 {
		t.Fatalf("disabled hook ran (calls=%d)", calls)
	}
	if got := Hits("test/point"); got != 3 {
		t.Fatalf("Hits after Disable = %d, want 3", got)
	}

	Reset()
	Eval("test/point")
	if got := Hits("test/point"); got != 0 {
		t.Fatalf("Hits after Reset = %d, want 0", got)
	}
}

func TestHookReceivesPointName(t *testing.T) {
	t.Cleanup(Reset)
	var got string
	Set(UndoMidRollback, func(name string) { got = name })
	Eval(UndoMidRollback)
	if got != UndoMidRollback {
		t.Fatalf("hook saw %q, want %q", got, UndoMidRollback)
	}
}

func TestTimes(t *testing.T) {
	t.Cleanup(Reset)
	calls := 0
	Set("test/times", Times(3, func(string) { calls++ }))
	for i := 0; i < 10; i++ {
		Eval("test/times")
	}
	if calls != 3 {
		t.Fatalf("Times(3) ran %d times, want 3", calls)
	}
	if got := Hits("test/times"); got != 10 {
		t.Fatalf("Hits = %d, want 10 (Times counts evaluations, not invocations)", got)
	}
}

func TestTimesConcurrent(t *testing.T) {
	t.Cleanup(Reset)
	var mu sync.Mutex
	calls := 0
	Set("test/times", Times(5, func(string) { mu.Lock(); calls++; mu.Unlock() }))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				Eval("test/times")
			}
		}()
	}
	wg.Wait()
	if calls != 5 {
		t.Fatalf("Times(5) ran %d times under concurrency, want exactly 5", calls)
	}
}

func TestGlobalHook(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	var names []string
	SetGlobal(func(name string) { names = append(names, name) })
	perName := 0
	Set("test/armed", func(string) { perName++ })
	Eval("test/armed")
	Eval("test/unarmed") // global fires even for never-Set names
	if perName != 1 {
		t.Fatalf("per-name hook ran %d times, want 1", perName)
	}
	want := []string{"test/armed", "test/unarmed"}
	if len(names) != len(want) || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("global hook saw %v, want %v", names, want)
	}

	ClearGlobal()
	Eval("test/armed")
	Eval("test/unarmed")
	if len(names) != 2 {
		t.Fatalf("global hook fired after ClearGlobal (saw %v)", names)
	}
	if perName != 2 {
		t.Fatalf("per-name hook broken by ClearGlobal (ran %d times, want 2)", perName)
	}
}

func TestGlobalHookRunsBeforePerName(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	var order []string
	SetGlobal(func(string) { order = append(order, "global") })
	Set("test/order", func(string) { order = append(order, "point") })
	Eval("test/order")
	if len(order) != 2 || order[0] != "global" || order[1] != "point" {
		t.Fatalf("hook order = %v, want [global point]", order)
	}
}

func TestIsWaitSite(t *testing.T) {
	for _, name := range []string{FencePrivWait, FenceValWait, VisStoreWait, SpinMutexWait, OrderWait} {
		if !IsWaitSite(name) {
			t.Errorf("IsWaitSite(%q) = false, want true", name)
		}
	}
	for _, name := range []string{OrecAcquired, CommitBeforeFence, TrackerLeave, "made/up"} {
		if IsWaitSite(name) {
			t.Errorf("IsWaitSite(%q) = true, want false", name)
		}
	}
}

func TestStall(t *testing.T) {
	t.Cleanup(Reset)
	st := NewStall()
	Set("test/stall", st.Hook())
	done := make(chan struct{})
	go func() {
		Eval("test/stall")
		close(done)
	}()
	st.WaitArrival()
	select {
	case <-done:
		t.Fatal("goroutine passed the stall before Release")
	case <-time.After(10 * time.Millisecond):
	}
	st.Release()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("goroutine never released")
	}
}

func TestForceAbortPanicsWithAbort(t *testing.T) {
	t.Cleanup(Reset)
	Set("test/abort", ForceAbort())
	defer func() {
		r := recover()
		a, ok := r.(Abort)
		if !ok {
			t.Fatalf("recovered %T, want Abort", r)
		}
		if a.Point != "test/abort" {
			t.Fatalf("Abort.Point = %q", a.Point)
		}
	}()
	Eval("test/abort")
	t.Fatal("ForceAbort did not panic")
}

func TestDelayAndYield(t *testing.T) {
	t.Cleanup(Reset)
	Set("test/delay", Delay(time.Millisecond))
	start := time.Now()
	Eval("test/delay")
	if e := time.Since(start); e < time.Millisecond {
		t.Fatalf("Delay waited only %v", e)
	}
	Set("test/yield", YieldN(4))
	Eval("test/yield") // just exercise it
}

func TestConcurrentSetEval(t *testing.T) {
	t.Cleanup(Reset)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if g%2 == 0 {
					Set("test/race", func(string) {})
				} else {
					Eval("test/race")
				}
			}
		}(g)
	}
	wg.Wait()
}
