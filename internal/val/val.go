// Package val implements the every-transaction validation fence the paper
// compares against (curve "Val" in §V, from the authors' earlier technical
// report TR 915): a redo-log, commit-time-locking STM in which every
// committing writer, after completing its write-back, waits until every
// concurrent transaction has reached a clean point — it has finished, or it
// began after the writer's commit, or it has revalidated its read set
// against the committed state (and therefore either aborted or provably
// does not conflict).
//
// The fence runs at the end of *every* writer transaction regardless of
// conflicts, which is exactly why Val scales worst on write-heavy
// workloads (§V): its cost is unconditional, where PVR pays only on
// detected conflicts.
package val

import (
	"privstm/internal/core"
	"privstm/internal/failpoint"
	"privstm/internal/heap"
)

// Engine is the validation-fence STM.
type Engine struct {
	rt *core.Runtime
}

// New returns a Val engine on rt.
func New(rt *core.Runtime) *Engine { return &Engine{rt: rt} }

// Name returns the figure label.
func (e *Engine) Name() string { return "Val" }

// Begin samples the clock, arms incremental validation, and publishes the
// begin time as the first clean point (an empty read set is trivially
// valid).
func (e *Engine) Begin(t *core.Thread) {
	t.GateSerialized()
	t.ResetTxnState()
	t.StartSnapshot(e.rt.Clock.Now())
	t.ExtendOK = true
	t.PublishActive(t.BeginTS)
	t.SetValidated(t.BeginTS)
}

// Read is a consistent read followed by the incremental-validation poll;
// each successful poll publishes a new clean point that fencing writers
// observe.
func (e *Engine) Read(t *core.Thread, a heap.Addr) heap.Word {
	if w, ok := t.Redo.Get(a); ok {
		return w
	}
	w := t.ReadHeapConsistent(a)
	t.PollValidate()
	return w
}

// Write buffers the store in the redo log.
func (e *Engine) Write(t *core.Thread, a heap.Addr, w heap.Word) {
	t.Redo.Put(a, w)
	t.Wrote = true
}

// SemanticCommitCapable marks that Commit runs the abstract-lock hooks of
// the semantic conflict layer (core.SemCommitter).
func (e *Engine) SemanticCommitCapable() {}

// Commit runs the TL2-style ordered steps (acquire, abstract locks, tick,
// validate, write back, release) and then executes the validation fence.
func (e *Engine) Commit(t *core.Thread) bool {
	rt := e.rt
	if !t.Wrote {
		if !t.SemPreCommit() {
			t.PublishInactive()
			return false
		}
		t.SemPostCommit()
		t.PublishInactive()
		t.Stats.ReadOnlyCommits++
		return true
	}
	if !t.AcquireWriteSet() {
		t.PublishInactive()
		return false
	}
	failpoint.Eval(failpoint.AcquiredBeforeWriteback)
	if !t.SemPreCommit() {
		t.Acq.RestoreAll()
		t.PublishInactive()
		return false
	}
	wts := t.CommitTS()
	if !t.SkipCommitValidation(wts) && !t.ValidateReads() {
		t.SemAbortRelease()
		t.Acq.RestoreAll()
		t.PublishInactive()
		return false
	}
	t.SemPostCommit()
	t.Redo.WriteBack(rt.Heap)
	t.Acq.ReleaseAll(wts)
	t.PublishInactive()
	t.Stats.WriterCommits++
	failpoint.Eval(failpoint.CommitBeforeFence)
	t.ValidationFence(wts)
	return true
}

// Cancel aborts an in-flight transaction.
func (e *Engine) Cancel(t *core.Thread) {
	t.PublishInactive()
}
