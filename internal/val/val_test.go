package val

import (
	"sync"
	"testing"
	"time"

	"privstm/internal/core"
)

func newRT(t *testing.T) *core.Runtime {
	t.Helper()
	rt, err := core.NewRuntime(core.Options{HeapWords: 1 << 12, OrecCount: 1 << 8, MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestName(t *testing.T) {
	if New(newRT(t)).Name() != "Val" {
		t.Error("name wrong")
	}
}

func TestCommitSemantics(t *testing.T) {
	rt := newRT(t)
	e := New(rt)
	th, _ := rt.NewThread()
	a := rt.Heap.MustAlloc(2)
	if err := core.Run(e, th, func() {
		e.Write(th, a, 11)
		if got := e.Read(th, a); got != 11 {
			t.Errorf("read-your-write = %d", got)
		}
		if rt.Heap.AtomicLoad(a) != 0 {
			t.Error("redo write leaked mid-transaction")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if rt.Heap.AtomicLoad(a) != 11 {
		t.Error("commit did not write back")
	}
}

// TestEveryWriterFences: unlike PVR, Val fences unconditionally — even with
// no conflict at all, a writer commit waits for every concurrent
// transaction to reach a clean point.
func TestEveryWriterFences(t *testing.T) {
	rt := newRT(t)
	e := New(rt)
	w, _ := rt.NewThread()
	r, _ := rt.NewThread()
	a := rt.Heap.MustAlloc(1)
	b := rt.Heap.MustAlloc(1024)
	if rt.Orecs.For(a) == rt.Orecs.For(b+1000) {
		t.Skip("orec collision")
	}

	rIn := make(chan struct{})
	rGo := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = core.Run(e, r, func() {
			_ = e.Read(r, a)
			close(rIn)
			<-rGo
			// One more read: polls the clock, revalidates, publishes a
			// clean point, releasing the writer's fence.
			_ = e.Read(r, a)
		})
	}()
	<-rIn

	committed := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Writes b only — zero overlap with the reader.
		_ = core.Run(e, w, func() { e.Write(w, b+1000, 1) })
		close(committed)
	}()
	select {
	case <-committed:
		t.Fatal("Val writer committed without fencing for the concurrent reader")
	case <-time.After(20 * time.Millisecond):
	}
	close(rGo)
	<-committed
	wg.Wait()
	if w.Stats.Fenced != 1 {
		t.Errorf("Fenced = %d, want 1", w.Stats.Fenced)
	}
}

func TestDoomedReaderAbortsAtFence(t *testing.T) {
	// A doomed reader must observe the conflicting commit at its next read
	// (incremental validation) and abort rather than block the fence.
	rt := newRT(t)
	e := New(rt)
	r, _ := rt.NewThread()
	w, _ := rt.NewThread()
	x := rt.Heap.MustAlloc(1)
	y := rt.Heap.MustAlloc(1)

	// The writer must run concurrently: its unconditional fence waits for
	// the reader, and the reader's abort (via incremental validation at
	// its next read) is what releases the fence — the two resolve each
	// other.
	attempts := 0
	var once sync.Once
	var wg sync.WaitGroup
	if err := core.Run(e, r, func() {
		attempts++
		before := rt.Clock.Now()
		_ = e.Read(r, x)
		once.Do(func() {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = core.Run(e, w, func() { e.Write(w, x, 1) })
			}()
			// Wait until the writer's commit has ticked the clock.
			for rt.Clock.Now() == before {
			}
		})
		_ = e.Read(r, y) // attempt 1: revalidation fails, abort
	}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}
	if w.Stats.Fenced != 1 {
		t.Errorf("writer Fenced = %d, want 1", w.Stats.Fenced)
	}
}

func TestConcurrentCounter(t *testing.T) {
	rt := newRT(t)
	e := New(rt)
	a := rt.Heap.MustAlloc(1)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		th, _ := rt.NewThread()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 250; j++ {
				_ = core.Run(e, th, func() {
					e.Write(th, a, e.Read(th, a)+1)
				})
			}
		}()
	}
	wg.Wait()
	if got := rt.Heap.AtomicLoad(a); got != 1000 {
		t.Errorf("counter = %d, want 1000", got)
	}
}
