package bench

import (
	"fmt"
	"io"
	"sort"

	stm "privstm"
)

// The reclamation-overhead sweep: every engine paired against the legacy
// per-thread free pool on the write-heavy small hashtable — the highest
// free-rate workload in the suite, i.e. the worst case for the epoch
// reclaimer's retire/collect bookkeeping. The A side runs FreePool (the
// pre-reclamation policy), the B side FreeReclaim; pairing interleaves
// same-seed runs so each pair shares its slice of machine conditions (see
// paired.go for why separate runs are useless on this host). Cells carry
// fig ID "rcl".

// RunReclaimSweep measures every algorithm × thread count with RunPaired:
// baseline = legacy pool, candidate = epoch reclaimer. It returns the pool
// baselines and reclaim candidates, all tagged fig "rcl". The printed
// median column is the acceptance number: the per-pair median throughput
// delta of reclaim vs pool.
func RunReclaimSweep(w io.Writer, hc HarnessConfig, algos []stm.Algorithm, pairs int) (base, cand []*Measurement, err error) {
	hc.fill()
	if len(algos) == 0 {
		algos = StandardCurves
	}
	if pairs <= 0 {
		pairs = 3
	}
	spec := Hashtable(64, 64)
	mix := WriteHeavy

	fmt.Fprintf(w, "Reclamation overhead sweep (paired pool vs epoch-reclaim): %s, mix %s, %d pairs/cell\n",
		spec.Name, mix, pairs)
	fmt.Fprintf(w, "%-16s %7s %12s %12s %8s %12s\n",
		"algorithm", "threads", "pool ops/s", "rcl ops/s", "median", "collects")

	var cellMedians []float64
	for _, alg := range algos {
		for _, th := range hc.Threads {
			rcBase := RunConfig{
				Algorithm: alg, Threads: th, Mix: mix,
				TxnsPerThread: hc.TxnsPerThread, Duration: hc.Duration, Seed: hc.Seed,
				Tracker: hc.Tracker, DisableExtension: hc.DisableExtension,
				CM: hc.CM, MaxAttempts: hc.MaxAttempts,
				OrecLayout: hc.OrecLayout, DisableHintCache: hc.DisableHintCache,
				Clock: hc.Clock, OrderBatch: hc.OrderBatch,
				Free: FreePool, DisableSandbox: hc.DisableSandbox,
			}
			rcCand := rcBase
			rcCand.Free = FreeReclaim
			pr, err := RunPaired(spec, rcBase, rcCand, pairs)
			if err != nil {
				return nil, nil, err
			}
			pr.A.Fig, pr.B.Fig = "rcl", "rcl"
			// Tag the pool side so its cell key never collides with the
			// reclaim side in Compare (both run the same engine/threads).
			pr.A.Workload += " pool"
			base = append(base, pr.A)
			cand = append(cand, pr.B)
			cellMedians = append(cellMedians, pr.MedianPct)
			fmt.Fprintf(w, "%-16s %7d %12.0f %12.0f %+7.1f%% %12d\n",
				alg, th, pr.A.Throughput, pr.B.Throughput, pr.MedianPct, pr.B.ReclaimCollects)
		}
	}
	// The acceptance summary: the median cell's paired delta. Individual
	// cells on a timesharing host swing well past the true cost (the
	// multiprogrammed thread counts especially), so the cross-cell median
	// is the stable number to hold against the <5% budget.
	sort.Float64s(cellMedians)
	if n := len(cellMedians); n > 0 {
		agg := cellMedians[n/2]
		if n%2 == 0 {
			agg = (cellMedians[n/2-1] + cellMedians[n/2]) / 2
		}
		fmt.Fprintf(w, "aggregate median across %d cells: %+.1f%%\n", n, agg)
	}
	fmt.Fprintln(w)
	return base, cand, nil
}
