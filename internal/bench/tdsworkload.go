package bench

import (
	"fmt"
	"sync/atomic"

	stm "privstm"
	"privstm/internal/rng"
	"privstm/internal/tds"
	"privstm/tlib"
)

// The mixed map+queue workload behind `stmbench -tdssweep`: a
// producer/consumer cell that exercises semantic conflict detection where
// it should pay off. Under the paper's 40/40/20 mix the percentages are
// reinterpreted as map-RMW / queue-op / map-lookup:
//
//   - InsertPct:  a mutation of a (Zipf-skewed) map key — 3/4 read-modify-
//     write increments, 1/4 deletes. The delete/re-insert churn keeps hot
//     buckets structurally unstable, which is exactly the false-conflict
//     source key-level abstract locks exist to kill: a word-level map walk
//     logs every chain pointer it crosses, so churn on ANY key in the
//     bucket aborts it, while the tds walk reads weakly and conflicts only
//     on its own key's stripe;
//   - DeletePct:  a coin-flip queue push or pop — the counter-shaped ops
//     whose size updates commute and skip validation;
//   - remainder:  a plain map lookup.
//
// Both implementations run the identical operation plan: mixedInstance owns
// the RNG consumption and op shape, and a two-method-set backend supplies
// either the semantic structures (internal/tds) or their word-level
// baselines (tlib, where every queue op serializes on the size word and
// every map op conflicts at bucket granularity). That keeps paired A/B runs
// (RunPairedSpecs) executing the same key/value streams on both sides.
type mixedBackend interface {
	mapGet(tx *stm.Tx, k stm.Word) (stm.Word, bool)
	mapPut(tx *stm.Tx, k, v stm.Word)
	mapDel(tx *stm.Tx, k stm.Word) bool
	mapLen(tx *stm.Tx) int
	qPush(tx *stm.Tx, v stm.Word) bool
	qPop(tx *stm.Tx) (stm.Word, bool)
	qLen(tx *stm.Tx) int
}

type mixedInstance struct {
	b    mixedBackend
	keys int

	// Conservation ledger, updated only after the owning op's transaction
	// committed. The audit in Check replays against these.
	incrs      atomic.Uint64 // committed map increments
	deletedSum atomic.Uint64 // value mass destroyed by committed deletes
	pushes     atomic.Uint64
	pops       atomic.Uint64
	pushedSum  atomic.Uint64
	poppedSum  atomic.Uint64

	// Per-structure abort attribution (structStatser).
	mapOps    atomic.Uint64
	mapAborts atomic.Uint64
	qOps      atomic.Uint64
	qAborts   atomic.Uint64

	// auditTh is any worker's thread, stashed during Op so the post-run
	// Check (which has no thread of its own — MaxThreads is exactly the
	// worker count) can run single-threaded audit transactions.
	auditTh atomic.Pointer[stm.Thread]
}

// Op runs one operation; see the package comment for the mix meaning.
func (mi *mixedInstance) Op(ctx *OpCtx, mix Mix) {
	mi.auditTh.CompareAndSwap(nil, ctx.Th)
	p := ctx.RNG.Pct()
	before := ctx.Th.Stats().Aborts
	switch {
	case p < mix.InsertPct: // map mutation: 3/4 increment, 1/4 delete
		k := stm.Word(ctx.Key(mi.keys))
		if ctx.RNG.Intn(4) == 0 {
			var gone stm.Word
			_ = ctx.Th.Atomic(func(tx *stm.Tx) {
				gone, _ = mi.b.mapGet(tx, k)
				if !mi.b.mapDel(tx, k) {
					gone = 0
				}
			})
			mi.deletedSum.Add(uint64(gone))
		} else {
			_ = ctx.Th.Atomic(func(tx *stm.Tx) {
				v, _ := mi.b.mapGet(tx, k)
				mi.b.mapPut(tx, k, v+1)
			})
			mi.incrs.Add(1)
		}
		mi.mapOps.Add(1)
		mi.mapAborts.Add(ctx.Th.Stats().Aborts - before)
	case p < mix.InsertPct+mix.DeletePct: // queue producer/consumer
		if ctx.RNG.Intn(2) == 0 {
			v := stm.Word(ctx.RNG.Intn(1 << 16))
			pushed := false
			_ = ctx.Th.Atomic(func(tx *stm.Tx) {
				pushed = mi.b.qPush(tx, v)
			})
			if pushed {
				mi.pushes.Add(1)
				mi.pushedSum.Add(uint64(v))
			}
		} else {
			var v stm.Word
			took := false
			_ = ctx.Th.Atomic(func(tx *stm.Tx) {
				v, took = mi.b.qPop(tx)
			})
			if took {
				mi.pops.Add(1)
				mi.poppedSum.Add(uint64(v))
			}
		}
		mi.qOps.Add(1)
		mi.qAborts.Add(ctx.Th.Stats().Aborts - before)
	default: // map lookup
		k := stm.Word(ctx.Key(mi.keys))
		_ = ctx.Th.Atomic(func(tx *stm.Tx) {
			_, _ = mi.b.mapGet(tx, k)
		})
		mi.mapOps.Add(1)
		mi.mapAborts.Add(ctx.Th.Stats().Aborts - before)
	}
}

// StructStats attributes ops and aborts to the structure that incurred them.
func (mi *mixedInstance) StructStats() map[string]StructStat {
	return map[string]StructStat{
		"map":   {Ops: mi.mapOps.Load(), Aborts: mi.mapAborts.Load()},
		"queue": {Ops: mi.qOps.Load(), Aborts: mi.qAborts.Load()},
	}
}

var errMixedAudit = fmt.Errorf("mixed audit rollback")

// Check validates conservation after the workers join: the map's value sum
// equals the committed increment count, and the queue's length and element
// sum match the push/pop ledger. The queue is drained inside a canceled
// transaction so the structure survives for Size/Dump.
func (mi *mixedInstance) Check(s *stm.STM) error {
	th := mi.auditTh.Load()
	if th == nil {
		return nil // no ops ran
	}
	var (
		sum     uint64
		present int
		mlen    int
		qlen    int
		qsum    uint64
		drained int
	)
	if err := th.Atomic(func(tx *stm.Tx) {
		sum, present = 0, 0
		for k := 0; k < mi.keys; k++ {
			if v, ok := mi.b.mapGet(tx, stm.Word(k)); ok {
				sum += uint64(v)
				present++
			}
		}
		mlen = mi.b.mapLen(tx)
	}); err != nil {
		return err
	}
	if err := th.Atomic(func(tx *stm.Tx) {
		qlen = mi.b.qLen(tx)
		qsum, drained = 0, 0
		for {
			v, ok := mi.b.qPop(tx)
			if !ok {
				break
			}
			qsum += uint64(v)
			drained++
		}
		tx.Cancel(errMixedAudit)
	}); err != errMixedAudit {
		return fmt.Errorf("audit drain: expected rollback, got %v", err)
	}
	if want := mi.incrs.Load() - mi.deletedSum.Load(); sum != want {
		return fmt.Errorf("map value sum %d, increments minus deleted mass %d", sum, want)
	}
	if mlen != present {
		return fmt.Errorf("map Len %d, keys present %d", mlen, present)
	}
	want := int(mi.pushes.Load()) - int(mi.pops.Load())
	if qlen != want {
		return fmt.Errorf("queue Len %d, pushes-pops %d", qlen, want)
	}
	if drained != want {
		return fmt.Errorf("queue drained %d elements, ledger says %d", drained, want)
	}
	if qsum != mi.pushedSum.Load()-mi.poppedSum.Load() {
		return fmt.Errorf("queue element sum %d, ledger %d", qsum, mi.pushedSum.Load()-mi.poppedSum.Load())
	}
	return nil
}

// Size returns map entries plus queued elements.
func (mi *mixedInstance) Size(s *stm.STM) int {
	th := mi.auditTh.Load()
	if th == nil {
		return 0
	}
	n := 0
	_ = th.Atomic(func(tx *stm.Tx) {
		n = mi.b.mapLen(tx) + mi.b.qLen(tx)
	})
	return n
}

// Dump returns the present map keys in ascending order.
func (mi *mixedInstance) Dump(s *stm.STM) []uint64 {
	th := mi.auditTh.Load()
	if th == nil {
		return nil
	}
	var out []uint64
	_ = th.Atomic(func(tx *stm.Tx) {
		out = out[:0]
		for k := 0; k < mi.keys; k++ {
			if _, ok := mi.b.mapGet(tx, stm.Word(k)); ok {
				out = append(out, uint64(k))
			}
		}
	})
	return out
}

// tdsBackend adapts internal/tds's semantic structures.
type tdsBackend struct {
	m *tds.Map
	q *tds.Queue
}

func (b *tdsBackend) mapGet(tx *stm.Tx, k stm.Word) (stm.Word, bool) { return b.m.Get(tx, k) }
func (b *tdsBackend) mapPut(tx *stm.Tx, k, v stm.Word)               { b.m.Put(tx, k, v) }
func (b *tdsBackend) mapDel(tx *stm.Tx, k stm.Word) bool             { return b.m.Delete(tx, k) }
func (b *tdsBackend) mapLen(tx *stm.Tx) int                          { return b.m.Len(tx) }
func (b *tdsBackend) qPush(tx *stm.Tx, v stm.Word) bool              { b.q.Push(tx, v); return true }
func (b *tdsBackend) qPop(tx *stm.Tx) (stm.Word, bool)               { return b.q.Pop(tx) }
func (b *tdsBackend) qLen(tx *stm.Tx) int                            { return b.q.Len(tx) }

// tlibBackend adapts the word-level baselines.
type tlibBackend struct {
	m *tlib.Map
	q *tlib.Queue
}

func (b *tlibBackend) mapGet(tx *stm.Tx, k stm.Word) (stm.Word, bool) { return b.m.Get(tx, k) }
func (b *tlibBackend) mapPut(tx *stm.Tx, k, v stm.Word)               { _ = b.m.Put(tx, k, v) }
func (b *tlibBackend) mapDel(tx *stm.Tx, k stm.Word) bool             { return b.m.Delete(tx, k) }
func (b *tlibBackend) mapLen(tx *stm.Tx) int                          { return b.m.Len(tx) }
func (b *tlibBackend) qPush(tx *stm.Tx, v stm.Word) bool              { return b.q.Enqueue(tx, v) == nil }
func (b *tlibBackend) qPop(tx *stm.Tx) (stm.Word, bool)               { return b.q.Dequeue(tx) }
func (b *tlibBackend) qLen(tx *stm.Tx) int                            { return b.q.Len(tx) }

// TdsMixed returns the mixed map+queue workload backed by internal/tds
// (useTds) or by the tlib word-level baselines. Both variants share one
// workload name so -compare matches their cells across JSON files; the
// implementation is recorded in the file label instead.
func TdsMixed(buckets, keys, stripes int, useTds bool) Spec {
	if buckets <= 0 {
		buckets = 16
	}
	if keys <= 0 {
		keys = 256
	}
	if stripes <= 0 {
		stripes = 256
	}
	name := fmt.Sprintf("mixed map+queue %db/%dk", buckets, keys)
	return Spec{
		Name: name,
		// Room for the full key set, the queue's random-walk excursion, and
		// reclamation lag; the tds side allocates transactionally and a
		// mid-transaction out-of-memory panic would strand the txn.
		HeapWords: 1 << 20,
		OrecCount: 1 << 12,
		Build: func(s *stm.STM, r *rng.RNG) (Instance, error) {
			var b mixedBackend
			if useTds {
				m, err := tds.NewMap(s, buckets, stripes)
				if err != nil {
					return nil, err
				}
				q, err := tds.NewQueue(s)
				if err != nil {
					return nil, err
				}
				b = &tdsBackend{m: m, q: q}
			} else {
				m, err := tlib.NewMap(s, buckets, 2*keys)
				if err != nil {
					return nil, err
				}
				q, err := tlib.NewQueue(s, 1<<15)
				if err != nil {
					return nil, err
				}
				b = &tlibBackend{m: m, q: q}
			}
			return &mixedInstance{b: b, keys: keys}, nil
		},
	}
}
