package bench

import (
	"fmt"

	stm "privstm"
	"privstm/internal/rng"
)

// The binary-search-tree microbenchmark of §V: an internal (non-balanced)
// BST over a key space of up to a million keys — "moderately large
// transactions". Nodes are [key, left, right]; deletion uses the classic
// successor-key replacement, all through transactional loads and stores.
const (
	bstKey   = 0
	bstLeft  = 1
	bstRight = 2

	bstNodeWords = 3
)

type bst struct {
	root stm.Addr // one word holding the root node address
	keys int
}

// BST returns the spec for the BST benchmark. The paper's key space is
// one million keys; the tree is pre-populated to half of it with keys
// inserted in random order (expected depth O(log n)).
func BST(keys int) Spec {
	if keys <= 0 {
		keys = 1 << 20
	}
	return Spec{
		Name:      fmt.Sprintf("bst %dk", keys),
		HeapWords: 1<<16 + 8*keys,
		OrecCount: 1 << 16,
		Build: func(s *stm.STM, r *rng.RNG) (Instance, error) {
			t := &bst{root: s.MustAlloc(1), keys: keys}
			// Insert a random half of the key space directly.
			for i := 0; i < keys/2; i++ {
				t.insertDirect(s, stm.Word(r.Intn(keys)))
			}
			return t, nil
		},
	}
}

func (t *bst) insertDirect(s *stm.STM, k stm.Word) {
	link := t.root
	for {
		cur := stm.Addr(s.DirectLoad(link))
		if cur == stm.Nil {
			n := s.MustAlloc(bstNodeWords)
			s.DirectStore(n+bstKey, k)
			s.DirectStore(link, stm.Word(n))
			return
		}
		ck := s.DirectLoad(cur + bstKey)
		switch {
		case k == ck:
			return
		case k < ck:
			link = cur + bstLeft
		default:
			link = cur + bstRight
		}
	}
}

// Op performs one insert, delete or lookup of a uniformly random key.
func (t *bst) Op(ctx *OpCtx, mix Mix) {
	k := stm.Word(ctx.Key(t.keys))
	p := ctx.RNG.Pct()
	switch {
	case p < mix.InsertPct:
		n := ctx.AllocNode(bstNodeWords)
		var inserted bool
		_ = ctx.Th.Atomic(func(tx *stm.Tx) {
			inserted = false
			link := t.root
			for {
				cur := tx.LoadAddr(link)
				if cur == stm.Nil {
					tx.Store(n+bstKey, k)
					tx.StoreAddr(n+bstLeft, stm.Nil)
					tx.StoreAddr(n+bstRight, stm.Nil)
					tx.StoreAddr(link, n)
					inserted = true
					return
				}
				ck := tx.Load(cur + bstKey)
				switch {
				case k == ck:
					return
				case k < ck:
					link = cur + bstLeft
				default:
					link = cur + bstRight
				}
			}
		})
		if !inserted {
			ctx.FreeNode(n, bstNodeWords)
		}
	case p < mix.InsertPct+mix.DeletePct:
		removed := stm.Nil
		_ = ctx.Th.Atomic(func(tx *stm.Tx) {
			removed = stm.Nil
			link := t.root
			var cur stm.Addr
			for {
				cur = tx.LoadAddr(link)
				if cur == stm.Nil {
					return // absent
				}
				ck := tx.Load(cur + bstKey)
				if k == ck {
					break
				}
				if k < ck {
					link = cur + bstLeft
				} else {
					link = cur + bstRight
				}
			}
			left := tx.LoadAddr(cur + bstLeft)
			right := tx.LoadAddr(cur + bstRight)
			if left == stm.Nil || right == stm.Nil {
				// ≤1 child: splice it into the parent link.
				child := left
				if child == stm.Nil {
					child = right
				}
				tx.StoreAddr(link, child)
				removed = cur
				return
			}
			// Two children: find the in-order successor (leftmost node of
			// the right subtree), move its key up, and unlink it.
			slink := cur + bstRight
			succ := tx.LoadAddr(slink)
			for {
				l := tx.LoadAddr(succ + bstLeft)
				if l == stm.Nil {
					break
				}
				slink, succ = succ+bstLeft, l
			}
			tx.Store(cur+bstKey, tx.Load(succ+bstKey))
			tx.StoreAddr(slink, tx.LoadAddr(succ+bstRight))
			removed = succ
		})
		if removed != stm.Nil {
			ctx.FreeNode(removed, bstNodeWords)
		}
	default:
		var found bool
		_ = ctx.Th.Atomic(func(tx *stm.Tx) {
			found = false
			cur := tx.LoadAddr(t.root)
			for cur != stm.Nil {
				ck := tx.Load(cur + bstKey)
				if ck == k {
					found = true
					return
				}
				if k < ck {
					cur = tx.LoadAddr(cur + bstLeft)
				} else {
					cur = tx.LoadAddr(cur + bstRight)
				}
			}
		})
		_ = found
	}
}

// Check verifies the BST property, key bounds, and acyclicity.
func (t *bst) Check(s *stm.STM) error {
	count := 0
	var walk func(n stm.Addr, lo, hi int64) error
	walk = func(n stm.Addr, lo, hi int64) error {
		if n == stm.Nil {
			return nil
		}
		if count++; count > t.keys+1 {
			return fmt.Errorf("bst has more nodes than keys (cycle?)")
		}
		k := int64(s.DirectLoad(n + bstKey))
		if k <= lo || k >= hi {
			return fmt.Errorf("bst property violated: key %d outside (%d,%d)", k, lo, hi)
		}
		if err := walk(stm.Addr(s.DirectLoad(n+bstLeft)), lo, k); err != nil {
			return err
		}
		return walk(stm.Addr(s.DirectLoad(n+bstRight)), k, hi)
	}
	return walk(stm.Addr(s.DirectLoad(t.root)), -1, int64(t.keys))
}

// Size counts the nodes.
func (t *bst) Size(s *stm.STM) int {
	n := 0
	var walk func(a stm.Addr)
	walk = func(a stm.Addr) {
		if a == stm.Nil {
			return
		}
		n++
		walk(stm.Addr(s.DirectLoad(a + bstLeft)))
		walk(stm.Addr(s.DirectLoad(a + bstRight)))
	}
	walk(stm.Addr(s.DirectLoad(t.root)))
	return n
}

// Dump returns the key set in ascending order (an in-order walk).
func (t *bst) Dump(s *stm.STM) []uint64 {
	var out []uint64
	var walk func(a stm.Addr)
	walk = func(a stm.Addr) {
		if a == stm.Nil {
			return
		}
		walk(stm.Addr(s.DirectLoad(a + bstLeft)))
		out = append(out, uint64(s.DirectLoad(a+bstKey)))
		walk(stm.Addr(s.DirectLoad(a + bstRight)))
	}
	walk(stm.Addr(s.DirectLoad(t.root)))
	return out
}
