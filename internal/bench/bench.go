// Package bench implements the paper's §V evaluation: the three
// microbenchmark data structures (hashtable, binary search tree,
// multi-list), the operation-mix workload driver, and the figure
// definitions that regenerate every panel of Figures 3 and 4.
//
// All data structures live entirely in transactional memory and are
// manipulated through the public stm API, exactly as the paper's C
// structures were manipulated through stm_read/stm_write.
package bench

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	stm "privstm"
	"privstm/internal/heap"
	"privstm/internal/rng"
	"privstm/internal/stats"
)

// Mix is an operation distribution. Percentages must sum to ≤ 100; the
// remainder are lookups.
type Mix struct {
	InsertPct int
	DeletePct int
}

// LookupPct returns the lookup share.
func (m Mix) LookupPct() int { return 100 - m.InsertPct - m.DeletePct }

// String formats the mix the way the paper labels its panels
// (insert/delete/lookup).
func (m Mix) String() string {
	return fmt.Sprintf("%d/%d/%d", m.InsertPct, m.DeletePct, m.LookupPct())
}

// The two distributions evaluated in §V.
var (
	ReadMostly  = Mix{InsertPct: 10, DeletePct: 10} // 80% lookups
	WriteHeavy  = Mix{InsertPct: 40, DeletePct: 40} // 20% lookups
	AllMixes    = []Mix{ReadMostly, WriteHeavy}
	defaultSeed = uint64(0x5eed)
)

// Instance is one built data structure. Op executes a single randomly
// chosen operation as one transaction; Check validates structural
// invariants after a run.
type Instance interface {
	// Op runs one operation on behalf of ctx's thread.
	Op(ctx *OpCtx, mix Mix)
	// Check validates the structure (single-threaded, after workers join).
	Check(s *stm.STM) error
	// Size returns the current element count (single-threaded use).
	Size(s *stm.STM) int
	// Dump returns the current key set in ascending order
	// (single-threaded use; tests compare against a model).
	Dump(s *stm.STM) []uint64
}

// Spec describes how to build a workload instance.
type Spec struct {
	// Name is the label used in figure output ("hashtable", "bst",
	// "multi-list 64x512", ...).
	Name string
	// HeapWords / OrecCount size the STM instance for this workload.
	HeapWords int
	OrecCount int
	// Build populates a fresh structure on s (called once per run).
	Build func(s *stm.STM, r *rng.RNG) (Instance, error)
}

// FreePolicy selects how workloads hand unlinked nodes back to the
// allocator.
type FreePolicy int

const (
	// FreeReclaim (the default) retires nodes through the epoch-based
	// reclaimer: the extent waits in limbo until no incomplete transaction
	// began before the unlinking commit, then lands on the heap free list
	// for AllocNode to recycle. This is the safe policy — a doomed reader
	// still holding the node's address can never observe reuse.
	FreeReclaim FreePolicy = iota
	// FreePool is the pre-reclamation per-thread free pool: nodes recycle
	// immediately within the freeing thread, with no epoch quarantine. It
	// is kept as the A-side of overhead measurements; it was tolerable only
	// because pool reuse re-initializes nodes transactionally, which the
	// doomed reader's validation catches (CORRECTNESS.md §14 discusses why
	// that residual argument is weaker than the epoch one).
	FreePool
	// FreeLeak never recycles: every allocation is fresh bump space. This
	// reproduces the pre-reclamation behavior of workloads that could not
	// safely pool (and is how the soak cell used to exhaust the heap).
	FreeLeak
)

// OpCtx is per-worker state: the STM thread, a private RNG, the
// node-recycling policy (FreeReclaim by default; see FreePolicy), and the
// key-skew configuration.
type OpCtx struct {
	Th     *stm.Thread
	RNG    *rng.RNG
	S      *stm.STM
	Policy FreePolicy
	// ZipfTheta skews Key draws (0 = uniform; see RunConfig.ZipfTheta).
	ZipfTheta float64
	free      []stm.Addr // FreePool only
	// Sampler cache: every workload draws from one key space, so the
	// inline entry keeps the per-draw cost at two compares; the map only
	// backs workloads mixing several spaces.
	zipfN int
	zipfZ *rng.Zipf
	zipf  map[int]*rng.Zipf
}

// Key draws a key in [0, n): Zipf(ZipfTheta), where theta 0 is the uniform
// limit (rng.NewZipf handles it; the draw is bit-identical to RNG.Intn, so
// historical uniform key streams are unchanged). Zipf rank 0 is the hottest
// key; ranks are used directly,
// so hot keys are the low ones (for the modulo-hashed structures this
// spreads the hottest ranks across distinct buckets/lists). Samplers share
// the worker's RNG stream, so paired A/B runs with one seed draw identical
// key sequences.
func (c *OpCtx) Key(n int) int {
	if c.ZipfTheta == 0 {
		// Draw-for-draw identical to the theta-0 sampler (rng.Zipf
		// documents the equivalence, zipf_test pins it); going through
		// RNG.Intn directly keeps the draw inlined on the hottest figure
		// paths instead of paying a sampler call per key.
		return c.RNG.Intn(n)
	}
	if n != c.zipfN || c.zipfZ == nil {
		z := c.zipf[n]
		if z == nil {
			if c.zipf == nil {
				c.zipf = make(map[int]*rng.Zipf, 2)
			}
			z = rng.NewZipf(c.RNG, uint64(n), c.ZipfTheta)
			c.zipf[n] = z
		}
		c.zipfN, c.zipfZ = n, z
	}
	return int(c.zipfZ.Next())
}

// AllocNode returns a node of nodeWords words. Under FreePool it pops the
// thread's private pool; under FreeReclaim it prefers extents recycled
// through the epoch (Thread.MustAlloc); FreeLeak always takes fresh bump
// space. In every policy the node may hold stale words — the workloads
// initialize every field before publishing, as a malloc-based C
// implementation would.
func (c *OpCtx) AllocNode(nodeWords int) stm.Addr {
	switch c.Policy {
	case FreePool:
		if n := len(c.free); n > 0 {
			a := c.free[n-1]
			c.free = c.free[:n-1]
			return a
		}
	case FreeReclaim:
		return c.Th.MustAlloc(nodeWords)
	}
	return c.S.MustAlloc(nodeWords)
}

// FreeNode recycles the nodeWords-word node at a. Call only after the
// transaction that unlinked it has committed — under FreeReclaim the
// retire stamp is that commit's timestamp.
func (c *OpCtx) FreeNode(a stm.Addr, nodeWords int) {
	switch c.Policy {
	case FreeReclaim:
		c.Th.Retire(a, nodeWords)
	case FreePool:
		c.free = append(c.free, a)
	case FreeLeak:
	}
}

// RunConfig drives one throughput measurement.
type RunConfig struct {
	Algorithm stm.Algorithm
	Threads   int
	// TxnsPerThread is the fixed per-thread operation count (the paper
	// ran 10^5). If zero, Duration mode is used.
	TxnsPerThread int
	// Duration bounds the run in time-based mode.
	Duration time.Duration
	Mix      Mix
	Seed     uint64
	// Tracker selects the incomplete-transaction tracker (ablations).
	Tracker stm.TrackerKind
	// DisableExtension turns off snapshot extension (ablations).
	DisableExtension bool
	// CM selects the contention-management policy (ablations).
	CM stm.CMPolicy
	// MaxAttempts is the abort budget before serialized-irrevocable
	// escalation (0 = default, negative disables).
	MaxAttempts int
	// OrecLayout selects the orec-table memory layout (ablations).
	OrecLayout stm.OrecLayout
	// DisableHintCache turns off the thread-local hint cache (ablations).
	DisableHintCache bool
	// Clock selects the version-clock scheme (gv1/gv5/local).
	Clock stm.ClockMode
	// OrderBatch enables the Ord flat-combining commit batcher (0 = off).
	OrderBatch int
	// Free selects the node-recycling policy (default FreeReclaim).
	Free FreePolicy
	// DisableSandbox turns off validate-before-dangerous-use checkpoints
	// (ablations).
	DisableSandbox bool
	// ZipfTheta skews key choice across every workload: 0 means uniform
	// (the paper's distribution); anything in (0, 1) draws keys from a
	// Zipf(theta) distribution (YCSB convention — theta 0.99 is "zipfian").
	ZipfTheta float64
}

// Measurement is the outcome of one (workload, algorithm, threads, mix)
// cell: one point on one curve of Figure 3 or 4.
type Measurement struct {
	// Fig is the figure ID the cell belongs to ("3e", "t1", ...); set by
	// RunFigure, empty for direct Run calls.
	Fig        string
	Workload   string
	Algorithm  string
	Threads    int
	Mix        Mix
	Ops        uint64
	Elapsed    time.Duration
	Throughput float64 // operations per second
	// RepThroughputs holds the per-repetition throughputs when the cell
	// was run more than once (runCell); WriteJSON derives the reported
	// standard deviation from it.
	RepThroughputs []float64
	// Layout is the orec-table layout label ("aos"/"soa"); empty means
	// the default.
	Layout string
	// Clock is the version-clock scheme label ("gv1"/"gv5"/"local").
	Clock string
	// OrderBatch is the Ord commit-batcher bound the cell ran with (0 = off).
	OrderBatch int
	// PairDeltas holds the per-pair throughput deltas (percent, this cell
	// vs its paired baseline) when the cell was measured by RunPaired;
	// WriteJSON reports their median.
	PairDeltas []float64
	// ZipfTheta is the key-skew the cell ran with (0 = uniform).
	ZipfTheta float64
	// Structs holds per-structure operation/abort attribution for the mixed
	// container workloads (empty elsewhere): key "map"/"queue", aborts
	// charged to the structure whose operation incurred them.
	Structs map[string]StructStat
	// ReclaimCollects counts epoch-collection passes (amortized + drain).
	ReclaimCollects uint64
	// Exhausted reports that a worker ran the heap out of address space
	// before finishing its operation quota (FreeLeak soak cells; Ops counts
	// the operations completed before exhaustion).
	Exhausted bool
	// Remote carries the macro-run fields of an stmbench -remote cell
	// (connection count, latency quantiles, server-side abort deltas); nil
	// for local cells.
	Remote *RemoteStats
	Stats  stats.Counters
}

// StructStat is one structure's share of a mixed workload.
type StructStat struct {
	Ops    uint64 `json:"ops"`
	Aborts uint64 `json:"aborts"`
}

// AbortPct returns aborts per started transaction, in percent.
func (s StructStat) AbortPct() float64 {
	if s.Ops+s.Aborts == 0 {
		return 0
	}
	return 100 * float64(s.Aborts) / float64(s.Ops+s.Aborts)
}

// structStatser is implemented by workload instances that attribute aborts
// per structure (the mixed map+queue workload); Run folds the result into
// Measurement.Structs.
type structStatser interface {
	StructStats() map[string]StructStat
}

// Run builds the workload and drives it with rc.Threads workers.
func Run(spec Spec, rc RunConfig) (*Measurement, error) {
	if rc.Threads <= 0 {
		rc.Threads = 1
	}
	if rc.Seed == 0 {
		rc.Seed = defaultSeed
	}
	s, err := stm.New(stm.Config{
		Algorithm:                rc.Algorithm,
		HeapWords:                spec.HeapWords,
		OrecCount:                spec.OrecCount,
		MaxThreads:               rc.Threads,
		Tracker:                  rc.Tracker,
		DisableSnapshotExtension: rc.DisableExtension,
		ContentionManager:        rc.CM,
		MaxAttempts:              rc.MaxAttempts,
		OrecLayout:               rc.OrecLayout,
		DisableHintCache:         rc.DisableHintCache,
		Clock:                    rc.Clock,
		OrderBatch:               rc.OrderBatch,
		DisableSandboxChecks:     rc.DisableSandbox,
	})
	if err != nil {
		return nil, err
	}
	inst, err := spec.Build(s, rng.New(rc.Seed))
	if err != nil {
		return nil, err
	}

	ctxs := make([]*OpCtx, rc.Threads)
	for i := range ctxs {
		th, err := s.NewThread()
		if err != nil {
			return nil, err
		}
		ctxs[i] = &OpCtx{Th: th, RNG: rng.New(rc.Seed + uint64(i)*1e9), S: s, Policy: rc.Free, ZipfTheta: rc.ZipfTheta}
	}

	var wg sync.WaitGroup
	var exhausted atomic.Bool
	deadline := time.Now().Add(rc.Duration)
	start := time.Now()
	for _, ctx := range ctxs {
		wg.Add(1)
		go func(ctx *OpCtx) {
			defer wg.Done()
			// Publish this worker's buffered retires/prefetched extents so
			// the post-run drain and stats see them (runs even on the
			// exhaustion path below).
			defer ctx.Th.FlushReclaim()
			// Heap exhaustion surfaces as a MustAlloc panic from AllocNode,
			// which every workload calls outside its transaction — so
			// recovering here never strands a transaction mid-flight. It is
			// an expected outcome for FreeLeak soak cells; anything else
			// still propagates.
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				if err, ok := r.(error); ok && errors.Is(err, heap.ErrOutOfMemory) {
					exhausted.Store(true)
					return
				}
				panic(r)
			}()
			if rc.TxnsPerThread > 0 {
				for i := 0; i < rc.TxnsPerThread; i++ {
					inst.Op(ctx, rc.Mix)
					ctx.Th.Stats().Ops++
				}
				return
			}
			// Duration mode: check the clock every few operations to
			// keep timer syscalls off the hot path.
			for done := false; !done; {
				for i := 0; i < 32; i++ {
					inst.Op(ctx, rc.Mix)
					ctx.Th.Stats().Ops++
				}
				done = time.Now().After(deadline)
			}
		}(ctx)
	}
	wg.Wait()
	elapsed := time.Since(start)
	s.DrainReclaim()

	m := &Measurement{
		Workload:        spec.Name,
		Algorithm:       rc.Algorithm.String(),
		Threads:         rc.Threads,
		Mix:             rc.Mix,
		Elapsed:         elapsed,
		Layout:          rc.OrecLayout.String(),
		Clock:           rc.Clock.String(),
		OrderBatch:      rc.OrderBatch,
		ZipfTheta:       rc.ZipfTheta,
		ReclaimCollects: s.ReclaimStats().Collects,
		Exhausted:       exhausted.Load(),
	}
	if ss, ok := inst.(structStatser); ok {
		m.Structs = ss.StructStats()
	}
	for _, ctx := range ctxs {
		m.Stats.Add(ctx.Th.Stats())
	}
	m.Ops = m.Stats.Ops
	if elapsed > 0 {
		m.Throughput = float64(m.Ops) / elapsed.Seconds()
	}
	if err := inst.Check(s); err != nil {
		return nil, fmt.Errorf("post-run structural check failed (%s/%s): %w",
			spec.Name, rc.Algorithm, err)
	}
	return m, nil
}
