// Package bench implements the paper's §V evaluation: the three
// microbenchmark data structures (hashtable, binary search tree,
// multi-list), the operation-mix workload driver, and the figure
// definitions that regenerate every panel of Figures 3 and 4.
//
// All data structures live entirely in transactional memory and are
// manipulated through the public stm API, exactly as the paper's C
// structures were manipulated through stm_read/stm_write.
package bench

import (
	"fmt"
	"sync"
	"time"

	stm "privstm"
	"privstm/internal/rng"
	"privstm/internal/stats"
)

// Mix is an operation distribution. Percentages must sum to ≤ 100; the
// remainder are lookups.
type Mix struct {
	InsertPct int
	DeletePct int
}

// LookupPct returns the lookup share.
func (m Mix) LookupPct() int { return 100 - m.InsertPct - m.DeletePct }

// String formats the mix the way the paper labels its panels
// (insert/delete/lookup).
func (m Mix) String() string {
	return fmt.Sprintf("%d/%d/%d", m.InsertPct, m.DeletePct, m.LookupPct())
}

// The two distributions evaluated in §V.
var (
	ReadMostly  = Mix{InsertPct: 10, DeletePct: 10} // 80% lookups
	WriteHeavy  = Mix{InsertPct: 40, DeletePct: 40} // 20% lookups
	AllMixes    = []Mix{ReadMostly, WriteHeavy}
	defaultSeed = uint64(0x5eed)
)

// Instance is one built data structure. Op executes a single randomly
// chosen operation as one transaction; Check validates structural
// invariants after a run.
type Instance interface {
	// Op runs one operation on behalf of ctx's thread.
	Op(ctx *OpCtx, mix Mix)
	// Check validates the structure (single-threaded, after workers join).
	Check(s *stm.STM) error
	// Size returns the current element count (single-threaded use).
	Size(s *stm.STM) int
	// Dump returns the current key set in ascending order
	// (single-threaded use; tests compare against a model).
	Dump(s *stm.STM) []uint64
}

// Spec describes how to build a workload instance.
type Spec struct {
	// Name is the label used in figure output ("hashtable", "bst",
	// "multi-list 64x512", ...).
	Name string
	// HeapWords / OrecCount size the STM instance for this workload.
	HeapWords int
	OrecCount int
	// Build populates a fresh structure on s (called once per run).
	Build func(s *stm.STM, r *rng.RNG) (Instance, error)
}

// OpCtx is per-worker state: the STM thread, a private RNG, and a private
// node free pool (nodes are recycled only after the freeing transaction has
// committed, mirroring what a malloc-based C implementation does).
type OpCtx struct {
	Th   *stm.Thread
	RNG  *rng.RNG
	S    *stm.STM
	free []stm.Addr
}

// AllocNode returns a node of nodeWords words: a previously freed node if
// available, else fresh heap space.
func (c *OpCtx) AllocNode(nodeWords int) stm.Addr {
	if n := len(c.free); n > 0 {
		a := c.free[n-1]
		c.free = c.free[:n-1]
		return a
	}
	return c.S.MustAlloc(nodeWords)
}

// FreeNode recycles a node. Call only after the transaction that unlinked
// it has committed.
func (c *OpCtx) FreeNode(a stm.Addr) { c.free = append(c.free, a) }

// RunConfig drives one throughput measurement.
type RunConfig struct {
	Algorithm stm.Algorithm
	Threads   int
	// TxnsPerThread is the fixed per-thread operation count (the paper
	// ran 10^5). If zero, Duration mode is used.
	TxnsPerThread int
	// Duration bounds the run in time-based mode.
	Duration time.Duration
	Mix      Mix
	Seed     uint64
	// Tracker selects the incomplete-transaction tracker (ablations).
	Tracker stm.TrackerKind
	// DisableExtension turns off snapshot extension (ablations).
	DisableExtension bool
	// CM selects the contention-management policy (ablations).
	CM stm.CMPolicy
	// MaxAttempts is the abort budget before serialized-irrevocable
	// escalation (0 = default, negative disables).
	MaxAttempts int
	// OrecLayout selects the orec-table memory layout (ablations).
	OrecLayout stm.OrecLayout
	// DisableHintCache turns off the thread-local hint cache (ablations).
	DisableHintCache bool
	// Clock selects the version-clock scheme (gv1/gv5/local).
	Clock stm.ClockMode
	// OrderBatch enables the Ord flat-combining commit batcher (0 = off).
	OrderBatch int
}

// Measurement is the outcome of one (workload, algorithm, threads, mix)
// cell: one point on one curve of Figure 3 or 4.
type Measurement struct {
	// Fig is the figure ID the cell belongs to ("3e", "t1", ...); set by
	// RunFigure, empty for direct Run calls.
	Fig        string
	Workload   string
	Algorithm  string
	Threads    int
	Mix        Mix
	Ops        uint64
	Elapsed    time.Duration
	Throughput float64 // operations per second
	// RepThroughputs holds the per-repetition throughputs when the cell
	// was run more than once (runCell); WriteJSON derives the reported
	// standard deviation from it.
	RepThroughputs []float64
	// Layout is the orec-table layout label ("aos"/"soa"); empty means
	// the default.
	Layout string
	// Clock is the version-clock scheme label ("gv1"/"gv5"/"local").
	Clock string
	// OrderBatch is the Ord commit-batcher bound the cell ran with (0 = off).
	OrderBatch int
	// PairDeltas holds the per-pair throughput deltas (percent, this cell
	// vs its paired baseline) when the cell was measured by RunPaired;
	// WriteJSON reports their median.
	PairDeltas []float64
	Stats      stats.Counters
}

// Run builds the workload and drives it with rc.Threads workers.
func Run(spec Spec, rc RunConfig) (*Measurement, error) {
	if rc.Threads <= 0 {
		rc.Threads = 1
	}
	if rc.Seed == 0 {
		rc.Seed = defaultSeed
	}
	s, err := stm.New(stm.Config{
		Algorithm:                rc.Algorithm,
		HeapWords:                spec.HeapWords,
		OrecCount:                spec.OrecCount,
		MaxThreads:               rc.Threads,
		Tracker:                  rc.Tracker,
		DisableSnapshotExtension: rc.DisableExtension,
		ContentionManager:        rc.CM,
		MaxAttempts:              rc.MaxAttempts,
		OrecLayout:               rc.OrecLayout,
		DisableHintCache:         rc.DisableHintCache,
		Clock:                    rc.Clock,
		OrderBatch:               rc.OrderBatch,
	})
	if err != nil {
		return nil, err
	}
	inst, err := spec.Build(s, rng.New(rc.Seed))
	if err != nil {
		return nil, err
	}

	ctxs := make([]*OpCtx, rc.Threads)
	for i := range ctxs {
		th, err := s.NewThread()
		if err != nil {
			return nil, err
		}
		ctxs[i] = &OpCtx{Th: th, RNG: rng.New(rc.Seed + uint64(i)*1e9), S: s}
	}

	var wg sync.WaitGroup
	deadline := time.Now().Add(rc.Duration)
	start := time.Now()
	for _, ctx := range ctxs {
		wg.Add(1)
		go func(ctx *OpCtx) {
			defer wg.Done()
			if rc.TxnsPerThread > 0 {
				for i := 0; i < rc.TxnsPerThread; i++ {
					inst.Op(ctx, rc.Mix)
					ctx.Th.Stats().Ops++
				}
				return
			}
			// Duration mode: check the clock every few operations to
			// keep timer syscalls off the hot path.
			for done := false; !done; {
				for i := 0; i < 32; i++ {
					inst.Op(ctx, rc.Mix)
					ctx.Th.Stats().Ops++
				}
				done = time.Now().After(deadline)
			}
		}(ctx)
	}
	wg.Wait()
	elapsed := time.Since(start)

	m := &Measurement{
		Workload:   spec.Name,
		Algorithm:  rc.Algorithm.String(),
		Threads:    rc.Threads,
		Mix:        rc.Mix,
		Elapsed:    elapsed,
		Layout:     rc.OrecLayout.String(),
		Clock:      rc.Clock.String(),
		OrderBatch: rc.OrderBatch,
	}
	for _, ctx := range ctxs {
		m.Stats.Add(ctx.Th.Stats())
	}
	m.Ops = m.Stats.Ops
	if elapsed > 0 {
		m.Throughput = float64(m.Ops) / elapsed.Seconds()
	}
	if err := inst.Check(s); err != nil {
		return nil, fmt.Errorf("post-run structural check failed (%s/%s): %w",
			spec.Name, rc.Algorithm, err)
	}
	return m, nil
}
