package bench

import (
	"io"
	"testing"

	stm "privstm"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{1, 9}, 5},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 9, 2}, 3},
		{[]float64{-10, 2, 3}, 2}, // one bad pair must not drag the median
	}
	for _, tc := range cases {
		if got := Median(tc.xs); got != tc.want {
			t.Errorf("Median(%v) = %v, want %v", tc.xs, got, tc.want)
		}
		// Median must not reorder the caller's slice.
		if len(tc.xs) > 1 && tc.xs[0] == tc.want && tc.xs[0] < tc.xs[1] {
			t.Errorf("Median mutated its argument: %v", tc.xs)
		}
	}
}

func TestRunPairedInterleaves(t *testing.T) {
	spec := Hashtable(8, 16)
	a := RunConfig{Algorithm: stm.Ord, Threads: 2, Mix: WriteHeavy,
		TxnsPerThread: 200}
	b := a
	b.Clock = stm.ClockGV5
	const pairs = 3
	pr, err := RunPaired(spec, a, b, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Deltas) != pairs {
		t.Fatalf("got %d deltas, want %d", len(pr.Deltas), pairs)
	}
	if len(pr.A.RepThroughputs) != pairs || len(pr.B.RepThroughputs) != pairs {
		t.Fatalf("aggregates hold %d/%d reps, want %d each",
			len(pr.A.RepThroughputs), len(pr.B.RepThroughputs), pairs)
	}
	if pr.MedianPct != Median(pr.Deltas) {
		t.Errorf("MedianPct = %v, want Median(Deltas) = %v", pr.MedianPct, Median(pr.Deltas))
	}
	// Both sides ran the full workload.
	wantOps := uint64(2 * 200 * pairs)
	if pr.A.Ops != wantOps || pr.B.Ops != wantOps {
		t.Errorf("ops = %d/%d, want %d", pr.A.Ops, pr.B.Ops, wantOps)
	}
	// The candidate side actually ran deferred: no commit-path clock RMWs.
	if pr.B.Stats.ClockTicks != 0 {
		t.Errorf("candidate ClockTicks = %d under GV5, want 0", pr.B.Stats.ClockTicks)
	}
	if pr.A.Stats.ClockTicks == 0 {
		t.Error("baseline ClockTicks = 0 under GV1, want > 0")
	}
	if pr.B.Clock != "gv5" || pr.A.Clock != "gv1" {
		t.Errorf("clock labels = %q/%q, want gv1/gv5", pr.A.Clock, pr.B.Clock)
	}
}

func TestRunClockSweepSmoke(t *testing.T) {
	hc := HarnessConfig{Threads: []int{2}, TxnsPerThread: 100, Scale: 8}
	variants := []ClockVariant{
		{Algorithm: stm.Ord, Clock: stm.ClockGV5},
		{Algorithm: stm.Ord, Clock: stm.ClockGV5, OrderBatch: 4},
	}
	base, cand, err := RunClockSweep(io.Discard, hc, variants, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	// The two Ord variants share one baseline cell.
	if len(base) != 1 {
		t.Fatalf("got %d baseline cells, want 1 (deduped per engine)", len(base))
	}
	if len(cand) != 2 {
		t.Fatalf("got %d candidate cells, want 2", len(cand))
	}
	for _, m := range cand {
		if m.Fig != "clk" {
			t.Errorf("candidate fig = %q, want clk", m.Fig)
		}
		if m.Clock != "gv5" {
			t.Errorf("candidate clock = %q, want gv5", m.Clock)
		}
		if len(m.PairDeltas) != 2 {
			t.Errorf("candidate carries %d pair deltas, want 2", len(m.PairDeltas))
		}
	}
	if base[0].Clock != "gv1" || base[0].OrderBatch != 0 {
		t.Errorf("baseline cell = clock %q batch %d, want gv1/0", base[0].Clock, base[0].OrderBatch)
	}
}
