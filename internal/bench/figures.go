package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	stm "privstm"
)

// Figure identifies one reproducible experiment: a panel of the paper's
// Figure 3 (throughput) or Figure 4 (fence/visibility statistics), or the
// single-thread overhead comparison quoted in §V's text.
type Figure struct {
	// ID is the panel identifier ("3a" … "3h", "4a" … "4g", "t1").
	ID string
	// Title matches the paper's panel caption.
	Title string
	// Kind is "throughput", "fence-stats" or "overhead".
	Kind string
	// Spec builds the workload (scaled by the harness's scale factor).
	Spec func(scale int) Spec
	// Mix is the operation distribution. Fence-stat figures run both
	// paper mixes; throughput figures run exactly this one.
	Mix Mix
	// Algorithms are the curves. Empty means the paper's standard eight.
	Algorithms []stm.Algorithm
}

// StandardCurves is the curve set of every Figure 3 panel, in the paper's
// legend order.
var StandardCurves = []stm.Algorithm{
	stm.TL2, stm.Ord, stm.Val,
	stm.PVRBase, stm.PVRCAS, stm.PVRStore, stm.PVRWriterOnly, stm.PVRHybrid,
}

// FenceCurves is the pair Figure 4 contrasts.
var FenceCurves = []stm.Algorithm{stm.PVRBase, stm.PVRCAS}

// scaled divides n by the scale divisor, with a floor.
func scaled(n, scale, min int) int {
	v := n / scale
	if v < min {
		v = min
	}
	return v
}

// Figures is the experiment index: every panel of the paper's evaluation.
// The scale parameter divides the structure sizes so the suite can run
// quickly in CI (scale=1 reproduces the paper's parameters).
var Figures = []Figure{
	{ID: "3a", Title: "hashtable 64 buckets, 256 keys (10/10/80)", Kind: "throughput",
		Spec: func(scale int) Spec { return Hashtable(64, scaled(256, scale, 64)) }, Mix: ReadMostly},
	{ID: "3b", Title: "hashtable 64 buckets, 256 keys (40/40/20)", Kind: "throughput",
		Spec: func(scale int) Spec { return Hashtable(64, scaled(256, scale, 64)) }, Mix: WriteHeavy},
	{ID: "3c", Title: "bst 1M keys (10/10/80)", Kind: "throughput",
		Spec: func(scale int) Spec { return BST(scaled(1<<20, scale, 1<<12)) }, Mix: ReadMostly},
	{ID: "3d", Title: "bst 1M keys (40/40/20)", Kind: "throughput",
		Spec: func(scale int) Spec { return BST(scaled(1<<20, scale, 1<<12)) }, Mix: WriteHeavy},
	{ID: "3e", Title: "multi-list 64 lists, 64 entries (10/10/80)", Kind: "throughput",
		Spec: func(scale int) Spec { return MultiList(64, 64) }, Mix: ReadMostly},
	{ID: "3f", Title: "multi-list 64 lists, 64 entries (40/40/20)", Kind: "throughput",
		Spec: func(scale int) Spec { return MultiList(64, 64) }, Mix: WriteHeavy},
	{ID: "3g", Title: "multi-list 64 lists, 512 entries (10/10/80)", Kind: "throughput",
		Spec: func(scale int) Spec { return MultiList(64, scaled(512, scale, 128)) }, Mix: ReadMostly},
	{ID: "3h", Title: "multi-list 64 lists, 512 entries (40/40/20)", Kind: "throughput",
		Spec: func(scale int) Spec { return MultiList(64, scaled(512, scale, 128)) }, Mix: WriteHeavy},

	{ID: "4a", Title: "hashtable: % fences hit / % visible reads skipped", Kind: "fence-stats",
		Spec: func(scale int) Spec { return Hashtable(64, scaled(256, scale, 64)) }, Algorithms: FenceCurves},
	{ID: "4c", Title: "bst: % fences hit / % visible reads skipped", Kind: "fence-stats",
		Spec: func(scale int) Spec { return BST(scaled(1<<20, scale, 1<<12)) }, Algorithms: FenceCurves},
	{ID: "4e", Title: "multi-list 64x64: % fences hit / % visible reads skipped", Kind: "fence-stats",
		Spec: func(scale int) Spec { return MultiList(64, 64) }, Algorithms: FenceCurves},
	{ID: "4g", Title: "multi-list 64x512: % fences hit / % visible reads skipped", Kind: "fence-stats",
		Spec: func(scale int) Spec { return MultiList(64, scaled(512, scale, 128)) }, Algorithms: FenceCurves},

	{ID: "t1", Title: "single-thread overhead vs TL2 (§V text)", Kind: "overhead"},
}

// FigureByID returns the figure with the given ID.
func FigureByID(id string) (Figure, error) {
	for _, f := range Figures {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("bench: unknown figure %q (have 3a-3h, 4a/4c/4e/4g, t1)", id)
}

// HarnessConfig controls a figure regeneration run.
type HarnessConfig struct {
	// Threads is the thread sweep (the paper used 1..32).
	Threads []int
	// TxnsPerThread fixes per-thread work; if 0, Duration is used.
	TxnsPerThread int
	Duration      time.Duration
	// Scale divides structure sizes (1 = paper scale).
	Scale int
	// Reps is the number of runs averaged per cell (the paper used 3).
	Reps int
	Seed uint64
	// Tracker selects the incomplete-transaction tracker for every cell
	// (ablations; default is the slot tracker).
	Tracker stm.TrackerKind
	// DisableExtension turns off snapshot extension for every cell.
	DisableExtension bool
	// CM selects the contention-management policy for every cell.
	CM stm.CMPolicy
	// MaxAttempts is the abort budget before serialized-irrevocable
	// escalation (0 = default, negative disables).
	MaxAttempts int
	// OrecLayout selects the orec-table memory layout for every cell.
	OrecLayout stm.OrecLayout
	// DisableHintCache turns off the thread-local hint cache for every cell.
	DisableHintCache bool
	// Clock selects the version-clock scheme for every cell.
	Clock stm.ClockMode
	// OrderBatch enables the Ord flat-combining commit batcher (0 = off).
	OrderBatch int
	// Free selects the node-recycling policy for every cell (default
	// FreeReclaim).
	Free FreePolicy
	// DisableSandbox turns off validate-before-dangerous-use checkpoints
	// for every cell (ablation).
	DisableSandbox bool
	// ZipfTheta skews the key distribution for every cell (0 = uniform,
	// the paper's setting; (0,1) = YCSB-style Zipf, larger is hotter).
	ZipfTheta float64
}

func (hc *HarnessConfig) fill() {
	if len(hc.Threads) == 0 {
		hc.Threads = []int{1, 2, 4, 8, 16, 32}
	}
	if hc.Scale <= 0 {
		hc.Scale = 1
	}
	if hc.TxnsPerThread == 0 && hc.Duration == 0 {
		hc.Duration = 200 * time.Millisecond
	}
	if hc.Reps <= 0 {
		hc.Reps = 1
	}
}

// runCell executes one (spec, algorithm, threads, mix) cell hc.Reps times
// and merges the runs: throughput is total operations over total elapsed
// time, counters are summed (their Figure-4 percentages are ratios, so
// summing is the right aggregation).
func runCell(spec Spec, rc RunConfig, reps int) (*Measurement, error) {
	var agg *Measurement
	for i := 0; i < reps; i++ {
		rc.Seed += uint64(i) * 7919
		m, err := Run(spec, rc)
		if err != nil {
			return nil, err
		}
		agg = mergeInto(agg, m)
	}
	return agg, nil
}

// RunFigure regenerates one figure, writing the paper-style rows to w and
// returning the raw measurements.
func RunFigure(w io.Writer, fig Figure, hc HarnessConfig) ([]*Measurement, error) {
	hc.fill()
	var ms []*Measurement
	var err error
	switch fig.Kind {
	case "throughput":
		ms, err = runThroughput(w, fig, hc)
	case "fence-stats":
		ms, err = runFenceStats(w, fig, hc)
	case "overhead":
		ms, err = runOverhead(w, hc)
	default:
		return nil, fmt.Errorf("bench: unknown figure kind %q", fig.Kind)
	}
	for _, m := range ms {
		m.Fig = fig.ID
	}
	return ms, err
}

func runThroughput(w io.Writer, fig Figure, hc HarnessConfig) ([]*Measurement, error) {
	algos := fig.Algorithms
	if len(algos) == 0 {
		algos = StandardCurves
	}
	fmt.Fprintf(w, "Figure %s: %s — operations per second\n", fig.ID, fig.Title)
	fmt.Fprintf(w, "%-14s", "threads")
	for _, th := range hc.Threads {
		fmt.Fprintf(w, "%12d", th)
	}
	fmt.Fprintln(w)
	var all []*Measurement
	for _, alg := range algos {
		fmt.Fprintf(w, "%-14s", alg)
		for _, th := range hc.Threads {
			m, err := runCell(fig.Spec(hc.Scale), RunConfig{
				Algorithm: alg, Threads: th, Mix: fig.Mix,
				TxnsPerThread: hc.TxnsPerThread, Duration: hc.Duration, Seed: hc.Seed,
				Tracker: hc.Tracker, DisableExtension: hc.DisableExtension,
				CM: hc.CM, MaxAttempts: hc.MaxAttempts,
				OrecLayout: hc.OrecLayout, DisableHintCache: hc.DisableHintCache,
				Clock: hc.Clock, OrderBatch: hc.OrderBatch,
				Free: hc.Free, DisableSandbox: hc.DisableSandbox,
				ZipfTheta: hc.ZipfTheta,
			}, hc.Reps)
			if err != nil {
				return nil, err
			}
			all = append(all, m)
			fmt.Fprintf(w, "%12.0f", m.Throughput)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	return all, nil
}

func runFenceStats(w io.Writer, fig Figure, hc HarnessConfig) ([]*Measurement, error) {
	algos := fig.Algorithms
	if len(algos) == 0 {
		algos = FenceCurves
	}
	// Run every (algorithm, mix, threads) cell once; print both metric
	// tables from the same measurements.
	type row struct {
		label string
		ms    []*Measurement
	}
	var rows []row
	var all []*Measurement
	for _, alg := range algos {
		for _, mix := range AllMixes {
			r := row{label: fmt.Sprintf("%s (%d%% lookups)", alg, mix.LookupPct())}
			for _, th := range hc.Threads {
				m, err := runCell(fig.Spec(hc.Scale), RunConfig{
					Algorithm: alg, Threads: th, Mix: mix,
					TxnsPerThread: hc.TxnsPerThread, Duration: hc.Duration, Seed: hc.Seed,
					Tracker: hc.Tracker, DisableExtension: hc.DisableExtension,
					CM: hc.CM, MaxAttempts: hc.MaxAttempts,
					OrecLayout: hc.OrecLayout, DisableHintCache: hc.DisableHintCache,
					Clock: hc.Clock, OrderBatch: hc.OrderBatch,
					Free: hc.Free, DisableSandbox: hc.DisableSandbox,
					ZipfTheta: hc.ZipfTheta,
				}, hc.Reps)
				if err != nil {
					return nil, err
				}
				r.ms = append(r.ms, m)
				all = append(all, m)
			}
			rows = append(rows, r)
		}
	}
	for _, metric := range []string{"percent writers fenced", "percent visible reads skipped"} {
		fmt.Fprintf(w, "Figure %s: %s — %s\n", fig.ID, fig.Title, metric)
		fmt.Fprintf(w, "%-28s", "threads")
		for _, th := range hc.Threads {
			fmt.Fprintf(w, "%9d", th)
		}
		fmt.Fprintln(w)
		for _, r := range rows {
			fmt.Fprintf(w, "%-28s", r.label)
			for _, m := range r.ms {
				v := m.Stats.PercentWritersFenced()
				if metric == "percent visible reads skipped" {
					v = m.Stats.PercentVisibleReadsSkipped()
				}
				fmt.Fprintf(w, "%9.1f", v)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return all, nil
}

// runOverhead reproduces §V's single-thread comparison: every algorithm's
// one-thread throughput on each structure, normalized to TL2.
func runOverhead(w io.Writer, hc HarnessConfig) ([]*Measurement, error) {
	specs := []Spec{
		Hashtable(64, scaled(256, hc.Scale, 64)),
		BST(scaled(1<<20, hc.Scale, 1<<12)),
		MultiList(64, scaled(512, hc.Scale, 128)),
	}
	fmt.Fprintf(w, "Single-thread throughput relative to TL2 (1.00 = TL2), mix %s\n", ReadMostly)
	fmt.Fprintf(w, "%-14s", "algorithm")
	for _, sp := range specs {
		fmt.Fprintf(w, "%22s", sp.Name)
	}
	fmt.Fprintln(w)
	var all []*Measurement
	base := map[string]float64{}
	for _, alg := range StandardCurves {
		row := make([]float64, len(specs))
		for i, sp := range specs {
			m, err := runCell(sp, RunConfig{
				Algorithm: alg, Threads: 1, Mix: ReadMostly,
				TxnsPerThread: hc.TxnsPerThread, Duration: hc.Duration, Seed: hc.Seed,
				Tracker: hc.Tracker, DisableExtension: hc.DisableExtension,
				CM: hc.CM, MaxAttempts: hc.MaxAttempts,
				OrecLayout: hc.OrecLayout, DisableHintCache: hc.DisableHintCache,
				Clock: hc.Clock, OrderBatch: hc.OrderBatch,
				Free: hc.Free, DisableSandbox: hc.DisableSandbox,
				ZipfTheta: hc.ZipfTheta,
			}, hc.Reps)
			if err != nil {
				return nil, err
			}
			all = append(all, m)
			row[i] = m.Throughput
			if alg == stm.TL2 {
				base[sp.Name] = m.Throughput
			}
		}
		fmt.Fprintf(w, "%-14s", alg)
		for i, sp := range specs {
			rel := 0.0
			if b := base[sp.Name]; b > 0 {
				rel = row[i] / b
			}
			fmt.Fprintf(w, "%22.2f", rel)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	return all, nil
}

// FigureIDs returns all known figure ids in order.
func FigureIDs() []string {
	ids := make([]string, len(Figures))
	for i, f := range Figures {
		ids[i] = f.ID
	}
	return ids
}

// WriteCSV emits measurements as CSV rows (with header) for external
// plotting: workload, algorithm, threads, mix, ops, seconds, ops/sec,
// %fenced, %visible-reads-skipped, aborts, commits.
func WriteCSV(w io.Writer, ms []*Measurement) {
	fmt.Fprintln(w, "workload,algorithm,threads,mix,ops,seconds,ops_per_sec,pct_fenced,pct_vis_skipped,aborts,commits")
	for _, m := range ms {
		fmt.Fprintf(w, "%q,%s,%d,%s,%d,%.4f,%.1f,%.2f,%.2f,%d,%d\n",
			m.Workload, m.Algorithm, m.Threads, m.Mix,
			m.Ops, m.Elapsed.Seconds(), m.Throughput,
			m.Stats.PercentWritersFenced(), m.Stats.PercentVisibleReadsSkipped(),
			m.Stats.Aborts, m.Stats.Commits)
	}
}

// SortMeasurements orders measurements by (workload, algorithm, threads)
// for stable test output.
func SortMeasurements(ms []*Measurement) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Algorithm != b.Algorithm {
			return a.Algorithm < b.Algorithm
		}
		return a.Threads < b.Threads
	})
}

// ParseThreads parses a comma-separated thread list like "1,2,4,8".
func ParseThreads(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("bench: bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
