// Remote macro-benchmark: stmbench -remote drives a running stmd instance
// over the wire protocol with thousands of concurrent connections, Zipf-
// skewed keys, and per-tenant operation mixes, reporting throughput and
// latency quantiles in the same JSON schema as the local cells (remote_*
// fields) so -compare works across macro runs.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"privstm/internal/rng"
	"privstm/internal/server"
)

// RemoteMix is the per-connection operation mix in percent; the five shares
// must sum to 100. Privatize is the share of PRIVATIZE-SNAPSHOT requests —
// keep it small, each one detaches a whole bucket.
type RemoteMix struct {
	GetPct       int
	PutPct       int
	CASPct       int
	DeletePct    int
	PrivatizePct int
}

func (m RemoteMix) total() int {
	return m.GetPct + m.PutPct + m.CASPct + m.DeletePct + m.PrivatizePct
}

// DefaultRemoteMix is a read-mostly KV profile with a trickle of
// privatization.
var DefaultRemoteMix = RemoteMix{GetPct: 70, PutPct: 20, CASPct: 5, DeletePct: 4, PrivatizePct: 1}

// RemoteTenant weights one tenant's share of the connection pool.
type RemoteTenant struct {
	Name   string
	Weight int
	// Mix overrides the run-level mix for this tenant's connections when
	// non-zero.
	Mix RemoteMix
}

// RemoteConfig configures one RunRemote macro run.
type RemoteConfig struct {
	Addr     string
	Conns    int
	Duration time.Duration // wall-clock budget per connection loop
	Keys     int           // key space (Zipf-ranked)
	Batch    int           // keys per multi-key GET/PUT/DELETE request
	Zipf     float64       // key skew; 0 = uniform
	Seed     uint64
	Mix      RemoteMix
	Tenants  []RemoteTenant // empty = single anonymous tenant
}

func (rc *RemoteConfig) fill() error {
	if rc.Addr == "" {
		return fmt.Errorf("bench: remote run needs an address")
	}
	if rc.Conns <= 0 {
		rc.Conns = 64
	}
	if rc.Duration <= 0 {
		rc.Duration = time.Second
	}
	if rc.Keys <= 0 {
		rc.Keys = 1 << 16
	}
	if rc.Batch <= 0 {
		rc.Batch = 4
	}
	if rc.Seed == 0 {
		rc.Seed = defaultSeed
	}
	if rc.Mix.total() == 0 {
		rc.Mix = DefaultRemoteMix
	}
	if rc.Mix.total() != 100 {
		return fmt.Errorf("bench: remote mix %+v sums to %d, want 100", rc.Mix, rc.Mix.total())
	}
	for i := range rc.Tenants {
		t := &rc.Tenants[i]
		if t.Weight <= 0 {
			t.Weight = 1
		}
		if t.Mix.total() == 0 {
			t.Mix = rc.Mix
		} else if t.Mix.total() != 100 {
			return fmt.Errorf("bench: tenant %q mix sums to %d, want 100", t.Name, t.Mix.total())
		}
	}
	if len(rc.Tenants) == 0 {
		rc.Tenants = []RemoteTenant{{Name: "", Weight: 1, Mix: rc.Mix}}
	}
	return nil
}

// RemoteStats carries the remote-only result fields of a Measurement.
type RemoteStats struct {
	Conns          int
	Workers        int
	P50            time.Duration
	P99            time.Duration
	Requests       uint64
	CommittedTxns  uint64
	QuotaAborts    uint64
	DeadlineAborts uint64
	PrivatizeOps   uint64
	TenantQuota    map[string]uint64
	// TransportErrs counts requests lost to connection errors (0 on a
	// healthy run).
	TransportErrs uint64
}

// latHist is a lock-free log-linear latency histogram: 16 linear
// sub-buckets per power of two of nanoseconds. Workers share one histogram
// through atomic adds; quantiles are reconstructed at bucket midpoints
// (≤ ~6% relative error, plenty for p50/p99 reporting).
type latHist struct {
	counts [64 * 16]atomic.Uint64
	n      atomic.Uint64
}

func (h *latHist) bucket(ns uint64) int {
	if ns < 16 {
		return int(ns)
	}
	exp := bits.Len64(ns) - 1 // top bit position, ≥ 4
	sub := (ns >> (uint(exp) - 4)) & 15
	return (exp-3)*16 + int(sub)
}

func (h *latHist) add(d time.Duration) {
	h.counts[h.bucket(uint64(d.Nanoseconds()))].Add(1)
	h.n.Add(1)
}

func (h *latHist) value(b int) time.Duration {
	if b < 16 {
		return time.Duration(b)
	}
	exp := b/16 + 3
	sub := uint64(b % 16)
	lo := (uint64(1) << uint(exp)) | (sub << (uint(exp) - 4))
	mid := lo + (uint64(1) << (uint(exp) - 4 - 1))
	return time.Duration(mid)
}

func (h *latHist) quantile(q float64) time.Duration {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for b := range h.counts {
		seen += h.counts[b].Load()
		if seen > rank {
			return h.value(b)
		}
	}
	return h.value(len(h.counts) - 1)
}

// RunRemote drives the stmd instance at cfg.Addr and returns one
// measurement cell. w receives progress lines (nil for quiet).
func RunRemote(w io.Writer, cfg RemoteConfig) (*Measurement, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if w == nil {
		w = io.Discard
	}

	// Control connection: algorithm label and the before-side of the
	// server counter deltas.
	ctl, alg, err := server.Dial(cfg.Addr, "")
	if err != nil {
		return nil, fmt.Errorf("bench: remote dial %s: %w", cfg.Addr, err)
	}
	defer ctl.Close()
	before, err := fetchStats(ctl)
	if err != nil {
		return nil, err
	}

	// Assign tenants to connections proportionally to weight.
	var weightSum int
	for _, t := range cfg.Tenants {
		weightSum += t.Weight
	}
	tenantOf := func(conn int) *RemoteTenant {
		w := conn * weightSum / cfg.Conns
		for i := range cfg.Tenants {
			if w < cfg.Tenants[i].Weight {
				return &cfg.Tenants[i]
			}
			w -= cfg.Tenants[i].Weight
		}
		return &cfg.Tenants[len(cfg.Tenants)-1]
	}

	fmt.Fprintf(w, "remote %s: %d conns, %v, keys %d, zipf %.2f, %d tenants\n",
		cfg.Addr, cfg.Conns, cfg.Duration, cfg.Keys, cfg.Zipf, len(cfg.Tenants))

	var (
		hist          latHist
		ops           atomic.Uint64
		transportErrs atomic.Uint64
		dialErrs      atomic.Uint64
		wg            sync.WaitGroup
	)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ten := tenantOf(id)
			c, _, err := server.Dial(cfg.Addr, ten.Name)
			if err != nil {
				dialErrs.Add(1)
				return
			}
			defer c.Close()
			driveConn(c, id, &cfg, ten.Mix, deadline, &hist, &ops, &transportErrs)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := fetchStats(ctl)
	if err != nil {
		return nil, err
	}
	if n := dialErrs.Load(); n > 0 {
		return nil, fmt.Errorf("bench: %d/%d connections failed to dial (server MaxConns too low?)", n, cfg.Conns)
	}

	tenantDelta := map[string]uint64{}
	for name, n := range after.TenantQuota {
		if d := n - before.TenantQuota[name]; d > 0 {
			tenantDelta[name] = d
		}
	}
	m := &Measurement{
		Fig:       "remote",
		Workload:  "remote-kv",
		Algorithm: alg,
		Threads:   cfg.Conns,
		Mix:       Mix{InsertPct: cfg.Mix.PutPct + cfg.Mix.CASPct, DeletePct: cfg.Mix.DeletePct},
		Ops:       ops.Load(),
		Elapsed:   elapsed,
		ZipfTheta: cfg.Zipf,
		Remote: &RemoteStats{
			Conns:          cfg.Conns,
			Workers:        after.Workers,
			P50:            hist.quantile(0.50),
			P99:            hist.quantile(0.99),
			Requests:       ops.Load(),
			CommittedTxns:  after.Committed - before.Committed,
			QuotaAborts:    after.QuotaAborts - before.QuotaAborts,
			DeadlineAborts: after.DeadlineAborts - before.DeadlineAborts,
			PrivatizeOps:   after.PrivatizeOps - before.PrivatizeOps,
			TenantQuota:    tenantDelta,
			TransportErrs:  transportErrs.Load(),
		},
	}
	if elapsed > 0 {
		m.Throughput = float64(m.Ops) / elapsed.Seconds()
	}
	m.Stats.Commits = m.Remote.CommittedTxns
	fmt.Fprintf(w, "  %.0f req/s over %d conns on %d workers; p50 %v p99 %v; %d committed txns, %d quota aborts, %d privatize ops\n",
		m.Throughput, cfg.Conns, after.Workers, m.Remote.P50, m.Remote.P99,
		m.Remote.CommittedTxns, m.Remote.QuotaAborts, m.Remote.PrivatizeOps)
	if names := sortedKeys(tenantDelta); len(names) > 0 {
		for _, name := range names {
			fmt.Fprintf(w, "  tenant %-12s quota aborts %d\n", name, tenantDelta[name])
		}
	}
	return m, nil
}

func sortedKeys(m map[string]uint64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func fetchStats(c *server.Client) (server.StatsSnapshot, error) {
	raw, err := c.Stats()
	if err != nil {
		return server.StatsSnapshot{}, fmt.Errorf("bench: remote STATS: %w", err)
	}
	var ss server.StatsSnapshot
	if err := json.Unmarshal(raw, &ss); err != nil {
		return server.StatsSnapshot{}, fmt.Errorf("bench: remote STATS decode: %w", err)
	}
	return ss, nil
}

// driveConn is one connection's request loop. Every request is timed; any
// non-transport status (quota, deadline, cancelled) still counts as a
// completed request — the server aborted the transaction cleanly, which is
// the behaviour under test.
func driveConn(c *server.Client, id int, cfg *RemoteConfig, mix RemoteMix,
	deadline time.Time, hist *latHist, ops, transportErrs *atomic.Uint64) {
	r := rng.New(cfg.Seed + uint64(id)*0x9e37 + 1)
	z := rng.NewZipf(r, uint64(cfg.Keys), cfg.Zipf)
	scratch := make([]uint64, 0, 3*cfg.Batch)
	key := func() uint64 { return z.Next() }
	for n := 0; ; n++ {
		// Amortize the clock check like the local harness does.
		if n&15 == 0 && time.Now().After(deadline) {
			return
		}
		pick := r.Intn(100)
		t0 := time.Now()
		var err error
		switch {
		case pick < mix.GetPct:
			scratch = scratch[:0]
			for i := 0; i < cfg.Batch; i++ {
				scratch = append(scratch, key())
			}
			_, _, _, err = c.Get(scratch)
		case pick < mix.GetPct+mix.PutPct:
			scratch = scratch[:0]
			for i := 0; i < cfg.Batch; i++ {
				k := key()
				scratch = append(scratch, k, k*2+1)
			}
			_, err = c.Put(scratch)
		case pick < mix.GetPct+mix.PutPct+mix.CASPct:
			k := key()
			_, _, err = c.CAS([]uint64{k, k*2 + 1, k*2 + 3})
		case pick < mix.GetPct+mix.PutPct+mix.CASPct+mix.DeletePct:
			scratch = scratch[:0]
			for i := 0; i < cfg.Batch; i++ {
				scratch = append(scratch, key())
			}
			_, _, err = c.Delete(scratch)
		default:
			_, _, err = c.Snapshot(r.Uint64())
		}
		if err != nil {
			transportErrs.Add(1)
			return
		}
		hist.add(time.Since(t0))
		ops.Add(1)
	}
}
