package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// jsonMeasurement is the stable on-disk form of one cell. It flattens
// Measurement to primitives so baseline files survive internal struct
// changes, and carries the run configuration needed to match cells across
// files.
type jsonMeasurement struct {
	Fig        string  `json:"fig,omitempty"`
	Workload   string  `json:"workload"`
	Algorithm  string  `json:"algorithm"`
	Threads    int     `json:"threads"`
	Mix        string  `json:"mix"`
	Ops        uint64  `json:"ops"`
	Seconds    float64 `json:"seconds"`
	Throughput float64 `json:"ops_per_sec"`
	Aborts     uint64  `json:"aborts"`
	Commits    uint64  `json:"commits"`
	Fenced     uint64  `json:"fenced"`
	Validation uint64  `json:"validations"`
	Extensions uint64  `json:"extensions"`
	Serialized uint64  `json:"serialized"`
	Stalls     uint64  `json:"fence_stalls"`
}

// jsonFile is the envelope written by WriteJSON.
type jsonFile struct {
	// Label describes the configuration that produced the file (e.g.
	// "tracker=slot extension=on"); Compare prints it in its header.
	Label string            `json:"label,omitempty"`
	Cells []jsonMeasurement `json:"cells"`
}

// cellKey identifies a measurement across baseline and candidate files.
func (jm *jsonMeasurement) cellKey() string {
	return fmt.Sprintf("%s|%s|%s|%d|%s", jm.Fig, jm.Workload, jm.Algorithm, jm.Threads, jm.Mix)
}

// WriteJSON writes measurements (with a configuration label) as a stable
// JSON document for later comparison with Compare.
func WriteJSON(w io.Writer, label string, ms []*Measurement) error {
	f := jsonFile{Label: label}
	for _, m := range ms {
		f.Cells = append(f.Cells, jsonMeasurement{
			Fig:        m.Fig,
			Workload:   m.Workload,
			Algorithm:  m.Algorithm,
			Threads:    m.Threads,
			Mix:        m.Mix.String(),
			Ops:        m.Ops,
			Seconds:    m.Elapsed.Seconds(),
			Throughput: m.Throughput,
			Aborts:     m.Stats.Aborts,
			Commits:    m.Stats.Commits,
			Fenced:     m.Stats.Fenced,
			Validation: m.Stats.Validations,
			Extensions: m.Stats.Extensions,
			Serialized: m.Stats.Serialized,
			Stalls:     m.Stats.FenceStalls,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadJSON loads a document produced by WriteJSON.
func ReadJSON(path string) (label string, cells []jsonMeasurement, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	var f jsonFile
	if err := json.Unmarshal(data, &f); err != nil {
		return "", nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return f.Label, f.Cells, nil
}

// Compare prints a per-cell throughput delta table between two WriteJSON
// documents, matching cells by (fig, workload, algorithm, threads, mix).
// Cells present in only one file are listed separately. It returns the
// worst (most negative) percentage change over the matched cells.
func Compare(w io.Writer, oldPath, newPath string) (worstPct float64, err error) {
	oldLabel, oldCells, err := ReadJSON(oldPath)
	if err != nil {
		return 0, err
	}
	newLabel, newCells, err := ReadJSON(newPath)
	if err != nil {
		return 0, err
	}
	oldBy := make(map[string]*jsonMeasurement, len(oldCells))
	for i := range oldCells {
		oldBy[oldCells[i].cellKey()] = &oldCells[i]
	}

	fmt.Fprintf(w, "baseline:  %s (%s)\n", oldPath, orUnlabeled(oldLabel))
	fmt.Fprintf(w, "candidate: %s (%s)\n\n", newPath, orUnlabeled(newLabel))
	fmt.Fprintf(w, "%-4s %-22s %-14s %7s %9s  %12s %12s %8s\n",
		"fig", "workload", "algorithm", "threads", "mix", "old ops/s", "new ops/s", "delta")

	matched := 0
	var unmatchedNew []string
	sorted := append([]jsonMeasurement(nil), newCells...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].cellKey() < sorted[j].cellKey() })
	for i := range sorted {
		nc := &sorted[i]
		oc, ok := oldBy[nc.cellKey()]
		if !ok {
			unmatchedNew = append(unmatchedNew, nc.cellKey())
			continue
		}
		delete(oldBy, nc.cellKey())
		pct := 0.0
		if oc.Throughput > 0 {
			pct = 100 * (nc.Throughput - oc.Throughput) / oc.Throughput
		}
		if matched == 0 || pct < worstPct {
			worstPct = pct
		}
		matched++
		fmt.Fprintf(w, "%-4s %-22s %-14s %7d %9s  %12.0f %12.0f %+7.1f%%\n",
			nc.Fig, nc.Workload, nc.Algorithm, nc.Threads, nc.Mix,
			oc.Throughput, nc.Throughput, pct)
	}
	fmt.Fprintf(w, "\n%d cells compared; worst delta %+.1f%%\n", matched, worstPct)
	if len(unmatchedNew) > 0 {
		fmt.Fprintf(w, "only in candidate: %d cells\n", len(unmatchedNew))
	}
	if len(oldBy) > 0 {
		fmt.Fprintf(w, "only in baseline: %d cells\n", len(oldBy))
	}
	return worstPct, nil
}

func orUnlabeled(label string) string {
	if label == "" {
		return "unlabeled"
	}
	return label
}
