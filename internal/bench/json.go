package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// jsonMeasurement is the stable on-disk form of one cell. It flattens
// Measurement to primitives so baseline files survive internal struct
// changes, and carries the run configuration needed to match cells across
// files.
type jsonMeasurement struct {
	Fig       string `json:"fig,omitempty"`
	Workload  string `json:"workload"`
	Algorithm string `json:"algorithm"`
	Threads   int    `json:"threads"`
	Mix       string `json:"mix"`
	// OrecLayout is the orec-table layout the cell ran under; empty and
	// "aos" both mean the default array-of-structures layout (older
	// baseline files predate the field).
	OrecLayout string `json:"orec_layout,omitempty"`
	// Clock is the version-clock scheme; empty and "gv1" both mean the
	// default CAS-per-commit global clock (older files predate the field).
	Clock string `json:"clock,omitempty"`
	// OrderBatch is the Ord flat-combining bound the cell ran with (0 = off).
	OrderBatch int `json:"order_batch,omitempty"`
	// ZipfTheta is the key-distribution skew the cell ran with (0 = uniform,
	// the default for all figures predating -zipf).
	ZipfTheta  float64 `json:"zipf_theta,omitempty"`
	Ops        uint64  `json:"ops"`
	Seconds    float64 `json:"seconds"`
	Throughput float64 `json:"ops_per_sec"`
	// Stddev is the sample standard deviation of per-repetition
	// throughput; zero when the cell ran fewer than two repetitions.
	Stddev float64 `json:"ops_per_sec_stddev,omitempty"`
	Runs   int     `json:"runs,omitempty"`
	// PairedMedianPct is the median of the per-pair throughput deltas
	// against the interleaved baseline run (RunPaired cells only).
	PairedMedianPct float64 `json:"paired_median_delta_pct,omitempty"`
	Pairs           int     `json:"pairs,omitempty"`
	Aborts          uint64  `json:"aborts"`
	Commits         uint64  `json:"commits"`
	Fenced          uint64  `json:"fenced"`
	Validation      uint64  `json:"validations"`
	Extensions      uint64  `json:"extensions"`
	Serialized      uint64  `json:"serialized"`
	Stalls          uint64  `json:"fence_stalls"`
	// ClockTicks counts commit-path global-clock RMWs: the quantity the
	// deferred clock modes exist to eliminate (0 under gv5/local).
	ClockTicks    uint64 `json:"clock_ticks,omitempty"`
	ClockAdvances uint64 `json:"clock_advances,omitempty"`
	Combined      uint64 `json:"combined,omitempty"`
	// ReclaimCollects counts epoch-collection passes; 0 when the cell ran
	// without the reclaimer (FreePool/FreeLeak, or older baseline files).
	ReclaimCollects uint64 `json:"reclaim_collects,omitempty"`
	// SandboxValidations counts validate-before-dangerous-use checkpoints.
	SandboxValidations uint64 `json:"sandbox_validations,omitempty"`
	// SemanticSkips counts commit-time validations skipped because the
	// operation commuted at the abstract level (tds counter-shaped ops).
	SemanticSkips uint64 `json:"semantic_skips,omitempty"`
	// AbstractLockConflicts counts aborts caused by abstract-lock (semantic
	// stripe) acquisition or validation failure rather than word-level orecs.
	AbstractLockConflicts uint64 `json:"abstract_lock_conflicts,omitempty"`
	// Structs carries per-structure op/abort attribution for mixed
	// workloads (e.g. "map" and "queue" in the tds cell).
	Structs map[string]jsonStructStat `json:"structs,omitempty"`
	// remote_* fields: present only on stmbench -remote macro cells.
	// Threads then counts client connections; RemoteWorkers is the server's
	// STM worker-pool size (the transactional footprint the connections
	// multiplex onto).
	RemoteConns          int               `json:"remote_conns,omitempty"`
	RemoteWorkers        int               `json:"remote_workers,omitempty"`
	RemoteP50Us          float64           `json:"remote_p50_us,omitempty"`
	RemoteP99Us          float64           `json:"remote_p99_us,omitempty"`
	RemoteQuotaAborts    uint64            `json:"remote_quota_aborts,omitempty"`
	RemoteTenantQuota    map[string]uint64 `json:"remote_tenant_quota_aborts,omitempty"`
	RemoteDeadlineAborts uint64            `json:"remote_deadline_aborts,omitempty"`
	RemotePrivatizeOps   uint64            `json:"remote_privatize_ops,omitempty"`
	RemoteTransportErrs  uint64            `json:"remote_transport_errs,omitempty"`
	// Exhausted marks a cell that ran the heap out of address space before
	// completing its quota (leak-policy soak cells).
	Exhausted bool `json:"exhausted,omitempty"`
}

// jsonStructStat is the on-disk per-structure abort attribution.
type jsonStructStat struct {
	Ops      uint64  `json:"ops"`
	Aborts   uint64  `json:"aborts"`
	AbortPct float64 `json:"abort_pct"`
}

// jsonMicro is the on-disk form of one read-path microbenchmark result.
type jsonMicro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// jsonFile is the envelope written by WriteJSON.
type jsonFile struct {
	// Label describes the configuration that produced the file (e.g.
	// "tracker=slot extension=on"); Compare prints it in its header.
	Label string            `json:"label,omitempty"`
	Cells []jsonMeasurement `json:"cells"`
	Micro []jsonMicro       `json:"micro,omitempty"`
}

// cellKey identifies a measurement across baseline and candidate files.
// The orec layout participates only when it differs from the default, so
// baseline files written before the field existed still match default-
// layout candidate cells.
func (jm *jsonMeasurement) cellKey() string {
	k := fmt.Sprintf("%s|%s|%s|%d|%s", jm.Fig, jm.Workload, jm.Algorithm, jm.Threads, jm.Mix)
	if jm.OrecLayout != "" && jm.OrecLayout != "aos" {
		k += "|" + jm.OrecLayout
	}
	// The clock scheme and batcher bound participate the same way: only
	// when non-default, so older baselines keep matching.
	if jm.Clock != "" && jm.Clock != "gv1" {
		k += "|" + jm.Clock
	}
	if jm.OrderBatch > 0 {
		k += fmt.Sprintf("|b%d", jm.OrderBatch)
	}
	// Key skew distinguishes cells the same way: uniform (the historic
	// default) adds nothing, so old baselines keep matching.
	if jm.ZipfTheta > 0 {
		k += fmt.Sprintf("|z%.2f", jm.ZipfTheta)
	}
	// Remote macro cells are keyed by connection count too (Threads already
	// carries it, but the explicit tag keeps local and remote cells from
	// ever aliasing).
	if jm.RemoteConns > 0 {
		k += fmt.Sprintf("|c%d", jm.RemoteConns)
	}
	return k
}

// stddev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// WriteJSON writes measurements (with a configuration label) as a stable
// JSON document for later comparison with Compare.
func WriteJSON(w io.Writer, label string, ms []*Measurement) error {
	return WriteJSONReport(w, label, ms, nil)
}

// WriteJSONReport is WriteJSON plus an optional microbenchmark section.
func WriteJSONReport(w io.Writer, label string, ms []*Measurement, micro []MicroResult) error {
	f := jsonFile{Label: label}
	for _, m := range ms {
		clk := m.Clock
		if clk == "gv1" {
			clk = "" // default scheme: keep old files byte-comparable
		}
		jm := jsonMeasurement{
			Fig:                   m.Fig,
			Workload:              m.Workload,
			Algorithm:             m.Algorithm,
			Threads:               m.Threads,
			Mix:                   m.Mix.String(),
			OrecLayout:            m.Layout,
			Clock:                 clk,
			OrderBatch:            m.OrderBatch,
			Ops:                   m.Ops,
			Seconds:               m.Elapsed.Seconds(),
			Throughput:            m.Throughput,
			Stddev:                stddev(m.RepThroughputs),
			Runs:                  len(m.RepThroughputs),
			Aborts:                m.Stats.Aborts,
			Commits:               m.Stats.Commits,
			Fenced:                m.Stats.Fenced,
			Validation:            m.Stats.Validations,
			Extensions:            m.Stats.Extensions,
			Serialized:            m.Stats.Serialized,
			Stalls:                m.Stats.FenceStalls,
			ClockTicks:            m.Stats.ClockTicks,
			ClockAdvances:         m.Stats.ClockAdvances,
			Combined:              m.Stats.Combined,
			ReclaimCollects:       m.ReclaimCollects,
			SandboxValidations:    m.Stats.SandboxValidations,
			SemanticSkips:         m.Stats.SemanticSkips,
			AbstractLockConflicts: m.Stats.AbstractLockConflicts,
			ZipfTheta:             m.ZipfTheta,
			Exhausted:             m.Exhausted,
		}
		if len(m.Structs) > 0 {
			jm.Structs = make(map[string]jsonStructStat, len(m.Structs))
			for name, ss := range m.Structs {
				jm.Structs[name] = jsonStructStat{Ops: ss.Ops, Aborts: ss.Aborts, AbortPct: ss.AbortPct()}
			}
		}
		if len(m.PairDeltas) > 0 {
			jm.PairedMedianPct = Median(m.PairDeltas)
			jm.Pairs = len(m.PairDeltas)
		}
		if r := m.Remote; r != nil {
			jm.RemoteConns = r.Conns
			jm.RemoteWorkers = r.Workers
			jm.RemoteP50Us = float64(r.P50.Nanoseconds()) / 1e3
			jm.RemoteP99Us = float64(r.P99.Nanoseconds()) / 1e3
			jm.RemoteQuotaAborts = r.QuotaAborts
			jm.RemoteDeadlineAborts = r.DeadlineAborts
			jm.RemotePrivatizeOps = r.PrivatizeOps
			jm.RemoteTransportErrs = r.TransportErrs
			if len(r.TenantQuota) > 0 {
				jm.RemoteTenantQuota = r.TenantQuota
			}
		}
		f.Cells = append(f.Cells, jm)
	}
	for _, mr := range micro {
		f.Micro = append(f.Micro, jsonMicro(mr))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

func readJSONFile(path string) (jsonFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return jsonFile{}, err
	}
	var f jsonFile
	if err := json.Unmarshal(data, &f); err != nil {
		return jsonFile{}, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return f, nil
}

// ReadJSON loads a document produced by WriteJSON.
func ReadJSON(path string) (label string, cells []jsonMeasurement, err error) {
	f, err := readJSONFile(path)
	if err != nil {
		return "", nil, err
	}
	return f.Label, f.Cells, nil
}

// Compare prints a per-cell throughput delta table between two WriteJSON
// documents, matching cells by (fig, workload, algorithm, threads, mix,
// non-default orec layout) and microbenchmarks by name. It returns the
// worst (most negative) percentage change over all matched cells and
// micros; for micros the delta is expressed in throughput terms
// (old ns/op vs new ns/op), so slower is negative, same as cells.
func Compare(w io.Writer, oldPath, newPath string) (worstPct float64, err error) {
	oldFile, err := readJSONFile(oldPath)
	if err != nil {
		return 0, err
	}
	newFile, err := readJSONFile(newPath)
	if err != nil {
		return 0, err
	}
	oldCells, newCells := oldFile.Cells, newFile.Cells
	oldBy := make(map[string]*jsonMeasurement, len(oldCells))
	for i := range oldCells {
		oldBy[oldCells[i].cellKey()] = &oldCells[i]
	}

	fmt.Fprintf(w, "baseline:  %s (%s)\n", oldPath, orUnlabeled(oldFile.Label))
	fmt.Fprintf(w, "candidate: %s (%s)\n\n", newPath, orUnlabeled(newFile.Label))
	fmt.Fprintf(w, "%-4s %-22s %-14s %7s %9s  %12s %12s %8s\n",
		"fig", "workload", "algorithm", "threads", "mix", "old ops/s", "new ops/s", "delta")

	matched := 0
	note := func(pct float64) {
		if matched == 0 || pct < worstPct {
			worstPct = pct
		}
		matched++
	}
	var unmatchedNew []string
	sorted := append([]jsonMeasurement(nil), newCells...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].cellKey() < sorted[j].cellKey() })
	for i := range sorted {
		nc := &sorted[i]
		oc, ok := oldBy[nc.cellKey()]
		if !ok {
			unmatchedNew = append(unmatchedNew, nc.cellKey())
			continue
		}
		delete(oldBy, nc.cellKey())
		pct := 0.0
		if oc.Throughput > 0 {
			pct = 100 * (nc.Throughput - oc.Throughput) / oc.Throughput
		}
		note(pct)
		layout := nc.Algorithm
		if nc.OrecLayout != "" && nc.OrecLayout != "aos" {
			layout += "/" + nc.OrecLayout
		}
		if nc.Clock != "" && nc.Clock != "gv1" {
			layout += "@" + nc.Clock
		}
		if nc.OrderBatch > 0 {
			layout += fmt.Sprintf("+b%d", nc.OrderBatch)
		}
		fmt.Fprintf(w, "%-4s %-22s %-14s %7d %9s  %12.0f %12.0f %+7.1f%%\n",
			nc.Fig, nc.Workload, layout, nc.Threads, nc.Mix,
			oc.Throughput, nc.Throughput, pct)
		if nc.SemanticSkips > 0 || oc.SemanticSkips > 0 {
			fmt.Fprintf(w, "     · semantic skips %d -> %d, abstract-lock conflicts %d -> %d\n",
				oc.SemanticSkips, nc.SemanticSkips,
				oc.AbstractLockConflicts, nc.AbstractLockConflicts)
		}
		if len(nc.Structs) > 0 || len(oc.Structs) > 0 {
			names := make([]string, 0, len(nc.Structs)+len(oc.Structs))
			seen := map[string]bool{}
			for name := range oc.Structs {
				names, seen[name] = append(names, name), true
			}
			for name := range nc.Structs {
				if !seen[name] {
					names = append(names, name)
				}
			}
			sort.Strings(names)
			for _, name := range names {
				os, ns := oc.Structs[name], nc.Structs[name]
				fmt.Fprintf(w, "     · %-8s abort rate %5.2f%% -> %5.2f%%  (%d/%d -> %d/%d aborts/ops)\n",
					name, os.AbortPct, ns.AbortPct, os.Aborts, os.Ops, ns.Aborts, ns.Ops)
			}
		}
	}

	if len(oldFile.Micro) > 0 && len(newFile.Micro) > 0 {
		oldMicro := make(map[string]jsonMicro, len(oldFile.Micro))
		for _, m := range oldFile.Micro {
			oldMicro[m.Name] = m
		}
		fmt.Fprintf(w, "\n%-28s %12s %12s %8s  %s\n",
			"microbenchmark", "old ns/op", "new ns/op", "delta", "allocs old->new")
		for _, nm := range newFile.Micro {
			om, ok := oldMicro[nm.Name]
			if !ok {
				continue
			}
			pct := 0.0
			if om.NsPerOp > 0 {
				// Throughput-style sign: fewer ns/op is positive.
				pct = 100 * (om.NsPerOp - nm.NsPerOp) / om.NsPerOp
			}
			note(pct)
			fmt.Fprintf(w, "%-28s %12.1f %12.1f %+7.1f%%  %.0f -> %.0f\n",
				nm.Name, om.NsPerOp, nm.NsPerOp, pct, om.AllocsPerOp, nm.AllocsPerOp)
		}
	}

	fmt.Fprintf(w, "\n%d entries compared; worst delta %+.1f%%\n", matched, worstPct)
	if len(unmatchedNew) > 0 {
		fmt.Fprintf(w, "only in candidate: %d cells\n", len(unmatchedNew))
	}
	if len(oldBy) > 0 {
		fmt.Fprintf(w, "only in baseline: %d cells\n", len(oldBy))
	}
	return worstPct, nil
}

func orUnlabeled(label string) string {
	if label == "" {
		return "unlabeled"
	}
	return label
}
