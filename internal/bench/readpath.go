package bench

import (
	"fmt"
	"io"
	"testing"

	"privstm/internal/core"
)

// Read-barrier microbenchmarks. These measure the two MakeVisible paths in
// isolation — the covered re-read (the common case §II-E optimizes for) and
// the full hint publication — for both visibility protocols. They back the
// BENCH_readpath baseline: macrobenchmarks tell us whether the read path
// scales, these tell us *why* (cycles and allocations per barrier).
//
// The benchmark bodies live here, outside a _test.go file, so that
// stmbench -micro can run them through testing.Benchmark and embed the
// results in its JSON report next to the figure cells; readpath_test.go
// wraps the same bodies for `go test -bench`.

// MicroResult is one microbenchmark outcome, as embedded in the JSON
// report.
type MicroResult struct {
	Name        string
	NsPerOp     float64
	AllocsPerOp float64
	BytesPerOp  float64
}

// microProtos pairs the protocol labels used in benchmark names with the
// core selector.
var microProtos = []struct {
	Name  string
	Proto core.VisProto
}{
	{"CAS", core.VisCAS},
	{"Store", core.VisStore},
}

// newMicroThread builds a runtime with a single registered, active thread,
// ready to issue visibility updates.
func newMicroThread() (*core.Runtime, *core.Thread, error) {
	rt, err := core.NewRuntime(core.Options{HeapWords: 1 << 12, OrecCount: 1 << 8, MaxThreads: 4})
	if err != nil {
		return nil, nil, err
	}
	t, err := rt.NewThread()
	if err != nil {
		return nil, nil, err
	}
	t.ResetTxnState()
	t.StartSnapshot(rt.Active.Enter(t))
	t.Visible = true
	t.PublishActive(t.BeginTS)
	return rt, t, nil
}

// benchMakeVisibleCovered measures the re-read barrier: the thread has
// already published a hint on the orec, so every MakeVisible call takes the
// covered fast path.
func benchMakeVisibleCovered(b *testing.B, proto core.VisProto) {
	b.ReportAllocs()
	rt, t, err := newMicroThread()
	if err != nil {
		b.Fatal(err)
	}
	_ = rt
	o := rt.Orecs.At(0)
	t.MakeVisible(o, false, proto) // publish once; the loop re-reads
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.MakeVisible(o, false, proto)
	}
}

// benchMakeVisiblePublish measures the full-update barrier: the orec's vis
// word is cleared and the transaction state reset each iteration, so every
// MakeVisible call publishes a fresh hint (plus the per-transaction reset
// cost, which is part of the path's steady-state price).
func benchMakeVisiblePublish(b *testing.B, proto core.VisProto) {
	b.ReportAllocs()
	rt, t, err := newMicroThread()
	if err != nil {
		b.Fatal(err)
	}
	o := rt.Orecs.At(0)
	ts := t.BeginTS
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Vis().Store(0)
		t.ResetTxnState()
		t.StartSnapshot(ts)
		t.MakeVisible(o, false, proto)
	}
}

// ReadPathMicros runs every read-path microbenchmark once through
// testing.Benchmark and returns the results.
func ReadPathMicros() []MicroResult {
	var out []MicroResult
	for _, p := range microProtos {
		proto := p.Proto
		out = append(out, runMicro("MakeVisibleCovered/"+p.Name, func(b *testing.B) {
			benchMakeVisibleCovered(b, proto)
		}))
		out = append(out, runMicro("MakeVisiblePublish/"+p.Name, func(b *testing.B) {
			benchMakeVisiblePublish(b, proto)
		}))
	}
	return out
}

func runMicro(name string, fn func(*testing.B)) MicroResult {
	r := testing.Benchmark(fn)
	return MicroResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
	}
}

// WriteMicroTable prints micro results in a benchstat-like table.
func WriteMicroTable(w io.Writer, ms []MicroResult) {
	fmt.Fprintf(w, "%-28s %12s %12s %12s\n", "microbenchmark", "ns/op", "allocs/op", "B/op")
	for _, m := range ms {
		fmt.Fprintf(w, "%-28s %12.1f %12.1f %12.1f\n", m.Name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
	}
}
