package bench

import (
	"fmt"
	"sort"

	stm "privstm"
	"privstm/internal/rng"
)

// The multi-list microbenchmark of §V: a collection of 64 independent
// sorted linked lists with 64 (moderate) or 512 (large) entries each —
// "transactions accessing several dozen to hundreds of locations".
//
// A key selects its list by modulus, so transactions on different lists
// are data-parallel; within a list, a sorted search visits half the
// entries on average.
type multilist struct {
	heads   stm.Addr // nlist consecutive head words
	nlist   int
	entries int // per-list key range; lists hover around half full
}

// MultiList returns the spec for the multi-list benchmark. The paper's
// parameters are (64, 64) and (64, 512).
func MultiList(lists, entries int) Spec {
	if lists <= 0 {
		lists = 64
	}
	if entries <= 0 {
		entries = 64
	}
	totalKeys := lists * entries
	return Spec{
		Name:      fmt.Sprintf("multi-list %dx%d", lists, entries),
		HeapWords: 1<<14 + 4*totalKeys*htNodeWords,
		OrecCount: 1 << 14,
		Build: func(s *stm.STM, r *rng.RNG) (Instance, error) {
			m := &multilist{heads: s.MustAlloc(lists), nlist: lists, entries: entries}
			// Pre-populate every list to half its key range.
			for k := 0; k < totalKeys; k += 2 {
				n := s.MustAlloc(htNodeWords)
				s.DirectStore(n+htKey, stm.Word(k))
				m.insertDirect(s, n, stm.Word(k))
			}
			return m, nil
		},
	}
}

func (m *multilist) headOf(k stm.Word) stm.Addr {
	return m.heads + stm.Addr(int(k)%m.nlist)
}

func (m *multilist) insertDirect(s *stm.STM, n stm.Addr, k stm.Word) {
	head := m.headOf(k)
	prev, cur := head, stm.Addr(s.DirectLoad(head))
	for cur != stm.Nil && s.DirectLoad(cur+htKey) < k {
		prev, cur = cur+htNext, stm.Addr(s.DirectLoad(cur+htNext))
	}
	s.DirectStore(n+htNext, stm.Word(cur))
	s.DirectStore(prev, stm.Word(n))
}

// Op performs one insert, delete or lookup of a uniformly random key in
// the key's home list.
func (m *multilist) Op(ctx *OpCtx, mix Mix) {
	k := stm.Word(ctx.Key(m.nlist * m.entries))
	p := ctx.RNG.Pct()
	head := m.headOf(k)
	switch {
	case p < mix.InsertPct:
		n := ctx.AllocNode(htNodeWords)
		var inserted bool
		_ = ctx.Th.Atomic(func(tx *stm.Tx) {
			inserted = false
			prev, cur := head, tx.LoadAddr(head)
			for cur != stm.Nil {
				ck := tx.Load(cur + htKey)
				if ck >= k {
					if ck == k {
						return
					}
					break
				}
				prev, cur = cur+htNext, tx.LoadAddr(cur+htNext)
			}
			tx.Store(n+htKey, k)
			tx.StoreAddr(n+htNext, cur)
			tx.StoreAddr(prev, n)
			inserted = true
		})
		if !inserted {
			ctx.FreeNode(n, htNodeWords)
		}
	case p < mix.InsertPct+mix.DeletePct:
		removed := stm.Nil
		_ = ctx.Th.Atomic(func(tx *stm.Tx) {
			removed = stm.Nil
			prev, cur := head, tx.LoadAddr(head)
			for cur != stm.Nil {
				ck := tx.Load(cur + htKey)
				if ck >= k {
					if ck == k {
						tx.StoreAddr(prev, tx.LoadAddr(cur+htNext))
						removed = cur
					}
					return
				}
				prev, cur = cur+htNext, tx.LoadAddr(cur+htNext)
			}
		})
		if removed != stm.Nil {
			ctx.FreeNode(removed, htNodeWords)
		}
	default:
		var found bool
		_ = ctx.Th.Atomic(func(tx *stm.Tx) {
			cur := tx.LoadAddr(head)
			for cur != stm.Nil && tx.Load(cur+htKey) < k {
				cur = tx.LoadAddr(cur + htNext)
			}
			found = cur != stm.Nil && tx.Load(cur+htKey) == k
		})
		_ = found
	}
}

// Check verifies every list is sorted, duplicate-free, homed correctly,
// and acyclic.
func (m *multilist) Check(s *stm.STM) error {
	for l := 0; l < m.nlist; l++ {
		var last stm.Word
		first := true
		steps := 0
		for cur := stm.Addr(s.DirectLoad(m.heads + stm.Addr(l))); cur != stm.Nil; cur = stm.Addr(s.DirectLoad(cur + htNext)) {
			k := s.DirectLoad(cur + htKey)
			if int(k)%m.nlist != l {
				return fmt.Errorf("list %d holds key %d", l, k)
			}
			if !first && k <= last {
				return fmt.Errorf("list %d unsorted: %d after %d", l, k, last)
			}
			last, first = k, false
			if steps++; steps > m.entries+1 {
				return fmt.Errorf("list %d has a cycle", l)
			}
		}
	}
	return nil
}

// Size counts the elements.
func (m *multilist) Size(s *stm.STM) int {
	n := 0
	for l := 0; l < m.nlist; l++ {
		for cur := stm.Addr(s.DirectLoad(m.heads + stm.Addr(l))); cur != stm.Nil; cur = stm.Addr(s.DirectLoad(cur + htNext)) {
			n++
		}
	}
	return n
}

// Dump returns the key set in ascending order.
func (m *multilist) Dump(s *stm.STM) []uint64 {
	var out []uint64
	for b := 0; b < m.nlist; b++ {
		for cur := stm.Addr(s.DirectLoad(m.heads + stm.Addr(b))); cur != stm.Nil; cur = stm.Addr(s.DirectLoad(cur + htNext)) {
			out = append(out, uint64(s.DirectLoad(cur+htKey)))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
