package bench

import "sort"

// Paired A/B measurement. PR 4's measurement note stands: on this 1-CPU
// host, back-to-back full runs drift by ±10–30%, so diffing two separate
// -json files mostly measures scheduler weather. RunPaired interleaves the
// two configurations (A,B,A,B,…) so each pair shares its slice of machine
// conditions, then reports the median of the per-pair deltas — robust to a
// single noisy pair in a way the mean of either side is not.

// PairedResult is an interleaved A/B comparison of one cell.
type PairedResult struct {
	// A and B aggregate all pairs of each side (runCell-style merge).
	A, B *Measurement
	// Deltas are the per-pair throughput deltas in percent (B vs A).
	// B.PairDeltas aliases this slice so WriteJSON reports the median.
	Deltas []float64
	// MedianPct is the median of Deltas.
	MedianPct float64
}

// Median returns the median of xs (mean of the middle two for even length,
// 0 for empty). xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// mergeInto folds m into agg (runCell's aggregation rule: ops and elapsed
// add, counters sum, per-rep throughputs accumulate) and returns agg, which
// may be nil on the first call.
func mergeInto(agg, m *Measurement) *Measurement {
	if agg == nil {
		m.RepThroughputs = append(m.RepThroughputs, m.Throughput)
		return m
	}
	agg.Ops += m.Ops
	agg.Elapsed += m.Elapsed
	agg.Stats.Add(&m.Stats)
	if len(m.Structs) > 0 {
		if agg.Structs == nil {
			agg.Structs = make(map[string]StructStat, len(m.Structs))
		}
		for name, ss := range m.Structs {
			cur := agg.Structs[name]
			cur.Ops += ss.Ops
			cur.Aborts += ss.Aborts
			agg.Structs[name] = cur
		}
	}
	agg.ReclaimCollects += m.ReclaimCollects
	agg.Exhausted = agg.Exhausted || m.Exhausted
	agg.RepThroughputs = append(agg.RepThroughputs, m.Throughput)
	if agg.Elapsed > 0 {
		agg.Throughput = float64(agg.Ops) / agg.Elapsed.Seconds()
	}
	return agg
}

// RunPaired measures one cell under two configurations with interleaved
// pairs: pairs× (one A run, then one B run). Both sides of a pair use the
// same seed so they execute the same operation stream.
func RunPaired(spec Spec, a, b RunConfig, pairs int) (*PairedResult, error) {
	return RunPairedSpecs(spec, a, spec, b, pairs)
}

// RunPairedSpecs is RunPaired generalized to sides that differ in the
// workload spec as well as the run configuration — e.g. a semantic data
// structure against its word-level baseline. The interleaving and the
// shared per-pair seed are the same; comparability of the op streams is the
// caller's responsibility (both specs should consume RNG draws identically).
func RunPairedSpecs(specA Spec, a RunConfig, specB Spec, b RunConfig, pairs int) (*PairedResult, error) {
	if pairs <= 0 {
		pairs = 1
	}
	res := &PairedResult{}
	for i := 0; i < pairs; i++ {
		bump := uint64(i) * 7919
		ra, rb := a, b
		ra.Seed += bump
		rb.Seed += bump
		ma, err := Run(specA, ra)
		if err != nil {
			return nil, err
		}
		mb, err := Run(specB, rb)
		if err != nil {
			return nil, err
		}
		if ma.Throughput > 0 {
			res.Deltas = append(res.Deltas, 100*(mb.Throughput-ma.Throughput)/ma.Throughput)
		}
		res.A = mergeInto(res.A, ma)
		res.B = mergeInto(res.B, mb)
	}
	res.MedianPct = Median(res.Deltas)
	res.B.PairDeltas = res.Deltas
	return res, nil
}
