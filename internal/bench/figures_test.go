package bench

import (
	"strings"
	"testing"
)

func TestRunFigureFenceStats(t *testing.T) {
	var sb strings.Builder
	fig, err := FigureByID("4a")
	if err != nil {
		t.Fatal(err)
	}
	ms, err := RunFigure(&sb, fig, HarnessConfig{
		Threads: []int{1, 2}, TxnsPerThread: 200, Scale: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 algorithms × 2 mixes × 2 thread counts, each measured once and
	// reported under both metric tables.
	if len(ms) != 8 {
		t.Errorf("measurements = %d, want 8", len(ms))
	}
	out := sb.String()
	for _, want := range []string{
		"percent writers fenced", "percent visible reads skipped",
		"pvrBase (80% lookups)", "pvrCAS (20% lookups)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFigureOverhead(t *testing.T) {
	var sb strings.Builder
	fig, err := FigureByID("t1")
	if err != nil {
		t.Fatal(err)
	}
	ms, err := RunFigure(&sb, fig, HarnessConfig{
		Threads: []int{1}, TxnsPerThread: 200, Scale: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(StandardCurves)*3 {
		t.Errorf("measurements = %d, want %d", len(ms), len(StandardCurves)*3)
	}
	out := sb.String()
	if !strings.Contains(out, "relative to TL2") {
		t.Errorf("overhead table missing header:\n%s", out)
	}
	// TL2's own relative throughput must print as 1.00.
	if !strings.Contains(out, "1.00") {
		t.Errorf("TL2 row not normalized:\n%s", out)
	}
}

func TestRunFigureReps(t *testing.T) {
	var sb strings.Builder
	fig, _ := FigureByID("3a")
	fig.Algorithms = FenceCurves // shrink the run
	ms, err := RunFigure(&sb, fig, HarnessConfig{
		Threads: []int{1}, TxnsPerThread: 100, Scale: 8, Reps: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Ops != 300 {
			t.Errorf("aggregated ops = %d, want 300 (3 reps × 100)", m.Ops)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	ms := []*Measurement{{
		Workload: "w", Algorithm: "TL2", Threads: 2, Mix: ReadMostly,
		Ops: 10, Throughput: 5,
	}}
	WriteCSV(&sb, ms)
	out := sb.String()
	if !strings.HasPrefix(out, "workload,algorithm,threads,mix,") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, `"w",TL2,2,10/10/80,10,`) {
		t.Errorf("missing row: %q", out)
	}
}

func TestRunFigureUnknownKind(t *testing.T) {
	var sb strings.Builder
	_, err := RunFigure(&sb, Figure{ID: "x", Kind: "nope"}, HarnessConfig{})
	if err == nil {
		t.Error("unknown kind accepted")
	}
}
