package bench

import (
	"io"
	"testing"

	stm "privstm"
)

// TestSoakReclaimCompletesWhereLeakExhausts is the regression the reclaimer
// was built for: a churn workload on a heap sized well below its cumulative
// allocation volume. Without recycling (the pre-reclamation FreeLeak
// behavior of workloads that could not safely pool) the run exhausts the
// address space partway through; with the epoch reclaimer the same quota on
// the same heap completes, because every unlinked node flows back through
// retire→collect→reuse.
func TestSoakReclaimCompletesWhereLeakExhausts(t *testing.T) {
	spec := Hashtable(16, 64)
	// Live data is ~150 words (buckets + 64 keys × 2-word nodes); the
	// write-heavy quota below allocates ~4800 words cumulatively.
	spec.HeapWords = 2600
	run := func(policy FreePolicy) *Measurement {
		t.Helper()
		m, err := Run(spec, RunConfig{
			Algorithm: stm.PVRStore, Threads: 2, TxnsPerThread: 3000,
			Mix: WriteHeavy, Free: policy,
		})
		if err != nil {
			t.Fatalf("policy %v: %v", policy, err)
		}
		return m
	}

	leak := run(FreeLeak)
	if !leak.Exhausted {
		t.Fatalf("leak run finished %d ops without exhausting %d words; shrink the heap",
			leak.Ops, spec.HeapWords)
	}

	rcl := run(FreeReclaim)
	if rcl.Exhausted {
		t.Fatalf("reclaim run exhausted the heap after %d ops", rcl.Ops)
	}
	if want := uint64(2 * 3000); rcl.Ops != want {
		t.Fatalf("reclaim run completed %d ops, want %d", rcl.Ops, want)
	}
	if rcl.ReclaimCollects == 0 {
		t.Fatal("reclaim run reports 0 collection passes")
	}
}

// TestRunReclaimSweepSmoke exercises the paired pool-vs-reclaim sweep on a
// tiny cell and checks the shape of what it returns.
func TestRunReclaimSweepSmoke(t *testing.T) {
	hc := HarnessConfig{Threads: []int{2}, TxnsPerThread: 100, Scale: 8}
	base, cand, err := RunReclaimSweep(io.Discard, hc, []stm.Algorithm{stm.Ord, stm.PVRStore}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 2 || len(cand) != 2 {
		t.Fatalf("got %d/%d cells, want 2/2", len(base), len(cand))
	}
	for i, m := range cand {
		if m.Fig != "rcl" || base[i].Fig != "rcl" {
			t.Errorf("figs = %q/%q, want rcl", base[i].Fig, m.Fig)
		}
		if len(m.PairDeltas) != 2 {
			t.Errorf("candidate carries %d pair deltas, want 2", len(m.PairDeltas))
		}
		if m.ReclaimCollects == 0 {
			t.Errorf("reclaim side of %s reports 0 collection passes", m.Algorithm)
		}
		if base[i].ReclaimCollects != 0 {
			t.Errorf("pool side of %s reports %d collection passes, want 0",
				base[i].Algorithm, base[i].ReclaimCollects)
		}
	}
}
