package bench

import (
	"strings"
	"testing"
	"time"

	stm "privstm"
	"privstm/internal/rng"
)

// smallSpecs returns CI-sized versions of the three structures.
func smallSpecs() []Spec {
	return []Spec{
		Hashtable(64, 256),
		BST(1 << 12),
		MultiList(16, 32),
	}
}

func TestWorkloadsSequential(t *testing.T) {
	// Drive each structure single-threaded against every algorithm and
	// validate the structure afterwards.
	for _, spec := range smallSpecs() {
		for _, alg := range StandardCurves {
			t.Run(spec.Name+"/"+alg.String(), func(t *testing.T) {
				m, err := Run(spec, RunConfig{
					Algorithm: alg, Threads: 1, Mix: WriteHeavy, TxnsPerThread: 2000,
				})
				if err != nil {
					t.Fatal(err)
				}
				if m.Ops != 2000 {
					t.Errorf("ops = %d, want 2000", m.Ops)
				}
				if m.Throughput <= 0 {
					t.Error("throughput not positive")
				}
			})
		}
	}
}

func TestWorkloadsConcurrent(t *testing.T) {
	for _, spec := range smallSpecs() {
		for _, alg := range StandardCurves {
			t.Run(spec.Name+"/"+alg.String(), func(t *testing.T) {
				m, err := Run(spec, RunConfig{
					Algorithm: alg, Threads: 6, Mix: WriteHeavy, TxnsPerThread: 500,
				})
				if err != nil {
					t.Fatal(err) // includes the post-run structural check
				}
				if m.Ops != 6*500 {
					t.Errorf("ops = %d, want %d", m.Ops, 6*500)
				}
			})
		}
	}
}

// TestWorkloadModel cross-checks each structure against a set model under a
// deterministic single-threaded operation stream: seed the model from Dump,
// replay the operation RNG stream against the model, and compare final key
// sets exactly.
func TestWorkloadModel(t *testing.T) {
	type built struct {
		name string
		spec Spec
		keys int
	}
	cases := []built{
		{"hashtable", Hashtable(8, 64), 64},
		{"bst", BST(256), 256},
		{"multilist", MultiList(4, 16), 4 * 16},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := stm.MustNew(stm.Config{HeapWords: c.spec.HeapWords, OrecCount: 256, Algorithm: stm.PVRStore})
			inst, err := c.spec.Build(s, rng.New(1))
			if err != nil {
				t.Fatal(err)
			}
			model := make(map[uint64]bool)
			for _, k := range inst.Dump(s) {
				model[k] = true
			}
			th := s.MustNewThread()
			ctx := &OpCtx{Th: th, RNG: rng.New(2), S: s}
			// mr replays the exact RNG stream Op consumes (one Intn, one
			// Pct per operation, in that order).
			mr := rng.New(2)
			for i := 0; i < 5000; i++ {
				k := uint64(mr.Intn(c.keys))
				p := mr.Pct()
				inst.Op(ctx, WriteHeavy)
				switch {
				case p < WriteHeavy.InsertPct:
					model[k] = true
				case p < WriteHeavy.InsertPct+WriteHeavy.DeletePct:
					delete(model, k)
				}
			}
			if err := inst.Check(s); err != nil {
				t.Fatalf("structural check: %v", err)
			}
			got := inst.Dump(s)
			if len(got) != len(model) {
				t.Fatalf("size = %d, model = %d", len(got), len(model))
			}
			for _, k := range got {
				if !model[k] {
					t.Errorf("structure holds key %d not in model", k)
				}
			}
		})
	}
}

func TestFigureIndexComplete(t *testing.T) {
	want := []string{"3a", "3b", "3c", "3d", "3e", "3f", "3g", "3h", "4a", "4c", "4e", "4g", "t1"}
	got := FigureIDs()
	if len(got) != len(want) {
		t.Fatalf("figure ids = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("figure %d = %s, want %s", i, got[i], want[i])
		}
	}
	if _, err := FigureByID("3a"); err != nil {
		t.Error(err)
	}
	if _, err := FigureByID("9z"); err == nil {
		t.Error("FigureByID(9z) should fail")
	}
}

func TestRunFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke is slow")
	}
	var sb strings.Builder
	fig, err := FigureByID("3a")
	if err != nil {
		t.Fatal(err)
	}
	ms, err := RunFigure(&sb, fig, HarnessConfig{
		Threads: []int{1, 2}, TxnsPerThread: 300, Scale: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(StandardCurves)*2 {
		t.Errorf("measurements = %d, want %d", len(ms), len(StandardCurves)*2)
	}
	out := sb.String()
	for _, alg := range StandardCurves {
		if !strings.Contains(out, alg.String()) {
			t.Errorf("output missing curve %s:\n%s", alg, out)
		}
	}
}

func TestParseThreads(t *testing.T) {
	got, err := ParseThreads("1, 2,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Errorf("ParseThreads = %v, %v", got, err)
	}
	if _, err := ParseThreads("1,x"); err == nil {
		t.Error("ParseThreads(1,x) should fail")
	}
	if _, err := ParseThreads("0"); err == nil {
		t.Error("ParseThreads(0) should fail")
	}
}

func TestMixString(t *testing.T) {
	if ReadMostly.String() != "10/10/80" {
		t.Errorf("ReadMostly = %s", ReadMostly)
	}
	if WriteHeavy.LookupPct() != 20 {
		t.Errorf("WriteHeavy lookups = %d", WriteHeavy.LookupPct())
	}
}

func TestDurationMode(t *testing.T) {
	m, err := Run(Hashtable(16, 64), RunConfig{
		Algorithm: stm.Ord, Threads: 2, Mix: ReadMostly, Duration: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Ops == 0 {
		t.Error("duration mode performed no operations")
	}
}
