package bench

import (
	"fmt"
	"io"

	stm "privstm"
)

// The semantic-structure sweep behind `stmbench -tdssweep`: the mixed
// map+queue producer/consumer workload (40/40/20 — see tdsworkload.go) run
// paired, baseline = tlib word-level structures, candidate = internal/tds
// semantic structures, on a skewed key distribution where word-level
// conflict detection melts down (hot keys share buckets and every queue op
// serializes on the size word). Pairing interleaves same-seed runs so each
// pair shares its slice of machine conditions; both sides draw identical
// key/value streams (tdsworkload.go keeps RNG consumption in the shared op
// driver). Cells carry fig ID "tds".

// RunTdsSweep measures every algorithm × thread count with RunPairedSpecs.
// It returns the tlib baselines and tds candidates; the printed median
// column is the acceptance number (per-pair median throughput delta of tds
// vs tlib), and the per-structure columns are the abort-rate A/B the
// abstract locks exist to win.
func RunTdsSweep(w io.Writer, hc HarnessConfig, algos []stm.Algorithm, pairs int) (base, cand []*Measurement, err error) {
	hc.fill()
	if len(algos) == 0 {
		// The semantic layer is only wired into the full-featured engines;
		// keep the sweep to the curves the EXPERIMENTS tables discuss.
		algos = []stm.Algorithm{stm.TL2, stm.Ord, stm.PVRStore, stm.PVRHybrid}
	}
	if pairs <= 0 {
		pairs = 3
	}
	const (
		buckets = 16
		keys    = 256
		stripes = 256
	)
	specBase := TdsMixed(buckets, keys, stripes, false)
	specCand := TdsMixed(buckets, keys, stripes, true)
	mix := WriteHeavy // 40% map RMW, 40% queue ops, 20% lookups

	fmt.Fprintf(w, "Semantic conflict detection sweep (paired tlib vs tds): %s, mix %s, zipf %.2f, %d pairs/cell\n",
		specCand.Name, mix, hc.ZipfTheta, pairs)
	fmt.Fprintf(w, "%-16s %7s %12s %12s %8s  %19s %19s %10s\n",
		"algorithm", "threads", "tlib ops/s", "tds ops/s", "median",
		"map abort% t->s", "queue abort% t->s", "semskips")

	for _, alg := range algos {
		for _, th := range hc.Threads {
			rc := RunConfig{
				Algorithm: alg, Threads: th, Mix: mix,
				TxnsPerThread: hc.TxnsPerThread, Duration: hc.Duration, Seed: hc.Seed,
				Tracker: hc.Tracker, DisableExtension: hc.DisableExtension,
				CM: hc.CM, MaxAttempts: hc.MaxAttempts,
				OrecLayout: hc.OrecLayout, DisableHintCache: hc.DisableHintCache,
				Clock: hc.Clock, OrderBatch: hc.OrderBatch,
				Free: hc.Free, DisableSandbox: hc.DisableSandbox,
				ZipfTheta: hc.ZipfTheta,
			}
			pr, err := RunPairedSpecs(specBase, rc, specCand, rc, pairs)
			if err != nil {
				return nil, nil, err
			}
			pr.A.Fig, pr.B.Fig = "tds", "tds"
			base = append(base, pr.A)
			cand = append(cand, pr.B)
			am, bm := pr.A.Structs["map"], pr.B.Structs["map"]
			aq, bq := pr.A.Structs["queue"], pr.B.Structs["queue"]
			fmt.Fprintf(w, "%-16s %7d %12.0f %12.0f %+7.1f%%  %8.2f -> %7.2f %8.2f -> %7.2f %10d\n",
				alg, th, pr.A.Throughput, pr.B.Throughput, pr.MedianPct,
				am.AbortPct(), bm.AbortPct(), aq.AbortPct(), bq.AbortPct(),
				pr.B.Stats.SemanticSkips)
		}
	}
	fmt.Fprintln(w)
	return base, cand, nil
}

// CheckTdsAcceptance enforces the sweep's acceptance criterion against two
// WriteJSON documents (candidate = tds, baseline = tlib): at the given
// thread count, on every listed algorithm's skewed cell, the tds map abort
// rate must be strictly lower than tlib's and aggregate throughput at least
// minGain (e.g. 1.15 for +15%). Returns a descriptive error when a cell
// fails or is missing.
func CheckTdsAcceptance(candPath, basePath string, threads int, minGain float64, algos []string) error {
	_, candCells, err := ReadJSON(candPath)
	if err != nil {
		return err
	}
	_, baseCells, err := ReadJSON(basePath)
	if err != nil {
		return err
	}
	find := func(cells []jsonMeasurement, alg string) *jsonMeasurement {
		for i := range cells {
			c := &cells[i]
			if c.Fig == "tds" && c.Algorithm == alg && c.Threads == threads && c.ZipfTheta > 0 {
				return c
			}
		}
		return nil
	}
	if len(algos) == 0 {
		// The acceptance cell is the paper's in-place privatization-safe
		// engine: its logged bucket walks genuinely validate under churn, so
		// the weak-read + abstract-lock win is structural rather than
		// scheduler weather. (The redo engines on a 1-CPU host barely
		// validate read sets at all, leaving nothing for semantics to win.)
		algos = []string{"pvrStore"}
	}
	for _, alg := range algos {
		cand := find(candCells, alg)
		base := find(baseCells, alg)
		if cand == nil || base == nil {
			return fmt.Errorf("tds acceptance: no skewed %s/%d-thread cell in %s and %s",
				alg, threads, candPath, basePath)
		}
		cm, bm := cand.Structs["map"], base.Structs["map"]
		if cm.Ops == 0 || bm.Ops == 0 {
			return fmt.Errorf("tds acceptance: %s/%d missing per-structure stats", alg, threads)
		}
		if !(cm.AbortPct < bm.AbortPct) {
			return fmt.Errorf("tds acceptance: %s/%d map abort rate not improved: tds %.2f%% vs tlib %.2f%%",
				alg, threads, cm.AbortPct, bm.AbortPct)
		}
		if base.Throughput <= 0 || cand.Throughput < minGain*base.Throughput {
			return fmt.Errorf("tds acceptance: %s/%d throughput %.0f < %.2fx tlib %.0f",
				alg, threads, cand.Throughput, minGain, base.Throughput)
		}
	}
	return nil
}
