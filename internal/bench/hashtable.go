package bench

import (
	"fmt"
	"sort"

	stm "privstm"
	"privstm/internal/rng"
)

// The hashtable microbenchmark of §V: 64 buckets over 256 keys — "very
// short transactions". Each bucket is a sorted singly linked list of
// [next, key] nodes; bucket heads are contiguous words.
const htNodeWords = 2

const (
	htNext = 0
	htKey  = 1
)

type hashtable struct {
	buckets stm.Addr // buckets consecutive head words
	nbkt    int
	keys    int
}

// Hashtable returns the spec for the paper's hashtable benchmark.
// The defaults (64, 256) are the paper's parameters.
func Hashtable(buckets, keys int) Spec {
	if buckets <= 0 {
		buckets = 64
	}
	if keys <= 0 {
		keys = 256
	}
	return Spec{
		Name:      fmt.Sprintf("hashtable %db/%dk", buckets, keys),
		HeapWords: 1<<14 + 4*keys*htNodeWords,
		OrecCount: 1 << 12,
		Build: func(s *stm.STM, r *rng.RNG) (Instance, error) {
			h := &hashtable{buckets: s.MustAlloc(buckets), nbkt: buckets, keys: keys}
			// Pre-populate with half the key space, built directly (the
			// structure is not yet shared).
			for k := 0; k < keys; k += 2 {
				n := s.MustAlloc(htNodeWords)
				s.DirectStore(n+htKey, stm.Word(k))
				h.insertDirect(s, n, stm.Word(k))
			}
			return h, nil
		},
	}
}

func (h *hashtable) bucketOf(k stm.Word) stm.Addr {
	return h.buckets + stm.Addr(int(k)%h.nbkt)
}

func (h *hashtable) insertDirect(s *stm.STM, n stm.Addr, k stm.Word) {
	head := h.bucketOf(k)
	prev, cur := head, stm.Addr(s.DirectLoad(head))
	for cur != stm.Nil && s.DirectLoad(cur+htKey) < k {
		prev, cur = cur+htNext, stm.Addr(s.DirectLoad(cur+htNext))
	}
	s.DirectStore(n+htNext, stm.Word(cur))
	s.DirectStore(prev, stm.Word(n))
}

// Op performs one insert, delete or lookup of a uniformly random key.
func (h *hashtable) Op(ctx *OpCtx, mix Mix) {
	k := stm.Word(ctx.Key(h.keys))
	p := ctx.RNG.Pct()
	head := h.bucketOf(k)
	switch {
	case p < mix.InsertPct:
		n := ctx.AllocNode(htNodeWords)
		var inserted bool
		_ = ctx.Th.Atomic(func(tx *stm.Tx) {
			inserted = false
			prev, cur := head, tx.LoadAddr(head)
			for cur != stm.Nil {
				ck := tx.Load(cur + htKey)
				if ck >= k {
					if ck == k {
						return // already present
					}
					break
				}
				prev, cur = cur+htNext, tx.LoadAddr(cur+htNext)
			}
			tx.Store(n+htKey, k)
			tx.StoreAddr(n+htNext, cur)
			tx.StoreAddr(prev, n)
			inserted = true
		})
		if !inserted {
			ctx.FreeNode(n, htNodeWords)
		}
	case p < mix.InsertPct+mix.DeletePct:
		removed := stm.Nil
		_ = ctx.Th.Atomic(func(tx *stm.Tx) {
			removed = stm.Nil
			prev, cur := head, tx.LoadAddr(head)
			for cur != stm.Nil {
				ck := tx.Load(cur + htKey)
				if ck >= k {
					if ck == k {
						tx.StoreAddr(prev, tx.LoadAddr(cur+htNext))
						removed = cur
					}
					return
				}
				prev, cur = cur+htNext, tx.LoadAddr(cur+htNext)
			}
		})
		if removed != stm.Nil {
			ctx.FreeNode(removed, htNodeWords)
		}
	default:
		var found bool
		_ = ctx.Th.Atomic(func(tx *stm.Tx) {
			cur := tx.LoadAddr(head)
			for cur != stm.Nil && tx.Load(cur+htKey) < k {
				cur = tx.LoadAddr(cur + htNext)
			}
			found = cur != stm.Nil && tx.Load(cur+htKey) == k
		})
		_ = found
	}
}

// Check verifies every bucket is sorted, duplicate-free, hashes correctly,
// and has no cycle.
func (h *hashtable) Check(s *stm.STM) error {
	for b := 0; b < h.nbkt; b++ {
		var last stm.Word
		first := true
		steps := 0
		for cur := stm.Addr(s.DirectLoad(h.buckets + stm.Addr(b))); cur != stm.Nil; cur = stm.Addr(s.DirectLoad(cur + htNext)) {
			k := s.DirectLoad(cur + htKey)
			if int(k)%h.nbkt != b {
				return fmt.Errorf("bucket %d holds key %d", b, k)
			}
			if !first && k <= last {
				return fmt.Errorf("bucket %d unsorted: %d after %d", b, k, last)
			}
			last, first = k, false
			if steps++; steps > h.keys+1 {
				return fmt.Errorf("bucket %d has a cycle", b)
			}
		}
	}
	return nil
}

// Size counts the elements.
func (h *hashtable) Size(s *stm.STM) int {
	n := 0
	for b := 0; b < h.nbkt; b++ {
		for cur := stm.Addr(s.DirectLoad(h.buckets + stm.Addr(b))); cur != stm.Nil; cur = stm.Addr(s.DirectLoad(cur + htNext)) {
			n++
		}
	}
	return n
}

// Dump returns the key set in ascending order.
func (h *hashtable) Dump(s *stm.STM) []uint64 {
	var out []uint64
	for b := 0; b < h.nbkt; b++ {
		for cur := stm.Addr(s.DirectLoad(h.buckets + stm.Addr(b))); cur != stm.Nil; cur = stm.Addr(s.DirectLoad(cur + htNext)) {
			out = append(out, uint64(s.DirectLoad(cur+htKey)))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
