package bench

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	stm "privstm"
	"privstm/internal/rng"
)

// TestRunConfigAblations drives each workload under the pre-optimization
// configuration (central list, no extension) and the optimized default,
// checking both produce correct structures and full operation counts.
func TestRunConfigAblations(t *testing.T) {
	spec := MultiList(16, 32)
	for _, tc := range []struct {
		name string
		rc   RunConfig
	}{
		{"slot+extend", RunConfig{}},
		{"list+noextend", RunConfig{Tracker: stm.TrackerList, DisableExtension: true}},
		{"scan+extend", RunConfig{Tracker: stm.TrackerScan}},
	} {
		for _, alg := range []stm.Algorithm{stm.Ord, stm.PVRStore, stm.PVRHybrid} {
			t.Run(tc.name+"/"+alg.String(), func(t *testing.T) {
				rc := tc.rc
				rc.Algorithm = alg
				rc.Threads = 4
				rc.Mix = WriteHeavy
				rc.TxnsPerThread = 500
				m, err := Run(spec, rc)
				if err != nil {
					t.Fatal(err)
				}
				if m.Ops != 4*500 {
					t.Errorf("ops = %d, want %d", m.Ops, 4*500)
				}
			})
		}
	}
}

// TestExtensionAvoidsAbort pins the behavior the extension buys with a
// deterministic interleaving: reader samples word a, a writer commits to
// an unrelated word b (advancing the clock), then the reader loads b. The
// stale read must extend-and-continue when extension is on, and abort
// exactly once when it is disabled.
func TestExtensionAvoidsAbort(t *testing.T) {
	for _, tc := range []struct {
		name    string
		disable bool
		aborts  uint64
		extends uint64
	}{
		{"extend", false, 0, 1},
		{"noextend", true, 1, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := stm.MustNew(stm.Config{
				Algorithm: stm.Ord, HeapWords: 512, OrecCount: 256,
				MaxThreads: 4, DisableSnapshotExtension: tc.disable,
			})
			words := s.MustAlloc(256)
			a, b := words, words+128
			reader := s.MustNewThread()
			writer := s.MustNewThread()
			wrote := false
			err := reader.Atomic(func(tx *stm.Tx) {
				_ = tx.Load(a)
				if !wrote {
					wrote = true
					if werr := writer.Atomic(func(wx *stm.Tx) { wx.Store(b, 7) }); werr != nil {
						tx.Cancel(werr)
					}
				}
				if got := tx.Load(b); got != 7 {
					t.Errorf("read %d from b, want 7", got)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			st := reader.Stats()
			if st.Aborts != tc.aborts || st.Extensions != tc.extends {
				t.Errorf("aborts=%d extensions=%d, want aborts=%d extensions=%d",
					st.Aborts, st.Extensions, tc.aborts, tc.extends)
			}
		})
	}
}

// TestJSONRoundTripAndCompare exercises the baseline-file workflow end to
// end: write two measurement sets, compare them, and check the delta math.
func TestJSONRoundTripAndCompare(t *testing.T) {
	dir := t.TempDir()
	mk := func(path, label string, tput float64) {
		ms := []*Measurement{{
			Fig: "3e", Workload: "multi-list 16x32", Algorithm: "Ord",
			Threads: 2, Mix: ReadMostly, Ops: 1000,
			Elapsed: time.Second, Throughput: tput,
		}}
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(f, label, ms); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	mk(oldPath, "baseline", 1000)
	mk(newPath, "candidate", 1200)

	label, cells, err := ReadJSON(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	if label != "baseline" || len(cells) != 1 || cells[0].Throughput != 1000 {
		t.Fatalf("round trip lost data: label=%q cells=%+v", label, cells)
	}

	var buf strings.Builder
	worst, err := Compare(&buf, oldPath, newPath)
	if err != nil {
		t.Fatal(err)
	}
	if worst < 19.9 || worst > 20.1 {
		t.Errorf("worst delta = %.2f%%, want +20%%", worst)
	}
	out := buf.String()
	if !strings.Contains(out, "baseline") || !strings.Contains(out, "+20.0%") {
		t.Errorf("compare output missing expected fields:\n%s", out)
	}
}

// BenchmarkCommitPath is the CI smoke benchmark for the commit-path
// optimizations: the paper's short-transaction workload under every
// tracker × extension combination. Regressions in the oldest-begin fast
// path or the extension hot path show up here directly.
func BenchmarkCommitPath(b *testing.B) {
	spec := Hashtable(64, 256)
	for _, tr := range []struct {
		name    string
		tracker stm.TrackerKind
	}{{"slot", stm.TrackerSlot}, {"list", stm.TrackerList}, {"scan", stm.TrackerScan}} {
		for _, ext := range []struct {
			name    string
			disable bool
		}{{"extend", false}, {"noextend", true}} {
			b.Run(tr.name+"/"+ext.name, func(b *testing.B) {
				s := stm.MustNew(stm.Config{
					Algorithm: stm.PVRStore, HeapWords: spec.HeapWords,
					OrecCount: spec.OrecCount, MaxThreads: 128,
					Tracker: tr.tracker, DisableSnapshotExtension: ext.disable,
				})
				inst, err := spec.Build(s, rng.New(1))
				if err != nil {
					b.Fatal(err)
				}
				var mu sync.Mutex
				var seq uint64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					mu.Lock()
					seq++
					ctx := &OpCtx{Th: s.MustNewThread(), RNG: rng.New(seq), S: s}
					mu.Unlock()
					for pb.Next() {
						inst.Op(ctx, ReadMostly)
					}
				})
			})
		}
	}
}
