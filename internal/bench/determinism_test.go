package bench

import (
	"testing"

	stm "privstm"
	"privstm/internal/rng"
)

// TestEnginesAgreeSequentially drives every engine with the same
// deterministic single-threaded operation stream on each structure and
// requires the final key sets to be identical: all nine engines implement
// the same sequential semantics, whatever their concurrency machinery.
func TestEnginesAgreeSequentially(t *testing.T) {
	engines := append([]stm.Algorithm{stm.OrdQueue}, stm.Algorithms...)
	specs := []Spec{
		Hashtable(8, 64),
		BST(256),
		MultiList(4, 16),
	}
	for _, spec := range specs {
		t.Run(spec.Name, func(t *testing.T) {
			var want []uint64
			for i, alg := range engines {
				s, err := stm.New(stm.Config{
					Algorithm: alg, HeapWords: spec.HeapWords, OrecCount: 256, MaxThreads: 2,
				})
				if err != nil {
					t.Fatal(err)
				}
				inst, err := spec.Build(s, rng.New(11))
				if err != nil {
					t.Fatal(err)
				}
				ctx := &OpCtx{Th: s.MustNewThread(), RNG: rng.New(22), S: s}
				for j := 0; j < 3000; j++ {
					inst.Op(ctx, WriteHeavy)
				}
				if err := inst.Check(s); err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				got := inst.Dump(s)
				if i == 0 {
					want = got
					continue
				}
				if len(got) != len(want) {
					t.Fatalf("%v produced %d keys, %v produced %d",
						alg, len(got), engines[0], len(want))
				}
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("%v diverged from %v at key %d: %d vs %d",
							alg, engines[0], k, got[k], want[k])
					}
				}
			}
		})
	}
}
