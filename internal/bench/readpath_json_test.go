package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestJSONStddevRunsAndLayout checks the PR 4 report fields: per-cell
// standard deviation and run count derived from RepThroughputs, and the
// orec-layout label.
func TestJSONStddevRunsAndLayout(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	ms := []*Measurement{{
		Fig: "3a", Workload: "hashtable", Algorithm: "pvrCAS",
		Threads: 2, Mix: ReadMostly, Ops: 300,
		Elapsed: time.Second, Throughput: 100,
		RepThroughputs: []float64{90, 100, 110},
		Layout:         "soa",
	}}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(f, "layout test", ms); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, cells, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("cells = %d", len(cells))
	}
	c := cells[0]
	if c.Runs != 3 {
		t.Errorf("runs = %d, want 3", c.Runs)
	}
	if c.Stddev < 9.9 || c.Stddev > 10.1 { // sample stddev of {90,100,110} = 10
		t.Errorf("stddev = %.3f, want 10", c.Stddev)
	}
	if c.OrecLayout != "soa" {
		t.Errorf("orec_layout = %q, want soa", c.OrecLayout)
	}
}

// TestCompareLayoutKeys: cells measured under a non-default layout must not
// be matched against default-layout baseline cells — an SoA ablation run
// compared to an AoS baseline should report zero matched cells rather than
// a bogus delta. "aos" and "" are the same key so old baselines predating
// the field still match default runs.
func TestCompareLayoutKeys(t *testing.T) {
	a := jsonMeasurement{Fig: "3a", Workload: "w", Algorithm: "x", Threads: 1, Mix: "10/10/80"}
	b := a
	b.OrecLayout = "aos"
	c := a
	c.OrecLayout = "soa"
	if a.cellKey() != b.cellKey() {
		t.Error("empty and aos layouts should share a cell key")
	}
	if a.cellKey() == c.cellKey() {
		t.Error("soa cells must not match default-layout cells")
	}
}

// TestCompareFoldsMicros: microbenchmark deltas participate in Compare's
// worst-delta result with throughput-style sign (slower micro = negative),
// so the CI tolerance gate covers them too.
func TestCompareFoldsMicros(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, nsPerOp float64) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		ms := []*Measurement{{
			Fig: "3a", Workload: "w", Algorithm: "x", Threads: 1,
			Mix: ReadMostly, Ops: 100, Elapsed: time.Second, Throughput: 1000,
		}}
		micro := []MicroResult{{Name: "MakeVisibleCovered/CAS", NsPerOp: nsPerOp}}
		if err := WriteJSONReport(f, "", ms, micro); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return path
	}
	oldPath := mk("old.json", 10)
	newPath := mk("new.json", 15) // 50% slower => -50% in throughput terms

	var buf strings.Builder
	worst, err := Compare(&buf, oldPath, newPath)
	if err != nil {
		t.Fatal(err)
	}
	if worst > -49.9 || worst < -50.1 {
		t.Errorf("worst = %.1f%%, want -50%% from the micro regression", worst)
	}
	if !strings.Contains(buf.String(), "MakeVisibleCovered/CAS") {
		t.Errorf("compare output missing micro table:\n%s", buf.String())
	}
}
