package bench

import (
	"testing"

	stm "privstm"
	"privstm/internal/rng"
)

// go test -bench wrappers over the readpath.go benchmark bodies (which
// stmbench -micro also runs via testing.Benchmark).

func BenchmarkMakeVisibleCovered(b *testing.B) {
	for _, p := range microProtos {
		b.Run(p.Name, func(b *testing.B) { benchMakeVisibleCovered(b, p.Proto) })
	}
}

func BenchmarkMakeVisiblePublish(b *testing.B) {
	for _, p := range microProtos {
		b.Run(p.Name, func(b *testing.B) { benchMakeVisiblePublish(b, p.Proto) })
	}
}

// BenchmarkReadPathTraversal is the end-to-end read-barrier canary: a
// single-thread Fig. 3g long-list traversal on an engine with no partial
// visibility, so its cost is orec lookup + consistent read + read-set
// logging and nothing else. Any extra load or branch on the orec handle
// path shows up here directly.
func BenchmarkReadPathTraversal(b *testing.B) {
	spec := MultiList(64, 128)
	s := stm.MustNew(stm.Config{
		Algorithm: stm.Ord, HeapWords: spec.HeapWords,
		OrecCount: spec.OrecCount, MaxThreads: 8,
	})
	inst, err := spec.Build(s, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	ctx := &OpCtx{Th: s.MustNewThread(), RNG: rng.New(2), S: s}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.Op(ctx, ReadMostly)
	}
}
