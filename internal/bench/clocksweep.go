package bench

import (
	"fmt"
	"io"

	stm "privstm"
)

// The clock-scalability sweep: every deferred-clock variant paired against
// an interleaved GV1 baseline of the same engine on the write-heavy small
// hashtable — the highest commit-rate workload in the suite, i.e. the worst
// case for a centralized version clock. Cells carry fig ID "clk".

// ClockVariant is one candidate configuration of the sweep.
type ClockVariant struct {
	Algorithm  stm.Algorithm
	Clock      stm.ClockMode
	OrderBatch int
}

// Label renders the variant the way Compare does ("Ord@gv5", "Ord@gv5+b8").
func (v ClockVariant) Label() string {
	l := v.Algorithm.String()
	if v.Clock != stm.ClockGV1 {
		l += "@" + v.Clock.String()
	}
	if v.OrderBatch > 0 {
		l += fmt.Sprintf("+b%d", v.OrderBatch)
	}
	return l
}

// DefaultClockVariants is the committed sweep: both deferred modes on each
// redo-log engine family (TL2 baseline, ordering, validation, hybrid), plus
// the Ord commit batcher alone and combined with GV5.
func DefaultClockVariants() []ClockVariant {
	var vs []ClockVariant
	for _, alg := range []stm.Algorithm{stm.TL2, stm.Ord, stm.Val, stm.PVRHybrid} {
		vs = append(vs,
			ClockVariant{Algorithm: alg, Clock: stm.ClockGV5},
			ClockVariant{Algorithm: alg, Clock: stm.ClockLocal},
		)
	}
	vs = append(vs,
		ClockVariant{Algorithm: stm.Ord, Clock: stm.ClockGV1, OrderBatch: 8},
		ClockVariant{Algorithm: stm.Ord, Clock: stm.ClockGV5, OrderBatch: 8},
	)
	return vs
}

// RunClockSweep measures every variant × thread count with RunPaired
// against a same-seed interleaved GV1 baseline, printing a delta table. It
// returns the baseline cells (one per algorithm × threads) and the variant
// cells, all tagged fig "clk". With aa set, each variant's candidate side
// is replaced by a second copy of its baseline — an A/A control run whose
// deltas measure pure host noise.
func RunClockSweep(w io.Writer, hc HarnessConfig, variants []ClockVariant, pairs int, aa bool) (base, cand []*Measurement, err error) {
	hc.fill()
	if len(variants) == 0 {
		variants = DefaultClockVariants()
	}
	if pairs <= 0 {
		pairs = 3
	}
	if aa {
		// A/A: the clock mode plays no part, so one variant per engine.
		seen := map[stm.Algorithm]bool{}
		var uniq []ClockVariant
		for _, v := range variants {
			if !seen[v.Algorithm] {
				seen[v.Algorithm] = true
				uniq = append(uniq, ClockVariant{Algorithm: v.Algorithm})
			}
		}
		variants = uniq
	}
	spec := Hashtable(64, 64)
	mix := WriteHeavy

	mode := "paired A/B"
	if aa {
		mode = "A/A noise control"
	}
	fmt.Fprintf(w, "Clock scalability sweep (%s): %s, mix %s, %d pairs/cell\n",
		mode, spec.Name, mix, pairs)
	fmt.Fprintf(w, "%-16s %7s %12s %12s %8s %12s\n",
		"variant", "threads", "gv1 ops/s", "cand ops/s", "median", "clkRMW/txn")

	seenBase := map[string]bool{}
	for _, v := range variants {
		for _, th := range hc.Threads {
			rcBase := RunConfig{
				Algorithm: v.Algorithm, Threads: th, Mix: mix,
				TxnsPerThread: hc.TxnsPerThread, Duration: hc.Duration, Seed: hc.Seed,
				Tracker: hc.Tracker, DisableExtension: hc.DisableExtension,
				CM: hc.CM, MaxAttempts: hc.MaxAttempts,
				OrecLayout: hc.OrecLayout, DisableHintCache: hc.DisableHintCache,
				Free: hc.Free, DisableSandbox: hc.DisableSandbox,
			}
			rcCand := rcBase
			if !aa {
				rcCand.Clock = v.Clock
				rcCand.OrderBatch = v.OrderBatch
			}
			pr, err := RunPaired(spec, rcBase, rcCand, pairs)
			if err != nil {
				return nil, nil, err
			}
			pr.A.Fig, pr.B.Fig = "clk", "clk"
			// Emit each engine's GV1 baseline once: the Ord variants all
			// share one, and duplicate cell keys would collide in Compare.
			bk := fmt.Sprintf("%s|%d", v.Algorithm, th)
			if !seenBase[bk] {
				seenBase[bk] = true
				base = append(base, pr.A)
			}
			cand = append(cand, pr.B)
			rmwPerTxn := 0.0
			if c := pr.B.Stats.WriterCommits; c > 0 {
				rmwPerTxn = float64(pr.B.Stats.ClockTicks) / float64(c)
			}
			fmt.Fprintf(w, "%-16s %7d %12.0f %12.0f %+7.1f%% %12.2f\n",
				v.Label(), th, pr.A.Throughput, pr.B.Throughput, pr.MedianPct, rmwPerTxn)
		}
	}
	fmt.Fprintln(w)
	return base, cand, nil
}
