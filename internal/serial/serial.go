// Package serial implements an offline conflict-serializability checker
// for recorded transaction histories, used to validate every engine
// end-to-end without trusting any of the runtime's own metadata.
//
// The checker handles histories produced under the read-modify-write
// discipline: every transaction that writes an address also reads it first,
// and every written value is globally unique. Under that discipline the
// full version order of each address is recoverable from the history
// alone — each writer names its predecessor by the value it read — and
// conflict-serializability reduces to acyclicity of the precedence graph
// over committed transactions:
//
//	write-read:  the writer of the value a transaction read precedes it;
//	write-write: the writer of the value a writer overwrote precedes it;
//	read-write:  a reader of a value precedes the writer that overwrote it.
//
// A cycle is a proof of non-serializability; acyclicity is a proof of
// serializability (for RMW histories these conflict edges are exact).
package serial

import (
	"fmt"
	"sort"
)

// Op is one access within a transaction record.
type Op struct {
	Addr uint64
	Val  uint64
}

// Txn is one committed transaction: the values its final (committed)
// execution read, and the values it wrote. A transaction that wrote Addr
// must also have a read of Addr (the RMW discipline); the checker rejects
// histories that violate it.
type Txn struct {
	ID     int
	Reads  []Op
	Writes []Op
}

// History is a set of committed transactions plus the initial values of
// all addresses (anything unlisted starts at 0... explicitly: reads of
// value 0 refer to the initial state).
type History struct {
	Txns []Txn
}

// Check verifies conflict-serializability. It returns nil if the history
// is serializable, and otherwise an error describing the violation: a
// malformed history (duplicate written values, a write without a read, two
// writers claiming the same predecessor) or a precedence cycle.
func Check(h *History) error {
	const initial = -1 // pseudo-transaction that wrote every initial value

	// writerOf maps (addr, value) -> txn index that wrote it.
	type av struct{ a, v uint64 }
	writerOf := map[av]int{}
	for i, t := range h.Txns {
		for _, w := range t.Writes {
			if w.Val == 0 {
				return fmt.Errorf("serial: txn %d wrote reserved value 0 to %d", t.ID, w.Addr)
			}
			k := av{w.Addr, w.Val}
			if prev, dup := writerOf[k]; dup {
				return fmt.Errorf("serial: value %d@%d written by txns %d and %d",
					w.Val, w.Addr, h.Txns[prev].ID, t.ID)
			}
			writerOf[k] = i
		}
	}
	// readOf maps txn index -> addr -> value read (first read).
	readVal := make([]map[uint64]uint64, len(h.Txns))
	for i, t := range h.Txns {
		readVal[i] = make(map[uint64]uint64, len(t.Reads))
		for _, r := range t.Reads {
			if _, dup := readVal[i][r.Addr]; !dup {
				readVal[i][r.Addr] = r.Val
			}
		}
	}

	// successor maps (addr, value) -> the txn that overwrote it; derived
	// from each writer's own read. Also validates the RMW discipline.
	succ := map[av]int{}
	for i, t := range h.Txns {
		for _, w := range t.Writes {
			rv, ok := readVal[i][w.Addr]
			if !ok {
				return fmt.Errorf("serial: txn %d wrote %d without reading it (RMW discipline)",
					t.ID, w.Addr)
			}
			k := av{w.Addr, rv}
			if prev, dup := succ[k]; dup {
				return fmt.Errorf("serial: txns %d and %d both overwrote value %d@%d (lost update)",
					h.Txns[prev].ID, t.ID, rv, w.Addr)
			}
			succ[k] = i
		}
	}

	// Build the precedence graph.
	n := len(h.Txns)
	adj := make([][]int, n)
	addEdge := func(from, to int) {
		if from != to && from != initial {
			adj[from] = append(adj[from], to)
		}
	}
	writerOrInitial := func(a, v uint64) (int, error) {
		if v == 0 {
			return initial, nil
		}
		w, ok := writerOf[av{a, v}]
		if !ok {
			return 0, fmt.Errorf("serial: read of value %d@%d with no writer", v, a)
		}
		return w, nil
	}
	for i := range h.Txns {
		for a, v := range readVal[i] {
			w, err := writerOrInitial(a, v)
			if err != nil {
				return err
			}
			// write-read: w precedes i (also covers write-write, since a
			// writer's own read names its version predecessor).
			addEdge(w, i)
			// read-write (anti-dependency): i precedes whoever overwrote v —
			// unless i overwrote it itself.
			if s, ok := succ[av{a, v}]; ok && s != i {
				addEdge(i, s)
			}
		}
	}

	// Cycle detection (iterative three-color DFS).
	color := make([]byte, n) // 0 white, 1 grey, 2 black
	var stack []int
	for start := 0; start < n; start++ {
		if color[start] != 0 {
			continue
		}
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			if color[u] == 0 {
				color[u] = 1
			}
			advanced := false
			for _, v := range adj[u] {
				switch color[v] {
				case 0:
					stack = append(stack, v)
					advanced = true
				case 1:
					return fmt.Errorf("serial: precedence cycle through txns %d and %d",
						h.Txns[u].ID, h.Txns[v].ID)
				}
				if advanced {
					break
				}
			}
			if !advanced {
				color[u] = 2
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// SortByID orders the history deterministically for reproducible error
// messages in tests.
func (h *History) SortByID() {
	sort.Slice(h.Txns, func(i, j int) bool { return h.Txns[i].ID < h.Txns[j].ID })
}
