package serial

import (
	"strings"
	"testing"
)

func TestEmptyAndSingle(t *testing.T) {
	if err := Check(&History{}); err != nil {
		t.Errorf("empty history: %v", err)
	}
	h := &History{Txns: []Txn{{
		ID:     1,
		Reads:  []Op{{Addr: 1, Val: 0}},
		Writes: []Op{{Addr: 1, Val: 10}},
	}}}
	if err := Check(h); err != nil {
		t.Errorf("single txn: %v", err)
	}
}

func TestSerializableChain(t *testing.T) {
	// T1: r(a)=0 w(a)=10; T2: r(a)=10 w(a)=20; T3: r(a)=20.
	h := &History{Txns: []Txn{
		{ID: 1, Reads: []Op{{1, 0}}, Writes: []Op{{1, 10}}},
		{ID: 2, Reads: []Op{{1, 10}}, Writes: []Op{{1, 20}}},
		{ID: 3, Reads: []Op{{1, 20}}},
	}}
	if err := Check(h); err != nil {
		t.Errorf("chain: %v", err)
	}
}

func TestLostUpdateRejected(t *testing.T) {
	// Both writers read the initial value and overwrote it: classic lost
	// update, not serializable.
	h := &History{Txns: []Txn{
		{ID: 1, Reads: []Op{{1, 0}}, Writes: []Op{{1, 10}}},
		{ID: 2, Reads: []Op{{1, 0}}, Writes: []Op{{1, 20}}},
	}}
	err := Check(h)
	if err == nil || !strings.Contains(err.Error(), "lost update") {
		t.Errorf("err = %v, want lost update", err)
	}
}

func TestWriteSkewCycleRejected(t *testing.T) {
	// T1: r(a)=0 r(b)=0 w(a)=10 ; T2: r(a)=0 r(b)=0 w(b)=20.
	// T1 read b before T2 wrote it (T1 < T2), and T2 read a before T1
	// wrote it (T2 < T1): a cycle — snapshot-isolation write skew.
	h := &History{Txns: []Txn{
		{ID: 1, Reads: []Op{{1, 0}, {2, 0}}, Writes: []Op{{1, 10}}},
		{ID: 2, Reads: []Op{{1, 0}, {2, 0}}, Writes: []Op{{2, 20}}},
	}}
	err := Check(h)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("err = %v, want cycle", err)
	}
}

func TestDisjointWritersAccepted(t *testing.T) {
	h := &History{Txns: []Txn{
		{ID: 1, Reads: []Op{{1, 0}}, Writes: []Op{{1, 10}}},
		{ID: 2, Reads: []Op{{2, 0}}, Writes: []Op{{2, 20}}},
		{ID: 3, Reads: []Op{{1, 10}, {2, 20}}},
		{ID: 4, Reads: []Op{{1, 0}, {2, 0}}},
	}}
	if err := Check(h); err != nil {
		t.Errorf("disjoint + readers: %v", err)
	}
}

func TestThreeCycleRejected(t *testing.T) {
	// T1 reads b's later version but a's early version etc. — a 3-cycle
	// via anti-dependencies.
	h := &History{Txns: []Txn{
		// version chains: a: 0 -> 11 (by T1) ; b: 0 -> 12 (by T2) ; c: 0 -> 13 (by T3)
		// T1 reads c=13 (so T3 < T1); T2 reads a=0 then is overwritten by T1?? —
		// T2 reads a=0 and T1 wrote a: anti edge T2 -> T1… build: T1 < T2? need:
		// T1 reads b=0 (anti T1 -> T2), T2 reads c=0 (anti T2 -> T3), T3 reads a=11 (wr T1 -> T3)…
		// and T3 < T1 via? use T1 reads c=13: wr T3 -> T1. Cycle: T1 -> T2? no…
		// Simpler: pairwise anti cycle with three txns:
		// T1: r(a)=0 r(b)=0 w(a)=11  — T1 -> writer(b) = T2
		// T2: r(b)=0 r(c)=0 w(b)=12  — T2 -> writer(c) = T3
		// T3: r(c)=0 r(a)=0 w(c)=13  — T3 -> writer(a) = T1  : cycle.
		{ID: 1, Reads: []Op{{1, 0}, {2, 0}}, Writes: []Op{{1, 11}}},
		{ID: 2, Reads: []Op{{2, 0}, {3, 0}}, Writes: []Op{{2, 12}}},
		{ID: 3, Reads: []Op{{3, 0}, {1, 0}}, Writes: []Op{{3, 13}}},
	}}
	err := Check(h)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("err = %v, want cycle", err)
	}
}

func TestMalformedHistories(t *testing.T) {
	cases := []struct {
		name string
		h    *History
		want string
	}{
		{"dup value", &History{Txns: []Txn{
			{ID: 1, Reads: []Op{{1, 0}}, Writes: []Op{{1, 10}}},
			{ID: 2, Reads: []Op{{2, 0}}, Writes: []Op{{2, 10}}},
		}}, ""}, // same value on different addrs is fine
		{"dup value same addr", &History{Txns: []Txn{
			{ID: 1, Reads: []Op{{1, 0}}, Writes: []Op{{1, 10}}},
			{ID: 2, Reads: []Op{{1, 10}}, Writes: []Op{{1, 10}}},
		}}, "written by txns"},
		{"write without read", &History{Txns: []Txn{
			{ID: 1, Writes: []Op{{1, 10}}},
		}}, "without reading"},
		{"reserved zero", &History{Txns: []Txn{
			{ID: 1, Reads: []Op{{1, 0}}, Writes: []Op{{1, 0}}},
		}}, "reserved value"},
		{"orphan read", &History{Txns: []Txn{
			{ID: 1, Reads: []Op{{1, 99}}},
		}}, "no writer"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := Check(c.h)
			if c.want == "" {
				if err != nil {
					t.Errorf("err = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want %q", err, c.want)
			}
		})
	}
}

func TestSortByID(t *testing.T) {
	h := &History{Txns: []Txn{{ID: 3}, {ID: 1}, {ID: 2}}}
	h.SortByID()
	for i, want := range []int{1, 2, 3} {
		if h.Txns[i].ID != want {
			t.Errorf("Txns[%d].ID = %d", i, h.Txns[i].ID)
		}
	}
}
