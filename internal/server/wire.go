// Wire protocol of stmd: length-prefixed binary frames over TCP.
//
// Every frame — both directions — is a 4-byte big-endian payload length
// followed by that many payload bytes. A request payload is a 1-byte opcode
// and an op-specific body; a response payload is a 1-byte status and a body.
// Multi-byte integers are big-endian uint64 ("words", matching stm.Word);
// strings are a 1-byte length followed by raw bytes. Requests on one
// connection are strictly sequential: one response per request, in order.
//
// Requests:
//
//	HELLO    tenant:string            — bind the connection to a tenant
//	GET      n:u64, n × key:u64       — transactional multi-key lookup
//	PUT      n:u64, n × (key,val)     — transactional multi-key upsert
//	CAS      n:u64, n × (key,old,new) — all-or-nothing compare-and-swap
//	DELETE   n:u64, n × key           — transactional multi-key delete
//	SNAPSHOT bucket:u64               — privatize one map bucket: detach it,
//	                                    quiesce weak readers, walk it
//	                                    uninstrumented, retire the nodes,
//	                                    return the (key,val) pairs removed
//	PUSH     n:u64, n × val           — enqueue values
//	POP      n:u64                    — dequeue up to n values
//	STATS                             — server counters as a JSON object
//
// Responses (status OK):
//
//	HELLO    algorithm:string
//	GET      n:u64, n × (found:u64, val:u64)
//	PUT      —
//	CAS      swapped:u64 (1 = all swapped, 0 = no-op)
//	DELETE   n:u64, n × existed:u64
//	SNAPSHOT n:u64, n × (key,val)
//	PUSH     —
//	POP      n:u64, n × val
//	STATS    json:bytes (rest of payload)
//
// Non-OK statuses carry no body; the status byte itself is the error
// (quota, deadline, cancel, bad request, unsupported op, server draining).
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Opcodes.
const (
	OpHello byte = iota + 1
	OpGet
	OpPut
	OpCAS
	OpDelete
	OpSnapshot
	OpPush
	OpPop
	OpStats
)

// Response status codes.
const (
	StatusOK          byte = 0
	StatusReadQuota   byte = 1 // read-set cap exceeded, transaction aborted
	StatusWriteQuota  byte = 2 // write-set cap exceeded, transaction aborted
	StatusDeadline    byte = 3 // per-tenant transaction deadline exceeded
	StatusCancelled   byte = 4 // transaction cancelled for another reason
	StatusBadRequest  byte = 5 // malformed frame or out-of-range argument
	StatusUnsupported byte = 6 // op not supported by the configured engine
	StatusDraining    byte = 7 // server is shutting down or at MaxConns
)

// MaxFrame bounds a single frame's payload; larger announcements are
// rejected before allocation (a garbage length prefix must not OOM the
// server).
const MaxFrame = 1 << 20

var errFrameTooLarge = errors.New("server: frame exceeds MaxFrame")

// ReadFrame reads one length-prefixed frame payload.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, errFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// WriteFrame writes payload as one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// AppendU64 appends v big-endian.
func AppendU64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

// AppendString appends a 1-byte-length-prefixed string (≤ 255 bytes).
func AppendString(b []byte, s string) ([]byte, error) {
	if len(s) > 255 {
		return nil, fmt.Errorf("server: string %q exceeds 255 bytes", s[:16]+"…")
	}
	return append(append(b, byte(len(s))), s...), nil
}

// wireReader consumes a request body field by field.
type wireReader struct {
	b []byte
}

func (r *wireReader) u64() (uint64, bool) {
	if len(r.b) < 8 {
		return 0, false
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, true
}

func (r *wireReader) str() (string, bool) {
	if len(r.b) < 1 {
		return "", false
	}
	n := int(r.b[0])
	if len(r.b) < 1+n {
		return "", false
	}
	s := string(r.b[1 : 1+n])
	r.b = r.b[1+n:]
	return s, true
}

func (r *wireReader) empty() bool { return len(r.b) == 0 }
