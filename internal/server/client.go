package server

import (
	"bufio"
	"fmt"
	"net"
)

// Client is one stmd connection speaking the wire protocol. Not safe for
// concurrent use — one Client per goroutine, like rng.RNG.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	buf  []byte // request scratch, reused across calls
}

// Dial connects to an stmd instance and announces tenant (empty string
// selects the default quota). Returns the client and the server's
// algorithm label.
func Dial(addr, tenant string) (*Client, string, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	req := append([]byte{OpHello}, byte(len(tenant)))
	req = append(req, tenant...)
	st, body, err := c.roundTrip(req)
	if err != nil {
		conn.Close()
		return nil, "", err
	}
	if st != StatusOK {
		conn.Close()
		return nil, "", fmt.Errorf("server: HELLO status %d", st)
	}
	r := wireReader{b: body}
	alg, _ := r.str()
	return c, alg, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(payload []byte) (byte, []byte, error) {
	if err := WriteFrame(c.w, payload); err != nil {
		return 0, nil, err
	}
	if err := c.w.Flush(); err != nil {
		return 0, nil, err
	}
	resp, err := ReadFrame(c.r)
	if err != nil {
		return 0, nil, err
	}
	if len(resp) == 0 {
		return 0, nil, fmt.Errorf("server: empty response frame")
	}
	return resp[0], resp[1:], nil
}

func (c *Client) opFrame(op byte, vals ...uint64) []byte {
	c.buf = append(c.buf[:0], op)
	for _, v := range vals {
		c.buf = AppendU64(c.buf, v)
	}
	return c.buf
}

// Get looks keys up in one transaction; found[i] reports presence of
// keys[i], vals[i] its value.
func (c *Client) Get(keys []uint64) (found []bool, vals []uint64, status byte, err error) {
	req := c.opFrame(OpGet, uint64(len(keys)))
	for _, k := range keys {
		req = AppendU64(req, k)
	}
	st, body, err := c.roundTrip(req)
	if err != nil || st != StatusOK {
		return nil, nil, st, err
	}
	r := wireReader{b: body}
	n, _ := r.u64()
	found = make([]bool, 0, n)
	vals = make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		f, _ := r.u64()
		v, ok := r.u64()
		if !ok {
			return nil, nil, st, fmt.Errorf("server: short GET response")
		}
		found = append(found, f != 0)
		vals = append(vals, v)
	}
	return found, vals, st, nil
}

// Put upserts the pairs (k1,v1,k2,v2,…) in one transaction.
func (c *Client) Put(pairs []uint64) (byte, error) {
	if len(pairs)%2 != 0 {
		return 0, fmt.Errorf("server: Put with odd pair slice")
	}
	req := c.opFrame(OpPut, uint64(len(pairs)/2))
	for _, v := range pairs {
		req = AppendU64(req, v)
	}
	st, _, err := c.roundTrip(req)
	return st, err
}

// CAS atomically swaps every (key, old, new) triple, all-or-nothing.
func (c *Client) CAS(triples []uint64) (swapped bool, status byte, err error) {
	if len(triples)%3 != 0 {
		return false, 0, fmt.Errorf("server: CAS with non-triple slice")
	}
	req := c.opFrame(OpCAS, uint64(len(triples)/3))
	for _, v := range triples {
		req = AppendU64(req, v)
	}
	st, body, err := c.roundTrip(req)
	if err != nil || st != StatusOK {
		return false, st, err
	}
	r := wireReader{b: body}
	s, _ := r.u64()
	return s != 0, st, nil
}

// Delete removes keys in one transaction; existed[i] reports whether
// keys[i] was present.
func (c *Client) Delete(keys []uint64) (existed []bool, status byte, err error) {
	req := c.opFrame(OpDelete, uint64(len(keys)))
	for _, k := range keys {
		req = AppendU64(req, k)
	}
	st, body, err := c.roundTrip(req)
	if err != nil || st != StatusOK {
		return nil, st, err
	}
	r := wireReader{b: body}
	n, _ := r.u64()
	existed = make([]bool, 0, n)
	for i := uint64(0); i < n; i++ {
		e, ok := r.u64()
		if !ok {
			return nil, st, fmt.Errorf("server: short DELETE response")
		}
		existed = append(existed, e != 0)
	}
	return existed, st, nil
}

// Snapshot privatizes map bucket b (mod the server's bucket count): the
// bucket is detached transactionally, weak readers quiesced, and its
// (key,value) pairs — removed from the map — returned.
func (c *Client) Snapshot(b uint64) (pairs []uint64, status byte, err error) {
	st, body, err := c.roundTrip(c.opFrame(OpSnapshot, b))
	if err != nil || st != StatusOK {
		return nil, st, err
	}
	r := wireReader{b: body}
	n, _ := r.u64()
	pairs = make([]uint64, 0, 2*n)
	for i := uint64(0); i < 2*n; i++ {
		v, ok := r.u64()
		if !ok {
			return nil, st, fmt.Errorf("server: short SNAPSHOT response")
		}
		pairs = append(pairs, v)
	}
	return pairs, st, nil
}

// Push enqueues vals in one transaction.
func (c *Client) Push(vals []uint64) (byte, error) {
	req := c.opFrame(OpPush, uint64(len(vals)))
	for _, v := range vals {
		req = AppendU64(req, v)
	}
	st, _, err := c.roundTrip(req)
	return st, err
}

// Pop dequeues up to n values in one transaction.
func (c *Client) Pop(n uint64) (vals []uint64, status byte, err error) {
	st, body, err := c.roundTrip(c.opFrame(OpPop, n))
	if err != nil || st != StatusOK {
		return nil, st, err
	}
	r := wireReader{b: body}
	got, _ := r.u64()
	vals = make([]uint64, 0, got)
	for i := uint64(0); i < got; i++ {
		v, ok := r.u64()
		if !ok {
			return nil, st, fmt.Errorf("server: short POP response")
		}
		vals = append(vals, v)
	}
	return vals, st, nil
}

// Stats fetches the server's counter snapshot as raw JSON.
func (c *Client) Stats() ([]byte, error) {
	st, body, err := c.roundTrip([]byte{OpStats})
	if err != nil {
		return nil, err
	}
	if st != StatusOK {
		return nil, fmt.Errorf("server: STATS status %d", st)
	}
	return body, nil
}
