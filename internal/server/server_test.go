package server

import (
	"context"
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"

	stm "privstm"
)

// startServer spins up a server on a loopback listener and returns it with
// its address and a shutdown func that asserts a clean drain.
func startServer(t *testing.T, opts ...Option) (*Server, string) {
	t.Helper()
	srv, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
		if rs := srv.ReclaimStats(); rs.Limbo != 0 {
			t.Errorf("Limbo = %d after Shutdown, want 0", rs.Limbo)
		}
	})
	return srv, ln.Addr().String()
}

func TestServerKVRoundTrip(t *testing.T) {
	srv, addr := startServer(t, WithWorkers(2))
	c, alg, err := Dial(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if alg != srv.Algorithm().String() {
		t.Fatalf("HELLO algorithm %q, want %q", alg, srv.Algorithm())
	}
	if st, err := c.Put([]uint64{1, 10, 2, 20, 3, 30}); err != nil || st != StatusOK {
		t.Fatalf("Put: status %d err %v", st, err)
	}
	found, vals, st, err := c.Get([]uint64{1, 2, 4})
	if err != nil || st != StatusOK {
		t.Fatalf("Get: status %d err %v", st, err)
	}
	if !found[0] || !found[1] || found[2] || vals[0] != 10 || vals[1] != 20 {
		t.Fatalf("Get = %v %v", found, vals)
	}
	swapped, st, err := c.CAS([]uint64{1, 10, 11, 2, 20, 21})
	if err != nil || st != StatusOK || !swapped {
		t.Fatalf("CAS: swapped=%v status %d err %v", swapped, st, err)
	}
	if swapped, _, _ = c.CAS([]uint64{1, 999, 0}); swapped {
		t.Fatal("CAS with stale expectation swapped")
	}
	existed, st, err := c.Delete([]uint64{3, 4})
	if err != nil || st != StatusOK || !existed[0] || existed[1] {
		t.Fatalf("Delete: %v status %d err %v", existed, st, err)
	}
	if st, err := c.Push([]uint64{7, 8, 9}); err != nil || st != StatusOK {
		t.Fatalf("Push: status %d err %v", st, err)
	}
	popped, st, err := c.Pop(5)
	if err != nil || st != StatusOK {
		t.Fatalf("Pop: status %d err %v", st, err)
	}
	if len(popped) != 3 || popped[0] != 7 || popped[2] != 9 {
		t.Fatalf("Pop = %v, want [7 8 9]", popped)
	}
}

// TestServerSnapshotPrivatizes: SNAPSHOT must return exactly the pairs that
// lived in the bucket and remove them from the map.
func TestServerSnapshotPrivatizes(t *testing.T) {
	_, addr := startServer(t, WithWorkers(2), WithBuckets(1, 8))
	c, _, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if st, err := c.Put([]uint64{1, 100, 2, 200, 3, 300}); err != nil || st != StatusOK {
		t.Fatalf("Put: status %d err %v", st, err)
	}
	pairs, st, err := c.Snapshot(0)
	if err != nil || st != StatusOK {
		t.Fatalf("Snapshot: status %d err %v", st, err)
	}
	got := map[uint64]uint64{}
	for i := 0; i < len(pairs); i += 2 {
		got[pairs[i]] = pairs[i+1]
	}
	if len(got) != 3 || got[1] != 100 || got[2] != 200 || got[3] != 300 {
		t.Fatalf("Snapshot pairs = %v", got)
	}
	// The single bucket was detached: the map is now empty.
	found, _, st, err := c.Get([]uint64{1, 2, 3})
	if err != nil || st != StatusOK {
		t.Fatalf("Get after snapshot: status %d err %v", st, err)
	}
	for i, f := range found {
		if f {
			t.Fatalf("key %d still present after bucket privatization", i+1)
		}
	}
}

// TestServerWriteSetQuota is the satellite acceptance test: a tenant
// exceeding WithWriteSetCap gets a clean quota-abort status and the
// connection stays usable — no wedge, no disconnect.
func TestServerWriteSetQuota(t *testing.T) {
	srv, addr := startServer(t,
		WithWorkers(2),
		WithTenantQuota("noisy", Quota{WriteSetCap: 4}),
	)
	c, _, err := Dial(addr, "noisy")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A small put fits the cap.
	if st, err := c.Put([]uint64{1, 10}); err != nil || st != StatusOK {
		t.Fatalf("small Put: status %d err %v", st, err)
	}
	// Ten inserts write far more than 4 words: quota abort, connection alive.
	big := make([]uint64, 0, 20)
	for k := uint64(100); k < 110; k++ {
		big = append(big, k, k)
	}
	st, err := c.Put(big)
	if err != nil {
		t.Fatalf("big Put transport error (wedged connection?): %v", err)
	}
	if st != StatusWriteQuota {
		t.Fatalf("big Put status = %d, want StatusWriteQuota", st)
	}
	// The aborted transaction must have left no trace.
	found, _, st, err := c.Get([]uint64{100})
	if err != nil || st != StatusOK {
		t.Fatalf("Get after quota abort: status %d err %v", st, err)
	}
	if found[0] {
		t.Fatal("quota-aborted Put leaked a key")
	}
	// And the abort is attributed to the tenant in server stats.
	ss := srv.Stats()
	if ss.QuotaAborts == 0 || ss.TenantQuota["noisy"] == 0 {
		t.Fatalf("quota abort not surfaced in stats: %+v", ss)
	}
	// Unquoted tenants on the same server are unaffected.
	c2, _, err := Dial(addr, "quiet")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if st, err := c2.Put(big); err != nil || st != StatusOK {
		t.Fatalf("unquoted tenant Put: status %d err %v", st, err)
	}
}

// TestServerDeadlineQuota: an absurdly small transaction deadline trips
// CheckDeadline and maps to StatusDeadline.
func TestServerDeadlineQuota(t *testing.T) {
	_, addr := startServer(t,
		WithWorkers(2),
		WithTenantQuota("slow", Quota{TxnDeadline: time.Nanosecond}),
	)
	c, _, err := Dial(addr, "slow")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Put([]uint64{1, 1})
	if err != nil {
		t.Fatalf("transport error: %v", err)
	}
	if st != StatusDeadline {
		t.Fatalf("status = %d, want StatusDeadline", st)
	}
}

// TestServerManyConnsFewWorkers multiplexes far more connections than
// workers (the pool bounds the STM footprint) and checks every op lands.
func TestServerManyConnsFewWorkers(t *testing.T) {
	srv, addr := startServer(t, WithWorkers(2), WithMaxConns(256))
	const conns, opsPer = 32, 20
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, _, err := Dial(addr, "load")
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for op := 0; op < opsPer; op++ {
				k := uint64(id*opsPer + op)
				if st, err := c.Put([]uint64{k, k * 2}); err != nil || st != StatusOK {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Stats().Committed; got < conns*opsPer {
		t.Fatalf("Committed = %d, want >= %d", got, conns*opsPer)
	}
}

// TestServerMaxConns: the cap rejects the surplus connection with a
// StatusDraining frame instead of hanging it.
func TestServerMaxConns(t *testing.T) {
	_, addr := startServer(t, WithWorkers(1), WithMaxConns(1))
	c1, _, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := ReadFrame(conn)
	if err != nil {
		t.Fatalf("surplus connection: %v", err)
	}
	if len(payload) != 1 || payload[0] != StatusDraining {
		t.Fatalf("surplus connection payload = %v, want [StatusDraining]", payload)
	}
}

// TestServerStatsOp: the STATS op returns parseable JSON matching the
// server-side snapshot.
func TestServerStatsOp(t *testing.T) {
	_, addr := startServer(t, WithWorkers(2))
	c, _, err := Dial(addr, "t1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if st, err := c.Put([]uint64{5, 50}); err != nil || st != StatusOK {
		t.Fatalf("Put: status %d err %v", st, err)
	}
	raw, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var ss StatsSnapshot
	if err := json.Unmarshal(raw, &ss); err != nil {
		t.Fatalf("STATS body not JSON: %v\n%s", err, raw)
	}
	if ss.Committed == 0 || ss.Workers != 2 || ss.Conns != 1 {
		t.Fatalf("STATS = %+v", ss)
	}
}

// TestServerRejectsUnsafeAlgorithm: TL2 cannot privatize; New must refuse.
func TestServerRejectsUnsafeAlgorithm(t *testing.T) {
	if _, err := New(WithAlgorithm(stm.TL2)); err == nil {
		t.Fatal("New accepted the privatization-unsafe TL2 baseline")
	}
}

// TestServerShutdownDrainsInFlight: Shutdown during live traffic completes
// in-flight requests and leaves zero quarantined extents (asserted by the
// startServer cleanup; churn here creates retires via Delete/Snapshot).
func TestServerShutdownDrainsInFlight(t *testing.T) {
	_, addr := startServer(t, WithWorkers(3))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, _, err := Dial(addr, "churn")
			if err != nil {
				return
			}
			defer c.Close()
			for n := uint64(0); ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(id)*1000 + n%37
				if st, err := c.Put([]uint64{k, n}); err != nil || st != StatusOK {
					return
				}
				if n%5 == 0 {
					if _, st, err := c.Delete([]uint64{k}); err != nil || st != StatusOK {
						return
					}
				}
				if n%11 == 0 {
					if _, st, err := c.Snapshot(n); err != nil || st != StatusOK {
						return
					}
				}
			}
		}(i)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	// startServer's cleanup runs Shutdown and asserts Limbo == 0.
}
