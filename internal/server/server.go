// Package server implements stmd: a TCP key-value service backed by the
// privatization-safe STM through the internal/tds semantic containers.
//
// Architecture: every connection gets a cheap goroutine that only frames and
// parses requests; transactions execute on a fixed pool of workers, each
// owning one STM thread (a registry slot bounded by Config.MaxThreads), so
// thousands of connections multiplex onto a handful of transactional
// contexts. Workers acquire their threads with stm.STM.NewThread and release
// them with Thread.Close on drain — the lifecycle path that returns registry
// slots and flushes per-thread reclaim fronts.
//
// Per-tenant quotas (read/write-set caps, transaction deadlines) are
// enforced cooperatively inside transaction bodies via Tx.Cancel: a tenant
// over budget gets a clean quota status on the wire and the connection stays
// usable. Contention pathologies are bounded by the engine's MaxAttempts
// escalation to the serialized-irrevocable fallback.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	stm "privstm"
	"privstm/internal/reclaim"
	"privstm/internal/tds"
)

// Quota-abort sentinels: Tx.Cancel(err) makes Atomic return err without
// retrying, which execute maps onto a wire status.
var (
	ErrReadQuota  = errors.New("server: read-set quota exceeded")
	ErrWriteQuota = errors.New("server: write-set quota exceeded")
)

// maxOpKeys bounds the keys/pairs of one multi-key request: past this the
// request is malformed, not a big transaction.
const maxOpKeys = 4096

// Server is one stmd instance. Create with New, start with Serve or
// ListenAndServe, stop with Shutdown.
type Server struct {
	cfg config
	s   *stm.STM
	m   *tds.Map
	q   *tds.Queue

	jobs     chan *job
	workerWg sync.WaitGroup

	connWg   sync.WaitGroup
	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
	nconns   atomic.Int64
	draining atomic.Bool

	lnMu sync.Mutex
	ln   net.Listener

	tenantMu sync.Mutex
	tenants  map[string]*tenant

	committed      atomic.Uint64
	cancelled      atomic.Uint64
	quotaAborts    atomic.Uint64
	deadlineAborts atomic.Uint64
	privatizeOps   atomic.Uint64
	rejectedConns  atomic.Uint64
}

type tenant struct {
	name        string
	quota       Quota
	quotaAborts atomic.Uint64
}

type job struct {
	ten  *tenant
	op   byte
	body []byte
	resp chan response
}

type response struct {
	status byte
	body   []byte
}

// New assembles a server and starts its worker pool (network listening
// starts with Serve). The STM instance sizes MaxThreads to exactly the
// worker count: the pool, not the connection count, is the transactional
// footprint.
func New(opts ...Option) (*Server, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	scfg := cfg.stmConfig
	scfg.Algorithm = cfg.algorithm
	scfg.MaxThreads = cfg.workers
	if !cfg.hasSTMConf {
		// Default heap sized for a service: 1<<22 words ≈ 32 MiB.
		scfg.HeapWords = 1 << 22
	}
	s, err := stm.New(scfg)
	if err != nil {
		return nil, err
	}
	m, err := tds.NewMap(s, cfg.buckets, cfg.stripes)
	if err != nil {
		return nil, err
	}
	q, err := tds.NewQueue(s)
	if err != nil {
		return nil, err
	}
	srv := &Server{
		cfg:     cfg,
		s:       s,
		m:       m,
		q:       q,
		jobs:    make(chan *job, cfg.workers*2),
		conns:   make(map[net.Conn]struct{}),
		tenants: make(map[string]*tenant),
	}
	for i := 0; i < cfg.workers; i++ {
		th, err := s.NewThread()
		if err != nil {
			return nil, fmt.Errorf("server: worker %d: %w", i, err)
		}
		srv.workerWg.Add(1)
		go srv.worker(th)
	}
	return srv, nil
}

// Algorithm reports the engine serving traffic.
func (srv *Server) Algorithm() stm.Algorithm { return srv.cfg.algorithm }

// Workers reports the worker-pool size (== the STM thread count).
func (srv *Server) Workers() int { return srv.cfg.workers }

// ReclaimStats exposes the underlying reclaimer's counters; after Shutdown
// a healthy server reports zero quarantined extents.
func (srv *Server) ReclaimStats() reclaim.Stats { return srv.s.ReclaimStats() }

// ListenAndServe listens on addr and serves until Shutdown.
func (srv *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return srv.Serve(ln)
}

// Serve accepts connections on ln until Shutdown closes it. Always returns
// a non-nil error; after Shutdown it returns nil-wrapped ErrServerClosed
// semantics (a plain nil).
func (srv *Server) Serve(ln net.Listener) error {
	srv.lnMu.Lock()
	if srv.draining.Load() {
		srv.lnMu.Unlock()
		ln.Close()
		return errors.New("server: Serve after Shutdown")
	}
	srv.ln = ln
	srv.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if srv.draining.Load() {
				return nil
			}
			return err
		}
		reject := srv.draining.Load()
		if !reject && srv.nconns.Add(1) > int64(srv.cfg.maxConns) {
			srv.nconns.Add(-1)
			reject = true
		}
		if reject {
			srv.rejectedConns.Add(1)
			_ = WriteFrame(conn, []byte{StatusDraining})
			conn.Close()
			continue
		}
		srv.connMu.Lock()
		srv.conns[conn] = struct{}{}
		srv.connMu.Unlock()
		srv.connWg.Add(1)
		go srv.handleConn(conn)
	}
}

// Addr returns the bound listener address ("" before Serve).
func (srv *Server) Addr() string {
	srv.lnMu.Lock()
	defer srv.lnMu.Unlock()
	if srv.ln == nil {
		return ""
	}
	return srv.ln.Addr().String()
}

func (srv *Server) tenantFor(name string) *tenant {
	srv.tenantMu.Lock()
	defer srv.tenantMu.Unlock()
	if t, ok := srv.tenants[name]; ok {
		return t
	}
	t := &tenant{name: name, quota: srv.cfg.quotaFor(name)}
	srv.tenants[name] = t
	return t
}

func (srv *Server) handleConn(conn net.Conn) {
	defer func() {
		srv.connMu.Lock()
		delete(srv.conns, conn)
		srv.connMu.Unlock()
		srv.nconns.Add(-1)
		conn.Close()
		srv.connWg.Done()
	}()
	ten := srv.tenantFor("") // until HELLO names one
	resp := make(chan response, 1)
	for {
		payload, err := ReadFrame(conn)
		if err != nil {
			// Read errors include the deadline pokes Shutdown uses to
			// unblock idle connections — either way the conversation is
			// over.
			return
		}
		if len(payload) == 0 {
			_ = WriteFrame(conn, []byte{StatusBadRequest})
			continue
		}
		op, body := payload[0], payload[1:]
		var r response
		switch op {
		case OpHello:
			r = srv.hello(&ten, body)
		case OpStats:
			r = srv.statsResponse()
		case OpGet, OpPut, OpCAS, OpDelete, OpSnapshot, OpPush, OpPop:
			jb := &job{ten: ten, op: op, body: body, resp: resp}
			srv.jobs <- jb
			r = <-resp
		default:
			r = response{status: StatusUnsupported}
		}
		if err := WriteFrame(conn, append([]byte{r.status}, r.body...)); err != nil {
			return
		}
		if srv.draining.Load() {
			return
		}
	}
}

func (srv *Server) hello(ten **tenant, body []byte) response {
	r := wireReader{b: body}
	name, ok := r.str()
	if !ok || !r.empty() {
		return response{status: StatusBadRequest}
	}
	*ten = srv.tenantFor(name)
	out, err := AppendString(nil, srv.cfg.algorithm.String())
	if err != nil {
		return response{status: StatusBadRequest}
	}
	return response{status: StatusOK, body: out}
}

// StatsSnapshot is the JSON body of a STATS response.
type StatsSnapshot struct {
	Algorithm      string            `json:"algorithm"`
	Workers        int               `json:"workers"`
	Conns          int64             `json:"conns"`
	Committed      uint64            `json:"committed_txns"`
	Cancelled      uint64            `json:"cancelled_txns"`
	QuotaAborts    uint64            `json:"quota_aborts"`
	DeadlineAborts uint64            `json:"deadline_aborts"`
	PrivatizeOps   uint64            `json:"privatize_ops"`
	RejectedConns  uint64            `json:"rejected_conns"`
	TenantQuota    map[string]uint64 `json:"tenant_quota_aborts,omitempty"`
}

// Stats snapshots the server-level counters (maintained with atomics, so
// this is safe while traffic runs — unlike raw per-thread STM counters).
func (srv *Server) Stats() StatsSnapshot {
	ss := StatsSnapshot{
		Algorithm:      srv.cfg.algorithm.String(),
		Workers:        srv.cfg.workers,
		Conns:          srv.nconns.Load(),
		Committed:      srv.committed.Load(),
		Cancelled:      srv.cancelled.Load(),
		QuotaAborts:    srv.quotaAborts.Load(),
		DeadlineAborts: srv.deadlineAborts.Load(),
		PrivatizeOps:   srv.privatizeOps.Load(),
		RejectedConns:  srv.rejectedConns.Load(),
	}
	srv.tenantMu.Lock()
	for name, t := range srv.tenants {
		if n := t.quotaAborts.Load(); n > 0 {
			if ss.TenantQuota == nil {
				ss.TenantQuota = make(map[string]uint64)
			}
			ss.TenantQuota[name] = n
		}
	}
	srv.tenantMu.Unlock()
	return ss
}

func (srv *Server) statsResponse() response {
	b, err := json.Marshal(srv.Stats())
	if err != nil {
		return response{status: StatusCancelled}
	}
	return response{status: StatusOK, body: b}
}

// worker owns one STM thread for its lifetime and executes jobs until the
// channel closes at drain, then releases the thread (flushing its reclaim
// front and returning the registry slot).
func (srv *Server) worker(th *stm.Thread) {
	defer srv.workerWg.Done()
	defer th.Close()
	for jb := range srv.jobs {
		jb.resp <- srv.execute(th, jb)
	}
}

// enforce applies the tenant's quota inside a transaction body. Pure by
// construction: it only calls runtime accessors, so the transaction-purity
// analyzer stays clean over the server package.
func enforce(tx *stm.Tx, q Quota) {
	if q.ReadSetCap > 0 && tx.ReadSetLen() > q.ReadSetCap {
		tx.Cancel(ErrReadQuota)
	}
	if q.WriteSetCap > 0 && tx.WriteSetLen() > q.WriteSetCap {
		tx.Cancel(ErrWriteQuota)
	}
	tx.CheckDeadline()
}

func (srv *Server) finish(ten *tenant, err error, body []byte) response {
	switch {
	case err == nil:
		srv.committed.Add(1)
		return response{status: StatusOK, body: body}
	case errors.Is(err, ErrReadQuota):
		ten.quotaAborts.Add(1)
		srv.quotaAborts.Add(1)
		return response{status: StatusReadQuota}
	case errors.Is(err, ErrWriteQuota):
		ten.quotaAborts.Add(1)
		srv.quotaAborts.Add(1)
		return response{status: StatusWriteQuota}
	case errors.Is(err, stm.ErrDeadlineExceeded):
		srv.deadlineAborts.Add(1)
		return response{status: StatusDeadline}
	default:
		srv.cancelled.Add(1)
		return response{status: StatusCancelled}
	}
}

func (srv *Server) execute(th *stm.Thread, jb *job) response {
	q := jb.ten.quota
	if q.TxnDeadline > 0 {
		th.SetTxnDeadline(time.Now().Add(q.TxnDeadline))
		defer th.SetTxnDeadline(time.Time{})
	}
	r := wireReader{b: jb.body}
	switch jb.op {
	case OpGet:
		keys, ok := readKeys(&r, 1)
		if !ok {
			return response{status: StatusBadRequest}
		}
		var out []byte
		err := th.Atomic(func(tx *stm.Tx) {
			out = AppendU64(out[:0], uint64(len(keys)))
			for _, k := range keys {
				v, found := srv.m.Get(tx, stm.Word(k))
				var f uint64
				if found {
					f = 1
				}
				out = AppendU64(AppendU64(out, f), uint64(v))
				enforce(tx, q)
			}
		})
		return srv.finish(jb.ten, err, out)
	case OpPut:
		pairs, ok := readKeys(&r, 2)
		if !ok {
			return response{status: StatusBadRequest}
		}
		err := th.Atomic(func(tx *stm.Tx) {
			for i := 0; i < len(pairs); i += 2 {
				srv.m.Put(tx, stm.Word(pairs[i]), stm.Word(pairs[i+1]))
				enforce(tx, q)
			}
		})
		return srv.finish(jb.ten, err, nil)
	case OpCAS:
		triples, ok := readKeys(&r, 3)
		if !ok {
			return response{status: StatusBadRequest}
		}
		var swapped uint64
		err := th.Atomic(func(tx *stm.Tx) {
			swapped = 1
			for i := 0; i < len(triples); i += 3 {
				v, found := srv.m.Get(tx, stm.Word(triples[i]))
				enforce(tx, q)
				if !found || v != stm.Word(triples[i+1]) {
					swapped = 0
					return
				}
			}
			for i := 0; i < len(triples); i += 3 {
				srv.m.Put(tx, stm.Word(triples[i]), stm.Word(triples[i+2]))
				enforce(tx, q)
			}
		})
		return srv.finish(jb.ten, err, AppendU64(nil, swapped))
	case OpDelete:
		keys, ok := readKeys(&r, 1)
		if !ok {
			return response{status: StatusBadRequest}
		}
		var out []byte
		err := th.Atomic(func(tx *stm.Tx) {
			out = AppendU64(out[:0], uint64(len(keys)))
			for _, k := range keys {
				var e uint64
				if srv.m.Delete(tx, stm.Word(k)) {
					e = 1
				}
				out = AppendU64(out, e)
				enforce(tx, q)
			}
		})
		return srv.finish(jb.ten, err, out)
	case OpSnapshot:
		b, ok := r.u64()
		if !ok || !r.empty() {
			return response{status: StatusBadRequest}
		}
		pl, err := srv.m.PrivateSnapshot(th, int(b%uint64(srv.m.Buckets())))
		if err != nil {
			if errors.Is(err, tds.ErrNotPrivatizationSafe) {
				return response{status: StatusUnsupported}
			}
			return srv.finish(jb.ten, err, nil)
		}
		// The privatizing transaction committed and weak readers are
		// quiesced: walk the detached chain uninstrumented, then retire
		// the nodes through the epoch reclaimer.
		out := AppendU64(nil, uint64(pl.Count))
		pl.EachKV(func(k, v stm.Word) bool {
			out = AppendU64(AppendU64(out, uint64(k)), uint64(v))
			return true
		})
		pl.Retire(th)
		srv.privatizeOps.Add(1)
		srv.committed.Add(1)
		return response{status: StatusOK, body: out}
	case OpPush:
		vals, ok := readKeys(&r, 1)
		if !ok {
			return response{status: StatusBadRequest}
		}
		err := th.Atomic(func(tx *stm.Tx) {
			for _, v := range vals {
				srv.q.Push(tx, stm.Word(v))
				enforce(tx, q)
			}
		})
		return srv.finish(jb.ten, err, nil)
	case OpPop:
		n, ok := r.u64()
		if !ok || !r.empty() || n == 0 || n > maxOpKeys {
			return response{status: StatusBadRequest}
		}
		var out []byte
		var popped []uint64
		err := th.Atomic(func(tx *stm.Tx) {
			popped = popped[:0]
			for i := uint64(0); i < n; i++ {
				v, found := srv.q.Pop(tx)
				if !found {
					break
				}
				popped = append(popped, uint64(v))
				enforce(tx, q)
			}
		})
		if err == nil {
			out = AppendU64(nil, uint64(len(popped)))
			for _, v := range popped {
				out = AppendU64(out, v)
			}
		}
		return srv.finish(jb.ten, err, out)
	}
	return response{status: StatusUnsupported}
}

// readKeys parses "count, count×group u64s" with the count bounded by
// maxOpKeys and required to consume the body exactly.
func readKeys(r *wireReader, group int) ([]uint64, bool) {
	n, ok := r.u64()
	if !ok || n > maxOpKeys {
		return nil, false
	}
	vals := make([]uint64, 0, int(n)*group)
	for i := 0; i < int(n)*group; i++ {
		v, ok := r.u64()
		if !ok {
			return nil, false
		}
		vals = append(vals, v)
	}
	if !r.empty() {
		return nil, false
	}
	return vals, true
}

// Shutdown drains the server: stop accepting, unblock idle connections and
// let in-flight requests finish, retire the worker pool (each worker
// Thread.Close()s, flushing reclaim fronts and returning registry slots),
// then drain the epoch reclaimer. On a clean drain the reclaimer reports
// zero quarantined extents. ctx bounds the wait; on expiry remaining
// connections are closed forcibly and Shutdown reports the first error.
func (srv *Server) Shutdown(ctx context.Context) error {
	if srv.draining.Swap(true) {
		return errors.New("server: Shutdown twice")
	}
	srv.lnMu.Lock()
	if srv.ln != nil {
		srv.ln.Close()
	}
	srv.lnMu.Unlock()

	// Poke blocked readers; handlers notice draining after their current
	// request and exit.
	srv.pokeConns()
	done := make(chan struct{})
	go func() { srv.connWg.Wait(); close(done) }()
	var errs []error
	select {
	case <-done:
	case <-ctx.Done():
		errs = append(errs, fmt.Errorf("server: drain: %w", ctx.Err()))
		srv.connMu.Lock()
		for c := range srv.conns {
			c.Close()
		}
		srv.connMu.Unlock()
		<-done
	}

	close(srv.jobs)
	srv.workerWg.Wait()

	// All threads are closed; every retired extent is published. The final
	// drain must clear the quarantine completely.
	srv.s.DrainReclaim()
	if rs := srv.s.ReclaimStats(); rs.Limbo != 0 {
		errs = append(errs, fmt.Errorf("server: %d extents still quarantined after drain", rs.Limbo))
	}
	return errors.Join(errs...)
}

// pokeConns interrupts blocked ReadFrame calls so handlers observe the
// draining flag.
func (srv *Server) pokeConns() {
	srv.connMu.Lock()
	defer srv.connMu.Unlock()
	for c := range srv.conns {
		_ = c.SetReadDeadline(time.Now())
	}
}
