package server

import (
	"fmt"
	"time"

	stm "privstm"
)

// Quota bounds one tenant's transactions. Zero fields mean "no limit".
// Exceeding a cap cancels the transaction (Tx.Cancel), which rolls it back
// and surfaces a quota status on the wire — the connection stays healthy.
type Quota struct {
	// TxnDeadline is the wall-clock budget of a single transaction
	// attempt window, checked cooperatively at every container op.
	TxnDeadline time.Duration
	// ReadSetCap bounds the logged read-set entries of one transaction.
	ReadSetCap int
	// WriteSetCap bounds the write-set words of one transaction.
	WriteSetCap int
}

type config struct {
	algorithm  stm.Algorithm
	stmConfig  stm.Config // template; Algorithm/MaxThreads are overridden
	workers    int
	maxConns   int
	buckets    int
	stripes    int
	defQuota   Quota
	tenants    map[string]Quota
	hasSTMConf bool
}

// Option configures New, quickjs-runtime style: the server is assembled
// from a functional-option surface so per-deployment limits compose.
type Option func(*config) error

// WithAlgorithm selects the STM engine. It must be privatization-safe:
// SNAPSHOT hands privatized nodes to uninstrumented walks, which the TL2
// baseline cannot make safe. Default pvrStore.
func WithAlgorithm(a stm.Algorithm) Option {
	return func(c *config) error {
		if !a.Safe() {
			return fmt.Errorf("server: algorithm %v is not privatization-safe", a)
		}
		c.algorithm = a
		return nil
	}
}

// WithWorkers sets the STM worker-pool size. Every worker owns one STM
// thread (a registry slot); connections multiplex onto the pool, so
// thousands of connections cost a handful of slots. Default 8.
func WithWorkers(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("server: WithWorkers(%d): need at least 1", n)
		}
		c.workers = n
		return nil
	}
}

// WithMaxConns caps concurrently served connections; excess accepts get a
// StatusDraining frame and are closed. Default 4096.
func WithMaxConns(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("server: WithMaxConns(%d): need at least 1", n)
		}
		c.maxConns = n
		return nil
	}
}

// WithTxnDeadline sets the default per-transaction deadline for tenants
// without an explicit quota. 0 disables.
func WithTxnDeadline(d time.Duration) Option {
	return func(c *config) error {
		if d < 0 {
			return fmt.Errorf("server: WithTxnDeadline(%v): negative", d)
		}
		c.defQuota.TxnDeadline = d
		return nil
	}
}

// WithReadSetCap sets the default read-set cap. 0 disables.
func WithReadSetCap(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("server: WithReadSetCap(%d): negative", n)
		}
		c.defQuota.ReadSetCap = n
		return nil
	}
}

// WithWriteSetCap sets the default write-set cap. 0 disables.
func WithWriteSetCap(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("server: WithWriteSetCap(%d): negative", n)
		}
		c.defQuota.WriteSetCap = n
		return nil
	}
}

// WithTenantQuota overrides the default quota for one tenant (the name a
// connection announces in HELLO).
func WithTenantQuota(name string, q Quota) Option {
	return func(c *config) error {
		if name == "" {
			return fmt.Errorf("server: WithTenantQuota with empty tenant name")
		}
		if c.tenants == nil {
			c.tenants = make(map[string]Quota)
		}
		c.tenants[name] = q
		return nil
	}
}

// WithBuckets sizes the transactional hash map (buckets) and its
// abstract-lock stripe table. Defaults 1024 buckets, 256 stripes.
func WithBuckets(buckets, stripes int) Option {
	return func(c *config) error {
		if buckets < 1 || stripes < 1 {
			return fmt.Errorf("server: WithBuckets(%d, %d): need at least 1 of each", buckets, stripes)
		}
		c.buckets, c.stripes = buckets, stripes
		return nil
	}
}

// WithSTMConfig supplies the underlying stm.Config template (clock mode,
// contention manager, MaxAttempts escalation budget, heap size, …).
// Algorithm and MaxThreads are managed by the server: set the algorithm
// with WithAlgorithm; MaxThreads is derived from the worker-pool size.
func WithSTMConfig(cfg stm.Config) Option {
	return func(c *config) error {
		c.stmConfig = cfg
		c.hasSTMConf = true
		return nil
	}
}

func defaultConfig() config {
	return config{
		algorithm: stm.PVRStore,
		workers:   8,
		maxConns:  4096,
		buckets:   1024,
		stripes:   256,
	}
}

func (c *config) quotaFor(tenant string) Quota {
	if q, ok := c.tenants[tenant]; ok {
		return q
	}
	return c.defQuota
}
